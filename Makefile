# Development entry points. `make build test` is the tier-1 gate;
# `make race` is the concurrency gate for the multithreaded local kernels
# and the pipelined SUMMA schedule; `make ci` chains everything CI runs on
# every push; `make perfgate` is the nightly perf-regression gate.
# Every target is a one-liner over the standard Go toolchain — no extra
# tools required.

GO ?= go
FUZZTIME ?= 30s
GATE_TOL ?= 0.05

.PHONY: all build test race vet doc bench bench-kernels bench-obs trace cover fuzz perfgate baseline plan kernelgate serve soak ci

# all: the tier-1 gate (build + test), the default target.
all: build test

# build: compile every package and command.
build:
	$(GO) build ./...

# test: the full unit/differential/metering test suite (tier 1 with build).
test:
	$(GO) test ./...

# race: the packages that run goroutines (simulated ranks in mpi/core,
# worker threads in localmm, concurrent jobs in service, the shared
# kernel-table recalibration in costmodel) under the race detector, race
# workouts included — the multithreaded kernels, the Pipeline=true broadcast
# prefetch paths (TestPipelinedSUMMARace), the service concurrency workout
# (N clients racing the plan cache and the admission scheduler), and the
# concurrent Observe/Predict/Marshal workout on one kernel cost table are
# exercised here.
race:
	$(GO) test -race ./internal/localmm ./internal/core ./internal/mpi ./internal/service ./internal/costmodel

# vet: static analysis over every package.
vet:
	$(GO) vet ./...

# doc: documentation hygiene gate — every file must be gofmt-clean (a
# non-empty `gofmt -l` listing fails the target) and pass go vet, whose
# analyzers check doc-comment conventions alongside correctness. Run it
# after editing package comments or doc.go files.
doc:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

# bench: every root-level benchmark (per-figure experiment runs plus the
# kernel, merge-strategy, thread-sweep, and staged-vs-pipelined ablations),
# without running tests.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# cover: the full test suite with per-package coverage, writing an HTML
# report to cover.html (open it in a browser to drill into files).
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
	$(GO) tool cover -html=cover.out -o cover.html

# fuzz: bounded fuzz passes over the three untrusted-input parsers — the
# Matrix Market reader, the sparse wire-format deserializer, and the dense
# panel wire-format deserializer (seed corpora in
# internal/spmat/testdata/fuzz plus in-code seeds for the historical
# header-overflow and row-out-of-range bugs). The Go fuzzer takes one
# -fuzz pattern per invocation, hence one line per target. Override
# FUZZTIME for longer local runs, e.g. `make fuzz FUZZTIME=5m`; the
# default 30s bound per target is what `make ci` runs.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadMatrixMarket -fuzztime=$(FUZZTIME) ./internal/spmat
	$(GO) test -run='^$$' -fuzz=FuzzDeserializeMatrix -fuzztime=$(FUZZTIME) ./internal/spmat
	$(GO) test -run='^$$' -fuzz=FuzzDeserializeDense -fuzztime=$(FUZZTIME) ./internal/spmat

# perfgate: the performance-regression gate the nightly workflow enforces.
# Runs pinned fig-6/8 and sparse×dense (spmm) shapes, emits BENCH_pr3.json,
# and fails when any gated
# shape's modeled critical-path seconds exceed the checked-in baseline
# (BENCH_baseline.json) by more than GATE_TOL. The gated metrics are fully
# modeled (α–β comm + work units at a pinned rate), so the comparison is
# machine-independent and deterministic.
perfgate:
	$(GO) run ./cmd/spgemm-bench -gate -json BENCH_pr3.json -baseline BENCH_baseline.json -tol $(GATE_TOL)

# baseline: regenerate the checked-in perf-gate baseline after an intentional
# performance change. Review the diff before committing it.
baseline:
	$(GO) run ./cmd/spgemm-bench -gate -json BENCH_baseline.json

# serve: run the multiply-as-a-service daemon locally (see SERVICE.md for
# the API, `go run ./cmd/spgemmd -h` for the knobs). Ctrl-C stops it.
serve:
	$(GO) run ./cmd/spgemmd

# soak: the service soak — a spgemmd server under concurrent mixed traffic,
# asserting bit-identical outputs, zero probe work after warmup, and
# deadlock-free admission. The nightly workflow runs this; point it at a
# running daemon with `go run ./cmd/spgemm-bench -server URL` instead to
# soak over real HTTP.
soak:
	$(GO) run ./cmd/spgemm-bench -exp service -scale tiny

# plan: the planner-vs-oracle gate the nightly workflow enforces. The
# analytical autotuner plans each gate workload, an exhaustive sweep
# (l × b × format × pipeline for sparse×sparse; the algorithm axis —
# SUMMA vs the 1.5D schedules over c × b — for the sparse×dense
# tall-skinny shape) establishes the true optimum under the same
# deterministic modeled objective, and the target fails when any pick
# lands more than 10% above it.
plan:
	$(GO) run ./cmd/spgemm-bench -plangate -scale tiny

# kernelgate: the kernel/merger-selection gate the nightly workflow
# enforces. For every planner-gate shape, the planner's kernel and merger
# picks are priced against an exhaustive option sweep over the *measured*
# work aggregates of a real staged run (inverted from the meters, so the
# oracle prices what actually happened, not a prediction of it), and the
# target fails when a pick lands more than 10% above the sweep's best or a
# pick-vs-defaults differential run is not bit-identical per rank.
kernelgate:
	$(GO) run ./cmd/spgemm-bench -kernelgate -scale tiny

# bench-kernels: regenerate BENCH_kernels.json — the recorded thread sweep
# of the unsorted-hash local multiply and the heap/hash/hybrid crossover
# measurements on this runner. Wall-clock numbers; informational (the
# checked-in snapshot documents the runner the defaults were sanity-checked
# on), not a regression gate.
bench-kernels:
	$(GO) test -run='^$$' -bench='HashSpGEMMParallel|KernelCrossover' -benchtime=0.5s ./internal/localmm \
	| awk 'BEGIN{n=0} /^cpu:/{cpu=$$0; sub(/^cpu: */,"",cpu)} /^goos:/{goos=$$2} \
	  /^Benchmark/{name=$$1; sub(/^Benchmark/,"",name); vals[n]=sprintf("    \"%s\": %s",name,$$3); n++} \
	  END{print "{"; printf "  \"cpu\": \"%s\",\n  \"goos\": \"%s\",\n  \"unit\": \"ns/op\",\n  \"regenerate\": \"make bench-kernels\",\n  \"ns_per_op\": {\n", cpu, goos; \
	  for(i=0;i<n;i++) printf "%s%s\n", vals[i], (i<n-1?",":""); print "  }"; print "}"}' \
	> BENCH_kernels.json
	@cat BENCH_kernels.json

# trace: record one pinned gate shape (the overlapped Friendster fig-6
# analogue) with the span recorder on and write the per-rank Chrome
# trace-event timeline to trace.json — load it in chrome://tracing or
# ui.perfetto.dev. `TRACE_SHAPE=<name>` picks another gate shape. The
# nightly workflow uploads the artifact so every night's schedule can be
# eyeballed against the gate numbers it produced.
TRACE_SHAPE ?= fig6-friendster-overlapped
trace:
	$(GO) run ./cmd/spgemm-bench -trace trace.json -traceshape $(TRACE_SHAPE)

# bench-obs: regenerate BENCH_obs.json — the measured cost of one metering
# charge sequence (comm + compute + hidden) with tracing off vs on. The off
# number is the tax every simulation pays for the observability hooks
# (target: zero allocations, nanoseconds); the on number is what a traced
# run pays per charge. Informational snapshot in the BENCH_kernels.json
# style, not a gate — the hard zero-alloc requirement is enforced by
# TestTracingDisabledAddsZeroAllocations in `make test`.
bench-obs:
	$(GO) test -run='^$$' -bench='TraceOverhead' -benchtime=500000x ./internal/mpi \
	| awk 'BEGIN{n=0} /^cpu:/{cpu=$$0; sub(/^cpu: */,"",cpu)} /^goos:/{goos=$$2} \
	  /^Benchmark/{name=$$1; sub(/^Benchmark/,"",name); vals[n]=sprintf("    \"%s\": %s",name,$$3); n++} \
	  END{print "{"; printf "  \"cpu\": \"%s\",\n  \"goos\": \"%s\",\n  \"unit\": \"ns/op\",\n  \"regenerate\": \"make bench-obs\",\n  \"ns_per_op\": {\n", cpu, goos; \
	  for(i=0;i<n;i++) printf "%s%s\n", vals[i], (i<n-1?",":""); print "  }"; print "}"}' \
	> BENCH_obs.json
	@cat BENCH_obs.json

# ci: what the GitHub Actions workflow runs on every push and pull request —
# build, static analysis, gofmt hygiene (doc), the full test suite, the race
# gate, and a bounded (30s) fuzz pass.
ci: build vet doc test race fuzz
