# Development entry points. `make build test` is the tier-1 gate;
# `make race` is the concurrency gate for the multithreaded local kernels.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test race vet bench fuzz ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race gate: the packages that run goroutines (simulated ranks in mpi/core,
# worker threads in localmm) under the race detector, race workouts included.
race:
	$(GO) test -race ./internal/localmm ./internal/core ./internal/mpi

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Bounded fuzz pass over the Matrix Market reader (seed corpus in
# internal/spmat/testdata/fuzz). Override FUZZTIME for longer local runs,
# e.g. `make fuzz FUZZTIME=5m`.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadMatrixMarket -fuzztime=$(FUZZTIME) ./internal/spmat

ci: build vet test race
