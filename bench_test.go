// Benchmarks regenerating the paper's evaluation artifacts: one benchmark per
// table and figure (BenchmarkFigNN / BenchmarkTableNN run the corresponding
// experiment at tiny scale and report its key metric), plus ablation
// micro-benchmarks for the design choices DESIGN.md calls out (kernel
// generations, merge strategy, batch splitting, hash sizing).
//
// Run with: go test -bench=. -benchmem
package spgemm_test

import (
	"fmt"
	"io"
	"testing"

	spgemm "repro"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/genmat"
	"repro/internal/localmm"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// benchExperiment runs a registered experiment end to end at tiny scale.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.RunOpts{Scale: experiments.ScaleTiny, Machine: costmodel.CoriKNL()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per evaluation artifact.

func BenchmarkTable02CommComplexity(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkTable03CompComplexity(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable05MatrixStats(b *testing.B)       { benchExperiment(b, "table5") }
func BenchmarkTable06LayerBatchImpact(b *testing.B)  { benchExperiment(b, "table6") }
func BenchmarkTable07KernelGenerations(b *testing.B) { benchExperiment(b, "table7") }
func BenchmarkFig03HipMCLIterations(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFig04LayerBatchSweep(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig05ABcastVsLayers(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig06StrongScalingSmall(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig07StrongScalingBig(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFig08SymbolicStep(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig09ParallelEfficiency(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10AATMetaclust(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11AATRiceKmers(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkFig12HyperThreading(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13KNLvsHaswell(b *testing.B)        { benchExperiment(b, "fig13") }
func BenchmarkFig14SmallMatrixLowProc(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15KernelAblation(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkPlannerVsOracle(b *testing.B)          { benchExperiment(b, "planner") }

// --- Ablation 1: local SpGEMM kernel generations (Fig 15 / Table VII). ---

func benchKernel(b *testing.B, k localmm.Kernel) {
	b.Helper()
	a := genmat.ProteinSimilarity(10, 8, 7)
	sr := semiring.PlusTimes()
	fn := k.Func()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(a, a, sr, 1)
	}
	b.ReportMetric(float64(localmm.Flops(a, a)), "flops/op")
}

func BenchmarkKernelHashUnsorted(b *testing.B) { benchKernel(b, localmm.KernelHashUnsorted) }
func BenchmarkKernelHashSorted(b *testing.B)   { benchKernel(b, localmm.KernelHashSorted) }
func BenchmarkKernelHeap(b *testing.B)         { benchKernel(b, localmm.KernelHeap) }
func BenchmarkKernelHybrid(b *testing.B)       { benchKernel(b, localmm.KernelHybrid) }

// --- Ablation 1b: thread sweep of the two-phase parallel hash kernel
// (Sec. IV-D runs 16 threads per process; on a multi-core runner threads=8
// should beat threads=1 by well over 1.5x on this workload). ---

func BenchmarkHashSpGEMMParallel(b *testing.B) {
	a := genmat.ProteinSimilarity(11, 8, 7)
	sr := semiring.PlusTimes()
	flops := float64(localmm.Flops(a, a))
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			b.ReportMetric(flops, "flops/op")
			for i := 0; i < b.N; i++ {
				localmm.ParallelSpGEMM(localmm.KernelHashUnsorted, a, a, sr, threads)
			}
		})
	}
}

// --- Ablation 2: merge algorithms on sorted vs unsorted inputs. ---

func mergeInputs(sorted bool) []*spmat.CSC {
	a := genmat.ProteinSimilarity(9, 8, 8)
	sr := semiring.PlusTimes()
	mats := make([]*spmat.CSC, 4)
	for i := range mats {
		s := genmat.Permutation(a.Rows, int64(i+1))
		if sorted {
			mats[i] = localmm.HashSpGEMMSorted(a, s, sr)
		} else {
			mats[i] = localmm.HashSpGEMM(a, s, sr)
		}
	}
	return mats
}

func BenchmarkMergeHashUnsortedInputs(b *testing.B) {
	mats := mergeInputs(false)
	sr := semiring.PlusTimes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		localmm.HashMerge(mats, sr, false)
	}
}

func BenchmarkMergeHashSortedOutput(b *testing.B) {
	mats := mergeInputs(false)
	sr := semiring.PlusTimes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		localmm.HashMerge(mats, sr, true)
	}
}

func BenchmarkMergeHeapUnsortedInputs(b *testing.B) {
	// The previous pipeline pays the sort inside the merge.
	mats := mergeInputs(false)
	sr := semiring.PlusTimes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		localmm.HeapMerge(mats, sr)
	}
}

func BenchmarkMergeHeapSortedInputs(b *testing.B) {
	mats := mergeInputs(true)
	sr := semiring.PlusTimes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		localmm.HeapMerge(mats, sr)
	}
}

// --- Ablation 3: merging per stage vs after all stages (Sec. III-A). ---

func BenchmarkMergeOnceAfterAllStages(b *testing.B) {
	a := genmat.ProteinSimilarity(9, 8, 9)
	sr := semiring.PlusTimes()
	stages := spmat.ColSplit(a, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := make([]*spmat.CSC, len(stages))
		for s, piece := range stages {
			parts[s] = localmm.HashSpGEMM(piece, spmat.RowRange(a, int32(s)*a.Rows/4, (int32(s)+1)*a.Rows/4), sr)
		}
		localmm.HashMerge(parts, sr, false)
	}
}

func BenchmarkMergeIncrementallyPerStage(b *testing.B) {
	a := genmat.ProteinSimilarity(9, 8, 9)
	sr := semiring.PlusTimes()
	stages := spmat.ColSplit(a, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc *spmat.CSC
		for s, piece := range stages {
			prod := localmm.HashSpGEMM(piece, spmat.RowRange(a, int32(s)*a.Rows/4, (int32(s)+1)*a.Rows/4), sr)
			if acc == nil {
				acc = prod
			} else {
				acc = localmm.HashMerge([]*spmat.CSC{acc, prod}, sr, false)
			}
		}
	}
}

// --- Ablation 4: block vs block-cyclic batch splitting (Sec. IV-B). ---

func BenchmarkBatchSplitCyclic(b *testing.B) {
	a := genmat.ProteinSimilarity(10, 8, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmat.ColSplitCyclic(a, 8, a.Cols/(8*4))
	}
}

func BenchmarkBatchSplitBlock(b *testing.B) {
	a := genmat.ProteinSimilarity(10, 8, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmat.ColSplit(a, 8)
	}
}

// --- Ablation 5: symbolic estimate vs numeric multiply cost (Fig 8). ---

func BenchmarkSymbolicEstimate(b *testing.B) {
	a := genmat.ProteinSimilarity(10, 8, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		localmm.SymbolicSpGEMM(a, a)
	}
}

func BenchmarkNumericMultiply(b *testing.B) {
	a := genmat.ProteinSimilarity(10, 8, 11)
	sr := semiring.PlusTimes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		localmm.HashSpGEMM(a, a, sr)
	}
}

// --- Ablation 6: distributed multiply across layer counts. ---

func benchDistributed(b *testing.B, p, l, batches int) {
	b.Helper()
	a := genmat.ProteinSimilarity(9, 8, 12)
	cluster := spgemm.NewCluster(p, l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cluster.Multiply(a, a, spgemm.Options{Batches: batches}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributed2D_P16(b *testing.B)        { benchDistributed(b, 16, 1, 1) }
func BenchmarkDistributed3D_P16L4(b *testing.B)      { benchDistributed(b, 16, 4, 1) }
func BenchmarkDistributedBatched_P16L4(b *testing.B) { benchDistributed(b, 16, 4, 4) }

// --- Ablation: pipelined vs staged SUMMA schedule. The pipelined schedule
// posts stage s+1's broadcasts before stage s's local multiply, so part of
// the modeled broadcast cost hides behind measured compute. The reported
// metrics expose the overlap: hidden-comm-s must be > 0 with the pipeline on
// (stage s+1's broadcasts demonstrably issued before stage s's multiply
// completed) and 0 with it off, while model-total-s — the paper's
// critical-path estimate — shrinks by exactly the hidden share. ---

func benchPipeline(b *testing.B, pipeline bool) {
	b.Helper()
	a := genmat.ProteinSimilarity(9, 8, 12)
	cluster := spgemm.NewCluster(16, 4)
	opts := spgemm.Options{Batches: 2, MeasureSymbolic: true, Pipeline: pipeline}
	var total, hidden float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := cluster.Multiply(a, a, opts)
		if err != nil {
			b.Fatal(err)
		}
		total += stats.TotalSeconds
		hidden += stats.HiddenCommSeconds
	}
	b.ReportMetric(total/float64(b.N), "model-total-s")
	b.ReportMetric(hidden/float64(b.N), "hidden-comm-s")
}

func BenchmarkSUMMAStaged(b *testing.B)    { benchPipeline(b, false) }
func BenchmarkSUMMAPipelined(b *testing.B) { benchPipeline(b, true) }

// --- End-to-end application benchmarks. ---

func BenchmarkAppTriangleCount(b *testing.B) {
	adj := genmat.RMAT(genmat.RMATConfig{Scale: 9, EdgeFactor: 8, Symmetrize: true, Seed: 13})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spgemm.TriangleCount(adj, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppOverlapPairs(b *testing.B) {
	reads := spgemm.RandomKmerMatrix(256, 8192, 16, 0.3, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spgemm.OverlapPairs(reads, 2, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppMarkovCluster(b *testing.B) {
	a := spgemm.RandomProteinNetwork(8, 8, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spgemm.MarkovCluster(a, spgemm.MCLConfig{MaxIter: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
