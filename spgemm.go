// Package spgemm is the public API of this reproduction of
// "Communication-Avoiding and Memory-Constrained Sparse Matrix-Matrix
// Multiplication at Extreme Scale" (Hussain, Selvitopi, Buluç, Azad —
// IPDPS 2021, arXiv:2010.08526).
//
// The package exposes:
//
//   - sparse matrices (CSC) with construction, I/O, and manipulation;
//   - serial and multithreaded SpGEMM kernels over arbitrary semirings (the
//     paper's sort-free hash kernels and the previous heap/hybrid
//     generation; Options.Threads and MultiplyParallel select the two-phase
//     parallel implementation, matching the paper's 16 threads per process);
//   - Cluster, a simulated distributed machine on which BatchedSUMMA3D — the
//     paper's integrated communication-avoiding, memory-constrained
//     algorithm — executes with per-step metering; Options.Pipeline runs the
//     fully-overlapped schedule (non-blocking collectives: stage broadcasts
//     prefetched within and across batches, the fiber AllToAll hidden behind
//     Merge-Layer) and reports the hidden communication in
//     Stats.HiddenCommSeconds;
//   - the three driving applications: Markov clustering (HipMCL), triangle
//     counting, and sequence-overlap detection (BELLA/PASTIS);
//   - a sparse×dense engine for tall-skinny panels (iterated SpMM, the GNN
//     propagation workload): Cluster.MultiplyDense runs the 1.5D ColA and
//     InnerABC schedules with replication factor c (Options.Algo,
//     Options.Replication) or densifies through SUMMA, and the analytical
//     planner picks among the three families under Options.AutoTune.
//
// A minimal multiply:
//
//	a := spgemm.RandomProteinNetwork(10, 8, 42)
//	cluster := spgemm.NewCluster(16, 4)       // 16 processes, 4 layers
//	c, stats, err := cluster.Multiply(a, a, spgemm.Options{})
//
// Batched, memory-constrained usage (the paper's headline feature):
//
//	opts := spgemm.Options{MemBytes: budget}   // symbolic step picks b
//	c, stats, err := cluster.Multiply(a, a, opts)
//	fmt.Println(stats.Batches, stats.PeakMemBytes)
package spgemm

import (
	"io"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/genmat"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// Matrix is a sparse matrix in compressed sparse column form. See the spmat
// package for the full method set (NNZ, Column, Transpose helpers, …).
type Matrix = spmat.CSC

// DenseMatrix is a row-major dense matrix — the tall-skinny operand of the
// sparse×dense path. See the spmat package for the full method set (At, Set,
// RowSlice, Clone, serialization, …).
type DenseMatrix = spmat.DenseMat

// Triple is a coordinate-format entry used to build matrices.
type Triple = spmat.Triple

// Semiring is the algebra SpGEMM multiplies over.
type Semiring = semiring.Semiring

// Machine describes an evaluation platform (α–β constants plus compute
// scaling); see NewCluster.
type Machine = costmodel.Machine

// Re-exported semirings.
var (
	// PlusTimes is ordinary arithmetic.
	PlusTimes = semiring.PlusTimes
	// MinPlus is the tropical (shortest-path) semiring.
	MinPlus = semiring.MinPlus
	// MaxMin is the bottleneck semiring.
	MaxMin = semiring.MaxMin
	// BoolOrAnd is Boolean reachability.
	BoolOrAnd = semiring.BoolOrAnd
	// PlusPairs counts structural matches (shared k-mers).
	PlusPairs = semiring.PlusPairs
)

// Format selects the in-memory storage of the local blocks a distributed
// multiplication works on: CSC (dense column pointers), DCSC (doubly
// compressed — metadata only for non-empty columns, the hypersparse format
// of CombBLAS), or the per-block auto heuristic. See Options.Format.
type Format = spmat.Format

// Storage formats for Options.Format.
const (
	// FormatAuto compresses a block exactly when fewer than half its
	// columns are occupied (the default).
	FormatAuto = spmat.FormatAuto
	// FormatCSC forces dense column pointers everywhere.
	FormatCSC = spmat.FormatCSC
	// FormatDCSC forces doubly-compressed storage everywhere.
	FormatDCSC = spmat.FormatDCSC
)

// ParseFormat maps a CLI string (csc|dcsc|auto) to a Format.
func ParseFormat(s string) (Format, error) { return spmat.ParseFormat(s) }

// SparseMode selects how A-blocks travel in the SUMMA stages: full-block
// tree broadcasts, point-to-point column subsets, or a per-stage cost-model
// decision between the two. See Options.SparseComm.
type SparseMode = mpi.SparseMode

// Sparse communication modes for Options.SparseComm.
const (
	// SparseOff ships full blocks everywhere — the default, byte-identical
	// to releases that predate the column-subset path.
	SparseOff = mpi.SparseOff
	// SparseAuto picks subsets or the full broadcast per stage, whichever
	// the α–β model prices cheaper.
	SparseAuto = mpi.SparseAuto
	// SparseOn forces the subset exchange on every stage.
	SparseOn = mpi.SparseOn
)

// ParseSparseMode maps a CLI string (off|auto|on) to a SparseMode.
func ParseSparseMode(s string) (SparseMode, error) { return mpi.ParseSparseMode(s) }

// Algo selects the distributed algorithm family Cluster.MultiplyDense runs.
// See Options.Algo.
type Algo = core.Algo

// Algorithm families for Options.Algo.
const (
	// AlgoSUMMA densifies the panel through the sparse 2D/3D SUMMA pipeline
	// (the zero value; for genuinely sparse panels at low concurrency it can
	// win on the larger per-message payloads).
	AlgoSUMMA = core.AlgoSUMMA
	// AlgoColA is 1.5D ColA: the sparse matrix is block-column partitioned
	// and rotates around a ring while the dense panel stays put, replicated
	// c-fold; iterated SpMM amortizes the one-time panel replication.
	AlgoColA = core.AlgoColA
	// AlgoInnerABC is 1.5D InnerABC: the sparse matrix is block-row
	// partitioned and stationary (replicated once, amortized across
	// iterations) while the dense panel rotates.
	AlgoInnerABC = core.AlgoInnerABC
)

// ParseAlgo maps a CLI string (summa|cola|innerabc) to an Algo.
func ParseAlgo(s string) (Algo, error) { return core.ParseAlgo(s) }

// Kernel selects the local multiply implementation.
type Kernel = localmm.Kernel

// Merger selects the merge implementation.
type Merger = localmm.Merger

// Local kernel generations (Sec. IV-D of the paper).
const (
	// KernelHashUnsorted is the paper's new sort-free hash kernel (default).
	KernelHashUnsorted = localmm.KernelHashUnsorted
	// KernelHashSorted sorts each output column.
	KernelHashSorted = localmm.KernelHashSorted
	// KernelHeap is the previous heap kernel (always sorted).
	KernelHeap = localmm.KernelHeap
	// KernelHybrid is the previous hybrid heap/hash kernel.
	KernelHybrid = localmm.KernelHybrid
	// MergerHash is the paper's new sort-free hash merge (default).
	MergerHash = localmm.MergerHash
	// MergerHeap is the previous heap merge.
	MergerHeap = localmm.MergerHeap
)

// NewMatrix returns an empty rows×cols matrix.
func NewMatrix(rows, cols int32) *Matrix { return spmat.New(rows, cols) }

// NewDenseMatrix returns a zero rows×cols dense matrix.
func NewDenseMatrix(rows, cols int32) *DenseMatrix { return spmat.NewDense(rows, cols) }

// DenseFromSparse materializes a sparse matrix as a dense one.
func DenseFromSparse(m *Matrix) *DenseMatrix { return spmat.DenseFromCSC(m) }

// DenseEqual compares two dense matrices bit for bit.
func DenseEqual(a, b *DenseMatrix) bool { return spmat.DenseEqual(a, b) }

// DenseEqualApprox compares two dense matrices entry-wise within tol.
func DenseEqualApprox(a, b *DenseMatrix, tol float64) bool {
	return spmat.DenseApproxEqual(a, b, tol)
}

// FromTriples builds a matrix from coordinates, accumulating duplicates.
func FromTriples(rows, cols int32, ts []Triple) (*Matrix, error) {
	return spmat.FromTriples(rows, cols, ts, nil)
}

// Identity returns the n×n identity.
func Identity(n int32) *Matrix { return spmat.Identity(n) }

// Transpose returns the transpose with sorted columns.
func Transpose(m *Matrix) *Matrix { return spmat.Transpose(m) }

// Equal compares two matrices exactly, independent of within-column
// ordering. Distributed and serial multiplications of floating-point
// matrices can differ in summation order; use EqualApprox for those.
func Equal(a, b *Matrix) bool { return spmat.Equal(a, b) }

// EqualApprox compares two matrices entry-wise within tol.
func EqualApprox(a, b *Matrix, tol float64) bool { return spmat.ApproxEqual(a, b, tol) }

// ReadMatrixMarket parses a MatrixMarket coordinate stream.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return spmat.ReadMatrixMarket(r) }

// WriteMatrixMarket writes a MatrixMarket coordinate stream.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return spmat.WriteMatrixMarket(w, m) }

// MultiplySerial computes A·B on the host with the paper's hash kernel
// (sorted output). A nil semiring means plus-times.
func MultiplySerial(a, b *Matrix, sr *Semiring) *Matrix {
	if sr == nil {
		sr = semiring.PlusTimes()
	}
	return localmm.Multiply(a, b, sr)
}

// MultiplyParallel computes A·B on the host with the paper's multithreaded
// sort-free hash kernel (Sec. IV-D): a parallel symbolic pass sizes every
// output column exactly, then flop-balanced workers fill the columns in
// place. threads <= 1 is identical to MultiplySerial; results are equal for
// any thread count (bit-identical after canonical column sorting). A nil
// semiring means plus-times.
func MultiplyParallel(a, b *Matrix, sr *Semiring, threads int) *Matrix {
	if sr == nil {
		sr = semiring.PlusTimes()
	}
	return localmm.ParallelSpGEMM(localmm.KernelHashSorted, a, b, sr, threads)
}

// MultiplyDenseSerial computes A·B for a dense panel B on the host with the
// serial two-phase SpMM kernel — the reference the distributed schedules are
// bit-identical to.
func MultiplyDenseSerial(a *Matrix, b *DenseMatrix) *DenseMatrix {
	return localmm.SpMMSerial(a, b)
}

// Flops returns the number of multiplications needed for A·B.
func Flops(a, b *Matrix) int64 { return localmm.Flops(a, b) }

// NNZEstimate returns nnz(A·B) without forming the product (the symbolic
// kernel of Alg 3).
func NNZEstimate(a, b *Matrix) int64 { return localmm.SymbolicSpGEMM(a, b) }

// RandomProteinNetwork generates a symmetric, weighted, reflexive power-law
// matrix with 2^scale rows — a protein-similarity-network analogue.
func RandomProteinNetwork(scale, edgeFactor int, seed int64) *Matrix {
	return genmat.ProteinSimilarity(scale, edgeFactor, seed)
}

// RandomGraph generates an R-MAT power-law graph with 2^scale vertices.
func RandomGraph(scale, edgeFactor int, symmetric bool, seed int64) *Matrix {
	return genmat.RMAT(genmat.RMATConfig{
		Scale: scale, EdgeFactor: edgeFactor, Symmetrize: symmetric, Seed: seed,
	})
}

// RandomKmerMatrix generates a reads×kmers incidence matrix with overlapping
// read structure for AAᵀ studies.
func RandomKmerMatrix(reads, kmers int32, kmersPerRead int, overlap float64, seed int64) *Matrix {
	return genmat.Kmer(genmat.KmerConfig{
		Reads: reads, Kmers: kmers, KmersPerRead: kmersPerRead, Overlap: overlap, Seed: seed,
	})
}

// Options configures a distributed multiplication. The zero value runs the
// paper's defaults: sort-free hash kernels, unconstrained memory (b = 1).
type Options struct {
	// Semiring defaults to plus-times.
	Semiring *Semiring
	// Kernel and Merger select the local implementations.
	Kernel Kernel
	Merger Merger
	// MemBytes is the aggregate memory budget; when positive the symbolic
	// step (Alg 3) picks the batch count.
	MemBytes int64
	// Batches forces a batch count, bypassing the symbolic step.
	Batches int
	// MeasureSymbolic runs (and meters) the symbolic step even when Batches
	// is forced.
	MeasureSymbolic bool
	// Threads is the number of worker goroutines each rank uses inside its
	// local multiply and merge kernels (the paper runs 16 per process on
	// Cori-KNL). 0 or 1 keeps the local kernels serial — the default, so
	// metered experiment shapes are unchanged. Workers run inside the rank's
	// compute-measurement token, so intra-rank parallelism shortens measured
	// compute time without perturbing the communication model.
	Threads int
	// Pipeline overlaps communication with computation across the whole
	// schedule: each SUMMA stage's broadcasts are posted before the previous
	// stage's local multiply (likewise in the symbolic pass), the last stage
	// of batch t prefetches batch t+1's first broadcasts so the pipeline
	// never drains at batch boundaries, and the fiber AllToAll completes
	// while the own-layer share of Merge-Layer still runs. Hidden
	// communication is reported in Stats.HiddenCommSeconds and per step in
	// StepStat.HiddenCommSeconds; the per-step breakdown keeps only the
	// exposed remainder. Output is bit-identical to the staged schedule.
	// Default off — the paper's strictly staged schedule, with communication
	// volume and modeled comm time metered byte-identically to previous
	// releases (packing before the fiber exchange is now counted as
	// Merge-Layer compute).
	Pipeline bool
	// Format selects the in-memory block storage: FormatAuto (default)
	// compresses each local block to DCSC exactly when fewer than half its
	// columns are occupied — the hypersparse regime the paper's Rice-kmers
	// AAᵀ lives in at high layer counts — FormatCSC forces dense column
	// pointers everywhere (the pre-knob behavior), and FormatDCSC forces
	// compression. The knob never changes output values or communication
	// volume; it removes the O(cols)-per-block metadata from kernels and
	// footprints, so the symbolic step can choose fewer batches for
	// hypersparse inputs under the same MemBytes.
	Format Format
	// SparseComm selects the column-subset A-broadcast path: each SUMMA
	// stage's receivers get only the A-columns their local multiply touches
	// (the nonzero rows of their B block), sent point-to-point, instead of
	// the full block over the broadcast tree. SparseOff (default) keeps the
	// full broadcast and reproduces the historical metering bit-for-bit;
	// SparseAuto decides per stage from the α–β model; SparseOn forces
	// subsets. Output values are bit-identical in all three modes — only
	// modeled communication changes.
	SparseComm SparseMode
	// AutoTune hands every remaining knob to the analytical planner: the
	// cluster's layer count, the batch count, Format, and Pipeline are
	// replaced by the best configuration the cost model predicts for this
	// input pair under MemBytes — the paper's l/b/format sweeps decided
	// analytically instead of by hand. The decision is deterministic; the
	// executed configuration is reported in Stats.Layers, Stats.Batches,
	// Stats.Format, and Stats.Pipeline. For MultiplyDense the planner
	// additionally decides the algorithm family and replication factor
	// (Stats.Algo, Stats.Replication).
	AutoTune bool
	// Algo selects the distributed algorithm family for MultiplyDense:
	// AlgoSUMMA (the zero value) densifies the panel through the sparse
	// pipeline, AlgoColA and AlgoInnerABC run the 1.5D schedules. Ignored by
	// the sparse×sparse Multiply.
	Algo Algo
	// Replication is c, the 1.5D replication factor of MultiplyDense: the p
	// ranks form a ring of p/c positions × c layers, the stationary operand
	// is replicated c-fold, and rotation rounds shrink from p to p/c².
	// Requires c² | p; 0 means 1 (the pure ring algorithm). Ignored by
	// AlgoSUMMA and the sparse×sparse Multiply.
	Replication int
	// Channels is the number of outstanding overlap channels the pipelined
	// schedule may hide collectives behind — k NIC injection queues in the
	// overlap-ledger model. 0 means 1 (the single-channel ledger). Like
	// Kernel and Merger, the knob never changes output values or
	// communication volume, only the modeled hidden share. Meaningful only
	// with Pipeline.
	Channels int
}

func (o Options) toCore() core.Options {
	return core.Options{
		Semiring:     o.Semiring,
		Kernel:       o.Kernel,
		Merger:       o.Merger,
		MemBytes:     o.MemBytes,
		ForceBatches: o.Batches,
		RunSymbolic:  o.MeasureSymbolic,
		Threads:      o.Threads,
		Pipeline:     o.Pipeline,
		Format:       o.Format,
		SparseComm:   o.SparseComm,
		AutoTune:     o.AutoTune,
		Algo:         o.Algo,
		Replication:  o.Replication,
		Channels:     o.Channels,
	}
}

// BatchHook observes (and may prune) each finished batch of the local output;
// see Cluster.MultiplyBatched.
type BatchHook = core.BatchHook

// Stats reports what a distributed multiplication did.
type Stats struct {
	// Batches is the executed batch count (the symbolic decision unless
	// forced).
	Batches int
	// Layers is the executed layer count — the cluster's own unless
	// Options.AutoTune replaced it.
	Layers int
	// Format and Pipeline are the executed storage and schedule knobs
	// (relevant with Options.AutoTune, which may override the requested
	// ones).
	Format   Format
	Pipeline bool
	// Algo and Replication are the executed algorithm family and 1.5D
	// replication factor of a MultiplyDense run (AlgoSUMMA and 0 for the
	// sparse×sparse path).
	Algo        Algo
	Replication int
	// PeakMemBytes is the max-over-ranks modeled memory high-water mark.
	PeakMemBytes int64
	// Flops is the total multiplication count across ranks.
	Flops int64
	// Steps maps each of the paper's seven steps to (modeled comm seconds,
	// measured compute seconds, payload bytes).
	Steps map[string]StepStat
	// TotalSeconds is the modeled critical-path time: max over ranks of
	// modeled communication plus measured computation. With Options.Pipeline
	// it counts only exposed communication — the hidden share is reported
	// separately below.
	TotalSeconds float64
	// HiddenCommSeconds is the modeled communication time that overlapped
	// with local compute under Options.Pipeline (max over ranks, summed
	// across the Symbolic/A-Broadcast/B-Broadcast/AllToAll-Fiber hidden
	// categories). Zero when pipelining is off.
	HiddenCommSeconds float64
}

// StepStat is one step's aggregated metering.
type StepStat struct {
	CommSeconds    float64
	ComputeSeconds float64
	Bytes          int64
	Messages       int64
	// HiddenCommSeconds is the share of this step's modeled communication
	// that overlapped with compute under Options.Pipeline (zero otherwise;
	// always zero for the compute steps, which hide communication rather
	// than being hidden).
	HiddenCommSeconds float64
}

// StepNames lists the seven steps in the paper's order.
func StepNames() []string { return append([]string(nil), core.Steps...) }

// Cluster is a simulated distributed machine: p goroutine ranks on a
// √(p/l)×√(p/l)×l grid with α–β-modeled communication.
type Cluster struct {
	procs, layers int
	machine       Machine
}

// NewCluster returns a cluster with p processes in l layers on the default
// Cori-KNL-like machine model. p must be l times a perfect square.
func NewCluster(p, l int) *Cluster {
	return &Cluster{procs: p, layers: l, machine: costmodel.CoriKNL()}
}

// OnMachine returns a copy of the cluster using the given machine model.
func (c *Cluster) OnMachine(m Machine) *Cluster {
	return &Cluster{procs: c.procs, layers: c.layers, machine: m}
}

// Procs returns the process count.
func (c *Cluster) Procs() int { return c.procs }

// Layers returns the layer count.
func (c *Cluster) Layers() int { return c.layers }

// KNL, Haswell, and LocalHost are the predefined machine models.
func KNL() Machine       { return costmodel.CoriKNL() }
func Haswell() Machine   { return costmodel.CoriHaswell() }
func LocalHost() Machine { return costmodel.LocalHost() }

// Multiply runs BatchedSUMMA3D for C = A·B and assembles the global result.
func (c *Cluster) Multiply(a, b *Matrix, opts Options) (*Matrix, *Stats, error) {
	return c.multiply(a, b, opts, nil)
}

// MultiplyDense computes C = A·B for a dense n×d panel B (iterated SpMM, the
// GNN propagation workload) and assembles the global dense result.
// Options.Algo picks the family: the 1.5D ColA or InnerABC schedules with
// Options.Replication-fold replication, or AlgoSUMMA, which densifies the
// panel through the sparse pipeline. Only the plus-times semiring is
// supported (a dense accumulator has no additive identity for the others).
// Output is bit-identical to MultiplyDenseSerial for every configuration.
func (c *Cluster) MultiplyDense(a *Matrix, b *DenseMatrix, opts Options) (*DenseMatrix, *Stats, error) {
	rc := core.RunConfig{P: c.procs, L: c.layers, Cost: c.machine.Cost(), Opts: opts.toCore()}
	if opts.AutoTune {
		// Resolve the plan here (as in multiply) so the executed algorithm,
		// replication, and batch count can be reported in Stats, under the
		// cluster's full machine model.
		var err error
		if rc, _, err = core.AutoTuneDenseOnMachine(a, b, rc, c.machine); err != nil {
			return nil, nil, err
		}
	}
	out, results, summary, err := core.MultiplyDense(a, b, rc)
	if err != nil {
		return nil, nil, err
	}
	st := &Stats{Steps: make(map[string]StepStat)}
	for _, r := range results {
		st.Batches = r.Batches
		st.Flops += r.LocalFlops
		if r.PeakMemBytes > st.PeakMemBytes {
			st.PeakMemBytes = r.PeakMemBytes
		}
	}
	if results == nil {
		// The SUMMA arm runs the sparse pipeline; the forced batch count is
		// the executed one (the planner pins it under AutoTune).
		if st.Batches = rc.Opts.ForceBatches; st.Batches < 1 {
			st.Batches = 1
		}
	}
	for _, step := range core.Steps {
		s := summary.Step(step)
		stat := StepStat{
			CommSeconds:    s.CommSeconds * c.machine.CommScale,
			ComputeSeconds: s.ComputeSeconds * c.machine.ComputeScale,
			Bytes:          s.Bytes,
			Messages:       s.Messages,
		}
		if hc := core.HiddenFor(step); hc != "" {
			stat.HiddenCommSeconds = summary.Step(hc).HiddenSeconds * c.machine.CommScale
		}
		st.Steps[step] = stat
		st.TotalSeconds += stat.CommSeconds + stat.ComputeSeconds
	}
	for _, step := range core.HiddenSteps {
		st.HiddenCommSeconds += summary.Step(step).HiddenSeconds * c.machine.CommScale
	}
	st.Layers = rc.L
	st.Pipeline = rc.Opts.Pipeline
	st.Algo = rc.Opts.Algo
	if rc.Opts.Algo != core.AlgoSUMMA {
		st.Replication = rc.Opts.Replication
		if st.Replication == 0 {
			st.Replication = 1
		}
		st.Layers = 0
	}
	return out, st, nil
}

// MultiplyBatched runs BatchedSUMMA3D, invoking hook on every rank for every
// finished batch (the memory-constrained consumption pattern: prune inside
// the hook, or return an empty matrix to discard). The assembled result
// reflects the hook's pruning.
func (c *Cluster) MultiplyBatched(a, b *Matrix, opts Options, hook func(rank, batch int, globalCols []int32, piece *Matrix) *Matrix) (*Matrix, *Stats, error) {
	var hf core.HookFactory
	if hook != nil {
		hf = func(rank int) core.BatchHook {
			return func(batch int, cols []int32, m *Matrix) *Matrix {
				return hook(rank, batch, cols, m)
			}
		}
	}
	return c.multiply(a, b, opts, hf)
}

func (c *Cluster) multiply(a, b *Matrix, opts Options, hf core.HookFactory) (*Matrix, *Stats, error) {
	rc := core.RunConfig{P: c.procs, L: c.layers, Cost: c.machine.Cost(), Opts: opts.toCore()}
	if opts.AutoTune {
		// Resolve the plan here (rather than inside core.Multiply) so the
		// executed configuration can be reported in Stats, and under the
		// cluster's full machine model so the planner weighs communication
		// with the same CommScale the reported stats will carry.
		var err error
		if rc, _, err = core.AutoTuneOnMachine(a, b, rc, c.machine); err != nil {
			return nil, nil, err
		}
	}
	out, results, summary, err := core.Multiply(a, b, rc, hf)
	if err != nil {
		return nil, nil, err
	}
	st := c.stats(results, summary)
	st.Layers = rc.L
	st.Format = rc.Opts.Format
	st.Pipeline = rc.Opts.Pipeline
	return out, st, nil
}

// stats converts internal results into the public Stats.
func (c *Cluster) stats(results []*core.Result, summary *mpi.Summary) *Stats {
	st := &Stats{Steps: make(map[string]StepStat), Batches: results[0].Batches}
	for _, r := range results {
		st.Flops += r.LocalFlops
		if r.PeakMemBytes > st.PeakMemBytes {
			st.PeakMemBytes = r.PeakMemBytes
		}
	}
	for _, step := range core.Steps {
		s := summary.Step(step)
		stat := StepStat{
			CommSeconds:    s.CommSeconds * c.machine.CommScale,
			ComputeSeconds: s.ComputeSeconds * c.machine.ComputeScale,
			Bytes:          s.Bytes,
			Messages:       s.Messages,
		}
		if hc := core.HiddenFor(step); hc != "" {
			stat.HiddenCommSeconds = summary.Step(hc).HiddenSeconds * c.machine.CommScale
		}
		st.Steps[step] = stat
		st.TotalSeconds += stat.CommSeconds + stat.ComputeSeconds
	}
	for _, step := range core.HiddenSteps {
		st.HiddenCommSeconds += summary.Step(step).HiddenSeconds * c.machine.CommScale
	}
	return st
}

// RowOffsetOf returns the global row index of local row 0 for a given rank
// of this cluster over a matrix with the given row count; hooks need it to
// translate local row indices.
func (c *Cluster) RowOffsetOf(rows int32, rank int) int32 {
	return core.RowOffsetFor(rows, c.procs, c.layers, rank)
}
