package spgemm

import (
	"repro/internal/apps/bfs"
	"repro/internal/apps/jaccard"
	"repro/internal/apps/matching"
	"repro/internal/apps/mcl"
	"repro/internal/apps/overlap"
	"repro/internal/apps/tricount"
	"repro/internal/core"
)

// MCLConfig configures Markov clustering (the HipMCL application of
// Sec. V-C).
type MCLConfig struct {
	// Inflation is the entry-wise power (default 2).
	Inflation float64
	// PruneThreshold drops small entries (default 1e-4).
	PruneThreshold float64
	// TopK keeps at most this many entries per column (default 64).
	TopK int
	// MaxIter bounds iterations (default 60).
	MaxIter int
	// Cluster, when non-nil, runs every expansion on the simulated cluster
	// with the given options (MemBytes triggers batching as in HipMCL).
	Cluster *Cluster
	// MemBytes is the aggregate memory budget for distributed expansions.
	MemBytes int64
}

// MCLResult is the clustering outcome.
type MCLResult struct {
	// Labels assigns each node a cluster id in [0, NumClusters).
	Labels []int32
	// NumClusters counts distinct clusters.
	NumClusters int
	// Converged reports whether the chaos measure settled before MaxIter.
	Converged bool
	// Iterations is the number of expansion rounds executed.
	Iterations int
}

// MarkovCluster clusters the nodes of a symmetric, non-negative similarity
// matrix.
func MarkovCluster(a *Matrix, cfg MCLConfig) (*MCLResult, error) {
	inner := mcl.Config{
		Inflation:      cfg.Inflation,
		PruneThreshold: cfg.PruneThreshold,
		TopK:           cfg.TopK,
		MaxIter:        cfg.MaxIter,
	}
	if cfg.Cluster != nil {
		inner.Dist = &core.RunConfig{
			P:    cfg.Cluster.procs,
			L:    cfg.Cluster.layers,
			Cost: cfg.Cluster.machine.Cost(),
			Opts: core.Options{MemBytes: cfg.MemBytes, RunSymbolic: cfg.MemBytes > 0},
		}
	}
	res, err := mcl.Cluster(a, inner)
	if err != nil {
		return nil, err
	}
	return &MCLResult{
		Labels:      res.Labels,
		NumClusters: res.NumClusters,
		Converged:   res.Converged,
		Iterations:  len(res.Iters),
	}, nil
}

// TriangleCount counts triangles in a symmetric 0/1 adjacency matrix. With a
// nil cluster it runs serially; otherwise the L·U product runs as a batched
// distributed SpGEMM whose wedge matrix is consumed batch-by-batch.
func TriangleCount(adj *Matrix, cluster *Cluster) (int64, error) {
	if cluster == nil {
		return tricount.CountSerial(adj)
	}
	rc := core.RunConfig{P: cluster.procs, L: cluster.layers, Cost: cluster.machine.Cost()}
	n, _, err := tricount.CountDistributed(adj, rc)
	return n, err
}

// OverlapPair is one candidate read overlap: reads R1 < R2 share Shared
// k-mers.
type OverlapPair = overlap.Pair

// OverlapPairs finds read pairs sharing at least minShared k-mers in a
// reads×kmers incidence matrix (the BELLA/PASTIS AAᵀ pattern). With a nil
// cluster it runs serially.
func OverlapPairs(a *Matrix, minShared int64, cluster *Cluster) ([]OverlapPair, error) {
	if cluster == nil {
		return overlap.FindPairsSerial(a, minShared)
	}
	rc := core.RunConfig{P: cluster.procs, L: cluster.layers, Cost: cluster.machine.Cost()}
	pairs, _, err := overlap.FindPairsDistributed(a, minShared, rc)
	return pairs, err
}

// JaccardPair is one row pair with its Jaccard similarity coefficient.
type JaccardPair = jaccard.Pair

// JaccardPairs returns every row pair of the binary feature matrix a with
// Jaccard similarity at least minJ ∈ (0, 1] — the all-pairs genome-comparison
// formulation the paper cites [14]. With a nil cluster it runs serially;
// otherwise the similarity matrix is formed in batches and discarded.
func JaccardPairs(a *Matrix, minJ float64, cluster *Cluster) ([]JaccardPair, error) {
	if cluster == nil {
		return jaccard.AllPairsSerial(a, minJ)
	}
	rc := core.RunConfig{P: cluster.procs, L: cluster.layers, Cost: cluster.machine.Cost()}
	pairs, _, err := jaccard.AllPairsDistributed(a, minJ, rc)
	return pairs, err
}

// BFSLevels holds multi-source BFS distances; see MultiSourceBFS.
type BFSLevels = bfs.Levels

// MultiSourceBFS runs breadth-first search from several sources at once as
// iterated Boolean SpGEMM (the GraphBLAS formulation). With a nil cluster
// the frontier expansions run serially.
func MultiSourceBFS(adj *Matrix, sources []int32, cluster *Cluster) (*BFSLevels, error) {
	if cluster == nil {
		return bfs.MultiSourceSerial(adj, sources)
	}
	rc := core.RunConfig{P: cluster.procs, L: cluster.layers, Cost: cluster.machine.Cost()}
	return bfs.MultiSourceDistributed(adj, sources, rc)
}

// MatchingResult is a heavy-connectivity matching of vertices.
type MatchingResult = matching.Result

// HeavyConnectivityMatching greedily matches the rows (vertices) of a
// vertex×hyperedge incidence matrix by shared-hyperedge count — the
// hypergraph-coarsening step the paper cites as a batched AAᵀ application
// (Zoltan [18]). With a nil cluster it runs serially.
func HeavyConnectivityMatching(a *Matrix, cluster *Cluster) (*MatchingResult, error) {
	if cluster == nil {
		return matching.HeavyConnectivitySerial(a)
	}
	rc := core.RunConfig{P: cluster.procs, L: cluster.layers, Cost: cluster.machine.Cost()}
	res, _, err := matching.HeavyConnectivityDistributed(a, rc)
	return res, err
}
