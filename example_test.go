package spgemm_test

import (
	"fmt"

	spgemm "repro"
)

// ExampleCluster_Multiply multiplies a small matrix on a simulated 4-rank
// cluster and verifies the result against the serial kernel.
func ExampleCluster_Multiply() {
	a, _ := spgemm.FromTriples(4, 4, []spgemm.Triple{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 2, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 0, Val: 1},
	})
	cluster := spgemm.NewCluster(4, 1)
	c, stats, err := cluster.Multiply(a, a, spgemm.Options{Batches: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("nnz(C):", c.NNZ())
	fmt.Println("batches:", stats.Batches)
	fmt.Println("matches serial:", spgemm.Equal(c, spgemm.MultiplySerial(a, a, nil)))
	// Output:
	// nnz(C): 4
	// batches: 2
	// matches serial: true
}

// ExampleCluster_MultiplyBatched shows the memory-constrained consumption
// pattern: every batch is inspected (and could be pruned) by the hook.
func ExampleCluster_MultiplyBatched() {
	a := spgemm.Identity(8)
	cluster := spgemm.NewCluster(4, 1)
	batches := make(map[int]bool)
	_, _, err := cluster.MultiplyBatched(a, a, spgemm.Options{Batches: 2},
		func(rank, batch int, cols []int32, piece *spgemm.Matrix) *spgemm.Matrix {
			batches[batch] = true
			return nil // keep the batch unchanged
		})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("batches observed:", len(batches))
	// Output:
	// batches observed: 2
}

// ExampleMultiplySerial multiplies over the Boolean semiring to test
// two-hop reachability.
func ExampleMultiplySerial() {
	// Path graph 0 → 1 → 2.
	a, _ := spgemm.FromTriples(3, 3, []spgemm.Triple{
		{Row: 1, Col: 0, Val: 1}, {Row: 2, Col: 1, Val: 1},
	})
	reach2 := spgemm.MultiplySerial(a, a, spgemm.BoolOrAnd())
	fmt.Println("0 reaches 2 in two hops:", reach2.At(2, 0) == 1)
	// Output:
	// 0 reaches 2 in two hops: true
}

// ExampleTriangleCount counts the triangles of the complete graph K4.
func ExampleTriangleCount() {
	var ts []spgemm.Triple
	for i := int32(0); i < 4; i++ {
		for j := int32(0); j < 4; j++ {
			if i != j {
				ts = append(ts, spgemm.Triple{Row: i, Col: j, Val: 1})
			}
		}
	}
	adj, _ := spgemm.FromTriples(4, 4, ts)
	n, _ := spgemm.TriangleCount(adj, nil)
	fmt.Println("triangles in K4:", n)
	// Output:
	// triangles in K4: 4
}

// ExampleOverlapPairs finds the one read pair that shares two k-mers.
func ExampleOverlapPairs() {
	a, _ := spgemm.FromTriples(3, 6, []spgemm.Triple{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
		{Row: 2, Col: 5, Val: 1},
	})
	pairs, _ := spgemm.OverlapPairs(a, 2, nil)
	for _, p := range pairs {
		fmt.Printf("reads %d and %d share %d k-mers\n", p.R1, p.R2, p.Shared)
	}
	// Output:
	// reads 0 and 1 share 2 k-mers
}

// ExampleFlops previews the cost of a multiplication before running it.
func ExampleFlops() {
	a := spgemm.Identity(100)
	fmt.Println("flops:", spgemm.Flops(a, a))
	fmt.Println("nnz estimate:", spgemm.NNZEstimate(a, a))
	// Output:
	// flops: 100
	// nnz estimate: 100
}
