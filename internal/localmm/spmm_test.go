package localmm

import (
	"math/rand"
	"testing"

	"repro/internal/spmat"
)

// randomDensePanel builds a deterministic dense panel with small-integer
// values (exact arithmetic, so every summation order is bit-identical).
func randomDensePanel(rows, cols int32, seed int64) *spmat.DenseMat {
	rng := rand.New(rand.NewSource(seed))
	d := spmat.NewDense(rows, cols)
	for i := range d.Val {
		d.Val[i] = float64(rng.Intn(9) + 1)
	}
	return d
}

// spmmBruteForce is an independent O(rows·inner·cols) reference.
func spmmBruteForce(a *spmat.CSC, b *spmat.DenseMat) *spmat.DenseMat {
	da := spmat.DenseFromCSC(a)
	c := spmat.NewDense(a.Rows, b.Cols)
	for i := int32(0); i < a.Rows; i++ {
		for k := int32(0); k < a.Cols; k++ {
			av := da.At(i, k)
			if av == 0 {
				continue
			}
			for j := int32(0); j < b.Cols; j++ {
				c.Set(i, j, c.At(i, j)+av*b.At(k, j))
			}
		}
	}
	return c
}

// TestSpMMDifferential: SpMM must agree bit-for-bit with both the serial
// reference and a brute-force dense product, across thread counts, storage
// formats of A, and panel widths (including widths below the thread count).
func TestSpMMDifferential(t *testing.T) {
	shapes := []struct {
		rows, cols, d int32
		nnz           int
	}{
		{40, 30, 8, 200},
		{64, 64, 1, 100},
		{31, 57, 17, 400},
		{100, 10, 3, 50},
		{16, 300, 16, 90}, // hypersparse: most A columns empty
	}
	for si, sh := range shapes {
		a := randomMat(t, sh.rows, sh.cols, sh.nnz, int64(100+si))
		b := randomDensePanel(sh.cols, sh.d, int64(200+si))
		want := spmmBruteForce(a, b)
		ref := SpMMSerial(a, b)
		if !spmat.DenseEqual(want, ref) {
			t.Fatalf("shape %d: SpMMSerial differs from brute force", si)
		}
		for _, aop := range []spmat.Matrix{a, a.ToDCSC()} {
			if got := SpMMSerial(aop, b); !spmat.DenseEqual(ref, got) {
				t.Fatalf("shape %d: SpMMSerial over %v differs", si, aop.Format())
			}
			for _, threads := range []int{1, 2, 3, 8, 64} {
				got := SpMM(aop, b, threads)
				if !spmat.DenseEqual(ref, got) {
					t.Fatalf("shape %d: SpMM(%v, threads=%d) differs from serial reference",
						si, aop.Format(), threads)
				}
			}
		}
	}
}

// TestSpMMInto: accumulation must add onto existing contents, so folding two
// half-products equals the full product.
func TestSpMMInto(t *testing.T) {
	a := randomMat(t, 30, 40, 300, 7)
	b := randomDensePanel(40, 6, 8)
	want := SpMMSerial(a, b)

	left := spmat.ColRange(a, 0, 20)   // columns [0,20) of A
	right := spmat.ColRange(a, 20, 40) // columns [20,40)
	c := spmat.NewDense(30, 6)
	SpMMInto(c, left, spmat.DenseRowRange(b, 0, 20), 4)
	SpMMInto(c, right, spmat.DenseRowRange(b, 20, 40), 4)
	if !spmat.DenseEqual(want, c) {
		t.Fatal("column-split accumulation differs from the full product")
	}

	if got := SpMMFlops(a, 6); got != a.NNZ()*6 {
		t.Fatalf("SpMMFlops = %d, want %d", got, a.NNZ()*6)
	}
}

// sddmmBruteForce evaluates C = S ∘ (U·Vᵀ) entry by entry.
func sddmmBruteForce(s *spmat.CSC, u, v *spmat.DenseMat) *spmat.CSC {
	out := s.Clone()
	for j := int32(0); j < out.Cols; j++ {
		rows, vals := out.Column(j)
		for e, i := range rows {
			var dot float64
			for x := int32(0); x < u.Cols; x++ {
				dot += u.At(i, x) * v.At(j, x)
			}
			vals[e] *= dot
		}
	}
	return out
}

// TestSDDMMDifferential: SDDMM must match the brute-force reference across
// thread counts and sampling-matrix formats, and the output format must
// follow the sample's.
func TestSDDMMDifferential(t *testing.T) {
	s := randomMat(t, 25, 35, 150, 21)
	u := randomDensePanel(25, 7, 22)
	v := randomDensePanel(35, 7, 23)
	want := sddmmBruteForce(s, u, v)
	for _, sop := range []spmat.Matrix{s, s.ToDCSC()} {
		for _, threads := range []int{1, 3, 16} {
			got := SDDMM(sop, u, v, threads)
			if got.Format() != sop.Format() {
				t.Fatalf("SDDMM(%v) produced %v", sop.Format(), got.Format())
			}
			if !spmat.Equal(want, got.ToCSC()) {
				t.Fatalf("SDDMM(%v, threads=%d) differs from brute force", sop.Format(), threads)
			}
		}
	}
}
