package localmm

import "repro/internal/spmat"

// Flops returns the number of multiplications needed to compute A·B
// (the paper's "flops" quantity): Σ_j Σ_{i:B(i,j)≠0} nnz(A(:,i)).
func Flops(a, b *spmat.CSC) int64 {
	checkMulShapes(a, b)
	// Precompute column sizes of A once; then one pass over B's entries.
	var total int64
	for _, i := range b.RowIdx {
		total += a.ColPtr[i+1] - a.ColPtr[i]
	}
	return total
}

// ColFlops returns the per-column multiplication counts for A·B.
func ColFlops(a, b *spmat.CSC) []int64 {
	checkMulShapes(a, b)
	out := make([]int64, b.Cols)
	for j := int32(0); j < b.Cols; j++ {
		rows, _ := b.Column(j)
		var f int64
		for _, i := range rows {
			f += a.ColNNZ(i)
		}
		out[j] = f
	}
	return out
}

// symbolicStampLimit bounds the dense stamp array the symbolic kernel keeps
// (one int32 per output row). Local SUMMA blocks are far below it; gigantic
// row spaces fall back to the hash set.
const symbolicStampLimit = 1 << 24

// SymbolicSpGEMM computes nnz(A·B) without forming the product — the
// LocalSymbolic routine of Alg 3. It is much cheaper than LocalMultiply: no
// values are touched, and row de-duplication uses a generation-stamped dense
// array (O(1) insert, no collisions, no per-column clearing) instead of a
// hash table whenever the row dimension permits.
func SymbolicSpGEMM(a, b *spmat.CSC) int64 {
	checkMulShapes(a, b)
	if a.Rows > symbolicStampLimit {
		return symbolicHashed(a, b)
	}
	stamps := make([]int32, a.Rows)
	for i := range stamps {
		stamps[i] = -1
	}
	var total int64
	for j := int32(0); j < b.Cols; j++ {
		bRows, _ := b.Column(j)
		for _, i := range bRows {
			aRows := a.RowIdx[a.ColPtr[i]:a.ColPtr[i+1]]
			for _, r := range aRows {
				if stamps[r] != j {
					stamps[r] = j
					total++
				}
			}
		}
	}
	return total
}

// symbolicHashed is the hash-set fallback for enormous row spaces.
func symbolicHashed(a, b *spmat.CSC) int64 {
	var total int64
	var set *rowSet
	for j := int32(0); j < b.Cols; j++ {
		bRows, _ := b.Column(j)
		var colFlops int64
		for _, i := range bRows {
			colFlops += a.ColNNZ(i)
		}
		if colFlops == 0 {
			continue
		}
		if set == nil || 2*colFlops > int64(len(set.rows)) {
			set = newRowSet(colFlops)
		} else {
			set.reset()
		}
		for _, i := range bRows {
			aRows, _ := a.Column(i)
			for _, r := range aRows {
				set.insert(r)
			}
		}
		total += int64(len(set.occupied))
	}
	return total
}

// SymbolicColNNZ returns the per-column nnz of A·B.
func SymbolicColNNZ(a, b *spmat.CSC) []int64 {
	checkMulShapes(a, b)
	out := make([]int64, b.Cols)
	var set *rowSet
	for j := int32(0); j < b.Cols; j++ {
		bRows, _ := b.Column(j)
		var colFlops int64
		for _, i := range bRows {
			colFlops += a.ColNNZ(i)
		}
		if colFlops == 0 {
			continue
		}
		if set == nil || 2*colFlops > int64(len(set.rows)) {
			set = newRowSet(colFlops)
		} else {
			set.reset()
		}
		for _, i := range bRows {
			aRows, _ := a.Column(i)
			for _, r := range aRows {
				set.insert(r)
			}
		}
		out[j] = int64(len(set.occupied))
	}
	return out
}

// CompressionFactor returns flops / nnz(A·B), the paper's cf statistic
// (cf ≥ 1; high cf means heavy accumulation). Returns 0 for an empty product.
func CompressionFactor(a, b *spmat.CSC) float64 {
	nnz := SymbolicSpGEMM(a, b)
	if nnz == 0 {
		return 0
	}
	return float64(Flops(a, b)) / float64(nnz)
}

// rowSet is an open-addressing set of row indices.
type rowSet struct {
	rows     []int32
	mask     int32
	occupied []int32
}

func newRowSet(want int64) *rowSet {
	cap := int32(8)
	for int64(cap) < 2*want {
		cap <<= 1
	}
	s := &rowSet{rows: make([]int32, cap), mask: cap - 1}
	for i := range s.rows {
		s.rows[i] = emptySlot
	}
	return s
}

func (s *rowSet) reset() {
	for _, i := range s.occupied {
		s.rows[i] = emptySlot
	}
	s.occupied = s.occupied[:0]
}

func (s *rowSet) insert(r int32) {
	if 2*int32(len(s.occupied)) >= int32(len(s.rows)) {
		s.grow()
	}
	i := int32(uint32(r)*2654435769) & s.mask
	for {
		switch s.rows[i] {
		case r:
			return
		case emptySlot:
			s.rows[i] = r
			s.occupied = append(s.occupied, i)
			return
		}
		i = (i + 1) & s.mask
	}
}

func (s *rowSet) grow() {
	old := make([]int32, 0, len(s.occupied))
	for _, i := range s.occupied {
		old = append(old, s.rows[i])
	}
	cap := int32(len(s.rows)) * 2
	s.rows = make([]int32, cap)
	s.mask = cap - 1
	s.occupied = s.occupied[:0]
	for i := range s.rows {
		s.rows[i] = emptySlot
	}
	for _, r := range old {
		i := int32(uint32(r)*2654435769) & s.mask
		for s.rows[i] != emptySlot {
			i = (i + 1) & s.mask
		}
		s.rows[i] = r
		s.occupied = append(s.occupied, i)
	}
}
