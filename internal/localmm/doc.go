// Package localmm implements the in-process SpGEMM and merging kernels used
// by every SUMMA stage. It contains both generations the paper compares:
//
//   - "previous": heap-based column SpGEMM and heap-based merging, which keep
//     every intermediate sorted (Azad et al. [13]), and the hybrid heap/hash
//     kernel of Nagasaka et al. [25] that sorts each output column;
//   - "new" (Sec. IV-D): sort-free hash SpGEMM and sort-free hash merging,
//     which leave intermediates unsorted and defer all sorting to the final
//     Merge-Fiber.
//
// All kernels are column-Gustavson: C(:,j) = Σ_{i : B(i,j)≠0} A(:,i)·B(i,j),
// and all accept an arbitrary semiring.
//
// # Kernel and merger selection
//
// The Kernel and Merger enums name every generation for callers
// (ParseKernel/ParseMerger accept the CLI spellings; Kernel.Func and
// Merger.Merge dispatch). Selection is speed attribution only: every
// kernel × merger combination produces bit-identical output, including
// float64 values. That guarantee is engineered, not incidental — the hash
// paths accumulate each output entry in operand order, and the heap paths
// order rowHeap by (row, operand list) so same-row contributions pop in
// exactly that order; differential suites here, in core, and in the
// kernelsel experiment hold every combination to exact equality through
// full distributed runs. Which option is *fastest* for a block is the
// costmodel.KernelTable's call (heap below ~64 flops/column, hash above,
// hybrid on mixed columns), made at plan time by planner.Choice or per
// block at run time via core.Options.AutoKernel/AutoMerger, with measured
// times fed back into the table (online recalibration).
//
// # Symbolic kernels
//
// SymbolicSpGEMM (and its threaded form ParallelSymbolicSpGEMM) is the
// LOCALSYMBOLIC routine of Alg 3: it counts nnz(A·B) without touching
// values, using a generation-stamped dense array when the row space permits
// and a hash set otherwise. The distributed symbolic step builds the batch
// count decision from these counts, so they must be exact, not estimates —
// Flops, ColFlops, and CompressionFactor supply the companion statistics.
//
// # Multithreading
//
// Every kernel and merger also has a multithreaded form (ParallelSpGEMM,
// ParallelMerge, ParallelSymbolicSpGEMM, and the threads argument of
// Kernel.Func and Merger.Merge), mirroring the paper's
// 16-threads-per-process Cori-KNL configuration. The parallel plan is
// two-phase: a parallel symbolic pass computes the exact nonzero count of
// every output column, the output is allocated once from the prefix sum of
// those counts, and a parallel numeric pass fills each column in place.
// Workers own contiguous column ranges balanced by flop count (not column
// count), reuse pooled accumulator state across columns and calls, and
// never synchronize during the numeric pass because every column lands in a
// disjoint slice of the shared output.
//
// threads <= 1 runs the serial kernels unchanged, which is the default for
// all metered experiments: rank goroutines are already concurrent, and the
// mpi compute-token gate means parallel workers — when enabled — run inside
// a rank's measured compute section, shortening measured time without
// perturbing the communication model. Results are independent of the thread
// count: each output column is computed by one worker in serial operand
// order, so even float64 accumulation is bit-identical to the serial kernel
// (entry order within unsorted columns aside).
//
// # Storage-format-generic kernels
//
// MulMat, SymbolicMat, MergeMat, and MatFlops run the same algorithms over
// the spmat.Matrix storage interface. All-CSC operand sets dispatch to the
// specialized CSC kernels above; any doubly-compressed (DCSC) operand takes
// the hypersparse path, which iterates only the stored columns of the
// B-side operand (or the union of stored columns, for merges) so symbolic
// and numeric work on a hypersparse block is O(flops + nnz) with no O(cols)
// scan or allocation anywhere. Output format follows B — the stored columns
// of A·B are a subset of B's — and values are bit-identical to the CSC
// kernels for every format combination, thread count, and merger, because
// columns are visited in the same order and entries accumulate in the same
// operand order.
//
// # Sparse×dense kernels
//
// SpMM multiplies a sparse operand by a row-major dense panel
// (spmat.DenseMat) — the local kernel of the 1.5D ColA/InnerABC schedules —
// with SpMMInto folding each ring round's shifted block into a caller-owned
// resident accumulator and SpMMSerial as the differential reference
// distributed runs must match bit for bit on integer-valued operands. The
// threaded form splits the panel's columns evenly across workers (each
// dense column costs exactly nnz(A) flops), so values are identical for
// every thread count. SDDMM, the sampled dense-dense counterpart
// (C = S ∘ U·Vᵀ), covers the GNN-backprop companion operation, and
// SpMMFlops supplies the work-unit accounting the meters and planner share.
package localmm
