package localmm

import "sort"

// sortColumnSlices sorts the parallel (rows, vals) slices of one column by
// ascending row index.
func sortColumnSlices(rows []int32, vals []float64) {
	if len(rows) < 2 {
		return
	}
	s := pairSorter{rows: rows, vals: vals}
	if sort.IsSorted(s) {
		return
	}
	sort.Sort(s)
}

type pairSorter struct {
	rows []int32
	vals []float64
}

func (s pairSorter) Len() int           { return len(s.rows) }
func (s pairSorter) Less(i, j int) bool { return s.rows[i] < s.rows[j] }
func (s pairSorter) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}
