package localmm

import (
	"testing"
	"testing/quick"

	"math/rand"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

func TestMaskedMatchesMultiplyThenMask(t *testing.T) {
	a := randomMat(t, 30, 30, 200, 80)
	b := randomMat(t, 30, 30, 200, 81)
	mask := randomMat(t, 30, 30, 120, 82)
	sr := semiring.PlusTimes()
	want := spmat.Mask(Multiply(a, b, sr), mask)
	got := MaskedSpGEMM(a, b, mask, sr)
	got.DropZeros() // Mask-by-reference drops masked positions never written
	want.DropZeros()
	if !spmat.Equal(got, want) {
		t.Error("masked SpGEMM differs from multiply-then-mask")
	}
}

func TestMaskedEmptyMask(t *testing.T) {
	a := randomMat(t, 10, 10, 40, 83)
	got := MaskedSpGEMM(a, a, spmat.New(10, 10), semiring.PlusTimes())
	if got.NNZ() != 0 {
		t.Errorf("empty mask produced %d entries", got.NNZ())
	}
}

func TestMaskedShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mask shape mismatch not caught")
		}
	}()
	MaskedSpGEMM(spmat.New(3, 3), spmat.New(3, 3), spmat.New(4, 3), semiring.PlusTimes())
}

func TestMaskedTriangleIdentity(t *testing.T) {
	// Masked count on K4: Σ((L·U) .* L) = 4 triangles.
	var ts []spmat.Triple
	for i := int32(0); i < 4; i++ {
		for j := int32(0); j < 4; j++ {
			if i > j {
				ts = append(ts, spmat.Triple{Row: i, Col: j, Val: 1})
			}
		}
	}
	l, _ := spmat.FromTriples(4, 4, ts, nil)
	u := spmat.Transpose(l)
	masked := MaskedSpGEMM(l, u, l, semiring.PlusTimes())
	if got := int64(masked.Sum() + 0.5); got != 4 {
		t.Errorf("K4 masked count=%d, want 4", got)
	}
}

func TestMaskedProperty(t *testing.T) {
	sr := semiring.PlusTimes()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int32(rng.Intn(20) + 2)
		a := randomMat(t, n, n, rng.Intn(80), seed+1)
		b := randomMat(t, n, n, rng.Intn(80), seed+2)
		mask := randomMat(t, n, n, rng.Intn(50), seed+3)
		want := spmat.Mask(Multiply(a, b, sr), mask)
		got := MaskedSpGEMM(a, b, mask, sr)
		got.DropZeros()
		want.DropZeros()
		return spmat.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSPAMatchesReference(t *testing.T) {
	a := randomMat(t, 40, 35, 250, 84)
	b := randomMat(t, 35, 42, 260, 85)
	sr := semiring.PlusTimes()
	want := Multiply(a, b, sr)
	got := SPASpGEMM(a, b, sr)
	if got.SortedCols {
		t.Error("SPA output should report unsorted")
	}
	if !spmat.Equal(got, want) {
		t.Error("SPA kernel differs from reference")
	}
}

func TestSPAMinPlus(t *testing.T) {
	a := randomMat(t, 20, 20, 100, 86)
	sr := semiring.MinPlus()
	want := HashSpGEMMSorted(a, a, sr)
	if !spmat.Equal(SPASpGEMM(a, a, sr), want) {
		t.Error("SPA min-plus differs")
	}
}

func TestSPAEmpty(t *testing.T) {
	got := SPASpGEMM(spmat.New(5, 5), spmat.New(5, 5), semiring.PlusTimes())
	if got.NNZ() != 0 {
		t.Error("empty SPA product has entries")
	}
}

func BenchmarkKernelSPA(b *testing.B) {
	a := randomMat(b, 1024, 1024, 20000, 87)
	sr := semiring.PlusTimes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SPASpGEMM(a, a, sr)
	}
}

func BenchmarkMaskedVsUnmasked(b *testing.B) {
	a := randomMat(b, 1024, 1024, 20000, 88)
	mask := randomMat(b, 1024, 1024, 5000, 89)
	sr := semiring.PlusTimes()
	b.Run("masked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MaskedSpGEMM(a, a, mask, sr)
		}
	})
	b.Run("multiply-then-mask", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spmat.Mask(HashSpGEMM(a, a, sr), mask)
		}
	})
}
