package localmm

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

// hyperMat builds a random rows×cols matrix with about nnz entries —
// hypersparse when nnz ≪ cols.
func hyperMat(t testing.TB, rows, cols int32, nnz int, seed int64) *spmat.CSC {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := make([]spmat.Triple, 0, nnz)
	for i := 0; i < nnz; i++ {
		ts = append(ts, spmat.Triple{
			Row: int32(rng.Intn(int(rows))),
			Col: int32(rng.Intn(int(cols))),
			Val: float64(rng.Intn(9) + 1),
		})
	}
	m, err := spmat.FromTriples(rows, cols, ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// asFormat converts per the format flag.
func asFormat(m *spmat.CSC, dcsc bool) spmat.Matrix {
	if dcsc {
		return m.ToDCSC()
	}
	return m
}

// TestMulMatDifferential: every kernel × every format combination of the
// operands must produce exactly the CSC kernels' values (spmat.Equal
// canonicalizes order, compares floats exactly), with the output format
// following B.
func TestMulMatDifferential(t *testing.T) {
	sr := semiring.PlusTimes()
	shapes := []struct {
		ar, ac, bc int32
		an, bn     int
	}{
		{40, 40, 40, 300, 300},   // dense-ish square
		{24, 512, 30, 400, 80},   // hypersparse A
		{30, 64, 2048, 200, 500}, // hypersparse B
		{16, 1024, 1024, 90, 95}, // both hypersparse
	}
	for si, sh := range shapes {
		a := hyperMat(t, sh.ar, sh.ac, sh.an, int64(100+si))
		b := hyperMat(t, sh.ac, sh.bc, sh.bn, int64(200+si))
		for _, k := range []Kernel{KernelHashUnsorted, KernelHashSorted, KernelHeap, KernelHybrid} {
			want := k.Func()(a, b, sr, 1)
			for _, aD := range []bool{false, true} {
				for _, bD := range []bool{false, true} {
					for _, threads := range []int{1, 4} {
						got := MulMat(k, asFormat(a, aD), asFormat(b, bD), sr, threads)
						wantFmt := spmat.FormatCSC
						if bD {
							wantFmt = spmat.FormatDCSC
						}
						if got.Format() != wantFmt {
							t.Fatalf("shape %d %v aD=%v bD=%v: output format %v, want %v", si, k, aD, bD, got.Format(), wantFmt)
						}
						if d, ok := got.(*spmat.DCSC); ok {
							if err := d.Validate(); err != nil {
								t.Fatalf("shape %d %v aD=%v bD=%v t=%d: invalid DCSC output: %v", si, k, aD, bD, threads, err)
							}
						}
						if !spmat.Equal(want, got.ToCSC()) {
							t.Fatalf("shape %d %v aD=%v bD=%v t=%d: values differ from CSC kernel", si, k, aD, bD, threads)
						}
					}
				}
			}
		}
	}
}

// TestMulMatOutputFormatFollowsB pins the output-format contract.
func TestMulMatOutputFormatFollowsB(t *testing.T) {
	sr := semiring.PlusTimes()
	a := hyperMat(t, 16, 256, 60, 1)
	b := hyperMat(t, 256, 512, 70, 2)
	if got := MulMat(KernelHashUnsorted, a.ToDCSC(), b.ToDCSC(), sr, 1); got.Format() != spmat.FormatDCSC {
		t.Errorf("dcsc·dcsc output is %v", got.Format())
	}
	if got := MulMat(KernelHashUnsorted, a.ToDCSC(), b, sr, 1); got.Format() != spmat.FormatCSC {
		t.Errorf("dcsc·csc output is %v", got.Format())
	}
	if got := MulMat(KernelHashUnsorted, a, b.ToDCSC(), sr, 1); got.Format() != spmat.FormatDCSC {
		t.Errorf("csc·dcsc output is %v", got.Format())
	}
}

// TestSymbolicAndFlopsMatAgree: the generic symbolic and flop counts must
// match the CSC routines for every format combination and thread count.
func TestSymbolicAndFlopsMatAgree(t *testing.T) {
	a := hyperMat(t, 32, 800, 250, 7)
	b := hyperMat(t, 800, 900, 260, 8)
	wantF := Flops(a, b)
	wantS := SymbolicSpGEMM(a, b)
	for _, aD := range []bool{false, true} {
		for _, bD := range []bool{false, true} {
			am, bm := asFormat(a, aD), asFormat(b, bD)
			if got := MatFlops(am, bm); got != wantF {
				t.Errorf("aD=%v bD=%v: MatFlops %d, want %d", aD, bD, got, wantF)
			}
			for _, threads := range []int{1, 4} {
				if got := SymbolicMat(am, bm, threads); got != wantS {
					t.Errorf("aD=%v bD=%v t=%d: SymbolicMat %d, want %d", aD, bD, threads, got, wantS)
				}
			}
		}
	}
}

// TestMergeMatDifferential: both mergers over uniform and mixed format
// operand sets must reproduce the CSC merges exactly.
func TestMergeMatDifferential(t *testing.T) {
	sr := semiring.PlusTimes()
	base := []*spmat.CSC{
		hyperMat(t, 20, 600, 150, 11),
		hyperMat(t, 20, 600, 140, 12),
		hyperMat(t, 20, 600, 20, 13), // very sparse operand
	}
	for _, mg := range []Merger{MergerHash, MergerHeap} {
		want := mg.Merge(base, sr, true, 1)
		// Format masks: all-CSC, all-DCSC, mixed.
		for mi, mask := range [][]bool{
			{false, false, false},
			{true, true, true},
			{true, false, true},
		} {
			mats := make([]spmat.Matrix, len(base))
			for i, m := range base {
				mats[i] = asFormat(m, mask[i])
			}
			for _, threads := range []int{1, 4} {
				got := MergeMat(mg, mats, sr, true, threads)
				if !spmat.Equal(want, got.ToCSC()) {
					t.Fatalf("%v mask %d t=%d: merged values differ", mg, mi, threads)
				}
				if mi == 1 && got.Format() != spmat.FormatDCSC {
					t.Fatalf("%v: all-DCSC merge produced %v", mg, got.Format())
				}
				if mi == 2 && got.Format() != spmat.FormatCSC {
					t.Fatalf("%v: mixed merge produced %v, want csc", mg, got.Format())
				}
			}
		}
	}
	// Unsorted hash merge keeps insertion order semantics.
	mats := []spmat.Matrix{base[0].ToDCSC(), base[1].ToDCSC()}
	want := HashMerge(base[:2], sr, false)
	got := MergeMat(MergerHash, mats, sr, false, 1)
	if got.Sorted() {
		t.Error("unsorted merge claimed sorted output")
	}
	if !spmat.Equal(want, got.ToCSC()) {
		t.Error("unsorted hash merge differs across formats")
	}
}

// TestHypersparseWorkIsNNZProportional is the operation-count assertion of
// the DCSC path: multiply and symbolic on blocks with ~2^30 logical columns
// and rows but only ~10^3 entries. Any O(cols) scan or allocation (a dense
// ColPtr would be 8 GiB) would blow the allocation budget measured here by
// orders of magnitude; the generic kernels must stay proportional to
// nnz/flops.
func TestHypersparseWorkIsNNZProportional(t *testing.T) {
	const dim = int32(1 << 30)
	const nnz = 1000
	sr := semiring.PlusTimes()

	// Build DCSC operands directly (a CSC intermediate would itself be
	// O(cols)).
	build := func(seed int64) *spmat.DCSC {
		rng := rand.New(rand.NewSource(seed))
		cols := make(map[int32][]int32, nnz/2)
		for i := 0; i < nnz; i++ {
			j := int32(rng.Intn(int(dim)))
			cols[j] = append(cols[j], int32(rng.Intn(int(dim))))
		}
		jcs := make([]int32, 0, len(cols))
		for j := range cols {
			jcs = append(jcs, j)
		}
		// Sort column indices.
		for i := 1; i < len(jcs); i++ {
			for k := i; k > 0 && jcs[k] < jcs[k-1]; k-- {
				jcs[k], jcs[k-1] = jcs[k-1], jcs[k]
			}
		}
		d := &spmat.DCSC{Rows: dim, Cols: dim, CP: []int64{0}}
		for _, j := range jcs {
			rows := cols[j]
			d.JC = append(d.JC, j)
			for _, r := range rows {
				d.IR = append(d.IR, r)
				d.Num = append(d.Num, 1)
			}
			d.CP = append(d.CP, int64(len(d.IR)))
		}
		return d
	}
	a := build(41)
	b := build(42)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	prod := MulMat(KernelHashUnsorted, a, b, sr, 1)
	sym := SymbolicMat(a, b, 1)
	flops := MatFlops(a, b)
	runtime.ReadMemStats(&after)

	// Generous bound: a few MB is plenty for 10^3-entry operands; a single
	// dense column-pointer array would need 8 GiB.
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 8<<20 {
		t.Fatalf("hypersparse multiply+symbolic allocated %d bytes — smells like an O(cols) scan", alloc)
	}
	if prod.NNZ() != sym {
		t.Fatalf("symbolic %d disagrees with numeric nnz %d", sym, prod.NNZ())
	}

	// Correctness against a brute-force triple-map reference.
	type cell struct{ r, c int32 }
	wantVals := make(map[cell]float64)
	a.EnumCols(func(aj int32, aRows []int32, aVals []float64) {
		// For each B entry with row index aj, contribute A's column aj.
		b.EnumCols(func(bj int32, bRows []int32, bVals []float64) {
			for p, br := range bRows {
				if br != aj {
					continue
				}
				for q := range aRows {
					wantVals[cell{aRows[q], bj}] += aVals[q] * bVals[p]
				}
			}
		})
	})
	gotCount := 0
	ok := true
	prod.ToDCSC().EnumCols(func(j int32, rows []int32, vals []float64) {
		for p := range rows {
			gotCount++
			if wantVals[cell{rows[p], j}] != vals[p] {
				ok = false
			}
		}
	})
	if !ok || gotCount != len(wantVals) {
		t.Fatalf("hypersparse product wrong: %d entries vs %d expected (values ok: %v)", gotCount, len(wantVals), ok)
	}
	if flops == 0 && len(wantVals) > 0 {
		t.Fatal("MatFlops reported zero work for a nonzero product")
	}
}
