package localmm

import (
	"fmt"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

// checkMergeShapes verifies all operands share one shape and returns it.
func checkMergeShapes(mats []*spmat.CSC) (rows, cols int32) {
	if len(mats) == 0 {
		panic("localmm: merge of zero matrices")
	}
	rows, cols = mats[0].Rows, mats[0].Cols
	for _, m := range mats {
		if m.Rows != rows || m.Cols != cols {
			panic(fmt.Sprintf("localmm: merge shape mismatch %v vs %dx%d", m, rows, cols))
		}
	}
	return rows, cols
}

// HashMerge adds a collection of same-shaped matrices entry-wise using a hash
// accumulator per column. It accepts unsorted inputs and produces unsorted
// output unless sortOutput is set (the final Merge-Fiber sorts; Merge-Layer
// does not). This is the paper's new "unsorted-hash-merge" (Sec. IV-D),
// reported an order of magnitude faster than heap merging.
func HashMerge(mats []*spmat.CSC, sr *semiring.Semiring, sortOutput bool) *spmat.CSC {
	rows, cols := checkMergeShapes(mats)
	if len(mats) == 1 {
		out := mats[0].Clone()
		if sortOutput {
			out.SortColumns()
		}
		return out
	}
	c := &spmat.CSC{
		Rows:       rows,
		Cols:       cols,
		ColPtr:     make([]int64, cols+1),
		SortedCols: false,
	}
	plusTimes := sr.IsPlusTimes()
	var acc *hashAccum
	for j := int32(0); j < cols; j++ {
		var colNNZ int64
		for _, m := range mats {
			colNNZ += m.ColNNZ(j)
		}
		if colNNZ == 0 {
			c.ColPtr[j+1] = int64(len(c.RowIdx))
			continue
		}
		if acc == nil || 2*colNNZ > int64(len(acc.rows)) {
			acc = newHashAccum(colNNZ)
		} else {
			acc.reset()
		}
		hashAccumulateMergeColumn(acc, mats, j, sr, plusTimes)
		lo := int64(len(c.RowIdx))
		c.RowIdx, c.Val = acc.drainInto(c.RowIdx, c.Val)
		if sortOutput {
			sortColumnSlices(c.RowIdx[lo:], c.Val[lo:])
		}
		c.ColPtr[j+1] = int64(len(c.RowIdx))
	}
	c.SortedCols = sortOutput
	return c
}

// hashAccumulateMergeColumn feeds column j of every operand into acc: the
// shared inner loop of HashMerge and the parallel hash merge.
func hashAccumulateMergeColumn(acc *hashAccum, mats []*spmat.CSC, j int32, sr *semiring.Semiring, plusTimes bool) {
	for _, m := range mats {
		rws, vls := m.Column(j)
		if plusTimes {
			for p := range rws {
				acc.addPlus(rws[p], vls[p])
			}
		} else {
			for p := range rws {
				acc.add(rws[p], vls[p], sr.Add)
			}
		}
	}
}

// HeapMerge adds a collection of same-shaped matrices entry-wise with a
// k-way heap merge per column, the merging algorithm of the previous 2D/3D
// SUMMA implementations [30, 13]. Inputs must be sorted; unsorted operands
// are sorted first and that cost is charged here, exactly the overhead the
// sort-free pipeline avoids. Output columns are sorted.
func HeapMerge(mats []*spmat.CSC, sr *semiring.Semiring) *spmat.CSC {
	rows, cols := checkMergeShapes(mats)
	sorted := make([]*spmat.CSC, len(mats))
	for i, m := range mats {
		if m.SortedCols {
			sorted[i] = m
		} else {
			cp := m.Clone()
			cp.SortColumns()
			sorted[i] = cp
		}
	}
	c := &spmat.CSC{
		Rows:       rows,
		Cols:       cols,
		ColPtr:     make([]int64, cols+1),
		SortedCols: true,
	}
	plusTimes := sr.IsPlusTimes()
	var h rowHeap
	for j := int32(0); j < cols; j++ {
		c.RowIdx, c.Val = heapMergeColumn(&h, sorted, j, sr, plusTimes, c.RowIdx, c.Val)
		c.ColPtr[j+1] = int64(len(c.RowIdx))
	}
	return c
}

// Note: a sorted input can still contain duplicate row indices within a
// column (e.g. the concatenated outputs of independent SUMMA stages). Both
// merge algorithms accumulate those duplicates, so their outputs are always
// duplicate-free.
