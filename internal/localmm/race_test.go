package localmm

import (
	"sync"
	"testing"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

// TestParallelKernelsRace drives every parallel kernel and merger at high
// thread counts, including several ParallelSpGEMM calls racing each other the
// way concurrent SUMMA ranks do, so `go test -race ./internal/localmm`
// exercises the worker pool, the shared output arrays, and the read-only
// operand sharing. Guarded by -short so the default suite stays fast.
func TestParallelKernelsRace(t *testing.T) {
	if testing.Short() {
		t.Skip("race workout skipped in -short mode")
	}
	sr := semiring.PlusTimes()
	a := randomMat(t, 300, 300, 4000, 31)
	b := randomMat(t, 300, 300, 4000, 32)
	want := Multiply(a, b, sr)

	for _, k := range allKernels {
		got := ParallelSpGEMM(k, a, b, sr, 8)
		if !spmat.Equal(got, want) {
			t.Errorf("kernel %v: wrong parallel product", k)
		}
	}

	mats := []*spmat.CSC{
		HashSpGEMM(a, b, sr),
		HashSpGEMM(b, a, sr),
		HashSpGEMM(a, a, sr),
	}
	for _, mg := range []Merger{MergerHash, MergerHeap} {
		if got := mg.Merge(mats, sr, true, 8); got.NNZ() == 0 {
			t.Errorf("merger %v: empty parallel merge", mg)
		}
	}

	// Concurrent multiplies over the same operands: ranks inside one
	// simulated MPI job share nothing but read-only inputs and the pooled
	// worker state.
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := ParallelSpGEMM(KernelHashUnsorted, a, b, sr, 4)
			if !spmat.Equal(got, want) {
				t.Error("concurrent parallel multiply diverged")
			}
		}()
	}
	wg.Wait()
}

// TestDCSCParallelKernelsRace is the doubly-compressed counterpart of
// TestParallelKernelsRace: the generic two-phase kernels and merges at high
// thread counts over hypersparse DCSC operands (shared read-only views,
// pooled workers, exact-offset shared output arrays), plus concurrent
// multiplies the way SUMMA ranks race. Run under `go test -race`.
func TestDCSCParallelKernelsRace(t *testing.T) {
	if testing.Short() {
		t.Skip("race workout skipped in -short mode")
	}
	sr := semiring.PlusTimes()
	ac := hyperMat(t, 200, 4096, 3000, 61)
	bc := hyperMat(t, 4096, 4096, 3000, 62)
	a, b := ac.ToDCSC(), bc.ToDCSC()
	want := Multiply(ac, bc, sr)

	for _, k := range allKernels {
		got := MulMat(k, a, b, sr, 8)
		if !spmat.Equal(got.ToCSC(), want) {
			t.Errorf("kernel %v: wrong DCSC parallel product", k)
		}
	}

	b2 := hyperMat(t, 4096, 4096, 2500, 63).ToDCSC()
	mats := []spmat.Matrix{
		MulMat(KernelHashUnsorted, a, b, sr, 8),
		MulMat(KernelHashUnsorted, a, b2, sr, 8),
	}
	for _, mg := range []Merger{MergerHash, MergerHeap} {
		if got := MergeMat(mg, mats, sr, true, 8); got.NNZ() == 0 {
			t.Errorf("merger %v: empty DCSC parallel merge", mg)
		}
	}

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := MulMat(KernelHashUnsorted, a, b, sr, 4)
			if !spmat.Equal(got.ToCSC(), want) {
				t.Error("concurrent DCSC parallel multiply diverged")
			}
			if SymbolicMat(a, b, 4) != want.NNZ() {
				t.Error("concurrent DCSC parallel symbolic diverged")
			}
		}()
	}
	wg.Wait()
}
