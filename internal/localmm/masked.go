package localmm

import (
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// MaskedSpGEMM computes (A·B) .* mask without materializing A·B: per output
// column only the rows present in the mask's column are accumulated. This is
// the masked multiplication used by triangle counting (C = (L·U) .* L, [3])
// — on triangle workloads the wedge matrix L·U is far denser than the mask,
// so skipping unmasked rows avoids most of the accumulation work. Output
// columns are sorted in the mask's order (masks are sorted in practice).
func MaskedSpGEMM(a, b, mask *spmat.CSC, sr *semiring.Semiring) *spmat.CSC {
	checkMulShapes(a, b)
	if mask.Rows != a.Rows || mask.Cols != b.Cols {
		panic("localmm: mask shape mismatch")
	}
	c := &spmat.CSC{
		Rows:       a.Rows,
		Cols:       b.Cols,
		ColPtr:     make([]int64, b.Cols+1),
		SortedCols: mask.SortedCols,
	}
	plusTimes := sr.IsPlusTimes()
	// Dense accumulator over the masked rows of one column: allowed[r]
	// stores the position of r in the mask column (+1), acc the partial sum.
	allowed := make([]int32, a.Rows)
	acc := make([]float64, 0, 64)
	hit := make([]bool, 0, 64)
	for j := int32(0); j < b.Cols; j++ {
		mRows, _ := mask.Column(j)
		if len(mRows) == 0 {
			c.ColPtr[j+1] = int64(len(c.RowIdx))
			continue
		}
		for pos, r := range mRows {
			allowed[r] = int32(pos) + 1
		}
		acc = acc[:0]
		hit = hit[:0]
		for range mRows {
			acc = append(acc, sr.Zero)
			hit = append(hit, false)
		}
		bRows, bVals := b.Column(j)
		for p := range bRows {
			i, bv := bRows[p], bVals[p]
			aRows, aVals := a.Column(i)
			for q := range aRows {
				pos := allowed[aRows[q]]
				if pos == 0 {
					continue
				}
				if plusTimes {
					acc[pos-1] += aVals[q] * bv
				} else {
					acc[pos-1] = sr.Add(acc[pos-1], sr.Mul(aVals[q], bv))
				}
				hit[pos-1] = true
			}
		}
		for pos, r := range mRows {
			if hit[pos] {
				c.RowIdx = append(c.RowIdx, r)
				c.Val = append(c.Val, acc[pos])
			}
		}
		c.ColPtr[j+1] = int64(len(c.RowIdx))
		// Reset the scatter array for the next column.
		for _, r := range mRows {
			allowed[r] = 0
		}
	}
	return c
}

// SPASpGEMM multiplies A·B with a dense sparse-accumulator (SPA) per output
// column — Gustavson's original formulation [20, 21]: a dense value array
// plus an occupied-row list, both sized by the row dimension. It is the
// classic baseline the hash and heap kernels are measured against: fastest
// when output columns are dense relative to the row count, wasteful when
// hypersparse. Output columns are unsorted (insertion order).
func SPASpGEMM(a, b *spmat.CSC, sr *semiring.Semiring) *spmat.CSC {
	checkMulShapes(a, b)
	c := &spmat.CSC{
		Rows:       a.Rows,
		Cols:       b.Cols,
		ColPtr:     make([]int64, b.Cols+1),
		SortedCols: false,
	}
	plusTimes := sr.IsPlusTimes()
	vals := make([]float64, a.Rows)
	present := make([]bool, a.Rows)
	occupied := make([]int32, 0, 256)
	for j := int32(0); j < b.Cols; j++ {
		occupied = occupied[:0]
		bRows, bVals := b.Column(j)
		for p := range bRows {
			i, bv := bRows[p], bVals[p]
			aRows, aVals := a.Column(i)
			for q := range aRows {
				r := aRows[q]
				var prod float64
				if plusTimes {
					prod = aVals[q] * bv
				} else {
					prod = sr.Mul(aVals[q], bv)
				}
				if !present[r] {
					present[r] = true
					vals[r] = prod
					occupied = append(occupied, r)
				} else if plusTimes {
					vals[r] += prod
				} else {
					vals[r] = sr.Add(vals[r], prod)
				}
			}
		}
		for _, r := range occupied {
			c.RowIdx = append(c.RowIdx, r)
			c.Val = append(c.Val, vals[r])
			present[r] = false
		}
		c.ColPtr[j+1] = int64(len(c.RowIdx))
	}
	return c
}
