package localmm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

// naiveMultiply is a triple-loop reference SpGEMM over an arbitrary semiring,
// sharing no code with the kernels under test: for every output column it
// walks B's stored entries and A's stored columns, combining structurally
// stored products only (the semiring's Zero is never materialized).
func naiveMultiply(a, b *spmat.CSC, sr *semiring.Semiring) *spmat.CSC {
	if a.Cols != b.Rows {
		panic("naiveMultiply: shape mismatch")
	}
	present := make([]bool, a.Rows)
	val := make([]float64, a.Rows)
	c := &spmat.CSC{
		Rows:       a.Rows,
		Cols:       b.Cols,
		ColPtr:     make([]int64, b.Cols+1),
		SortedCols: true,
	}
	for j := int32(0); j < b.Cols; j++ {
		bRows, bVals := b.Column(j)
		for p := range bRows {
			k := bRows[p]
			aRows, aVals := a.Column(k)
			for q := range aRows {
				i := aRows[q]
				prod := sr.Mul(aVals[q], bVals[p])
				if !present[i] {
					present[i] = true
					val[i] = prod
				} else {
					val[i] = sr.Add(val[i], prod)
				}
			}
		}
		for i := int32(0); i < a.Rows; i++ { // ascending: sorted output
			if present[i] {
				c.RowIdx = append(c.RowIdx, i)
				c.Val = append(c.Val, val[i])
				present[i] = false
			}
		}
		c.ColPtr[j+1] = int64(len(c.RowIdx))
	}
	return c
}

// diffShape is one operand-pair configuration of the differential table.
type diffShape struct {
	name              string
	rows, inner, cols int32
	nnzA, nnzB        int
	seed              int64
}

// differentialShapes covers the structural edge cases: empty matrices, empty
// columns (nnz far below the column count), non-square operands, single
// columns (below the parallel threshold), and a dense-ish block.
var differentialShapes = []diffShape{
	{"square", 30, 30, 30, 150, 150, 1},
	{"nonsquare-wide", 20, 35, 50, 140, 160, 2},
	{"nonsquare-tall", 60, 12, 9, 90, 40, 3},
	{"empty-a", 15, 10, 12, 0, 50, 4},
	{"empty-b", 15, 10, 12, 50, 0, 5},
	{"both-empty", 8, 6, 7, 0, 0, 6},
	{"mostly-empty-cols", 40, 40, 40, 12, 12, 7},
	{"single-column", 25, 25, 1, 80, 10, 8},
	{"single-row-inner", 20, 1, 20, 10, 10, 9},
	{"densish", 24, 24, 24, 500, 500, 10},
}

// TestKernelsDifferential runs every kernel × thread count × shape × semiring
// against the naive reference. Values are small integers so plus-times is
// exact regardless of accumulation order; min-plus and max-min are
// order-insensitive by construction.
func TestKernelsDifferential(t *testing.T) {
	semirings := []*semiring.Semiring{semiring.PlusTimes(), semiring.MaxMin(), semiring.MinPlus()}
	for _, sh := range differentialShapes {
		a := randomMat(t, sh.rows, sh.inner, sh.nnzA, sh.seed*100+1)
		b := randomMat(t, sh.inner, sh.cols, sh.nnzB, sh.seed*100+2)
		for _, sr := range semirings {
			want := naiveMultiply(a, b, sr)
			for _, k := range allKernels {
				for _, threads := range []int{1, 2, 8} {
					name := fmt.Sprintf("%s/%s/%s/threads=%d", sh.name, sr.Name, k, threads)
					got := k.Func()(a, b, sr, threads)
					if err := func() error { c := got.Clone(); c.Compact(nil); return c.Validate() }(); err != nil {
						t.Errorf("%s: invalid output: %v", name, err)
						continue
					}
					if !spmat.Equal(got, want) {
						t.Errorf("%s: differs from naive reference", name)
					}
					if got.Rows != want.Rows || got.Cols != want.Cols {
						t.Errorf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
					}
				}
			}
		}
	}
}

// TestKernelsDifferentialUnsortedInputs repeats the differential check with
// scrambled (unsorted-column) operands, the state SUMMA stages hand to the
// kernels mid-pipeline.
func TestKernelsDifferentialUnsortedInputs(t *testing.T) {
	a := scrambleColumns(randomMat(t, 35, 30, 200, 11), 1)
	b := scrambleColumns(randomMat(t, 30, 40, 220, 12), 2)
	for _, sr := range []*semiring.Semiring{semiring.PlusTimes(), semiring.MaxMin()} {
		want := naiveMultiply(a, b, sr)
		for _, k := range allKernels {
			for _, threads := range []int{1, 2, 8} {
				got := k.Func()(a, b, sr, threads)
				if !spmat.Equal(got, want) {
					t.Errorf("%s/%s/threads=%d: differs from naive reference on unsorted inputs", sr.Name, k, threads)
				}
			}
		}
	}
}

// scrambleColumns returns a copy of m with every column's entries shuffled
// and SortedCols cleared.
func scrambleColumns(m *spmat.CSC, seed int64) *spmat.CSC {
	u := m.Clone()
	rng := rand.New(rand.NewSource(seed))
	for j := int32(0); j < u.Cols; j++ {
		lo, hi := u.ColPtr[j], u.ColPtr[j+1]
		n := int(hi - lo)
		rng.Shuffle(n, func(x, y int) {
			u.RowIdx[lo+int64(x)], u.RowIdx[lo+int64(y)] = u.RowIdx[lo+int64(y)], u.RowIdx[lo+int64(x)]
			u.Val[lo+int64(x)], u.Val[lo+int64(y)] = u.Val[lo+int64(y)], u.Val[lo+int64(x)]
		})
	}
	u.SortedCols = false
	return u
}

// TestParallelBitIdenticalLargeFlops is the tentpole's acceptance check: on a
// product with ≥ 1e6 flops, the 8-thread kernel must produce bit-identical
// structure and values to the serial kernel after canonical column sorting.
// Per column the parallel numeric pass accumulates in exactly the serial
// operand order, so even float64 plus-times values match bit for bit.
func TestParallelBitIdenticalLargeFlops(t *testing.T) {
	a := randomMat(t, 2000, 2000, 60000, 42)
	sr := semiring.PlusTimes()
	if f := Flops(a, a); f < 1e6 {
		t.Fatalf("workload too small: %d flops, want >= 1e6", f)
	}
	want := HashSpGEMM(a, a, sr)
	want.SortColumns()
	got := ParallelSpGEMM(KernelHashUnsorted, a, a, sr, 8)
	got.SortColumns()
	if got.NNZ() != want.NNZ() {
		t.Fatalf("nnz %d, want %d", got.NNZ(), want.NNZ())
	}
	for j := int32(0); j <= want.Cols; j++ {
		if got.ColPtr[j] != want.ColPtr[j] {
			t.Fatalf("ColPtr[%d] = %d, want %d", j, got.ColPtr[j], want.ColPtr[j])
		}
	}
	for p := range want.RowIdx {
		if got.RowIdx[p] != want.RowIdx[p] {
			t.Fatalf("RowIdx[%d] = %d, want %d", p, got.RowIdx[p], want.RowIdx[p])
		}
		if got.Val[p] != want.Val[p] {
			t.Fatalf("Val[%d] = %x, want %x (not bit-identical)", p, got.Val[p], want.Val[p])
		}
	}
}

// TestParallelMergeDifferential checks both mergers × thread counts against
// serial HashMerge on operand sets that include empty and duplicate-row
// matrices.
func TestParallelMergeDifferential(t *testing.T) {
	sr := semiring.PlusTimes()
	base := randomMat(t, 40, 30, 200, 20)
	mats := []*spmat.CSC{
		base,
		scrambleColumns(randomMat(t, 40, 30, 150, 21), 3),
		spmat.New(40, 30), // all-empty operand
		randomMat(t, 40, 30, 60, 22),
	}
	want := HashMerge(mats, sr, true)
	for _, mg := range []Merger{MergerHash, MergerHeap} {
		for _, threads := range []int{1, 2, 8} {
			got := mg.Merge(mats, sr, true, threads)
			if !spmat.Equal(got, want) {
				t.Errorf("%s/threads=%d: merge differs from serial", mg, threads)
			}
			if !got.SortedCols {
				t.Errorf("%s/threads=%d: sorted output not flagged", mg, threads)
			}
			if err := got.Validate(); err != nil {
				t.Errorf("%s/threads=%d: %v", mg, threads, err)
			}
		}
	}
}
