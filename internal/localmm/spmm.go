package localmm

import (
	"fmt"

	"repro/internal/spmat"
)

// This file holds the local sparse×dense kernels of the SpMM engine: SpMM
// (C = A·B with A sparse and B a row-major dense panel) and SDDMM (sampled
// dense-dense, C = S ∘ (U·Vᵀ)). Both follow the two-phase plan of the SpGEMM
// kernels — sizes are exact before any value is written, the output is
// allocated once, and flop-balanced workers fill disjoint ranges in place —
// but the symbolic phase is trivial: a dense output's shape *is* its size,
// and an SDDMM output's pattern is its sampling matrix's.
//
// SpMM is format-generic over the A operand through spmat.Matrix: stored
// columns are visited in ascending order whatever the storage, so CSC and
// DCSC blocks produce bit-identical values. Workers partition the *dense*
// column dimension — every dense column costs exactly nnz(A) multiplies, so
// an even split is a perfect flop balance, and each worker owns a disjoint
// stripe of every output row (no locks, no post-hoc merge).
//
// The dense kernels assume the plus-times ring: a dense accumulator starts
// at 0, which is only the additive identity there. The distributed dense
// schedules reject other semirings before they reach this layer.

// SpMMFlops returns the multiply count of A·B with a dCols-wide dense B:
// every stored entry of A touches one dense row of that width.
func SpMMFlops(a spmat.Matrix, dCols int32) int64 { return a.NNZ() * int64(dCols) }

// checkSpMMShapes panics on inner-dimension mismatch.
func checkSpMMShapes(a spmat.Matrix, b *spmat.DenseMat) {
	_, ac := a.Dims()
	if ac != b.Rows {
		panic(fmt.Sprintf("localmm: SpMM inner dimension mismatch: A is %v, B is %v", a, b))
	}
}

// SpMM computes the dense product C = A·B with threads worker goroutines and
// returns a freshly allocated C.
func SpMM(a spmat.Matrix, b *spmat.DenseMat, threads int) *spmat.DenseMat {
	rows, _ := a.Dims()
	c := spmat.NewDense(rows, b.Cols)
	SpMMInto(c, a, b, threads)
	return c
}

// SpMMInto accumulates A·B into c (which must be aRows×bCols). The 1.5D
// schedules call it once per ring round, folding each shifted operand block
// into the same resident accumulator. Entries accumulate in ascending stored
// A-column order, then entry order within a column — identical for every
// thread count and storage format.
func SpMMInto(c *spmat.DenseMat, a spmat.Matrix, b *spmat.DenseMat, threads int) {
	checkSpMMShapes(a, b)
	rows, _ := a.Dims()
	if c.Rows != rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("localmm: SpMMInto accumulator is %v, want %dx%d", c, rows, b.Cols))
	}
	d := b.Cols
	threads = clampThreads(threads, d)
	if threads <= 1 || d < 2 {
		spmmRange(c, a, b, 0, d)
		return
	}
	// Phase 1 is the allocation the caller already did; the flop balance over
	// dense columns is uniform (each costs nnz(A)), so an even split is exact.
	bounds := spmat.PartBounds(d, threads)
	runWorkers(bounds, func(_ *mmWorker, lo, hi int32) {
		spmmRange(c, a, b, lo, hi)
	})
}

// spmmRange accumulates A·B into dense columns [lo, hi) of c: the shared
// inner loop of the serial and parallel paths. For every stored entry
// A(i, k) it adds A(i,k)·B(k, lo:hi) into C(i, lo:hi) — one contiguous
// row-slice multiply-add, which is why the dense panels are row-major.
func spmmRange(c *spmat.DenseMat, a spmat.Matrix, b *spmat.DenseMat, lo, hi int32) {
	a.EnumCols(func(k int32, rows []int32, vals []float64) {
		brow := b.RowSlice(k)[lo:hi]
		for e, i := range rows {
			v := vals[e]
			crow := c.RowSlice(i)[lo:hi]
			for j, bv := range brow {
				crow[j] += v * bv
			}
		}
	})
}

// SpMMSerial is the naive serial dense reference the differential SpMM tests
// compare every distributed schedule against: one goroutine, ascending
// column order, full panel width.
func SpMMSerial(a spmat.Matrix, b *spmat.DenseMat) *spmat.DenseMat {
	checkSpMMShapes(a, b)
	rows, _ := a.Dims()
	c := spmat.NewDense(rows, b.Cols)
	spmmRange(c, a, b, 0, b.Cols)
	return c
}

// SDDMM computes the sampled dense-dense product C = S ∘ (U·Vᵀ): C has S's
// sparsity pattern and C(i,j) = S(i,j) · ⟨U(i,:), V(j,:)⟩. S is n×m, U is
// n×k, V is m×k. The output storage format follows S (a DCSC sample stays
// doubly compressed). Workers own flop-balanced ranges of S's stored
// columns; each entry's dot product is evaluated serially in ascending k
// order, so values are bit-identical for every thread count.
func SDDMM(s spmat.Matrix, u, v *spmat.DenseMat, threads int) spmat.Matrix {
	sr, sc := s.Dims()
	if sr != u.Rows || sc != v.Rows || u.Cols != v.Cols {
		panic(fmt.Sprintf("localmm: SDDMM shapes S=%v U=%v V=%v", s, u, v))
	}
	out := s.CloneMat()
	refs := colRefs(out)
	k := int64(u.Cols)
	colWork := make([]int64, len(refs))
	for p, ref := range refs {
		colWork[p] = int64(len(ref.rows)) * k
	}
	threads = clampThreads(threads, int32(len(refs)))
	if threads < 1 {
		threads = 1
	}
	bounds := flopBounds(colWork, threads)
	runWorkers(bounds, func(_ *mmWorker, lo, hi int32) {
		for p := lo; p < hi; p++ {
			ref := refs[p]
			vrow := v.RowSlice(ref.j)
			for e, i := range ref.rows {
				urow := u.RowSlice(i)
				var dot float64
				for x := range urow {
					dot += urow[x] * vrow[x]
				}
				ref.vals[e] *= dot
			}
		}
	})
	return out
}
