package localmm

import (
	"fmt"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

// This file is the format-generic layer of the local kernels: SpGEMM,
// symbolic SpGEMM, and merge over the spmat.Matrix storage interface. When
// every operand is CSC it dispatches to the specialized CSC kernels (the
// historical code paths, bit-identical and allocation-tuned); otherwise it
// runs a hypersparse-aware implementation that iterates only the *stored*
// columns of the B-side operand, so symbolic and numeric work on a
// doubly-compressed block is O(flops + nnz) — never O(cols). That is the
// in-memory counterpart of the hypersparse wire encoding: at the paper's
// scale the local blocks have far more columns than nonzeros (Rice-kmers,
// ~2 nnz/col), and a per-column scan would dominate every stage.
//
// Output format follows B: the stored columns of A·B are a subset of B's,
// so a DCSC B yields a DCSC product (a batch piece stays compressed through
// multiply → merge), while a CSC B keeps the dense-pointer output whose
// column metadata already exists. Values are bit-identical to the CSC
// kernels for any format combination: columns are visited in the same
// ascending order, entries accumulate in the same operand order, and the
// hash accumulators drain in the same insertion order.

// colRef is one stored column of a Matrix: its logical index and views of
// its entries.
type colRef struct {
	j    int32
	rows []int32
	vals []float64
}

// colRefs collects the stored columns of m in ascending column order.
func colRefs(m spmat.Matrix) []colRef {
	refs := make([]colRef, 0, m.NonEmptyCols())
	m.EnumCols(func(j int32, rows []int32, vals []float64) {
		refs = append(refs, colRef{j: j, rows: rows, vals: vals})
	})
	return refs
}

// checkMulShapesMat panics on inner-dimension mismatch.
func checkMulShapesMat(a, b spmat.Matrix) {
	_, ac := a.Dims()
	br, _ := b.Dims()
	if ac != br {
		panic(fmt.Sprintf("localmm: inner dimension mismatch: A is %v, B is %v", a, b))
	}
}

// aCursor is the A-side column access of the generic kernels: direct O(1)
// indexing when A is CSC, a positional DCSC cursor otherwise. The inner loop
// looks A's columns up by the row indices of one B column, which are
// ascending whenever B is sorted (every distributed operand is), so the
// cursor turns the former per-lookup O(log nzc) binary search into an
// amortized O(1) forward gallop; unsorted operands fall back to the cursor's
// binary-search path and are never worse than before. A cursor is mutable
// single-goroutine state: every worker takes its own with cursorFor.
type aCursor struct {
	csc *spmat.CSC
	dc  spmat.DCSCCursor
}

// cursorFor returns a fresh cursor over a.
func cursorFor(a spmat.Matrix) aCursor {
	if c, ok := a.(*spmat.CSC); ok {
		return aCursor{csc: c}
	}
	return aCursor{dc: a.ToDCSC().Cursor()}
}

// Column returns views of column j's rows and values.
func (c *aCursor) Column(j int32) ([]int32, []float64) {
	if c.csc != nil {
		return c.csc.Column(j)
	}
	return c.dc.Column(j)
}

// ColNNZ returns the entry count of column j.
func (c *aCursor) ColNNZ(j int32) int64 {
	if c.csc != nil {
		return c.csc.ColNNZ(j)
	}
	return c.dc.ColNNZ(j)
}

// MatFlops returns the multiplication count of A·B (Flops generalized to the
// storage interface); O(nnz(B) · lookup) with no dense column scan.
func MatFlops(a, b spmat.Matrix) int64 {
	if ac, ok := a.(*spmat.CSC); ok {
		if bc, ok := b.(*spmat.CSC); ok {
			return Flops(ac, bc)
		}
	}
	checkMulShapesMat(a, b)
	cur := cursorFor(a)
	var total int64
	b.EnumCols(func(_ int32, rows []int32, _ []float64) {
		for _, i := range rows {
			total += cur.ColNNZ(i)
		}
	})
	return total
}

// matColFlops returns the flop count of every stored output column.
func matColFlops(a spmat.Matrix, bRefs []colRef) []int64 {
	cur := cursorFor(a)
	out := make([]int64, len(bRefs))
	for p, ref := range bRefs {
		var f int64
		for _, i := range ref.rows {
			f += cur.ColNNZ(i)
		}
		out[p] = f
	}
	return out
}

// matColNNZ is the symbolic pass of the generic kernels: exact distinct-row
// counts for every stored output column, computed by pooled workers over
// flop-balanced ranges of stored-column positions.
func matColNNZ(a spmat.Matrix, bRefs []colRef, colFlops []int64, bounds []int32) []int64 {
	colNNZ := make([]int64, len(bRefs))
	runWorkers(bounds, func(w *mmWorker, lo, hi int32) {
		cur := cursorFor(a)
		for p := lo; p < hi; p++ {
			if colFlops[p] == 0 {
				continue
			}
			set := w.setFor(colFlops[p])
			for _, i := range bRefs[p].rows {
				rws, _ := cur.Column(i)
				for _, r := range rws {
					set.insert(r)
				}
			}
			colNNZ[p] = int64(len(set.occupied))
		}
	})
	return colNNZ
}

// matThreads bounds the worker count by the stored-column count, keeping at
// least one.
func matThreads(threads, stored int) int {
	if threads > stored {
		threads = stored
	}
	if threads < 1 {
		threads = 1
	}
	return threads
}

// SymbolicMat computes nnz(A·B) without forming the product, over any format
// combination. Work on a doubly-compressed B is O(flops + nnz(B)).
func SymbolicMat(a, b spmat.Matrix, threads int) int64 {
	if ac, ok := a.(*spmat.CSC); ok {
		if bc, ok := b.(*spmat.CSC); ok {
			return ParallelSymbolicSpGEMM(ac, bc, threads)
		}
	}
	checkMulShapesMat(a, b)
	bRefs := colRefs(b)
	colFlops := matColFlops(a, bRefs)
	threads = matThreads(threads, len(bRefs))
	var total int64
	for _, n := range matColNNZ(a, bRefs, colFlops, flopBounds(colFlops, threads)) {
		total += n
	}
	return total
}

// MulMat computes A·B with the selected kernel over any format combination,
// with threads worker goroutines (threads <= 1 is effectively serial: one
// flop-balanced range). Both-CSC operands dispatch to ParallelSpGEMM; the
// generic path uses the same two-phase exact-allocation plan driven by B's
// stored columns only.
func MulMat(k Kernel, a, b spmat.Matrix, sr *semiring.Semiring, threads int) spmat.Matrix {
	if ac, ok := a.(*spmat.CSC); ok {
		if bc, ok := b.(*spmat.CSC); ok {
			return ParallelSpGEMM(k, ac, bc, sr, threads)
		}
	}
	checkMulShapesMat(a, b)
	if (k == KernelHeap || k == KernelHybrid) && !a.Sorted() {
		// The heap-based kernels require sorted A columns; restore once,
		// shared read-only by all workers (same policy as the CSC kernels).
		a = a.CloneMat()
		a.SortColumns()
	}
	aRows, _ := a.Dims()
	_, bCols := b.Dims()
	bRefs := colRefs(b)
	colFlops := matColFlops(a, bRefs)
	threads = matThreads(threads, len(bRefs))
	bounds := flopBounds(colFlops, threads)

	// Phase 1: exact per-column output sizes.
	colNNZ := matColNNZ(a, bRefs, colFlops, bounds)

	// Exact single allocation; stored output columns are the stored B
	// columns with nonzero flops.
	sortedOut := k != KernelHashUnsorted
	dst := newMatBuilder(b.Format(), aRows, bCols, bRefs, colNNZ, sortedOut)

	// Phase 2: numeric fill, each column written at its final offset.
	plusTimes := sr.IsPlusTimes()
	runWorkers(bounds, func(w *mmWorker, lo, hi int32) {
		cur := cursorFor(a)
		for p := lo; p < hi; p++ {
			if colNNZ[p] == 0 {
				continue
			}
			dstRows, dstVals := dst.column(p)
			switch {
			case k == KernelHeap,
				k == KernelHybrid && colFlops[p] <= hybridHeapThreshold:
				outRows, _ := heapMulColumnMat(w, &cur, bRefs[p].rows, bRefs[p].vals, sr, plusTimes,
					dstRows[:0:len(dstRows)], dstVals[:0:len(dstVals)])
				checkColumnFill(outRows, int64(len(dstRows)))
			default:
				acc := w.accFor(colFlops[p])
				hashAccumulateColumnMat(acc, &cur, bRefs[p].rows, bRefs[p].vals, sr, plusTimes)
				acc.drainAt(dstRows, dstVals)
				if sortedOut {
					sortColumnSlices(dstRows, dstVals)
				}
			}
		}
	})
	return dst.finish()
}

// matBuilder assembles the exactly-sized output of the generic two-phase
// kernels in either format. For DCSC output only the nonzero-count columns
// get JC/CP entries — no O(cols) array exists at any point; for CSC output
// the dense ColPtr is scattered from the stored counts.
type matBuilder struct {
	csc  *spmat.CSC
	dcsc *spmat.DCSC
	// colPtr parallels the refs list: colPtr[p] : colPtr[p+1] is stored
	// column p's range in the entry arrays, with repeated offsets for
	// zero-count columns. It is NOT dcsc.CP, which skips those columns and
	// has one entry per JC entry only.
	colPtr []int64
	ir     []int32
	num    []float64
}

// newMatBuilder sizes the output arrays from the symbolic counts.
func newMatBuilder(f spmat.Format, rows, cols int32, refs []colRef, colNNZ []int64, sorted bool) *matBuilder {
	b := &matBuilder{}
	if f == spmat.FormatDCSC {
		d := &spmat.DCSC{Rows: rows, Cols: cols, CP: make([]int64, 1, len(refs)+1), SortedCols: sorted}
		var nnz int64
		b.colPtr = make([]int64, 0, len(refs)+1)
		b.colPtr = append(b.colPtr, 0)
		for p := range refs {
			if colNNZ[p] == 0 {
				// Absent from the output; repeat the offset so column p's
				// range is empty.
				b.colPtr = append(b.colPtr, nnz)
				continue
			}
			nnz += colNNZ[p]
			d.JC = append(d.JC, refs[p].j)
			d.CP = append(d.CP, nnz)
			b.colPtr = append(b.colPtr, nnz)
		}
		d.IR = make([]int32, nnz)
		d.Num = make([]float64, nnz)
		b.dcsc, b.ir, b.num = d, d.IR, d.Num
		return b
	}
	c := &spmat.CSC{Rows: rows, Cols: cols, ColPtr: make([]int64, cols+1), SortedCols: sorted}
	b.colPtr = make([]int64, len(refs)+1)
	var nnz int64
	for p := range refs {
		b.colPtr[p] = nnz
		nnz += colNNZ[p]
		c.ColPtr[refs[p].j+1] = colNNZ[p]
	}
	b.colPtr[len(refs)] = nnz
	for j := int32(0); j < cols; j++ {
		c.ColPtr[j+1] += c.ColPtr[j]
	}
	c.RowIdx = make([]int32, nnz)
	c.Val = make([]float64, nnz)
	b.csc, b.ir, b.num = c, c.RowIdx, c.Val
	return b
}

// column returns the destination slices of stored column p.
func (b *matBuilder) column(p int32) ([]int32, []float64) {
	lo, hi := b.colPtr[p], b.colPtr[p+1]
	return b.ir[lo:hi], b.num[lo:hi]
}

// finish returns the built matrix.
func (b *matBuilder) finish() spmat.Matrix {
	if b.dcsc != nil {
		return b.dcsc
	}
	return b.csc
}

// hashAccumulateColumnMat is hashAccumulateColumn over the storage
// interface: one output column's products fed into acc, in the same operand
// order as the CSC kernels. The A side is accessed through the caller's
// positional cursor, so the per-entry lookup is amortized O(1) on sorted B
// columns instead of the O(log nzc) binary search of Matrix.Column.
func hashAccumulateColumnMat(acc *hashAccum, a *aCursor, bRows []int32, bVals []float64, sr *semiring.Semiring, plusTimes bool) {
	if plusTimes {
		for p := range bRows {
			i, bv := bRows[p], bVals[p]
			aRows, aVals := a.Column(i)
			for q := range aRows {
				acc.addPlus(aRows[q], aVals[q]*bv)
			}
		}
	} else {
		for p := range bRows {
			i, bv := bRows[p], bVals[p]
			aRows, aVals := a.Column(i)
			for q := range aRows {
				acc.add(aRows[q], sr.Mul(aVals[q], bv), sr.Add)
			}
		}
	}
}

// heapMulColumnMat is heapMulColumn over the storage interface: the column
// views of A are fetched once per contributing entry (through the caller's
// positional cursor) into the worker's pooled scratch and cursored by index
// — no per-column allocation, like the CSC kernel. Push order and tie
// handling match the CSC version exactly, so the output is bit-identical.
func heapMulColumnMat(w *mmWorker, a *aCursor, bRows []int32, bVals []float64, sr *semiring.Semiring, plusTimes bool, rows []int32, vals []float64) ([]int32, []float64) {
	if cap(w.aRowsV) < len(bRows) {
		w.aRowsV = make([][]int32, len(bRows))
		w.aValsV = make([][]float64, len(bRows))
	}
	aRowsV := w.aRowsV[:len(bRows)]
	aValsV := w.aValsV[:len(bRows)]
	h := w.heap[:0]
	for li, i := range bRows {
		r, v := a.Column(i)
		aRowsV[li], aValsV[li] = r, v
		if len(r) > 0 {
			h.push(heapEntry{row: r[0], list: int32(li), ptr: 0})
		}
	}
	for len(h) > 0 {
		e := h.pop()
		row := e.row
		var acc float64
		first := true
		for {
			var prod float64
			if plusTimes {
				prod = aValsV[e.list][e.ptr] * bVals[e.list]
			} else {
				prod = sr.Mul(aValsV[e.list][e.ptr], bVals[e.list])
			}
			if first {
				acc, first = prod, false
			} else if plusTimes {
				acc += prod
			} else {
				acc = sr.Add(acc, prod)
			}
			if next := e.ptr + 1; next < int64(len(aRowsV[e.list])) {
				h.push(heapEntry{row: aRowsV[e.list][next], list: e.list, ptr: next})
			}
			if len(h) == 0 || h[0].row != row {
				break
			}
			e = h.pop()
		}
		rows = append(rows, row)
		vals = append(vals, acc)
	}
	w.heap = h
	return rows, vals
}

// MergeMat adds same-shaped matrices entry-wise with the selected merger
// over any format combination (operands may even mix formats, as Merge-Fiber
// sees under the auto heuristic). All-CSC operands dispatch to
// ParallelMerge; the generic path walks the union of stored columns — a
// k-way merge over the operands' ascending column lists, O(Σ nzc) — and
// runs the same two-phase exact-allocation plan as MulMat. Output is DCSC
// when every operand is DCSC, CSC otherwise.
func MergeMat(mg Merger, mats []spmat.Matrix, sr *semiring.Semiring, sortOutput bool, threads int) spmat.Matrix {
	if len(mats) == 0 {
		panic("localmm: merge of zero matrices")
	}
	allCSC := true
	allDCSC := true
	for _, m := range mats {
		if m.Format() == spmat.FormatCSC {
			allDCSC = false
		} else {
			allCSC = false
		}
	}
	if allCSC {
		cs := make([]*spmat.CSC, len(mats))
		for i, m := range mats {
			cs[i] = m.ToCSC()
		}
		return ParallelMerge(mg, cs, sr, sortOutput, threads)
	}
	rows, cols := mats[0].Dims()
	for _, m := range mats {
		r, c := m.Dims()
		if r != rows || c != cols {
			panic(fmt.Sprintf("localmm: merge shape mismatch %v vs %dx%d", m, rows, cols))
		}
	}
	if len(mats) == 1 {
		out := mats[0].CloneMat()
		if sortOutput {
			out.SortColumns()
		}
		return out
	}
	if mg == MergerHeap {
		// The heap merge needs sorted operands and always emits sorted
		// columns; restore the invariant once, on copies.
		sortOutput = true
		sorted := make([]spmat.Matrix, len(mats))
		for i, m := range mats {
			if m.Sorted() {
				sorted[i] = m
			} else {
				cp := m.CloneMat()
				cp.SortColumns()
				sorted[i] = cp
			}
		}
		mats = sorted
	}

	union := unionCols(mats)
	colIn := make([]int64, len(union))
	for u, uc := range union {
		var n int64
		for _, part := range uc.parts {
			n += int64(len(part.rows))
		}
		colIn[u] = n
	}
	threads = matThreads(threads, len(union))
	bounds := flopBounds(colIn, threads)

	// Phase 1: exact merged sizes (a stored input column has at least one
	// entry, so every union column stays non-empty).
	colNNZ := make([]int64, len(union))
	runWorkers(bounds, func(w *mmWorker, lo, hi int32) {
		for u := lo; u < hi; u++ {
			set := w.setFor(colIn[u])
			for _, part := range union[u].parts {
				for _, r := range part.rows {
					set.insert(r)
				}
			}
			colNNZ[u] = int64(len(set.occupied))
		}
	})

	outFmt := spmat.FormatCSC
	if allDCSC {
		outFmt = spmat.FormatDCSC
	}
	refs := make([]colRef, len(union))
	for u := range union {
		refs[u] = colRef{j: union[u].j}
	}
	dst := newMatBuilder(outFmt, rows, cols, refs, colNNZ, sortOutput)

	// Phase 2: numeric fill.
	plusTimes := sr.IsPlusTimes()
	runWorkers(bounds, func(w *mmWorker, lo, hi int32) {
		for u := lo; u < hi; u++ {
			dstRows, dstVals := dst.column(u)
			if mg == MergerHeap {
				outRows, _ := heapMergeColumnMat(&w.heap, union[u].parts, sr, plusTimes,
					dstRows[:0:len(dstRows)], dstVals[:0:len(dstVals)])
				checkColumnFill(outRows, int64(len(dstRows)))
				continue
			}
			acc := w.accFor(colIn[u])
			for _, part := range union[u].parts {
				if plusTimes {
					for p := range part.rows {
						acc.addPlus(part.rows[p], part.vals[p])
					}
				} else {
					for p := range part.rows {
						acc.add(part.rows[p], part.vals[p], sr.Add)
					}
				}
			}
			acc.drainAt(dstRows, dstVals)
			if sortOutput {
				sortColumnSlices(dstRows, dstVals)
			}
		}
	})
	return dst.finish()
}

// unionCol is one column of the merged output: its logical index and the
// contributing operands' column views, in operand order (the order the CSC
// merge accumulates in, which fixes the floating-point result).
type unionCol struct {
	j     int32
	parts []colRef
}

// unionCols k-way-merges the operands' stored-column lists into the
// ascending union, gathering each column's contributions.
func unionCols(mats []spmat.Matrix) []unionCol {
	refs := make([][]colRef, len(mats))
	total := 0
	for i, m := range mats {
		refs[i] = colRefs(m)
		total += len(refs[i])
	}
	idx := make([]int, len(mats))
	out := make([]unionCol, 0, total)
	for {
		minJ := int32(-1)
		for i := range mats {
			if idx[i] < len(refs[i]) {
				if j := refs[i][idx[i]].j; minJ < 0 || j < minJ {
					minJ = j
				}
			}
		}
		if minJ < 0 {
			return out
		}
		uc := unionCol{j: minJ}
		for i := range mats {
			if idx[i] < len(refs[i]) && refs[i][idx[i]].j == minJ {
				uc.parts = append(uc.parts, refs[i][idx[i]])
				idx[i]++
			}
		}
		out = append(out, uc)
	}
}

// heapMergeColumnMat k-way-merges one column's (sorted) contributions,
// matching heapMergeColumn's push order and tie handling.
func heapMergeColumnMat(hp *rowHeap, parts []colRef, sr *semiring.Semiring, plusTimes bool, rows []int32, vals []float64) ([]int32, []float64) {
	h := (*hp)[:0]
	for pi := range parts {
		if len(parts[pi].rows) > 0 {
			h.push(heapEntry{row: parts[pi].rows[0], list: int32(pi), ptr: 0})
		}
	}
	for len(h) > 0 {
		e := h.pop()
		row := e.row
		var acc float64
		first := true
		for {
			v := parts[e.list].vals[e.ptr]
			if first {
				acc, first = v, false
			} else if plusTimes {
				acc += v
			} else {
				acc = sr.Add(acc, v)
			}
			if next := e.ptr + 1; next < int64(len(parts[e.list].rows)) {
				h.push(heapEntry{row: parts[e.list].rows[next], list: e.list, ptr: next})
			}
			if len(h) == 0 || h[0].row != row {
				break
			}
			e = h.pop()
		}
		rows = append(rows, row)
		vals = append(vals, acc)
	}
	*hp = h
	return rows, vals
}
