package localmm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

// randomMat builds a deterministic random sparse matrix.
func randomMat(t testing.TB, rows, cols int32, nnz int, seed int64) *spmat.CSC {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := make([]spmat.Triple, 0, nnz)
	for i := 0; i < nnz; i++ {
		ts = append(ts, spmat.Triple{
			Row: int32(rng.Intn(int(rows))),
			Col: int32(rng.Intn(int(cols))),
			Val: float64(rng.Intn(9) + 1), // small integers: exact arithmetic
		})
	}
	m, err := spmat.FromTriples(rows, cols, ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// denseMultiply is the brute-force reference.
func denseMultiply(a, b *spmat.CSC) *spmat.CSC {
	da, db := a.ToDense(), b.ToDense()
	out := make([]float64, int(a.Rows)*int(b.Cols))
	for i := int32(0); i < a.Rows; i++ {
		for k := int32(0); k < a.Cols; k++ {
			av := da[int(i)*int(a.Cols)+int(k)]
			if av == 0 {
				continue
			}
			for j := int32(0); j < b.Cols; j++ {
				out[int(i)*int(b.Cols)+int(j)] += av * db[int(k)*int(b.Cols)+int(j)]
			}
		}
	}
	return spmat.Dense(a.Rows, b.Cols, out)
}

var allKernels = []Kernel{KernelHashUnsorted, KernelHashSorted, KernelHeap, KernelHybrid}

func TestKernelsMatchDenseReference(t *testing.T) {
	a := randomMat(t, 30, 25, 120, 1)
	b := randomMat(t, 25, 28, 110, 2)
	want := denseMultiply(a, b)
	sr := semiring.PlusTimes()
	for _, k := range allKernels {
		got := k.Func()(a, b, sr, 1)
		got.DropZeros()
		if !spmat.Equal(got, want) {
			t.Errorf("kernel %v: wrong product", k)
		}
		if err := func() error { c := got.Clone(); c.Compact(nil); return c.Validate() }(); err != nil {
			t.Errorf("kernel %v: invalid output: %v", k, err)
		}
	}
}

func TestKernelsAgreeOnUnsortedInputs(t *testing.T) {
	a := randomMat(t, 40, 40, 200, 3)
	b := randomMat(t, 40, 40, 180, 4)
	// Scramble a's columns.
	ua := a.Clone()
	rng := rand.New(rand.NewSource(5))
	for j := int32(0); j < ua.Cols; j++ {
		lo, hi := ua.ColPtr[j], ua.ColPtr[j+1]
		n := int(hi - lo)
		rng.Shuffle(n, func(x, y int) {
			ua.RowIdx[lo+int64(x)], ua.RowIdx[lo+int64(y)] = ua.RowIdx[lo+int64(y)], ua.RowIdx[lo+int64(x)]
			ua.Val[lo+int64(x)], ua.Val[lo+int64(y)] = ua.Val[lo+int64(y)], ua.Val[lo+int64(x)]
		})
	}
	ua.SortedCols = false
	want := Multiply(a, b, semiring.PlusTimes())
	for _, k := range allKernels {
		got := k.Func()(ua, b, semiring.PlusTimes(), 1)
		if !spmat.Equal(got, want) {
			t.Errorf("kernel %v: unsorted input changed result", k)
		}
	}
}

func TestSortednessContracts(t *testing.T) {
	a := randomMat(t, 50, 50, 300, 6)
	b := randomMat(t, 50, 50, 300, 7)
	sr := semiring.PlusTimes()
	if c := HashSpGEMM(a, b, sr); c.SortedCols {
		t.Error("unsorted-hash must report unsorted columns")
	}
	for _, k := range []Kernel{KernelHashSorted, KernelHeap, KernelHybrid} {
		c := k.Func()(a, b, sr, 1)
		if !c.SortedCols {
			t.Errorf("kernel %v must produce sorted columns", k)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("kernel %v: %v", k, err)
		}
	}
}

func TestKernelsEmptyOperands(t *testing.T) {
	sr := semiring.PlusTimes()
	a := spmat.New(10, 5)
	b := spmat.New(5, 8)
	for _, k := range allKernels {
		c := k.Func()(a, b, sr, 1)
		if c.NNZ() != 0 || c.Rows != 10 || c.Cols != 8 {
			t.Errorf("kernel %v: empty product wrong: %v", k, c)
		}
	}
}

func TestKernelsIdentity(t *testing.T) {
	m := randomMat(t, 20, 20, 80, 8)
	id := spmat.Identity(20)
	sr := semiring.PlusTimes()
	for _, k := range allKernels {
		if got := k.Func()(m, id, sr, 1); !spmat.Equal(got, m) {
			t.Errorf("kernel %v: M·I ≠ M", k)
		}
		if got := k.Func()(id, m, sr, 1); !spmat.Equal(got, m) {
			t.Errorf("kernel %v: I·M ≠ M", k)
		}
	}
}

func TestKernelsShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inner-dimension mismatch did not panic")
		}
	}()
	HashSpGEMM(spmat.New(3, 4), spmat.New(5, 3), semiring.PlusTimes())
}

func TestMinPlusSemiringProduct(t *testing.T) {
	// Shortest two-hop paths on a tiny graph.
	inf := 0.0 // structural zero = no edge in min-plus
	_ = inf
	a, _ := spmat.FromTriples(3, 3, []spmat.Triple{
		{Row: 1, Col: 0, Val: 2}, {Row: 2, Col: 1, Val: 3}, {Row: 2, Col: 0, Val: 10},
	}, nil)
	sr := semiring.MinPlus()
	c := HashSpGEMMSorted(a, a, sr)
	// Path 0→1→2 costs 5; direct entries are products of stored edges only.
	if got := c.At(2, 0); got != 5 {
		t.Errorf("min-plus two-hop cost = %v, want 5", got)
	}
}

func TestBoolSemiringReachability(t *testing.T) {
	a, _ := spmat.FromTriples(3, 3, []spmat.Triple{
		{Row: 1, Col: 0, Val: 1}, {Row: 2, Col: 1, Val: 1},
	}, nil)
	c := HeapSpGEMM(a, a, semiring.BoolOrAnd())
	if got := c.At(2, 0); got != 1 {
		t.Errorf("bool reachability = %v, want 1", got)
	}
}

func TestKernelsAgreeProperty(t *testing.T) {
	sr := semiring.PlusTimes()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int32(rng.Intn(25) + 1)
		k := int32(rng.Intn(25) + 1)
		n := int32(rng.Intn(25) + 1)
		a := randomMat(t, m, k, rng.Intn(100), seed+1)
		b := randomMat(t, k, n, rng.Intn(100), seed+2)
		ref := HeapSpGEMM(a, b, sr)
		for _, kn := range allKernels {
			if !spmat.Equal(kn.Func()(a, b, sr, 1), ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParallelSpGEMMMatchesSerial(t *testing.T) {
	a := randomMat(t, 60, 60, 500, 9)
	b := randomMat(t, 60, 60, 500, 10)
	sr := semiring.PlusTimes()
	want := HashSpGEMMSorted(a, b, sr)
	for _, threads := range []int{1, 2, 3, 8, 100} {
		got := ParallelSpGEMM(KernelHashUnsorted, a, b, sr, threads)
		if !spmat.Equal(got, want) {
			t.Errorf("threads=%d: parallel result differs", threads)
		}
	}
}

func TestKernelStrings(t *testing.T) {
	if KernelHashUnsorted.String() != "unsorted-hash" || KernelHeap.String() != "heap" ||
		KernelHybrid.String() != "hybrid" || KernelHashSorted.String() != "sorted-hash" {
		t.Error("kernel names changed")
	}
	if MergerHash.String() != "hash-merge" || MergerHeap.String() != "heap-merge" {
		t.Error("merger names changed")
	}
}
