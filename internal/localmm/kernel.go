package localmm

import (
	"fmt"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

// Kernel selects the local multiply implementation used inside a SUMMA stage.
type Kernel int

const (
	// KernelHashUnsorted is the paper's new sort-free hash kernel.
	KernelHashUnsorted Kernel = iota
	// KernelHashSorted is the hash kernel with per-column output sorting.
	KernelHashSorted
	// KernelHeap is the previous heap-based kernel [13]; output sorted.
	KernelHeap
	// KernelHybrid is the previous hybrid heap/hash kernel [25]; output sorted.
	KernelHybrid
)

// String names the kernel for reports.
func (k Kernel) String() string {
	switch k {
	case KernelHashUnsorted:
		return "unsorted-hash"
	case KernelHashSorted:
		return "sorted-hash"
	case KernelHeap:
		return "heap"
	case KernelHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Func returns the kernel entry point. The returned function multiplies with
// threads worker goroutines via the two-phase plan of ParallelSpGEMM;
// threads <= 1 is exactly the serial kernel.
func (k Kernel) Func() func(a, b *spmat.CSC, sr *semiring.Semiring, threads int) *spmat.CSC {
	return func(a, b *spmat.CSC, sr *semiring.Semiring, threads int) *spmat.CSC {
		return ParallelSpGEMM(k, a, b, sr, threads)
	}
}

// serial returns the single-threaded kernel implementation.
func (k Kernel) serial() func(a, b *spmat.CSC, sr *semiring.Semiring) *spmat.CSC {
	switch k {
	case KernelHashUnsorted:
		return HashSpGEMM
	case KernelHashSorted:
		return HashSpGEMMSorted
	case KernelHeap:
		return HeapSpGEMM
	case KernelHybrid:
		return HybridSpGEMM
	default:
		panic("localmm: unknown kernel " + k.String())
	}
}

// ParseKernel parses a -kernel flag value ("auto" is not a kernel — callers
// map it to the per-stage selection knob before parsing).
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "hash", "unsorted-hash", "":
		return KernelHashUnsorted, nil
	case "sorted-hash":
		return KernelHashSorted, nil
	case "heap":
		return KernelHeap, nil
	case "hybrid":
		return KernelHybrid, nil
	}
	return 0, fmt.Errorf("localmm: unknown kernel %q (want hash | sorted-hash | heap | hybrid)", s)
}

// Merger selects the merging implementation used by Merge-Layer and
// Merge-Fiber.
type Merger int

const (
	// MergerHash is the paper's new sort-free hash merge.
	MergerHash Merger = iota
	// MergerHeap is the previous heap merge [13] (always sorted output).
	MergerHeap
)

// String names the merger for reports.
func (m Merger) String() string {
	switch m {
	case MergerHash:
		return "hash-merge"
	case MergerHeap:
		return "heap-merge"
	default:
		return fmt.Sprintf("Merger(%d)", int(m))
	}
}

// Merge runs the selected merging algorithm with threads worker goroutines
// (threads <= 1 is serial). sortOutput only affects MergerHash; the heap
// merge always emits sorted columns.
func (m Merger) Merge(mats []*spmat.CSC, sr *semiring.Semiring, sortOutput bool, threads int) *spmat.CSC {
	return ParallelMerge(m, mats, sr, sortOutput, threads)
}

// serial returns the single-threaded merge implementation.
func (m Merger) serial() func(mats []*spmat.CSC, sr *semiring.Semiring, sortOutput bool) *spmat.CSC {
	switch m {
	case MergerHash:
		return HashMerge
	case MergerHeap:
		return func(mats []*spmat.CSC, sr *semiring.Semiring, _ bool) *spmat.CSC {
			return HeapMerge(mats, sr)
		}
	default:
		panic("localmm: unknown merger " + m.String())
	}
}

// ParseMerger parses a -merger flag value ("auto" is not a merger — callers
// map it to the per-merge selection knob before parsing).
func ParseMerger(s string) (Merger, error) {
	switch s {
	case "hash", "hash-merge", "":
		return MergerHash, nil
	case "heap", "heap-merge":
		return MergerHeap, nil
	}
	return 0, fmt.Errorf("localmm: unknown merger %q (want hash | heap)", s)
}

// Multiply is the serial reference SpGEMM used to verify distributed results:
// hash kernel with sorted output.
func Multiply(a, b *spmat.CSC, sr *semiring.Semiring) *spmat.CSC {
	return HashSpGEMMSorted(a, b, sr)
}
