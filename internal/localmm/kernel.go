package localmm

import (
	"fmt"
	"sync"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

// Kernel selects the local multiply implementation used inside a SUMMA stage.
type Kernel int

const (
	// KernelHashUnsorted is the paper's new sort-free hash kernel.
	KernelHashUnsorted Kernel = iota
	// KernelHashSorted is the hash kernel with per-column output sorting.
	KernelHashSorted
	// KernelHeap is the previous heap-based kernel [13]; output sorted.
	KernelHeap
	// KernelHybrid is the previous hybrid heap/hash kernel [25]; output sorted.
	KernelHybrid
)

// String names the kernel for reports.
func (k Kernel) String() string {
	switch k {
	case KernelHashUnsorted:
		return "unsorted-hash"
	case KernelHashSorted:
		return "sorted-hash"
	case KernelHeap:
		return "heap"
	case KernelHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Func returns the kernel implementation.
func (k Kernel) Func() func(a, b *spmat.CSC, sr *semiring.Semiring) *spmat.CSC {
	switch k {
	case KernelHashUnsorted:
		return HashSpGEMM
	case KernelHashSorted:
		return HashSpGEMMSorted
	case KernelHeap:
		return HeapSpGEMM
	case KernelHybrid:
		return HybridSpGEMM
	default:
		panic("localmm: unknown kernel " + k.String())
	}
}

// Merger selects the merging implementation used by Merge-Layer and
// Merge-Fiber.
type Merger int

const (
	// MergerHash is the paper's new sort-free hash merge.
	MergerHash Merger = iota
	// MergerHeap is the previous heap merge [13] (always sorted output).
	MergerHeap
)

// String names the merger for reports.
func (m Merger) String() string {
	switch m {
	case MergerHash:
		return "hash-merge"
	case MergerHeap:
		return "heap-merge"
	default:
		return fmt.Sprintf("Merger(%d)", int(m))
	}
}

// Merge runs the selected merging algorithm. sortOutput only affects
// MergerHash; the heap merge always emits sorted columns.
func (m Merger) Merge(mats []*spmat.CSC, sr *semiring.Semiring, sortOutput bool) *spmat.CSC {
	switch m {
	case MergerHash:
		return HashMerge(mats, sr, sortOutput)
	case MergerHeap:
		return HeapMerge(mats, sr)
	default:
		panic("localmm: unknown merger " + m.String())
	}
}

// Multiply is the serial reference SpGEMM used to verify distributed results:
// hash kernel with sorted output.
func Multiply(a, b *spmat.CSC, sr *semiring.Semiring) *spmat.CSC {
	return HashSpGEMMSorted(a, b, sr)
}

// ParallelSpGEMM runs the given kernel with threads workers, each computing a
// contiguous block of B's columns, and concatenates the partial results. It
// models the paper's "multithreaded local multiplication" (16 threads per MPI
// process on Cori-KNL).
func ParallelSpGEMM(k Kernel, a, b *spmat.CSC, sr *semiring.Semiring, threads int) *spmat.CSC {
	if threads <= 1 || b.Cols < 2 {
		return k.Func()(a, b, sr)
	}
	if int32(threads) > b.Cols {
		threads = int(b.Cols)
	}
	bounds := spmat.PartBounds(b.Cols, threads)
	parts := make([]*spmat.CSC, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sub := spmat.ColRange(b, bounds[t], bounds[t+1])
			parts[t] = k.Func()(a, sub, sr)
		}(t)
	}
	wg.Wait()
	return spmat.HCat(parts)
}

// ParallelMerge runs the selected merger with threads workers over contiguous
// column blocks.
func ParallelMerge(mg Merger, mats []*spmat.CSC, sr *semiring.Semiring, sortOutput bool, threads int) *spmat.CSC {
	_, cols := checkMergeShapes(mats)
	if threads <= 1 || cols < 2 {
		return mg.Merge(mats, sr, sortOutput)
	}
	if int32(threads) > cols {
		threads = int(cols)
	}
	bounds := spmat.PartBounds(cols, threads)
	parts := make([]*spmat.CSC, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			subs := make([]*spmat.CSC, len(mats))
			for i, m := range mats {
				subs[i] = spmat.ColRange(m, bounds[t], bounds[t+1])
			}
			parts[t] = mg.Merge(subs, sr, sortOutput)
		}(t)
	}
	wg.Wait()
	return spmat.HCat(parts)
}
