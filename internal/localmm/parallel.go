package localmm

import (
	"fmt"
	"sync"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

// This file implements the multithreaded local SpGEMM and merge of Sec. IV-D:
// the paper runs 16 threads per MPI process on Cori-KNL, and the local
// kernels are where that parallelism lives. Both entry points use the same
// two-phase plan:
//
//  1. a parallel symbolic pass computes the exact nonzero count of every
//     output column (plus per-column flop counts, which are the load-balance
//     weights);
//  2. the output is allocated exactly once from the prefix sum of those
//     counts; and
//  3. a parallel numeric pass fills each column in place at its final offset.
//
// Workers own contiguous column ranges chosen so each range holds a
// near-equal share of the total flops — not a near-equal share of the
// columns, which degenerates badly on power-law matrices where a handful of
// columns carry most of the work. Because every output column is written by
// exactly one worker into a disjoint slice of the shared output arrays, the
// numeric pass needs no locks and no post-hoc concatenation.
//
// Per-column results are computed by the same algorithms as the serial
// kernels, in the same operand order, so values are bit-identical to the
// serial kernels' output (entry order within an unsorted column may differ;
// sorting canonicalizes it).

// mmWorker is one goroutine's reusable scratch state: a hash accumulator for
// numeric passes, a row set for symbolic passes, a heap for the heap-based
// kernels, and the column-view scratch of the format-generic heap kernel.
// Workers are pooled so repeated SUMMA stages reuse warm buffers instead of
// reallocating per call.
type mmWorker struct {
	acc    *hashAccum
	set    *rowSet
	heap   rowHeap
	aRowsV [][]int32
	aValsV [][]float64
}

var workerPool = sync.Pool{New: func() any { return new(mmWorker) }}

// accFor returns the worker's accumulator, reallocated only when want
// distinct rows would exceed a 0.5 load factor — the same reuse policy as the
// serial kernels.
func (w *mmWorker) accFor(want int64) *hashAccum {
	if w.acc == nil || 2*want > int64(len(w.acc.rows)) {
		w.acc = newHashAccum(want)
	} else {
		w.acc.reset()
	}
	return w.acc
}

// setFor returns the worker's row set under the same reuse policy.
func (w *mmWorker) setFor(want int64) *rowSet {
	if w.set == nil || 2*want > int64(len(w.set.rows)) {
		w.set = newRowSet(want)
	} else {
		w.set.reset()
	}
	return w.set
}

// flopBounds partitions columns into parts contiguous ranges whose work
// totals (colWork, typically flop counts from the symbolic pass) are as even
// as a contiguous split allows. Falls back to a count split when there is no
// work to balance.
func flopBounds(colWork []int64, parts int) []int32 {
	n := int32(len(colWork))
	var total int64
	for _, f := range colWork {
		total += f
	}
	if total == 0 {
		return spmat.PartBounds(n, parts)
	}
	bounds := make([]int32, parts+1)
	bounds[parts] = n
	var acc int64
	j := int32(0)
	for i := 1; i < parts; i++ {
		target := total * int64(i) / int64(parts)
		for j < n && acc < target {
			acc += colWork[j]
			j++
		}
		bounds[i] = j
	}
	return bounds
}

// releaseViews drops the operand-referencing column views of the generic
// heap kernel before the worker returns to the pool: the other scratch
// fields own their memory, but a retained view would keep a whole operand
// matrix reachable across unrelated work.
func (w *mmWorker) releaseViews() {
	rows := w.aRowsV[:cap(w.aRowsV)]
	for i := range rows {
		rows[i] = nil
	}
	vals := w.aValsV[:cap(w.aValsV)]
	for i := range vals {
		vals[i] = nil
	}
}

// runWorkers executes fn(worker, lo, hi) once per column range on its own
// goroutine, handing each a pooled worker.
func runWorkers(bounds []int32, fn func(w *mmWorker, lo, hi int32)) {
	var wg sync.WaitGroup
	for t := 0; t < len(bounds)-1; t++ {
		lo, hi := bounds[t], bounds[t+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int32) {
			defer wg.Done()
			w := workerPool.Get().(*mmWorker)
			fn(w, lo, hi)
			w.releaseViews()
			workerPool.Put(w)
		}(lo, hi)
	}
	wg.Wait()
}

// clampThreads bounds the worker count by the number of columns.
func clampThreads(threads int, cols int32) int {
	if int64(threads) > int64(cols) {
		return int(cols)
	}
	return threads
}

// mulColFlops returns the per-column flop counts of A·B in one O(nnz(B))
// pass (cheaper than ColFlops' per-column slicing; this runs before workers
// exist, so it must be fast).
func mulColFlops(a, b *spmat.CSC) []int64 {
	out := make([]int64, b.Cols)
	for j := int32(0); j < b.Cols; j++ {
		var f int64
		for _, i := range b.RowIdx[b.ColPtr[j]:b.ColPtr[j+1]] {
			f += a.ColPtr[i+1] - a.ColPtr[i]
		}
		out[j] = f
	}
	return out
}

// prefixToColPtr converts per-column counts into a ColPtr prefix sum,
// returning the total.
func prefixToColPtr(counts []int64, colPtr []int64) int64 {
	var acc int64
	for j, c := range counts {
		colPtr[j] = acc
		acc += c
	}
	colPtr[len(counts)] = acc
	return acc
}

// ParallelSpGEMM computes A·B with the selected kernel using threads worker
// goroutines. threads <= 1 (or a trivially small B) runs the serial kernel —
// distributed experiments default to Threads = 1 so ranks stay the only
// concurrency and metered shapes are unchanged.
func ParallelSpGEMM(k Kernel, a, b *spmat.CSC, sr *semiring.Semiring, threads int) *spmat.CSC {
	threads = clampThreads(threads, b.Cols)
	if threads <= 1 || b.Cols < 2 {
		return k.serial()(a, b, sr)
	}
	checkMulShapes(a, b)
	if (k == KernelHeap || k == KernelHybrid) && !a.SortedCols {
		// The heap-based kernels require sorted A columns (same restore as
		// their serial versions, done once and shared read-only here).
		a = a.Clone()
		a.SortColumns()
	}
	colFlops := mulColFlops(a, b)
	bounds := flopBounds(colFlops, threads)

	// Phase 1: exact per-column output sizes.
	colNNZ := parallelColNNZ(a, b, colFlops, bounds)

	// Exact single allocation.
	c := &spmat.CSC{
		Rows:       a.Rows,
		Cols:       b.Cols,
		ColPtr:     make([]int64, b.Cols+1),
		SortedCols: k != KernelHashUnsorted,
	}
	nnz := prefixToColPtr(colNNZ, c.ColPtr)
	c.RowIdx = make([]int32, nnz)
	c.Val = make([]float64, nnz)

	// Phase 2: numeric fill, each column written at its final offset.
	plusTimes := sr.IsPlusTimes()
	runWorkers(bounds, func(w *mmWorker, lo, hi int32) {
		for j := lo; j < hi; j++ {
			if colNNZ[j] == 0 {
				continue
			}
			lo64, hi64 := c.ColPtr[j], c.ColPtr[j+1]
			// Full-capacity sub-slices: the append-style column helpers fill
			// them in place; exceeding the symbolic size would reallocate away
			// from the shared arrays, which checkColumnFill catches.
			dstRows := c.RowIdx[lo64:lo64:hi64]
			dstVals := c.Val[lo64:lo64:hi64]
			bRows, bVals := b.Column(j)
			switch {
			case k == KernelHeap,
				k == KernelHybrid && colFlops[j] <= hybridHeapThreshold:
				outRows, _ := heapMulColumn(&w.heap, a, bRows, bVals, sr, plusTimes, dstRows, dstVals)
				checkColumnFill(outRows, hi64-lo64)
			default:
				acc := w.accFor(colFlops[j])
				hashAccumulateColumn(acc, a, bRows, bVals, sr, plusTimes)
				acc.drainAt(c.RowIdx[lo64:hi64], c.Val[lo64:hi64])
				if k != KernelHashUnsorted {
					sortColumnSlices(c.RowIdx[lo64:hi64], c.Val[lo64:hi64])
				}
			}
		}
	})
	return c
}

// ParallelSymbolicSpGEMM computes nnz(A·B) without forming the product —
// LOCALSYMBOLIC of Alg 3 — using threads worker goroutines. It is the
// symbolic phase of ParallelSpGEMM run standalone: workers own contiguous
// flop-balanced column ranges and count distinct output rows per column with
// pooled row sets, so the count equals SymbolicSpGEMM's for any thread
// count. threads <= 1 (or a trivially small B) runs the serial routine.
func ParallelSymbolicSpGEMM(a, b *spmat.CSC, threads int) int64 {
	threads = clampThreads(threads, b.Cols)
	if threads <= 1 || b.Cols < 2 {
		return SymbolicSpGEMM(a, b)
	}
	checkMulShapes(a, b)
	colFlops := mulColFlops(a, b)
	var total int64
	for _, n := range parallelColNNZ(a, b, colFlops, flopBounds(colFlops, threads)) {
		total += n
	}
	return total
}

// parallelColNNZ is the symbolic pass shared by ParallelSpGEMM (phase 1)
// and ParallelSymbolicSpGEMM: exact distinct-row counts for every output
// column of A·B, computed by pooled workers over flop-balanced column
// ranges. ParallelSpGEMM sizes its single output allocation from these
// counts, so they must be exact, never estimates.
func parallelColNNZ(a, b *spmat.CSC, colFlops []int64, bounds []int32) []int64 {
	colNNZ := make([]int64, b.Cols)
	runWorkers(bounds, func(w *mmWorker, lo, hi int32) {
		for j := lo; j < hi; j++ {
			if colFlops[j] == 0 {
				continue
			}
			set := w.setFor(colFlops[j])
			for _, i := range b.RowIdx[b.ColPtr[j]:b.ColPtr[j+1]] {
				for _, r := range a.RowIdx[a.ColPtr[i]:a.ColPtr[i+1]] {
					set.insert(r)
				}
			}
			colNNZ[j] = int64(len(set.occupied))
		}
	})
	return colNNZ
}

// heapMulColumn computes one output column with the multiway heap merge
// (ascending rows), appending to rows/vals and returning the extended
// slices. It is the shared inner loop of HeapSpGEMM, HybridSpGEMM's heap
// path, and the parallel heap kernels. hp is the caller's reusable heap
// storage.
func heapMulColumn(hp *rowHeap, a *spmat.CSC, bRows []int32, bVals []float64, sr *semiring.Semiring, plusTimes bool, rows []int32, vals []float64) ([]int32, []float64) {
	h := (*hp)[:0]
	for li := range bRows {
		i := bRows[li]
		if a.ColNNZ(i) == 0 {
			continue
		}
		start := a.ColPtr[i]
		h.push(heapEntry{row: a.RowIdx[start], list: int32(li), ptr: start})
	}
	for len(h) > 0 {
		e := h.pop()
		row := e.row
		var acc float64
		first := true
		for {
			i := bRows[e.list]
			var prod float64
			if plusTimes {
				prod = a.Val[e.ptr] * bVals[e.list]
			} else {
				prod = sr.Mul(a.Val[e.ptr], bVals[e.list])
			}
			if first {
				acc, first = prod, false
			} else if plusTimes {
				acc += prod
			} else {
				acc = sr.Add(acc, prod)
			}
			if next := e.ptr + 1; next < a.ColPtr[i+1] {
				h.push(heapEntry{row: a.RowIdx[next], list: e.list, ptr: next})
			}
			if len(h) == 0 || h[0].row != row {
				break
			}
			e = h.pop()
		}
		rows = append(rows, row)
		vals = append(vals, acc)
	}
	*hp = h
	return rows, vals
}

// checkColumnFill panics when a numeric column's entry count disagrees with
// its symbolic size — appending past the pre-sized capacity would have
// reallocated away from the shared output arrays, so this must never pass
// silently.
func checkColumnFill(outRows []int32, want int64) {
	if int64(len(outRows)) != want {
		panic(fmt.Sprintf("localmm: symbolic count %d disagrees with numeric output %d", want, len(outRows)))
	}
}

// ParallelMerge adds same-shaped matrices entry-wise with the selected merger
// using threads worker goroutines, following the same two-phase exact-
// allocation plan as ParallelSpGEMM. The balance weight for a column is its
// total input nonzeros across operands.
func ParallelMerge(mg Merger, mats []*spmat.CSC, sr *semiring.Semiring, sortOutput bool, threads int) *spmat.CSC {
	rows, cols := checkMergeShapes(mats)
	threads = clampThreads(threads, cols)
	if threads <= 1 || cols < 2 || len(mats) == 1 {
		return mg.serial()(mats, sr, sortOutput)
	}
	if mg == MergerHeap {
		// The heap merge needs sorted operands and always emits sorted
		// columns; restore the invariant once, outside the workers.
		sortOutput = true
		sorted := make([]*spmat.CSC, len(mats))
		for i, m := range mats {
			if m.SortedCols {
				sorted[i] = m
			} else {
				cp := m.Clone()
				cp.SortColumns()
				sorted[i] = cp
			}
		}
		mats = sorted
	}

	colIn := make([]int64, cols)
	for j := int32(0); j < cols; j++ {
		var n int64
		for _, m := range mats {
			n += m.ColNNZ(j)
		}
		colIn[j] = n
	}
	bounds := flopBounds(colIn, threads)

	// Phase 1: exact merged sizes.
	colNNZ := make([]int64, cols)
	runWorkers(bounds, func(w *mmWorker, lo, hi int32) {
		for j := lo; j < hi; j++ {
			if colIn[j] == 0 {
				continue
			}
			set := w.setFor(colIn[j])
			for _, m := range mats {
				for _, r := range m.RowIdx[m.ColPtr[j]:m.ColPtr[j+1]] {
					set.insert(r)
				}
			}
			colNNZ[j] = int64(len(set.occupied))
		}
	})

	c := &spmat.CSC{
		Rows:       rows,
		Cols:       cols,
		ColPtr:     make([]int64, cols+1),
		SortedCols: sortOutput,
	}
	nnz := prefixToColPtr(colNNZ, c.ColPtr)
	c.RowIdx = make([]int32, nnz)
	c.Val = make([]float64, nnz)

	// Phase 2: numeric fill.
	plusTimes := sr.IsPlusTimes()
	runWorkers(bounds, func(w *mmWorker, lo, hi int32) {
		for j := lo; j < hi; j++ {
			if colNNZ[j] == 0 {
				continue
			}
			lo64, hi64 := c.ColPtr[j], c.ColPtr[j+1]
			if mg == MergerHeap {
				outRows, _ := heapMergeColumn(&w.heap, mats, j, sr, plusTimes,
					c.RowIdx[lo64:lo64:hi64], c.Val[lo64:lo64:hi64])
				checkColumnFill(outRows, hi64-lo64)
				continue
			}
			dstRows := c.RowIdx[lo64:hi64]
			dstVals := c.Val[lo64:hi64]
			acc := w.accFor(colIn[j])
			hashAccumulateMergeColumn(acc, mats, j, sr, plusTimes)
			acc.drainAt(dstRows, dstVals)
			if sortOutput {
				sortColumnSlices(dstRows, dstVals)
			}
		}
	})
	return c
}

// heapMergeColumn k-way-merges column j of the (sorted) operands, appending
// to rows/vals and returning the extended slices. It is the shared inner
// loop of HeapMerge and the parallel heap merge.
func heapMergeColumn(hp *rowHeap, mats []*spmat.CSC, j int32, sr *semiring.Semiring, plusTimes bool, rows []int32, vals []float64) ([]int32, []float64) {
	h := (*hp)[:0]
	for mi, m := range mats {
		if m.ColNNZ(j) == 0 {
			continue
		}
		start := m.ColPtr[j]
		h.push(heapEntry{row: m.RowIdx[start], list: int32(mi), ptr: start})
	}
	for len(h) > 0 {
		e := h.pop()
		row := e.row
		var acc float64
		first := true
		for {
			m := mats[e.list]
			v := m.Val[e.ptr]
			if first {
				acc, first = v, false
			} else if plusTimes {
				acc += v
			} else {
				acc = sr.Add(acc, v)
			}
			if next := e.ptr + 1; next < m.ColPtr[j+1] {
				h.push(heapEntry{row: m.RowIdx[next], list: e.list, ptr: next})
			}
			if len(h) == 0 || h[0].row != row {
				break
			}
			e = h.pop()
		}
		rows = append(rows, row)
		vals = append(vals, acc)
	}
	*hp = h
	return rows, vals
}
