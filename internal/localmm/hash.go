package localmm

import (
	"fmt"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

// hashAccum is an open-addressing (linear probing) row→value accumulator with
// power-of-two capacity. The occupied slot list makes draining O(distinct)
// instead of O(capacity).
type hashAccum struct {
	rows     []int32
	vals     []float64
	mask     int32
	occupied []int32 // slot indices in insertion order
}

const emptySlot = int32(-1)

// newHashAccum returns an accumulator able to hold at least want distinct
// rows with load factor ≤ 0.5.
func newHashAccum(want int64) *hashAccum {
	cap := int32(8)
	for int64(cap) < 2*want {
		cap <<= 1
	}
	h := &hashAccum{
		rows: make([]int32, cap),
		vals: make([]float64, cap),
		mask: cap - 1,
	}
	for i := range h.rows {
		h.rows[i] = emptySlot
	}
	return h
}

// reset clears the accumulator for reuse without reallocating.
func (h *hashAccum) reset() {
	for _, s := range h.occupied {
		h.rows[s] = emptySlot
	}
	h.occupied = h.occupied[:0]
}

// grow doubles capacity, rehashing the occupied entries.
func (h *hashAccum) grow() {
	oldRows, oldVals, oldOcc := h.rows, h.vals, h.occupied
	cap := int32(len(oldRows)) * 2
	h.rows = make([]int32, cap)
	h.vals = make([]float64, cap)
	h.mask = cap - 1
	h.occupied = make([]int32, 0, len(oldOcc))
	for i := range h.rows {
		h.rows[i] = emptySlot
	}
	for _, s := range oldOcc {
		h.insertRaw(oldRows[s], oldVals[s])
	}
}

// hash scrambles the row index; the multiplier is the 32-bit Fibonacci
// constant.
func (h *hashAccum) hash(r int32) int32 {
	return int32(uint32(r)*2654435769) & h.mask
}

// insertRaw stores (r, v) assuming r is not present.
func (h *hashAccum) insertRaw(r int32, v float64) {
	s := h.hash(r)
	for h.rows[s] != emptySlot {
		s = (s + 1) & h.mask
	}
	h.rows[s] = r
	h.vals[s] = v
	h.occupied = append(h.occupied, s)
}

// addPlus accumulates v into row r with ordinary +. Fast path for the
// arithmetic semiring.
func (h *hashAccum) addPlus(r int32, v float64) {
	if 2*int32(len(h.occupied)) >= int32(len(h.rows)) {
		h.grow()
	}
	s := h.hash(r)
	for {
		switch h.rows[s] {
		case r:
			h.vals[s] += v
			return
		case emptySlot:
			h.rows[s] = r
			h.vals[s] = v
			h.occupied = append(h.occupied, s)
			return
		}
		s = (s + 1) & h.mask
	}
}

// add accumulates v into row r with the semiring's Add.
func (h *hashAccum) add(r int32, v float64, addFn func(a, b float64) float64) {
	if 2*int32(len(h.occupied)) >= int32(len(h.rows)) {
		h.grow()
	}
	s := h.hash(r)
	for {
		switch h.rows[s] {
		case r:
			h.vals[s] = addFn(h.vals[s], v)
			return
		case emptySlot:
			h.rows[s] = r
			h.vals[s] = v
			h.occupied = append(h.occupied, s)
			return
		}
		s = (s + 1) & h.mask
	}
}

// drainInto appends the accumulated (row, value) pairs to the output slices
// in insertion order (unsorted) and returns the extended slices.
func (h *hashAccum) drainInto(rows []int32, vals []float64) ([]int32, []float64) {
	for _, s := range h.occupied {
		rows = append(rows, h.rows[s])
		vals = append(vals, h.vals[s])
	}
	return rows, vals
}

// drainAt writes the accumulated pairs, in insertion order, into destination
// slices that were pre-sized by a symbolic pass.
func (h *hashAccum) drainAt(rows []int32, vals []float64) {
	if len(h.occupied) != len(rows) {
		panic(fmt.Sprintf("localmm: symbolic count %d disagrees with numeric hash output %d", len(rows), len(h.occupied)))
	}
	for i, s := range h.occupied {
		rows[i] = h.rows[s]
		vals[i] = h.vals[s]
	}
}

// checkMulShapes panics when the operand shapes are incompatible; shape
// errors here are programmer errors in the distribution logic.
func checkMulShapes(a, b *spmat.CSC) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("localmm: inner dimension mismatch: A is %v, B is %v", a, b))
	}
}

// HashSpGEMM multiplies A·B with the sort-free hash kernel of Sec. IV-D
// ("unsorted-hash"). Neither operand needs sorted columns and the result's
// columns are unsorted. This is the paper's new Local-Multiply kernel.
func HashSpGEMM(a, b *spmat.CSC, sr *semiring.Semiring) *spmat.CSC {
	return hashSpGEMM(a, b, sr, false)
}

// HashSpGEMMSorted is HashSpGEMM followed by sorting each output column. It
// matches how hash kernels were used before the sort-free observation.
func HashSpGEMMSorted(a, b *spmat.CSC, sr *semiring.Semiring) *spmat.CSC {
	return hashSpGEMM(a, b, sr, true)
}

func hashSpGEMM(a, b *spmat.CSC, sr *semiring.Semiring, sortCols bool) *spmat.CSC {
	checkMulShapes(a, b)
	c := &spmat.CSC{
		Rows:       a.Rows,
		Cols:       b.Cols,
		ColPtr:     make([]int64, b.Cols+1),
		SortedCols: false,
	}
	plusTimes := sr.IsPlusTimes()
	var acc *hashAccum
	for j := int32(0); j < b.Cols; j++ {
		// Upper bound on distinct output rows in this column: its flops.
		var colFlops int64
		bRows, bVals := b.Column(j)
		for _, i := range bRows {
			colFlops += a.ColNNZ(i)
		}
		if colFlops == 0 {
			c.ColPtr[j+1] = int64(len(c.RowIdx))
			continue
		}
		if acc == nil || 2*colFlops > int64(len(acc.rows)) {
			acc = newHashAccum(colFlops)
		} else {
			acc.reset()
		}
		hashAccumulateColumn(acc, a, bRows, bVals, sr, plusTimes)
		c.RowIdx, c.Val = acc.drainInto(c.RowIdx, c.Val)
		c.ColPtr[j+1] = int64(len(c.RowIdx))
	}
	if sortCols {
		c.SortColumns()
	}
	return c
}

// hashAccumulateColumn feeds one output column's products into acc: the
// shared inner loop of hashSpGEMM, HybridSpGEMM's hash branch, and the
// parallel hash kernels.
func hashAccumulateColumn(acc *hashAccum, a *spmat.CSC, bRows []int32, bVals []float64, sr *semiring.Semiring, plusTimes bool) {
	if plusTimes {
		for p := range bRows {
			i, bv := bRows[p], bVals[p]
			aRows, aVals := a.Column(i)
			for q := range aRows {
				acc.addPlus(aRows[q], aVals[q]*bv)
			}
		}
	} else {
		for p := range bRows {
			i, bv := bRows[p], bVals[p]
			aRows, aVals := a.Column(i)
			for q := range aRows {
				acc.add(aRows[q], sr.Mul(aVals[q], bv), sr.Add)
			}
		}
	}
}
