package localmm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

// sumAll is the reference entry-wise sum of a list of matrices.
func sumAll(mats []*spmat.CSC) *spmat.CSC {
	out := mats[0]
	for _, m := range mats[1:] {
		out = spmat.Add(out, m, nil)
	}
	return out
}

func TestMergersMatchReference(t *testing.T) {
	sr := semiring.PlusTimes()
	mats := []*spmat.CSC{
		randomMat(t, 25, 20, 80, 11),
		randomMat(t, 25, 20, 90, 12),
		randomMat(t, 25, 20, 70, 13),
	}
	want := sumAll(mats)
	if got := HashMerge(mats, sr, true); !spmat.Equal(got, want) {
		t.Error("hash merge wrong")
	}
	if got := HeapMerge(mats, sr); !spmat.Equal(got, want) {
		t.Error("heap merge wrong")
	}
}

func TestHashMergeUnsortedFlag(t *testing.T) {
	sr := semiring.PlusTimes()
	mats := []*spmat.CSC{randomMat(t, 10, 10, 30, 14), randomMat(t, 10, 10, 30, 15)}
	if got := HashMerge(mats, sr, false); got.SortedCols {
		t.Error("unsorted hash merge should report unsorted")
	}
	got := HashMerge(mats, sr, true)
	if !got.SortedCols {
		t.Error("sorted hash merge should report sorted")
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMergeUnsortedInputs(t *testing.T) {
	sr := semiring.PlusTimes()
	a := randomMat(t, 30, 30, 150, 16)
	b := randomMat(t, 30, 30, 150, 17)
	// Produce genuinely unsorted operands through the unsorted-hash kernel.
	ua := HashSpGEMM(a, b, sr)
	ub := HashSpGEMM(b, a, sr)
	want := sumAll([]*spmat.CSC{ua, ub})
	if got := HashMerge([]*spmat.CSC{ua, ub}, sr, true); !spmat.Equal(got, want) {
		t.Error("hash merge of unsorted inputs wrong")
	}
	if got := HeapMerge([]*spmat.CSC{ua, ub}, sr); !spmat.Equal(got, want) {
		t.Error("heap merge of unsorted inputs wrong")
	}
}

func TestMergeSingleMatrix(t *testing.T) {
	sr := semiring.PlusTimes()
	m := HashSpGEMM(randomMat(t, 15, 15, 60, 18), randomMat(t, 15, 15, 60, 19), sr)
	got := HashMerge([]*spmat.CSC{m}, sr, true)
	if !spmat.Equal(got, m) {
		t.Error("merge of one matrix should be identity")
	}
	if !got.SortedCols {
		t.Error("requested sorted output")
	}
}

func TestMergeEmptyMatrices(t *testing.T) {
	sr := semiring.PlusTimes()
	mats := []*spmat.CSC{spmat.New(5, 5), spmat.New(5, 5)}
	for _, mg := range []Merger{MergerHash, MergerHeap} {
		got := mg.Merge(mats, sr, true, 1)
		if got.NNZ() != 0 {
			t.Errorf("%v: merge of empties has %d nnz", mg, got.NNZ())
		}
	}
}

func TestMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	HashMerge([]*spmat.CSC{spmat.New(3, 3), spmat.New(3, 4)}, semiring.PlusTimes(), false)
}

func TestMergeDeduplicates(t *testing.T) {
	// Matrices with internal duplicate coordinates (as stage outputs can
	// have when concatenated) must still merge correctly.
	dup := &spmat.CSC{
		Rows: 3, Cols: 1,
		ColPtr:     []int64{0, 3},
		RowIdx:     []int32{1, 1, 0},
		Val:        []float64{2, 3, 1},
		SortedCols: false,
	}
	other, _ := spmat.FromTriples(3, 1, []spmat.Triple{{Row: 1, Col: 0, Val: 4}}, nil)
	sr := semiring.PlusTimes()
	for _, mg := range []Merger{MergerHash, MergerHeap} {
		got := mg.Merge([]*spmat.CSC{dup, other}, sr, true, 1)
		if got.At(1, 0) != 9 || got.At(0, 0) != 1 {
			t.Errorf("%v: duplicates mishandled: (1,0)=%v (0,0)=%v", mg, got.At(1, 0), got.At(0, 0))
		}
		if got.NNZ() != 2 {
			t.Errorf("%v: nnz=%d, want 2", mg, got.NNZ())
		}
	}
}

func TestMergersAgreeProperty(t *testing.T) {
	sr := semiring.PlusTimes()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int32(rng.Intn(20) + 1)
		cols := int32(rng.Intn(20) + 1)
		k := rng.Intn(4) + 1
		mats := make([]*spmat.CSC, k)
		for i := range mats {
			mats[i] = randomMat(t, rows, cols, rng.Intn(60), seed+int64(i)+1)
		}
		return spmat.Equal(HashMerge(mats, sr, true), HeapMerge(mats, sr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParallelMergeMatchesSerial(t *testing.T) {
	sr := semiring.PlusTimes()
	mats := []*spmat.CSC{
		randomMat(t, 40, 35, 200, 20),
		randomMat(t, 40, 35, 200, 21),
		randomMat(t, 40, 35, 200, 22),
	}
	want := HashMerge(mats, sr, true)
	for _, threads := range []int{2, 5, 64} {
		got := ParallelMerge(MergerHash, mats, sr, true, threads)
		if !spmat.Equal(got, want) {
			t.Errorf("threads=%d: parallel merge differs", threads)
		}
	}
}

func TestMergeMinPlus(t *testing.T) {
	sr := semiring.MinPlus()
	a, _ := spmat.FromTriples(2, 1, []spmat.Triple{{Row: 0, Col: 0, Val: 5}}, nil)
	b, _ := spmat.FromTriples(2, 1, []spmat.Triple{{Row: 0, Col: 0, Val: 3}, {Row: 1, Col: 0, Val: 7}}, nil)
	for _, mg := range []Merger{MergerHash, MergerHeap} {
		got := mg.Merge([]*spmat.CSC{a, b}, sr, true, 1)
		if got.At(0, 0) != 3 || got.At(1, 0) != 7 {
			t.Errorf("%v: min-plus merge wrong: %v %v", mg, got.At(0, 0), got.At(1, 0))
		}
	}
}
