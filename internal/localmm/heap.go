package localmm

import (
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// heapEntry tracks one contributing column of A during the multiway merge:
// the current row index, which list (entry of B's column) it belongs to, and
// the cursor into that A column.
type heapEntry struct {
	row  int32
	list int32
	ptr  int64
}

// rowHeap is a binary min-heap on (row, list). A hand-rolled heap avoids the
// interface indirection of container/heap in this hot loop. The list
// tie-break makes same-row contributions pop in operand order — exactly the
// order the hash accumulator adds them — so heap- and hash-based paths
// produce bit-identical float64 values, not merely equal structure: the
// kernel and merger knobs are speed attribution only, and the differential
// suites hold them to exact equality.
type rowHeap []heapEntry

// heapLess orders entries by row, ties by list (operand) index.
func heapLess(a, b heapEntry) bool {
	if a.row != b.row {
		return a.row < b.row
	}
	return a.list < b.list
}

func (h *rowHeap) push(e heapEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *rowHeap) pop() heapEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && heapLess(old[l], old[small]) {
			small = l
		}
		if r < n && heapLess(old[r], old[small]) {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// HeapSpGEMM multiplies A·B with the heap-based column kernel used by the
// previous 3D SUMMA work [13]. It requires A to have sorted columns and
// always produces sorted output columns — the sortedness the paper's new
// kernels deliberately give up.
func HeapSpGEMM(a, b *spmat.CSC, sr *semiring.Semiring) *spmat.CSC {
	checkMulShapes(a, b)
	if !a.SortedCols {
		// The previous framework kept all matrices sorted; when handed an
		// unsorted operand we must restore that invariant first, and the cost
		// is charged to this kernel just as it would be in the original code.
		a = a.Clone()
		a.SortColumns()
	}
	c := &spmat.CSC{
		Rows:       a.Rows,
		Cols:       b.Cols,
		ColPtr:     make([]int64, b.Cols+1),
		SortedCols: true,
	}
	plusTimes := sr.IsPlusTimes()
	var h rowHeap
	for j := int32(0); j < b.Cols; j++ {
		bRows, bVals := b.Column(j)
		c.RowIdx, c.Val = heapMulColumn(&h, a, bRows, bVals, sr, plusTimes, c.RowIdx, c.Val)
		c.ColPtr[j+1] = int64(len(c.RowIdx))
	}
	return c
}
