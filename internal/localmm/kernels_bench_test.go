package localmm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

// uniformMat builds a matrix with exactly perCol nonzeros in every column
// (distinct random rows), so A·B has a controlled flops-per-column:
// multiplying two uniform matrices with column degrees dA and dB yields
// dA·dB flops per output column. That lets the crossover benchmark place
// workloads on either side of the heap↔hash regime boundary precisely.
func uniformMat(tb testing.TB, rows, cols int32, perCol int, seed int64) *spmat.CSC {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := make([]spmat.Triple, 0, int(cols)*perCol)
	for j := int32(0); j < cols; j++ {
		for _, r := range rng.Perm(int(rows))[:perCol] {
			ts = append(ts, spmat.Triple{Row: int32(r), Col: j, Val: rng.Float64() + 0.5})
		}
	}
	m, err := spmat.FromTriples(rows, cols, ts, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkHashSpGEMMParallel is the thread sweep of the unsorted-hash
// kernel — the paper's Figure-2-style scaling of the local multiply. Results
// are recorded in BENCH_kernels.json (make bench-kernels).
func BenchmarkHashSpGEMMParallel(b *testing.B) {
	a := randomMat(b, 4096, 4096, 120000, 91)
	sr := semiring.PlusTimes()
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ParallelSpGEMM(KernelHashUnsorted, a, a, sr, threads)
			}
		})
	}
}

// BenchmarkKernelCrossover measures heap vs hash vs hybrid on both sides of
// the *modeled* regime boundary (64 flops per column, costmodel.KernelTable
// defaults, taken from the Azad et al. measurements the table encodes as its
// prior). Where the real crossover sits on a given host depends on its
// memory system — that gap is exactly what the table's online recalibration
// absorbs — so this benchmark records the measured regime picture that
// BENCH_kernels.json snapshots for the runner. Column degrees are uniform,
// making flops/col = dA·dB exact.
func BenchmarkKernelCrossover(b *testing.B) {
	sr := semiring.PlusTimes()
	shapes := []struct {
		name     string
		dA, dB   int
		rows     int32
		flopsCol int
	}{
		{"hypersparse", 2, 2, 8192, 4}, // far below the modeled crossover
		{"sparse", 4, 4, 4096, 16},     // below it
		{"boundary", 8, 8, 2048, 64},   // at the modeled meeting point
		{"dense", 32, 32, 1024, 1024},  // far above it
	}
	kernels := []Kernel{KernelHeap, KernelHashUnsorted, KernelHybrid}
	for _, sh := range shapes {
		a := uniformMat(b, sh.rows, sh.rows, sh.dA, 92)
		bm := uniformMat(b, sh.rows, sh.rows, sh.dB, 93)
		for _, k := range kernels {
			b.Run(fmt.Sprintf("%s-%dflops-per-col/%v", sh.name, sh.flopsCol, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ParallelSpGEMM(k, a, bm, sr, 1)
				}
			})
		}
	}
}
