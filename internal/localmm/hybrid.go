package localmm

import (
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// hybridHeapThreshold is the per-column flop count below which the hybrid
// kernel prefers the heap: for short columns (low compression ratio) the heap
// beats hash-table setup, mirroring the policy of Nagasaka et al. [25].
const hybridHeapThreshold = 64

// HybridSpGEMM multiplies A·B with the prior state-of-the-art hybrid kernel
// [25]: per output column it chooses the heap (small flop count / low
// compression) or a hash table, and always sorts the finished column. This is
// the "previous hybrid" baseline the paper's unsorted-hash kernel is measured
// against (Sec. IV-D reports unsorted-hash 30–50% faster).
func HybridSpGEMM(a, b *spmat.CSC, sr *semiring.Semiring) *spmat.CSC {
	checkMulShapes(a, b)
	if !a.SortedCols {
		a = a.Clone()
		a.SortColumns()
	}
	c := &spmat.CSC{
		Rows:       a.Rows,
		Cols:       b.Cols,
		ColPtr:     make([]int64, b.Cols+1),
		SortedCols: true,
	}
	plusTimes := sr.IsPlusTimes()
	var h rowHeap
	var acc *hashAccum
	for j := int32(0); j < b.Cols; j++ {
		bRows, bVals := b.Column(j)
		var colFlops int64
		for _, i := range bRows {
			colFlops += a.ColNNZ(i)
		}
		if colFlops == 0 {
			c.ColPtr[j+1] = int64(len(c.RowIdx))
			continue
		}
		if colFlops <= hybridHeapThreshold {
			// Heap path: multiway merge, output already sorted.
			c.RowIdx, c.Val = heapMulColumn(&h, a, bRows, bVals, sr, plusTimes, c.RowIdx, c.Val)
		} else {
			// Hash path, followed by the per-column sort the hybrid kernel
			// always performed.
			if acc == nil || 2*colFlops > int64(len(acc.rows)) {
				acc = newHashAccum(colFlops)
			} else {
				acc.reset()
			}
			hashAccumulateColumn(acc, a, bRows, bVals, sr, plusTimes)
			lo := int64(len(c.RowIdx))
			c.RowIdx, c.Val = acc.drainInto(c.RowIdx, c.Val)
			sortColumnSlices(c.RowIdx[lo:], c.Val[lo:])
		}
		c.ColPtr[j+1] = int64(len(c.RowIdx))
	}
	return c
}
