package localmm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/semiring"
	"repro/internal/spmat"
)

func TestFlopsSmall(t *testing.T) {
	// A has columns with 2 and 1 nonzeros; B selects them.
	a := spmat.Dense(3, 2, []float64{1, 0, 1, 1, 0, 0})
	b := spmat.Dense(2, 2, []float64{1, 1, 1, 0})
	// Column 0 of B uses A cols {0,1}: 2+1 = 3 flops; column 1 uses {0}: 2.
	if got := Flops(a, b); got != 5 {
		t.Errorf("Flops=%d, want 5", got)
	}
	cf := ColFlops(a, b)
	if cf[0] != 3 || cf[1] != 2 {
		t.Errorf("ColFlops=%v, want [3 2]", cf)
	}
}

func TestSymbolicMatchesActualNNZ(t *testing.T) {
	a := randomMat(t, 40, 40, 250, 30)
	b := randomMat(t, 40, 40, 250, 31)
	c := Multiply(a, b, semiring.PlusTimes())
	// Structural nnz: the hash kernel stores every structurally reachable
	// entry (exact zeros from cancellation are still stored).
	if got, want := SymbolicSpGEMM(a, b), c.NNZ(); got != want {
		t.Errorf("SymbolicSpGEMM=%d, actual nnz=%d", got, want)
	}
	cols := SymbolicColNNZ(a, b)
	var total int64
	for j := int32(0); j < c.Cols; j++ {
		if cols[j] != c.ColNNZ(j) {
			t.Errorf("column %d: symbolic %d actual %d", j, cols[j], c.ColNNZ(j))
		}
		total += cols[j]
	}
	if total != c.NNZ() {
		t.Errorf("per-column sum %d != total %d", total, c.NNZ())
	}
}

func TestCompressionFactorAtLeastOne(t *testing.T) {
	a := randomMat(t, 50, 50, 400, 32)
	cf := CompressionFactor(a, a)
	if cf < 1 {
		t.Errorf("cf=%v < 1", cf)
	}
}

func TestCompressionFactorEmpty(t *testing.T) {
	if cf := CompressionFactor(spmat.New(5, 5), spmat.New(5, 5)); cf != 0 {
		t.Errorf("cf of empty product = %v, want 0", cf)
	}
}

func TestFlopsVsSymbolicProperty(t *testing.T) {
	// flops ≥ nnz(C) always (each output nonzero needs ≥1 multiplication).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int32(rng.Intn(30) + 1)
		a := randomMat(t, n, n, rng.Intn(120), seed+1)
		b := randomMat(t, n, n, rng.Intn(120), seed+2)
		return Flops(a, b) >= SymbolicSpGEMM(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSymbolicIdentityProduct(t *testing.T) {
	m := randomMat(t, 30, 30, 100, 33)
	id := spmat.Identity(30)
	if got := SymbolicSpGEMM(m, id); got != m.NNZ() {
		t.Errorf("nnz(M·I) symbolic = %d, want %d", got, m.NNZ())
	}
	if got := Flops(m, id); got != m.NNZ() {
		t.Errorf("flops(M·I) = %d, want %d", got, m.NNZ())
	}
}

func TestRowSetGrowth(t *testing.T) {
	s := newRowSet(2)
	for r := int32(0); r < 1000; r++ {
		s.insert(r)
		s.insert(r) // duplicate inserts must be idempotent
	}
	if len(s.occupied) != 1000 {
		t.Errorf("set has %d elements, want 1000", len(s.occupied))
	}
}

func TestHashAccumGrowth(t *testing.T) {
	h := newHashAccum(2)
	for r := int32(0); r < 500; r++ {
		h.addPlus(r%100, 1) // 100 distinct keys, 5 inserts each
	}
	if len(h.occupied) != 100 {
		t.Fatalf("accumulator has %d keys, want 100", len(h.occupied))
	}
	rows, vals := h.drainInto(nil, nil)
	for i := range rows {
		if vals[i] != 5 {
			t.Errorf("row %d accumulated %v, want 5", rows[i], vals[i])
		}
	}
}

func TestHashAccumReset(t *testing.T) {
	h := newHashAccum(10)
	h.addPlus(3, 1)
	h.addPlus(7, 2)
	h.reset()
	if len(h.occupied) != 0 {
		t.Fatal("reset did not clear")
	}
	h.addPlus(3, 5)
	rows, vals := h.drainInto(nil, nil)
	if len(rows) != 1 || vals[0] != 5 {
		t.Errorf("stale state after reset: %v %v", rows, vals)
	}
}

func TestSymbolicStampMatchesHashFallback(t *testing.T) {
	a := randomMat(t, 60, 60, 400, 34)
	b := randomMat(t, 60, 60, 350, 35)
	if got, want := SymbolicSpGEMM(a, b), symbolicHashed(a, b); got != want {
		t.Errorf("stamp kernel %d, hash kernel %d", got, want)
	}
}

func TestSymbolicEmptyColumns(t *testing.T) {
	a := randomMat(t, 20, 20, 50, 36)
	b := spmat.New(20, 7)
	if got := SymbolicSpGEMM(a, b); got != 0 {
		t.Errorf("empty B: nnz=%d", got)
	}
}

func BenchmarkSymbolicStamp(b *testing.B) {
	a := randomMat(b, 2048, 2048, 40000, 37)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SymbolicSpGEMM(a, a)
	}
}

func BenchmarkSymbolicHashSet(b *testing.B) {
	a := randomMat(b, 2048, 2048, 40000, 37)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		symbolicHashed(a, a)
	}
}

// TestParallelSymbolicMatchesSerial: the threaded LOCALSYMBOLIC must count
// exactly what the serial routine counts for any thread count, including
// thread counts exceeding the column count.
func TestParallelSymbolicMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		rows, cols int32
		nnz        int
		seed       int64
	}{
		{60, 60, 400, 51},
		{200, 120, 2500, 52},
		{500, 17, 3000, 53}, // few, heavy columns: exercises flop balancing
		{40, 1, 80, 54},     // single column: clamps to serial
	} {
		a := randomMat(t, tc.rows, tc.rows, tc.nnz, tc.seed)
		b := randomMat(t, tc.rows, tc.cols, tc.nnz, tc.seed+100)
		want := SymbolicSpGEMM(a, b)
		for _, threads := range []int{1, 2, 3, 4, 8, 64} {
			if got := ParallelSymbolicSpGEMM(a, b, threads); got != want {
				t.Errorf("%dx%d nnz=%d threads=%d: got %d, want %d",
					tc.rows, tc.cols, tc.nnz, threads, got, want)
			}
		}
	}
}

// TestParallelSymbolicEmpty covers the empty-operand edge the stage loop can
// produce on small grids.
func TestParallelSymbolicEmpty(t *testing.T) {
	a := randomMat(t, 20, 20, 50, 55)
	if got := ParallelSymbolicSpGEMM(a, spmat.New(20, 7), 4); got != 0 {
		t.Errorf("empty B: nnz=%d", got)
	}
}

func BenchmarkSymbolicParallel(b *testing.B) {
	a := randomMat(b, 2048, 2048, 40000, 37)
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ParallelSymbolicSpGEMM(a, a, threads)
			}
		})
	}
}
