package mpi

import (
	"math"
	"testing"
)

// TestIbcastDeliversPayload checks the split broadcast moves the root's
// payload to every rank, exactly like the blocking Bcast.
func TestIbcastDeliversPayload(t *testing.T) {
	const p = 4
	Run(p, CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9}, func(c *Comm) {
		var msg Payload
		if c.Rank() == 2 {
			msg = Bytes(321)
		}
		req := c.IbcastStart(2, msg)
		got := req.Wait()
		if got.(Bytes) != 321 {
			t.Errorf("rank %d: got %v, want 321", c.Rank(), got)
		}
	})
}

// TestIbcastWaitMetersLikeBcast: an IbcastStart immediately followed by Wait
// must charge messages, bytes, and modeled seconds identically to Bcast —
// the serial SUMMA schedule relies on this to stay byte-identical.
func TestIbcastWaitMetersLikeBcast(t *testing.T) {
	cm := CostModel{AlphaSec: 3e-6, BetaSecPerByte: 2e-9}
	const p = 8
	run := func(split bool) []*Meter {
		return Run(p, cm, func(c *Comm) {
			c.Meter().SetCategory("step")
			var msg Payload
			if c.Rank() == 0 {
				msg = Bytes(4096)
			}
			if split {
				c.IbcastStart(0, msg).Wait()
			} else {
				c.Bcast(0, msg)
			}
		})
	}
	blocking, nonblocking := run(false), run(true)
	for r := range blocking {
		want, got := blocking[r].Step("step"), nonblocking[r].Step("step")
		if want != got {
			t.Errorf("rank %d: Ibcast+Wait metered %+v, Bcast %+v", r, got, want)
		}
	}
}

// TestIbcastWaitOverlapSplitsCost: credit moves cost into the hidden
// category without changing the total, byte, or message accounting.
func TestIbcastWaitOverlapSplitsCost(t *testing.T) {
	cm := CostModel{AlphaSec: 1e-3, BetaSecPerByte: 1e-6}
	const p = 4
	n := int64(1000)
	full := cm.BcastCost(p, n)
	for _, tc := range []struct {
		name           string
		credit         float64
		wantHidden     float64
		wantCreditUsed float64
	}{
		{"no credit", 0, 0, 0},
		{"partial credit", full / 2, full / 2, full / 2},
		{"surplus credit", 2 * full, full, full},
		{"negative credit", -1, 0, 0},
	} {
		meters := Run(p, cm, func(c *Comm) {
			c.Meter().SetCategory("exposed")
			var msg Payload
			if c.Rank() == 0 {
				msg = Bytes(n)
			}
			req := c.IbcastStart(0, msg)
			_, used := req.WaitOverlap(tc.credit, "hidden")
			if math.Abs(used-tc.wantCreditUsed) > 1e-12 {
				t.Errorf("%s: rank %d consumed credit %v, want %v", tc.name, c.Rank(), used, tc.wantCreditUsed)
			}
		})
		for r, m := range meters {
			exp, hid := m.Step("exposed"), m.Step("hidden")
			if math.Abs(exp.CommSeconds+hid.HiddenSeconds-full) > 1e-12 {
				t.Errorf("%s: rank %d exposed %v + hidden %v != cost %v",
					tc.name, r, exp.CommSeconds, hid.HiddenSeconds, full)
			}
			if math.Abs(hid.HiddenSeconds-tc.wantHidden) > 1e-12 {
				t.Errorf("%s: rank %d hidden %v, want %v", tc.name, r, hid.HiddenSeconds, tc.wantHidden)
			}
			// Volume accounting always stays with the primary category.
			if exp.Messages != 1 || exp.Bytes != n || hid.Messages != 0 || hid.Bytes != 0 {
				t.Errorf("%s: rank %d volume misattributed: exposed %+v hidden %+v", tc.name, r, exp, hid)
			}
			// Hidden time overlapped compute, so only the exposed share may
			// reach the rank's critical-path total.
			if got := m.TotalSeconds(); math.Abs(got-exp.CommSeconds) > 1e-12 {
				t.Errorf("%s: rank %d TotalSeconds %v counts hidden time (exposed %v)",
					tc.name, r, got, exp.CommSeconds)
			}
		}
		sum := Summarize(meters)
		if got := sum.CriticalPathSeconds; math.Abs(got-(full-tc.wantHidden)) > 1e-12 {
			t.Errorf("%s: critical path %v, want exposed %v", tc.name, got, full-tc.wantHidden)
		}
		if got := sum.Step("hidden").HiddenSeconds; math.Abs(got-tc.wantHidden) > 1e-12 {
			t.Errorf("%s: summarized hidden %v, want %v", tc.name, got, tc.wantHidden)
		}
	}
}

// TestIbcastPrefetch posts the next broadcast before consuming the current
// one on two independent sub-communicators — the double-buffered schedule
// the pipelined SUMMA runs — and checks both payloads arrive intact.
func TestIbcastPrefetch(t *testing.T) {
	const p = 4
	Run(p, CostModel{}, func(c *Comm) {
		var r0, r1 Payload
		if c.Rank() == 0 {
			r0 = Bytes(10)
		}
		if c.Rank() == 1 {
			r1 = Bytes(20)
		}
		cur := c.IbcastStart(0, r0)
		next := c.IbcastStart(1, r1) // posted before cur is consumed
		if got := cur.Wait().(Bytes); got != 10 {
			t.Errorf("rank %d: stage 0 payload %v, want 10", c.Rank(), got)
		}
		if got := next.Wait().(Bytes); got != 20 {
			t.Errorf("rank %d: stage 1 payload %v, want 20", c.Rank(), got)
		}
	})
}

// TestIbcastDoubleWaitPanics: completing a request twice is a bug in the
// caller's schedule and must not silently double-charge the meter.
func TestIbcastDoubleWaitPanics(t *testing.T) {
	Run(1, CostModel{}, func(c *Comm) {
		req := c.IbcastStart(0, Bytes(1))
		req.Wait()
		defer func() {
			if recover() == nil {
				t.Error("second Wait did not panic")
			}
		}()
		req.Wait()
	})
}
