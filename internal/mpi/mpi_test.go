package mpi

import (
	"strings"
	"sync/atomic"
	"testing"
)

var testCM = CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9}

func TestRunSpawnsAllRanks(t *testing.T) {
	var count int64
	Run(8, testCM, func(c *Comm) {
		atomic.AddInt64(&count, 1)
		if c.Size() != 8 {
			t.Errorf("size=%d", c.Size())
		}
		if c.Rank() < 0 || c.Rank() >= 8 {
			t.Errorf("rank=%d", c.Rank())
		}
	})
	if count != 8 {
		t.Fatalf("ran %d ranks, want 8", count)
	}
}

func TestBcast(t *testing.T) {
	Run(6, testCM, func(c *Comm) {
		for root := 0; root < c.Size(); root++ {
			var msg Payload
			if c.Rank() == root {
				msg = Bytes(100 + root)
			}
			got := c.Bcast(root, msg)
			if got.(Bytes) != Bytes(100+root) {
				t.Errorf("rank %d: bcast from %d got %v", c.Rank(), root, got)
			}
		}
	})
}

func TestBcastMetersEveryRank(t *testing.T) {
	meters := Run(4, testCM, func(c *Comm) {
		c.Meter().SetCategory("A-Broadcast")
		var msg Payload
		if c.Rank() == 0 {
			msg = Bytes(1000)
		}
		c.Bcast(0, msg)
	})
	for r, m := range meters {
		s := m.Step("A-Broadcast")
		if s.Messages != 1 || s.Bytes != 1000 {
			t.Errorf("rank %d: msgs=%d bytes=%d", r, s.Messages, s.Bytes)
		}
		// α·lg(4) + β·1000 = 2e-6 + 1e-6 = 3e-6
		want := 2*1e-6 + 1000*1e-9
		if diff := s.CommSeconds - want; diff > 1e-15 || diff < -1e-15 {
			t.Errorf("rank %d: comm=%v want %v", r, s.CommSeconds, want)
		}
	}
}

func TestAllgather(t *testing.T) {
	Run(5, testCM, func(c *Comm) {
		got := c.Allgather(Bytes(c.Rank() * 10))
		for i, v := range got {
			if v.(Bytes) != Bytes(i*10) {
				t.Errorf("rank %d: allgather[%d]=%v", c.Rank(), i, v)
			}
		}
	})
}

func TestAllToAllv(t *testing.T) {
	Run(4, testCM, func(c *Comm) {
		send := make([]Payload, c.Size())
		for dst := range send {
			send[dst] = Bytes(c.Rank()*100 + dst)
		}
		recv := c.AllToAllv(send)
		for src, v := range recv {
			want := Bytes(src*100 + c.Rank())
			if v.(Bytes) != want {
				t.Errorf("rank %d: recv[%d]=%v, want %v", c.Rank(), src, v, want)
			}
		}
	})
}

func TestAllToAllvNilEntries(t *testing.T) {
	Run(3, testCM, func(c *Comm) {
		send := make([]Payload, c.Size())
		send[(c.Rank()+1)%3] = Bytes(7)
		recv := c.AllToAllv(send)
		for src, v := range recv {
			wantSet := (src+1)%3 == c.Rank()
			if wantSet && v.(Bytes) != 7 {
				t.Errorf("rank %d: missing payload from %d", c.Rank(), src)
			}
			if !wantSet && v != nil {
				t.Errorf("rank %d: unexpected payload from %d", c.Rank(), src)
			}
		}
	})
}

func TestAllreduce(t *testing.T) {
	Run(7, testCM, func(c *Comm) {
		if got := c.AllreduceInt64(int64(c.Rank()), OpSum); got != 21 {
			t.Errorf("sum=%d, want 21", got)
		}
		if got := c.AllreduceInt64(int64(c.Rank()), OpMax); got != 6 {
			t.Errorf("max=%d, want 6", got)
		}
		if got := c.AllreduceInt64(int64(c.Rank()), OpMin); got != 0 {
			t.Errorf("min=%d, want 0", got)
		}
		if got := c.AllreduceFloat64(1.5, OpSum); got != 10.5 {
			t.Errorf("fsum=%v, want 10.5", got)
		}
	})
}

func TestSplitRowsAndCols(t *testing.T) {
	// 6 ranks → 2×3 grid; split by row then by column.
	Run(6, testCM, func(c *Comm) {
		row, col := c.Rank()/3, c.Rank()%3
		rowComm := c.Split(row, col)
		if rowComm.Size() != 3 || rowComm.Rank() != col {
			t.Errorf("rank %d: row comm size=%d rank=%d", c.Rank(), rowComm.Size(), rowComm.Rank())
		}
		colComm := c.Split(10+col, row)
		if colComm.Size() != 2 || colComm.Rank() != row {
			t.Errorf("rank %d: col comm size=%d rank=%d", c.Rank(), colComm.Size(), colComm.Rank())
		}
		// Collectives on the sub-communicators work.
		if got := rowComm.AllreduceInt64(1, OpSum); got != 3 {
			t.Errorf("row allreduce=%d", got)
		}
		var msg Payload
		if colComm.Rank() == 1 {
			msg = Bytes(42)
		}
		if got := colComm.Bcast(1, msg); got.(Bytes) != 42 {
			t.Errorf("col bcast=%v", got)
		}
	})
}

func TestNestedSplit(t *testing.T) {
	Run(8, testCM, func(c *Comm) {
		half := c.Split(c.Rank()/4, c.Rank())
		quarter := half.Split(half.Rank()/2, half.Rank())
		if quarter.Size() != 2 {
			t.Errorf("quarter size=%d", quarter.Size())
		}
		if got := quarter.AllreduceInt64(int64(c.Rank()), OpMin); got != int64(c.Rank()/2*2) {
			t.Errorf("rank %d: quarter min=%d", c.Rank(), got)
		}
	})
}

func TestRepeatedSplitsDistinct(t *testing.T) {
	// Splitting twice with the same colors must yield working communicators
	// each time (generation counter prevents collisions).
	Run(4, testCM, func(c *Comm) {
		for i := 0; i < 3; i++ {
			sub := c.Split(c.Rank()%2, c.Rank())
			if got := sub.AllreduceInt64(1, OpSum); got != 2 {
				t.Fatalf("iteration %d: size=%d", i, got)
			}
		}
	})
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("expected panic")
		}
		if s, ok := e.(string); !ok || !strings.Contains(s, "rank 2 exploded") {
			t.Fatalf("unexpected panic value %v", e)
		}
	}()
	Run(4, testCM, func(c *Comm) {
		if c.Rank() == 2 {
			panic("rank 2 exploded")
		}
		c.Barrier() // other ranks wait here; must be woken, not deadlock
		c.Barrier()
	})
}

func TestMeterCategories(t *testing.T) {
	m := NewMeter()
	m.SetCategory("x")
	m.AddCompute(1.5)
	m.SetCategory("y")
	m.AddCompute(0.5)
	m.AddCommSeconds(0.25)
	if got := m.TotalSeconds(); got != 2.25 {
		t.Errorf("total=%v", got)
	}
	cats := m.Categories()
	if len(cats) != 2 || cats[0] != "x" || cats[1] != "y" {
		t.Errorf("categories=%v", cats)
	}
	m.ScaleCompute(2)
	if got := m.Step("x").ComputeSeconds; got != 3 {
		t.Errorf("scaled x compute=%v", got)
	}
	m.ScaleComm(4)
	if got := m.Step("y").CommSeconds; got != 1 {
		t.Errorf("scaled y comm=%v", got)
	}
}

func TestSummarizeTakesMaxTimes(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	a.SetCategory("s")
	a.AddCompute(1)
	a.AddCommSeconds(0.5)
	b.SetCategory("s")
	b.AddCompute(3)
	sum := Summarize([]*Meter{a, b})
	st := sum.Step("s")
	if st.ComputeSeconds != 3 {
		t.Errorf("max compute=%v, want 3", st.ComputeSeconds)
	}
	if st.CommSeconds != 0.5 {
		t.Errorf("max comm=%v, want 0.5", st.CommSeconds)
	}
	if sum.CriticalPathSeconds != 3 {
		t.Errorf("critical path=%v, want 3", sum.CriticalPathSeconds)
	}
	if got := sum.TotalSeconds(); got != 3.5 {
		t.Errorf("TotalSeconds=%v", got)
	}
}

func TestCostModelFormulas(t *testing.T) {
	cm := CostModel{AlphaSec: 2, BetaSecPerByte: 3}
	if got := cm.BcastCost(1, 100); got != 0 {
		t.Errorf("single-rank bcast cost %v", got)
	}
	if got := cm.BcastCost(8, 10); got != 2*3+3*10 {
		t.Errorf("bcast cost %v", got)
	}
	if got := cm.AllToAllCost(4, 10); got != 2*3+3*10 {
		t.Errorf("alltoall cost %v", got)
	}
	// Non-power-of-two uses ceil(log2).
	if got := cm.BcastCost(5, 0); got != 2*3 {
		t.Errorf("bcast lg(5) cost %v", got)
	}
}

func TestTimedCharges(t *testing.T) {
	m := NewMeter()
	m.SetCategory("work")
	m.Timed(func() {
		s := 0
		for i := 0; i < 1000; i++ {
			s += i
		}
		_ = s
	})
	if m.Step("work").ComputeSeconds <= 0 {
		t.Error("Timed charged nothing")
	}
}

func TestBigWorld(t *testing.T) {
	// Stress: 256 ranks doing collective rounds must not deadlock.
	meters := Run(256, testCM, func(c *Comm) {
		sub := c.Split(c.Rank()%16, c.Rank())
		for i := 0; i < 3; i++ {
			sub.AllreduceInt64(1, OpSum)
			c.Barrier()
		}
	})
	if len(meters) != 256 {
		t.Fatalf("got %d meters", len(meters))
	}
}

func TestWorldAtScale(t *testing.T) {
	// 4096 ranks — the largest simulated process count the experiments use
	// (fig7 at -scale large). Collectives across splits must stay correct
	// and deadlock-free at this size.
	if testing.Short() {
		t.Skip("4096-rank world is slow in -short mode")
	}
	const p = 4096
	meters := Run(p, testCM, func(c *Comm) {
		// 16 layers of 16x16.
		layer := c.Split(c.Rank()/256, c.Rank()%256)
		if layer.Size() != 256 {
			t.Errorf("layer size=%d", layer.Size())
		}
		if got := layer.AllreduceInt64(1, OpSum); got != 256 {
			t.Errorf("layer allreduce=%d", got)
		}
		fiber := c.Split(c.Rank()%256, c.Rank()/256)
		if fiber.Size() != 16 {
			t.Errorf("fiber size=%d", fiber.Size())
		}
		send := make([]Payload, fiber.Size())
		for i := range send {
			send[i] = Bytes(fiber.Rank())
		}
		recv := fiber.AllToAllv(send)
		for src, v := range recv {
			if v.(Bytes) != Bytes(src) {
				t.Errorf("fiber alltoall wrong from %d", src)
			}
		}
	})
	if len(meters) != p {
		t.Fatalf("got %d meters", len(meters))
	}
}
