// Package mpi is an in-process stand-in for the message-passing runtime the
// paper runs on. Every rank is a goroutine; communicators support the
// collectives the SUMMA algorithms need (Barrier, Bcast, Allgather,
// AllToAllv, Allreduce) plus MPI_Comm_split-style sub-communicators for
// process rows, columns, layers, and fibers.
//
// Data really moves between ranks (receivers observe the sender's payload),
// so the distributed algorithms are exercised end to end. Because the
// transport is shared memory, the wall-clock of a collective is meaningless
// for the paper's scale; instead every collective *meters* itself: it records
// the bytes on the wire and charges an α–β modeled time (latency/bandwidth
// constants supplied by the caller) to each participating rank. The paper's
// own communication analysis (Table II) is in the same α–β model.
//
// # Metering
//
// Each rank owns a Meter that accumulates, per caller-chosen category (the
// paper's step names), modeled communication seconds, exact payload bytes
// and message counts, and measured compute seconds. MeasureCompute is a
// global single-token gate: the rank holding it computes effectively alone
// on the host, so its wall time is clean even with hundreds of rank
// goroutines; intra-rank worker threads run inside the token. Summarize
// aggregates per-rank meters into the critical-path numbers the paper plots
// (per-step maxima over ranks, work-smoothed compute).
//
// # Non-blocking collectives
//
// IbcastStart/BcastRequest.Wait split a broadcast into a post and a
// completion, and IalltoallvStart/AllToAllvRequest.Wait do the same for the
// personalized exchange — the building blocks of the fully-overlapped SUMMA
// schedule. The payload exchange happens eagerly at post time, but the
// modeled cost is charged at wait time — to the category current at the
// wait, with WaitOverlap optionally diverting the share that hid behind
// intervening compute into a separate "hidden" category. A post immediately
// followed by Wait meters identically to the blocking collective.
//
// IbcastColsStart is the sparse form of the broadcast: receivers declare the
// wire size of the column subset they will actually read, and the collective
// switches — consistently across the communicator — between point-to-point
// subset sends and the full tree broadcast, whichever models cheaper.
//
// A request that is posted but never completed silently drops its modeled
// cost from the meters; Run audits a per-rank pending counter (shared across
// Split-derived communicators) after the ranks stop and panics on a
// forgotten Wait.
//
// # Buffer pool ownership
//
// Each Comm handle carries a per-rank free pool (request structs, AllToAllv
// receive slices, wire byte buffers from GetBuf) so steady-state send loops
// allocate nothing. The rules: pooled objects are owned by exactly one
// rank's goroutine and never shared; a request pointer dies the moment its
// Wait/WaitOverlap returns (the struct is recycled — do not retain it); a
// receive slice or GetBuf buffer belongs to the caller until it is returned
// with PutRecv/PutBuf, and returning it is optional — dropping it merely
// costs an allocation on the next call. Payload contents are never pooled:
// they remain shared read-only objects owned by the sender.
//
// All collectives (posts included) are bulk-synchronous and must be called
// by every rank of a communicator in the same order.
package mpi
