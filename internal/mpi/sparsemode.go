package mpi

import "fmt"

// SparseMode selects how A-blocks travel in the SUMMA stages: as full-block
// tree broadcasts (off), as point-to-point column subsets whenever the cost
// model says they win (auto), or as subsets unconditionally (on). The zero
// value is SparseOff so that configurations which never mention the knob
// keep the historical full-broadcast wire format bit-for-bit.
type SparseMode int

// Sparse communication modes.
const (
	// SparseOff ships full blocks; metering is byte-identical to releases
	// that predate the column-subset path.
	SparseOff SparseMode = iota
	// SparseAuto lets each row-communicator stage pick subsets or the full
	// broadcast, whichever the α–β model prices cheaper.
	SparseAuto
	// SparseOn forces the subset exchange on every stage (diagnostics and
	// differential tests; auto is the production setting).
	SparseOn
)

// String returns the knob spelling: off, auto, or on.
func (m SparseMode) String() string {
	switch m {
	case SparseOff:
		return "off"
	case SparseAuto:
		return "auto"
	case SparseOn:
		return "on"
	}
	return fmt.Sprintf("SparseMode(%d)", int(m))
}

// ParseSparseMode parses the command-line spelling of a SparseMode.
func ParseSparseMode(s string) (SparseMode, error) {
	switch s {
	case "off", "":
		return SparseOff, nil
	case "auto":
		return SparseAuto, nil
	case "on":
		return SparseOn, nil
	}
	return SparseOff, fmt.Errorf("mpi: unknown sparse-comm mode %q (want off, auto, or on)", s)
}
