package mpi

// This file implements the split (non-blocking) broadcast the pipelined SUMMA
// schedule needs: IbcastStart posts the collective and performs the data
// movement, Wait/WaitOverlap complete it and charge the meter. The split
// mirrors MPI_Ibcast/MPI_Wait with the metering convention real codes
// observe: the time an Ibcast costs the caller is the time spent *waiting*
// for it, not the time spent posting it. Nothing is charged at post time;
// the modeled α–β cost is charged when the request is completed, to whatever
// category the meter points at then.
//
// Because the simulated transport is shared memory, the payload exchange
// itself completes eagerly inside IbcastStart (MPI implementations are free
// to progress a nonblocking collective at any point between post and wait).
// The barriers that order the exchange therefore run at post time, which is
// what lets a pipelined caller post stage s+1, compute stage s, and then
// complete stage s+1 without any rank blocking inside another rank's compute
// section.

// BcastRequest is an in-flight non-blocking broadcast posted with
// IbcastStart or IbcastColsStart. Exactly one of Wait or WaitOverlap must be
// called, by the same rank goroutine that posted it; the pointer is recycled
// into the communicator's pool when the wait returns and must not be
// retained after that.
type BcastRequest struct {
	c       *Comm
	meter   *Meter
	payload Payload
	bytes   int64
	cost    float64
	subset  bool
	done    bool
}

// Subset reports whether the broadcast shipped column subsets instead of the
// full payload (always false for IbcastStart; see IbcastColsStart).
func (r *BcastRequest) Subset() bool { return r.subset }

// IbcastStart posts a broadcast of root's payload without charging the
// meter. All ranks of the communicator must post collectively and in the
// same order (as with every collective here); the returned request holds the
// broadcast payload and its modeled cost until Wait or WaitOverlap claims
// them.
func (c *Comm) IbcastStart(root int, msg Payload) *BcastRequest {
	if root < 0 || root >= c.size {
		panic("mpi: IbcastStart root out of range")
	}
	if c.rank == root {
		c.core.slots[root] = msg
	}
	c.Barrier()
	out, _ := c.core.slots[root].(Payload)
	c.Barrier()
	var n int64
	if out != nil {
		n = out.CommBytes()
	}
	r := c.getBcastReq()
	*r = BcastRequest{
		c:       c,
		meter:   c.meter,
		payload: out,
		bytes:   n,
		cost:    c.cost.BcastCost(c.size, n),
	}
	c.addPending()
	return r
}

// IbcastColsStart posts the sparse variant of IbcastStart: every receiver
// declares, through subsetBytes, the wire size of the column subset of the
// payload its local computation actually touches, and the collective decides
// — consistently on every rank — whether shipping the subsets point-to-point
// beats the tree broadcast of the full block.
//
// subsetBytes is called (away from the root) with the staged full payload, so
// a receiver can size its subset against the sender's real column occupancy;
// it corresponds to the root evaluating the receiver's pre-exchanged column
// list, which the caller obtained from its symbolic pass. The sizes are
// shared through an extra barrier pair so root and receivers agree on the
// decision and on the totals.
//
// When the subsets win (or force is set), the root is charged like a
// personalized send of the summed subset bytes — α·(size−1) + β·Σ — and each
// receiver like one point-to-point receive of its own subset, α + β·bytes.
// Otherwise the request is charged exactly like IbcastStart, byte-for-byte,
// so a caller that gates the feature off meters identically to the plain
// path. As with IbcastStart, nothing is charged until Wait/WaitOverlap, and
// the payload every rank gets back is the shared full-block reference —
// receivers read only the columns they declared, which is what makes the
// subset exchange a pure metering (and, on a real network, volume) change.
func (c *Comm) IbcastColsStart(root int, msg Payload, subsetBytes func(full Payload) int64, force bool) *BcastRequest {
	if root < 0 || root >= c.size {
		panic("mpi: IbcastColsStart root out of range")
	}
	if c.rank == root {
		c.core.slots[root] = msg
	}
	c.Barrier()
	out, _ := c.core.slots[root].(Payload)
	var nFull int64
	if out != nil {
		nFull = out.CommBytes()
	}
	mine := nFull
	if c.rank != root && subsetBytes != nil {
		mine = subsetBytes(out)
	}
	c.core.i64buf[c.rank] = mine
	c.Barrier()
	var sum, maxRecv int64
	for r := 0; r < c.size; r++ {
		if r == root {
			continue
		}
		n := c.core.i64buf[r]
		sum += n
		if n > maxRecv {
			maxRecv = n
		}
	}
	c.Barrier()

	fullCost := c.cost.BcastCost(c.size, nFull)
	rootCost := c.cost.AllToAllCost(c.size, sum)
	recvCost := c.cost.AlphaSec + c.cost.BetaSecPerByte*float64(maxRecv)
	subset := c.size > 1 && (force || maxf(rootCost, recvCost) < fullCost)

	r := c.getBcastReq()
	*r = BcastRequest{c: c, meter: c.meter, payload: out, subset: subset}
	switch {
	case !subset:
		r.bytes, r.cost = nFull, fullCost
	case c.rank == root:
		r.bytes, r.cost = sum, rootCost
	default:
		r.bytes = mine
		r.cost = c.cost.AlphaSec + c.cost.BetaSecPerByte*float64(mine)
	}
	c.addPending()
	return r
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Wait completes the request: the full modeled cost and the payload bytes
// are charged to the meter's current category — the wait-time attribution —
// and the broadcast payload is returned. A Bcast and an IbcastStart
// immediately followed by Wait meter identically.
func (r *BcastRequest) Wait() Payload {
	p, _ := r.WaitOverlap(0, "")
	return p
}

// WaitOverlap completes the request like Wait but treats up to credit
// seconds of the modeled cost as hidden behind work the rank performed
// between post and wait: the hidden share is charged to hiddenCat's
// HiddenSeconds — kept out of exposed comm and critical-path totals, since
// it ran concurrently with compute that is already counted there — while
// messages and bytes always stay with the primary category so volume
// accounting is mode-independent. Only the exposed remainder is charged to
// the meter's current category. It returns the payload and the credit
// actually consumed, so a caller completing several requests against one
// compute window can drain a shared credit pool.
func (r *BcastRequest) WaitOverlap(credit float64, hiddenCat string) (Payload, float64) {
	if r.done {
		panic("mpi: BcastRequest completed twice")
	}
	r.done = true
	used := completeOverlap(r.meter, r.bytes, r.cost, credit, hiddenCat)
	p := r.payload
	if r.c != nil {
		r.c.completePending()
		r.c.putBcastReq(r)
	}
	return p, used
}

// completeOverlap is the shared wait-time charge of the split collectives
// (BcastRequest, AllToAllvRequest): up to credit seconds of the modeled cost
// are hidden behind hiddenCat's HiddenSeconds, the exposed remainder is
// charged to the meter's current category, and the message/byte volume always
// stays with the current category so accounting is mode-independent. Returns
// the credit actually consumed.
func completeOverlap(m *Meter, bytes int64, cost, credit float64, hiddenCat string) float64 {
	hidden := credit
	if hidden > cost {
		hidden = cost
	}
	if hidden < 0 {
		hidden = 0
	}
	m.addComm(1, bytes, cost-hidden)
	if hidden > 0 && hiddenCat != "" {
		// addHidden also records the hidden span as the most recent one, which
		// is what lets the overlap ledger's claim site tag it with a channel.
		m.addHidden(hiddenCat, hidden)
	}
	return hidden
}
