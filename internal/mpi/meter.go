package mpi

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// computeGate serializes timed kernel execution across the ranks of one
// Run. Without it, hundreds of goroutine ranks time-share a few host cores
// and every measured kernel time is inflated by scheduler contention, which
// would destroy the strong-scaling shapes (per-rank compute must shrink as p
// grows). Capacity is deliberately 1, not NumCPU: while one rank computes,
// every other rank of its world is parked (in a barrier or on this gate), so
// the token holder is effectively alone on the machine and its wall time is
// clean. Queue wait is excluded from the measured time. The per-thread CPU
// clock would be the ideal measurement, but its resolution is the scheduler
// tick (10 ms on typical VMs) — far too coarse for microsecond kernels.
//
// The gate is deliberately per-world, not package-global: a long-running
// service executes independent multiply jobs concurrently, and a shared
// token would falsely serialize unrelated jobs against each other (and make
// one job's measured times depend on another job's schedule). Each Run
// creates its own gate; Split children share their world's.
type computeGate chan struct{}

func newComputeGate() computeGate { return make(computeGate, 1) }

func (g computeGate) measure(fn func()) float64 {
	g <- struct{}{}
	defer func() { <-g }()
	t0 := time.Now()
	fn()
	return time.Since(t0).Seconds()
}

// standaloneGate serves the package-level MeasureCompute, for callers timing
// kernels outside any Run (benchmarks, host-side reference multiplies).
var standaloneGate = newComputeGate()

// MeasureCompute runs fn while holding the process-wide standalone compute
// token and returns fn's wall time (excluding the wait for the token). fn
// must not perform collectives: a rank blocked in a barrier while holding
// the token would starve the ranks it is waiting for. Code running inside a
// Run must use Comm.MeasureCompute instead, which holds the run's own token
// so concurrent Runs (independent service jobs) never serialize against
// each other.
func MeasureCompute(fn func()) float64 {
	return standaloneGate.measure(fn)
}

// Meter accumulates, per rank, the communication volume and modeled time of
// collectives plus measured local-compute time, broken down by caller-chosen
// category (the paper's step names: "A-Broadcast", "Local-Multiply", ...).
// A Meter belongs to one rank's goroutine and is not thread-safe.
type Meter struct {
	cat   string
	stats map[string]*StepStats
	// rec, when non-nil, receives one obs span per charge, recorded with the
	// exact value each accumulator was incremented by (the trace↔meter
	// identity). The nil recorder's methods are no-ops, so every charge path
	// calls it unconditionally with zero extra allocations when tracing is
	// off.
	rec *obs.RankRecorder
}

// StepStats is the per-category accumulation.
type StepStats struct {
	// Messages and Bytes count the collectives this rank participated in and
	// the payload bytes attributed to it.
	Messages int64
	Bytes    int64
	// CommSeconds is the α–β modeled communication time this rank was
	// exposed to (blocked on).
	CommSeconds float64
	// HiddenSeconds is modeled communication time that overlapped with
	// measured compute (a pipelined schedule's BcastRequest.WaitOverlap
	// credit). It is excluded from Total and from critical-path sums —
	// hidden time is by definition concurrent with compute already counted
	// there — but kept per category so overlap stays auditable.
	HiddenSeconds float64
	// ComputeSeconds is measured wall time of local computation.
	ComputeSeconds float64
	// WorkUnits counts the abstract work (flops for multiplies, nonzeros
	// for merges) behind ComputeSeconds. Summarize uses it to smooth
	// per-rank times: individual wall measurements of microsecond kernels
	// carry scheduler/GC outliers, so the aggregated per-rank compute time
	// is work × (globally measured seconds-per-work), which preserves real
	// load imbalance while suppressing measurement noise.
	WorkUnits int64
}

// Total returns exposed modeled comm plus measured compute seconds (hidden
// comm excluded; it overlapped the compute counted here).
func (s *StepStats) Total() float64 { return s.CommSeconds + s.ComputeSeconds }

func (s *StepStats) add(o *StepStats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.CommSeconds += o.CommSeconds
	s.HiddenSeconds += o.HiddenSeconds
	s.ComputeSeconds += o.ComputeSeconds
}

// NewMeter returns an empty meter with the category set to "default".
func NewMeter() *Meter {
	return &Meter{cat: "default", stats: make(map[string]*StepStats)}
}

// SetRecorder attaches a per-rank span recorder (nil detaches, turning
// tracing off). RunTraced calls this for every rank's meter.
func (m *Meter) SetRecorder(r *obs.RankRecorder) { m.rec = r }

// Recorder returns the attached span recorder. It is nil when tracing is
// off; the nil recorder's methods are no-ops, so callers (schedule label and
// channel-tag sites) use the result unconditionally.
func (m *Meter) Recorder() *obs.RankRecorder { return m.rec }

// SetCategory directs subsequent charges to the named step.
func (m *Meter) SetCategory(cat string) { m.cat = cat }

// Category returns the current step name.
func (m *Meter) Category() string { return m.cat }

func (m *Meter) get(cat string) *StepStats {
	s, ok := m.stats[cat]
	if !ok {
		s = &StepStats{}
		m.stats[cat] = s
	}
	return s
}

func (m *Meter) addComm(msgs, bytes int64, seconds float64) {
	s := m.get(m.cat)
	s.Messages += msgs
	s.Bytes += bytes
	s.CommSeconds += seconds
	m.rec.Record(m.cat, obs.KindComm, seconds, msgs, bytes, 0)
}

// addHidden charges modeled communication time that overlapped with compute
// to cat's HiddenSeconds (the split collectives' WaitOverlap attribution)
// and records the matching hidden span.
func (m *Meter) addHidden(cat string, seconds float64) {
	m.get(cat).HiddenSeconds += seconds
	m.rec.Record(cat, obs.KindHidden, seconds, 0, 0, 0)
}

// AddCompute charges measured compute seconds to the current category.
func (m *Meter) AddCompute(seconds float64) {
	m.get(m.cat).ComputeSeconds += seconds
	m.rec.Record(m.cat, obs.KindCompute, seconds, 0, 0, 0)
}

// AddComputeWork charges measured compute seconds together with the abstract
// work units behind them (see StepStats.WorkUnits).
func (m *Meter) AddComputeWork(seconds float64, work int64) {
	s := m.get(m.cat)
	s.ComputeSeconds += seconds
	s.WorkUnits += work
	m.rec.Record(m.cat, obs.KindCompute, seconds, 0, 0, work)
}

// AddCommSeconds charges extra modeled communication time to the current
// category (used for machine-model adjustments such as hyper-threading).
func (m *Meter) AddCommSeconds(seconds float64) {
	m.get(m.cat).CommSeconds += seconds
	m.rec.Record(m.cat, obs.KindComm, seconds, 0, 0, 0)
}

// Timed runs fn, charging its wall time as compute to the current category.
func (m *Meter) Timed(fn func()) {
	t0 := time.Now()
	fn()
	m.AddCompute(time.Since(t0).Seconds())
}

// Step returns the stats accumulated for one category (zero stats if never
// charged).
func (m *Meter) Step(cat string) StepStats {
	if s, ok := m.stats[cat]; ok {
		return *s
	}
	return StepStats{}
}

// Categories returns the step names charged so far, sorted.
func (m *Meter) Categories() []string {
	out := make([]string, 0, len(m.stats))
	for k := range m.stats {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TotalSeconds returns this rank's critical-path contribution: the sum over
// all categories of modeled comm plus measured compute.
func (m *Meter) TotalSeconds() float64 {
	var t float64
	for _, s := range m.stats {
		t += s.Total()
	}
	return t
}

// Scale multiplies every accumulated time (comm and compute) by f. Used by
// machine models that translate host-measured compute into target-machine
// compute.
func (m *Meter) Scale(f float64) {
	for _, s := range m.stats {
		s.CommSeconds *= f
		s.HiddenSeconds *= f
		s.ComputeSeconds *= f
	}
	m.rec.Scale(f)
}

// ScaleCompute multiplies only measured compute times by f.
func (m *Meter) ScaleCompute(f float64) {
	for _, s := range m.stats {
		s.ComputeSeconds *= f
	}
	m.rec.ScaleCompute(f)
}

// ScaleComm multiplies only modeled communication times by f.
func (m *Meter) ScaleComm(f float64) {
	for _, s := range m.stats {
		s.CommSeconds *= f
		s.HiddenSeconds *= f
	}
	m.rec.ScaleComm(f)
}

// Summary aggregates the meters of all ranks into the numbers the paper
// plots: per step, the maximum over ranks (critical path) of comm and compute
// time, and the total bytes moved.
type Summary struct {
	// Steps maps category → aggregated stats where times are max-over-ranks
	// and Bytes/Messages are summed over ranks.
	Steps map[string]*StepStats
	// CriticalPathSeconds is max over ranks of the per-rank total.
	CriticalPathSeconds float64
	// Ranks is the number of meters aggregated.
	Ranks int
}

// Summarize combines per-rank meters into a Summary.
//
// Compute smoothing: for every category that carries work units, the
// measured rate is computed globally (Σ seconds / Σ work over all ranks, so
// per-call scheduler and GC outliers amortize away) and each rank's compute
// time is re-attributed as its own work × that rate. The per-step maximum
// then reflects genuine load imbalance rather than which rank happened to be
// preempted. Categories without work units use raw measured maxima.
func Summarize(meters []*Meter) *Summary {
	sum := &Summary{Steps: make(map[string]*StepStats), Ranks: len(meters)}
	// Pass 1: global totals per category.
	type totals struct {
		sec  float64
		work int64
	}
	global := map[string]*totals{}
	for _, m := range meters {
		for cat, s := range m.stats {
			g, ok := global[cat]
			if !ok {
				g = &totals{}
				global[cat] = g
			}
			g.sec += s.ComputeSeconds
			g.work += s.WorkUnits
		}
	}
	smoothed := func(cat string, s *StepStats) float64 {
		g := global[cat]
		if g.work <= 0 || s.WorkUnits <= 0 {
			return s.ComputeSeconds
		}
		return float64(s.WorkUnits) * g.sec / float64(g.work)
	}
	// Pass 2: aggregate with smoothing.
	for _, m := range meters {
		var rankTotal float64
		for cat, s := range m.stats {
			agg, ok := sum.Steps[cat]
			if !ok {
				agg = &StepStats{}
				sum.Steps[cat] = agg
			}
			agg.Messages += s.Messages
			agg.Bytes += s.Bytes
			agg.WorkUnits += s.WorkUnits
			if s.CommSeconds > agg.CommSeconds {
				agg.CommSeconds = s.CommSeconds
			}
			if s.HiddenSeconds > agg.HiddenSeconds {
				agg.HiddenSeconds = s.HiddenSeconds
			}
			sc := smoothed(cat, s)
			if sc > agg.ComputeSeconds {
				agg.ComputeSeconds = sc
			}
			rankTotal += s.CommSeconds + sc
		}
		if rankTotal > sum.CriticalPathSeconds {
			sum.CriticalPathSeconds = rankTotal
		}
	}
	return sum
}

// Step returns the aggregated stats for one category.
func (s *Summary) Step(cat string) StepStats {
	if st, ok := s.Steps[cat]; ok {
		return *st
	}
	return StepStats{}
}

// Categories returns the aggregated step names, sorted.
func (s *Summary) Categories() []string {
	out := make([]string, 0, len(s.Steps))
	for k := range s.Steps {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TotalCommSeconds sums the per-step max comm times.
func (s *Summary) TotalCommSeconds() float64 {
	var t float64
	for _, st := range s.Steps {
		t += st.CommSeconds
	}
	return t
}

// TotalComputeSeconds sums the per-step max compute times.
func (s *Summary) TotalComputeSeconds() float64 {
	var t float64
	for _, st := range s.Steps {
		t += st.ComputeSeconds
	}
	return t
}

// TotalSeconds sums per-step totals (the height of one stacked bar in the
// paper's figures).
func (s *Summary) TotalSeconds() float64 {
	return s.TotalCommSeconds() + s.TotalComputeSeconds()
}
