package mpi

import (
	"math"
	"testing"
)

// TestShiftRouting: every rank must receive exactly the payload posted by
// rank (rank+offset) mod size, for positive, negative, and wrapping offsets.
func TestShiftRouting(t *testing.T) {
	cm := CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9}
	for _, offset := range []int{1, -1, 3, -5, 8, 0} {
		Run(8, cm, func(c *Comm) {
			got := c.Shift(offset, Bytes(100+c.Rank()))
			want := ((c.Rank()+offset)%8 + 8) % 8
			if int(got.(Bytes)) != 100+want {
				t.Errorf("offset %d rank %d: got payload of rank %d, want %d",
					offset, c.Rank(), int(got.(Bytes))-100, want)
			}
		})
	}
}

// TestShiftCost: a shift must charge one point-to-point receive, α + β·n of
// the *received* payload, to the meter's current category; an offset that is
// a multiple of the size must cost nothing.
func TestShiftCost(t *testing.T) {
	cm := CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9}
	meters := Run(4, cm, func(c *Comm) {
		c.Meter().SetCategory("shift")
		c.Shift(1, Bytes(1000*(c.Rank()+1)))
	})
	for r, m := range meters {
		recv := int64(1000 * ((r+1)%4 + 1))
		want := cm.ShiftCost(4, recv)
		st := m.Step("shift")
		if math.Abs(st.CommSeconds-want) > 1e-15 {
			t.Errorf("rank %d: comm %.12g, want %.12g", r, st.CommSeconds, want)
		}
		if st.Bytes != recv || st.Messages != 1 {
			t.Errorf("rank %d: bytes %d msgs %d, want %d and 1", r, st.Bytes, st.Messages, recv)
		}
	}

	meters = Run(4, cm, func(c *Comm) {
		c.Meter().SetCategory("noop")
		c.Shift(4, Bytes(500))
	})
	for r, m := range meters {
		if st := m.Step("noop"); st.CommSeconds != 0 || st.Bytes != 0 {
			t.Errorf("rank %d: self-shift charged %v s %d B", r, st.CommSeconds, st.Bytes)
		}
	}
}

// TestIshiftOverlap: the split shift must charge only the exposed remainder
// to the current category and park the hidden share in the hidden category,
// exactly like Ibcast.
func TestIshiftOverlap(t *testing.T) {
	cm := CostModel{AlphaSec: 0, BetaSecPerByte: 1e-9}
	n := int64(4000)
	cost := cm.ShiftCost(4, n)
	credit := cost / 2
	meters := Run(4, cm, func(c *Comm) {
		req := c.IshiftStart(1, Bytes(n))
		c.Meter().SetCategory("exposed")
		_, used := req.WaitOverlap(credit, "hidden")
		if math.Abs(used-credit) > 1e-18 {
			t.Errorf("rank %d: used %.12g of credit %.12g", c.Rank(), used, credit)
		}
	})
	for r, m := range meters {
		if got := m.Step("exposed").CommSeconds; math.Abs(got-(cost-credit)) > 1e-18 {
			t.Errorf("rank %d: exposed %.12g, want %.12g", r, got, cost-credit)
		}
		if got := m.Step("hidden").HiddenSeconds; math.Abs(got-credit) > 1e-18 {
			t.Errorf("rank %d: hidden %.12g, want %.12g", r, got, credit)
		}
		if m.Step("exposed").Bytes != n {
			t.Errorf("rank %d: bytes must stay with the primary category", r)
		}
	}
}

// TestShiftLeakAudit: a posted but never-completed shift must trip the
// leaked-request audit at Run teardown.
func TestShiftLeakAudit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("leaked IshiftStart did not panic at Run teardown")
		}
	}()
	Run(2, CostModel{}, func(c *Comm) {
		c.IshiftStart(1, Bytes(8))
	})
}
