package mpi

import (
	"testing"

	"repro/internal/obs"
)

// TestTracingDisabledAddsZeroAllocations: with no recorder attached (the
// default — Run passes a nil *obs.Recorder), every metering charge path must
// allocate nothing. The nil *obs.RankRecorder's methods are no-ops, so
// tracing costs literally one nil check per charge when off.
func TestTracingDisabledAddsZeroAllocations(t *testing.T) {
	m := NewMeter()
	m.SetCategory("steady")
	// Warm the category map so steady-state charges hit existing entries.
	m.addComm(1, 100, 1e-6)
	m.AddCompute(1e-6)
	m.AddComputeWork(1e-6, 10)
	m.AddCommSeconds(1e-6)
	m.addHidden("steady", 1e-6)
	if got := testing.AllocsPerRun(100, func() {
		m.addComm(1, 100, 1e-6)
		m.AddCompute(1e-6)
		m.AddComputeWork(1e-6, 10)
		m.AddCommSeconds(1e-6)
		m.addHidden("steady", 1e-6)
	}); got != 0 {
		t.Errorf("metering charges with tracing off allocated %v times per run, want 0", got)
	}
}

// TestTracedChargesRecordExactValues: every charge path records one span
// carrying exactly the value the accumulator was incremented by.
func TestTracedChargesRecordExactValues(t *testing.T) {
	rec := obs.NewRecorder(1)
	m := NewMeter()
	m.SetRecorder(rec.Rank(0))
	m.SetCategory("mult")
	m.addComm(3, 700, 0.25)
	m.AddComputeWork(0.5, 42)
	m.addHidden("mult", 0.125)

	spans := rec.Rank(0).Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	comm, comp, hid := spans[0], spans[1], spans[2]
	if comm.Kind != obs.KindComm || comm.Dur != 0.25 || comm.Msgs != 3 || comm.Bytes != 700 {
		t.Errorf("comm span %+v", comm)
	}
	if comp.Kind != obs.KindCompute || comp.Dur != 0.5 || comp.Work != 42 {
		t.Errorf("compute span %+v", comp)
	}
	if hid.Kind != obs.KindHidden || hid.Dur != 0.125 {
		t.Errorf("hidden span %+v", hid)
	}
	// Replay the additions: the per-category sums must equal the meter's.
	st := m.Step("mult")
	if st.CommSeconds != comm.Dur || st.ComputeSeconds != comp.Dur ||
		st.HiddenSeconds != hid.Dur || st.WorkUnits != comp.Work {
		t.Errorf("meter %+v does not match spans", st)
	}
}

// TestRunTracedAttachesPerRankRecorders: RunTraced gives each rank its own
// recorder, and collective charges land as spans on the right rank.
func TestRunTracedAttachesPerRankRecorders(t *testing.T) {
	const p = 4
	rec := obs.NewRecorder(p)
	RunTraced(p, CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9}, rec, func(c *Comm) {
		c.Meter().SetCategory("bcast")
		c.Bcast(0, Bytes(4096))
	})
	for r := 0; r < p; r++ {
		spans := rec.Rank(r).Spans()
		if len(spans) == 0 {
			t.Errorf("rank %d recorded no spans", r)
			continue
		}
		for _, sp := range spans {
			if sp.Rank != r {
				t.Errorf("rank %d holds a span stamped rank %d", r, sp.Rank)
			}
			if sp.Cat != "bcast" {
				t.Errorf("rank %d span category %q", r, sp.Cat)
			}
		}
	}
}

// BenchmarkTraceOverheadOff measures the steady-state charge path with
// tracing off — the default every simulation runs. BenchmarkTraceOverheadOn
// is the same sequence with a recorder attached; the delta is the tracing
// tax, reported in CI as BENCH_obs.json.
func BenchmarkTraceOverheadOff(b *testing.B) {
	m := NewMeter()
	m.SetCategory("steady")
	m.addComm(1, 100, 1e-6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.addComm(1, 100, 1e-6)
		m.AddComputeWork(1e-6, 10)
		m.addHidden("steady", 1e-6)
	}
}

func BenchmarkTraceOverheadOn(b *testing.B) {
	m := NewMeter()
	m.SetCategory("steady")
	m.addComm(1, 100, 1e-6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A real run records thousands of spans per rank, not millions;
		// start a fresh recorder periodically so the measured cost reflects
		// a realistic trace length's append amortization, not the growth
		// copies of one unbounded slice.
		if i%8192 == 0 {
			m.SetRecorder(obs.NewRecorder(1).Rank(0))
		}
		m.addComm(1, 100, 1e-6)
		m.AddComputeWork(1e-6, 10)
		m.addHidden("steady", 1e-6)
	}
}
