package mpi

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Payload is anything that knows its wire size; matrices implement it via
// CommBytes. Payload contents are shared between sender and receivers, so
// receivers must treat them as read-only or clone.
type Payload interface {
	CommBytes() int64
}

// Bytes adapts a raw byte count to Payload for non-matrix messages.
type Bytes int64

// CommBytes returns the wrapped size.
func (b Bytes) CommBytes() int64 { return int64(b) }

// CostModel supplies the α–β constants used to charge modeled time.
type CostModel struct {
	// AlphaSec is the per-message latency in seconds.
	AlphaSec float64
	// BetaSecPerByte is the inverse bandwidth in seconds per byte.
	BetaSecPerByte float64
}

// lg2 returns ceil(log2(q)) for q ≥ 1.
func lg2(q int) float64 {
	n, v := 0, 1
	for v < q {
		v <<= 1
		n++
	}
	return float64(n)
}

// BcastCost models a bandwidth-optimal broadcast of n bytes among q ranks:
// α·lg q latency plus β·n bandwidth, the form used in the paper's Table II.
func (cm CostModel) BcastCost(q int, n int64) float64 {
	if q <= 1 {
		return 0
	}
	return cm.AlphaSec*lg2(q) + cm.BetaSecPerByte*float64(n)
}

// AllToAllCost models a personalized all-to-all among q ranks where the
// calling rank sends n bytes in total: α·(q−1) + β·n.
func (cm CostModel) AllToAllCost(q int, n int64) float64 {
	if q <= 1 {
		return 0
	}
	return cm.AlphaSec*float64(q-1) + cm.BetaSecPerByte*float64(n)
}

// AllreduceCost models an allreduce of n bytes among q ranks.
func (cm CostModel) AllreduceCost(q int, n int64) float64 {
	if q <= 1 {
		return 0
	}
	return cm.AlphaSec*lg2(q) + cm.BetaSecPerByte*float64(n)*lg2(q)
}

// barrier is a reusable (cyclic) barrier with failure propagation: when any
// rank panics, waiting ranks are woken and panic too instead of deadlocking.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    uint64
	failed bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failed {
		panic(errAborted)
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.failed {
		b.cond.Wait()
	}
	if b.failed {
		panic(errAborted)
	}
}

func (b *barrier) fail() {
	b.mu.Lock()
	b.failed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// errAborted is the sentinel re-panicked on ranks that were waiting when a
// peer failed; Run filters it out so the original failure surfaces.
var errAborted = fmt.Errorf("mpi: aborted because another rank failed")

// commCore is the state shared by all ranks of one communicator.
type commCore struct {
	size  int
	bar   *barrier
	slots []any // one per rank: Bcast/Allgather/Split staging
	// matrix is the size×size AllToAllv staging area, row-major
	// [src*size+dst]. It is allocated lazily (matrixOnce) because large
	// world communicators never perform an AllToAll — only the small fiber
	// communicators do — and an eager p² allocation would dominate memory
	// at high simulated rank counts.
	matrix     []any
	matrixOnce sync.Once
	i64buf     []int64
	f64buf     []float64
	childMu    sync.Mutex
	childs     map[splitKey]*commCore
}

type splitKey struct {
	gen   uint64
	color int
}

func newCommCore(size int) *commCore {
	return &commCore{
		size:   size,
		bar:    newBarrier(size),
		slots:  make([]any, size),
		i64buf: make([]int64, size),
		f64buf: make([]float64, size),
		childs: make(map[splitKey]*commCore),
	}
}

// ensureMatrix allocates the AllToAllv staging area on first use. All ranks
// reach AllToAllv collectively, and sync.Once publishes the slice safely.
func (c *commCore) ensureMatrix() {
	c.matrixOnce.Do(func() {
		c.matrix = make([]any, c.size*c.size)
	})
}

// Comm is one rank's handle on a communicator.
type Comm struct {
	rank  int
	size  int
	core  *commCore
	cost  CostModel
	meter *Meter
	// splitGen counts Split calls so concurrent epochs of the deterministic
	// child-core map never collide. All ranks call Split in the same order,
	// so their counters agree.
	splitGen uint64
	// pending counts this rank's posted-but-uncompleted split-collective
	// requests. It is shared with every communicator derived via Split (a
	// request leaked on a child drops modeled cost from the same meter) and
	// audited by Run after the ranks stop.
	pending *int64
	// pool recycles request structs, receive slices, and wire buffers; one
	// per Comm handle, touched only by the owning rank's goroutine.
	pool *commPool
	// gate is the per-world compute-measurement token (see meter.go). All
	// communicators derived from one Run share their world's gate, so timed
	// kernels serialize within a run without coupling concurrent runs.
	gate computeGate
}

// MeasureCompute runs fn while holding this run's compute token and returns
// fn's wall time (excluding the wait for the token). fn must not perform
// collectives: a rank blocked in a barrier while holding the token would
// starve the ranks it is waiting for. The token is scoped to the world this
// communicator descends from, so concurrent Runs never serialize against
// each other and one run's measured times do not depend on another's
// schedule.
func (c *Comm) MeasureCompute(fn func()) float64 {
	return c.gate.measure(fn)
}

// Rank returns this rank's id within the communicator (0-based).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size }

// Meter returns the per-rank meter charged by every collective.
func (c *Comm) Meter() *Meter { return c.meter }

// Barrier blocks until every rank of the communicator has entered it.
func (c *Comm) Barrier() { c.core.bar.await() }

// Bcast broadcasts root's payload to every rank and returns it. All ranks
// (including root) receive the same object; treat it as read-only. The
// modeled cost α·lg(size) + β·bytes is charged to every rank.
func (c *Comm) Bcast(root int, msg Payload) Payload {
	if root < 0 || root >= c.size {
		panic(fmt.Sprintf("mpi: Bcast root %d out of range [0,%d)", root, c.size))
	}
	if c.rank == root {
		c.core.slots[root] = msg
	}
	c.Barrier()
	out := c.core.slots[root].(Payload)
	c.Barrier()
	var n int64
	if out != nil {
		n = out.CommBytes()
	}
	c.meter.addComm(1, n, c.cost.BcastCost(c.size, n))
	return out
}

// Allgather collects one payload from every rank; the result is indexed by
// rank and shared by all ranks (read-only).
func (c *Comm) Allgather(msg Payload) []Payload {
	c.core.slots[c.rank] = msg
	c.Barrier()
	out := make([]Payload, c.size)
	var total int64
	for i := range out {
		out[i] = c.core.slots[i].(Payload)
		if out[i] != nil {
			total += out[i].CommBytes()
		}
	}
	c.Barrier()
	// Model as a bandwidth-optimal allgather: α·lg q + β·(total received).
	c.meter.addComm(1, total, c.cost.AllreduceCost(c.size, 0)+c.cost.BetaSecPerByte*float64(total))
	return out
}

// AllToAllv performs a personalized exchange: send[i] goes to rank i, and the
// returned slice holds what every rank sent to this rank (indexed by source).
// It is exactly the split exchange completed immediately — one copy of the
// data movement and cost logic, shared with the overlapped schedule.
func (c *Comm) AllToAllv(send []Payload) []Payload {
	return c.IalltoallvStart(send).Wait()
}

// ReduceOp is a binary reduction operator.
type ReduceOp int

// Reduction operators for Allreduce.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

// AllreduceInt64 reduces one int64 per rank with op and returns the result on
// every rank.
func (c *Comm) AllreduceInt64(v int64, op ReduceOp) int64 {
	c.core.i64buf[c.rank] = v
	c.Barrier()
	out := c.core.i64buf[0]
	for _, x := range c.core.i64buf[1:c.size] {
		switch op {
		case OpSum:
			out += x
		case OpMax:
			if x > out {
				out = x
			}
		case OpMin:
			if x < out {
				out = x
			}
		}
	}
	c.Barrier()
	c.meter.addComm(1, 8, c.cost.AllreduceCost(c.size, 8))
	return out
}

// AllreduceFloat64 reduces one float64 per rank with op.
func (c *Comm) AllreduceFloat64(v float64, op ReduceOp) float64 {
	c.core.f64buf[c.rank] = v
	c.Barrier()
	out := c.core.f64buf[0]
	for _, x := range c.core.f64buf[1:c.size] {
		switch op {
		case OpSum:
			out += x
		case OpMax:
			if x > out {
				out = x
			}
		case OpMin:
			if x < out {
				out = x
			}
		}
	}
	c.Barrier()
	c.meter.addComm(1, 8, c.cost.AllreduceCost(c.size, 8))
	return out
}

// Split partitions the communicator like MPI_Comm_split: ranks passing the
// same color form a new communicator, ordered by (key, parent rank). Every
// rank must call Split. The child shares this rank's meter and cost model.
func (c *Comm) Split(color, key int) *Comm {
	gen := c.splitGen
	c.splitGen++
	// Stage everyone's (color, key) in the Bcast slots; collectives are
	// bulk-synchronous, so no other use of slots can be in flight.
	c.core.slots[c.rank] = [2]int{color, key}
	c.Barrier()
	type member struct{ rank, key int }
	var members []member
	for r := 0; r < c.size; r++ {
		ck := c.core.slots[r].([2]int)
		if ck[0] == color {
			members = append(members, member{rank: r, key: ck[1]})
		}
	}
	// Deterministic ordering by (key, rank).
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && (members[j].key < members[j-1].key ||
			(members[j].key == members[j-1].key && members[j].rank < members[j-1].rank)); j-- {
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	myIdx := -1
	for i, m := range members {
		if m.rank == c.rank {
			myIdx = i
		}
	}
	k := splitKey{gen: gen, color: color}
	c.core.childMu.Lock()
	core, ok := c.core.childs[k]
	if !ok {
		core = newCommCore(len(members))
		c.core.childs[k] = core
	}
	c.core.childMu.Unlock()
	c.Barrier() // staging area reusable afterwards
	return &Comm{
		rank: myIdx, size: len(members), core: core, cost: c.cost, meter: c.meter,
		pending: c.pending, pool: &commPool{}, gate: c.gate,
	}
}

// Run executes fn on p ranks of a fresh world communicator sharing the given
// cost model, and returns each rank's meter. If any rank panics, Run panics
// with the first failure after all ranks have stopped.
func Run(p int, cm CostModel, fn func(c *Comm)) []*Meter {
	return RunTraced(p, cm, nil, fn)
}

// RunTraced is Run with a span recorder attached: when rec is non-nil, every
// rank's meter records one obs span per metered interval (rec.Rank(r) feeds
// rank r), exportable afterwards as a Chrome/Perfetto trace. A nil rec is
// exactly Run — tracing off, zero extra allocations on the charge paths.
func RunTraced(p int, cm CostModel, rec *obs.Recorder, fn func(c *Comm)) []*Meter {
	if p <= 0 {
		panic(fmt.Sprintf("mpi: Run with %d ranks", p))
	}
	core := newCommCore(p)
	meters := make([]*Meter, p)
	errs := make([]any, p)
	pendings := make([]int64, p)
	gate := newComputeGate()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		meters[r] = NewMeter()
		meters[r].SetRecorder(rec.Rank(r))
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					errs[r] = e
					core.bar.fail()
				}
			}()
			fn(&Comm{
				rank: r, size: p, core: core, cost: cm, meter: meters[r],
				pending: &pendings[r], pool: &commPool{}, gate: gate,
			})
		}(r)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil && e != errAborted {
			panic(e)
		}
	}
	for _, e := range errs {
		if e != nil {
			panic(e)
		}
	}
	// No rank failed: audit the split-collective requests. A request posted
	// but never completed silently dropped its modeled cost from the meters,
	// which is a bug in the caller's schedule — fail loudly instead of
	// returning quietly wrong numbers.
	for r := range pendings {
		if pendings[r] != 0 {
			panic(fmt.Sprintf("mpi: rank %d leaked %d uncompleted request(s): a posted Ibcast/Ialltoallv was never Waited", r, pendings[r]))
		}
	}
	return meters
}
