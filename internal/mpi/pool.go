package mpi

// commPool is the per-communicator, per-rank free pool behind the split
// collectives: completed request structs, AllToAllv receive slices, and wire
// byte buffers are recycled here so a steady-state communication loop — the
// batched SUMMA schedule posts and completes the same collectives once per
// stage per batch — performs zero heap allocations per send once warm.
//
// Ownership rules (see also doc.go): a pool belongs to exactly one rank's
// Comm handle and is only touched from that rank's goroutine, so no locking
// is needed. Objects handed out by the pool belong to the caller until they
// are explicitly returned (PutBuf, PutRecv) or implicitly returned by
// completing a request (Wait/WaitOverlap recycle the request struct itself —
// a request pointer is dead the moment its Wait returns and must not be
// retained).
type commPool struct {
	bcast []*BcastRequest
	a2a   []*AllToAllvRequest
	recv  [][]Payload
	bufs  [][]byte
}

// poolCap bounds each free list so a one-off burst of concurrent requests
// does not pin memory forever.
const poolCap = 16

func (c *Comm) getBcastReq() *BcastRequest {
	if p := c.pool; p != nil {
		if n := len(p.bcast); n > 0 {
			r := p.bcast[n-1]
			p.bcast = p.bcast[:n-1]
			*r = BcastRequest{}
			return r
		}
	}
	return &BcastRequest{}
}

func (c *Comm) putBcastReq(r *BcastRequest) {
	if p := c.pool; p != nil && len(p.bcast) < poolCap {
		p.bcast = append(p.bcast, r)
	}
}

func (c *Comm) getA2AReq() *AllToAllvRequest {
	if p := c.pool; p != nil {
		if n := len(p.a2a); n > 0 {
			r := p.a2a[n-1]
			p.a2a = p.a2a[:n-1]
			*r = AllToAllvRequest{}
			return r
		}
	}
	return &AllToAllvRequest{}
}

func (c *Comm) putA2AReq(r *AllToAllvRequest) {
	if p := c.pool; p != nil && len(p.a2a) < poolCap {
		p.a2a = append(p.a2a, r)
	}
}

func (c *Comm) getRecv() []Payload {
	if p := c.pool; p != nil {
		if n := len(p.recv); n > 0 {
			s := p.recv[n-1]
			p.recv = p.recv[:n-1]
			if cap(s) >= c.size {
				s = s[:c.size]
				for i := range s {
					s[i] = nil
				}
				return s
			}
		}
	}
	return make([]Payload, c.size)
}

// PutRecv returns a receive slice obtained from an AllToAllv(-Start) on this
// communicator to the pool. Optional: callers that keep the slice simply let
// it go to the garbage collector; callers in a steady-state loop return it
// after consuming the payloads to make the next exchange allocation-free.
// The payload references themselves are shared objects and are not affected.
func (c *Comm) PutRecv(s []Payload) {
	if p := c.pool; p != nil && s != nil && len(p.recv) < poolCap {
		for i := range s {
			s[i] = nil
		}
		p.recv = append(p.recv, s)
	}
}

// GetBuf returns a byte buffer with capacity for at least n bytes, reusing a
// pooled one when a large enough buffer is available. The buffer has length n
// and is NOT zeroed; it belongs to the caller until PutBuf.
func (c *Comm) GetBuf(n int64) []byte {
	if p := c.pool; p != nil {
		for i := len(p.bufs) - 1; i >= 0; i-- {
			if int64(cap(p.bufs[i])) >= n {
				b := p.bufs[i]
				p.bufs[i] = p.bufs[len(p.bufs)-1]
				p.bufs = p.bufs[:len(p.bufs)-1]
				return b[:n]
			}
		}
	}
	return make([]byte, n)
}

// PutBuf returns a buffer obtained from GetBuf to the pool.
func (c *Comm) PutBuf(b []byte) {
	if p := c.pool; p != nil && b != nil && len(p.bufs) < poolCap {
		p.bufs = append(p.bufs, b)
	}
}

// addPending records a posted split-collective request; completePending
// retires it. The counter is shared by every communicator a rank derives via
// Split, and Run audits it after the ranks stop: a request that was posted
// but never completed silently drops its modeled cost from the meters, so a
// forgotten Wait is a metering bug, not a leak to shrug at.
func (c *Comm) addPending() {
	if c.pending != nil {
		*c.pending++
	}
}

func (c *Comm) completePending() {
	if c.pending != nil {
		*c.pending--
	}
}
