package mpi

import "fmt"

// This file implements the split (non-blocking) personalized exchange the
// overlapped fiber schedule needs: IalltoallvStart posts the collective and
// performs the data movement, Wait/WaitOverlap complete it and charge the
// meter. It mirrors ibcast.go exactly: nothing is charged at post time, the
// modeled α–β cost is charged when the request is completed, to whatever
// category the meter points at then, and the payload exchange itself
// completes eagerly inside the post (the simulated transport is shared
// memory, and MPI implementations are free to progress a nonblocking
// collective at any point between post and wait). The barriers that order
// the exchange therefore run at post time, which is what lets a caller post
// the exchange, run local merge work, and then complete the exchange without
// any rank blocking inside another rank's compute section.

// AllToAllvRequest is an in-flight non-blocking personalized exchange posted
// with IalltoallvStart. Exactly one of Wait or WaitOverlap must be called, by
// the same rank goroutine that posted it; the pointer is recycled into the
// communicator's pool when the wait returns and must not be retained after
// that. (The receive slice handed back by the wait is the caller's — return
// it with PutRecv to keep a steady-state loop allocation-free.)
type AllToAllvRequest struct {
	c     *Comm
	meter *Meter
	recv  []Payload
	bytes int64
	cost  float64
	done  bool
}

// IalltoallvStart posts a personalized exchange — send[i] goes to rank i —
// without charging the meter. All ranks of the communicator must post
// collectively; nil entries carry nothing (the self slot is typically nil
// when the caller keeps its own piece local). The returned request holds the
// received payloads (indexed by source rank) and the modeled cost until Wait
// or WaitOverlap claims them.
func (c *Comm) IalltoallvStart(send []Payload) *AllToAllvRequest {
	if len(send) != c.size {
		panic(fmt.Sprintf("mpi: IalltoallvStart got %d payloads for %d ranks", len(send), c.size))
	}
	c.core.ensureMatrix()
	base := c.rank * c.size
	for dst, m := range send {
		c.core.matrix[base+dst] = m
	}
	c.Barrier()
	recv := c.getRecv()
	for src := 0; src < c.size; src++ {
		v := c.core.matrix[src*c.size+c.rank]
		if v != nil {
			recv[src] = v.(Payload)
		}
	}
	c.Barrier()
	var sent int64
	for dst, m := range send {
		if m != nil && dst != c.rank {
			sent += m.CommBytes()
		}
	}
	r := c.getA2AReq()
	*r = AllToAllvRequest{
		c:     c,
		meter: c.meter,
		recv:  recv,
		bytes: sent,
		cost:  c.cost.AllToAllCost(c.size, sent),
	}
	c.addPending()
	return r
}

// Wait completes the request: the full modeled cost and the payload bytes are
// charged to the meter's current category and the received payloads are
// returned (indexed by source rank, nil where nothing was sent). An AllToAllv
// and an IalltoallvStart immediately followed by Wait meter identically.
func (r *AllToAllvRequest) Wait() []Payload {
	p, _ := r.WaitOverlap(0, "")
	return p
}

// WaitOverlap completes the request like Wait but treats up to credit seconds
// of the modeled cost as hidden behind work the rank performed between post
// and wait, with the same attribution rules as BcastRequest.WaitOverlap: the
// hidden share goes to hiddenCat's HiddenSeconds, messages and bytes always
// stay with the primary category, and only the exposed remainder is charged
// there. It returns the payloads and the credit actually consumed.
func (r *AllToAllvRequest) WaitOverlap(credit float64, hiddenCat string) ([]Payload, float64) {
	if r.done {
		panic("mpi: AllToAllvRequest completed twice")
	}
	r.done = true
	used := completeOverlap(r.meter, r.bytes, r.cost, credit, hiddenCat)
	recv := r.recv
	if r.c != nil {
		r.c.completePending()
		r.c.putA2AReq(r)
	}
	return recv, used
}
