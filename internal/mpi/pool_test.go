package mpi

import (
	"strings"
	"testing"
)

var poolCM = CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9}

// TestRunPanicsOnLeakedRequest: a request posted but never completed drops
// its modeled cost from the meters, so the teardown audit in Run must fail
// the run (and with it the race workout) instead of returning quietly wrong
// numbers.
func TestRunPanicsOnLeakedRequest(t *testing.T) {
	for _, tc := range []struct {
		name string
		body func(c *Comm)
	}{
		{"ibcast", func(c *Comm) {
			var msg Payload
			if c.Rank() == 0 {
				msg = Bytes(128)
			}
			c.IbcastStart(0, msg) // no Wait
		}},
		{"ibcastcols", func(c *Comm) {
			var msg Payload
			if c.Rank() == 0 {
				msg = Bytes(128)
			}
			c.IbcastColsStart(0, msg, func(Payload) int64 { return 16 }, false) // no Wait
		}},
		{"ialltoallv", func(c *Comm) {
			send := make([]Payload, c.Size())
			for i := range send {
				send[i] = Bytes(8)
			}
			c.IalltoallvStart(send) // no Wait
		}},
		{"split-child", func(c *Comm) {
			sub := c.Split(c.Rank()%2, c.Rank())
			var msg Payload
			if sub.Rank() == 0 {
				msg = Bytes(64)
			}
			sub.IbcastStart(0, msg) // no Wait, on a derived communicator
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				e := recover()
				if e == nil {
					t.Fatal("Run returned despite a leaked request")
				}
				msg, ok := e.(string)
				if !ok || !strings.Contains(msg, "leaked") {
					panic(e) // not the audit: re-raise
				}
			}()
			Run(4, poolCM, tc.body)
		})
	}
}

// TestRunCleanWithCompletedRequests: the audit must stay silent when every
// posted request is completed, including requests posted on Split children.
func TestRunCleanWithCompletedRequests(t *testing.T) {
	Run(4, poolCM, func(c *Comm) {
		var msg Payload
		if c.Rank() == 1 {
			msg = Bytes(256)
		}
		c.IbcastStart(1, msg).Wait()
		sub := c.Split(c.Rank()/2, c.Rank())
		var m2 Payload
		if sub.Rank() == 0 {
			m2 = Bytes(32)
		}
		sub.IbcastColsStart(0, m2, func(Payload) int64 { return 8 }, true).Wait()
	})
}

// TestSteadyStateSendsDoNotAllocate: once the per-communicator pool is warm,
// a post/wait cycle — the per-send inner loop of the batched SUMMA schedule —
// must perform zero heap allocations on every rank.
func TestSteadyStateSendsDoNotAllocate(t *testing.T) {
	Run(4, poolCM, func(c *Comm) {
		var msg Payload
		if c.Rank() == 0 {
			msg = Bytes(4096)
		}
		sub := func(Payload) int64 { return 64 } // hoisted: per-send closures would allocate
		send := make([]Payload, c.Size())
		for i := range send {
			if i != c.Rank() {
				send[i] = Bytes(100 + int64(i))
			}
		}

		// Warm up each pooled path once.
		c.IbcastStart(0, msg).Wait()
		c.IbcastColsStart(0, msg, sub, false).Wait()
		c.PutRecv(c.IalltoallvStart(send).Wait())

		for _, tc := range []struct {
			name string
			fn   func()
		}{
			{"ibcast", func() { c.IbcastStart(0, msg).Wait() }},
			{"ibcastcols", func() { c.IbcastColsStart(0, msg, sub, false).Wait() }},
			{"ialltoallv", func() { c.PutRecv(c.IalltoallvStart(send).Wait()) }},
		} {
			if a := testing.AllocsPerRun(20, tc.fn); a != 0 {
				t.Errorf("rank %d: %s post/wait allocates %.1f per send, want 0", c.Rank(), tc.name, a)
			}
		}
	})
}

// TestGetBufReuses: the wire-buffer pool must hand a returned buffer back out
// instead of allocating, and never hand out a too-small one.
func TestGetBufReuses(t *testing.T) {
	Run(2, poolCM, func(c *Comm) {
		b := c.GetBuf(1024)
		if len(b) != 1024 {
			t.Fatalf("GetBuf length %d, want 1024", len(b))
		}
		c.PutBuf(b)
		b2 := c.GetBuf(512)
		if &b2[0] != &b[0] {
			t.Error("GetBuf allocated although a pooled buffer fits")
		}
		if len(b2) != 512 {
			t.Errorf("GetBuf length %d, want 512", len(b2))
		}
		c.PutBuf(b2)
		big := c.GetBuf(4096)
		if len(big) != 4096 {
			t.Errorf("GetBuf length %d, want 4096", len(big))
		}
	})
}

// TestIbcastColsMetering pins the sparse broadcast's charging rules: with
// small subsets the root meters like a personalized send of the summed
// subsets and each receiver like one point-to-point receive; with subsets as
// large as the block the collective must fall back and meter byte-identically
// to IbcastStart.
func TestIbcastColsMetering(t *testing.T) {
	cm := CostModel{AlphaSec: 1e-5, BetaSecPerByte: 1e-8}
	const p, root = 4, 1
	full := int64(100000)
	subsets := []int64{0, 10, 20, 30} // indexed by rank; root's entry unused

	run := func(sub func(c *Comm) func(Payload) int64) []*Meter {
		return Run(p, cm, func(c *Comm) {
			c.Meter().SetCategory("step")
			var msg Payload
			if c.Rank() == root {
				msg = Bytes(full)
			}
			c.IbcastColsStart(root, msg, sub(c), false).Wait()
		})
	}

	small := run(func(c *Comm) func(Payload) int64 {
		return func(Payload) int64 { return subsets[c.Rank()] }
	})
	var sum int64
	for r, n := range subsets {
		if r != root {
			sum += n
		}
	}
	for r, m := range small {
		st := m.Step("step")
		wantBytes := subsets[r]
		wantCost := cm.AlphaSec + cm.BetaSecPerByte*float64(subsets[r])
		if r == root {
			wantBytes = sum
			wantCost = cm.AllToAllCost(p, sum)
		}
		if st.Bytes != wantBytes || st.CommSeconds != wantCost || st.Messages != 1 {
			t.Errorf("rank %d: subset path metered %+v, want bytes=%d cost=%g", r, st, wantBytes, wantCost)
		}
	}

	dense := run(func(c *Comm) func(Payload) int64 {
		return func(Payload) int64 { return full } // subsets as big as the block
	})
	plain := Run(p, cm, func(c *Comm) {
		c.Meter().SetCategory("step")
		var msg Payload
		if c.Rank() == root {
			msg = Bytes(full)
		}
		c.IbcastStart(root, msg).Wait()
	})
	for r := range dense {
		if dense[r].Step("step") != plain[r].Step("step") {
			t.Errorf("rank %d: dense fallback metered %+v, IbcastStart %+v", r, dense[r].Step("step"), plain[r].Step("step"))
		}
	}
}

// TestIbcastColsDeliversFullPayload: whatever the decision, every rank gets
// the shared full-block reference back.
func TestIbcastColsDeliversFullPayload(t *testing.T) {
	Run(4, poolCM, func(c *Comm) {
		for _, force := range []bool{false, true} {
			var msg Payload
			if c.Rank() == 3 {
				msg = Bytes(777)
			}
			req := c.IbcastColsStart(3, msg, func(Payload) int64 { return 1 }, force)
			if force && !req.Subset() {
				t.Errorf("rank %d: forced subset not taken", c.Rank())
			}
			if got := req.Wait(); got.(Bytes) != 777 {
				t.Errorf("rank %d: got %v, want 777", c.Rank(), got)
			}
		}
	})
}
