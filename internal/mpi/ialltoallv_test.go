package mpi

import (
	"math"
	"testing"
)

// TestIalltoallvDeliversPayloads: the split exchange must move every payload
// to its destination exactly like the blocking AllToAllv, with nil slots
// (e.g. the self slot a caller keeps local) arriving as nil.
func TestIalltoallvDeliversPayloads(t *testing.T) {
	const p = 4
	Run(p, CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9}, func(c *Comm) {
		send := make([]Payload, p)
		for dst := 0; dst < p; dst++ {
			if dst == c.Rank() {
				continue // self piece stays local
			}
			send[dst] = Bytes(100*c.Rank() + dst)
		}
		recv := c.IalltoallvStart(send).Wait()
		for src := 0; src < p; src++ {
			if src == c.Rank() {
				if recv[src] != nil {
					t.Errorf("rank %d: self slot delivered %v, want nil", c.Rank(), recv[src])
				}
				continue
			}
			want := Bytes(100*src + c.Rank())
			if got := recv[src].(Bytes); got != want {
				t.Errorf("rank %d: from %d got %v, want %v", c.Rank(), src, got, want)
			}
		}
	})
}

// TestIalltoallvWaitMetersLikeBlocking: an IalltoallvStart immediately
// followed by Wait must charge messages, exchanged-byte totals, and modeled
// seconds identically to the blocking AllToAllv, and the charge must land on
// the category current at *wait* time — the wait-time attribution the staged
// schedule relies on to stay byte-identical.
func TestIalltoallvWaitMetersLikeBlocking(t *testing.T) {
	cm := CostModel{AlphaSec: 3e-6, BetaSecPerByte: 2e-9}
	const p = 4
	run := func(split bool) []*Meter {
		return Run(p, cm, func(c *Comm) {
			send := make([]Payload, p)
			for dst := 0; dst < p; dst++ {
				send[dst] = Bytes(1000 + 10*c.Rank() + dst)
			}
			if split {
				c.Meter().SetCategory("posted-under") // must NOT be charged
				req := c.IalltoallvStart(send)
				c.Meter().SetCategory("step")
				req.Wait()
			} else {
				c.Meter().SetCategory("step")
				c.AllToAllv(send)
			}
		})
	}
	blocking, nonblocking := run(false), run(true)
	for r := range blocking {
		want, got := blocking[r].Step("step"), nonblocking[r].Step("step")
		if want != got {
			t.Errorf("rank %d: Ialltoallv+Wait metered %+v, AllToAllv %+v", r, got, want)
		}
		if post := nonblocking[r].Step("posted-under"); post != (StepStats{}) {
			t.Errorf("rank %d: post-time category charged: %+v", r, post)
		}
	}
	// Aggregated totals match too (exchanged-byte totals are summed).
	ws, gs := Summarize(blocking), Summarize(nonblocking)
	if ws.Step("step").Bytes != gs.Step("step").Bytes || ws.Step("step").Messages != gs.Step("step").Messages {
		t.Errorf("summarized volume differs: blocking %+v, split %+v", ws.Step("step"), gs.Step("step"))
	}
}

// TestIalltoallvWaitOverlapSplitsCost: credit moves modeled cost into the
// hidden category without changing the total or the volume accounting, which
// always stays with the primary category.
func TestIalltoallvWaitOverlapSplitsCost(t *testing.T) {
	cm := CostModel{AlphaSec: 1e-3, BetaSecPerByte: 1e-6}
	const p = 4
	perRank := int64(500)
	full := cm.AllToAllCost(p, (p-1)*perRank)
	for _, tc := range []struct {
		name       string
		credit     float64
		wantHidden float64
	}{
		{"no credit", 0, 0},
		{"partial credit", full / 2, full / 2},
		{"surplus credit", 2 * full, full},
		{"negative credit", -1, 0},
	} {
		meters := Run(p, cm, func(c *Comm) {
			send := make([]Payload, p)
			for dst := 0; dst < p; dst++ {
				if dst != c.Rank() {
					send[dst] = Bytes(perRank)
				}
			}
			req := c.IalltoallvStart(send)
			c.Meter().SetCategory("exposed")
			_, used := req.WaitOverlap(tc.credit, "hidden")
			if math.Abs(used-tc.wantHidden) > 1e-12 {
				t.Errorf("%s: rank %d consumed credit %v, want %v", tc.name, c.Rank(), used, tc.wantHidden)
			}
		})
		for r, m := range meters {
			exp, hid := m.Step("exposed"), m.Step("hidden")
			if math.Abs(exp.CommSeconds+hid.HiddenSeconds-full) > 1e-12 {
				t.Errorf("%s: rank %d exposed %v + hidden %v != cost %v",
					tc.name, r, exp.CommSeconds, hid.HiddenSeconds, full)
			}
			if math.Abs(hid.HiddenSeconds-tc.wantHidden) > 1e-12 {
				t.Errorf("%s: rank %d hidden %v, want %v", tc.name, r, hid.HiddenSeconds, tc.wantHidden)
			}
			if exp.Messages != 1 || exp.Bytes != (p-1)*perRank || hid.Messages != 0 || hid.Bytes != 0 {
				t.Errorf("%s: rank %d volume misattributed: exposed %+v hidden %+v", tc.name, r, exp, hid)
			}
			// Only the exposed share may reach the critical-path total.
			if got := m.TotalSeconds(); math.Abs(got-exp.CommSeconds) > 1e-12 {
				t.Errorf("%s: rank %d TotalSeconds %v counts hidden time", tc.name, r, got)
			}
		}
	}
}

// TestIalltoallvDoubleWaitPanics: completing a request twice is a schedule
// bug and must not silently double-charge the meter.
func TestIalltoallvDoubleWaitPanics(t *testing.T) {
	Run(1, CostModel{}, func(c *Comm) {
		req := c.IalltoallvStart([]Payload{Bytes(1)})
		req.Wait()
		defer func() {
			if recover() == nil {
				t.Error("second Wait did not panic")
			}
		}()
		req.Wait()
	})
}

// TestIalltoallvPostedBeforeWaitOfOther: two split collectives on the same
// communicator may be outstanding in posting order — the overlapped fiber
// schedule posts batch t's exchange while batch t+1's broadcasts are already
// pending on other communicators; here both are exercised on one comm.
func TestIalltoallvPostedAfterIbcast(t *testing.T) {
	const p = 3
	Run(p, CostModel{}, func(c *Comm) {
		var msg Payload
		if c.Rank() == 0 {
			msg = Bytes(7)
		}
		bc := c.IbcastStart(0, msg)
		send := make([]Payload, p)
		for dst := 0; dst < p; dst++ {
			send[dst] = Bytes(int64(10 + dst))
		}
		ex := c.IalltoallvStart(send)
		if got := bc.Wait().(Bytes); got != 7 {
			t.Errorf("rank %d: bcast payload %v", c.Rank(), got)
		}
		recv := ex.Wait()
		for src := 0; src < p; src++ {
			if got := recv[src].(Bytes); got != Bytes(10+c.Rank()) {
				t.Errorf("rank %d: from %d got %v", c.Rank(), src, got)
			}
		}
	})
}
