package mpi

import (
	"math"
	"testing"
)

func TestAddComputeWorkAccumulates(t *testing.T) {
	m := NewMeter()
	m.SetCategory("k")
	m.AddComputeWork(0.5, 100)
	m.AddComputeWork(0.25, 50)
	s := m.Step("k")
	if s.ComputeSeconds != 0.75 {
		t.Errorf("seconds=%v", s.ComputeSeconds)
	}
	if s.WorkUnits != 150 {
		t.Errorf("work=%d", s.WorkUnits)
	}
}

func TestSummarizeSmoothsOutliers(t *testing.T) {
	// Three ranks with identical work; one measurement is polluted by a
	// large outlier. Smoothing must attribute equal compute to all ranks.
	meters := make([]*Meter, 3)
	for i := range meters {
		meters[i] = NewMeter()
		meters[i].SetCategory("mult")
		sec := 0.010
		if i == 1 {
			sec = 0.500 // preempted rank
		}
		meters[i].AddComputeWork(sec, 1000)
	}
	sum := Summarize(meters)
	got := sum.Step("mult").ComputeSeconds
	// Global rate = 0.52/3000; per-rank smoothed = 0.52/3.
	want := 0.52 / 3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("smoothed max=%v, want %v", got, want)
	}
}

func TestSummarizePreservesImbalance(t *testing.T) {
	// Rank 1 does 4x the work; smoothing must preserve the 4x ratio even if
	// its raw measurement was noisy.
	a, b := NewMeter(), NewMeter()
	a.SetCategory("mult")
	a.AddComputeWork(0.01, 100)
	b.SetCategory("mult")
	b.AddComputeWork(0.01, 400) // same measured time, 4x work
	sum := Summarize([]*Meter{a, b})
	rate := 0.02 / 500
	want := 400 * rate
	if got := sum.Step("mult").ComputeSeconds; math.Abs(got-want) > 1e-12 {
		t.Errorf("max compute=%v, want %v (the 4x-work rank)", got, want)
	}
}

func TestSummarizeNoWorkFallsBackToRaw(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	a.SetCategory("x")
	a.AddCompute(0.1)
	b.SetCategory("x")
	b.AddCompute(0.4)
	sum := Summarize([]*Meter{a, b})
	if got := sum.Step("x").ComputeSeconds; got != 0.4 {
		t.Errorf("raw max=%v, want 0.4", got)
	}
}

func TestSummarizeCriticalPathUsesSmoothedTimes(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	a.SetCategory("mult")
	a.AddComputeWork(1.0, 100) // outlier measurement, normal work
	a.AddCommSeconds(0.1)
	b.SetCategory("mult")
	b.AddComputeWork(0.01, 100)
	b.AddCommSeconds(0.2)
	sum := Summarize([]*Meter{a, b})
	// Smoothed compute per rank = (1.01/200)*100 = 0.505.
	// Rank totals: a = 0.505+0.1, b = 0.505+0.2 → critical path 0.705.
	if math.Abs(sum.CriticalPathSeconds-0.705) > 1e-9 {
		t.Errorf("critical path=%v, want 0.705", sum.CriticalPathSeconds)
	}
}

func TestMeasureComputeReturnsPositive(t *testing.T) {
	sec := MeasureCompute(func() {
		s := 0.0
		for i := 0; i < 100000; i++ {
			s += float64(i)
		}
		_ = s
	})
	if sec <= 0 {
		t.Error("MeasureCompute returned nonpositive time")
	}
}

func TestMeasureComputeConcurrent(t *testing.T) {
	// Many goroutines racing the gate must all complete and measure > 0.
	done := make(chan float64, 32)
	for i := 0; i < 32; i++ {
		go func() {
			done <- MeasureCompute(func() {
				s := 0
				for j := 0; j < 10000; j++ {
					s += j
				}
				_ = s
			})
		}()
	}
	for i := 0; i < 32; i++ {
		if sec := <-done; sec < 0 {
			t.Error("negative measurement")
		}
	}
}
