package mpi

// This file implements the cyclic shift the 1.5D sparse×dense schedules
// need: every rank of a communicator posts one payload and receives the
// payload posted by the rank offset positions ahead of it. It is the
// MPI_Sendrecv ring pattern of Koanantakool et al.'s 1.5D algorithms — each
// round, the moving operand's blocks rotate one position around the ring —
// expressed as a collective because the simulated transport is
// bulk-synchronous. The split form (IshiftStart/Wait) mirrors Ibcast: the
// payload exchange completes eagerly at post time, and the modeled cost is
// charged when the request is completed, so a pipelined schedule can post
// round r+1's shift, multiply round r, and hide the exchange behind the
// multiply through WaitOverlap.

// ShiftCost models one ring-shift round for a rank of a q-rank ring: a
// single point-to-point receive of n bytes, α + β·n. A shift is a
// permutation — every rank sends and receives exactly one message — so
// unlike a broadcast there is no lg q tree depth.
func (cm CostModel) ShiftCost(q int, n int64) float64 {
	if q <= 1 {
		return 0
	}
	return cm.AlphaSec + cm.BetaSecPerByte*float64(n)
}

// Shift performs the cyclic permutation immediately: the returned payload is
// the one posted by rank (rank+offset) mod size. Offset may be negative or
// exceed the size; offset ≡ 0 (mod size) returns msg itself at zero cost.
// Like every collective, all ranks must call it together, and the payload is
// shared — receivers treat it as read-only.
func (c *Comm) Shift(offset int, msg Payload) Payload {
	return c.IshiftStart(offset, msg).Wait()
}

// IshiftStart posts a shift without charging the meter. The returned request
// holds the received payload and its modeled cost until Wait or WaitOverlap
// claims them; it is a BcastRequest so the two split collectives share one
// completion and pooling path.
func (c *Comm) IshiftStart(offset int, msg Payload) *BcastRequest {
	src := ((c.rank+offset)%c.size + c.size) % c.size
	if src == c.rank {
		// Self-shift: no data moves. Still a request so callers complete it
		// uniformly, but at zero cost and zero bytes.
		r := c.getBcastReq()
		*r = BcastRequest{c: c, meter: c.meter, payload: msg}
		c.addPending()
		return r
	}
	c.core.slots[c.rank] = msg
	c.Barrier()
	out, _ := c.core.slots[src].(Payload)
	c.Barrier()
	var n int64
	if out != nil {
		n = out.CommBytes()
	}
	r := c.getBcastReq()
	*r = BcastRequest{
		c:       c,
		meter:   c.meter,
		payload: out,
		bytes:   n,
		cost:    c.cost.ShiftCost(c.size, n),
	}
	c.addPending()
	return r
}
