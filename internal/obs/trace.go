package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// traceEvent is one Chrome trace-event object. Ts/Dur are microseconds (the
// format's unit); fractional values are allowed and we use them, since
// modeled comm costs are routinely sub-microsecond at tiny scales.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the JSON-object form of the trace-event format ("traceEvents"
// plus top-level metadata), which both chrome://tracing and Perfetto load.
type traceDoc struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

const (
	pidExposed = 0 // exposed timeline: modeled comm + measured compute
	pidHidden  = 1 // hidden (overlapped) communication, same tid = rank
)

// events renders the recorder as trace events: per-rank thread metadata,
// then one complete ("X") event per span. Exposed spans go on pid 0, hidden
// spans on pid 1 with the same tid, so a hidden interval that straddles
// compute spans never violates the viewer's stack nesting.
func (r *Recorder) events() []traceEvent {
	if r == nil {
		return nil
	}
	var evs []traceEvent
	meta := func(pid int, procName string) {
		evs = append(evs, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": procName},
		})
	}
	meta(pidExposed, "exposed timeline (modeled comm + measured compute)")
	meta(pidHidden, "hidden (overlapped) communication")
	for i := range r.ranks {
		for _, pid := range []int{pidExposed, pidHidden} {
			evs = append(evs, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: i,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", i)},
			})
		}
	}
	for _, rr := range r.ranks {
		for _, sp := range rr.spans {
			pid := pidExposed
			if sp.Kind == KindHidden {
				pid = pidHidden
			}
			args := map[string]any{"kind": sp.Kind.String()}
			if sp.Msgs != 0 {
				args["msgs"] = sp.Msgs
			}
			if sp.Bytes != 0 {
				args["bytes"] = sp.Bytes
			}
			if sp.Work != 0 {
				args["work_units"] = sp.Work
			}
			if sp.Batch >= 0 {
				args["batch"] = sp.Batch
			}
			if sp.Stage >= 0 {
				args["stage"] = sp.Stage
			}
			if sp.Channel >= 0 {
				args["channel"] = sp.Channel
			}
			dur := sp.Dur * 1e6
			evs = append(evs, traceEvent{
				Name: sp.Cat, Cat: sp.Kind.String(), Ph: "X",
				Pid: pid, Tid: sp.Rank,
				Ts: sp.Start * 1e6, Dur: &dur,
				Args: args,
			})
		}
	}
	return evs
}

// WriteTrace writes the run as Chrome trace-event JSON, loadable in
// chrome://tracing or ui.perfetto.dev.
func (r *Recorder) WriteTrace(w io.Writer) error {
	doc := traceDoc{
		TraceEvents: r.events(),
		OtherData: map[string]any{
			"spans": len(r.Spans()),
			"ranks": r.Ranks(),
			"units": "ts/dur in microseconds of modeled+measured seconds",
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// TraceJSON returns the trace-event document as a JSON byte slice.
func (r *Recorder) TraceJSON() ([]byte, error) {
	return json.Marshal(traceDoc{
		TraceEvents: r.events(),
		OtherData: map[string]any{
			"spans": len(r.Spans()),
			"ranks": r.Ranks(),
		},
	})
}

// WriteTraceFile writes the trace-event JSON to path (0644, truncating).
func (r *Recorder) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
