package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestNilRecorderIsSafe: every method of a nil *RankRecorder and out-of-range
// Rank lookups must be no-ops — the disabled-tracing hot path depends on it.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *RankRecorder
	r.Record("x", KindComm, 1, 1, 1, 1)
	r.SetBatch(3)
	r.SetStage(2)
	r.TagChannel(1)
	if r.Spans() != nil {
		t.Error("nil recorder returned spans")
	}
	var rec *Recorder
	if rec.Rank(0) != nil {
		t.Error("nil Recorder.Rank(0) != nil")
	}
	live := NewRecorder(2)
	if live.Rank(-1) != nil || live.Rank(2) != nil {
		t.Error("out-of-range Rank lookup not nil")
	}
}

// TestClockModel: exposed spans advance the per-rank virtual clock in record
// order; hidden spans anchor backwards from the current clock (they overlap
// compute already on the timeline) and clamp at zero.
func TestClockModel(t *testing.T) {
	rec := NewRecorder(1)
	r := rec.Rank(0)
	r.Record("a", KindComm, 2, 1, 10, 0)
	r.Record("a", KindCompute, 3, 0, 0, 5)
	r.Record("a", KindHidden, 1.5, 0, 0, 0)
	r.Record("b", KindComm, 1, 1, 10, 0)

	sp := r.Spans()
	if sp[0].Start != 0 || sp[1].Start != 2 || sp[3].Start != 5 {
		t.Errorf("exposed starts %v %v %v, want 0 2 5", sp[0].Start, sp[1].Start, sp[3].Start)
	}
	if sp[2].Start != 5-1.5 {
		t.Errorf("hidden start %v, want %v", sp[2].Start, 5-1.5)
	}

	// A hidden span longer than everything before it clamps at zero.
	rec2 := NewRecorder(1)
	r2 := rec2.Rank(0)
	r2.Record("a", KindCompute, 1, 0, 0, 0)
	r2.Record("a", KindHidden, 10, 0, 0, 0)
	if got := r2.Spans()[1].Start; got != 0 {
		t.Errorf("clamped hidden start %v, want 0", got)
	}
}

// TestBatchStageChannelLabels: labels apply to spans recorded while set;
// TagChannel tags only a trailing hidden span and ignores invalid channels.
func TestBatchStageChannelLabels(t *testing.T) {
	rec := NewRecorder(1)
	r := rec.Rank(0)
	r.Record("a", KindComm, 1, 0, 0, 0) // before any labels
	r.SetBatch(2)
	r.SetStage(1)
	r.Record("a", KindComm, 1, 0, 0, 0)
	r.Record("a", KindHidden, 1, 0, 0, 0)
	r.TagChannel(1)
	r.TagChannel(-1) // no-op
	r.SetBatch(-1)
	r.SetStage(-1)
	r.Record("a", KindComm, 1, 0, 0, 0)
	r.TagChannel(0) // last span is not hidden: must not tag

	sp := r.Spans()
	if sp[0].Batch != -1 || sp[0].Stage != -1 {
		t.Errorf("pre-label span labeled %+v", sp[0])
	}
	if sp[1].Batch != 2 || sp[1].Stage != 1 {
		t.Errorf("labeled span %+v", sp[1])
	}
	if sp[2].Channel != 1 {
		t.Errorf("hidden span channel %d, want 1", sp[2].Channel)
	}
	if sp[3].Batch != -1 || sp[3].Stage != -1 || sp[3].Channel != -1 {
		t.Errorf("post-reset span %+v", sp[3])
	}
}

// TestScaleRescalesSpansAndClock: scaling comm or compute rescales the
// matching spans' durations and renormalizes every start onto the rescaled
// clock, keeping the timeline self-consistent.
func TestScaleRescalesSpansAndClock(t *testing.T) {
	rec := NewRecorder(1)
	r := rec.Rank(0)
	r.Record("a", KindComm, 2, 0, 0, 0)
	r.Record("a", KindCompute, 4, 0, 0, 0)
	r.Record("a", KindHidden, 1, 0, 0, 0)
	r.ScaleComm(10)

	sp := r.Spans()
	if sp[0].Dur != 20 || sp[1].Dur != 4 || sp[2].Dur != 10 {
		t.Errorf("durations after ScaleComm(10): %v %v %v", sp[0].Dur, sp[1].Dur, sp[2].Dur)
	}
	if sp[1].Start != 20 {
		t.Errorf("compute start %v, want 20", sp[1].Start)
	}
	if sp[2].Start != 24-10 {
		t.Errorf("hidden start %v, want %v", sp[2].Start, 24-10)
	}
}

// TestTraceJSONIsValidChromeFormat: the export parses as JSON, carries the
// traceEvents array with complete ("X") events in µs, thread metadata, and
// puts hidden spans on their own pid so they never nest under exposed ones.
func TestTraceJSONIsValidChromeFormat(t *testing.T) {
	rec := NewRecorder(2)
	r0 := rec.Rank(0)
	r0.SetBatch(1)
	r0.Record("Local-Multiply", KindCompute, 0.5, 0, 0, 99)
	r0.Record("A-Broadcast", KindHidden, 0.25, 0, 0, 0)
	r0.TagChannel(0)
	rec.Rank(1).Record("A-Broadcast", KindComm, 1.0, 2, 1234, 0)

	buf, err := rec.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "M":
			meta++
		}
	}
	if complete != 3 {
		t.Errorf("%d complete events, want 3", complete)
	}
	if meta == 0 {
		t.Error("no metadata (process/thread name) events")
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			continue
		}
		args := ev["args"].(map[string]any)
		switch ev["name"] {
		case "Local-Multiply":
			if ev["dur"].(float64) != 0.5*1e6 {
				t.Errorf("compute dur %v µs, want 5e5", ev["dur"])
			}
			if args["work_units"].(float64) != 99 || args["batch"].(float64) != 1 {
				t.Errorf("compute args %v", args)
			}
		case "A-Broadcast":
			if args["kind"] == "hidden" {
				if ev["pid"].(float64) == 0 {
					t.Error("hidden span on the exposed pid")
				}
				if args["channel"].(float64) != 0 {
					t.Errorf("hidden channel %v", args["channel"])
				}
			} else if args["bytes"].(float64) != 1234 || args["msgs"].(float64) != 2 {
				t.Errorf("comm args %v", args)
			}
		}
	}

	var w bytes.Buffer
	if err := rec.WriteTrace(&w); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(w.Bytes()) {
		t.Error("WriteTrace output is not valid JSON")
	}
}

// TestRecorderSpansConcatenatesRankOrder: Recorder.Spans returns every
// rank's spans grouped in rank order.
func TestRecorderSpansConcatenatesRankOrder(t *testing.T) {
	rec := NewRecorder(3)
	rec.Rank(2).Record("c", KindComm, 1, 0, 0, 0)
	rec.Rank(0).Record("a", KindComm, 1, 0, 0, 0)
	rec.Rank(1).Record("b", KindComm, 1, 0, 0, 0)
	all := rec.Spans()
	if len(all) != 3 || all[0].Rank != 0 || all[1].Rank != 1 || all[2].Rank != 2 {
		t.Errorf("spans out of rank order: %+v", all)
	}
}
