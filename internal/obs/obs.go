// Package obs is the run-trace layer: a low-overhead per-rank span recorder
// that mpi.Meter feeds one span per metered interval — every exposed
// communication charge, every measured compute interval, and every hidden
// (overlapped) share a split collective credits — so a simulated run renders
// as a per-rank timeline instead of only per-step totals.
//
// The load-bearing invariant is trace↔meter identity: spans are recorded at
// the meter's charge points, in charge order, carrying the exact values the
// StepStats accumulators were incremented by. Summing a rank's spans per
// category in recording order therefore replays the identical sequence of
// float additions and reproduces every StepStats field exactly —
// CommSeconds, HiddenSeconds, ComputeSeconds, WorkUnits, Messages, Bytes.
// (Meter.Scale* rescales attached spans alongside the accumulated sums; the
// replay then agrees up to one float rounding per category, since scaling a
// sum and summing scaled terms may differ in the last ulp.)
//
// The disabled path costs nothing: a nil *RankRecorder is the off switch,
// every method is a nil-receiver no-op, and the metered hot paths perform
// zero additional allocations when tracing is off (guarded by
// TestTracingDisabledAddsZeroAllocations).
//
// Timeline model. Each rank carries a virtual clock that only its exposed
// intervals advance: exposed comm and compute spans are laid end to end in
// charge order, which is exactly the rank's critical-path accounting
// (StepStats.Total sums the same values). Hidden spans do not advance the
// clock; they anchor backwards over [clock-dur, clock), i.e. over the
// compute that was measured between the collective's post and its wait —
// the window whose unclaimed credit the overlap ledger granted. Durations
// mix modeled α–β communication seconds with measured wall-clock compute
// seconds, the same mix the meters accumulate.
//
// Export is Chrome trace-event JSON (WriteTrace): load the file in
// chrome://tracing or https://ui.perfetto.dev. Exposed spans live on pid 0
// with one thread per rank; hidden spans live on pid 1 (same tid) so their
// partial overlap with compute never breaks the viewer's nesting.
package obs

// Kind classifies a span's duration against the meter's StepStats fields.
type Kind uint8

const (
	// KindCompute is measured local compute (StepStats.ComputeSeconds).
	KindCompute Kind = iota
	// KindComm is exposed modeled communication (StepStats.CommSeconds).
	KindComm
	// KindHidden is modeled communication hidden behind measured compute
	// (StepStats.HiddenSeconds).
	KindHidden
)

// String names the kind as the trace export labels it.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindComm:
		return "comm"
	case KindHidden:
		return "hidden"
	}
	return "unknown"
}

// Span is one metered interval of one rank.
type Span struct {
	// Rank is the world rank the interval was charged to.
	Rank int
	// Cat is the meter category (the paper's step names: "A-Broadcast", ...).
	Cat string
	// Kind says which StepStats field Dur accumulated into.
	Kind Kind
	// Start and Dur place the interval on the rank's virtual timeline, in
	// seconds (see the package comment for the clock model).
	Start, Dur float64
	// Msgs, Bytes, Work carry the charge's volume terms: collective count and
	// payload bytes for comm spans, abstract work units for compute spans.
	Msgs, Bytes, Work int64
	// Batch, Stage, Channel locate the interval in the schedule: the batch
	// index of Alg 4's loop, the SUMMA stage (or 1.5D ring round), and the
	// overlap-ledger channel a hidden span's credit was claimed on. -1 means
	// outside that loop / not applicable.
	Batch, Stage, Channel int
}

// RankRecorder collects one rank's spans. It belongs to the rank's goroutine
// and is not thread-safe, like the Meter it shadows. The nil *RankRecorder
// is the disabled recorder: every method is a no-op, so metering code calls
// it unconditionally.
type RankRecorder struct {
	rank         int
	clock        float64
	batch, stage int
	spans        []Span
}

// Record appends one span: hidden spans anchor backwards over [clock-dur,
// clock) without advancing the clock; every other kind starts at the clock
// and advances it by dur.
func (r *RankRecorder) Record(cat string, kind Kind, dur float64, msgs, bytes, work int64) {
	if r == nil {
		return
	}
	sp := Span{
		Rank: r.rank, Cat: cat, Kind: kind, Dur: dur,
		Msgs: msgs, Bytes: bytes, Work: work,
		Batch: r.batch, Stage: r.stage, Channel: -1,
	}
	if kind == KindHidden {
		sp.Start = r.clock - dur
		if sp.Start < 0 {
			sp.Start = 0
		}
	} else {
		sp.Start = r.clock
		r.clock += dur
	}
	r.spans = append(r.spans, sp)
}

// SetBatch labels subsequent spans with the batch index (-1 = outside the
// batch loop).
func (r *RankRecorder) SetBatch(t int) {
	if r != nil {
		r.batch = t
	}
}

// SetStage labels subsequent spans with the stage / ring-round index (-1 =
// outside the stage loop).
func (r *RankRecorder) SetStage(s int) {
	if r != nil {
		r.stage = s
	}
}

// TagChannel annotates the most recent span with the overlap-ledger channel
// its hiding credit was claimed on. It applies only when that span is a
// hidden span (the claim immediately follows the WaitOverlap that recorded
// it); ch < 0 (no claim) is a no-op.
func (r *RankRecorder) TagChannel(ch int) {
	if r == nil || ch < 0 || len(r.spans) == 0 {
		return
	}
	if last := &r.spans[len(r.spans)-1]; last.Kind == KindHidden {
		last.Channel = ch
	}
}

// Spans returns the recorded spans in charge order. The slice is the
// recorder's own backing store; callers must not append to it.
func (r *RankRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// scale multiplies the durations of the selected kinds by f and renormalizes
// every start onto the rescaled clock, preserving the recording-order layout.
func (r *RankRecorder) scale(f float64, comm, compute bool) {
	if r == nil {
		return
	}
	clock := 0.0
	for i := range r.spans {
		sp := &r.spans[i]
		switch sp.Kind {
		case KindCompute:
			if compute {
				sp.Dur *= f
			}
		default: // KindComm, KindHidden scale with communication
			if comm {
				sp.Dur *= f
			}
		}
		if sp.Kind == KindHidden {
			sp.Start = clock - sp.Dur
			if sp.Start < 0 {
				sp.Start = 0
			}
		} else {
			sp.Start = clock
			clock += sp.Dur
		}
	}
	r.clock = clock
}

// ScaleComm rescales communication durations (exposed and hidden) by f,
// mirroring Meter.ScaleComm.
func (r *RankRecorder) ScaleComm(f float64) { r.scale(f, true, false) }

// ScaleCompute rescales measured compute durations by f, mirroring
// Meter.ScaleCompute.
func (r *RankRecorder) ScaleCompute(f float64) { r.scale(f, false, true) }

// Scale rescales every duration by f, mirroring Meter.Scale.
func (r *RankRecorder) Scale(f float64) { r.scale(f, true, true) }

// Recorder is one run's trace: a RankRecorder per rank, attached by
// mpi.RunTraced. The nil *Recorder is the disabled recorder (Rank returns
// nil, which disables every per-rank method).
type Recorder struct {
	ranks []*RankRecorder
}

// NewRecorder returns a recorder for a p-rank run.
func NewRecorder(p int) *Recorder {
	r := &Recorder{ranks: make([]*RankRecorder, p)}
	for i := range r.ranks {
		r.ranks[i] = &RankRecorder{rank: i, batch: -1, stage: -1}
	}
	return r
}

// Rank returns rank i's recorder (nil for a nil or out-of-range receiver,
// which downstream treats as tracing off).
func (r *Recorder) Rank(i int) *RankRecorder {
	if r == nil || i < 0 || i >= len(r.ranks) {
		return nil
	}
	return r.ranks[i]
}

// Ranks returns the rank count the recorder was sized for.
func (r *Recorder) Ranks() int {
	if r == nil {
		return 0
	}
	return len(r.ranks)
}

// Spans returns every recorded span, ranks concatenated in order, each
// rank's spans in charge order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for _, rr := range r.ranks {
		out = append(out, rr.spans...)
	}
	return out
}
