// Package genmat generates the synthetic stand-ins for the paper's datasets
// (Table V). The real matrices — Metaclust50 (282M×282M, 37B nnz), Isolates,
// Friendster, Eukarya, Rice-kmers, Metaclust20m — are far beyond a single
// host, so each generator reproduces the *regime* that matters for batched
// SpGEMM at a configurable scale:
//
//   - R-MAT power-law graphs (Friendster-like social networks);
//   - symmetrized, weighted R-MAT with self loops (protein-similarity
//     networks: Eukarya / Isolates / Metaclust analogues, the HipMCL inputs);
//   - Erdős–Rényi uniform graphs (load-balanced baseline);
//   - rectangular reads×k-mers incidence matrices with ~2 nonzeros per k-mer
//     column (Rice-kmers / Metaclust20m analogues for AAᵀ overlap detection);
//   - tall-skinny dense-ish panels (the sparse×dense SpMM regime);
//   - graph-derived helpers (lower/upper triangles for triangle counting).
//
// All generators are deterministic in their seed: the same parameters give
// byte-identical matrices on every host, which is what lets the perf gates
// pin workloads, the experiments assert bit-identical outputs, and the
// spgemmd service synthesize operands server-side (service.GeneratorSpec)
// with fingerprints that match client-side generation.
package genmat
