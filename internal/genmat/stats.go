package genmat

import (
	"fmt"

	"repro/internal/localmm"
	"repro/internal/spmat"
)

// Stats summarizes a matrix and its self-product the way the paper's Table V
// does: rows, columns, nnz(A), nnz(C), and flops for C = A·A (or A·Aᵀ for
// rectangular inputs).
type Stats struct {
	Name    string
	Rows    int32
	Cols    int32
	NnzA    int64
	NnzC    int64
	Flops   int64
	CF      float64 // compression factor flops/nnz(C)
	Squared string  // "AA" or "AAT"
}

// Collect computes Table V style statistics. Square matrices use C = A·A;
// rectangular ones use C = A·Aᵀ (the paper does the same for Rice-kmers and
// Metaclust20m).
func Collect(name string, a *spmat.CSC) Stats {
	s := Stats{Name: name, Rows: a.Rows, Cols: a.Cols, NnzA: a.NNZ()}
	b := a
	s.Squared = "AA"
	if a.Rows != a.Cols {
		b = spmat.Transpose(a)
		s.Squared = "AAT"
	}
	s.NnzC = localmm.SymbolicSpGEMM(a, b)
	s.Flops = localmm.Flops(a, b)
	if s.NnzC > 0 {
		s.CF = float64(s.Flops) / float64(s.NnzC)
	}
	return s
}

// String renders one Table V row.
func (s Stats) String() string {
	return fmt.Sprintf("%-18s %9d %9d %12d %12d %14d %6.2f",
		s.Name, s.Rows, s.Cols, s.NnzA, s.NnzC, s.Flops, s.CF)
}

// StatsHeader is the column header matching String.
func StatsHeader() string {
	return fmt.Sprintf("%-18s %9s %9s %12s %12s %14s %6s",
		"Matrix", "rows", "cols", "nnz(A)", "nnz(C)", "flops", "cf")
}
