package genmat

import (
	"testing"

	"repro/internal/localmm"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

func TestRMATShapeAndDeterminism(t *testing.T) {
	cfg := RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 42}
	m := RMAT(cfg)
	if m.Rows != 256 || m.Cols != 256 {
		t.Fatalf("shape %v", m)
	}
	if m.NNZ() == 0 || m.NNZ() > 256*8 {
		t.Errorf("nnz=%d outside (0, %d]", m.NNZ(), 256*8)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !spmat.Equal(m, RMAT(cfg)) {
		t.Error("same seed produced different matrices")
	}
	cfg2 := cfg
	cfg2.Seed = 43
	if spmat.Equal(m, RMAT(cfg2)) {
		t.Error("different seeds produced identical matrices")
	}
}

func TestRMATSkew(t *testing.T) {
	// R-MAT with Graph500 constants concentrates mass in low indices: the
	// first quarter of columns should hold well over a quarter of the edges.
	m := RMAT(RMATConfig{Scale: 10, EdgeFactor: 16, Seed: 7})
	var firstQuarter int64
	for j := int32(0); j < m.Cols/4; j++ {
		firstQuarter += m.ColNNZ(j)
	}
	frac := float64(firstQuarter) / float64(m.NNZ())
	if frac < 0.35 {
		t.Errorf("first quarter holds only %.2f of edges; R-MAT should be skewed", frac)
	}
}

func TestRMATSymmetrize(t *testing.T) {
	m := RMAT(RMATConfig{Scale: 7, EdgeFactor: 8, Symmetrize: true, Weighted: true, Seed: 9})
	if !spmat.ApproxEqual(m, spmat.Transpose(m), 1e-12) {
		t.Error("symmetrized R-MAT is not symmetric")
	}
}

func TestRMATSelfLoops(t *testing.T) {
	m := RMAT(RMATConfig{Scale: 6, EdgeFactor: 4, SelfLoops: true, Seed: 10})
	for i := int32(0); i < m.Rows; i++ {
		if m.At(i, i) == 0 {
			t.Fatalf("missing self loop at %d", i)
		}
	}
}

func TestERDegree(t *testing.T) {
	m := ER(512, 8, 11)
	avg := float64(m.NNZ()) / 512
	if avg < 6.5 || avg > 8.0 { // duplicates collapse, so slightly below 8
		t.Errorf("average degree %v, want ≈8", avg)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProteinSimilarityProperties(t *testing.T) {
	m := ProteinSimilarity(8, 6, 12)
	if !spmat.ApproxEqual(m, spmat.Transpose(m), 1e-12) {
		t.Error("protein-similarity matrix must be symmetric")
	}
	for i := int32(0); i < m.Rows; i++ {
		if m.At(i, i) == 0 {
			t.Fatal("protein-similarity matrix must be reflexive")
		}
	}
	// Squaring must expand: nnz(AA) > nnz(A), the regime that needs batching.
	st := Collect("prot", m)
	if st.NnzC <= st.NnzA {
		t.Errorf("nnz(C)=%d not larger than nnz(A)=%d", st.NnzC, st.NnzA)
	}
}

func TestKmerMatrix(t *testing.T) {
	cfg := KmerConfig{Reads: 200, Kmers: 4000, KmersPerRead: 10, Overlap: 0.3, Seed: 13}
	m := Kmer(cfg)
	if m.Rows != 200 || m.Cols != 4000 {
		t.Fatalf("shape %v", m)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Values are structural 1s.
	for _, v := range m.Val {
		if v != 1 {
			t.Fatalf("value %v, want 1", v)
		}
	}
	// Overlap creates shared k-mers: AAᵀ must have off-diagonal entries.
	at := spmat.Transpose(m)
	c := localmm.Multiply(m, at, nil2())
	var off int64
	for _, tr := range c.Triples() {
		if tr.Row != tr.Col {
			off++
		}
	}
	if off == 0 {
		t.Error("no overlapping reads; AAT study needs off-diagonals")
	}
}

func TestKmerNoOverlapStillValid(t *testing.T) {
	m := Kmer(KmerConfig{Reads: 50, Kmers: 100000, KmersPerRead: 3, Seed: 14})
	// Hypersparse: most k-mer columns empty, ~reads·kmersPerRead entries.
	if m.NNZ() > 150 {
		t.Errorf("nnz=%d, want ≤150", m.NNZ())
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	p := Permutation(64, 15)
	if p.NNZ() != 64 {
		t.Fatalf("nnz=%d", p.NNZ())
	}
	seenRow := make([]bool, 64)
	for _, tr := range p.Triples() {
		if tr.Val != 1 {
			t.Fatal("permutation values must be 1")
		}
		if seenRow[tr.Row] {
			t.Fatal("duplicate row in permutation")
		}
		seenRow[tr.Row] = true
	}
	// P·Pᵀ = I.
	prod := localmm.Multiply(p, spmat.Transpose(p), nil2())
	if !spmat.Equal(prod, spmat.Identity(64)) {
		t.Error("P·Pᵀ ≠ I")
	}
}

func TestTriangleSplit(t *testing.T) {
	m := RMAT(RMATConfig{Scale: 6, EdgeFactor: 8, Symmetrize: true, Seed: 16})
	l, u := LowerTriangle(m), UpperTriangle(m)
	for _, tr := range l.Triples() {
		if tr.Row <= tr.Col {
			t.Fatal("lower triangle contains upper entry")
		}
	}
	for _, tr := range u.Triples() {
		if tr.Row >= tr.Col {
			t.Fatal("upper triangle contains lower entry")
		}
	}
	var diag int64
	for i := int32(0); i < m.Rows; i++ {
		if m.At(i, i) != 0 {
			diag++
		}
	}
	if l.NNZ()+u.NNZ()+diag != m.NNZ() {
		t.Error("L + U + diag does not partition the matrix")
	}
}

func TestStatsString(t *testing.T) {
	m := ER(64, 4, 17)
	s := Collect("er64", m)
	if s.Squared != "AA" {
		t.Errorf("squared=%s", s.Squared)
	}
	if s.CF < 1 {
		t.Errorf("cf=%v < 1", s.CF)
	}
	if s.String() == "" || StatsHeader() == "" {
		t.Error("empty rendering")
	}
	// Rectangular → AAT.
	k := Kmer(KmerConfig{Reads: 30, Kmers: 300, KmersPerRead: 5, Seed: 18})
	if Collect("kmer", k).Squared != "AAT" {
		t.Error("rectangular stats should use AAT")
	}
}

// nil2 returns the plus-times semiring; it keeps multiply call sites short.
func nil2() *semiring.Semiring { return semiring.PlusTimes() }

func TestKroneckerPower(t *testing.T) {
	seed := spmat.Dense(2, 2, []float64{1, 1, 1, 0})
	g3 := KroneckerPower(seed, 3)
	if g3.Rows != 8 || g3.Cols != 8 {
		t.Fatalf("shape %v", g3)
	}
	// nnz multiplies: 3 per level → 27.
	if g3.NNZ() != 27 {
		t.Errorf("nnz=%d, want 27", g3.NNZ())
	}
	// k=1 is the seed itself.
	if !spmat.Equal(KroneckerPower(seed, 1), seed) {
		t.Error("first power should be the seed")
	}
	if err := g3.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetricPermutePreservesStructure(t *testing.T) {
	m := ProteinSimilarity(7, 6, 19)
	p := SymmetricPermute(m, 20)
	if p.NNZ() != m.NNZ() {
		t.Errorf("permutation changed nnz: %d vs %d", p.NNZ(), m.NNZ())
	}
	// Symmetry is preserved by a symmetric permutation.
	if !spmat.ApproxEqual(p, spmat.Transpose(p), 1e-12) {
		t.Error("symmetric permutation broke symmetry")
	}
	// Degree multiset is preserved.
	degM := m.ColCounts()
	degP := p.ColCounts()
	sortInt64s(degM)
	sortInt64s(degP)
	for i := range degM {
		if degM[i] != degP[i] {
			t.Fatal("degree multiset changed")
		}
	}
}

func sortInt64s(x []int64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
