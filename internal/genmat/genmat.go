package genmat

import (
	"math/rand"

	"repro/internal/spmat"
)

// RMATConfig parameterizes the recursive-matrix generator of Chakrabarti et
// al., the generator behind Graph500 and the paper's social-network regime.
type RMATConfig struct {
	// Scale gives n = 2^Scale vertices.
	Scale int
	// EdgeFactor is the average number of (directed) edges per vertex.
	EdgeFactor int
	// A, B, C quadrant probabilities; D = 1-A-B-C. Zero values default to
	// the Graph500 constants (0.57, 0.19, 0.19).
	A, B, C float64
	// Symmetrize mirrors every edge, producing an undirected graph.
	Symmetrize bool
	// SelfLoops adds the full diagonal (protein-similarity matrices are
	// reflexive).
	SelfLoops bool
	// Weighted draws values uniformly from (0,1]; otherwise all values are 1.
	Weighted bool
	// Seed drives the deterministic stream.
	Seed int64
}

func (c RMATConfig) withDefaults() RMATConfig {
	if c.A == 0 && c.B == 0 && c.C == 0 {
		c.A, c.B, c.C = 0.57, 0.19, 0.19
	}
	if c.EdgeFactor == 0 {
		c.EdgeFactor = 8
	}
	return c
}

// RMAT generates a 2^Scale × 2^Scale sparse matrix with approximately
// EdgeFactor·2^Scale nonzeros following the R-MAT skewed degree distribution.
// Duplicate edges are accumulated (weighted) or collapsed to 1 (unweighted).
func RMAT(cfg RMATConfig) *spmat.CSC {
	cfg = cfg.withDefaults()
	n := int32(1) << cfg.Scale
	rng := rand.New(rand.NewSource(cfg.Seed))
	edges := int(n) * cfg.EdgeFactor
	ts := make([]spmat.Triple, 0, edges*2)
	for e := 0; e < edges; e++ {
		r, c := rmatEdge(cfg, rng, n)
		v := 1.0
		if cfg.Weighted {
			v = rng.Float64()*0.999 + 0.001
		}
		ts = append(ts, spmat.Triple{Row: r, Col: c, Val: v})
		if cfg.Symmetrize && r != c {
			ts = append(ts, spmat.Triple{Row: c, Col: r, Val: v})
		}
	}
	if cfg.SelfLoops {
		for i := int32(0); i < n; i++ {
			ts = append(ts, spmat.Triple{Row: i, Col: i, Val: 1})
		}
	}
	add := func(a, b float64) float64 { return a + b }
	if !cfg.Weighted {
		// Collapse duplicates to structural 1s.
		add = func(a, b float64) float64 { return 1 }
	}
	m, err := spmat.FromTriples(n, n, ts, add)
	if err != nil {
		panic(err) // generator produces in-range coordinates by construction
	}
	return m
}

// rmatEdge draws one edge by recursive quadrant descent.
func rmatEdge(cfg RMATConfig, rng *rand.Rand, n int32) (int32, int32) {
	var r, c int32
	for half := n / 2; half > 0; half /= 2 {
		u := rng.Float64()
		switch {
		case u < cfg.A:
			// top-left: nothing to add
		case u < cfg.A+cfg.B:
			c += half
		case u < cfg.A+cfg.B+cfg.C:
			r += half
		default:
			r += half
			c += half
		}
	}
	return r, c
}

// ER generates an n×n Erdős–Rényi matrix with approximately avgDeg nonzeros
// per column, values 1.
func ER(n int32, avgDeg int, seed int64) *spmat.CSC {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]spmat.Triple, 0, int(n)*avgDeg)
	for j := int32(0); j < n; j++ {
		for d := 0; d < avgDeg; d++ {
			ts = append(ts, spmat.Triple{Row: int32(rng.Intn(int(n))), Col: j, Val: 1})
		}
	}
	m, err := spmat.FromTriples(n, n, ts, func(a, b float64) float64 { return 1 })
	if err != nil {
		panic(err)
	}
	return m
}

// ProteinSimilarity generates a protein-similarity-network analogue: a
// symmetric, weighted, reflexive power-law graph — the structure HipMCL
// squares (Eukarya, Isolates, Metaclust50 in Table V). Scale gives 2^Scale
// proteins; edgeFactor controls density.
func ProteinSimilarity(scale, edgeFactor int, seed int64) *spmat.CSC {
	return RMAT(RMATConfig{
		Scale:      scale,
		EdgeFactor: edgeFactor,
		Symmetrize: true,
		SelfLoops:  true,
		Weighted:   true,
		Seed:       seed,
	})
}

// KmerConfig parameterizes the reads×k-mers incidence generator.
type KmerConfig struct {
	// Reads is the number of sequences (matrix rows).
	Reads int32
	// Kmers is the number of distinct k-mers (matrix columns); the paper's
	// Rice-kmers has ~400× more columns than rows.
	Kmers int32
	// KmersPerRead is how many k-mer occurrences each read contributes.
	KmersPerRead int
	// Overlap controls how often consecutive reads share k-mers (0..1):
	// higher values produce more overlapping read pairs, the signal BELLA
	// detects. 0 draws k-mers uniformly.
	Overlap float64
	// Seed drives the deterministic stream.
	Seed int64
}

// Kmer generates a reads×kmers 0/1 incidence matrix. With Overlap > 0,
// read i reuses a fraction of read i-1's k-mers, creating genuine shared
// k-mer structure so AAᵀ has off-diagonal entries as in sequence overlap
// detection.
func Kmer(cfg KmerConfig) *spmat.CSC {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ts := make([]spmat.Triple, 0, int(cfg.Reads)*cfg.KmersPerRead)
	prev := make([]int32, 0, cfg.KmersPerRead)
	cur := make([]int32, 0, cfg.KmersPerRead)
	for i := int32(0); i < cfg.Reads; i++ {
		cur = cur[:0]
		for d := 0; d < cfg.KmersPerRead; d++ {
			var k int32
			if len(prev) > 0 && rng.Float64() < cfg.Overlap {
				k = prev[rng.Intn(len(prev))]
			} else {
				k = int32(rng.Intn(int(cfg.Kmers)))
			}
			cur = append(cur, k)
			ts = append(ts, spmat.Triple{Row: i, Col: k, Val: 1})
		}
		prev = append(prev[:0], cur...)
	}
	m, err := spmat.FromTriples(cfg.Reads, cfg.Kmers, ts, func(a, b float64) float64 { return 1 })
	if err != nil {
		panic(err)
	}
	return m
}

// Hypersparse generates a rows×cols Erdős–Rényi-style 0/1 matrix in the
// Rice-kmers regime (Table V): rows ≪ cols and ~nnzPerCol nonzeros in each
// *occupied* column, with a majority (~55%) of columns left empty — real
// k-mer tables are full of absent and singleton k-mers — so the matrix is
// hypersparse (non-empty columns < cols/2) even before a 3D grid slices it
// into still-sparser local blocks. This is the regime the DCSC storage
// format and the hypersparse wire encoding exist for.
func Hypersparse(rows, cols int32, nnzPerCol int, seed int64) *spmat.CSC {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]spmat.Triple, 0, int(cols)*nnzPerCol/2)
	for j := int32(0); j < cols; j++ {
		if rng.Float64() < 0.55 {
			continue
		}
		k := 1 + rng.Intn(2*nnzPerCol-1) // mean ≈ nnzPerCol
		for d := 0; d < k; d++ {
			ts = append(ts, spmat.Triple{Row: int32(rng.Intn(int(rows))), Col: j, Val: 1})
		}
	}
	m, err := spmat.FromTriples(rows, cols, ts, func(a, b float64) float64 { return 1 })
	if err != nil {
		panic(err)
	}
	return m
}

// TallSkinny generates a rows×cols feature panel with rows ≫ cols — the
// dense operand of the sparse×dense (SpMM) path, stored sparsely for
// MatrixMarket interchange and densified with spmat.DenseFromCSC on load.
// Entries are small positive integers (1..9) so distributed products over it
// are exact in float64 and bit-identity is assertable; fill is the fraction
// of entries present (a fill of 1 is a fully dense panel).
func TallSkinny(rows, cols int32, fill float64, seed int64) *spmat.CSC {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]spmat.Triple, 0, int(float64(rows)*float64(cols)*fill))
	for i := int32(0); i < rows; i++ {
		for j := int32(0); j < cols; j++ {
			if rng.Float64() >= fill {
				continue
			}
			ts = append(ts, spmat.Triple{Row: i, Col: j, Val: float64(rng.Intn(9) + 1)})
		}
	}
	m, err := spmat.FromTriples(rows, cols, ts, nil)
	if err != nil {
		panic(err)
	}
	return m
}

// KroneckerPower returns the k-th Kronecker power of the seed matrix —
// the deterministic scale-free generator of the Graph500 family (R-MAT is
// its randomized counterpart). A 2×2 seed yields a 2^k-vertex graph.
func KroneckerPower(seed *spmat.CSC, k int) *spmat.CSC {
	if k < 1 {
		panic("genmat: KroneckerPower needs k ≥ 1")
	}
	out := seed
	for i := 1; i < k; i++ {
		out = spmat.Kron(out, seed)
	}
	return out
}

// SymmetricPermute relabels rows and columns of a square matrix with the
// same random permutation (P·M·Pᵀ). R-MAT generators concentrate high-degree
// vertices in low indices, which would load one process row of a 2D/3D grid
// far more than the others; production pipelines (CombBLAS, HipMCL) randomly
// permute inputs for exactly this reason, and the workload generators here
// do the same.
func SymmetricPermute(m *spmat.CSC, seed int64) *spmat.CSC {
	if m.Rows != m.Cols {
		panic("genmat: SymmetricPermute needs a square matrix")
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(int(m.Rows))
	ts := m.Triples()
	for i := range ts {
		ts[i].Row = int32(perm[ts[i].Row])
		ts[i].Col = int32(perm[ts[i].Col])
	}
	out, err := spmat.FromTriples(m.Rows, m.Cols, ts, nil)
	if err != nil {
		panic(err)
	}
	return out
}

// Permutation returns a random n×n permutation matrix; multiplying by it
// relabels rows/columns, useful for load-balance experiments.
func Permutation(n int32, seed int64) *spmat.CSC {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(int(n))
	ts := make([]spmat.Triple, n)
	for j := int32(0); j < n; j++ {
		ts[j] = spmat.Triple{Row: int32(perm[j]), Col: j, Val: 1}
	}
	m, err := spmat.FromTriples(n, n, ts, nil)
	if err != nil {
		panic(err)
	}
	return m
}

// LowerTriangle returns the strictly lower-triangular part of m (triangle
// counting splits the adjacency matrix into L and U).
func LowerTriangle(m *spmat.CSC) *spmat.CSC {
	out := m.Clone()
	out.Filter(func(r, c int32, _ float64) bool { return r > c })
	return out
}

// UpperTriangle returns the strictly upper-triangular part of m.
func UpperTriangle(m *spmat.CSC) *spmat.CSC {
	out := m.Clone()
	out.Filter(func(r, c int32, _ float64) bool { return r < c })
	return out
}
