package planner

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/costmodel"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// DefaultSecPerWork converts abstract work units (flops, scanned and merged
// nonzeros) to modeled seconds — the same pinned rate the CI perf gate uses,
// so planner scores and gate scores live on one scale.
const DefaultSecPerWork = 1e-9

// DefaultImbalance scales mean-based per-rank estimates (the unmerged
// intermediate behind the batch decision and the peak-memory model) up to
// per-rank maxima. Input distributions are randomly permuted power-law
// matrices, whose per-rank load at the simulated grid sizes stays within a
// small factor of the mean.
const DefaultImbalance = 1.5

// Input configures a planning run.
type Input struct {
	// P is the total rank count. Required.
	P int
	// MemBytes is the aggregate memory budget M (0 = unconstrained, which
	// induces b = 1 everywhere).
	MemBytes int64
	// Machine supplies α, β, and the communication scale factor.
	Machine costmodel.Machine
	// BytesPerNnz is r, the modeled bytes per stored nonzero (default 24).
	BytesPerNnz int64
	// SecPerWork is the work-unit rate of the objective (default
	// DefaultSecPerWork).
	SecPerWork float64
	// Symbolic includes the distributed symbolic pass in every prediction
	// (the memory-constrained workflow always runs it).
	Symbolic bool
	// MaxBatches caps the induced batch count (0 = uncapped).
	MaxBatches int
	// SampleCols is the probe's symbolic sample size (0 =
	// DefaultSampleCols).
	SampleCols int
	// Imbalance scales mean-based per-rank estimates to maxima (0 =
	// DefaultImbalance).
	Imbalance float64
	// Layers restricts the candidate layer counts (nil = every l for which
	// p/l is a perfect square).
	Layers []int
	// Formats restricts the candidate storage formats (nil = csc, dcsc,
	// auto).
	Formats []spmat.Format
	// Pipelines restricts the schedule dimension (nil = staged and
	// pipelined).
	Pipelines []bool
	// SparseComms restricts the sparse-communication dimension (nil = off
	// only, so pre-knob plans and their rankings are unchanged).
	SparseComms []mpi.SparseMode
	// Channels lists the candidate overlap channel counts k for pipelined
	// configurations (nil = single-channel only, so pre-knob plans are
	// unchanged). Staged configurations ignore the axis.
	Channels []int
	// Kernels is the kernel cost table the plan-time kernel/merger
	// selection prices against. Nil uses the built-in default
	// coefficients; a daemon passes its shared recalibrated table so
	// picks track the measured machine.
	Kernels *costmodel.KernelTable
}

func (in Input) withDefaults() Input {
	if in.BytesPerNnz == 0 {
		in.BytesPerNnz = spmat.BytesPerNonzero
	}
	if in.SecPerWork == 0 {
		in.SecPerWork = DefaultSecPerWork
	}
	if in.Imbalance == 0 {
		in.Imbalance = DefaultImbalance
	}
	if in.Machine.Name == "" {
		in.Machine = costmodel.CoriKNL()
	}
	if len(in.Formats) == 0 {
		in.Formats = []spmat.Format{spmat.FormatCSC, spmat.FormatDCSC, spmat.FormatAuto}
	}
	if len(in.Pipelines) == 0 {
		in.Pipelines = []bool{false, true}
	}
	if len(in.SparseComms) == 0 {
		in.SparseComms = []mpi.SparseMode{mpi.SparseOff}
	}
	if len(in.Channels) == 0 {
		in.Channels = []int{1}
	}
	return in
}

// Plan is the ranked outcome of a planning run.
type Plan struct {
	// In echoes the (defaulted) inputs the decision was made under.
	In Input
	// Probe is the input statistics everything was predicted from.
	Probe *Probe
	// Candidates holds every evaluated configuration, best first (feasible
	// configurations strictly before infeasible ones).
	Candidates []Candidate

	qOf   map[int]int
	stats map[int]*gridStat
	// a, b are retained for the lazily-computed sparse-comm statistics
	// (computeSubsetStat) — only candidates with SparseComm != off need them.
	a, b *spmat.CSC
}

// LayersFor returns every layer count l for which p ranks form a grid with
// square layers, ascending.
func LayersFor(p int) []int {
	var out []int
	for l := 1; l <= p; l++ {
		if p%l == 0 && grid.ValidP(p, l) {
			out = append(out, l)
		}
	}
	return out
}

// New probes the pair (A, B) and evaluates the full configuration space for
// it, returning the ranked plan. The decision is deterministic: the probe
// samples on a fixed stride and ties rank by (layers, batches, format,
// schedule).
func New(a, b *spmat.CSC, in Input) (*Plan, error) {
	in = in.withDefaults()
	if in.P <= 0 {
		return nil, fmt.Errorf("planner: rank count %d", in.P)
	}
	layers := in.Layers
	if len(layers) == 0 {
		layers = LayersFor(in.P)
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("planner: no valid layer count for p = %d (p/l must be a perfect square)", in.P)
	}
	pr, err := ProbePair(a, b, in.SampleCols)
	if err != nil {
		return nil, err
	}
	pl := &Plan{In: in, Probe: pr, qOf: make(map[int]int), stats: make(map[int]*gridStat), a: a, b: b}
	for _, l := range layers {
		q, err := grid.SideFor(in.P, l)
		if err != nil {
			return nil, fmt.Errorf("planner: layer count %d: %w", l, err)
		}
		pl.qOf[l] = q
		gs := computeGridStat(a, b, q, l)
		pl.stats[l] = gs
		for _, f := range in.Formats {
			for _, sm := range in.SparseComms {
				staged := pl.predict(gs, f, 0, sm)
				for _, pipe := range in.Pipelines {
					if !pipe {
						pl.Candidates = append(pl.Candidates, staged)
					} else if staged.Feasible {
						for _, k := range in.Channels {
							pl.Candidates = append(pl.Candidates, pl.applyOverlap(staged, k))
						}
					}
				}
			}
		}
	}
	sort.SliceStable(pl.Candidates, func(x, y int) bool {
		cx, cy := &pl.Candidates[x], &pl.Candidates[y]
		if cx.Feasible != cy.Feasible {
			return cx.Feasible
		}
		if cx.ModelSeconds != cy.ModelSeconds {
			return cx.ModelSeconds < cy.ModelSeconds
		}
		if cx.L != cy.L {
			return cx.L < cy.L
		}
		if cx.B != cy.B {
			return cx.B < cy.B
		}
		if cx.Format != cy.Format {
			return cx.Format < cy.Format
		}
		if cx.SparseComm != cy.SparseComm {
			return cx.SparseComm < cy.SparseComm
		}
		if cx.Pipeline != cy.Pipeline {
			return !cx.Pipeline
		}
		return cx.Channels < cy.Channels
	})
	return pl, nil
}

// qFor returns the per-layer grid side of a candidate layer count.
func (pl *Plan) qFor(l int) int { return pl.qOf[l] }

// AllreduceShare returns the modeled cost of the symbolic step's four
// blocking Allreduces (three footprint maxima plus the batch agreement) —
// the share of the Symbolic step's communication the pipelined schedule can
// never hide. Exported so the oracle comparison applies the identical
// overlap input.
func (pl *Plan) AllreduceShare() float64 {
	if !pl.In.Symbolic {
		return 0
	}
	cm := mpi.CostModel{AlphaSec: pl.In.Machine.AlphaSec, BetaSecPerByte: pl.In.Machine.BetaSecPerByte}
	return pl.In.Machine.CommScale * 4 * cm.AllreduceCost(pl.In.P, 8)
}

// Evaluate predicts one explicit configuration, pinning its batch count
// instead of inducing it from the memory model (cfg.B ≤ 0 induces). The
// layer count must be one the plan enumerated. Tests compare these
// predictions against the meters of real runs, and the oracle comparison
// uses them to show predicted-vs-measured breakdowns for arbitrary swept
// points.
func (pl *Plan) Evaluate(cfg Config) (Candidate, error) {
	gs, ok := pl.stats[cfg.L]
	if !ok {
		return Candidate{}, fmt.Errorf("planner: layer count %d was not enumerated", cfg.L)
	}
	c := pl.predict(gs, cfg.Format, cfg.B, cfg.SparseComm)
	if cfg.Pipeline {
		c = pl.applyOverlap(c, cfg.Channels)
	}
	return c, nil
}

// Best returns the top-ranked feasible candidate, or nil when the space is
// entirely infeasible under the budget.
func (pl *Plan) Best() *Candidate {
	if len(pl.Candidates) == 0 || !pl.Candidates[0].Feasible {
		return nil
	}
	return &pl.Candidates[0]
}

func itoa(v int) string { return strconv.Itoa(v) }
