// Package planner is the analytical autotuner: given the cheap statistics of
// a multiplication (dimensions, nonzero counts, a sampled symbolic probe of
// the output, per-block hypersparsity occupancy), a machine's α–β constants,
// a rank count p, and an aggregate memory budget M, it enumerates every
// feasible BATCHEDSUMMA3D configuration — all layer counts l with square
// layers, the batch count b the per-format footprint model induces under M
// (mirroring the distributed symbolic step's decision without running it),
// storage format ∈ {csc, dcsc, auto}, and pipeline on/off — with the hidden
// share predicted by the overlap-ledger model across each requested
// outstanding-channel count k (Input.Channels) — and predicts each
// configuration's modeled critical-path seconds per step (Symbolic,
// A-Broadcast, B-Broadcast, Local-Multiply, Merge-Layer, AllToAll-Fiber,
// Merge-Fiber). The result is a ranked Plan with a per-step cost breakdown
// and a human-readable "why" report.
//
// Each candidate additionally carries a kernel/merger selection: its
// predicted multiply and merge aggregates are priced under the
// costmodel.KernelTable (Input.Kernels; nil uses the default coefficients)
// for every local kernel and merge strategy, with the hybrid kernel priced
// per sampled column — on block-level aggregates it can never beat the
// better pure kernel, its advantage is per-column regime mixing. The
// winners land in Choice.Kernel/Choice.Merger and core.ApplyChoice pins
// them into the run options. Selection never moves ModelSeconds or the
// ranking — kernels don't change what is communicated or computed, only
// how fast the compute runs — and the table's fingerprint is part of
// CacheKey, so cached choices are invalidated when recalibration moves the
// coefficients. The kernelsel experiment (and `spgemm-bench -kernelgate`)
// scores the picks against an exhaustive option sweep over the measured
// aggregates of a real run.
//
// The predictors deliberately mirror the metered simulation rather than the
// paper's closed forms: communication uses the exact wire-size formula
// (spmat.WireBytesFor) over exactly-computed per-block occupancy, so the
// A-broadcast and symbolic predictions reproduce the meters to the byte;
// output-side quantities (unmerged intermediates, merge volumes, the fiber
// exchange) come from the sampled probe through a balls-in-bins
// slice-splitting model, so they are estimates. The modeled objective is the
// same one the CI perf gate scores: per-step max-over-ranks α–β communication
// plus total work units at a pinned seconds-per-work rate — deterministic on
// any host.
//
// The planner is consumed three ways: core.Options.AutoTune rewrites a
// RunConfig with the best candidate before a run, `spgemm-bench -autotune`
// prints the plan and then executes it, and `mtxinfo -plan` reports the
// ranked configurations for a Matrix Market file. The `planner` experiment
// (and `spgemm-bench -plangate`) scores the planner's pick against an
// exhaustive oracle sweep.
//
// NewDense extends the enumeration to sparse×dense multiplication: the
// algorithm axis (densified 2D/3D SUMMA vs the 1.5D ColA and InnerABC
// schedules) × replication factor × batches × schedule, with each
// candidate's cost split into one-time replication and per-iteration
// shares so iterated SpMM (DenseInput.Iterations) amortizes correctly. The
// 1.5D predictors mirror core's schedules collective for collective with
// exact per-block wire sizes and are meter-exact on staged shapes; the
// SUMMA arm delegates to the sparse planner on the panel's densified
// pattern — exactly what the runtime's AlgoSUMMA arm executes.
package planner
