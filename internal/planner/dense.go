package planner

import (
	"fmt"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// This file is the sparse×dense planner: it ranks the algorithm families the
// runtime's MultiplyDense can execute — 2D/3D SUMMA over a densified panel,
// 1.5D ColA, and 1.5D InnerABC — across replication factors, batch counts,
// and schedules. The 1.5D predictions mirror core's schedules collective for
// collective (skew/fiber broadcasts, ring shifts, fiber allgather-reduce)
// with exact per-block wire sizes, so they are testable against real meters;
// the SUMMA arm delegates to the sparse planner on an all-ones pattern of
// the panel, which is exactly what the runtime's AlgoSUMMA arm executes.
//
// The ranking objective models iterated SpMM: each candidate's cost is split
// into OneTimeSeconds (replication of the stationary operand, paid once per
// matrix) and PerIterSeconds (shifts, reduction, compute, paid every
// iteration), and ModelSeconds = one-time + Iterations × per-iteration. With
// Iterations = 1 the split is a no-op; as it grows, candidates that amortize
// replication (InnerABC replicates sparse A once and then moves only dense
// panels) overtake candidates that re-move the sparse matrix every pass.

// Dense algorithm spellings, shared with core.ParseAlgo and the -algo flag.
const (
	DenseAlgoSUMMA    = "summa"
	DenseAlgoColA     = "cola"
	DenseAlgoInnerABC = "innerabc"
)

// DenseAlgos lists the algorithm axis in enumeration order.
var DenseAlgos = []string{DenseAlgoSUMMA, DenseAlgoColA, DenseAlgoInnerABC}

// DenseInput configures a sparse×dense planning run.
type DenseInput struct {
	// P is the total rank count. Required.
	P int
	// Iterations is how many times the SpMM will run with the same sparse
	// matrix (an iterative solver's passes). One-time replication cost is
	// amortized over it. 0 means 1.
	Iterations int
	// MemBytes is the aggregate memory budget M (0 = unconstrained, which
	// induces b = 1 everywhere).
	MemBytes int64
	// Machine supplies α, β, and the communication scale factor.
	Machine costmodel.Machine
	// BytesPerNnz is r, the modeled bytes per stored nonzero (default 24).
	BytesPerNnz int64
	// SecPerWork is the work-unit rate of the objective (default
	// DefaultSecPerWork).
	SecPerWork float64
	// MaxBatches caps the induced batch count (0 = uncapped).
	MaxBatches int
	// Algos restricts the algorithm axis (nil = summa, cola, innerabc).
	Algos []string
	// Replications restricts the 1.5D replication factors (nil = every c
	// with c² | p).
	Replications []int
	// Pipelines restricts the schedule dimension (nil = staged and
	// pipelined).
	Pipelines []bool
}

func (in DenseInput) withDefaults() DenseInput {
	if in.Iterations < 1 {
		in.Iterations = 1
	}
	if in.BytesPerNnz == 0 {
		in.BytesPerNnz = spmat.BytesPerNonzero
	}
	if in.SecPerWork == 0 {
		in.SecPerWork = DefaultSecPerWork
	}
	if in.Machine.Name == "" {
		in.Machine = costmodel.CoriKNL()
	}
	if len(in.Algos) == 0 {
		in.Algos = DenseAlgos
	}
	if len(in.Pipelines) == 0 {
		in.Pipelines = []bool{false, true}
	}
	return in
}

// DenseConfig is one point of the sparse×dense configuration space.
type DenseConfig struct {
	// Algo is the algorithm family (DenseAlgoSUMMA, ...).
	Algo string
	// L is the SUMMA layer count (unused by the 1.5D algorithms).
	L int
	// C is the 1.5D replication factor (unused by SUMMA).
	C int
	// B is the batch count.
	B int
	// Pipeline selects the overlapped schedule.
	Pipeline bool
}

// String renders the config the way reports and flags spell it.
func (c DenseConfig) String() string {
	sched := "staged"
	if c.Pipeline {
		sched = "pipelined"
	}
	if c.Algo == DenseAlgoSUMMA {
		return c.Algo + " l=" + itoa(c.L) + " b=" + itoa(c.B) + " " + sched
	}
	return c.Algo + " c=" + itoa(c.C) + " b=" + itoa(c.B) + " " + sched
}

// DenseCandidate is one fully-evaluated sparse×dense configuration.
type DenseCandidate struct {
	DenseConfig
	// Steps is the per-step breakdown of a single run (one-time plus one
	// iteration), in Steps order.
	Steps []StepCost
	// OneTimeSeconds is the modeled cost paid once per sparse matrix: the
	// replication broadcasts of the stationary operand (plus InnerABC's
	// one-time column split). PerIterSeconds is everything paid per
	// iteration: shifts, reduction, and compute.
	OneTimeSeconds float64
	PerIterSeconds float64
	// CommSeconds, HiddenSeconds, WorkUnits aggregate the single-run Steps.
	CommSeconds   float64
	HiddenSeconds float64
	WorkUnits     int64
	// ModelSeconds is the ranking objective:
	// OneTimeSeconds + Iterations·PerIterSeconds.
	ModelSeconds float64
	// PeakMemBytesPerRank is the predicted per-rank memory high-water mark.
	PeakMemBytesPerRank int64
	// Feasible is false when the configuration cannot run under the budget.
	Feasible bool
	// Note carries the infeasibility reason, if any.
	Note string
}

// Step returns the named step's cost (zero value if absent).
func (c *DenseCandidate) Step(name string) StepCost {
	for _, s := range c.Steps {
		if s.Step == name {
			return s
		}
	}
	return StepCost{}
}

// DensePlan is the ranked outcome of a sparse×dense planning run.
type DensePlan struct {
	// In echoes the (defaulted) inputs.
	In DenseInput
	// D is the dense panel width the plan was made for.
	D int32
	// Candidates holds every evaluated configuration, best first.
	Candidates []DenseCandidate
	// SUMMA is the sparse plan behind the densified arm (nil when the arm
	// was excluded or the panel was too large to densify for planning).
	SUMMA *Plan

	a     *spmat.CSC
	stats map[int]*denseStats
}

// ReplicationsFor returns every replication factor c for which p ranks form
// a valid 1.5D grid (c² | p), ascending. c = 1 (the pure ring algorithm) is
// always included.
func ReplicationsFor(p int) []int {
	var out []int
	for c := 1; c <= p; c++ {
		if grid.Valid15(p, c) == nil {
			out = append(out, c)
		}
	}
	return out
}

// densifyLimit caps the pattern the SUMMA arm may materialize: beyond this
// many entries the arm is skipped with a note instead of burning planning
// time on a matrix the runtime would not want to densify anyway.
const densifyLimit = 1 << 24

// NewDense evaluates the sparse×dense configuration space for C = A·B where
// B is a dense n×d panel, returning the ranked plan. Deterministic, like New.
func NewDense(a *spmat.CSC, d int32, in DenseInput) (*DensePlan, error) {
	in = in.withDefaults()
	if in.P <= 0 {
		return nil, fmt.Errorf("planner: rank count %d", in.P)
	}
	if d < 0 {
		return nil, fmt.Errorf("planner: dense width %d", d)
	}
	pl := &DensePlan{In: in, D: d, a: a, stats: make(map[int]*denseStats)}
	reps := in.Replications
	if len(reps) == 0 {
		reps = ReplicationsFor(in.P)
	}
	for _, algo := range in.Algos {
		switch algo {
		case DenseAlgoSUMMA:
			pl.addSUMMA(a, d, in)
		case DenseAlgoColA, DenseAlgoInnerABC:
			for _, c := range reps {
				if err := grid.Valid15(in.P, c); err != nil {
					return nil, fmt.Errorf("planner: replication %d: %w", c, err)
				}
				staged := pl.predict15(algo, c, 0, false)
				for _, pipe := range in.Pipelines {
					if !pipe {
						pl.Candidates = append(pl.Candidates, staged)
					} else if staged.Feasible {
						pl.Candidates = append(pl.Candidates, pl.predict15(algo, c, staged.B, true))
					}
				}
			}
		default:
			return nil, fmt.Errorf("planner: unknown dense algorithm %q", algo)
		}
	}
	algoRank := map[string]int{DenseAlgoSUMMA: 0, DenseAlgoColA: 1, DenseAlgoInnerABC: 2}
	sort.SliceStable(pl.Candidates, func(x, y int) bool {
		cx, cy := &pl.Candidates[x], &pl.Candidates[y]
		if cx.Feasible != cy.Feasible {
			return cx.Feasible
		}
		if cx.ModelSeconds != cy.ModelSeconds {
			return cx.ModelSeconds < cy.ModelSeconds
		}
		if algoRank[cx.Algo] != algoRank[cy.Algo] {
			return algoRank[cx.Algo] < algoRank[cy.Algo]
		}
		if cx.C != cy.C {
			return cx.C < cy.C
		}
		if cx.B != cy.B {
			return cx.B < cy.B
		}
		return !cx.Pipeline && cy.Pipeline
	})
	return pl, nil
}

// Best returns the top-ranked feasible candidate, or nil.
func (pl *DensePlan) Best() *DenseCandidate {
	if len(pl.Candidates) == 0 || !pl.Candidates[0].Feasible {
		return nil
	}
	return &pl.Candidates[0]
}

// Evaluate predicts one explicit sparse×dense configuration, pinning its
// batch count (cfg.B ≤ 0 induces). Tests and the oracle sweep use it.
func (pl *DensePlan) Evaluate(cfg DenseConfig) (DenseCandidate, error) {
	switch cfg.Algo {
	case DenseAlgoColA, DenseAlgoInnerABC:
		if err := grid.Valid15(pl.In.P, cfg.C); err != nil {
			return DenseCandidate{}, err
		}
		return pl.predict15(cfg.Algo, cfg.C, cfg.B, cfg.Pipeline), nil
	case DenseAlgoSUMMA:
		if pl.SUMMA == nil {
			return DenseCandidate{}, fmt.Errorf("planner: the SUMMA arm was not enumerated")
		}
		sc, err := pl.SUMMA.Evaluate(Config{L: cfg.L, B: cfg.B, Format: spmat.FormatAuto, Pipeline: cfg.Pipeline})
		if err != nil {
			return DenseCandidate{}, err
		}
		return pl.wrapSUMMA(sc), nil
	}
	return DenseCandidate{}, fmt.Errorf("planner: unknown dense algorithm %q", cfg.Algo)
}

// addSUMMA runs the sparse planner on the densified panel pattern and adopts
// its best candidate as the SUMMA arm.
func (pl *DensePlan) addSUMMA(a *spmat.CSC, d int32, in DenseInput) {
	if int64(a.Cols)*int64(d) > densifyLimit {
		pl.Candidates = append(pl.Candidates, DenseCandidate{
			DenseConfig: DenseConfig{Algo: DenseAlgoSUMMA, L: 1, B: 1},
			Feasible:    false,
			Note:        "panel too large to densify for planning",
		})
		return
	}
	sp, err := New(a, denseOnesCSC(a.Cols, d), Input{
		P: in.P, MemBytes: in.MemBytes, Machine: in.Machine,
		BytesPerNnz: in.BytesPerNnz, SecPerWork: in.SecPerWork,
		MaxBatches: in.MaxBatches, Pipelines: in.Pipelines,
	})
	if err != nil {
		pl.Candidates = append(pl.Candidates, DenseCandidate{
			DenseConfig: DenseConfig{Algo: DenseAlgoSUMMA, L: 1, B: 1},
			Feasible:    false,
			Note:        "sparse planner: " + err.Error(),
		})
		return
	}
	pl.SUMMA = sp
	if len(sp.Candidates) > 0 {
		pl.Candidates = append(pl.Candidates, pl.wrapSUMMA(sp.Candidates[0]))
	}
}

// wrapSUMMA maps a sparse-planner candidate onto the dense axis. SUMMA has
// no amortizable one-time share in the runtime — it re-broadcasts the sparse
// matrix every pass — so the whole cost is per-iteration.
func (pl *DensePlan) wrapSUMMA(sc Candidate) DenseCandidate {
	return DenseCandidate{
		DenseConfig:         DenseConfig{Algo: DenseAlgoSUMMA, L: sc.L, B: sc.B, Pipeline: sc.Pipeline},
		Steps:               sc.Steps,
		PerIterSeconds:      sc.ModelSeconds,
		CommSeconds:         sc.CommSeconds,
		HiddenSeconds:       sc.HiddenSeconds,
		WorkUnits:           sc.WorkUnits,
		ModelSeconds:        float64(pl.In.Iterations) * sc.ModelSeconds,
		PeakMemBytesPerRank: sc.PeakMemBytesPerRank,
		Feasible:            sc.Feasible,
		Note:                sc.Note,
	}
}

// denseOnesCSC builds the all-ones pattern the runtime's ToCSC of a dense
// panel produces (every column full).
func denseOnesCSC(rows, cols int32) *spmat.CSC {
	nnz := int64(rows) * int64(cols)
	m := &spmat.CSC{
		Rows: rows, Cols: cols,
		ColPtr:     make([]int64, cols+1),
		RowIdx:     make([]int32, nnz),
		Val:        make([]float64, nnz),
		SortedCols: true,
	}
	for j := int32(0); j < cols; j++ {
		m.ColPtr[j+1] = int64(j+1) * int64(rows)
		base := int64(j) * int64(rows)
		for i := int32(0); i < rows; i++ {
			m.RowIdx[base+int64(i)] = i
			m.Val[base+int64(i)] = 1
		}
	}
	return m
}

// denseStats holds the exact per-block statistics of A on an s-position ring:
// block-columns (the ColA moving operand / InnerABC inner blocks) and
// block-rows (the InnerABC stationary operand).
type denseStats struct {
	s                    int
	colBounds, rowBounds []int32
	colNNZ, colNE        []int64
	colWire              []int64
	rowNNZ, rowNE        []int64
	rowWire              []int64
}

func (pl *DensePlan) statsFor(s int) *denseStats {
	if st, ok := pl.stats[s]; ok {
		return st
	}
	a := pl.a
	st := &denseStats{
		s:         s,
		colBounds: spmat.PartBounds(a.Cols, s),
		rowBounds: spmat.PartBounds(a.Rows, s),
		colNNZ:    make([]int64, s), colNE: make([]int64, s), colWire: make([]int64, s),
		rowNNZ: make([]int64, s), rowNE: make([]int64, s), rowWire: make([]int64, s),
	}
	for i := 0; i < s; i++ {
		lo, hi := st.colBounds[i], st.colBounds[i+1]
		st.colNNZ[i] = a.ColPtr[hi] - a.ColPtr[lo]
		for j := lo; j < hi; j++ {
			if a.ColPtr[j+1] > a.ColPtr[j] {
				st.colNE[i]++
			}
		}
		st.colWire[i] = spmat.WireBytesFor(hi-lo, st.colNE[i], st.colNNZ[i])
	}
	// Row-block nnz and occupied-column counts in one pass: a column is
	// occupied in row block i when it has at least one entry there.
	stamp := make([]int32, s)
	for j := int32(0); j < a.Cols; j++ {
		for e := a.ColPtr[j]; e < a.ColPtr[j+1]; e++ {
			blk := partIndex(st.rowBounds, a.RowIdx[e])
			st.rowNNZ[blk]++
			if stamp[blk] != j+1 {
				stamp[blk] = j + 1
				st.rowNE[blk]++
			}
		}
	}
	for i := 0; i < s; i++ {
		st.rowWire[i] = spmat.WireBytesFor(a.Cols, st.rowNE[i], st.rowNNZ[i])
	}
	pl.stats[s] = st
	return st
}

// boundsMaxWidth returns the widest part of a PartBounds split.
func boundsMaxWidth(b []int32) int32 {
	var w int32
	for i := 0; i+1 < len(b); i++ {
		if d := b[i+1] - b[i]; d > w {
			w = d
		}
	}
	return w
}

// memModel15 is the flat footprint of a sparse block under the auto format
// heuristic — the same spmat.MemBytesModel accounting the runtime's
// MemBytes() reports.
func memModel15(cols int32, ne, nnz, r int64) int64 {
	f := spmat.FormatCSC
	if spmat.Hypersparse(ne, cols) {
		f = spmat.FormatDCSC
	}
	return spmat.MemBytesModel(f, nnz, ne, r)
}

// predict15 evaluates one 1.5D configuration. forceB ≤ 0 induces the batch
// count from the memory budget; pipe derives the overlapped schedule. The
// comm terms replay the runtime's collectives per rank and take the maximum
// — the same per-step critical-path aggregation mpi.Summarize reports.
func (pl *DensePlan) predict15(algo string, c, forceB int, pipe bool) DenseCandidate {
	in := pl.In
	a := pl.a
	p := in.P
	s := p / c
	R := s / c
	st := pl.statsFor(s)
	cm := mpi.CostModel{AlphaSec: in.Machine.AlphaSec, BetaSecPerByte: in.Machine.BetaSecPerByte}
	cs := in.Machine.CommScale
	rate := in.SecPerWork
	rBytes := in.BytesPerNnz
	d := pl.D
	nnz := a.ColPtr[a.Cols]

	// Shapes the memory model needs.
	var maxBlkMem int64 // ColA: widest A block-column footprint
	for i := 0; i < s; i++ {
		if m := memModel15(st.colBounds[i+1]-st.colBounds[i], st.colNE[i], st.colNNZ[i], rBytes); m > maxBlkMem {
			maxBlkMem = m
		}
	}
	var maxRowMem int64 // InnerABC: heaviest A block-row footprint
	for i := 0; i < s; i++ {
		if m := memModel15(a.Cols, st.rowNE[i], st.rowNNZ[i], rBytes); m > maxRowMem {
			maxRowMem = m
		}
	}
	dBounds := spmat.PartBounds(d, s)
	maxPanelW := boundsMaxWidth(dBounds)         // ColA: widest B/C column panel
	maxInnerRows := boundsMaxWidth(st.colBounds) // InnerABC: tallest B block
	maxRowsJ := boundsMaxWidth(st.rowBounds)     // InnerABC: tallest C panel

	mul := int64(1)
	if pipe && R > 1 {
		mul = 2 // the posted shift keeps two moving blocks live
	}
	peakFor := func(b int) int64 {
		var live, reduce int64
		switch algo {
		case DenseAlgoColA:
			piece := (maxPanelW + int32(b) - 1) / int32(b)
			acc := spmat.DenseMemBytes(a.Rows, piece)
			live = mul*maxBlkMem + spmat.DenseMemBytes(a.Rows, maxPanelW) + acc
			reduce = int64(c+2) * acc
		default: // InnerABC
			piece := (d + int32(b) - 1) / int32(b)
			acc := spmat.DenseMemBytes(maxRowsJ, piece)
			live = maxRowMem + mul*spmat.DenseMemBytes(maxInnerRows, piece) + acc
			reduce = int64(c+2) * acc
		}
		if reduce > live && c > 1 {
			return reduce
		}
		return live
	}

	cand := DenseCandidate{
		DenseConfig: DenseConfig{Algo: algo, C: c, Pipeline: pipe},
		Feasible:    true,
	}

	// Batch decision: the smallest b whose modeled peak fits the per-rank
	// share of the budget. The runtime only obeys ForceBatches, so the
	// planner is the authority here.
	maxB := int(d)
	if maxB < 1 {
		maxB = 1
	}
	if in.MaxBatches > 0 && maxB > in.MaxBatches {
		maxB = in.MaxBatches
	}
	b := forceB
	if b <= 0 {
		b = 1
		if in.MemBytes > 0 {
			budget := in.MemBytes / int64(p)
			for b < maxB && peakFor(b) > budget {
				b++
			}
		}
	}
	cand.B = b
	cand.PeakMemBytesPerRank = peakFor(b)
	if in.MemBytes > 0 && cand.PeakMemBytesPerRank > in.MemBytes/int64(p) {
		cand.Feasible = false
		cand.Note = "modeled peak does not fit the per-process budget in " + itoa(b) + " batches"
	}

	// Per-rank communication walks, exactly the runtime's collectives.
	agCost := func(wire int64) float64 { // fiber allgather of one dense partial
		if c <= 1 {
			return 0
		}
		return cm.AllreduceCost(c, 0) + cm.BetaSecPerByte*float64(int64(c)*wire)
	}
	// maxAStep/maxBStep track the per-rank *sums* the meters aggregate (max
	// over ranks of each rank's step total); the component maxima feed the
	// one-time split and the overlap model.
	var maxOneA, maxShiftRound, maxShiftB, maxOneB, maxAStep, maxBStep, maxFiber float64
	for k := 0; k < c; k++ {
		for j := 0; j < s; j++ {
			start := (j + k*R) % s
			switch algo {
			case DenseAlgoColA:
				oneA := cs * cm.BcastCost(c, st.colWire[start])
				var round float64
				for r := 1; r < R; r++ {
					round += cm.ShiftCost(s, st.colWire[(start+r)%s])
				}
				round *= float64(b)
				rewind := float64(b-1) * cm.ShiftCost(s, st.colWire[start])
				round *= cs
				rewind *= cs
				pieces := spmat.PartBounds(dBounds[j+1]-dBounds[j], b)
				var oneB, fiber float64
				for t := 0; t < b; t++ {
					wire := spmat.DenseWireBytesFor(a.Rows, pieces[t+1]-pieces[t])
					oneB += cm.BcastCost(c, wire)
					fiber += agCost(wire)
				}
				oneB *= cs
				fiber *= cs
				if oneA > maxOneA {
					maxOneA = oneA
				}
				if round > maxShiftRound {
					maxShiftRound = round
				}
				if oneA+round+rewind > maxAStep {
					maxAStep = oneA + round + rewind
				}
				if oneB > maxOneB {
					maxOneB = oneB
				}
				if oneB > maxBStep {
					maxBStep = oneB
				}
				if fiber > maxFiber {
					maxFiber = fiber
				}
			default: // InnerABC
				oneA := cs * cm.BcastCost(c, st.rowWire[j])
				dPieces := spmat.PartBounds(d, b)
				var skew, shift, fiber float64
				for t := 0; t < b; t++ {
					pw := dPieces[t+1] - dPieces[t]
					skew += cm.BcastCost(c, spmat.DenseWireBytesFor(st.colBounds[start+1]-st.colBounds[start], pw))
					for r := 1; r < R; r++ {
						blk := (start + r) % s
						shift += cm.ShiftCost(s, spmat.DenseWireBytesFor(st.colBounds[blk+1]-st.colBounds[blk], pw))
					}
					fiber += agCost(spmat.DenseWireBytesFor(st.rowBounds[j+1]-st.rowBounds[j], pw))
				}
				skew *= cs
				shift *= cs
				fiber *= cs
				if oneA > maxOneA {
					maxOneA = oneA
				}
				if oneA > maxAStep {
					maxAStep = oneA
				}
				if shift > maxShiftB {
					maxShiftB = shift
				}
				if skew+shift > maxBStep {
					maxBStep = skew + shift
				}
				if fiber > maxFiber {
					maxFiber = fiber
				}
			}
		}
	}

	// Work units, matching the meters' accounting (flops plus one unit per
	// measured call).
	n64, d64, p64, b64 := int64(a.Rows), int64(d), int64(p), int64(b)
	c64 := int64(c)
	multWork := nnz*d64 + p64*int64(R)*b64
	var mergeLayerWork, mergeFiberWork int64
	if algo == DenseAlgoInnerABC {
		mergeLayerWork = c64*nnz + p64*int64(a.Cols) + p64
	}
	// Fiber reduction: per rank per batch, c·(panel elements)+1 summed
	// entries. Either algorithm's panels tile one full n×d product per
	// layer, so the all-rank total is c²·n·d regardless of which dimension
	// was partitioned. The b>1 term is the final HCat packing.
	if c > 1 {
		mergeFiberWork = c64*c64*n64*d64 + p64*b64
	}
	if b > 1 {
		mergeFiberWork += c64*n64*d64 + p64
	}

	// Assemble the steps. A single run = one-time + one iteration.
	aStep := StepCost{Step: StepABcast, CommSeconds: maxAStep}
	bStep := StepCost{Step: StepBBcast, CommSeconds: maxBStep}
	steps := []StepCost{
		aStep,
		bStep,
		{Step: StepLocalMult, WorkUnits: multWork},
	}
	if mergeLayerWork > 0 {
		steps = append(steps, StepCost{Step: StepMergeLayer, WorkUnits: mergeLayerWork})
	}
	steps = append(steps,
		StepCost{Step: StepAllToAll, CommSeconds: maxFiber},
		StepCost{Step: StepMergeFiber, WorkUnits: mergeFiberWork},
	)

	// Overlap: the pipelined schedules post each ring shift before the
	// multiply it rides behind; per window the hidden share is
	// min(window comm, window compute), the ledger model.
	var hidden float64
	if pipe && R > 1 {
		windows := float64(b * (R - 1))
		shiftComm := maxShiftRound
		if algo == DenseAlgoInnerABC {
			shiftComm = maxShiftB
		}
		perComp := float64(multWork) * rate / float64(p) / float64(b*R)
		hidden = windows * minf(shiftComm/windows, perComp)
		for i := range steps {
			hideStep := StepABcast
			if algo == DenseAlgoInnerABC {
				hideStep = StepBBcast
			}
			if steps[i].Step == hideStep {
				steps[i].CommSeconds -= hidden
				steps[i].HiddenSeconds = hidden
			}
		}
	}

	cand.Steps = steps
	for _, sc := range steps {
		cand.CommSeconds += sc.CommSeconds
		cand.HiddenSeconds += sc.HiddenSeconds
		cand.WorkUnits += sc.WorkUnits
	}

	// One-time vs per-iteration split. ColA's stationary panel broadcast is
	// one-time because chained iterations leave the reduced C panel
	// replicated on every layer — exactly where the next B panel must be;
	// InnerABC amortizes the sparse replication and its column split but
	// re-distributes the fresh dense panel every pass.
	switch algo {
	case DenseAlgoColA:
		cand.OneTimeSeconds = maxOneA + maxOneB
	default:
		cand.OneTimeSeconds = maxOneA + float64(mergeLayerWork)*rate
	}
	cand.PerIterSeconds = cand.CommSeconds + float64(cand.WorkUnits)*rate - cand.OneTimeSeconds
	if cand.PerIterSeconds < 0 {
		cand.PerIterSeconds = 0
	}
	cand.ModelSeconds = cand.OneTimeSeconds + float64(in.Iterations)*cand.PerIterSeconds
	return cand
}
