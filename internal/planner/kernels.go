package planner

import (
	"repro/internal/costmodel"
)

// Plan-time kernel and merger selection: every candidate configuration is
// priced against the kernel cost table (Input.Kernels, or the built-in
// defaults) over the same aggregates the runtime meters — exact flops and
// scanned columns for the multiply kernels, merged entries and scanned
// columns for the merge strategies — and the cheapest option is recorded on
// the candidate. The selection never moves ModelSeconds: metered work units
// are kernel-independent by design, so the perf gate's numbers cannot shift
// with the speed knob. What the selection feeds is execution (ApplyChoice
// sets Options.Kernel/Merger) and the kernelsel CI gate, which audits the
// pick against an exhaustive kernel×merger oracle.

// kernelNames and mergerNames fix the deterministic sweep order (ties keep
// the earlier name, so the paper's defaults win exact draws).
var kernelNames = []string{
	costmodel.KernelNameHash, costmodel.KernelNameHeap, costmodel.KernelNameHybrid,
}
var mergerNames = []string{costmodel.MergerNameHash, costmodel.MergerNameHeap}

// selectKernels fills cand.Kernel/Merger and the per-option sweeps.
//
// mulCols is the multiply kernels' total scanned columns (q ranks scan each
// received batch piece); mergeEntries and mergeCols aggregate both merge
// sites (Merge-Layer's unmerged stage products over the piece scans, plus
// Merge-Fiber's per-layer entries over the destination piece scans).
//
// The fixed kernels are priced on the aggregates directly — a linear model
// makes Σ per-stage predictions equal the prediction of the Σ. The hybrid
// kernel's advantage is per-column regime mixing, invisible to aggregates,
// so it is priced from the sampled per-column flop distribution: each
// sampled column's flops spread over the mean scans-per-column, priced at
// the better regime for that density, plus the dispatch overhead per scan.
func (pl *Plan) selectKernels(cand *Candidate, mulCols, mergeEntries, mergeCols int64) {
	kt, pr := pl.In.Kernels, pl.Probe

	kernels := make(map[string]float64, len(kernelNames))
	for _, name := range kernelNames {
		if name == costmodel.KernelNameHybrid {
			continue
		}
		kernels[name] = kt.Predict(name, pr.Flops, mulCols)
	}
	hybrid, heapCols, hashCols := pl.hybridEstimate(mulCols)
	kernels[costmodel.KernelNameHybrid] = hybrid
	cand.KernelSeconds = kernels
	cand.RegimeHeapCols, cand.RegimeHashCols = heapCols, hashCols
	cand.Kernel = argminName(kernelNames, kernels)

	mergers := make(map[string]float64, len(mergerNames))
	for _, name := range mergerNames {
		mergers[name] = kt.Predict(name, mergeEntries, mergeCols)
	}
	cand.MergerSeconds = mergers
	cand.Merger = argminName(mergerNames, mergers)
}

// hybridEstimate prices the hybrid kernel from the sampled per-column flop
// distribution and counts the sampled columns per regime. With no sample (an
// empty B) it degrades to the aggregate minimum plus dispatch — the same
// value costmodel's block-level derivation gives.
func (pl *Plan) hybridEstimate(mulCols int64) (sec float64, heapCols, hashCols int) {
	kt, pr := pl.In.Kernels, pl.Probe
	hash := kt.Coeffs(costmodel.KernelNameHash)
	heap := kt.Coeffs(costmodel.KernelNameHeap)
	dispatch := costmodel.HybridDispatchSecPerCol * float64(mulCols)
	if len(pr.sampleFlops) == 0 || pr.ColsB <= 0 || mulCols <= 0 {
		return minf(kt.Predict(costmodel.KernelNameHash, pr.Flops, mulCols),
			kt.Predict(costmodel.KernelNameHeap, pr.Flops, mulCols)) + dispatch, 0, 0
	}
	// Every B column is scanned the same number of times in expectation
	// (q ranks × l layers × its stage); the mean preserves the aggregate:
	// summing a fixed kernel over this split reproduces its aggregate
	// prediction exactly.
	scansPerCol := float64(mulCols) / float64(pr.ColsB)
	var total float64
	for _, f := range pr.sampleFlops {
		perScan := float64(f) / scansPerCol
		hashSec := hash.SecPerUnit*perScan + hash.SecPerCol
		heapSec := heap.SecPerUnit*perScan + heap.SecPerCol
		if heapSec < hashSec {
			heapCols++
			total += scansPerCol * heapSec
		} else {
			hashCols++
			total += scansPerCol * hashSec
		}
	}
	return pl.Probe.scale*total + dispatch, heapCols, hashCols
}

// argminName returns the cheapest name in sweep, first-wins on ties (names
// lists the deterministic order).
func argminName(names []string, sweep map[string]float64) string {
	best := names[0]
	for _, name := range names[1:] {
		if sweep[name] < sweep[best] {
			best = name
		}
	}
	return best
}
