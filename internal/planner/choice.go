package planner

import (
	"fmt"
	"strings"

	"repro/internal/mpi"
	"repro/internal/spmat"
)

// Choice is the serializable form of a planner decision: the winning
// configuration plus the two predictions callers act on (the ranking score
// and the per-rank memory reservation). A Choice is what a plan cache
// stores and what the serving API returns — it carries no pointers into the
// Plan that produced it, marshals to stable JSON, and converts back to a
// Config for execution.
type Choice struct {
	// L and B are the layer and batch counts. B echoes the planner's induced
	// batch count; under a memory budget the runtime re-derives the real
	// count with the distributed symbolic step, so B here is the prediction,
	// not a forced knob.
	L int `json:"layers"`
	B int `json:"batches"`
	// Format and SparseComm are the knobs' flag spellings ("csc", "auto", …).
	Format     string `json:"format"`
	Pipeline   bool   `json:"pipeline"`
	SparseComm string `json:"sparse_comm"`
	// Channels is k, the pipelined overlap channel count (0 means the
	// single-injection ledger; only k ≥ 2 is ever recorded, so choices
	// from older plans round-trip unchanged).
	Channels int `json:"channels,omitempty"`
	// Kernel and Merger are the plan-time selected Local-Multiply kernel
	// and merge strategy spellings. Empty on choices serialized by older
	// builds — execution then keeps the configured defaults.
	Kernel string `json:"kernel,omitempty"`
	Merger string `json:"merger,omitempty"`
	// ModelSeconds is the configuration's predicted modeled critical path —
	// the planner's ranking objective.
	ModelSeconds float64 `json:"model_seconds"`
	// PeakMemBytesPerRank is the predicted per-rank memory high-water mark;
	// an admission scheduler multiplies it by P for a job's reservation.
	PeakMemBytesPerRank int64 `json:"peak_mem_bytes_per_rank"`
}

// Choice converts a ranked candidate into its serializable form.
func (c *Candidate) Choice() Choice {
	return Choice{
		L:                   c.L,
		B:                   c.B,
		Format:              c.Format.String(),
		Pipeline:            c.Pipeline,
		SparseComm:          c.SparseComm.String(),
		Channels:            c.Channels,
		Kernel:              c.Kernel,
		Merger:              c.Merger,
		ModelSeconds:        c.ModelSeconds,
		PeakMemBytesPerRank: c.PeakMemBytesPerRank,
	}
}

// Config converts the choice back into an executable configuration,
// re-parsing the knob spellings (an error means the Choice was built or
// transported incorrectly, e.g. hand-edited JSON).
func (ch Choice) Config() (Config, error) {
	f, err := spmat.ParseFormat(ch.Format)
	if err != nil {
		return Config{}, fmt.Errorf("planner: choice format: %w", err)
	}
	sm, err := mpi.ParseSparseMode(ch.SparseComm)
	if err != nil {
		return Config{}, fmt.Errorf("planner: choice sparse comm: %w", err)
	}
	return Config{L: ch.L, B: ch.B, Format: f, Pipeline: ch.Pipeline, SparseComm: sm, Channels: ch.Channels}, nil
}

// String renders the choice the way Config does, plus the kernel pick and
// the score.
func (ch Choice) String() string {
	cfg, err := ch.Config()
	if err != nil {
		return fmt.Sprintf("invalid choice: %v", err)
	}
	s := cfg.String()
	if ch.Kernel != "" {
		s += " kernel=" + ch.Kernel
	}
	if ch.Merger != "" {
		s += " merger=" + ch.Merger
	}
	return fmt.Sprintf("%s (model %.3gs, peak %dB/rank)", s, ch.ModelSeconds, ch.PeakMemBytesPerRank)
}

// CacheKey renders a deterministic key for a planning decision: the operand
// fingerprints plus every Input knob that can change the ranking. Two calls
// with content-identical operands and identical knobs produce identical
// keys, so a cache hit is guaranteed to return the decision the planner
// would have made — the probe and the full candidate sweep can be skipped.
//
// The Input is canonicalized (withDefaults) before rendering, so an
// explicitly-passed default and an omitted field key identically.
func CacheKey(fpA, fpB string, in Input) string {
	in = in.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "a=%s|b=%s|p=%d|mem=%d", fpA, fpB, in.P, in.MemBytes)
	fmt.Fprintf(&b, "|m=%s,%g,%g,%g,%g", in.Machine.Name,
		in.Machine.AlphaSec, in.Machine.BetaSecPerByte, in.Machine.CommScale, in.Machine.ComputeScale)
	fmt.Fprintf(&b, "|r=%d|spw=%g|sym=%t|maxb=%d|sample=%d|imb=%g",
		in.BytesPerNnz, in.SecPerWork, in.Symbolic, in.MaxBatches, in.SampleCols, in.Imbalance)
	fmt.Fprintf(&b, "|l=%v", in.Layers)
	b.WriteString("|f=")
	for i, f := range in.Formats {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.String())
	}
	fmt.Fprintf(&b, "|pipe=%v", in.Pipelines)
	b.WriteString("|sc=")
	for i, sm := range in.SparseComms {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sm.String())
	}
	// The channel axis and the kernel-table coefficients both shape the
	// decision: a recalibrated table must not serve picks cached under the
	// old constants, so the table's fingerprint is part of the key (nil-safe
	// — a nil table fingerprints its defaults).
	fmt.Fprintf(&b, "|ch=%v|kt=%s", in.Channels, in.Kernels.Fingerprint())
	return b.String()
}
