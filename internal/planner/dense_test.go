package planner_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/planner"
	"repro/internal/spmat"
)

func randomPanel(t testing.TB, rows, cols int32, seed int64) *spmat.DenseMat {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := spmat.NewDense(rows, cols)
	for i := range d.Val {
		d.Val[i] = float64(rng.Intn(9) + 1)
	}
	return d
}

func measureDense(t *testing.T, a *spmat.CSC, b *spmat.DenseMat, cfg planner.DenseConfig, p int) *mpi.Summary {
	t.Helper()
	machine := testMachine()
	algo, err := core.ParseAlgo(cfg.Algo)
	if err != nil {
		t.Fatal(err)
	}
	rc := core.RunConfig{P: p, Cost: machine.Cost(), Opts: core.Options{
		Algo: algo, Replication: cfg.C, ForceBatches: cfg.B, Pipeline: cfg.Pipeline,
	}}
	_, _, sum, err := core.MultiplyDense(a, b, rc)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestDensePredictorAgainstMeters is the 1.5D mirror of
// TestPredictorsAgainstMeters: the planner replays the runtime's collectives
// with exact per-block wire sizes and exact work accounting, so for staged
// schedules every step's predicted communication and work must match the
// meters of a real MultiplyDense run essentially exactly.
func TestDensePredictorAgainstMeters(t *testing.T) {
	machine := testMachine()
	a := friendsterTiny()
	d := int32(8)
	b := randomPanel(t, a.Cols, d, 77)

	shapes := []struct {
		name string
		p    int
		cfg  planner.DenseConfig
	}{
		{"cola-p16-c2-b2", 16, planner.DenseConfig{Algo: planner.DenseAlgoColA, C: 2, B: 2}},
		{"cola-p8-c1-b1", 8, planner.DenseConfig{Algo: planner.DenseAlgoColA, C: 1, B: 1}},
		{"cola-p16-c4-b1", 16, planner.DenseConfig{Algo: planner.DenseAlgoColA, C: 4, B: 1}},
		{"inner-p16-c2-b2", 16, planner.DenseConfig{Algo: planner.DenseAlgoInnerABC, C: 2, B: 2}},
		{"inner-p9-c3-b2", 9, planner.DenseConfig{Algo: planner.DenseAlgoInnerABC, C: 3, B: 2}},
		{"inner-p16-c1-b3", 16, planner.DenseConfig{Algo: planner.DenseAlgoInnerABC, C: 1, B: 3}},
	}
	const tol = 1e-9
	commSteps := []string{planner.StepABcast, planner.StepBBcast, planner.StepAllToAll}
	workSteps := []string{planner.StepLocalMult, planner.StepMergeLayer, planner.StepMergeFiber}

	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			pl, err := planner.NewDense(a, d, planner.DenseInput{
				P: sh.p, Machine: machine, Algos: []string{sh.cfg.Algo},
			})
			if err != nil {
				t.Fatal(err)
			}
			pred, err := pl.Evaluate(sh.cfg)
			if err != nil {
				t.Fatal(err)
			}
			sum := measureDense(t, a, b, sh.cfg, sh.p)
			for _, step := range commSteps {
				got, want := pred.Step(step).CommSeconds, sum.Step(step).CommSeconds
				e := relErr(got, want)
				t.Logf("%-16s comm: predicted %.6g  measured %.6g  (err %.2g)", step, got, want, e)
				if e > tol {
					t.Errorf("%s predicted comm %.6g s, measured %.6g s", step, got, want)
				}
			}
			for _, step := range workSteps {
				got, want := pred.Step(step).WorkUnits, sum.Step(step).WorkUnits
				e := relErr(float64(got), float64(want))
				t.Logf("%-16s work: predicted %d  measured %d  (err %.2g)", step, got, want, e)
				if e > tol {
					t.Errorf("%s predicted work %d, measured %d", step, got, want)
				}
			}
		})
	}
}

// TestDensePlannerPicksColAOnTallSkinny is the anti-vacuity check on the
// algorithm axis: for a narrow dense panel (the iterated-SpMM regime the
// 1.5D algorithms target), densifying through SUMMA re-broadcasts the sparse
// matrix with 24-byte nonzeros and must lose to a 1.5D schedule. The planner
// must notice.
func TestDensePlannerPicksColAOnTallSkinny(t *testing.T) {
	a := friendsterTiny()
	pl, err := planner.NewDense(a, 4, planner.DenseInput{P: 16, Machine: testMachine()})
	if err != nil {
		t.Fatal(err)
	}
	best := pl.Best()
	if best == nil {
		t.Fatal("no feasible candidate")
	}
	t.Logf("best: %v (model %.3gs, one-time %.3gs, per-iter %.3gs)",
		best.DenseConfig, best.ModelSeconds, best.OneTimeSeconds, best.PerIterSeconds)
	if best.Algo == planner.DenseAlgoSUMMA {
		t.Errorf("planner picked SUMMA for a tall-skinny panel: %v", best.DenseConfig)
	}
	if pl.SUMMA == nil {
		t.Error("the SUMMA arm must still have been enumerated for comparison")
	}
}

// TestDenseIterationsAmortize: ModelSeconds must equal
// one-time + iterations × per-iteration, so replication-amortizing
// candidates gain exactly the modeled amount as iterations grow.
func TestDenseIterationsAmortize(t *testing.T) {
	a := friendsterTiny()
	cfg := planner.DenseConfig{Algo: planner.DenseAlgoInnerABC, C: 2, B: 1}
	var single planner.DenseCandidate
	for _, iters := range []int{1, 10} {
		pl, err := planner.NewDense(a, 8, planner.DenseInput{
			P: 16, Machine: testMachine(), Iterations: iters,
			Algos: []string{cfg.Algo},
		})
		if err != nil {
			t.Fatal(err)
		}
		cand, err := pl.Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cand.OneTimeSeconds <= 0 {
			t.Fatalf("InnerABC must have a one-time replication share, got %g", cand.OneTimeSeconds)
		}
		want := cand.OneTimeSeconds + float64(iters)*cand.PerIterSeconds
		if math.Abs(cand.ModelSeconds-want) > 1e-12*want {
			t.Errorf("iters=%d: ModelSeconds %g, want %g", iters, cand.ModelSeconds, want)
		}
		if iters == 1 {
			single = cand
		} else if cand.ModelSeconds >= 10*single.ModelSeconds {
			t.Errorf("10 iterations cost %g, not amortized below 10×%g", cand.ModelSeconds, single.ModelSeconds)
		}
	}
}

// TestDensePlanDeterministic: same inputs, same ranked plan.
func TestDensePlanDeterministic(t *testing.T) {
	a := kmersTiny()
	mk := func() *planner.DensePlan {
		pl, err := planner.NewDense(a, 8, planner.DenseInput{P: 16, Machine: testMachine()})
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	p1, p2 := mk(), mk()
	if len(p1.Candidates) != len(p2.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(p1.Candidates), len(p2.Candidates))
	}
	for i := range p1.Candidates {
		a, b := p1.Candidates[i], p2.Candidates[i]
		if a.DenseConfig != b.DenseConfig || a.ModelSeconds != b.ModelSeconds {
			t.Errorf("candidate %d differs: %v %g vs %v %g", i, a.DenseConfig, a.ModelSeconds, b.DenseConfig, b.ModelSeconds)
		}
	}
}

// TestReplicationsFor pins the c² | p rule.
func TestReplicationsFor(t *testing.T) {
	cases := map[int][]int{
		1:  {1},
		2:  {1},
		4:  {1, 2},
		8:  {1, 2},
		9:  {1, 3},
		16: {1, 2, 4},
		64: {1, 2, 4, 8},
	}
	for p, want := range cases {
		got := planner.ReplicationsFor(p)
		if len(got) != len(want) {
			t.Errorf("p=%d: %v, want %v", p, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("p=%d: %v, want %v", p, got, want)
				break
			}
		}
	}
}
