package planner

import (
	"fmt"
	"strings"
)

// Report renders the ranked plan for humans: the probe summary, the top
// candidates with their predicted objective, the best candidate's per-step
// breakdown, and a "why" section that quantifies what each knob of the
// chosen configuration is worth against the best alternative that differs in
// only that knob.
func (pl *Plan) Report() string {
	var sb strings.Builder
	in, pr := pl.In, pl.Probe

	fmt.Fprintf(&sb, "planner: p=%d on %s (α=%.3g s, β=%.3g s/B", in.P, in.Machine.Name,
		in.Machine.AlphaSec, in.Machine.BetaSecPerByte)
	if in.Machine.CommScale != 1 {
		fmt.Fprintf(&sb, ", comm×%.2f", in.Machine.CommScale)
	}
	sb.WriteString(")\n")
	if in.MemBytes > 0 {
		fmt.Fprintf(&sb, "memory budget: %.3g MB aggregate (%.3g MB per process)\n",
			float64(in.MemBytes)/1e6, float64(in.MemBytes)/1e6/float64(in.P))
	} else {
		sb.WriteString("memory budget: unconstrained (b = 1 everywhere)\n")
	}
	fmt.Fprintf(&sb, "probe: A %dx%d nnz=%d, B %dx%d nnz=%d, flops=%d, nnz(C)≈%d (symbolic sample: %d/%d cols)\n",
		pr.RowsA, pr.Inner, pr.NnzA, pr.Inner, pr.ColsB, pr.NnzB, pr.Flops, pr.NnzCEst,
		pr.SampledCols, pr.ColsB)

	sb.WriteString("\nranked configurations (modeled: per-rank exposed comm + total work at the pinned rate):\n")
	fmt.Fprintf(&sb, "  %-4s %-28s %12s %12s %12s %10s %12s\n",
		"rank", "config", "model s", "comm s", "hidden s", "work Mu", "peak MB/rank")
	show := len(pl.Candidates)
	if show > 10 {
		show = 10
	}
	for i := 0; i < show; i++ {
		c := &pl.Candidates[i]
		note := ""
		if !c.Feasible {
			note = "  INFEASIBLE: " + c.Note
		}
		fmt.Fprintf(&sb, "  %-4d %-28s %12.4g %12.4g %12.4g %10.3f %12.2f%s\n",
			i+1, c.Config.String(), c.ModelSeconds, c.CommSeconds, c.HiddenSeconds,
			float64(c.WorkUnits)/1e6, float64(c.PeakMemBytesPerRank)/1e6, note)
	}
	if len(pl.Candidates) > show {
		fmt.Fprintf(&sb, "  … %d more\n", len(pl.Candidates)-show)
	}

	best := pl.Best()
	if best == nil {
		sb.WriteString("\nno feasible configuration: the inputs alone exceed the per-process budget at every layer count\n")
		return sb.String()
	}

	fmt.Fprintf(&sb, "\nchosen: %s — predicted per-step breakdown:\n", best.Config.String())
	fmt.Fprintf(&sb, "  %-16s %12s %12s %12s\n", "step", "comm s", "hidden s", "work Mu")
	for _, s := range best.Steps {
		fmt.Fprintf(&sb, "  %-16s %12.4g %12.4g %12.3f\n",
			s.Step, s.CommSeconds, s.HiddenSeconds, float64(s.WorkUnits)/1e6)
	}

	if best.Kernel != "" {
		sb.WriteString("\nkernel selection (cost-table pricing of the chosen configuration's aggregates; speed only, never the ranking):\n")
		writeSweep := func(label, pick string, names []string, sweep map[string]float64) {
			for _, name := range names {
				mark := ""
				if name == pick {
					mark = "  ← chosen"
				}
				fmt.Fprintf(&sb, "  %-8s %-16s %12.4g s%s\n", label, name, sweep[name], mark)
				label = ""
			}
		}
		writeSweep("kernel", best.Kernel, kernelNames, best.KernelSeconds)
		writeSweep("merger", best.Merger, mergerNames, best.MergerSeconds)
		if n := best.RegimeHeapCols + best.RegimeHashCols; n > 0 {
			fmt.Fprintf(&sb, "  column regimes (of %d sampled): %d heap-favored (sparse columns), %d hash-favored (dense columns)\n",
				n, best.RegimeHeapCols, best.RegimeHashCols)
		}
	}

	sb.WriteString("\nwhy:\n")
	for _, why := range pl.whyLines(best) {
		sb.WriteString("  - " + why + "\n")
	}
	return sb.String()
}

// whyLines explains the chosen configuration knob by knob: for each
// dimension, the best candidate differing only there is located and the
// modeled delta stated.
func (pl *Plan) whyLines(best *Candidate) []string {
	var out []string
	alt := func(match func(c *Candidate) bool) *Candidate {
		for i := range pl.Candidates {
			c := &pl.Candidates[i]
			if c.Feasible && match(c) {
				return c
			}
		}
		return nil
	}
	rel := func(c *Candidate) string {
		if best.ModelSeconds <= 0 {
			return "n/a"
		}
		d := (c.ModelSeconds - best.ModelSeconds) / best.ModelSeconds
		return fmt.Sprintf("%+.1f%%", 100*d)
	}

	if c := alt(func(c *Candidate) bool {
		return c.L != best.L && c.Format == best.Format && c.Pipeline == best.Pipeline
	}); c != nil {
		out = append(out, fmt.Sprintf(
			"layers: l=%d beats l=%d (%s model s): A-broadcast bandwidth scales with b·nnz(A)/√(pl) while the fiber exchange grows with the per-layer unmerged volume — l=%d balances them best here (A-bcast %.4g s vs %.4g s, fiber %.4g s vs %.4g s)",
			best.L, c.L, rel(c), best.L,
			best.Step(StepABcast).CommSeconds, c.Step(StepABcast).CommSeconds,
			best.Step(StepAllToAll).CommSeconds, c.Step(StepAllToAll).CommSeconds))
	}
	if pl.In.MemBytes > 0 {
		out = append(out, fmt.Sprintf(
			"batches: b=%d is induced by the footprint model — ⌈r·maxnnz(C̃) / (M/p − mem(Ã)+mem(B̃))⌉ with the per-format block footprints, mirroring the distributed symbolic decision",
			best.B))
	} else {
		out = append(out, "batches: b=1 — memory is unconstrained, and batching only adds A-broadcast volume")
	}
	if c := alt(func(c *Candidate) bool {
		return c.L == best.L && c.Format != best.Format && c.Pipeline == best.Pipeline
	}); c != nil {
		out = append(out, fmt.Sprintf(
			"format: %s vs %s (%s model s): the knob moves the O(cols)-per-block column scans (work %d vs %d units) and the input footprints behind the batch decision, never bytes on the wire",
			best.Format, c.Format, rel(c), best.WorkUnits, c.WorkUnits))
	}
	if c := alt(func(c *Candidate) bool {
		return c.L == best.L && c.Format == best.Format && c.Pipeline != best.Pipeline
	}); c != nil {
		if best.Pipeline {
			out = append(out, fmt.Sprintf(
				"pipeline: overlapping hides %.4g s of broadcast/exchange cost behind compute (%s model s for the staged schedule) under the overlap-ledger model",
				best.HiddenSeconds, rel(c)))
		} else {
			out = append(out, fmt.Sprintf(
				"pipeline: staged — the ledger model predicts only %.4g s hideable here, not enough to change the ranking (%s model s when overlapped)",
				c.HiddenSeconds, rel(c)))
		}
	}
	if best.Pipeline {
		chOf := func(c *Candidate) int {
			if c.Channels < 1 {
				return 1
			}
			return c.Channels
		}
		if c := alt(func(c *Candidate) bool {
			return c.L == best.L && c.Format == best.Format && c.Pipeline && c.Channels != best.Channels
		}); c != nil {
			out = append(out, fmt.Sprintf(
				"channels: k=%d vs k=%d (%s model s): extra NIC channels let the A- and B-broadcast streams hide behind the same compute window instead of sharing one injection budget (hidden %.4g s vs %.4g s)",
				chOf(best), chOf(c), rel(c), best.HiddenSeconds, c.HiddenSeconds))
		}
	}
	return out
}
