package planner_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/genmat"
	"repro/internal/mpi"
	"repro/internal/planner"
	"repro/internal/spmat"
)

// testMachine mirrors the experiment harness: Cori-KNL constants with the
// tiny-scale β amplification, so comm/compute proportions match the gate.
func testMachine() costmodel.Machine {
	return costmodel.CoriKNL().ScaledBeta(32)
}

// friendsterTiny is the fig-6 gate workload (Friendster analogue, tiny
// scale): an R-MAT social network, symmetrically permuted.
func friendsterTiny() *spmat.CSC {
	return genmat.SymmetricPermute(genmat.RMAT(genmat.RMATConfig{
		Scale: 8, EdgeFactor: 10, Symmetrize: true, Seed: 102,
	}), 202)
}

// kmersTiny is the hypersparse Rice-kmers analogue (reads × k-mers, ~2 nnz
// per occupied column at the block level).
func kmersTiny() *spmat.CSC {
	reads := int32(1) << 7
	return genmat.Kmer(genmat.KmerConfig{
		Reads: reads, Kmers: reads * 64, KmersPerRead: 24, Overlap: 0.08, Seed: 106,
	})
}

// pairFor mirrors the experiments convention: A·A for square inputs, A·Aᵀ
// otherwise.
func pairFor(a *spmat.CSC) (*spmat.CSC, *spmat.CSC) {
	if a.Rows == a.Cols {
		return a, a
	}
	return a, spmat.Transpose(a)
}

// measure runs one staged configuration on the simulated cluster and returns
// the per-step metering summary.
func measure(t *testing.T, a, b *spmat.CSC, p, l, batches int, format spmat.Format, machine costmodel.Machine) *mpi.Summary {
	t.Helper()
	rc := core.RunConfig{
		P: p, L: l, Cost: machine.Cost(),
		Opts: core.Options{RunSymbolic: true, ForceBatches: batches, Format: format},
	}
	_, _, summary, err := core.Multiply(a, b, rc, nil)
	if err != nil {
		t.Fatal(err)
	}
	return summary
}

// relErr returns |got-want|/want (0 when both are 0).
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestPredictorsAgainstMeters is the per-step predictor unit test: for a
// dense-ish and a hypersparse workload, across formats and two grid shapes,
// every step's predicted communication and work units must agree with the
// meters of an actual staged run within the step's documented tolerance.
// Broadcast communication and the input-side work terms are modeled exactly
// (exact per-block occupancy through the shared wire/size formulas); the
// output-side steps go through the sampled probe's slice model and carry
// looser bounds.
func TestPredictorsAgainstMeters(t *testing.T) {
	machine := testMachine()
	type shape struct {
		name    string
		mat     *spmat.CSC
		p, l, b int
		format  spmat.Format
	}
	shapes := []shape{
		{"friendster-l16-b4-csc", friendsterTiny(), 64, 16, 4, spmat.FormatCSC},
		{"friendster-l4-b2-dcsc", friendsterTiny(), 64, 4, 2, spmat.FormatDCSC},
		{"kmers-l16-b2-dcsc", kmersTiny(), 64, 16, 2, spmat.FormatDCSC},
		{"kmers-l16-b2-auto", kmersTiny(), 64, 16, 2, spmat.FormatAuto},
	}
	// Per-step tolerances: exact (broadcast bytes, input-side work) vs
	// probe-modeled (merge volumes, fiber exchange).
	commTol := map[string]float64{
		planner.StepSymbolic: 1e-9, // exact: full-block broadcasts + allreduces
		planner.StepABcast:   1e-9, // exact: per-block wire bytes
		planner.StepBBcast:   0.10, // batch pieces modeled as even splits
		planner.StepAllToAll: 0.30, // probe slice model + occupancy estimate
	}
	workTol := map[string]float64{
		planner.StepSymbolic:   1e-9, // exact: flops + traversal terms
		planner.StepLocalMult:  1e-9, // exact: flops + traversal terms
		planner.StepMergeLayer: 0.25, // probe slice model
		planner.StepMergeFiber: 0.45, // probe slice model (within-column row skew)
	}

	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			a, b := pairFor(sh.mat)
			pl, err := planner.New(a, b, planner.Input{
				P: sh.p, Machine: machine, Symbolic: true, Layers: []int{sh.l},
			})
			if err != nil {
				t.Fatal(err)
			}
			pred, err := pl.Evaluate(planner.Config{L: sh.l, B: sh.b, Format: sh.format})
			if err != nil {
				t.Fatal(err)
			}
			sum := measure(t, a, b, sh.p, sh.l, sh.b, sh.format, machine)

			for _, step := range planner.Steps {
				got := pred.Step(step)
				want := sum.Step(step)
				if tol, ok := commTol[step]; ok {
					e := relErr(got.CommSeconds, want.CommSeconds)
					t.Logf("%-16s comm: predicted %.6g  measured %.6g  (err %.1f%%)",
						step, got.CommSeconds, want.CommSeconds, 100*e)
					if e > tol {
						t.Errorf("%s predicted comm %.6g s, measured %.6g s: error %.1f%% exceeds %.0f%%",
							step, got.CommSeconds, want.CommSeconds, 100*e, 100*tol)
					}
				}
				if tol, ok := workTol[step]; ok {
					e := relErr(float64(got.WorkUnits), float64(want.WorkUnits))
					t.Logf("%-16s work: predicted %d  measured %d  (err %.1f%%)",
						step, got.WorkUnits, want.WorkUnits, 100*e)
					if e > tol {
						t.Errorf("%s predicted work %d, measured %d: error %.1f%% exceeds %.0f%%",
							step, got.WorkUnits, want.WorkUnits, 100*e, 100*tol)
					}
				}
			}
		})
	}
}

// TestSparsePredictorAgainstMeters: the sparse-comm A-Broadcast prediction
// replays the runtime's per-stage subset decision from exact occupancy
// statistics, so it must match the meters byte-exactly — in auto and forced
// mode, with the symbolic pass supplying the supports and with the fallback
// Allgather doing it.
func TestSparsePredictorAgainstMeters(t *testing.T) {
	machine := testMachine()
	type shape struct {
		name     string
		mat      *spmat.CSC
		p, l, b  int
		format   spmat.Format
		mode     mpi.SparseMode
		symbolic bool
	}
	shapes := []shape{
		{"kmers-auto-symbolic", kmersTiny(), 64, 16, 2, spmat.FormatDCSC, mpi.SparseAuto, true},
		{"kmers-on-symbolic", kmersTiny(), 64, 16, 2, spmat.FormatDCSC, mpi.SparseOn, true},
		{"kmers-on-allgather", kmersTiny(), 64, 16, 2, spmat.FormatDCSC, mpi.SparseOn, false},
		{"friendster-auto-symbolic", friendsterTiny(), 64, 4, 2, spmat.FormatCSC, mpi.SparseAuto, true},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			a, b := pairFor(sh.mat)
			pl, err := planner.New(a, b, planner.Input{
				P: sh.p, Machine: machine, Symbolic: sh.symbolic, Layers: []int{sh.l},
			})
			if err != nil {
				t.Fatal(err)
			}
			pred, err := pl.Evaluate(planner.Config{L: sh.l, B: sh.b, Format: sh.format, SparseComm: sh.mode})
			if err != nil {
				t.Fatal(err)
			}
			rc := core.RunConfig{
				P: sh.p, L: sh.l, Cost: machine.Cost(),
				Opts: core.Options{
					RunSymbolic: sh.symbolic, ForceBatches: sh.b,
					Format: sh.format, SparseComm: sh.mode,
				},
			}
			_, _, sum, err := core.Multiply(a, b, rc, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := pred.Step(planner.StepABcast).CommSeconds
			want := sum.Step(planner.StepABcast).CommSeconds
			if e := relErr(got, want); e > 1e-9 {
				t.Errorf("sparse A-Broadcast predicted %.9g s, measured %.9g s (err %.3g)", got, want, e)
			}
			// The subset path must never predict above the full-block path
			// in auto mode (the decision only fires when it wins).
			if sh.mode == mpi.SparseAuto {
				full, err := pl.Evaluate(planner.Config{L: sh.l, B: sh.b, Format: sh.format})
				if err != nil {
					t.Fatal(err)
				}
				if got > full.Step(planner.StepABcast).CommSeconds*(1+1e-12) {
					t.Errorf("auto sparse A-Broadcast %.9g exceeds full-block %.9g",
						got, full.Step(planner.StepABcast).CommSeconds)
				}
			}
		})
	}
}

// TestLayersFor pins the valid-grid enumeration.
func TestLayersFor(t *testing.T) {
	got := planner.LayersFor(64)
	want := []int{1, 4, 16, 64}
	if len(got) != len(want) {
		t.Fatalf("LayersFor(64) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LayersFor(64) = %v, want %v", got, want)
		}
	}
	if got := planner.LayersFor(7); len(got) != 1 || got[0] != 7 {
		t.Fatalf("LayersFor(7) = %v, want [7]", got)
	}
}

// TestUnmergedEnvelope checks the slice model's analytic endpoints: at one
// slice it reproduces the merged output estimate, it never exceeds the flop
// count, and it is monotone in the slice count.
func TestUnmergedEnvelope(t *testing.T) {
	a, b := pairFor(friendsterTiny())
	pr, err := planner.ProbePair(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	u1 := pr.Unmerged(1)
	if e := relErr(u1, float64(pr.NnzCEst)); e > 0.01 {
		t.Errorf("Unmerged(1) = %.0f, want ≈ NnzCEst %d", u1, pr.NnzCEst)
	}
	prev := u1
	for _, s := range []int{2, 4, 16, 64, 1024} {
		u := pr.Unmerged(s)
		if u+1e-9 < prev {
			t.Errorf("Unmerged not monotone: U(%d) = %.0f < previous %.0f", s, u, prev)
		}
		if u > float64(pr.Flops)*(1+1e-9) {
			t.Errorf("Unmerged(%d) = %.0f exceeds flops %d", s, u, pr.Flops)
		}
		prev = u
	}
}

// TestProbeExactWhenFullySampled: sampling every column must reproduce the
// exact symbolic counts.
func TestProbeExactWhenFullySampled(t *testing.T) {
	a, b := pairFor(friendsterTiny())
	pr, err := planner.ProbePair(a, b, int(b.Cols))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for j := int32(0); j < b.Cols; j++ {
		// Exact distinct-row count per column via a reference merge.
		rows := map[int32]bool{}
		bRows, _ := b.Column(j)
		for _, r := range bRows {
			aRows, _ := a.Column(r)
			for _, ar := range aRows {
				rows[ar] = true
			}
		}
		want += int64(len(rows))
	}
	if pr.NnzCEst != want {
		t.Fatalf("fully sampled NnzCEst = %d, want %d", pr.NnzCEst, want)
	}
}

// TestPlanDeterministic: two independent plans over the same inputs must
// agree candidate by candidate, bit for bit.
func TestPlanDeterministic(t *testing.T) {
	a, b := pairFor(kmersTiny())
	in := planner.Input{P: 64, Machine: testMachine(), Symbolic: true, MemBytes: 64 << 20}
	p1, err := planner.New(a, b, in)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := planner.New(a, b, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Candidates) != len(p2.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(p1.Candidates), len(p2.Candidates))
	}
	for i := range p1.Candidates {
		c1, c2 := p1.Candidates[i], p2.Candidates[i]
		if c1.Config != c2.Config || c1.ModelSeconds != c2.ModelSeconds ||
			c1.WorkUnits != c2.WorkUnits || c1.CommSeconds != c2.CommSeconds {
			t.Fatalf("candidate %d differs between runs: %+v vs %+v", i, c1.Config, c2.Config)
		}
	}
}

// TestUnconstrainedPicksOneBatch: with no memory budget every candidate must
// carry b = 1 (batching exists for memory, not speed).
func TestUnconstrainedPicksOneBatch(t *testing.T) {
	a, b := pairFor(friendsterTiny())
	pl, err := planner.New(a, b, planner.Input{P: 64, Machine: testMachine(), Symbolic: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range pl.Candidates {
		if c.B != 1 {
			t.Errorf("unconstrained candidate %s has b = %d", c.Config, c.B)
		}
	}
	if best := pl.Best(); best == nil {
		t.Fatal("no feasible candidate without a budget")
	}
}

// TestBudgetInducesBatches: squeezing the budget must raise the induced
// batch count, and an impossibly small budget must make the space
// infeasible.
func TestBudgetInducesBatches(t *testing.T) {
	a, b := pairFor(friendsterTiny())
	in := planner.Input{P: 64, Machine: testMachine(), Symbolic: true, Layers: []int{16}, Formats: []spmat.Format{spmat.FormatCSC}, Pipelines: []bool{false}}

	wide := in
	wide.MemBytes = 1 << 40
	loose, err := planner.New(a, b, wide)
	if err != nil {
		t.Fatal(err)
	}
	tightIn := in
	// 40% of the aggregate b=1 high-water mark: comfortably above the input
	// floor, too small for the unmerged intermediate in one batch.
	tightIn.MemBytes = int64(0.4 * 64 * float64(loose.Best().PeakMemBytesPerRank))
	tight, err := planner.New(a, b, tightIn)
	if err != nil {
		t.Fatal(err)
	}
	lb, tb := loose.Best(), tight.Best()
	if lb == nil || tb == nil {
		t.Fatal("expected feasible candidates at both budgets")
	}
	if lb.B != 1 {
		t.Errorf("huge budget induced b = %d, want 1", lb.B)
	}
	if tb.B <= lb.B {
		t.Errorf("tight budget induced b = %d, not more than loose %d", tb.B, lb.B)
	}

	hopeless := in
	hopeless.MemBytes = 64 // bytes
	none, err := planner.New(a, b, hopeless)
	if err != nil {
		t.Fatal(err)
	}
	if none.Best() != nil {
		t.Error("64-byte budget produced a feasible candidate")
	}
}

// TestReportReadable sanity-checks the human-readable plan report.
func TestReportReadable(t *testing.T) {
	a, b := pairFor(kmersTiny())
	pl, err := planner.New(a, b, planner.Input{P: 64, Machine: testMachine(), Symbolic: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := pl.Report()
	for _, want := range []string{"ranked configurations", "chosen:", "why:", "probe:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if best := pl.Best(); best != nil && !strings.Contains(rep, best.Config.String()) {
		t.Errorf("report does not name the chosen config %q", best.Config.String())
	}
}
