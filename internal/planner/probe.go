package planner

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/spmat"
)

// Probe holds the cheap statistics the predictors work from: exact input
// shapes and flop count, plus a sampled per-column symbolic probe of the
// output. Probing costs O(nnz(B) + sampled flops) — independent of any
// candidate configuration — and is fully deterministic (stride sampling).
type Probe struct {
	// RowsA, Inner, ColsB are the global shapes: A is RowsA×Inner, B is
	// Inner×ColsB.
	RowsA, Inner, ColsB int32
	// NnzA and NnzB are the exact input nonzero counts.
	NnzA, NnzB int64
	// Flops is the exact multiplication count of A·B.
	Flops int64
	// SampledCols is how many B columns the symbolic probe visited.
	SampledCols int
	// NnzCEst estimates nnz(A·B) from the sample (exact when every column
	// was sampled).
	NnzCEst int64
	// NzcCEst estimates the non-empty output columns from the sample.
	NzcCEst int64

	// scale extrapolates sampled sums to all columns.
	scale float64
	// sampleFlops[k] and sampleNNZ[k] are the flop count and exact output
	// nonzeros of the k-th sampled column.
	sampleFlops []int64
	sampleNNZ   []int64
	// sampleColID[k] is the global B column of sample k and sampleRows[k]
	// its sorted distinct output rows — the sampled output structure the
	// per-grid imbalance estimate partitions.
	sampleColID []int32
	sampleRows  [][]int32
	// flopsByInner[r] is the exact flop count attributed to inner index r
	// (B's row-r entry count × nnz of A column r): the distribution that
	// decides how much work each (stage, layer) slice of the inner
	// dimension carries. Power-law inputs concentrate it on a few hub
	// indices, which is what makes layers unequal.
	flopsByInner []int64
}

// DefaultSampleCols is the probe's default symbolic sample size.
const DefaultSampleCols = 256

// ProbePair probes the pair (A, B), sampling at most sample columns of B for
// the symbolic estimate (0 means DefaultSampleCols). Sampling is a fixed
// stride over the column range, so the probe — and every decision derived
// from it — is deterministic.
func ProbePair(a, b *spmat.CSC, sample int) (*Probe, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("planner: inner dimension mismatch: A is %v, B is %v", a, b)
	}
	if sample <= 0 {
		sample = DefaultSampleCols
	}
	pr := &Probe{
		RowsA: a.Rows, Inner: a.Cols, ColsB: b.Cols,
		NnzA: a.NNZ(), NnzB: b.NNZ(),
	}
	cols := int(b.Cols)
	if sample > cols {
		sample = cols
	}
	pr.SampledCols = sample
	if sample > 0 {
		pr.scale = float64(cols) / float64(sample)
	} else {
		pr.scale = 1
	}

	// Exact flop count and its distribution over the inner dimension: one
	// pass over B's entries.
	pr.flopsByInner = make([]int64, a.Cols)
	b.EnumCols(func(_ int32, rows []int32, _ []float64) {
		for _, r := range rows {
			f := a.ColNNZ(r)
			pr.Flops += f
			pr.flopsByInner[r] += f
		}
	})

	// Sampled symbolic probe: exact per-column flops and distinct output
	// rows for a deterministic stride of columns.
	var scratch []int32
	var sumNNZ int64
	var occupied int64
	for k := 0; k < sample; k++ {
		j := int32(int64(k) * int64(cols) / int64(sample))
		bRows, _ := b.Column(j)
		var f int64
		scratch = scratch[:0]
		for _, r := range bRows {
			aRows, _ := a.Column(r)
			f += int64(len(aRows))
			scratch = append(scratch, aRows...)
		}
		sort.Slice(scratch, func(x, y int) bool { return scratch[x] < scratch[y] })
		distinct := make([]int32, 0, len(scratch))
		for x := range scratch {
			if x == 0 || scratch[x] != scratch[x-1] {
				distinct = append(distinct, scratch[x])
			}
		}
		c := int64(len(distinct))
		pr.sampleFlops = append(pr.sampleFlops, f)
		pr.sampleNNZ = append(pr.sampleNNZ, c)
		pr.sampleColID = append(pr.sampleColID, j)
		pr.sampleRows = append(pr.sampleRows, distinct)
		sumNNZ += c
		if c > 0 {
			occupied++
		}
	}
	pr.NnzCEst = int64(pr.scale * float64(sumNNZ))
	pr.NzcCEst = int64(pr.scale * float64(occupied))
	return pr, nil
}

// Unmerged estimates the total unmerged intermediate nonzeros Σ nnz(D̃) when
// the inner dimension is split into slices carrying equal flop shares — the
// uniform special case of UnmergedW, kept for envelope reasoning and tests.
func (pr *Probe) Unmerged(slices int) float64 {
	if slices < 1 {
		slices = 1
	}
	w := make([]float64, slices)
	for i := range w {
		w[i] = 1 / float64(slices)
	}
	total, _ := pr.UnmergedW(w)
	return total
}

// UnmergedW estimates the unmerged intermediate nonzeros when the inner
// dimension is split into len(weights) slices carrying the given flop
// shares (weights sum to 1; SliceWeights computes real ones), returning the
// total and the per-slice breakdown. This is the quantity behind Merge-Layer
// input (one slice per SUMMA stage per layer), the merged per-layer outputs
// and fiber exchange volume (one slice per layer), and nnz(C) itself (one
// slice).
//
// Per sampled column with f flops hitting c distinct output rows, a slice
// carrying share w of the flops holds c·(1−(1−1/c)^(f·w)) distinct rows in
// expectation (each flop a uniform draw over the c rows); the column's
// unmerged total is the sum over slices — exactly c for one slice and
// approaching f as slices shrink, the right endpoints by construction. The
// per-column total is clamped to the analytic envelope [c, f], rescaling
// slices proportionally.
func (pr *Probe) UnmergedW(weights []float64) (float64, []float64) {
	perSlice := make([]float64, len(weights))
	var total float64
	for k, f := range pr.sampleFlops {
		c := float64(pr.sampleNNZ[k])
		if c <= 0 {
			continue
		}
		fm := float64(f)
		var colTotal float64
		for s, w := range weights {
			u := c * (1 - math.Pow(1-1/c, fm*w))
			perSlice[s] += u // rescaled below if the column clamps
			colTotal += u
		}
		clamped := colTotal
		if clamped < c {
			clamped = c
		}
		if clamped > fm {
			clamped = fm
		}
		if colTotal > 0 && clamped != colTotal {
			adj := clamped/colTotal - 1
			for s, w := range weights {
				perSlice[s] += adj * c * (1 - math.Pow(1-1/c, fm*w))
			}
		}
		total += clamped
	}
	for s := range perSlice {
		perSlice[s] *= pr.scale
	}
	return pr.scale * total, perSlice
}

// SliceWeights returns the exact flop share of each of the q·l inner
// slices — the (stage, layer) partition of A's columns the 3D algorithm
// works in, flattened s·l+k. Uniform when the multiplication has no flops.
func (pr *Probe) SliceWeights(q, l int) []float64 {
	w := make([]float64, q*l)
	colB := spmat.PartBounds(pr.Inner, q)
	var total float64
	for s := 0; s < q; s++ {
		sb := spmat.PartBounds(colB[s+1]-colB[s], l)
		for k := 0; k < l; k++ {
			var sum int64
			for c := colB[s] + sb[k]; c < colB[s]+sb[k+1]; c++ {
				sum += pr.flopsByInner[c]
			}
			w[s*l+k] = float64(sum)
			total += float64(sum)
		}
	}
	if total == 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return w
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// LayerWeights folds SliceWeights over the stages: the flop share of each
// layer's slice of the inner dimension.
func (pr *Probe) LayerWeights(q, l int) []float64 {
	sw := pr.SliceWeights(q, l)
	w := make([]float64, l)
	for s := 0; s < q; s++ {
		for k := 0; k < l; k++ {
			w[k] += sw[s*l+k]
		}
	}
	return w
}

// outputImbalance estimates the max/mean ratio of the per-rank output
// volume on a q×q layer grid by partitioning the sampled output structure
// into the grid's (row block, column block) cells — the factor separating
// the fiber exchange's critical-path rank from the balanced mean on
// power-law outputs (hub rows concentrate merged entries on a few process
// rows). Returns 1 for q = 1 or an empty sample.
func (pr *Probe) outputImbalance(q int) float64 {
	if q <= 1 || len(pr.sampleRows) == 0 {
		return 1
	}
	rowB := spmat.PartBounds(pr.RowsA, q)
	colB := spmat.PartBounds(pr.ColsB, q)
	w := make([]float64, q*q)
	for k, rows := range pr.sampleRows {
		j := partIndex(colB, pr.sampleColID[k])
		for _, r := range rows {
			w[partIndex(rowB, r)*q+j]++
		}
	}
	var max, sum float64
	for _, v := range w {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 1
	}
	return max * float64(len(w)) / sum
}

// fiberOccupied estimates the occupied (row block, column) cells of the
// output on a q-way row partition — Σ over destination ranks of the occupied
// columns of their merged fiber piece, which is the column-scan work of an
// all-DCSC Merge-Fiber. Each sampled column contributes its count of distinct
// row blocks (its rows are sorted, so block transitions can be counted in one
// pass); the sampled sum extrapolates by the probe's column scale.
func (pr *Probe) fiberOccupied(q int) float64 {
	if q < 1 || len(pr.sampleRows) == 0 {
		return 0
	}
	rowB := spmat.PartBounds(pr.RowsA, q)
	var cells int64
	for _, rows := range pr.sampleRows {
		last := -1
		for _, r := range rows {
			if i := partIndex(rowB, r); i != last {
				cells++
				last = i
			}
		}
	}
	return pr.scale * float64(cells)
}

// gridStat holds the exact per-block statistics of one candidate q×q×l grid:
// nonzeros and occupied columns of every Ã and B̃ block, computed by one
// O(nnz·log q + cols) pass per operand over the same PartBounds partitions
// the distribution layer uses. These feed the byte-exact broadcast
// predictions and the per-format footprint maxima.
type gridStat struct {
	q, l int
	// A blocks indexed (i, s, k) → (i·q+s)·l + k: row block i, column block
	// s, layer slice k. aCols is per (s, k) → s·l + k (independent of i).
	aNNZ, aNE []int64
	aCols     []int32
	// B blocks indexed (i, j, k) → (i·q+j)·l + k: row block i sliced into
	// layer k, column block j. bCols is per j.
	bNNZ, bNE []int64
	bCols     []int32

	// Memoized slice-model outputs (format-independent, so the per-format
	// prediction loop computes them once per grid): the unmerged totals and
	// per-slice breakdowns for the q·l stage slices and the l layer slices.
	sliceModelDone        bool
	uQL, uL               float64
	perSliceQL, perLayerL []float64
	maxLayerQL, maxLayerL float64

	// Sparse-comm statistics (Plan.subsetStat, computed lazily — only
	// candidates with SparseComm != off pay for them): for A block (i, s, k)
	// and receiver column j, aSubNE/aSubNNZ[blockIdx(i,s,k)·q + j] are the
	// occupied-column count and entry count of the column subset receiver
	// (i, j, k) declares at stage s — the rows of B̃(s,j,k) — and
	// bRowSup[blockIdx(s,j,k)] is that support's size (the fallback
	// Allgather's payload length).
	subStatDone     bool
	aSubNE, aSubNNZ []int64
	bRowSup         []int64
}

// sliceModel fills the memoized probe-derived volumes.
func (gs *gridStat) sliceModel(pr *Probe) {
	if gs.sliceModelDone {
		return
	}
	gs.uQL, gs.perSliceQL = pr.UnmergedW(pr.SliceWeights(gs.q, gs.l))
	gs.uL, gs.perLayerL = pr.UnmergedW(pr.LayerWeights(gs.q, gs.l))
	for k := 0; k < gs.l; k++ {
		var s float64
		for st := 0; st < gs.q; st++ {
			s += gs.perSliceQL[st*gs.l+k]
		}
		if s > gs.maxLayerQL {
			gs.maxLayerQL = s
		}
		if gs.perLayerL[k] > gs.maxLayerL {
			gs.maxLayerL = gs.perLayerL[k]
		}
	}
	gs.sliceModelDone = true
}

// computeSubsetStat fills the sparse-comm statistics: exactly the quantities
// the runtime's subset path derives at run time. Receiver (i, j, k)'s stage-s
// column subset is the occupied-row set of B̃(s,j,k) — and because A's
// column slices align with B's row slices (distmat mirrors the PartBounds
// partitions), a global inner index r in that support touches global A
// column r. One pass over A buckets per-column entry counts by row block;
// one pass per receiver column j marks the touched inner indices and folds
// them into per-(A block, receiver) occupancy.
func computeSubsetStat(gs *gridStat, a, b *spmat.CSC) {
	if gs.subStatDone {
		return
	}
	q, l := gs.q, gs.l
	gs.aSubNE = make([]int64, q*q*l*q)
	gs.aSubNNZ = make([]int64, q*q*l*q)
	gs.bRowSup = make([]int64, q*q*l)

	// cnt[i·cols + c] = entries of A column c within row block i.
	aRowB := spmat.PartBounds(a.Rows, q)
	cols := int(a.Cols)
	cnt := make([]int64, q*cols)
	a.EnumCols(func(j int32, rows []int32, _ []float64) {
		for _, r := range rows {
			cnt[partIndex(aRowB, r)*cols+int(j)]++
		}
	})

	// layerOf[r] = the layer slice of inner index r within its row block —
	// a function of r alone, shared by every receiver.
	bRowB := spmat.PartBounds(b.Rows, q)
	layerOf := make([]int8, int(b.Rows))
	for s := 0; s < q; s++ {
		sb := spmat.PartBounds(bRowB[s+1]-bRowB[s], l)
		for k := 0; k < l; k++ {
			for r := bRowB[s] + sb[k]; r < bRowB[s]+sb[k+1]; r++ {
				layerOf[r] = int8(k)
			}
		}
	}

	bColB := spmat.PartBounds(b.Cols, q)
	touched := make([]bool, int(b.Rows))
	for j := 0; j < q; j++ {
		for i := range touched {
			touched[i] = false
		}
		for c := bColB[j]; c < bColB[j+1]; c++ {
			rows, _ := b.Column(c)
			for _, r := range rows {
				touched[r] = true
			}
		}
		for s := 0; s < q; s++ {
			for r := int(bRowB[s]); r < int(bRowB[s+1]); r++ {
				if !touched[r] {
					continue
				}
				k := int(layerOf[r])
				gs.bRowSup[gs.blockIdx(s, j, k)]++
				for i := 0; i < q; i++ {
					if n := cnt[i*cols+r]; n > 0 {
						idx := gs.blockIdx(i, s, k)*q + j
						gs.aSubNE[idx]++
						gs.aSubNNZ[idx] += n
					}
				}
			}
		}
	}
	gs.subStatDone = true
}

// blockIdx flattens (x, y, k) on a q×q×l grid.
func (gs *gridStat) blockIdx(x, y, k int) int { return (x*gs.q+y)*gs.l + k }

// partIndex returns the partition index of v under ascending bounds
// (PartBounds output), by binary search.
func partIndex(bounds []int32, v int32) int {
	return sort.Search(len(bounds)-1, func(i int) bool { return bounds[i+1] > v })
}

// computeGridStat measures the candidate grid's exact block occupancy.
func computeGridStat(a, b *spmat.CSC, q, l int) *gridStat {
	gs := &gridStat{
		q: q, l: l,
		aNNZ: make([]int64, q*q*l), aNE: make([]int64, q*q*l),
		aCols: make([]int32, q*l),
		bNNZ:  make([]int64, q*q*l), bNE: make([]int64, q*q*l),
		bCols: make([]int32, q),
	}

	// A side: rows into q blocks, columns into q blocks of l slices each.
	aRowB := spmat.PartBounds(a.Rows, q)
	aColB := spmat.PartBounds(a.Cols, q)
	// colSlice[c] = flattened (s, k) of column c.
	colSlice := make([]int32, a.Cols)
	for s := 0; s < q; s++ {
		c0, c1 := aColB[s], aColB[s+1]
		sb := spmat.PartBounds(c1-c0, l)
		for k := 0; k < l; k++ {
			gs.aCols[s*l+k] = sb[k+1] - sb[k]
			for c := c0 + sb[k]; c < c0+sb[k+1]; c++ {
				colSlice[c] = int32(s*l + k)
			}
		}
	}
	seen := make([]int32, q) // per-column row-block stamps
	stamp := int32(0)
	a.EnumCols(func(j int32, rows []int32, _ []float64) {
		stamp++
		sk := int(colSlice[j])
		for _, r := range rows {
			i := partIndex(aRowB, r)
			idx := (i*q+sk/l)*l + sk%l
			gs.aNNZ[idx]++
			if seen[i] != stamp {
				seen[i] = stamp
				gs.aNE[idx]++
			}
		}
	})

	// B side: columns into q blocks, rows into q blocks of l slices each.
	bColB := spmat.PartBounds(b.Cols, q)
	for j := 0; j < q; j++ {
		gs.bCols[j] = bColB[j+1] - bColB[j]
	}
	bRowB := spmat.PartBounds(b.Rows, q)
	// Per row block i, the l+1 inner slice bounds.
	innerB := make([][]int32, q)
	for i := 0; i < q; i++ {
		innerB[i] = spmat.PartBounds(bRowB[i+1]-bRowB[i], l)
	}
	seenIK := make([]int32, q*l)
	stamp = 0
	colOf := func(c int32) int { return partIndex(bColB, c) }
	b.EnumCols(func(c int32, rows []int32, _ []float64) {
		stamp++
		j := colOf(c)
		for _, r := range rows {
			i := partIndex(bRowB, r)
			k := partIndex(innerB[i], r-bRowB[i])
			idx := (i*q+j)*l + k
			gs.bNNZ[idx]++
			if ik := i*l + k; seenIK[ik] != stamp {
				seenIK[ik] = stamp
				gs.bNE[idx]++
			}
		}
	})
	return gs
}
