package planner

import (
	"math"

	"repro/internal/mpi"
	"repro/internal/spmat"
)

// Step names, matching the paper's legends and the core package's meter
// categories (the experiments layer asserts the two stay identical).
const (
	StepSymbolic   = "Symbolic"
	StepABcast     = "A-Broadcast"
	StepBBcast     = "B-Broadcast"
	StepLocalMult  = "Local-Multiply"
	StepMergeLayer = "Merge-Layer"
	StepAllToAll   = "AllToAll-Fiber"
	StepMergeFiber = "Merge-Fiber"
)

// Steps lists the seven step names in presentation order.
var Steps = []string{
	StepSymbolic, StepABcast, StepBBcast, StepLocalMult,
	StepMergeLayer, StepAllToAll, StepMergeFiber,
}

// Config is one point of the configuration space the planner ranks.
type Config struct {
	// L is the layer count; B the batch count.
	L, B int
	// Format is the in-memory block storage knob.
	Format spmat.Format
	// Pipeline selects the fully-overlapped schedule.
	Pipeline bool
	// SparseComm selects the column-subset A-broadcast path; the zero value
	// (off) models the historical full-block broadcasts.
	SparseComm mpi.SparseMode
	// Channels is k, the pipelined schedule's modeled NIC channel count.
	// Zero and one both mean the single-injection ledger (the zero value
	// keeps pre-knob configs comparable and their spellings unchanged);
	// only k ≥ 2 is ever recorded.
	Channels int
}

// String renders the config the way reports and flags spell it. The
// sparse-comm and channel suffixes appear only when the knobs are set, so
// pre-knob spellings are unchanged.
func (c Config) String() string {
	sched := "staged"
	if c.Pipeline {
		sched = "pipelined"
	}
	s := "l=" + itoa(c.L) + " b=" + itoa(c.B) + " " + c.Format.String() + " " + sched
	if c.SparseComm != mpi.SparseOff {
		s += " sparse=" + c.SparseComm.String()
	}
	if c.Channels >= 2 {
		s += " k=" + itoa(c.Channels)
	}
	return s
}

// StepCost is one step's predicted cost.
type StepCost struct {
	// Step names the paper step.
	Step string
	// CommSeconds is the predicted exposed modeled communication on the
	// critical-path rank.
	CommSeconds float64
	// HiddenSeconds is the communication the overlap-ledger model predicts
	// the pipelined schedule hides behind compute (zero when staged).
	HiddenSeconds float64
	// WorkUnits is the predicted total abstract local work across all ranks
	// (flops, scanned nonzeros, merged entries — the meters' accounting).
	WorkUnits int64
}

// Candidate is one fully-evaluated configuration.
type Candidate struct {
	Config
	// Steps is the per-step breakdown, in Steps order.
	Steps []StepCost
	// CommSeconds, HiddenSeconds, and WorkUnits aggregate the breakdown.
	CommSeconds   float64
	HiddenSeconds float64
	WorkUnits     int64
	// ModelSeconds is the ranking objective: exposed comm plus
	// WorkUnits·SecPerWork — the same deterministic metric the CI perf gate
	// scores.
	ModelSeconds float64
	// PeakMemBytesPerRank is the predicted per-rank memory high-water mark
	// under the flat r·nnz accounting the runtime's trackPeak uses.
	PeakMemBytesPerRank int64
	// Feasible is false when the configuration cannot run under the memory
	// budget (Note says why).
	Feasible bool
	// Note carries the infeasibility reason, if any.
	Note string
	// Kernel and Merger name the plan-time selected Local-Multiply kernel
	// and merge strategy (the localmm flag spellings): the cheapest option
	// when the kernel cost table prices this candidate's exact flop and
	// scanned-column aggregates. They never move ModelSeconds — metered
	// work units are deliberately kernel-independent, so the speed knob
	// can't shift the perf gate — but ApplyChoice executes them.
	Kernel, Merger string
	// KernelSeconds and MergerSeconds hold every option's predicted wall
	// seconds (the exhaustive sweep the kernelsel gate audits the pick
	// against). The hybrid entry is the sampled per-column estimate: each
	// sampled column priced at the better of the heap and hash regimes for
	// its own flops-per-scan, plus the dispatch overhead.
	KernelSeconds, MergerSeconds map[string]float64
	// RegimeHeapCols and RegimeHashCols count the sampled B columns whose
	// flops-per-scan fall in the heap-favored (sparse) and hash-favored
	// (dense) regimes under the table's crossover — the per-block-regime
	// summary mtxinfo -plan reports.
	RegimeHeapCols, RegimeHashCols int
}

// Step returns the named step's cost (zero value if absent).
func (c *Candidate) Step(name string) StepCost {
	for _, s := range c.Steps {
		if s.Step == name {
			return s
		}
	}
	return StepCost{}
}

// predict evaluates one (l, format, sparse) point of the space: it derives
// the induced batch count (unless forceB pins one), predicts every step, and
// returns the staged candidate. Pipelined variants are derived from it with
// applyOverlap.
func (pl *Plan) predict(gs *gridStat, format spmat.Format, forceB int, sparse mpi.SparseMode) Candidate {
	in, pr := pl.In, pl.Probe
	q, l := gs.q, gs.l
	p := in.P
	r := in.BytesPerNnz
	cm := mpi.CostModel{AlphaSec: in.Machine.AlphaSec, BetaSecPerByte: in.Machine.BetaSecPerByte}
	cs := in.Machine.CommScale

	// blockFormat resolves the per-block storage: forced, or the auto
	// heuristic on the block's own occupancy (the same Hypersparse test the
	// runtime applies).
	blockFormat := func(ne int64, cols int32) spmat.Format {
		switch format {
		case spmat.FormatCSC, spmat.FormatDCSC:
			return format
		default:
			if spmat.Hypersparse(ne, cols) {
				return spmat.FormatDCSC
			}
			return spmat.FormatCSC
		}
	}

	// Exact per-rank input footprint maxima (the symbolic decision's memA,
	// memB terms) and nnz maxima (the flat peak-memory accounting).
	var maxMemA, maxMemB, maxNnzA, maxNnzB int64
	for idx := range gs.aNNZ {
		cols := gs.aCols[idx%(q*l)]
		if m := spmat.MemBytesModel(blockFormat(gs.aNE[idx], cols), gs.aNNZ[idx], gs.aNE[idx], r); m > maxMemA {
			maxMemA = m
		}
		if gs.aNNZ[idx] > maxNnzA {
			maxNnzA = gs.aNNZ[idx]
		}
	}
	for idx := range gs.bNNZ {
		cols := gs.bCols[(idx/gs.l)%q]
		if m := spmat.MemBytesModel(blockFormat(gs.bNE[idx], cols), gs.bNNZ[idx], gs.bNE[idx], r); m > maxMemB {
			maxMemB = m
		}
		if gs.bNNZ[idx] > maxNnzB {
			maxNnzB = gs.bNNZ[idx]
		}
	}

	cand := Candidate{
		Config:   Config{L: l, Format: format, SparseComm: sparse},
		Feasible: true,
	}

	// Output-side volumes from the probe's weighted slice model: the
	// unmerged intermediate of the q·l (stage, layer) slices and the merged
	// per-layer outputs, with the heaviest layer's shares so the
	// critical-path rank (power-law hubs make layers unequal) is predicted,
	// not just the mean. Format-independent, memoized on the grid.
	gs.sliceModel(pr)
	unmergedQL, unmergedL := gs.uQL, gs.uL
	maxLayerQL, maxLayerL := gs.maxLayerQL, gs.maxLayerL

	// Batch decision (Alg 3 line 12, mirrored): b = ⌈r·maxnnzC / (M/p −
	// (memA + memB))⌉ with maxnnzC the per-rank maximum unmerged
	// intermediate — the heaviest layer's share over its q² ranks, scaled
	// by the within-layer imbalance factor. Feasibility follows the same
	// model the decision does (the paper's: inputs plus the per-batch
	// unmerged intermediate must fit), so an induced b is feasible by
	// construction and a forced one is checked against the same inequality.
	b := forceB
	maxnnzC := in.Imbalance * maxLayerQL / float64(q*q)
	avail := math.Inf(1)
	if in.MemBytes > 0 {
		avail = float64(in.MemBytes)/float64(p) - float64(maxMemA+maxMemB)
		if avail <= 0 {
			cand.Feasible = false
			cand.Note = "inputs alone exceed the per-process budget"
			cand.B = 1
			if b > 0 {
				cand.B = b
			}
			return cand
		}
	}
	if b <= 0 {
		b = 1
		if in.MemBytes > 0 {
			b = int(math.Ceil(float64(r) * maxnnzC / avail))
			if b < 1 {
				b = 1
			}
		}
		if in.MaxBatches > 0 && b > in.MaxBatches {
			b = in.MaxBatches
		}
	}
	cand.B = b
	if float64(r)*maxnnzC/float64(b) > avail {
		cand.Feasible = false
		cand.Note = "the unmerged intermediate does not fit in " + itoa(b) + " batches"
	}

	// Wire sizes. wireA is exact per block; a B batch piece is modeled as an
	// even 1/b share of its block's entries, occupied columns, and width
	// (the block-cyclic deal spreads all three near-evenly).
	wireA := func(i, s, k int) int64 {
		idx := gs.blockIdx(i, s, k)
		return spmat.WireBytesFor(gs.aCols[s*l+k], gs.aNE[idx], gs.aNNZ[idx])
	}
	wireBFull := func(i, j, k int) int64 {
		idx := gs.blockIdx(i, j, k)
		return spmat.WireBytesFor(gs.bCols[j], gs.bNE[idx], gs.bNNZ[idx])
	}
	wireBPiece := func(i, j, k int) int64 { // one batch piece (1/b of a block)
		idx := gs.blockIdx(i, j, k)
		ne, nnz := gs.bNE[idx], gs.bNNZ[idx]
		cols := int32(int(gs.bCols[j]) / b)
		if cols < 1 {
			cols = 1
		}
		return spmat.WireBytesFor(cols, (ne+int64(b)-1)/int64(b), (nnz+int64(b)-1)/int64(b))
	}

	// Per-rank broadcast sums: every rank of a process row pays the full
	// Bcast cost of each stage, so the critical path is the worst (i, k) row
	// of A and the worst (j, k) column of B.
	var maxABcast, maxBBcast, maxBBcastFull float64
	for k := 0; k < l; k++ {
		for i := 0; i < q; i++ {
			var sum float64
			for s := 0; s < q; s++ {
				sum += cm.BcastCost(q, wireA(i, s, k))
			}
			if sum > maxABcast {
				maxABcast = sum
			}
		}
		for j := 0; j < q; j++ {
			var piece, full float64
			for s := 0; s < q; s++ {
				piece += cm.BcastCost(q, wireBPiece(s, j, k))
				full += cm.BcastCost(q, wireBFull(s, j, k))
			}
			if piece > maxBBcast {
				maxBBcast = piece
			}
			if full > maxBBcastFull {
				maxBBcastFull = full
			}
		}
	}

	// Column-scan work: the per-multiply operand-traversal term — the dense
	// column count for CSC blocks, stored columns for DCSC (what the
	// compressed format removes from the modeled critical path).
	var colScanFull, colScanPieces int64 // Σ over B blocks; pieces sum over batches
	for idx := range gs.bNNZ {
		j := (idx / gs.l) % q
		cols := gs.bCols[j]
		if blockFormat(gs.bNE[idx], cols) == spmat.FormatCSC {
			colScanFull += int64(cols)
			colScanPieces += int64(cols) // b pieces of cols/b each
		} else {
			colScanFull += gs.bNE[idx]
			colScanPieces += gs.bNE[idx]
		}
	}

	p64, q64, l64, b64 := int64(p), int64(q), int64(l), int64(b)
	steps := make([]StepCost, 0, len(Steps))

	// Symbolic (Alg 3): the same q broadcast stages as one un-batched SUMMA
	// pass — full A and B blocks, charged to Symbolic — plus the three
	// footprint Allreduces and the batch-agreement Allreduce, and the
	// symbolic kernel's work.
	if in.Symbolic {
		comm := cs * (maxABcast + maxBBcastFull + 4*cm.AllreduceCost(p, 8))
		work := pr.Flops + q64*pr.NnzB + q64*colScanFull + p64*q64
		steps = append(steps, StepCost{Step: StepSymbolic, CommSeconds: comm, WorkUnits: work})
	} else {
		steps = append(steps, StepCost{Step: StepSymbolic})
	}

	// A-Broadcast: each batch re-broadcasts every A block (the cost of
	// batching), so the per-rank sum scales with b. Under a sparse mode the
	// per-rank charge is replicated exactly — per stage the same subset
	// decision and root/receiver split mpi.IbcastColsStart applies, plus the
	// fallback support Allgather when the symbolic pass is skipped — so the
	// prediction stays byte-exact against the meters.
	abcastComm := cs * float64(b) * maxABcast
	if sparse != mpi.SparseOff && q > 1 {
		abcastComm = cs * pl.sparseABcast(gs, cm, b, sparse == mpi.SparseOn, wireA)
	}
	steps = append(steps, StepCost{Step: StepABcast, CommSeconds: abcastComm})

	// B-Broadcast: each stage moves one batch piece; over all batches every
	// B entry travels exactly once, so b only changes the latency share.
	steps = append(steps, StepCost{Step: StepBBcast, CommSeconds: cs * float64(b) * maxBBcast})

	// Local-Multiply: total flops plus the operand traversal of every
	// received piece (q ranks per process column receive each piece).
	steps = append(steps, StepCost{Step: StepLocalMult,
		WorkUnits: pr.Flops + q64*pr.NnzB + q64*colScanPieces + p64*q64*b64})

	// Merge-Layer: merging the per-stage partial products (the unmerged
	// intermediate of the q·l inner slices) plus the batch piece traversal,
	// plus the destination packing of the merged per-layer outputs.
	mergeWork := int64(unmergedQL) + colScanPieces + p64*b64 + // merge pass
		int64(unmergedL) + p64*b64*(l64+1) // ColSplit packing
	steps = append(steps, StepCost{Step: StepMergeLayer, WorkUnits: mergeWork})

	// AllToAll-Fiber: per batch each rank ships the remote (l−1)/l share of
	// its merged per-layer output along the fiber. The metered step is the
	// max-over-ranks cost, so the critical rank sits on the heaviest layer
	// (maxLayerL, not the mean) and on the heaviest (row, column) output
	// block (the sampled output imbalance).
	var fiberComm float64
	if l > 1 {
		perRankBatch := pr.outputImbalance(q) * maxLayerL / float64(int64(q*q)*b64)
		pieceNNZ := int64(perRankBatch / float64(l))
		pieceCols := int32(int64(pr.ColsB) / (q64 * b64 * l64))
		if pieceCols < 1 {
			pieceCols = 1
		}
		pieceNE := pieceNNZ
		if int64(pieceCols) < pieceNE {
			pieceNE = int64(pieceCols)
		}
		sent := (l64 - 1) * spmat.WireBytesFor(pieceCols, pieceNE, pieceNNZ)
		fiberComm = cs * float64(b) * cm.AllToAllCost(l, sent)
	}
	steps = append(steps, StepCost{Step: StepAllToAll, CommSeconds: fiberComm})

	// Merge-Fiber: every merged per-layer entry is merged once more at its
	// destination rank, plus the merged piece's column scan. A CSC piece
	// scans its dense width — Σ over ranks and batches is exactly q·cols(j)
	// per column block (the batch∩layer shares partition the block column
	// and q process rows each hold one piece). A doubly-compressed piece
	// scans only its occupied columns — Σ over ranks is the occupied
	// (row block, column) cell count of C, estimated from the sampled
	// output structure. A column block stays doubly compressed through the
	// merge exactly when every B̃(·,j,·) block feeding it is DCSC (products
	// and layer splits inherit the B operand's format).
	var fiberScan int64
	var dcscFiberCols float64
	for j := 0; j < q; j++ {
		allDCSC := true
		for s := 0; s < q && allDCSC; s++ {
			for k := 0; k < l; k++ {
				idx := gs.blockIdx(s, j, k)
				if gs.bNNZ[idx] == 0 {
					continue
				}
				if blockFormat(gs.bNE[idx], gs.bCols[j]) != spmat.FormatDCSC {
					allDCSC = false
					break
				}
			}
		}
		if allDCSC {
			dcscFiberCols += float64(gs.bCols[j])
		} else {
			fiberScan += q64 * int64(gs.bCols[j])
		}
	}
	if dcscFiberCols > 0 && pr.ColsB > 0 {
		fiberScan += int64(pr.fiberOccupied(q) * dcscFiberCols / float64(pr.ColsB))
	}
	steps = append(steps, StepCost{Step: StepMergeFiber, WorkUnits: int64(unmergedL) + fiberScan + p64*b64})

	cand.Steps = steps
	for _, s := range steps {
		cand.CommSeconds += s.CommSeconds
		cand.WorkUnits += s.WorkUnits
	}
	cand.ModelSeconds = cand.CommSeconds + float64(cand.WorkUnits)*in.SecPerWork

	// Kernel and merger selection over the candidate's exact aggregates
	// (speed attribution only — never part of ModelSeconds): multiplies
	// scan each received piece on q ranks, merges scan the layer pieces
	// once plus the fiber pieces.
	pl.selectKernels(&cand, q64*colScanPieces,
		int64(unmergedQL)+int64(unmergedL), colScanPieces+fiberScan)

	// Peak memory under the runtime's flat accounting: inputs plus the
	// unmerged stage products plus the merged layer output per batch, on
	// the heaviest layer's ranks. Informational — the feasibility gate
	// above is Alg 3's own inequality, which (like the paper's model)
	// excludes the merged output being streamed out.
	peakNNZ := float64(maxNnzA+maxNnzB) + in.Imbalance*(maxLayerQL+maxLayerL)/float64(int64(q*q)*b64)
	cand.PeakMemBytesPerRank = int64(peakNNZ * float64(r))
	return cand
}

// Overlap is the deterministic overlap-ledger model shared by the planner's
// pipeline predictions and the oracle's scoring of pipelined configurations:
// given a staged schedule's per-step costs, it bounds how much communication
// the fully-overlapped schedule hides. Each prefetched collective can hide
// behind at most the compute of the window it spans (the ledger grants each
// compute second to one request), so per window the hidden share is
// min(window comm, window compute).
type Overlap struct {
	// Q, B, L are the grid stages, batches, and layers.
	Q, B, L int
	// K is the modeled NIC channel count (core Options.Channels). Zero and
	// one are the single-injection model: the A- and B-broadcasts of a
	// stage share one hiding budget. With K ≥ 2 each stream claims its own
	// channel, so both hide independently behind the same compute window —
	// exactly what the runtime's per-channel claim ledger grants.
	K int
	// Symbolic marks whether the symbolic pass runs (and prefetches).
	Symbolic bool
	// CommSymbolicBcast is the broadcast share of the symbolic step's comm
	// (its Allreduces stay blocking); CommABcast etc. are the staged per-rank
	// step costs.
	CommSymbolicBcast, CommABcast, CommBBcast, CommFiber float64
	// CompSymbolic etc. are per-rank compute seconds of the hiding steps.
	CompSymbolic, CompMultiply, CompMergeLayer float64
}

// Hidden returns the predicted hidden communication per step: symbolic
// broadcasts behind the symbolic kernel, A/B broadcasts behind the previous
// stage's multiply (the first stage of the first batch has nothing to hide
// behind), and the fiber exchange behind the own-layer 1/L share of
// Merge-Layer.
func (o Overlap) Hidden() (sym, a, b, fiber float64) {
	if o.Symbolic && o.Q > 1 {
		per := o.CommSymbolicBcast / float64(o.Q)
		comp := o.CompSymbolic / float64(o.Q)
		sym = float64(o.Q-1) * minf(per, comp)
	}
	stages := o.B * o.Q
	if stages > 1 {
		perComp := o.CompMultiply / float64(stages)
		if o.K >= 2 {
			// Two or more channels: the A and B streams each hide up to
			// the full stage window, independently.
			a = float64(stages-1) * minf(o.CommABcast/float64(stages), perComp)
			b = float64(stages-1) * minf(o.CommBBcast/float64(stages), perComp)
		} else {
			perComm := (o.CommABcast + o.CommBBcast) / float64(stages)
			hidden := float64(stages-1) * minf(perComm, perComp)
			if tot := o.CommABcast + o.CommBBcast; tot > 0 {
				a = hidden * o.CommABcast / tot
				b = hidden * o.CommBBcast / tot
			}
		}
	}
	if o.L > 1 && o.B > 0 {
		perComm := o.CommFiber / float64(o.B)
		ownMerge := o.CompMergeLayer / float64(o.B*o.L)
		fiber = float64(o.B) * minf(perComm, ownMerge)
	}
	return sym, a, b, fiber
}

// applyOverlap derives the pipelined variant of a staged candidate under k
// overlap channels: the overlap-ledger model moves the hideable share of each
// collective into HiddenSeconds, with per-rank compute valued at SecPerWork
// over the candidate's own work predictions. k ≤ 1 is the single-injection
// model and leaves Config.Channels at its zero value (pre-knob spelling).
func (pl *Plan) applyOverlap(staged Candidate, k int) Candidate {
	p := float64(pl.In.P)
	rate := pl.In.SecPerWork
	perRank := func(step string) float64 {
		return float64(staged.Step(step).WorkUnits) * rate / p
	}
	// The symbolic step's four Allreduces stay blocking in the pipelined
	// schedule; only the broadcast share is hideable.
	symBcast := staged.Step(StepSymbolic).CommSeconds - pl.AllreduceShare()
	if symBcast < 0 {
		symBcast = 0
	}
	o := Overlap{
		Q: pl.qFor(staged.L), B: staged.B, L: staged.L, K: k,
		Symbolic:          pl.In.Symbolic,
		CommSymbolicBcast: symBcast,
		CommABcast:        staged.Step(StepABcast).CommSeconds,
		CommBBcast:        staged.Step(StepBBcast).CommSeconds,
		CommFiber:         staged.Step(StepAllToAll).CommSeconds,
		CompSymbolic:      perRank(StepSymbolic),
		CompMultiply:      perRank(StepLocalMult),
		CompMergeLayer:    perRank(StepMergeLayer),
	}
	hSym, hA, hB, hFiber := o.Hidden()

	out := staged
	out.Pipeline = true
	if k >= 2 {
		out.Channels = k
	}
	out.Steps = append([]StepCost(nil), staged.Steps...)
	hide := map[string]float64{
		StepSymbolic: hSym, StepABcast: hA, StepBBcast: hB, StepAllToAll: hFiber,
	}
	out.CommSeconds, out.HiddenSeconds = 0, 0
	for i := range out.Steps {
		h := hide[out.Steps[i].Step]
		if h > out.Steps[i].CommSeconds {
			h = out.Steps[i].CommSeconds
		}
		out.Steps[i].CommSeconds -= h
		out.Steps[i].HiddenSeconds = h
		out.CommSeconds += out.Steps[i].CommSeconds
		out.HiddenSeconds += out.Steps[i].HiddenSeconds
	}
	out.ModelSeconds = out.CommSeconds + float64(out.WorkUnits)*rate
	return out
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
