package planner

import (
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// sparseABcast predicts the per-rank A-Broadcast cost of the column-subset
// path, max over ranks — byte-exact against the runtime meters. Per process
// row (i, k) it replays mpi.IbcastColsStart's stage decision: every receiver
// j's subset wire size is computed from the exact occupancy statistics
// (computeSubsetStat), the root is charged like a personalized send of the
// summed subsets, each receiver like one point-to-point receive, and the
// whole stage falls back to the full tree broadcast when that models cheaper
// (unless force). When the symbolic pass is skipped the runtime arms the
// path with one support Allgather along each process column, charged to
// A-Broadcast; that term joins each rank's total before the max so the
// critical-path rank is the right one.
func (pl *Plan) sparseABcast(gs *gridStat, cm mpi.CostModel, b int, force bool, wireA func(i, s, k int) int64) float64 {
	computeSubsetStat(gs, pl.a, pl.b)
	q, l := gs.q, gs.l
	var max float64
	nSub := make([]int64, q)
	perJ := make([]float64, q)
	for k := 0; k < l; k++ {
		for i := 0; i < q; i++ {
			for j := range perJ {
				perJ[j] = 0
			}
			for s := 0; s < q; s++ {
				base := gs.blockIdx(i, s, k) * q
				var sum, maxRecv int64
				for j := 0; j < q; j++ {
					if j == s {
						continue
					}
					n := spmat.WireBytesFor(gs.aCols[s*l+k], gs.aSubNE[base+j], gs.aSubNNZ[base+j])
					nSub[j] = n
					sum += n
					if n > maxRecv {
						maxRecv = n
					}
				}
				fullCost := cm.BcastCost(q, wireA(i, s, k))
				rootCost := cm.AllToAllCost(q, sum)
				recvCost := cm.AlphaSec + cm.BetaSecPerByte*float64(maxRecv)
				subset := force || maxf(rootCost, recvCost) < fullCost
				for j := 0; j < q; j++ {
					switch {
					case !subset:
						perJ[j] += fullCost
					case j == s:
						perJ[j] += rootCost
					default:
						perJ[j] += cm.AlphaSec + cm.BetaSecPerByte*float64(nSub[j])
					}
				}
			}
			for j := 0; j < q; j++ {
				tot := float64(b) * perJ[j]
				if !pl.In.Symbolic {
					// Fallback Allgather on the (j, k) process column: every
					// rank receives all q supports, 4 bytes per index.
					var supBytes int64
					for s := 0; s < q; s++ {
						supBytes += 4 * gs.bRowSup[gs.blockIdx(s, j, k)]
					}
					tot += cm.AllreduceCost(q, 0) + cm.BetaSecPerByte*float64(supBytes)
				}
				if tot > max {
					max = tot
				}
			}
		}
	}
	return max
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
