package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/grid"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/spmat"
)

// replaySpans sums one rank's spans per category, in record order — the same
// float addition sequence the meter performed at its charge points — so a
// correct recorder reproduces the meter's StepStats bit for bit.
func replaySpans(spans []obs.Span) map[string]*mpi.StepStats {
	out := make(map[string]*mpi.StepStats)
	for _, sp := range spans {
		st := out[sp.Cat]
		if st == nil {
			st = &mpi.StepStats{}
			out[sp.Cat] = st
		}
		switch sp.Kind {
		case obs.KindComm:
			st.CommSeconds += sp.Dur
			st.Messages += sp.Msgs
			st.Bytes += sp.Bytes
		case obs.KindHidden:
			st.HiddenSeconds += sp.Dur
		case obs.KindCompute:
			st.ComputeSeconds += sp.Dur
			st.WorkUnits += sp.Work
		}
	}
	return out
}

// checkIdentity verifies every rank's span replay equals its meter exactly —
// same category set, and bitwise-equal (==, no tolerance) values in all six
// StepStats fields. The identity holds by construction: each charge point
// records one span with the exact increment, so summing spans in order
// replays the meter's own additions.
func checkIdentity(t *testing.T, name string, rec *obs.Recorder, meters []*mpi.Meter) {
	t.Helper()
	for r, m := range meters {
		replay := replaySpans(rec.Rank(r).Spans())
		cats := m.Categories()
		if len(replay) != len(cats) {
			t.Errorf("%s rank %d: %d span categories, meter has %d (%v)",
				name, r, len(replay), len(cats), cats)
		}
		for _, cat := range cats {
			want := m.Step(cat)
			got := replay[cat]
			if got == nil {
				t.Errorf("%s rank %d: no spans for metered category %q", name, r, cat)
				continue
			}
			if got.CommSeconds != want.CommSeconds || got.HiddenSeconds != want.HiddenSeconds ||
				got.ComputeSeconds != want.ComputeSeconds || got.WorkUnits != want.WorkUnits ||
				got.Messages != want.Messages || got.Bytes != want.Bytes {
				t.Errorf("%s rank %d %s: span replay %+v != meter %+v", name, r, cat, *got, want)
			}
		}
	}
}

// TestTraceMatchesMeter is the load-bearing invariant of the obs package:
// per-rank, per-category span sums reproduce the meter's StepStats exactly
// (==, not approximately) across schedules, formats, kernels, and overlap
// channel counts — including pipelined multi-batch runs where hidden-comm
// credit and cross-batch prefetch make the attribution hardest.
func TestTraceMatchesMeter(t *testing.T) {
	a := randomMat(t, 48, 48, 600, 171)
	b := randomMat(t, 48, 48, 600, 172)
	for _, tc := range []struct {
		p, l, batches int
		pipeline      bool
		symbolic      bool
		format        spmat.Format
		channels      int
		kernel        localmm.Kernel
		merger        localmm.Merger
	}{
		{p: 4, l: 1, batches: 1},
		{p: 16, l: 4, batches: 3, symbolic: true},
		{p: 16, l: 4, batches: 3, pipeline: true, symbolic: true},
		{p: 16, l: 4, batches: 2, pipeline: true, channels: 2, format: spmat.FormatDCSC},
		{p: 8, l: 2, batches: 2, pipeline: true, kernel: localmm.KernelHeap, merger: localmm.MergerHeap},
		{p: 9, l: 1, batches: 2, format: spmat.FormatDCSC, kernel: localmm.KernelHybrid},
	} {
		name := fmt.Sprintf("p=%d,l=%d,b=%d,pipe=%v,sym=%v,fmt=%v,k=%d",
			tc.p, tc.l, tc.batches, tc.pipeline, tc.symbolic, tc.format, tc.channels)
		opts := Options{
			ForceBatches: tc.batches, Pipeline: tc.pipeline, RunSymbolic: tc.symbolic,
			Format: tc.format, Channels: tc.channels, Kernel: tc.kernel, Merger: tc.merger,
		}
		rec := obs.NewRecorder(tc.p)
		var mu sync.Mutex
		var firstErr error
		meters := mpi.RunTraced(tc.p, testCM, rec, func(c *mpi.Comm) {
			g, err := grid.New(c, tc.l)
			if err == nil {
				var proc *Proc
				if proc, err = Setup(g, a, b, opts); err == nil {
					_, err = proc.BatchedSUMMA3D(nil)
				}
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		})
		if firstErr != nil {
			t.Fatalf("%s: %v", name, firstErr)
		}
		checkIdentity(t, name, rec, meters)
		if tc.pipeline {
			assertHiddenSpans(t, name, rec, tc.channels)
		}
	}
}

// assertHiddenSpans checks a pipelined run actually recorded hidden spans and
// that their channel tags stay within the configured channel count.
func assertHiddenSpans(t *testing.T, name string, rec *obs.Recorder, channels int) {
	t.Helper()
	if channels <= 0 {
		channels = 1
	}
	hidden := 0
	for _, sp := range rec.Spans() {
		if sp.Kind != obs.KindHidden {
			continue
		}
		hidden++
		if sp.Channel >= channels {
			t.Errorf("%s: hidden span tagged channel %d with only %d channels", name, sp.Channel, channels)
		}
	}
	if hidden == 0 {
		t.Errorf("%s: pipelined run recorded no hidden spans", name)
	}
}

// TestTraceMatchesMeterDense covers the 1.5D sparse×dense schedules: the
// ring-shifted ColA and the stationary-C InnerABC, both staged and
// pipelined, with fiber reduction (c > 1) in play.
func TestTraceMatchesMeterDense(t *testing.T) {
	a := randomMat(t, 32, 32, 400, 173)
	d := randomDense(t, 32, 8, 174)
	for _, tc := range []struct {
		algo     Algo
		p, c, b  int
		pipeline bool
	}{
		{algo: AlgoColA, p: 8, c: 2, b: 2},
		{algo: AlgoColA, p: 8, c: 2, b: 3, pipeline: true},
		{algo: AlgoInnerABC, p: 8, c: 2, b: 2},
		{algo: AlgoInnerABC, p: 16, c: 4, b: 2, pipeline: true},
	} {
		name := fmt.Sprintf("%v,p=%d,c=%d,b=%d,pipe=%v", tc.algo, tc.p, tc.c, tc.b, tc.pipeline)
		rc := RunConfig{P: tc.p, Cost: testCM, Opts: Options{
			Algo: tc.algo, Replication: tc.c, ForceBatches: tc.b, Pipeline: tc.pipeline,
		}}
		opts := rc.Opts.withDefaults()
		rec := obs.NewRecorder(tc.p)
		var mu sync.Mutex
		var firstErr error
		meters := mpi.RunTraced(tc.p, testCM, rec, func(c *mpi.Comm) {
			g, err := grid.New15(c, opts.Replication)
			if err == nil {
				p := &denseProc{g: g, opts: opts, res: &DenseResult{}}
				if tc.algo == AlgoColA {
					err = p.runColA(a, d)
				} else {
					err = p.runInnerABC(a, d)
				}
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		})
		if firstErr != nil {
			t.Fatalf("%s: %v", name, firstErr)
		}
		checkIdentity(t, name, rec, meters)
	}
}

// TestTraceBatchStageLabels: spans inside the batched schedule's loops carry
// the batch and stage they belong to, and a multi-batch run labels every
// batch index at least once.
func TestTraceBatchStageLabels(t *testing.T) {
	a := randomMat(t, 48, 48, 600, 175)
	const batches = 3
	rec := obs.NewRecorder(16)
	_, _, _, err := Multiply(a, a, RunConfig{
		P: 16, L: 4, Cost: testCM,
		Opts:  Options{ForceBatches: batches, Pipeline: true, RunSymbolic: true},
		Trace: rec,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seenBatch := map[int]bool{}
	seenStage := map[int]bool{}
	for _, sp := range rec.Spans() {
		if sp.Batch >= batches {
			t.Fatalf("span labeled batch %d beyond %d batches", sp.Batch, batches)
		}
		seenBatch[sp.Batch] = true
		seenStage[sp.Stage] = true
	}
	for want := 0; want < batches; want++ {
		if !seenBatch[want] {
			t.Errorf("no span labeled batch %d", want)
		}
	}
	if !seenStage[0] {
		t.Error("no span labeled stage 0")
	}
	if !seenBatch[-1] {
		t.Error("no span outside the batch loop (assembly should be unlabeled)")
	}
}
