package core

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// Step category names used with the per-rank meters. They match the paper's
// figure legends.
const (
	StepSymbolic   = "Symbolic"
	StepABcast     = "A-Broadcast"
	StepBBcast     = "B-Broadcast"
	StepLocalMult  = "Local-Multiply"
	StepMergeLayer = "Merge-Layer"
	StepAllToAll   = "AllToAll-Fiber"
	StepMergeFiber = "Merge-Fiber"
	StepOther      = "Other"
)

// Auxiliary compute categories outside the paper's seven steps: the batch-
// piece extraction before each batch's SUMMA and the final HCat assembly of
// Result.C. Both run through the overlap ledger (their measured compute is
// hiding credit for in-flight collectives — with Opts.Pipeline the t+1
// extraction runs while batch t+1's prefetched stage-0 broadcasts are already
// posted) but are deliberately not in Steps: the paper's stacked bars, the
// perf gate, and the planner's meter-exact predictions cover the seven
// presentation steps, and these host-side shares stay separately auditable.
const (
	StepExtract  = "Extract-B"
	StepAssemble = "Assemble-C"
)

// Hidden step categories used by the pipelined schedule (Options.Pipeline):
// the share of a stage broadcast's modeled cost that overlapped with the
// previous stage's local compute is charged here (as StepStats.HiddenSeconds,
// which critical-path totals exclude — hidden time ran concurrently with
// compute that is already counted) instead of the paper's step, so exposed
// and hidden communication stay separately auditable. They are deliberately
// not in Steps: the paper's stacked bars report exposed time per step, and
// aggregations over Steps see pipelining as the shorter exposed time it
// actually is.
const (
	StepABcastHidden   = "A-Broadcast-Hidden"
	StepBBcastHidden   = "B-Broadcast-Hidden"
	StepSymbolicHidden = "Symbolic-Hidden"
	StepAllToAllHidden = "AllToAll-Fiber-Hidden"
)

// HiddenSteps lists the overlap categories in presentation order.
var HiddenSteps = []string{StepSymbolicHidden, StepABcastHidden, StepBBcastHidden, StepAllToAllHidden}

// HiddenFor returns the hidden-overlap category paired with one of the
// paper's steps, or "" for steps that are never overlapped (compute steps
// hide communication; they are not hidden themselves).
func HiddenFor(step string) string {
	switch step {
	case StepSymbolic:
		return StepSymbolicHidden
	case StepABcast:
		return StepABcastHidden
	case StepBBcast:
		return StepBBcastHidden
	case StepAllToAll:
		return StepAllToAllHidden
	}
	return ""
}

// Steps lists the seven categories in the paper's presentation order.
var Steps = []string{
	StepSymbolic, StepABcast, StepBBcast, StepLocalMult,
	StepMergeLayer, StepAllToAll, StepMergeFiber,
}

// Algo selects the distributed algorithm family. The sparse×sparse path is
// always 3D SUMMA (2D is its L=1 case); the sparse×dense path (MultiplyDense)
// adds the 1.5D family of Koanantakool et al., where the replication factor
// trades memory for communication and a different operand moves per variant.
type Algo int

const (
	// AlgoSUMMA is the paper's 2D/3D SUMMA schedule — the zero value. For a
	// dense operand it runs the dense panel through the sparse pipeline.
	AlgoSUMMA Algo = iota
	// AlgoColA is 1.5D ColA: A is block-column partitioned and rotates
	// around each layer's ring; B and C are column-panel partitioned and
	// stationary, replicated across layers; C partials reduce over the fiber.
	AlgoColA
	// AlgoInnerABC is 1.5D InnerABC: A is block-row partitioned and
	// stationary (replicated across layers, one-time); B is block-row
	// partitioned and rotates; C partials reduce over the fiber.
	AlgoInnerABC
)

// String returns the spelling the -algo flag accepts.
func (a Algo) String() string {
	switch a {
	case AlgoSUMMA:
		return "summa"
	case AlgoColA:
		return "cola"
	case AlgoInnerABC:
		return "innerabc"
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// ParseAlgo parses an -algo flag value.
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "summa", "":
		return AlgoSUMMA, nil
	case "cola":
		return AlgoColA, nil
	case "innerabc", "inner":
		return AlgoInnerABC, nil
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (want summa | cola | innerabc)", s)
}

// Options configures a distributed multiplication.
type Options struct {
	// Semiring defaults to plus-times.
	Semiring *semiring.Semiring
	// Kernel is the Local-Multiply implementation (default: the paper's
	// sort-free unsorted-hash kernel). Ignored when AutoKernel is set.
	Kernel localmm.Kernel
	// Merger is the Merge-Layer / Merge-Fiber implementation (default: the
	// paper's sort-free hash merge). Ignored when AutoMerger is set.
	Merger localmm.Merger
	// AutoKernel selects the Local-Multiply kernel per (block, stage) at run
	// time: each stage's exact flops and scanned columns are priced by the
	// kernel cost table (Kernels, or the built-in defaults) and the cheaper
	// of the heap and hash regimes runs. Every kernel produces bit-identical
	// values, so the knob changes speed attribution only.
	AutoKernel bool
	// AutoMerger selects the merge strategy per merge the same way, from the
	// merged-entry and scanned-column counts of each Merge-Layer/Merge-Fiber
	// call.
	AutoMerger bool
	// Kernels is the kernel/merger cost table consulted by AutoKernel and
	// AutoMerger and fed by every measured Local-Multiply and merge
	// (costmodel.KernelTable.Observe — online recalibration). Nil uses the
	// default coefficients and records nothing, keeping one-shot runs
	// deterministic; spgemmd shares one table across jobs and persists it.
	Kernels *costmodel.KernelTable
	// Channels is k, the number of modeled NIC channels the overlap ledger
	// may hide split collectives behind: each measured compute second can
	// hide up to k outstanding requests' communication. 0 or 1 is the
	// paper's single-injection model (bit-identical to earlier releases);
	// higher k only matters with Pipeline, where more than one collective
	// can be in flight over the same compute window.
	Channels int
	// MemBytes is the aggregate memory M available across all processes, in
	// bytes, used by the symbolic step to choose the batch count (Alg 3 line
	// 12). Zero means unconstrained.
	MemBytes int64
	// BytesPerNnz is r, the modeled bytes per stored nonzero (default 24,
	// Sec. IV-A).
	BytesPerNnz int64
	// ForceBatches, when positive, bypasses the symbolic decision and runs
	// exactly this many batches (the paper's l/b sweeps in Fig 4 fix b).
	ForceBatches int
	// RunSymbolic forces the symbolic step to execute (and be metered) even
	// when ForceBatches is set. When ForceBatches == 0 the symbolic step
	// always runs, since b must be computed.
	RunSymbolic bool
	// Threads is the intra-rank thread count for local kernels (the paper
	// uses 16 per process on KNL). Default 1: ranks are already concurrent.
	Threads int
	// MaxBatches caps the symbolic decision (0 = no cap beyond the number of
	// columns).
	MaxBatches int
	// Pipeline overlaps communication with computation across the whole
	// schedule. Within a batch, stage s+1's A- and B-broadcasts are posted
	// (mpi.IbcastStart) before stage s's local multiply runs; across batch
	// boundaries, the last stage of batch t posts batch t+1's first
	// broadcasts so the pipeline never drains; and the fiber AllToAll is
	// split (mpi.IalltoallvStart) and completed only after the own-layer
	// share of Merge-Layer ran, hiding the exchange behind that merge. The
	// share of each collective hidden this way is charged to the *-Hidden
	// meter categories (StepABcastHidden, ...) instead of the paper's step;
	// output values are bit-identical to the staged schedule. Default off,
	// which meters the paper's strictly staged schedule with communication
	// volume and modeled comm time byte-identical to previous releases (the
	// ColSplit packing before the fiber exchange is now metered as
	// Merge-Layer compute, so compute attribution gained that share).
	Pipeline bool
	// Format selects the in-memory storage of every local block:
	// spmat.FormatCSC (dense column pointers, the pre-format-knob behavior),
	// spmat.FormatDCSC (doubly compressed), or spmat.FormatAuto — the zero
	// value and default — which compresses a block exactly when fewer than
	// half its columns are occupied (the hypersparse wire threshold). The
	// knob never changes output values or communication volume: the wire
	// encoding is chosen by occupancy alone, and the kernels visit columns
	// in the same order either way. What it changes is the in-memory and
	// modeled cost: DCSC blocks drop the O(cols) per-block metadata from
	// kernels, splits, and work-unit accounting, and their smaller modeled
	// footprint lets the symbolic step pick fewer batches under the same
	// MemBytes (less fiber AllToAll re-broadcast volume).
	Format spmat.Format
	// AutoTune hands the configuration to the analytical planner
	// (internal/planner): before the run, the layer count, batch count,
	// storage format, and schedule are replaced by the best predicted
	// configuration for this input pair under MemBytes and the run's α–β
	// constants (AutoTuneConfig). Explicit Format/Pipeline settings are
	// overridden — the knob means "decide everything for me". The decision
	// is deterministic.
	AutoTune bool
	// SparseComm selects the column-subset A-broadcast path
	// (mpi.IbcastColsStart): each receiver learns, from the row support of
	// the B blocks it saw in the symbolic pass (or from one Allgather along
	// the process column when the symbolic pass is skipped), which columns
	// of every broadcast A block its multiplies can touch, and the stage
	// broadcasts ship those subsets point-to-point when the α–β model says
	// they beat the full tree broadcast. Output values are bit-identical in
	// every mode — the subsets are a communication-volume change only. The
	// zero value (mpi.SparseOff) meters byte-for-byte like releases without
	// the knob; mpi.SparseAuto lets every stage decide; mpi.SparseOn forces
	// the subset exchange (differential testing).
	SparseComm mpi.SparseMode
	// Algo selects the distributed algorithm family for MultiplyDense:
	// AlgoSUMMA (the zero value) densifies the panel through the sparse
	// pipeline, AlgoColA and AlgoInnerABC run the 1.5D schedules. The
	// sparse×sparse entry points ignore it.
	Algo Algo
	// Replication is c, the 1.5D replication factor: the p ranks form a ring
	// of p/c positions × c layers, and the stationary operands are held c
	// times. Requires c² | p. Zero means 1 (no replication — the pure ring
	// algorithm). Ignored by AlgoSUMMA.
	Replication int
	// IncrementalMerge folds each SUMMA stage's product into a running
	// accumulator instead of keeping all stage outputs and merging once
	// after the last stage. The paper deliberately merges once (Sec. III-A:
	// incremental merging is computationally more expensive in the worst
	// case [34]) but keeps the incremental strategy as the memory-lean
	// alternative; this option exists for that ablation
	// (BenchmarkMergeStrategy, table3 experiment notes).
	IncrementalMerge bool
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Semiring == nil {
		o.Semiring = semiring.PlusTimes()
	}
	if o.BytesPerNnz == 0 {
		o.BytesPerNnz = 24
	}
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.Replication <= 0 {
		o.Replication = 1
	}
	if o.Channels <= 0 {
		o.Channels = 1
	}
	return o
}
