// Package core implements the paper's algorithms: 2D sparse SUMMA (Alg 1),
// 3D sparse SUMMA (Alg 2), the distributed symbolic batch-count estimator
// (Alg 3), and the integrated communication-avoiding, memory-constrained
// BATCHEDSUMMA3D (Alg 4) with a per-batch application hook.
//
// Every rank executes inside the simulated MPI runtime; the seven step
// categories the paper reports (Symbolic, A-Broadcast, B-Broadcast,
// Local-Multiply, Merge-Layer, AllToAll-Fiber, Merge-Fiber) are metered per
// rank: measured wall time for computation, α–β modeled time and exact byte
// counts for communication.
package core

import (
	"repro/internal/localmm"
	"repro/internal/semiring"
)

// Step category names used with the per-rank meters. They match the paper's
// figure legends.
const (
	StepSymbolic   = "Symbolic"
	StepABcast     = "A-Broadcast"
	StepBBcast     = "B-Broadcast"
	StepLocalMult  = "Local-Multiply"
	StepMergeLayer = "Merge-Layer"
	StepAllToAll   = "AllToAll-Fiber"
	StepMergeFiber = "Merge-Fiber"
	StepOther      = "Other"
)

// Steps lists the seven categories in the paper's presentation order.
var Steps = []string{
	StepSymbolic, StepABcast, StepBBcast, StepLocalMult,
	StepMergeLayer, StepAllToAll, StepMergeFiber,
}

// Options configures a distributed multiplication.
type Options struct {
	// Semiring defaults to plus-times.
	Semiring *semiring.Semiring
	// Kernel is the Local-Multiply implementation (default: the paper's
	// sort-free unsorted-hash kernel).
	Kernel localmm.Kernel
	// Merger is the Merge-Layer / Merge-Fiber implementation (default: the
	// paper's sort-free hash merge).
	Merger localmm.Merger
	// MemBytes is the aggregate memory M available across all processes, in
	// bytes, used by the symbolic step to choose the batch count (Alg 3 line
	// 12). Zero means unconstrained.
	MemBytes int64
	// BytesPerNnz is r, the modeled bytes per stored nonzero (default 24,
	// Sec. IV-A).
	BytesPerNnz int64
	// ForceBatches, when positive, bypasses the symbolic decision and runs
	// exactly this many batches (the paper's l/b sweeps in Fig 4 fix b).
	ForceBatches int
	// RunSymbolic forces the symbolic step to execute (and be metered) even
	// when ForceBatches is set. When ForceBatches == 0 the symbolic step
	// always runs, since b must be computed.
	RunSymbolic bool
	// Threads is the intra-rank thread count for local kernels (the paper
	// uses 16 per process on KNL). Default 1: ranks are already concurrent.
	Threads int
	// MaxBatches caps the symbolic decision (0 = no cap beyond the number of
	// columns).
	MaxBatches int
	// IncrementalMerge folds each SUMMA stage's product into a running
	// accumulator instead of keeping all stage outputs and merging once
	// after the last stage. The paper deliberately merges once (Sec. III-A:
	// incremental merging is computationally more expensive in the worst
	// case [34]) but keeps the incremental strategy as the memory-lean
	// alternative; this option exists for that ablation
	// (BenchmarkMergeStrategy, table3 experiment notes).
	IncrementalMerge bool
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Semiring == nil {
		o.Semiring = semiring.PlusTimes()
	}
	if o.BytesPerNnz == 0 {
		o.BytesPerNnz = 24
	}
	if o.Threads <= 0 {
		o.Threads = 1
	}
	return o
}
