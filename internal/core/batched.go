package core

import (
	"fmt"

	"repro/internal/distmat"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// BatchedSUMMA3D executes Algorithm 4: the integrated communication-avoiding
// and memory-constrained SpGEMM. The symbolic step (Alg 3) picks the batch
// count unless Options.ForceBatches overrides it; the local B is then split
// block-cyclically into b batches and each batch runs a full 3D SUMMA
// (per-layer 2D SUMMA, fiber AllToAll, fiber merge). The hook, when not nil,
// sees every finished batch and may prune it before concatenation — this is
// how applications keep the output from ever materializing at full size.
//
// Every rank of the grid must call BatchedSUMMA3D collectively.
func (p *Proc) BatchedSUMMA3D(hook BatchHook) (*Result, error) {
	g := p.G
	res := &Result{RowOffset: p.DA.RowB[g.I]}
	p.pipe = pipeState{}
	p.pipe.ledger.k = p.Opts.Channels
	p.resetSparseComm()

	// Decide the batch count (Alg 4 line 2).
	b := p.Opts.ForceBatches
	runSymbolic := p.Opts.RunSymbolic || b <= 0
	if runSymbolic {
		sb, _, err := p.Symbolic3D()
		if err != nil {
			return nil, err
		}
		res.SymbolicB = sb
		if b <= 0 {
			b = sb
		}
	}
	if b < 1 {
		b = 1
	}
	// More batches than the widest block column only creates empty batches;
	// clamp to keep loops meaningful.
	if w := p.widestBlock(); b > w && w > 0 {
		b = w
	}
	res.Batches = b

	// All ranks must agree on b. With ForceBatches they trivially do; the
	// symbolic estimate is computed from Allreduce'd maxima so it also
	// agrees. Assert anyway: a divergent b would deadlock the collectives.
	if agreed := g.World.AllreduceInt64(int64(b), mpi.OpMax); int(agreed) != b {
		return nil, fmt.Errorf("core: ranks disagree on batch count (%d vs %d)", b, agreed)
	}

	// Arm the sparse A-broadcast path. The symbolic pass recorded every
	// stage's column subset as a byproduct of its B broadcasts; when it was
	// skipped, one Allgather along the process column fills them instead.
	// Activation is collective: every rank shares Opts.SparseComm and
	// runSymbolic, so they flip together.
	if p.sc.supports != nil {
		if !runSymbolic {
			p.gatherSupports()
		}
		p.sc.active = true
	}

	// Column batching of this rank's block column (Alg 4 line 4, Fig 1(i)).
	c0, c1 := p.DB.ColRangeOf(g.J)
	p.bt = distmat.NewBatching(c1-c0, b, g.L)

	// Alg 4 lines 5–6: one 3D SUMMA per batch. With Opts.Pipeline the
	// batch-piece extraction is hoisted one batch ahead of the multiply: the
	// pipelined schedule posts batch t+1's first broadcasts during batch t's
	// last stage, and the column roots need the extracted piece as the send
	// buffer by then. The staged schedule keeps the old one-piece-at-a-time
	// footprint and extracts lazily. Extraction is metered under the
	// StepExtract aux category and runs through the overlap ledger: between
	// batches the t+1 extraction executes while batch t+1's prefetched
	// stage-0 broadcasts are already in flight, so its measured compute is
	// genuine hiding credit instead of serialized schedule time.
	meter := g.World.Meter()
	tr := meter.Recorder()
	extract := func(t int) spmat.Matrix {
		// Extraction prepares batch t, so its spans carry t's label even when
		// the pipelined schedule hoists it into batch t-1's stage loop.
		tr.SetBatch(t)
		meter.SetCategory(StepExtract)
		cols := p.bt.BatchCols(t)
		var piece spmat.Matrix
		sec := p.measure(func() {
			piece = spmat.MatColSelect(p.LocalB, cols)
		})
		meter.AddComputeWork(sec, piece.NNZ()+int64(len(cols))+1)
		return piece
	}
	pieces := make([]spmat.Matrix, 0, b)
	bCur := extract(0)
	for t := 0; t < b; t++ {
		var bNext spmat.Matrix
		if p.Opts.Pipeline && t+1 < b {
			bNext = extract(t + 1)
		}
		tr.SetBatch(t)
		cPiece, offsets := p.summa3DBatch(t, bCur, bNext, res)
		switch {
		case bNext != nil:
			bCur = bNext
		case t+1 < b:
			bCur = extract(t + 1)
		}
		res.BatchNNZ = append(res.BatchNNZ, cPiece.NNZ())
		globalCols := make([]int32, len(offsets))
		for x, o := range offsets {
			globalCols[x] = c0 + o
		}
		if hook != nil {
			// Hooks see the user-facing CSC form; a hypersparse piece is
			// inflated only at this boundary (and only when a hook exists).
			csc := cPiece.ToCSC()
			if pruned := hook(t, globalCols, csc); pruned != nil {
				if pruned.Cols != csc.Cols {
					return nil, fmt.Errorf("core: batch hook changed column count (%d → %d)", csc.Cols, pruned.Cols)
				}
				cPiece = pruned
			}
		}
		pieces = append(pieces, cPiece)
		res.GlobalCols = append(res.GlobalCols, globalCols...)
	}

	// Alg 4 line 7: concatenate batches (batch-major column order) and
	// deliver the user-facing CSC. The concatenation stays in the pieces'
	// format (all-DCSC batches concatenate in O(nnz), spmat.HCatMat) and is
	// metered under the StepAssemble aux category, on the overlap ledger like
	// every other local compute.
	tr.SetBatch(-1)
	meter.SetCategory(StepAssemble)
	var totalNNZ int64
	for _, piece := range pieces {
		totalNNZ += piece.NNZ()
	}
	assembleSec := p.measure(func() {
		if len(pieces) == 1 {
			res.C = pieces[0].ToCSC()
		} else {
			res.C = spmat.HCatMat(pieces).ToCSC()
		}
	})
	meter.AddComputeWork(assembleSec, totalNNZ+int64(len(pieces))+1)
	return res, nil
}

// SUMMA3D is Algorithm 2: a single-batch 3D multiply. It is BatchedSUMMA3D
// with the batch count pinned to one (the symbolic step is skipped).
func (p *Proc) SUMMA3D() (*Result, error) {
	saved := p.Opts
	p.Opts.ForceBatches = 1
	p.Opts.RunSymbolic = false
	defer func() { p.Opts = saved }()
	return p.BatchedSUMMA3D(nil)
}

// widestBlock returns the widest B block column across the grid (they differ
// by at most one column).
func (p *Proc) widestBlock() int {
	w := 0
	for j := 0; j < p.G.Q; j++ {
		c0, c1 := p.DB.ColRangeOf(j)
		if int(c1-c0) > w {
			w = int(c1 - c0)
		}
	}
	return w
}
