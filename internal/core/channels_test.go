package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/localmm"
	"repro/internal/spmat"
)

// randomRealMat is randomMat with full-precision float64 values, so sums are
// inexact and any accumulation-order difference between kernels or mergers
// shows up as a value mismatch — integer-valued operands would mask it.
func randomRealMat(t testing.TB, rows, cols int32, nnz int, seed int64) *spmat.CSC {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := make([]spmat.Triple, 0, nnz)
	for i := 0; i < nnz; i++ {
		ts = append(ts, spmat.Triple{
			Row: int32(rng.Intn(int(rows))),
			Col: int32(rng.Intn(int(cols))),
			Val: rng.Float64()*1.9 + 0.05,
		})
	}
	m, err := spmat.FromTriples(rows, cols, ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestChannelLedgerTwoChannels pins the k-channel generalization: two
// requests posted over the same compute window can both hide completely when
// k = 2 (each claims its own channel), while k = 1 makes the second request
// find only what the first left unclaimed — and both accountings reduce to
// the staged zero when posts and waits are adjacent.
func TestChannelLedgerTwoChannels(t *testing.T) {
	approx := func(got, want float64) bool { return got > want-1e-12 && got < want+1e-12 }

	var led overlapLedger
	led.k = 2
	led.advance(1.0)
	// Request 1 claims the full [0, 1.0) window on channel 0.
	if c := led.creditSince(0); !approx(c, 1.0) {
		t.Fatalf("k=2 request 1 credit %v, want 1.0", c)
	}
	led.claim(0, 1.0)
	// Request 2, posted at the same clock, still sees the whole window on
	// channel 1 — the second NIC channel is what k buys.
	if c := led.creditSince(0); !approx(c, 1.0) {
		t.Fatalf("k=2 request 2 credit %v, want 1.0", c)
	}
	led.claim(0, 1.0)
	// A third request finds both channels drained.
	if c := led.creditSince(0); !approx(c, 0) {
		t.Fatalf("k=2 request 3 credit %v, want 0", c)
	}

	var one overlapLedger // k = 0 means one channel: the legacy ledger.
	one.advance(1.0)
	one.claim(0, 1.0)
	if c := one.creditSince(0); !approx(c, 0) {
		t.Fatalf("k=1 request 2 credit %v, want 0", c)
	}

	// Fresh compute becomes visible on every channel.
	led.advance(0.25)
	if c := led.creditSince(0); !approx(c, 0.25) {
		t.Fatalf("k=2 credit after new compute %v, want 0.25", c)
	}
	if c := led.creditSince(led.clock); c != 0 {
		t.Fatalf("future post sees credit %v", c)
	}
}

// TestChannelsPipelineHidesMoreNeverMoves: across k, the outputs must stay
// bit-identical and the volume accounting must not move — the channel knob
// touches modeled exposure only. Every k must hide something on this
// comm-heavy shape. (How *much* is hidden depends on measured wall-clock
// compute and varies run to run, so the k=2 ≥ k=1 monotonicity is pinned at
// the ledger unit level above, not across separate timed runs.)
func TestChannelsPipelineHidesMoreNeverMoves(t *testing.T) {
	a := randomRealMat(t, 64, 64, 1500, 81)
	b := randomRealMat(t, 64, 64, 1500, 82)
	run := func(channels int) (*spmat.CSC, float64, int64) {
		out, _, sum := runDistributed(t, 16, 4, a, b,
			Options{ForceBatches: 2, RunSymbolic: true, Pipeline: true, Channels: channels}, nil)
		var hidden float64
		var bytes int64
		for _, cat := range HiddenSteps {
			hidden += sum.Step(cat).HiddenSeconds
		}
		for _, cat := range Steps {
			bytes += sum.Step(cat).Bytes
		}
		return out, hidden, bytes
	}
	out1, hidden1, bytes1 := run(1)
	out2, hidden2, bytes2 := run(2)
	if !spmat.Equal(out1, out2) {
		t.Error("k=2 output differs from k=1")
	}
	if hidden1 <= 0 || hidden2 <= 0 {
		t.Errorf("pipelined runs hid nothing: k=1 %v, k=2 %v", hidden1, hidden2)
	}
	if bytes1 != bytes2 {
		t.Errorf("volume moved with the channel knob: %d vs %d bytes", bytes1, bytes2)
	}
	// k=1 spelled explicitly and the legacy zero value are the same ledger.
	out0, hidden0, bytes0 := run(0)
	if !spmat.Equal(out0, out1) || hidden0 <= 0 || bytes0 != bytes1 {
		t.Errorf("Channels=0 differs from Channels=1 (hidden %v, bytes %d vs %d)", hidden0, bytes0, bytes1)
	}
}

// TestKernelFormatMergerScheduleDifferential is the full-SUMMA differential
// matrix: every kernel × storage format × merge strategy, under the staged,
// pipelined k=1, and pipelined k=2 schedules, must produce output exactly
// equal to the default configuration — structure and float64 values bit for
// bit. Full-precision operands make this a real claim: the heap paths
// accumulate same-row contributions in operand order precisely so this
// holds.
func TestKernelFormatMergerScheduleDifferential(t *testing.T) {
	a := randomRealMat(t, 48, 48, 700, 83)
	b := randomRealMat(t, 48, 48, 700, 84)
	const p, l, batches = 8, 2, 2
	ref, _, _ := runDistributed(t, p, l, a, b, Options{ForceBatches: batches}, nil)

	kernels := []localmm.Kernel{
		localmm.KernelHashUnsorted, localmm.KernelHashSorted,
		localmm.KernelHeap, localmm.KernelHybrid,
	}
	formats := []spmat.Format{spmat.FormatCSC, spmat.FormatDCSC, spmat.FormatAuto}
	mergers := []localmm.Merger{localmm.MergerHash, localmm.MergerHeap}
	schedules := []struct {
		name     string
		pipeline bool
		channels int
	}{
		{"staged", false, 0},
		{"pipelined", true, 0},
		{"pipelined-k2", true, 2},
	}
	for _, kern := range kernels {
		for _, f := range formats {
			for _, mg := range mergers {
				for _, sched := range schedules {
					name := fmt.Sprintf("%v/%v/%v/%s", kern, f, mg, sched.name)
					got, _, _ := runDistributed(t, p, l, a, b, Options{
						ForceBatches: batches, Kernel: kern, Merger: mg, Format: f,
						Pipeline: sched.pipeline, Channels: sched.channels,
					}, nil)
					if !spmat.Equal(ref, got) {
						t.Errorf("%s: output differs from the default configuration", name)
					}
				}
			}
		}
	}
}

// TestAutoKernelSelectionBitIdenticalAndRecalibrates: the runtime auto
// selection (AutoKernel/AutoMerger consulting a kernel table) must also be
// bit-identical to the defaults, must leave the metered work units exactly
// where the fixed kernels put them (the gate numbers never move with the
// speed knob), and must feed every measured multiply and merge back into the
// table.
func TestAutoKernelSelectionBitIdenticalAndRecalibrates(t *testing.T) {
	a := randomRealMat(t, 48, 48, 700, 85)
	b := randomRealMat(t, 48, 48, 700, 86)
	ref, _, refSum := runDistributed(t, 8, 2, a, b, Options{ForceBatches: 2}, nil)

	table := costmodel.DefaultKernelTable()
	got, _, gotSum := runDistributed(t, 8, 2, a, b, Options{
		ForceBatches: 2, AutoKernel: true, AutoMerger: true, Kernels: table,
	}, nil)
	if !spmat.Equal(ref, got) {
		t.Error("auto kernel/merger selection changed output values")
	}
	for _, step := range []string{StepLocalMult, StepMergeLayer, StepMergeFiber} {
		if rw, gw := refSum.Step(step).WorkUnits, gotSum.Step(step).WorkUnits; rw != gw {
			t.Errorf("%s: work units moved with the kernel knob: %d vs %d", step, rw, gw)
		}
	}
	if n := table.Observations(); n == 0 {
		t.Error("auto run recorded no kernel-table observations")
	}
}

// TestExtractAssembleMeteredOutsideGateSteps: the batch-piece extraction and
// final assembly are metered under their own categories, which carry work but
// stay out of Steps — the paper's stacked bars and the perf gate cover the
// seven presentation steps only.
func TestExtractAssembleMeteredOutsideGateSteps(t *testing.T) {
	for _, step := range Steps {
		if step == StepExtract || step == StepAssemble {
			t.Fatalf("%s leaked into the gate step list", step)
		}
	}
	a := randomRealMat(t, 48, 48, 700, 87)
	_, _, sum := runDistributed(t, 8, 2, a, a, Options{ForceBatches: 2}, nil)
	if w := sum.Step(StepExtract).WorkUnits; w <= 0 {
		t.Errorf("extraction metered no work: %d", w)
	}
	if w := sum.Step(StepAssemble).WorkUnits; w <= 0 {
		t.Errorf("assembly metered no work: %d", w)
	}
}
