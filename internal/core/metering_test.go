package core

import (
	"testing"

	"repro/internal/localmm"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

func TestAllStepsMetered(t *testing.T) {
	a := randomMat(t, 32, 32, 300, 40)
	_, _, sum := runDistributed(t, 8, 2, a, a, Options{ForceBatches: 2, RunSymbolic: true}, nil)
	for _, step := range Steps {
		s := sum.Step(step)
		switch step {
		case StepSymbolic, StepABcast, StepBBcast, StepAllToAll:
			if s.Messages == 0 {
				t.Errorf("%s: no messages metered", step)
			}
			if s.CommSeconds <= 0 {
				t.Errorf("%s: no modeled comm time", step)
			}
		case StepLocalMult, StepMergeLayer, StepMergeFiber:
			if s.ComputeSeconds <= 0 {
				t.Errorf("%s: no compute time measured", step)
			}
		}
	}
}

// TestPackingChargedToMergeLayerNotAllToAll: the ColSplit packing that builds
// the fiber-exchange send buffers is local work. It must be metered as
// Merge-Layer compute, and the AllToAll-Fiber step must carry communication
// only — the category switch happens at the exchange itself, in both the
// staged and the overlapped schedule.
func TestPackingChargedToMergeLayerNotAllToAll(t *testing.T) {
	a := randomMat(t, 48, 48, 600, 49)
	for _, pipeline := range []bool{false, true} {
		_, _, sum := runDistributed(t, 16, 4, a, a, Options{ForceBatches: 2, Pipeline: pipeline}, nil)
		if s := sum.Step(StepAllToAll); s.ComputeSeconds != 0 || s.WorkUnits != 0 {
			t.Errorf("pipeline=%v: AllToAll-Fiber charged local compute: %+v", pipeline, s)
		}
		if s := sum.Step(StepMergeLayer); s.ComputeSeconds <= 0 {
			t.Errorf("pipeline=%v: Merge-Layer (incl. packing) has no compute time", pipeline)
		}
		// The exchange itself must still be fully accounted for — exposed plus
		// hidden (the overlapped schedule may hide all of it behind the
		// own-layer merge, so exposed alone can be zero).
		s := sum.Step(StepAllToAll)
		total := s.CommSeconds + sum.Step(StepAllToAllHidden).HiddenSeconds
		if total <= 0 || s.Messages == 0 {
			t.Errorf("pipeline=%v: AllToAll-Fiber lost its communication: %+v", pipeline, s)
		}
	}
}

// Table II, row A-Broadcast: total bandwidth scales with b.
func TestABcastVolumeScalesWithBatches(t *testing.T) {
	a := randomMat(t, 64, 64, 700, 41)
	_, _, s1 := runDistributed(t, 4, 1, a, a, Options{ForceBatches: 1}, nil)
	_, _, s4 := runDistributed(t, 4, 1, a, a, Options{ForceBatches: 4}, nil)
	b1 := s1.Step(StepABcast).Bytes
	b4 := s4.Step(StepABcast).Bytes
	if ratio := float64(b4) / float64(b1); ratio < 3.5 || ratio > 4.5 {
		t.Errorf("A-Bcast bytes ratio %v, want ≈4 (b=1: %d, b=4: %d)", ratio, b1, b4)
	}
}

// Table II, row B-Broadcast: total bandwidth independent of b (each batch
// moves 1/b of B). Message count grows with b instead.
func TestBBcastVolumeIndependentOfBatches(t *testing.T) {
	a := randomMat(t, 64, 64, 700, 42)
	_, _, s1 := runDistributed(t, 4, 1, a, a, Options{ForceBatches: 1}, nil)
	_, _, s4 := runDistributed(t, 4, 1, a, a, Options{ForceBatches: 4}, nil)
	b1 := s1.Step(StepBBcast).Bytes
	b4 := s4.Step(StepBBcast).Bytes
	// Equal nonzero payload; small header overhead per extra message allowed.
	if ratio := float64(b4) / float64(b1); ratio > 1.25 {
		t.Errorf("B-Bcast bytes grew with b: ratio %v (b=1: %d, b=4: %d)", ratio, b1, b4)
	}
	m1 := s1.Step(StepBBcast).Messages
	m4 := s4.Step(StepBBcast).Messages
	if m4 != 4*m1 {
		t.Errorf("B-Bcast messages: b=1 %d, b=4 %d, want 4x", m1, m4)
	}
}

// Table II: increasing l shrinks per-layer broadcast communicators, so the
// A-Broadcast volume per rank falls by ≈√l.
func TestMoreLayersReduceABcastVolume(t *testing.T) {
	a := randomMat(t, 64, 64, 900, 43)
	_, _, s1 := runDistributed(t, 16, 1, a, a, Options{ForceBatches: 2}, nil)
	_, _, s4 := runDistributed(t, 16, 4, a, a, Options{ForceBatches: 2}, nil)
	// Total A traffic summed over ranks: b·√(p/l)·nnz(A)-ish; per Table II
	// the aggregate bandwidth term drops by √l = 2.
	b1 := s1.Step(StepABcast).Bytes
	b4 := s4.Step(StepABcast).Bytes
	if !(b4 < b1) {
		t.Errorf("A-Bcast volume did not fall with more layers: l=1 %d, l=4 %d", b1, b4)
	}
}

// Increasing l moves volume into the fiber AllToAll (the tradeoff the paper's
// layer-count selection discussion is about).
func TestMoreLayersIncreaseFiberTraffic(t *testing.T) {
	a := randomMat(t, 64, 64, 900, 44)
	_, _, s1 := runDistributed(t, 16, 1, a, a, Options{ForceBatches: 1}, nil)
	_, _, s4 := runDistributed(t, 16, 4, a, a, Options{ForceBatches: 1}, nil)
	f1 := s1.Step(StepAllToAll).Bytes
	f4 := s4.Step(StepAllToAll).Bytes
	if !(f4 > f1) {
		t.Errorf("fiber traffic did not grow with layers: l=1 %d, l=4 %d", f1, f4)
	}
}

func TestFlopsConservedAcrossConfigurations(t *testing.T) {
	// Total multiplications are a property of the operands, independent of
	// grid shape or batching.
	a := randomMat(t, 48, 48, 500, 45)
	want := localmm.Flops(a, a)
	for _, cfg := range []struct{ p, l, b int }{{4, 1, 1}, {8, 2, 2}, {16, 4, 3}} {
		_, results, _ := runDistributed(t, cfg.p, cfg.l, a, a, Options{ForceBatches: cfg.b}, nil)
		var total int64
		for _, r := range results {
			total += r.LocalFlops
		}
		if total != want {
			t.Errorf("p=%d l=%d b=%d: flops %d, want %d", cfg.p, cfg.l, cfg.b, total, want)
		}
	}
}

func TestUnmergedNNZBoundsFlopsAndOutput(t *testing.T) {
	// Eq 1: flops ≥ Σ nnz(D(k)) ≥ nnz(C).
	a := randomMat(t, 48, 48, 500, 46)
	got, results, _ := runDistributed(t, 8, 2, a, a, Options{ForceBatches: 2}, nil)
	var flops, unmerged, mergedLayer int64
	for _, r := range results {
		flops += r.LocalFlops
		unmerged += r.UnmergedNNZ
		mergedLayer += r.MergedLayerNNZ
	}
	if !(flops >= unmerged) {
		t.Errorf("flops %d < unmerged %d", flops, unmerged)
	}
	if !(unmerged >= mergedLayer) {
		t.Errorf("unmerged %d < merged-layer %d", unmerged, mergedLayer)
	}
	if !(mergedLayer >= got.NNZ()) {
		t.Errorf("merged-layer %d < nnz(C) %d", mergedLayer, got.NNZ())
	}
}

func TestBatchLowerBound(t *testing.T) {
	// Unconstrained.
	if b := BatchLowerBound(1<<40, 1<<20, 1<<20, 0, 24); b != 1 {
		t.Errorf("unconstrained bound=%d", b)
	}
	// Comfortable memory → 1.
	if b := BatchLowerBound(1000, 10, 10, 1<<40, 24); b != 1 {
		t.Errorf("roomy bound=%d", b)
	}
	// memC twice available → 2 batches minimum.
	avail := int64(1 << 20)
	inputs := int64(100)
	mem := avail + 24*2*inputs
	if b := BatchLowerBound(2*avail, inputs, inputs, mem, 24); b != 2 {
		t.Errorf("bound=%d, want 2", b)
	}
	// Infeasible inputs.
	if b := BatchLowerBound(100, 1<<30, 1<<30, 1000, 24); b < 1<<20 {
		t.Errorf("infeasible bound=%d should be huge", b)
	}
}

func TestSymbolicEstimateAtLeastLowerBound(t *testing.T) {
	// The symbolic step uses per-rank maxima, so its b is ≥ the perfectly
	// balanced analytic bound computed from aggregate quantities.
	a := randomMat(t, 64, 64, 800, 47)
	mem := int64(24)*(2*a.NNZ())*3 + 8192
	_, results, _ := runDistributed(t, 4, 1, a, a, Options{MemBytes: mem}, nil)
	var unmerged int64
	for _, r := range results {
		unmerged += r.UnmergedNNZ
	}
	lower := BatchLowerBound(24*unmerged, a.NNZ(), a.NNZ(), mem, 24)
	if results[0].SymbolicB < lower {
		t.Errorf("symbolic b=%d below analytic lower bound %d", results[0].SymbolicB, lower)
	}
}

func TestMinPlusWithBatchingAndLayers(t *testing.T) {
	a := randomMat(t, 36, 36, 200, 48)
	sr := semiring.MinPlus()
	want := localmm.HashSpGEMMSorted(a, a, sr)
	got, _, _ := runDistributed(t, 8, 2, a, a, Options{Semiring: sr, ForceBatches: 3}, nil)
	if !spmat.Equal(got, want) {
		t.Error("min-plus batched 3D result differs")
	}
}
