package core

import (
	"fmt"
	"sync"

	"repro/internal/grid"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// This file implements the sparse×dense engine: the 1.5D ColA and InnerABC
// schedules of Koanantakool et al. ("Communication-Avoiding Parallel Sparse-
// Dense Matrix-Matrix Multiplication", IPDPS 2016), the family the paper's
// related-work section positions SUMMA against. Both arrange the p ranks as a
// ring of s = p/c positions × c layers (grid.Grid15):
//
//   ColA     — A is block-column partitioned over ring positions and rotates;
//              B and C are column-panel partitioned, stationary, replicated
//              across layers. Partial C panels reduce over the fiber.
//   InnerABC — A is block-row partitioned, stationary, replicated across
//              layers (one-time); B is block-row partitioned and rotates.
//              Partial C row-panels reduce over the fiber.
//
// Each rank walks R = s/c ring rounds; the c layers start R positions apart,
// so together a fiber's ranks see all s blocks of the moving operand exactly
// once. Replication turns (s-1) shift rounds into (R-1) at the price of a
// one-time replication broadcast and a fiber reduction of the dense partial —
// the per-iteration vs one-time split the planner models for iterated SpMM.
//
// Meter categories reuse the paper's steps: the moving/stationary operand
// transfers are metered as A-Broadcast / B-Broadcast per which matrix moved,
// the multiply as Local-Multiply, the fiber allgather of partials as
// AllToAll-Fiber, and the ordered reduction as Merge-Fiber. The pipelined
// variants post the next ring shift before the round's multiply and complete
// it through the overlap ledger, charging the hidden share to the *-Hidden
// categories exactly like the SUMMA pipeline.

// DenseResult is one rank's output of a 1.5D sparse×dense schedule: a dense
// panel of C together with where it lands in the global product. Fiber
// replicas (layers k > 0) hold byte-identical panels; AssembleDense uses the
// layer-0 copies.
type DenseResult struct {
	// C is the local panel, already reduced over the fiber.
	C *spmat.DenseMat
	// RowOffset, ColOffset locate C[0,0] in the global product. ColA panels
	// span all rows (RowOffset 0); InnerABC panels span all columns of their
	// batch range (ColOffset 0).
	RowOffset, ColOffset int32
	// Batches is the number of batches the schedule ran.
	Batches int
	// LocalFlops counts the scalar multiply-adds this rank performed in
	// Local-Multiply (excludes the Merge-Fiber reduction).
	LocalFlops int64
	// PeakMemBytes is the modeled high-water mark of simultaneously live
	// operand, accumulator, and reduction buffers on this rank.
	PeakMemBytes int64
}

// denseProc is the per-rank state of a 1.5D schedule run.
type denseProc struct {
	g    *grid.Grid15
	opts Options
	led  overlapLedger
	res  *DenseResult
}

// measure times fn as local compute and advances the overlap ledger so
// in-flight shifts accumulate credit.
func (p *denseProc) measure(fn func()) float64 {
	sec := p.g.World.MeasureCompute(fn)
	p.led.advance(sec)
	return sec
}

// trackPeak records a high-water candidate for the modeled memory footprint.
func (p *denseProc) trackPeak(bytes int64) {
	if bytes > p.res.PeakMemBytes {
		p.res.PeakMemBytes = bytes
	}
}

// validateDense checks the pieces every 1.5D schedule needs.
func validateDense(a *spmat.CSC, b *spmat.DenseMat, rc RunConfig, opts Options) error {
	if a.Cols != b.Rows {
		return fmt.Errorf("core: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if !opts.Semiring.IsPlusTimes() {
		return fmt.Errorf("core: the dense path accumulates into a zero-initialized dense panel, which is only sound over plus-times")
	}
	return grid.Valid15(rc.P, opts.Replication)
}

// MultiplyDense runs C = A·B for sparse A and dense B on a fresh simulated
// cluster and returns the assembled global product, the per-rank panels, and
// the step metering summary. Opts.Algo selects the schedule: AlgoColA and
// AlgoInnerABC run the 1.5D algorithms with replication Opts.Replication;
// AlgoSUMMA densifies B through the sparse SUMMA pipeline (RunConfig.L
// layers) and returns nil per-rank panels. Opts.AutoTune hands the choice —
// algorithm, replication, batches, threads — to the planner.
func MultiplyDense(a *spmat.CSC, b *spmat.DenseMat, rc RunConfig) (*spmat.DenseMat, []*DenseResult, *mpi.Summary, error) {
	if rc.Opts.AutoTune {
		var err error
		if rc, _, err = AutoTuneDenseConfig(a, b, rc); err != nil {
			return nil, nil, nil, err
		}
	}
	opts := rc.Opts.withDefaults()
	if opts.Algo == AlgoSUMMA {
		cs, _, sum, err := Multiply(a, b.ToCSC(), rc, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		return spmat.DenseFromCSC(cs), nil, sum, nil
	}
	if err := validateDense(a, b, rc, opts); err != nil {
		return nil, nil, nil, err
	}
	results := make([]*DenseResult, rc.P)
	errs := make([]error, rc.P)
	var mu sync.Mutex
	meters := mpi.RunTraced(rc.P, rc.Cost, rc.Trace, func(c *mpi.Comm) {
		g, err := grid.New15(c, opts.Replication)
		var res *DenseResult
		if err == nil {
			p := &denseProc{g: g, opts: opts, res: &DenseResult{}}
			switch opts.Algo {
			case AlgoColA:
				err = p.runColA(a, b)
			case AlgoInnerABC:
				err = p.runInnerABC(a, b)
			default:
				err = fmt.Errorf("core: MultiplyDense does not implement %v", opts.Algo)
			}
			res = p.res
		}
		mu.Lock()
		results[c.Rank()] = res
		errs[c.Rank()] = err
		mu.Unlock()
	})
	for r, err := range errs {
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: rank %d: %w", r, err)
		}
	}
	assembled := AssembleDense(results, a.Rows, b.Cols, rc.P/opts.Replication)
	return assembled, results, mpi.Summarize(meters), nil
}

// AssembleDense stitches the layer-0 panels (ranks 0..s-1) into the global
// product.
func AssembleDense(results []*DenseResult, rows, cols int32, s int) *spmat.DenseMat {
	out := spmat.NewDense(rows, cols)
	for j := 0; j < s; j++ {
		r := results[j]
		r.C.CopyInto(out, r.RowOffset, r.ColOffset)
	}
	return out
}

// batches returns the batch count: ForceBatches clamped to [1, limit]. The
// MemBytes-driven decision is the planner's job (AutoTuneDenseConfig sets
// ForceBatches); the schedules themselves only obey.
func (p *denseProc) batches(limit int32) int {
	nb := p.opts.ForceBatches
	if nb < 1 {
		nb = 1
	}
	if limit > 0 && nb > int(limit) {
		nb = int(limit)
	}
	return nb
}

// reduceFiber allgathers the local dense partial along the fiber and sums the
// c layer contributions in ascending layer order, which keeps the result
// bit-identical across runs and replication factors that split the same
// blocks. Returns the reduced panel.
func (p *denseProc) reduceFiber(acc *spmat.DenseMat) *spmat.DenseMat {
	m := p.g.World.Meter()
	if p.g.C == 1 {
		return acc
	}
	m.SetCategory(StepAllToAll)
	parts := p.g.Fiber.Allgather(acc)
	var out *spmat.DenseMat
	sec := p.measure(func() {
		out = spmat.NewDense(acc.Rows, acc.Cols)
		for k := 0; k < p.g.C; k++ {
			parts[k].(*spmat.DenseMat).AddInto(out, 0, 0)
		}
	})
	m.SetCategory(StepMergeFiber)
	m.AddComputeWork(sec, int64(p.g.C)*int64(acc.Rows)*int64(acc.Cols)+1)
	p.trackPeak(int64(p.g.C+2) * acc.MemBytes())
	return out
}

// shiftRing rotates the moving operand one ring position (staged mode) or
// completes the shift posted before the multiply (pipelined mode), charging
// any hidden share to hiddenCat.
func (p *denseProc) shiftRing(cur mpi.Payload, req *mpi.BcastRequest, post float64, cat, hiddenCat string) mpi.Payload {
	m := p.g.World.Meter()
	m.SetCategory(cat)
	if req != nil {
		pay, used := req.WaitOverlap(p.led.creditSince(post), hiddenCat)
		m.Recorder().TagChannel(p.led.claim(post, used))
		return pay
	}
	return p.g.Ring.Shift(1, cur)
}

// localFmt applies the Format knob to a freshly sliced local block.
func (p *denseProc) localFmt(m *spmat.CSC) spmat.Matrix {
	return spmat.WithFormat(m, p.opts.Format)
}

// runColA executes the ColA schedule. A is block-column partitioned over the
// s ring positions and rotates; rank (j,k) owns the stationary column panel
// B[:, bBounds[j]:bBounds[j+1]] (replicated across the fiber) and produces
// the matching panel of C. Batches split the rank's own B panel columns, so
// each batch replays the full ring walk over A.
func (p *denseProc) runColA(a *spmat.CSC, b *spmat.DenseMat) error {
	g, opts := p.g, p.opts
	m := g.World.Meter()
	aBounds := spmat.PartBounds(a.Cols, g.S) // A block-columns == B row blocks
	bBounds := spmat.PartBounds(b.Cols, g.S) // B/C column panels
	myLo, myHi := bBounds[g.J], bBounds[g.J+1]
	width := myHi - myLo
	// The clamp uses the global width so every rank runs the same number of
	// batches — the batch loop contains collectives. Narrow ranks may see
	// empty batch slices; those still participate in every exchange.
	nb := p.batches(b.Cols)
	batch := spmat.PartBounds(width, nb)
	R := g.R()
	p.res.RowOffset, p.res.ColOffset, p.res.Batches = 0, myLo, nb

	// One-time: distribute each walk's starting A block along the skew fiber
	// from its canonical layer-0 owner. This is where the simulation charges
	// the initial data movement a real run would pay.
	start := g.StartBlock()
	var startPay mpi.Payload
	if g.Skew.Rank() == 0 {
		startPay = p.localFmt(spmat.ColRange(a, aBounds[start], aBounds[start+1]))
	}
	m.SetCategory(StepABcast)
	cur := g.Skew.Bcast(0, startPay).(spmat.Matrix)

	tr := m.Recorder()
	pieces := make([]*spmat.DenseMat, nb)
	for t := 0; t < nb; t++ {
		tr.SetBatch(t)
		lo, hi := myLo+batch[t], myLo+batch[t+1]
		// One-time (per batch slice): replicate the stationary B panel along
		// the fiber from its layer-0 owner.
		var bPay mpi.Payload
		if g.Fiber.Rank() == 0 {
			bPay = spmat.DenseColRange(b, lo, hi)
		}
		m.SetCategory(StepBBcast)
		bPanel := g.Fiber.Bcast(0, bPay).(*spmat.DenseMat)

		acc := spmat.NewDense(a.Rows, hi-lo)
		blk := start
		for r := 0; r < R; r++ {
			tr.SetStage(r)
			// The shift ships the block we hold now; pipelined mode posts it
			// before the multiply so the exchange hides behind compute. The
			// last round of the last batch has nothing left to move; between
			// batches the walk rewinds to the start block (offset R-1 forward
			// in source space ≡ -(R-1) in position, expressed as shifting the
			// held block onward around the ring R-1 more times collapsed into
			// one rewind shift below).
			var req *mpi.BcastRequest
			var post float64
			if r < R-1 && opts.Pipeline {
				post = p.led.clock
				req = g.Ring.IshiftStart(1, cur)
			}
			bView := spmat.DenseRowView(bPanel, aBounds[blk], aBounds[blk+1])
			flops := localmm.SpMMFlops(cur, acc.Cols)
			sec := p.measure(func() { localmm.SpMMInto(acc, cur, bView, opts.Threads) })
			m.SetCategory(StepLocalMult)
			m.AddComputeWork(sec, flops+1)
			p.res.LocalFlops += flops
			liveShift := int64(1)
			if req != nil {
				liveShift = 2
			}
			p.trackPeak(liveShift*cur.MemBytes() + bPanel.MemBytes() + acc.MemBytes())
			if r < R-1 {
				cur = p.shiftRing(cur, req, post, StepABcast, StepABcastHidden).(spmat.Matrix)
				blk = (blk + 1) % g.S
			}
		}
		tr.SetStage(-1)
		if t < nb-1 && R > 1 {
			// Rewind the ring walk for the next batch.
			m.SetCategory(StepABcast)
			cur = g.Ring.Shift(-(R - 1), cur).(spmat.Matrix)
			blk = start
		}
		pieces[t] = p.reduceFiber(acc)
	}
	tr.SetBatch(-1)
	p.res.C = p.assemblePieces(pieces)
	return nil
}

// runInnerABC executes the InnerABC schedule. A is block-row partitioned and
// stationary: rank (j,k) holds A[rowBounds[j]:rowBounds[j+1], :], replicated
// along the fiber once, pre-split into its s column blocks. B is block-row
// partitioned and rotates. Batches split the global dense width d, so each
// batch distributes fresh starting B blocks via the skew fiber — there is no
// rewind shift, the moving panels are batch-local.
func (p *denseProc) runInnerABC(a *spmat.CSC, b *spmat.DenseMat) error {
	g, opts := p.g, p.opts
	m := g.World.Meter()
	rowBounds := spmat.PartBounds(a.Rows, g.S)   // A block-rows == C row panels
	innerBounds := spmat.PartBounds(a.Cols, g.S) // inner dim == B row blocks
	rl, rh := rowBounds[g.J], rowBounds[g.J+1]
	nb := p.batches(b.Cols)
	dBounds := spmat.PartBounds(b.Cols, nb)
	R := g.R()
	p.res.RowOffset, p.res.ColOffset, p.res.Batches = rl, 0, nb

	// One-time: replicate the stationary A block-row along the fiber, then
	// pre-split it into its s column slices so each ring round multiplies the
	// slice matching the B block it holds. The split is packing work, metered
	// as Merge-Layer like the SUMMA-side ColSplit packing.
	var rowPay mpi.Payload
	if g.Fiber.Rank() == 0 {
		rowPay = spmat.RowRange(a, rl, rh)
	}
	m.SetCategory(StepABcast)
	aRow := g.Fiber.Bcast(0, rowPay).(*spmat.CSC)
	aParts := make([]spmat.Matrix, g.S)
	sec := p.measure(func() {
		for blk := range aParts {
			aParts[blk] = p.localFmt(spmat.ColRange(aRow, innerBounds[blk], innerBounds[blk+1]))
		}
	})
	m.SetCategory(StepMergeLayer)
	m.AddComputeWork(sec, aRow.NNZ()+int64(a.Cols)+1)
	var aMem int64
	for _, part := range aParts {
		aMem += part.MemBytes()
	}

	start := g.StartBlock()
	tr := m.Recorder()
	pieces := make([]*spmat.DenseMat, nb)
	for t := 0; t < nb; t++ {
		tr.SetBatch(t)
		dl, dh := dBounds[t], dBounds[t+1]
		// Distribute each walk's starting B block along the skew fiber from
		// its canonical layer-0 owner.
		var startPay mpi.Payload
		if g.Skew.Rank() == 0 {
			startPay = spmat.DenseColRange(spmat.DenseRowView(b, innerBounds[start], innerBounds[start+1]), dl, dh)
		}
		m.SetCategory(StepBBcast)
		cur := g.Skew.Bcast(0, startPay).(*spmat.DenseMat)

		acc := spmat.NewDense(rh-rl, dh-dl)
		blk := start
		for r := 0; r < R; r++ {
			tr.SetStage(r)
			var req *mpi.BcastRequest
			var post float64
			if r < R-1 && opts.Pipeline {
				post = p.led.clock
				req = g.Ring.IshiftStart(1, cur)
			}
			flops := localmm.SpMMFlops(aParts[blk], acc.Cols)
			curOp := cur
			sec := p.measure(func() { localmm.SpMMInto(acc, aParts[blk], curOp, opts.Threads) })
			m.SetCategory(StepLocalMult)
			m.AddComputeWork(sec, flops+1)
			p.res.LocalFlops += flops
			liveShift := int64(1)
			if req != nil {
				liveShift = 2
			}
			p.trackPeak(aMem + liveShift*cur.MemBytes() + acc.MemBytes())
			if r < R-1 {
				cur = p.shiftRing(cur, req, post, StepBBcast, StepBBcastHidden).(*spmat.DenseMat)
				blk = (blk + 1) % g.S
			}
		}
		tr.SetStage(-1)
		pieces[t] = p.reduceFiber(acc)
	}
	tr.SetBatch(-1)
	p.res.C = p.assemblePieces(pieces)
	return nil
}

// assemblePieces concatenates the per-batch panels column-wise into the
// rank's final panel, metering the copy as Merge-Fiber packing.
func (p *denseProc) assemblePieces(pieces []*spmat.DenseMat) *spmat.DenseMat {
	if len(pieces) == 1 {
		return pieces[0]
	}
	m := p.g.World.Meter()
	var out *spmat.DenseMat
	sec := p.measure(func() { out = spmat.DenseHCat(pieces) })
	m.SetCategory(StepMergeFiber)
	m.AddComputeWork(sec, int64(out.Rows)*int64(out.Cols)+1)
	return out
}
