package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/distmat"
	"repro/internal/grid"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// TestPipelinedOutputBitIdentical: the pipelined schedule reorders only when
// broadcasts are posted, never which operands a stage multiplies or the
// order stage products are merged in, so the output must be bit-identical to
// the staged schedule across kernels, grids, batch counts, and merge
// strategies.
func TestPipelinedOutputBitIdentical(t *testing.T) {
	a := randomMat(t, 48, 48, 500, 71)
	b := randomMat(t, 48, 48, 500, 72)
	for _, tc := range []struct {
		p, l, batches int
		kernel        localmm.Kernel
		merger        localmm.Merger
		incremental   bool
		threads       int
	}{
		{p: 4, l: 1, batches: 1, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHash},
		{p: 4, l: 1, batches: 3, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHash},
		{p: 8, l: 2, batches: 2, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHash},
		{p: 16, l: 4, batches: 3, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHash},
		{p: 8, l: 2, batches: 2, kernel: localmm.KernelHeap, merger: localmm.MergerHeap},
		{p: 8, l: 2, batches: 3, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHeap},
		{p: 9, l: 1, batches: 2, kernel: localmm.KernelHybrid, merger: localmm.MergerHash, incremental: true},
		{p: 16, l: 4, batches: 2, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHash, incremental: true},
		{p: 8, l: 2, batches: 2, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHash, threads: 4},
	} {
		name := fmt.Sprintf("p=%d,l=%d,b=%d,k=%v,inc=%v,t=%d",
			tc.p, tc.l, tc.batches, tc.kernel, tc.incremental, tc.threads)
		opts := Options{
			ForceBatches: tc.batches, Kernel: tc.kernel, Merger: tc.merger,
			IncrementalMerge: tc.incremental, Threads: tc.threads,
		}
		staged, _, _ := runDistributed(t, tc.p, tc.l, a, b, opts, nil)
		opts.Pipeline = true
		piped, _, _ := runDistributed(t, tc.p, tc.l, a, b, opts, nil)
		if !spmat.Equal(staged, piped) {
			t.Errorf("%s: pipelined output differs from staged", name)
		}
	}
}

// TestPipelineOverlapObservable: with Pipeline on, stage s+1's broadcasts
// are posted before stage s's multiply completes, so part of their modeled
// cost must land in the hidden meter categories; the exposed share can only
// shrink, and the volume accounting (bytes, messages) must not move at all.
func TestPipelineOverlapObservable(t *testing.T) {
	a := randomMat(t, 64, 64, 1500, 73)
	opts := Options{ForceBatches: 2, RunSymbolic: true}
	_, _, staged := runDistributed(t, 16, 4, a, a, opts, nil)
	opts.Pipeline = true
	_, _, piped := runDistributed(t, 16, 4, a, a, opts, nil)

	var hidden float64
	for _, cat := range HiddenSteps {
		hidden += piped.Step(cat).HiddenSeconds
	}
	if hidden <= 0 {
		t.Fatalf("pipelined run hid no broadcast time (categories %v)", piped.Categories())
	}
	for _, cat := range HiddenSteps {
		if s := staged.Step(cat).HiddenSeconds; s != 0 {
			t.Errorf("staged run charged hidden category %s: %v", cat, s)
		}
	}
	// Hidden time overlapped compute, so it must not re-enter the exposed
	// communication totals: across all categories (hidden ones included,
	// whose CommSeconds stay zero) pipelining can only shrink exposed comm.
	// Modeled costs are deterministic, so strict inequality is safe here.
	if pc, sc := piped.TotalCommSeconds(), staged.TotalCommSeconds(); pc >= sc {
		t.Errorf("exposed comm did not shrink under pipelining: %v >= %v", pc, sc)
	}
	for _, cat := range []string{StepSymbolic, StepABcast, StepBBcast} {
		ss, ps := staged.Step(cat), piped.Step(cat)
		if ps.CommSeconds > ss.CommSeconds {
			t.Errorf("%s: exposed comm grew under pipelining: %v > %v", cat, ps.CommSeconds, ss.CommSeconds)
		}
		if ps.Bytes != ss.Bytes || ps.Messages != ss.Messages {
			t.Errorf("%s: volume changed under pipelining: %d B/%d msgs vs %d B/%d msgs",
				cat, ps.Bytes, ps.Messages, ss.Bytes, ss.Messages)
		}
	}
}

// TestOverlapLedgerGapClaims: a request completed out of posting order — the
// fiber exchange, posted late, waits before the prefetched next-batch
// broadcasts, posted early — must not swallow the unclaimed compute window
// of the earlier-posted request. The ledger claims earliest-first over
// disjoint intervals; a single high-watermark would hand request 1 only the
// tail and undercount hidden communication.
func TestOverlapLedgerGapClaims(t *testing.T) {
	approx := func(got, want float64) bool { return got > want-1e-12 && got < want+1e-12 }
	var led overlapLedger
	// Request 1 posts at clock 0; 1.0 s of compute runs.
	led.advance(1.0)
	post2 := led.clock // request 2 posts at clock 1.0; 0.5 s more compute.
	led.advance(0.5)
	// Request 2 waits first and hides 0.4 s — from its own window only.
	if c := led.creditSince(post2); !approx(c, 0.5) {
		t.Fatalf("request 2 credit %v, want 0.5", c)
	}
	led.claim(post2, 0.4)
	// Request 1's window is [0, 1.5) minus the claimed [1.0, 1.4): 1.1 s.
	// (A watermark ledger would report only 1.5 − 1.4 = 0.1 s.)
	if c := led.creditSince(0); !approx(c, 1.1) {
		t.Fatalf("request 1 credit %v, want 1.1", c)
	}
	led.claim(0, 1.1)
	if c := led.creditSince(0); !approx(c, 0) {
		t.Fatalf("credit %v after draining, want 0", c)
	}
	// Fresh compute is visible again, to any post.
	led.advance(0.25)
	if c := led.creditSince(0); !approx(c, 0.25) {
		t.Fatalf("credit %v after new compute, want 0.25", c)
	}
	if c := led.creditSince(led.clock); c != 0 {
		t.Fatalf("future post sees credit %v", c)
	}
}

// runWithCost is runDistributed under a caller-chosen cost model.
func runWithCost(t testing.TB, p, l int, cm mpi.CostModel, a, b *spmat.CSC, opts Options) (*spmat.CSC, *mpi.Summary) {
	t.Helper()
	results := make([]*Result, p)
	var mu sync.Mutex
	var firstErr error
	meters := mpi.Run(p, cm, func(c *mpi.Comm) {
		g, err := grid.New(c, l)
		if err == nil {
			var proc *Proc
			proc, err = Setup(g, a, b, opts)
			if err == nil {
				var res *Result
				res, err = proc.BatchedSUMMA3D(nil)
				results[c.Rank()] = res
			}
		}
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	})
	if firstErr != nil {
		t.Fatalf("distributed run failed: %v", firstErr)
	}
	assembled, err := AssembleResults(results, a.Rows, b.Cols)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return assembled, mpi.Summarize(meters)
}

// TestFullPipelineHidesBatchBoundariesAndFiberExchange pins the
// fully-overlapped schedule's hiding power exactly. Under a latency-only cost
// model (β=0) every broadcast on a q=2 communicator costs exactly α and the
// fiber exchange on l=2 layers costs exactly α per batch, while each hiding
// window contains microseconds of measured compute — so every collective the
// schedule can prefetch is hidden completely, and the exposed remainders are
// predictable in closed form:
//
//   - A/B broadcasts: q·b = 6 requests per rank. Only batch 0's stage 0 is
//     unprefetchable (nothing computes before it), so exposed = α and hidden
//     = 5α. A within-batch-only pipeline (PR 2) would leave every batch's
//     stage 0 exposed (3α) — this test is the differential proof of the
//     cross-batch prefetch.
//   - Fiber AllToAll: posted before the own-layer Merge-Layer share, so all
//     b·(l−1)·α = 3α hides behind it and exposed = 0.
func TestFullPipelineHidesBatchBoundariesAndFiberExchange(t *testing.T) {
	const alpha = 1e-9
	cm := mpi.CostModel{AlphaSec: alpha} // latency-only: every bcast costs α·lg q
	const p, l, b = 8, 2, 3              // q = 2
	a := randomMat(t, 64, 64, 1200, 75)
	bm := randomMat(t, 64, 64, 1200, 76)

	staged, sSum := runWithCost(t, p, l, cm, a, bm, Options{ForceBatches: b})
	piped, pSum := runWithCost(t, p, l, cm, a, bm, Options{ForceBatches: b, Pipeline: true})
	if !spmat.Equal(staged, piped) {
		t.Fatal("fully-overlapped output differs from staged")
	}

	const tol = 1e-13
	approx := func(got, want float64) bool { return got > want-tol && got < want+tol }
	for _, tc := range []struct {
		step, hiddenStep        string
		wantStaged              float64
		wantExposed, wantHidden float64
	}{
		{StepABcast, StepABcastHidden, 6 * alpha, alpha, 5 * alpha},
		{StepBBcast, StepBBcastHidden, 6 * alpha, alpha, 5 * alpha},
		{StepAllToAll, StepAllToAllHidden, 3 * alpha, 0, 3 * alpha},
	} {
		if got := sSum.Step(tc.step).CommSeconds; !approx(got, tc.wantStaged) {
			t.Errorf("%s staged exposed %v, want %v", tc.step, got, tc.wantStaged)
		}
		if got := sSum.Step(tc.hiddenStep).HiddenSeconds; got != 0 {
			t.Errorf("%s staged hid %v, want 0", tc.step, got)
		}
		if got := pSum.Step(tc.step).CommSeconds; !approx(got, tc.wantExposed) {
			t.Errorf("%s overlapped exposed %v, want %v", tc.step, got, tc.wantExposed)
		}
		if got := pSum.Step(tc.hiddenStep).HiddenSeconds; !approx(got, tc.wantHidden) {
			t.Errorf("%s overlapped hidden %v, want %v", tc.step, got, tc.wantHidden)
		}
		// Volume accounting is mode-independent: the overlapped schedule moves
		// the same payloads (the AllToAll keeps its self piece local in both).
		ss, ps := sSum.Step(tc.step), pSum.Step(tc.step)
		if ss.Bytes != ps.Bytes || ss.Messages != ps.Messages {
			t.Errorf("%s volume changed: staged %d B/%d msgs, overlapped %d B/%d msgs",
				tc.step, ss.Bytes, ss.Messages, ps.Bytes, ps.Messages)
		}
	}
}

// TestNoHiddenWhenPipelineOff: the staged schedule must never charge any of
// the hidden categories — including the new AllToAll-Fiber-Hidden — across
// batching, layering, and the symbolic pass.
func TestNoHiddenWhenPipelineOff(t *testing.T) {
	a := randomMat(t, 48, 48, 600, 77)
	_, _, sum := runDistributed(t, 16, 4, a, a, Options{ForceBatches: 3, RunSymbolic: true}, nil)
	for _, cat := range HiddenSteps {
		if s := sum.Step(cat); s.HiddenSeconds != 0 || s.CommSeconds != 0 || s.Bytes != 0 || s.Messages != 0 {
			t.Errorf("staged run charged hidden category %s: %+v", cat, s)
		}
	}
}

// TestRowBatchedPipelinedMatchesStaged: the transposed (row-batched) driver
// inherits the fully-overlapped schedule through core.Multiply; its output
// must also be independent of the schedule.
func TestRowBatchedPipelinedMatchesStaged(t *testing.T) {
	a := randomMat(t, 48, 48, 900, 78)
	b := randomMat(t, 48, 48, 300, 79)
	run := func(pipeline bool) *spmat.CSC {
		rc := RunConfig{P: 8, L: 2, Cost: testCM,
			Opts: Options{ForceBatches: 2, Pipeline: pipeline}}
		out, _, err := MultiplyRowBatched(a, b, rc, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !spmat.Equal(run(false), run(true)) {
		t.Error("row-batched pipelined output differs from staged")
	}
}

// TestStagedBcastMeteringMatchesBlockingReference: with Pipeline off the
// rewritten stage loop (IbcastStart + immediate Wait) must meter its
// broadcasts exactly like the pre-rewrite implementation, which called the
// blocking Bcast directly. The reference below *is* that old schedule — the
// same per-stage Row/Col Bcast calls under the same categories — run
// independently, so a uniform metering regression in forEachStage (wrong
// category, dropped message, cost charged twice) cannot cancel out.
func TestStagedBcastMeteringMatchesBlockingReference(t *testing.T) {
	const p, l = 8, 2
	a := randomMat(t, 48, 48, 800, 74)
	_, _, got := runDistributed(t, p, l, a, a, Options{ForceBatches: 1}, nil)

	meters := mpi.Run(p, testCM, func(c *mpi.Comm) {
		g, err := grid.New(c, l)
		if err != nil {
			t.Error(err)
			return
		}
		proc, err := Setup(g, a, a, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		c0, c1 := proc.DB.ColRangeOf(g.J)
		bt := distmat.NewBatching(c1-c0, 1, g.L)
		bBatch := spmat.MatColSelect(proc.LocalB, bt.BatchCols(0))
		meter := g.World.Meter()
		for s := 0; s < g.Q; s++ {
			meter.SetCategory(StepABcast)
			var aMsg mpi.Payload
			if g.J == s {
				aMsg = proc.LocalA
			}
			g.Row.Bcast(s, aMsg)
			meter.SetCategory(StepBBcast)
			var bMsg mpi.Payload
			if g.I == s {
				bMsg = bBatch
			}
			g.Col.Bcast(s, bMsg)
		}
	})
	want := mpi.Summarize(meters)
	for _, cat := range []string{StepABcast, StepBBcast} {
		w, g := want.Step(cat), got.Step(cat)
		if w.CommSeconds != g.CommSeconds || w.Bytes != g.Bytes || w.Messages != g.Messages {
			t.Errorf("%s: staged loop metered comm=%v bytes=%d msgs=%d; blocking reference comm=%v bytes=%d msgs=%d",
				cat, g.CommSeconds, g.Bytes, g.Messages, w.CommSeconds, w.Bytes, w.Messages)
		}
	}
}
