package core

import (
	"fmt"
	"testing"

	"repro/internal/distmat"
	"repro/internal/grid"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// TestPipelinedOutputBitIdentical: the pipelined schedule reorders only when
// broadcasts are posted, never which operands a stage multiplies or the
// order stage products are merged in, so the output must be bit-identical to
// the staged schedule across kernels, grids, batch counts, and merge
// strategies.
func TestPipelinedOutputBitIdentical(t *testing.T) {
	a := randomMat(t, 48, 48, 500, 71)
	b := randomMat(t, 48, 48, 500, 72)
	for _, tc := range []struct {
		p, l, batches int
		kernel        localmm.Kernel
		merger        localmm.Merger
		incremental   bool
		threads       int
	}{
		{p: 4, l: 1, batches: 1, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHash},
		{p: 4, l: 1, batches: 3, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHash},
		{p: 8, l: 2, batches: 2, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHash},
		{p: 16, l: 4, batches: 3, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHash},
		{p: 8, l: 2, batches: 2, kernel: localmm.KernelHeap, merger: localmm.MergerHeap},
		{p: 9, l: 1, batches: 2, kernel: localmm.KernelHybrid, merger: localmm.MergerHash, incremental: true},
		{p: 8, l: 2, batches: 2, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHash, threads: 4},
	} {
		name := fmt.Sprintf("p=%d,l=%d,b=%d,k=%v,inc=%v,t=%d",
			tc.p, tc.l, tc.batches, tc.kernel, tc.incremental, tc.threads)
		opts := Options{
			ForceBatches: tc.batches, Kernel: tc.kernel, Merger: tc.merger,
			IncrementalMerge: tc.incremental, Threads: tc.threads,
		}
		staged, _, _ := runDistributed(t, tc.p, tc.l, a, b, opts, nil)
		opts.Pipeline = true
		piped, _, _ := runDistributed(t, tc.p, tc.l, a, b, opts, nil)
		if !spmat.Equal(staged, piped) {
			t.Errorf("%s: pipelined output differs from staged", name)
		}
	}
}

// TestPipelineOverlapObservable: with Pipeline on, stage s+1's broadcasts
// are posted before stage s's multiply completes, so part of their modeled
// cost must land in the hidden meter categories; the exposed share can only
// shrink, and the volume accounting (bytes, messages) must not move at all.
func TestPipelineOverlapObservable(t *testing.T) {
	a := randomMat(t, 64, 64, 1500, 73)
	opts := Options{ForceBatches: 2, RunSymbolic: true}
	_, _, staged := runDistributed(t, 16, 4, a, a, opts, nil)
	opts.Pipeline = true
	_, _, piped := runDistributed(t, 16, 4, a, a, opts, nil)

	var hidden float64
	for _, cat := range HiddenSteps {
		hidden += piped.Step(cat).HiddenSeconds
	}
	if hidden <= 0 {
		t.Fatalf("pipelined run hid no broadcast time (categories %v)", piped.Categories())
	}
	for _, cat := range HiddenSteps {
		if s := staged.Step(cat).HiddenSeconds; s != 0 {
			t.Errorf("staged run charged hidden category %s: %v", cat, s)
		}
	}
	// Hidden time overlapped compute, so it must not re-enter the exposed
	// communication totals: across all categories (hidden ones included,
	// whose CommSeconds stay zero) pipelining can only shrink exposed comm.
	// Modeled costs are deterministic, so strict inequality is safe here.
	if pc, sc := piped.TotalCommSeconds(), staged.TotalCommSeconds(); pc >= sc {
		t.Errorf("exposed comm did not shrink under pipelining: %v >= %v", pc, sc)
	}
	for _, cat := range []string{StepSymbolic, StepABcast, StepBBcast} {
		ss, ps := staged.Step(cat), piped.Step(cat)
		if ps.CommSeconds > ss.CommSeconds {
			t.Errorf("%s: exposed comm grew under pipelining: %v > %v", cat, ps.CommSeconds, ss.CommSeconds)
		}
		if ps.Bytes != ss.Bytes || ps.Messages != ss.Messages {
			t.Errorf("%s: volume changed under pipelining: %d B/%d msgs vs %d B/%d msgs",
				cat, ps.Bytes, ps.Messages, ss.Bytes, ss.Messages)
		}
	}
}

// TestStagedBcastMeteringMatchesBlockingReference: with Pipeline off the
// rewritten stage loop (IbcastStart + immediate Wait) must meter its
// broadcasts exactly like the pre-rewrite implementation, which called the
// blocking Bcast directly. The reference below *is* that old schedule — the
// same per-stage Row/Col Bcast calls under the same categories — run
// independently, so a uniform metering regression in forEachStage (wrong
// category, dropped message, cost charged twice) cannot cancel out.
func TestStagedBcastMeteringMatchesBlockingReference(t *testing.T) {
	const p, l = 8, 2
	a := randomMat(t, 48, 48, 800, 74)
	_, _, got := runDistributed(t, p, l, a, a, Options{ForceBatches: 1}, nil)

	meters := mpi.Run(p, testCM, func(c *mpi.Comm) {
		g, err := grid.New(c, l)
		if err != nil {
			t.Error(err)
			return
		}
		proc, err := Setup(g, a, a, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		c0, c1 := proc.DB.ColRangeOf(g.J)
		bt := distmat.NewBatching(c1-c0, 1, g.L)
		bBatch := spmat.ColSelect(proc.LocalB, bt.BatchCols(0))
		meter := g.World.Meter()
		for s := 0; s < g.Q; s++ {
			meter.SetCategory(StepABcast)
			var aMsg mpi.Payload
			if g.J == s {
				aMsg = proc.LocalA
			}
			g.Row.Bcast(s, aMsg)
			meter.SetCategory(StepBBcast)
			var bMsg mpi.Payload
			if g.I == s {
				bMsg = bBatch
			}
			g.Col.Bcast(s, bMsg)
		}
	})
	want := mpi.Summarize(meters)
	for _, cat := range []string{StepABcast, StepBBcast} {
		w, g := want.Step(cat), got.Step(cat)
		if w.CommSeconds != g.CommSeconds || w.Bytes != g.Bytes || w.Messages != g.Messages {
			t.Errorf("%s: staged loop metered comm=%v bytes=%d msgs=%d; blocking reference comm=%v bytes=%d msgs=%d",
				cat, g.CommSeconds, g.Bytes, g.Messages, w.CommSeconds, w.Bytes, w.Messages)
		}
	}
}
