package core

import (
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// sparseComm holds one rank's state for the column-subset A-broadcast path
// (Options.SparseComm). The key observation: at SUMMA stage s the local
// multiply reads column c of the broadcast Ã(i,s,k) only when row c of this
// rank's B̃(s,j,k) is occupied, and B's row slices align with A's column
// slices by construction (distmat: ADist.ColSliceOf mirrors BDist.RowSliceOf).
// So the row support of the B block a rank receives at stage s — a byproduct
// of the symbolic pass, which broadcasts exactly those blocks — is the column
// subset of every A block the rank will ever need at that stage, for every
// batch (batching splits B's columns, never its rows, so the support can only
// shrink per batch; using the full block's support is a sound over-cover).
type sparseComm struct {
	// active enables the subset path in postStageBcasts. It is switched on
	// only after every stage's support is recorded, so the symbolic pass
	// itself always uses the plain full-block broadcasts.
	active bool
	// force ships subsets even when the cost model prefers the full
	// broadcast (Options.SparseComm == mpi.SparseOn).
	force bool
	// stage is the stage whose broadcast is being posted — the mutable input
	// of fn, so one hoisted closure serves every post allocation-free.
	stage int
	// supports[s] is the sorted local column subset of the stage-s A block
	// this rank's multiplies can touch (nil until recorded).
	supports [][]int32
	// bytes[s] memoizes the subset's wire size (-1 until computed): the A
	// block a stage broadcasts is the root's LocalA every batch, so the size
	// is batch-invariant.
	bytes []int64
	// fn is the subsetBytes callback handed to mpi.IbcastColsStart.
	fn func(full mpi.Payload) int64
}

// resetSparseComm re-arms the subset state for one BatchedSUMMA3D. With the
// knob off — or on a 1×1 layer grid, where the row broadcast moves nothing —
// the state stays inert and postStageBcasts keeps the historical IbcastStart
// path, byte-for-byte.
func (p *Proc) resetSparseComm() {
	p.sc = sparseComm{}
	if p.Opts.SparseComm == mpi.SparseOff || p.G.Q <= 1 {
		return
	}
	p.sc.force = p.Opts.SparseComm == mpi.SparseOn
	p.sc.supports = make([][]int32, p.G.Q)
	p.sc.bytes = make([]int64, p.G.Q)
	for s := range p.sc.bytes {
		p.sc.bytes[s] = -1
	}
	sc := &p.sc
	sc.fn = func(full mpi.Payload) int64 {
		if n := sc.bytes[sc.stage]; n >= 0 {
			return n
		}
		var n int64
		if full != nil {
			n = spmat.SubsetWireBytes(full.(spmat.Matrix), sc.supports[sc.stage])
		}
		sc.bytes[sc.stage] = n
		return n
	}
}

// recordSupport captures the stage-s column subset from the B block the
// symbolic pass just received. Free bookkeeping: the symbolic broadcasts
// deliver exactly the blocks whose row support is needed.
func (p *Proc) recordSupport(s int, bRecv spmat.Matrix) {
	if p.sc.supports == nil || p.sc.supports[s] != nil {
		return
	}
	p.sc.supports[s] = spmat.RowSupport(bRecv)
}

// supportMsg is the Allgather payload of the symbolic-free fallback: one
// rank's local B row support, 4 wire bytes per index.
type supportMsg []int32

// CommBytes returns the wire size of the support list.
func (m supportMsg) CommBytes() int64 { return 4 * int64(len(m)) }

// gatherSupports is the fallback when the symbolic pass is skipped
// (ForceBatches without RunSymbolic): one Allgather of the local B row
// supports along the process column yields every stage's subset — the
// column communicator is ordered by row coordinate i, so gathered[s] is the
// support of B̃(s,j,k). The exchange is charged to A-Broadcast: it is the
// price of setting up the sparse A path.
func (p *Proc) gatherSupports() {
	g := p.G
	g.World.Meter().SetCategory(StepABcast)
	gathered := g.Col.Allgather(supportMsg(spmat.RowSupport(p.LocalB)))
	for s := 0; s < g.Q; s++ {
		p.sc.supports[s] = gathered[s].(supportMsg)
	}
}
