package core

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/distmat"
	"repro/internal/grid"
	"repro/internal/localmm"
	"repro/internal/spmat"
)

// Proc is one rank's execution context for a distributed SpGEMM C = A·B.
type Proc struct {
	G    *grid.Grid3D
	Opts Options

	// DA and DB describe the global distributions of A (column-sliced into
	// layers) and B (row-sliced into layers).
	DA *distmat.ADist
	DB *distmat.BDist

	// LocalA and LocalB are this rank's pieces, stored per Opts.Format
	// (CSC, DCSC, or the per-block auto heuristic).
	LocalA, LocalB spmat.Matrix

	// bt is the block-cyclic batching of this rank's B block column; set
	// once b is known.
	bt distmat.Batching

	// pipe is the cross-batch pipeline state (overlap ledger plus the
	// prefetched next-batch broadcasts), reset by every BatchedSUMMA3D.
	pipe pipeState

	// sc is the column-subset A-broadcast state (Opts.SparseComm), reset by
	// every BatchedSUMMA3D alongside pipe.
	sc sparseComm
}

// Setup distributes the global operands onto the grid: each rank extracts
// its own piece (the simulated equivalent of reading a pre-distributed
// matrix). A is rows×inner, B is inner×cols.
func Setup(g *grid.Grid3D, a, b *spmat.CSC, opts Options) (*Proc, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("core: inner dimension mismatch: A is %v, B is %v", a, b)
	}
	opts = opts.withDefaults()
	p := &Proc{
		G:    g,
		Opts: opts,
		DA:   distmat.NewADist(a.Rows, a.Cols, g.Q, g.L),
		DB:   distmat.NewBDist(b.Rows, b.Cols, g.Q, g.L),
	}
	p.LocalA = p.DA.LocalMat(a, g.I, g.J, g.K, opts.Format)
	p.LocalB = p.DB.LocalMat(b, g.I, g.J, g.K, opts.Format)
	return p, nil
}

// SetupLocal wires a Proc from already-local pieces (used when a pipeline
// keeps matrices distributed between operations, e.g. Markov clustering
// iterations). The descriptors must describe the same global shapes on the
// same grid. The pieces are re-stored per opts.Format.
func SetupLocal(g *grid.Grid3D, da *distmat.ADist, db *distmat.BDist, localA, localB spmat.Matrix, opts Options) *Proc {
	opts = opts.withDefaults()
	return &Proc{
		G: g, Opts: opts, DA: da, DB: db,
		LocalA: spmat.WithFormat(localA, opts.Format),
		LocalB: spmat.WithFormat(localB, opts.Format),
	}
}

// Result is one rank's output of BatchedSUMMA3D.
type Result struct {
	// C is the local output piece with sorted columns; its columns are in
	// batch-major order and GlobalCols maps each to its global index.
	C *spmat.CSC
	// GlobalCols[x] is the global column of local column x.
	GlobalCols []int32
	// RowOffset is the global row index of local row 0.
	RowOffset int32
	// Batches is the number of batches executed.
	Batches int
	// SymbolicB is what the symbolic step estimated (0 when skipped).
	SymbolicB int
	// LocalFlops counts multiplications performed by this rank.
	LocalFlops int64
	// UnmergedNNZ is Σ over stages and batches of per-stage product nonzeros
	// (the D̃ storage the symbolic step bounds).
	UnmergedNNZ int64
	// MergedLayerNNZ is Σ over batches of nnz(D̃) after Merge-Layer.
	MergedLayerNNZ int64
	// PeakMemBytes is the modeled per-rank memory high-water mark
	// (r · live nonzeros), demonstrating the memory-constrained claim.
	PeakMemBytes int64
	// BatchNNZ is the per-batch local output size before any hook pruning.
	BatchNNZ []int64
}

// BatchHook is invoked after each batch's Merge-Fiber with the batch index,
// the global columns the local piece covers, and the local piece itself
// (sorted columns). The returned matrix replaces the piece in the
// concatenated result; returning nil keeps the piece. Applications use the
// hook to prune or stream out batches (HipMCL, Sec. V-C).
type BatchHook func(batch int, globalCols []int32, c *spmat.CSC) *spmat.CSC

// AssembleResults reconstructs the global C from every rank's Result. Test
// and verification helper (a real application consumes batches in place).
func AssembleResults(results []*Result, rows, cols int32) (*spmat.CSC, error) {
	var ts []spmat.Triple
	for _, r := range results {
		if r == nil {
			continue
		}
		for x := int32(0); x < r.C.Cols; x++ {
			rws, vls := r.C.Column(x)
			gc := r.GlobalCols[x]
			for q := range rws {
				ts = append(ts, spmat.Triple{Row: rws[q] + r.RowOffset, Col: gc, Val: vls[q]})
			}
		}
	}
	return spmat.FromTriples(rows, cols, ts, nil)
}

// stageKernel returns the Local-Multiply kernel for one stage. With
// Opts.AutoKernel the kernel cost table prices the stage's exact flops and
// scanned-column count and the cheaper of the heap and hash regimes runs
// (per block and stage, as Azad et al. do per column bucket); otherwise the
// configured kernel runs everywhere. Every kernel produces bit-identical
// values, so the choice is a speed decision only.
func (p *Proc) stageKernel(flops, scanCols int64) localmm.Kernel {
	if !p.Opts.AutoKernel {
		return p.Opts.Kernel
	}
	name, _ := p.Opts.Kernels.PickKernel(flops, scanCols)
	if name == costmodel.KernelNameHeap {
		return localmm.KernelHeap
	}
	return localmm.KernelHashUnsorted
}

// pickMerger returns the merge strategy for one merge of entries stored
// nonzeros over scanCols scanned columns, per Opts.AutoMerger.
func (p *Proc) pickMerger(entries, scanCols int64) localmm.Merger {
	if !p.Opts.AutoMerger {
		return p.Opts.Merger
	}
	name, _ := p.Opts.Kernels.PickMerger(entries, scanCols)
	if name == costmodel.MergerNameHeap {
		return localmm.MergerHeap
	}
	return localmm.MergerHash
}

// kernelAs returns the local-multiply function for kernel k, generic over the
// storage format (localmm.MulMat dispatches to the CSC fast path when both
// operands are CSC). Opts.Threads > 1 runs the two-phase parallel kernel;
// the workers execute inside the caller's MeasureCompute token, so the
// single-token gate still serializes ranks and intra-rank speedup shows up
// as shorter measured compute time.
func (p *Proc) kernelAs(k localmm.Kernel) func(a, b spmat.Matrix) spmat.Matrix {
	sr, threads := p.Opts.Semiring, p.Opts.Threads
	return func(a, b spmat.Matrix) spmat.Matrix {
		return localmm.MulMat(k, a, b, sr, threads)
	}
}

// mergeAs returns the merge function for merger mg, parallelized the same way
// as kernelAs when Opts.Threads > 1 and format-generic like it (Merge-Fiber
// can see mixed formats under the auto heuristic).
func (p *Proc) mergeAs(mg localmm.Merger) func(mats []spmat.Matrix, sorted bool) spmat.Matrix {
	sr, threads := p.Opts.Semiring, p.Opts.Threads
	return func(mats []spmat.Matrix, sorted bool) spmat.Matrix {
		return localmm.MergeMat(mg, mats, sr, sorted, threads)
	}
}

// mergeFn returns the merge function of the statically configured merger
// (call sites that pick per merge use pickMerger + mergeAs).
func (p *Proc) mergeFn() func(mats []spmat.Matrix, sorted bool) spmat.Matrix {
	return p.mergeAs(p.Opts.Merger)
}

// colScanWork is the column-metadata share of a block's modeled work: the
// dense column count for CSC, the stored-column count for DCSC. This is the
// O(n)-per-block term the doubly-compressed path removes from the modeled
// critical path.
func colScanWork(m spmat.Matrix) int64 {
	if m.Format() == spmat.FormatDCSC {
		return m.NonEmptyCols()
	}
	_, cols := m.Dims()
	return int64(cols)
}
