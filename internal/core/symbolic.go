package core

import (
	"fmt"
	"sync"

	"repro/internal/grid"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// Symbolic3D executes Algorithm 3: the communication-avoiding distributed
// symbolic step that estimates the number of batches b required for the
// multiplication to fit in M aggregate bytes. Like SUMMA3D it broadcasts Ã
// and B̃ through every stage of every layer, but the local work only counts
// output nonzeros (LOCALSYMBOLIC), so the broadcasts dominate and the 3D
// communication-avoidance matters even more (Fig 8).
//
// It returns the estimated batch count b ≥ 1 and the max-over-ranks unmerged
// output nonzeros the estimate was based on. The estimate uses per-process
// maxima (not averages) so that no process exhausts its share of memory even
// under load imbalance.
func (p *Proc) Symbolic3D() (b int, maxNNZC int64, err error) {
	g := p.G
	meter := g.World.Meter()
	meter.SetCategory(StepSymbolic)

	var localNNZ int64 // nnz[i,j,k] of Alg 3
	stages := g.Q
	pipe := p.Opts.Pipeline

	// The broadcasts mirror SUMMA3D's but are charged to Symbolic. With
	// Opts.Pipeline the loop is the same stage-prefetch schedule as
	// forEachStage: stage s+1's broadcasts are posted before stage s's
	// LocalSymbolic runs, and the broadcast cost the overlap ledger's window
	// covers is charged to Symbolic-Hidden. The symbolic pass is dominated by
	// its broadcasts (Fig 8), so this is where overlap pays off most.
	var next stageBcasts
	if pipe {
		next = p.postStageBcasts(0, p.LocalB)
	}
	tr := meter.Recorder()
	for s := 0; s < stages; s++ {
		tr.SetStage(s)
		cur := next
		if !pipe {
			cur = p.postStageBcasts(s, p.LocalB)
		}
		aRecv, bRecv := p.waitStageBcasts(cur,
			StepSymbolic, StepSymbolicHidden, StepSymbolic, StepSymbolicHidden)
		if pipe && s+1 < stages {
			next = p.postStageBcasts(s+1, p.LocalB)
		}
		// The stage-s B block is exactly the one whose row support is the
		// sparse A path's stage-s column subset; capture it for free.
		p.recordSupport(s, bRecv)

		symFlops := localmm.MatFlops(aRecv, bRecv)
		symSec := p.measure(func() {
			// LOCALSYMBOLIC (Alg 3 line 7), threaded like the numeric
			// kernels when Opts.Threads > 1.
			localNNZ += localmm.SymbolicMat(aRecv, bRecv, p.Opts.Threads)
		})
		meter.AddComputeWork(symSec, symFlops+bRecv.NNZ()+colScanWork(bRecv)+1)
	}
	tr.SetStage(-1)

	// Alg 3 lines 9–11: max unmerged output, max Ã, max B̃ over all ranks.
	// The input terms are the per-format modeled footprints, not flat
	// r·nnz: a doubly-compressed block charges only its stored columns, so
	// hypersparse inputs leave more per-process headroom and the decision
	// lands on fewer batches under the same MemBytes.
	// (spmat.BlockMemBytes: flat r·nnz for CSC so pre-format-knob
	// decisions reproduce bit-for-bit; explicit per-stored-column
	// accounting for DCSC.)
	maxNNZC = g.World.AllreduceInt64(localNNZ, mpi.OpMax)
	maxMemA := g.World.AllreduceInt64(spmat.BlockMemBytes(p.LocalA, p.Opts.BytesPerNnz), mpi.OpMax)
	maxMemB := g.World.AllreduceInt64(spmat.BlockMemBytes(p.LocalB, p.Opts.BytesPerNnz), mpi.OpMax)

	b, err = batchesFor(maxNNZC, maxMemA, maxMemB, p.Opts, g.P())
	return b, maxNNZC, err
}

// batchesFor evaluates Alg 3 line 12: b = ⌈r·maxnnzC / (M/p − (memA +
// memB))⌉, clamped to at least 1, where memA/memB are the per-format input
// footprints. An unconstrained memory budget yields 1.
func batchesFor(maxNNZC, maxMemA, maxMemB int64, opts Options, p int) (int, error) {
	if opts.MemBytes <= 0 {
		return 1, nil
	}
	r := opts.BytesPerNnz
	perProc := float64(opts.MemBytes) / float64(p)
	avail := perProc - float64(maxMemA+maxMemB)
	if avail <= 0 {
		return 0, fmt.Errorf("core: inputs alone exceed the memory budget: per-process %g bytes, inputs need %d",
			perProc, maxMemA+maxMemB)
	}
	b := int((float64(r*maxNNZC) + avail - 1) / avail)
	if b < 1 {
		b = 1
	}
	if opts.MaxBatches > 0 && b > opts.MaxBatches {
		b = opts.MaxBatches
	}
	return b, nil
}

// SymbolicBatches runs only the distributed symbolic step (Alg 3) on a
// fresh simulated cluster and returns the agreed batch count — the host-side
// entry point for studying the batch decision (e.g. CSC-vs-DCSC footprint
// ablations) without paying for the numeric phases.
func SymbolicBatches(a, b *spmat.CSC, rc RunConfig) (int, error) {
	if err := rc.Validate(); err != nil {
		return 0, err
	}
	bs := make([]int, rc.P)
	errs := make([]error, rc.P)
	var mu sync.Mutex
	mpi.Run(rc.P, rc.Cost, func(c *mpi.Comm) {
		g, err := grid.New(c, rc.L)
		var nb int
		if err == nil {
			var proc *Proc
			proc, err = Setup(g, a, b, rc.Opts)
			if err == nil {
				nb, _, err = proc.Symbolic3D()
			}
		}
		mu.Lock()
		bs[c.Rank()], errs[c.Rank()] = nb, err
		mu.Unlock()
	})
	for r, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("core: rank %d: %w", r, err)
		}
	}
	return bs[0], nil
}

// BatchLowerBound evaluates the analytic lower bound of Eq 2 on the host:
// b ≥ ⌈mem(C) / (M − r(nnz(A)+nnz(B)))⌉ where mem(C) = r·Σ_k nnz(D(k)) is the
// aggregate unmerged intermediate size. Returns 1 when memory is
// unconstrained.
func BatchLowerBound(memC, nnzA, nnzB, memBytes, bytesPerNnz int64) int {
	if memBytes <= 0 {
		return 1
	}
	avail := memBytes - bytesPerNnz*(nnzA+nnzB)
	if avail <= 0 {
		return 1 << 30 // effectively infeasible
	}
	b := (memC + avail - 1) / avail
	if b < 1 {
		return 1
	}
	return int(b)
}
