package core

import (
	"sort"
)

// overlapLedger is the per-rank accounting that decides how much modeled
// communication the split collectives may hide behind measured compute. It
// generalizes the per-stage credit pool of the within-batch pipeline to the
// full schedule: requests are posted at arbitrary points (the next stage, the
// next batch's first stage, the fiber exchange) and each compute second can
// hide at most k requests' communication — one per modeled NIC channel
// (Options.Channels; the k = 1 default is the paper's single-injection
// model).
//
// clock is the cumulative measured compute time of this rank; claimed[ch] is
// the set of disjoint clock intervals channel ch has already consumed as
// hiding credit. A request posted when the clock read post may, at wait time,
// hide up to the unclaimed measure of [post, clock) on its best channel: only
// compute that ran after the post and was not already claimed on that channel
// counts. Claims go to the channel with the most unclaimed credit in the
// window (lowest index on ties) and consume the earliest unclaimed compute
// first, so a request completed out of posting order (the fiber exchange
// waits before the prefetched next batch's broadcasts) never swallows the
// window of an earlier-posted request — interval accounting, not a single
// watermark, is what makes that hold. With posts and waits back to back (the
// staged schedule) the credit is always zero on every channel, so the ledger
// meters exactly like the blocking collectives. With k = 1 the accounting is
// bit-identical to the single-channel ledger of earlier releases.
type overlapLedger struct {
	clock float64
	// k is the channel count; 0 means 1. Set before the first claim.
	k       int
	claimed [][]span
}

// span is a half-open claimed interval [lo, hi) of the compute clock.
type span struct{ lo, hi float64 }

// channels returns the effective channel count (k = 0 means one).
func (l *overlapLedger) channels() int {
	if l.k < 1 {
		return 1
	}
	return l.k
}

// ensure sizes the per-channel claim lists.
func (l *overlapLedger) ensure() {
	if len(l.claimed) != l.channels() {
		l.claimed = make([][]span, l.channels())
	}
}

// advance records sec seconds of measured compute.
func (l *overlapLedger) advance(sec float64) { l.clock += sec }

// unclaimedIn returns the unclaimed compute seconds of [post, clock) on one
// channel's claim list.
func (l *overlapLedger) unclaimedIn(claimed []span, post float64) float64 {
	c := l.clock - post
	if c <= 0 {
		return 0
	}
	for _, s := range claimed {
		lo, hi := s.lo, s.hi
		if lo < post {
			lo = post
		}
		if hi > l.clock {
			hi = l.clock
		}
		if hi > lo {
			c -= hi - lo
		}
	}
	if c < 0 {
		return 0
	}
	return c
}

// creditSince returns the largest unclaimed compute credit in [post, clock)
// available on any channel.
func (l *overlapLedger) creditSince(post float64) float64 {
	l.ensure()
	best := 0.0
	for _, ch := range l.claimed {
		if c := l.unclaimedIn(ch, post); c > best {
			best = c
		}
	}
	return best
}

// claim consumes used seconds of unclaimed compute in [post, clock) on the
// channel with the most credit there (lowest index on ties), earliest first,
// so no other request can hide behind the same compute on the same channel.
// It returns the channel claimed, or -1 when nothing was consumed — the
// trace layer tags the just-recorded hidden span with it.
func (l *overlapLedger) claim(post, used float64) int {
	if used <= 0 {
		return -1
	}
	l.ensure()
	ch, best := 0, l.unclaimedIn(l.claimed[0], post)
	for i := 1; i < len(l.claimed); i++ {
		if c := l.unclaimedIn(l.claimed[i], post); c > best {
			ch, best = i, c
		}
	}
	l.claimed[ch] = l.claimOn(l.claimed[ch], post, used)
	return ch
}

// claimOn consumes used seconds on one channel's claim list and returns the
// updated list.
func (l *overlapLedger) claimOn(claimed []span, post, used float64) []span {
	var add []span
	pos := post
	for _, s := range claimed {
		if used <= 0 || pos >= l.clock {
			break
		}
		if s.hi <= pos {
			continue
		}
		if gapEnd := minf(s.lo, l.clock); gapEnd > pos {
			take := minf(gapEnd-pos, used)
			add = append(add, span{pos, pos + take})
			used -= take
			pos += take
		}
		if s.hi > pos {
			pos = s.hi
		}
	}
	if used > 0 && pos < l.clock {
		take := minf(l.clock-pos, used)
		add = append(add, span{pos, pos + take})
	}
	if len(add) == 0 {
		return claimed
	}
	claimed = append(claimed, add...)
	sort.Slice(claimed, func(i, j int) bool { return claimed[i].lo < claimed[j].lo })
	// Coalesce touching intervals so the list stays as short as the number of
	// genuinely distinct claim regions (usually one or two).
	merged := claimed[:1]
	for _, s := range claimed[1:] {
		if last := &merged[len(merged)-1]; s.lo <= last.hi {
			if s.hi > last.hi {
				last.hi = s.hi
			}
		} else {
			merged = append(merged, s)
		}
	}
	return merged
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// pipeState is one rank's cross-batch pipeline state, reset at the start of
// every BatchedSUMMA3D. Besides the ledger it carries the prefetched stage-0
// broadcasts of the upcoming batch: the last SUMMA stage of batch t posts
// batch t+1's first A/B broadcasts (Opts.Pipeline) so their cost can hide
// behind everything that still runs in batch t — the final multiply, the
// merges, and the fiber exchange.
type pipeState struct {
	ledger  overlapLedger
	next    stageBcasts
	hasNext bool
}

// measure runs fn under this run's compute token and advances the overlap
// ledger by its wall time, so split collectives posted before fn can claim it
// as hiding credit. In the staged schedule the ledger advance is inert: posts
// and waits are adjacent, so no request ever has a nonzero window.
func (p *Proc) measure(fn func()) float64 {
	sec := p.G.World.MeasureCompute(fn)
	p.pipe.ledger.advance(sec)
	return sec
}
