package core

import (
	"sort"
)

// overlapLedger is the per-rank accounting that decides how much modeled
// communication a split collective may hide behind measured compute. It
// generalizes the per-stage credit pool of the within-batch pipeline to the
// full schedule: requests are posted at arbitrary points (the next stage, the
// next batch's first stage, the fiber exchange) and each compute second can
// hide at most one request's communication.
//
// clock is the cumulative measured compute time of this rank; claimed is the
// set of disjoint clock intervals already consumed as hiding credit. A
// request posted when the clock read post may, at wait time, hide up to the
// unclaimed measure of [post, clock): only compute that ran after the post
// and was not already claimed by another outstanding request counts. Claims
// consume the earliest unclaimed compute first, so a request completed out
// of posting order (the fiber exchange waits before the prefetched next
// batch's broadcasts) never swallows the window of an earlier-posted request
// — interval accounting, not a single watermark, is what makes that hold.
// With posts and waits back to back (the staged schedule) the credit is
// always zero, so the ledger meters exactly like the blocking collectives.
type overlapLedger struct {
	clock   float64
	claimed []span
}

// span is a half-open claimed interval [lo, hi) of the compute clock.
type span struct{ lo, hi float64 }

// advance records sec seconds of measured compute.
func (l *overlapLedger) advance(sec float64) { l.clock += sec }

// creditSince returns the unclaimed compute seconds in [post, clock).
func (l *overlapLedger) creditSince(post float64) float64 {
	c := l.clock - post
	if c <= 0 {
		return 0
	}
	for _, s := range l.claimed {
		lo, hi := s.lo, s.hi
		if lo < post {
			lo = post
		}
		if hi > l.clock {
			hi = l.clock
		}
		if hi > lo {
			c -= hi - lo
		}
	}
	if c < 0 {
		return 0
	}
	return c
}

// claim consumes used seconds of unclaimed compute in [post, clock),
// earliest first, so no other request can hide behind the same compute.
func (l *overlapLedger) claim(post, used float64) {
	if used <= 0 {
		return
	}
	var add []span
	pos := post
	for _, s := range l.claimed {
		if used <= 0 || pos >= l.clock {
			break
		}
		if s.hi <= pos {
			continue
		}
		if gapEnd := minf(s.lo, l.clock); gapEnd > pos {
			take := minf(gapEnd-pos, used)
			add = append(add, span{pos, pos + take})
			used -= take
			pos += take
		}
		if s.hi > pos {
			pos = s.hi
		}
	}
	if used > 0 && pos < l.clock {
		take := minf(l.clock-pos, used)
		add = append(add, span{pos, pos + take})
	}
	if len(add) == 0 {
		return
	}
	l.claimed = append(l.claimed, add...)
	sort.Slice(l.claimed, func(i, j int) bool { return l.claimed[i].lo < l.claimed[j].lo })
	// Coalesce touching intervals so the list stays as short as the number of
	// genuinely distinct claim regions (usually one or two).
	merged := l.claimed[:1]
	for _, s := range l.claimed[1:] {
		if last := &merged[len(merged)-1]; s.lo <= last.hi {
			if s.hi > last.hi {
				last.hi = s.hi
			}
		} else {
			merged = append(merged, s)
		}
	}
	l.claimed = merged
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// pipeState is one rank's cross-batch pipeline state, reset at the start of
// every BatchedSUMMA3D. Besides the ledger it carries the prefetched stage-0
// broadcasts of the upcoming batch: the last SUMMA stage of batch t posts
// batch t+1's first A/B broadcasts (Opts.Pipeline) so their cost can hide
// behind everything that still runs in batch t — the final multiply, the
// merges, and the fiber exchange.
type pipeState struct {
	ledger  overlapLedger
	next    stageBcasts
	hasNext bool
}

// measure runs fn under this run's compute token and advances the overlap
// ledger by its wall time, so split collectives posted before fn can claim it
// as hiding credit. In the staged schedule the ledger advance is inert: posts
// and waits are adjacent, so no request ever has a nonzero window.
func (p *Proc) measure(fn func()) float64 {
	sec := p.G.World.MeasureCompute(fn)
	p.pipe.ledger.advance(sec)
	return sec
}
