package core

import (
	"sync"
	"testing"

	"repro/internal/grid"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// TestSparseCommModesBitIdentical: the column-subset path is a communication
// change only — every mode must produce the same assembled output, per batch
// count, kernel, grid shape, and schedule.
func TestSparseCommModesBitIdentical(t *testing.T) {
	a := randomMat(t, 60, 60, 300, 11)
	b := randomMat(t, 60, 60, 300, 12)
	for _, cfg := range []struct {
		name     string
		p, l, fb int
		symbolic bool
		pipeline bool
		kernel   localmm.Kernel
		merger   localmm.Merger
	}{
		{name: "p4-2d-staged", p: 4, l: 1, fb: 1},
		{name: "p16-3d-staged-b3", p: 16, l: 4, fb: 3},
		{name: "p16-3d-staged-symbolic", p: 16, l: 4, fb: 2, symbolic: true},
		{name: "p16-3d-pipelined-b2", p: 16, l: 4, fb: 2, pipeline: true},
		{name: "p16-3d-heap", p: 16, l: 4, fb: 2, kernel: localmm.KernelHeap, merger: localmm.MergerHeap},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			var ref *spmat.CSC
			for _, mode := range []mpi.SparseMode{mpi.SparseOff, mpi.SparseAuto, mpi.SparseOn} {
				opts := Options{
					ForceBatches: cfg.fb, RunSymbolic: cfg.symbolic, Pipeline: cfg.pipeline,
					Kernel: cfg.kernel, Merger: cfg.merger, SparseComm: mode,
				}
				got, _, _ := runDistributed(t, cfg.p, cfg.l, a, b, opts, nil)
				if ref == nil {
					ref = got
					continue
				}
				if !spmat.Equal(ref, got) {
					t.Fatalf("sparse-comm %v changed the output", mode)
				}
			}
		})
	}
}

// runSparse is runDistributed with a caller-chosen cost model, so the subset
// decision can be driven into the bandwidth-dominated regime where it fires.
func runSparse(t *testing.T, p, l int, cm mpi.CostModel, a, b *spmat.CSC, opts Options) (*spmat.CSC, *mpi.Summary) {
	t.Helper()
	results := make([]*Result, p)
	var mu sync.Mutex
	var firstErr error
	meters := mpi.Run(p, cm, func(c *mpi.Comm) {
		g, err := grid.New(c, l)
		var res *Result
		if err == nil {
			var proc *Proc
			proc, err = Setup(g, a, b, opts)
			if err == nil {
				res, err = proc.BatchedSUMMA3D(nil)
			}
		}
		mu.Lock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		results[c.Rank()] = res
		mu.Unlock()
	})
	if firstErr != nil {
		t.Fatalf("distributed run failed: %v", firstErr)
	}
	assembled, err := AssembleResults(results, a.Rows, b.Cols)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return assembled, mpi.Summarize(meters)
}

// TestSparseCommReducesABcastBytes: on a hypersparse input (blocks far wider
// than their occupancy) and a bandwidth-dominated machine, auto mode must
// strictly reduce the metered A-Broadcast volume and modeled time versus
// full-block broadcasts, while leaving every other step's volume untouched.
func TestSparseCommReducesABcastBytes(t *testing.T) {
	// 1600 columns over a 4×4×4 grid → 100-column slices with a handful of
	// entries each: exactly the hypersparse regime the subset path targets.
	a := randomMat(t, 1600, 1600, 1500, 21)
	b := randomMat(t, 1600, 1600, 1500, 22)
	cm := mpi.CostModel{AlphaSec: 1e-9, BetaSecPerByte: 1e-6}
	run := func(mode mpi.SparseMode) *mpi.Summary {
		_, sum := runSparse(t, 64, 4, cm, a, b,
			Options{ForceBatches: 2, RunSymbolic: true, SparseComm: mode})
		return sum
	}
	off, auto := run(mpi.SparseOff), run(mpi.SparseAuto)
	offA, autoA := off.Steps[StepABcast], auto.Steps[StepABcast]
	if autoA.Bytes >= offA.Bytes {
		t.Errorf("auto A-Broadcast bytes = %d, want < off's %d", autoA.Bytes, offA.Bytes)
	}
	if autoA.CommSeconds >= offA.CommSeconds {
		t.Errorf("auto A-Broadcast comm = %g, want < off's %g", autoA.CommSeconds, offA.CommSeconds)
	}
	for _, step := range []string{StepBBcast, StepAllToAll} {
		if o, s := off.Steps[step], auto.Steps[step]; o.Bytes != s.Bytes {
			t.Errorf("%s bytes changed under sparse-comm: %d vs %d", step, o.Bytes, s.Bytes)
		}
	}
	// The symbolic pass always uses full blocks: supports are recorded there.
	if o, s := off.Steps[StepSymbolic], auto.Steps[StepSymbolic]; o.Bytes != s.Bytes {
		t.Errorf("Symbolic bytes changed under sparse-comm: %d vs %d", o.Bytes, s.Bytes)
	}
}

// TestSparseCommFallbackAllgather: skipping the symbolic pass must still arm
// the subset path — one support Allgather along each process column, charged
// to A-Broadcast — and produce the same output.
func TestSparseCommFallbackAllgather(t *testing.T) {
	const p, l = 16, 4
	a := randomMat(t, 400, 400, 500, 31)
	b := randomMat(t, 400, 400, 500, 32)
	opts := func(mode mpi.SparseMode) Options {
		return Options{ForceBatches: 2, SparseComm: mode} // symbolic skipped
	}
	off, _, offSum := runDistributed(t, p, l, a, b, opts(mpi.SparseOff), nil)
	on, _, onSum := runDistributed(t, p, l, a, b, opts(mpi.SparseOn), nil)
	if !spmat.Equal(off, on) {
		t.Fatal("sparse-comm on with Allgather fallback changed the output")
	}
	// Each rank posts exactly one extra A-Broadcast message: the Allgather.
	offMsg, onMsg := offSum.Steps[StepABcast].Messages, onSum.Steps[StepABcast].Messages
	if onMsg != offMsg+p {
		t.Errorf("A-Broadcast messages: off %d, on %d, want %d (one support Allgather per rank)", offMsg, onMsg, offMsg+p)
	}
}
