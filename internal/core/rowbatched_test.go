package core

import (
	"sync"
	"testing"

	"repro/internal/localmm"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

func TestRowBatchedMatchesSerial(t *testing.T) {
	a := randomMat(t, 40, 36, 300, 70)
	b := randomMat(t, 36, 44, 280, 71)
	want := localmm.Multiply(a, b, semiring.PlusTimes())
	rc := RunConfig{P: 8, L: 2, Cost: testCM, Opts: Options{ForceBatches: 3}}
	got, results, err := MultiplyRowBatched(a, b, rc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !spmat.Equal(got, want) {
		t.Error("row-batched result differs from serial")
	}
	if results[0].Batches != 3 {
		t.Errorf("batches=%d", results[0].Batches)
	}
}

func TestRowBatchedHookSeesRowBatches(t *testing.T) {
	a := randomMat(t, 32, 32, 250, 72)
	rowsSeen := map[int32]bool{}
	var mu sync.Mutex // hooks run on concurrent rank goroutines
	rc := RunConfig{P: 4, L: 1, Cost: testCM, Opts: Options{ForceBatches: 2}}
	_, _, err := MultiplyRowBatched(a, a, rc, func(rank int) BatchHook {
		return func(_ int, globalCols []int32, piece *spmat.CSC) *spmat.CSC {
			// globalCols of the transposed product are global rows of C.
			mu.Lock()
			for _, r := range globalCols {
				rowsSeen[r] = true
			}
			mu.Unlock()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsSeen) != 32 {
		t.Errorf("hooks saw %d distinct rows, want 32", len(rowsSeen))
	}
}

func TestRowBatchedReBroadcastsSmallerOperand(t *testing.T) {
	// With nnz(A) ≫ nnz(B), row batching should put far less volume through
	// the per-batch rebroadcast than column batching does.
	big := randomMat(t, 48, 48, 1200, 73)
	small := randomMat(t, 48, 48, 90, 74)
	if !RowBatchedCheaper(big, small) {
		t.Fatal("expected row batching to be the cheaper orientation")
	}
	rc := RunConfig{P: 4, L: 1, Cost: testCM, Opts: Options{ForceBatches: 4}}

	_, _, colSummary, err := Multiply(big, small, rc, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Row-batched: Cᵀ = smallᵀ·bigᵀ, so the A-Broadcast carries smallᵀ.
	at := spmat.Transpose(big)
	bt := spmat.Transpose(small)
	_, _, rowSummary, err := Multiply(bt, at, rc, nil)
	if err != nil {
		t.Fatal(err)
	}
	colRebcast := colSummary.Step(StepABcast).Bytes
	rowRebcast := rowSummary.Step(StepABcast).Bytes
	if !(rowRebcast < colRebcast/2) {
		t.Errorf("row batching rebroadcast %d bytes, column batching %d; expected a large saving",
			rowRebcast, colRebcast)
	}
}

func TestRowBatchedRaggedAndLayers(t *testing.T) {
	a := randomMat(t, 37, 41, 260, 75)
	b := randomMat(t, 41, 29, 240, 76)
	want := localmm.Multiply(a, b, semiring.PlusTimes())
	for _, cfg := range []struct{ p, l, b int }{{9, 1, 2}, {16, 4, 3}} {
		rc := RunConfig{P: cfg.p, L: cfg.l, Cost: testCM, Opts: Options{ForceBatches: cfg.b}}
		got, _, err := MultiplyRowBatched(a, b, rc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !spmat.Equal(got, want) {
			t.Errorf("p=%d l=%d b=%d: row-batched ragged result differs", cfg.p, cfg.l, cfg.b)
		}
	}
}
