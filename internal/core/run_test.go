package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/localmm"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

func TestMultiplyConvenience(t *testing.T) {
	a := randomMat(t, 40, 40, 300, 60)
	want := localmm.Multiply(a, a, semiring.PlusTimes())
	got, results, sum, err := Multiply(a, a, RunConfig{P: 8, L: 2, Cost: testCM, Opts: Options{ForceBatches: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !spmat.Equal(got, want) {
		t.Error("Multiply result differs")
	}
	if len(results) != 8 {
		t.Errorf("got %d results", len(results))
	}
	if sum.Ranks != 8 {
		t.Errorf("summary over %d ranks", sum.Ranks)
	}
	if sum.TotalSeconds() <= 0 {
		t.Error("no time metered")
	}
}

func TestMultiplyInvalidGrid(t *testing.T) {
	a := randomMat(t, 10, 10, 30, 61)
	if _, _, _, err := Multiply(a, a, RunConfig{P: 6, L: 1, Cost: testCM}, nil); err == nil {
		t.Error("invalid grid accepted")
	}
}

func TestMultiplyDiscardKeepsNothing(t *testing.T) {
	a := randomMat(t, 40, 40, 300, 62)
	var seen int64
	results, sum, err := MultiplyDiscard(a, a, RunConfig{P: 4, L: 1, Cost: testCM, Opts: Options{ForceBatches: 4}},
		func(rank int) BatchHook {
			return func(batch int, cols []int32, c *spmat.CSC) *spmat.CSC {
				// The hook still sees real batch data. Hooks run on
				// concurrent rank goroutines, so the flag must be atomic.
				if c.NNZ() > 0 {
					atomic.StoreInt64(&seen, 1)
				}
				return nil
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&seen) == 0 {
		t.Error("hooks saw no data")
	}
	for r, res := range results {
		if res.C.NNZ() != 0 {
			t.Errorf("rank %d kept %d nonzeros after discard", r, res.C.NNZ())
		}
	}
	if sum.Step(StepLocalMult).ComputeSeconds <= 0 {
		t.Error("no local multiply time")
	}
}

func TestRunConfigValidate(t *testing.T) {
	if err := (RunConfig{P: 16, L: 4}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (RunConfig{P: 16, L: 3}).Validate(); err == nil {
		t.Error("invalid config accepted")
	}
}
