package core

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/planner"
	"repro/internal/spmat"
)

// AutoTuneConfig consults the analytical planner and returns a copy of rc
// rewritten to the best predicted configuration: the layer count, the
// induced batch count, the storage format, the schedule, and the
// sparse-communication mode. The decision
// is made under the run's own α–β constants with CommScale 1, which is
// exactly what core-level callers are charged (the per-rank meters are
// never machine-scaled at this layer); callers that scale reported
// communication afterwards — the spgemm facade — use AutoTuneOnMachine so
// the planner weighs communication the way the run will report it. The
// returned plan carries the full ranked candidate list and report for
// callers that want to show the "why".
//
// The batch count is handled by authority, not prediction: with a memory
// budget the run keeps ForceBatches unset so the distributed symbolic step
// (Alg 3, which always runs — and is metered — under a budget) makes the
// real Allreduce'd decision; the planner's induced b only ranked the
// candidates. A probe under-estimate therefore can never push a budgeted
// run below the batch count the budget requires. Without a budget the
// planner's b (always 1) is pinned, skipping nothing.
func AutoTuneConfig(a, b *spmat.CSC, rc RunConfig) (RunConfig, *planner.Plan, error) {
	return AutoTuneOnMachine(a, b, rc, costmodel.Machine{
		Name:           "run-config",
		AlphaSec:       rc.Cost.AlphaSec,
		BetaSecPerByte: rc.Cost.BetaSecPerByte,
		ComputeScale:   1,
		CommScale:      1,
	})
}

// AutoTuneOnMachine is AutoTuneConfig deciding under a full machine model:
// the planner weighs communication with the machine's CommScale, matching
// callers (the spgemm facade, the experiment harness) that scale reported
// comm seconds by it.
func AutoTuneOnMachine(a, b *spmat.CSC, rc RunConfig, m costmodel.Machine) (RunConfig, *planner.Plan, error) {
	pl, err := planner.New(a, b, PlanInput(rc, m))
	if err != nil {
		return rc, nil, err
	}
	best := pl.Best()
	if best == nil {
		return rc, pl, fmt.Errorf("core: autotune found no feasible configuration under the %d-byte budget", rc.Opts.withDefaults().MemBytes)
	}
	rc, err = ApplyChoice(rc, best.Choice())
	return rc, pl, err
}

// PlanInput returns the planner Input AutoTuneOnMachine decides under for
// this run configuration and machine — exported so callers that cache
// planner decisions (the serving layer) can key the cache on exactly the
// knobs that shape the decision, via planner.CacheKey.
func PlanInput(rc RunConfig, m costmodel.Machine) planner.Input {
	opts := rc.Opts.withDefaults()
	return planner.Input{
		P:           rc.P,
		MemBytes:    opts.MemBytes,
		Machine:     m,
		BytesPerNnz: opts.BytesPerNnz,
		Symbolic:    opts.MemBytes > 0 || opts.RunSymbolic,
		MaxBatches:  opts.MaxBatches,
		// Sweep the sparse-communication knob too: off and the per-stage
		// cost-model decision. SparseOn is omitted — auto's prediction is
		// ≤ on's by construction (it takes subsets exactly where they win),
		// so on can never be the optimum.
		SparseComms: []mpi.SparseMode{mpi.SparseOff, mpi.SparseAuto},
		// Sweep the overlap channel count for pipelined candidates: the
		// single-injection ledger and a second NIC channel. Higher k only
		// adds hiding capacity beyond what two independent broadcast
		// streams can use, so k=2 saturates the model.
		Channels: []int{1, 2},
		// Price kernel picks against the run's (possibly recalibrated)
		// table; nil falls back to the built-in coefficients.
		Kernels: opts.Kernels,
	}
}

// ApplyChoice rewrites rc to a previously-made planner decision without any
// probe or sweep — the execution half of AutoTuneOnMachine, reusable with a
// cached Choice. The batch count is handled by authority, exactly like a
// fresh autotune: under a memory budget ForceBatches stays unset so the
// distributed symbolic step makes the real decision; without one the
// choice's induced b (always 1) is pinned.
func ApplyChoice(rc RunConfig, ch planner.Choice) (RunConfig, error) {
	cfg, err := ch.Config()
	if err != nil {
		return rc, err
	}
	rc.L = cfg.L
	rc.Opts.AutoTune = false
	if rc.Opts.withDefaults().MemBytes > 0 {
		rc.Opts.ForceBatches = 0
		rc.Opts.RunSymbolic = true
	} else {
		rc.Opts.ForceBatches = cfg.B
	}
	rc.Opts.Format = cfg.Format
	rc.Opts.Pipeline = cfg.Pipeline
	rc.Opts.SparseComm = cfg.SparseComm
	rc.Opts.Channels = cfg.Channels
	// Execute the plan-time kernel/merger picks when the choice carries
	// them (older serialized choices don't — the configured defaults
	// stay). A hybrid pick parses to localmm's per-column dispatch kernel,
	// the execution of the planner's mixed-regime estimate. Explicit
	// static picks turn the runtime auto selection off: the plan already
	// decided, and re-deciding per stage would blur what the kernelsel
	// gate audits.
	if ch.Kernel != "" {
		k, err := localmm.ParseKernel(ch.Kernel)
		if err != nil {
			return rc, fmt.Errorf("core: choice kernel: %w", err)
		}
		rc.Opts.Kernel = k
		rc.Opts.AutoKernel = false
	}
	if ch.Merger != "" {
		mg, err := localmm.ParseMerger(ch.Merger)
		if err != nil {
			return rc, fmt.Errorf("core: choice merger: %w", err)
		}
		rc.Opts.Merger = mg
		rc.Opts.AutoMerger = false
	}
	return rc, nil
}

// AutoTuneDenseConfig consults the sparse×dense planner and returns a copy
// of rc rewritten to the best predicted configuration of MultiplyDense's
// space: the algorithm family (SUMMA vs the 1.5D schedules), the replication
// factor, the batch count, and the schedule. Like AutoTuneConfig it decides
// under the run's own α–β constants with CommScale 1.
func AutoTuneDenseConfig(a *spmat.CSC, b *spmat.DenseMat, rc RunConfig) (RunConfig, *planner.DensePlan, error) {
	return AutoTuneDenseOnMachine(a, b, rc, costmodel.Machine{
		Name:           "run-config",
		AlphaSec:       rc.Cost.AlphaSec,
		BetaSecPerByte: rc.Cost.BetaSecPerByte,
		ComputeScale:   1,
		CommScale:      1,
	})
}

// AutoTuneDenseOnMachine is AutoTuneDenseConfig deciding under a full machine
// model, for callers (the spgemm facade) that scale reported communication by
// the machine's CommScale.
func AutoTuneDenseOnMachine(a *spmat.CSC, b *spmat.DenseMat, rc RunConfig, m costmodel.Machine) (RunConfig, *planner.DensePlan, error) {
	opts := rc.Opts.withDefaults()
	pl, err := planner.NewDense(a, b.Cols, planner.DenseInput{
		P:           rc.P,
		MemBytes:    opts.MemBytes,
		Machine:     m,
		BytesPerNnz: opts.BytesPerNnz,
		MaxBatches:  opts.MaxBatches,
	})
	if err != nil {
		return rc, nil, err
	}
	best := pl.Best()
	if best == nil {
		return rc, pl, fmt.Errorf("core: dense autotune found no feasible configuration under the %d-byte budget", opts.MemBytes)
	}
	algo, err := ParseAlgo(best.Algo)
	if err != nil {
		return rc, pl, err
	}
	rc.Opts.AutoTune = false
	rc.Opts.Algo = algo
	rc.Opts.Pipeline = best.Pipeline
	rc.Opts.ForceBatches = best.B
	if algo == AlgoSUMMA {
		rc.L = best.L
	} else {
		rc.Opts.Replication = best.C
	}
	return rc, pl, nil
}
