package core

import (
	"math/rand"
	"testing"

	"repro/internal/distmat"
	"repro/internal/genmat"
	"repro/internal/grid"
	"repro/internal/localmm"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

var allFormats = []spmat.Format{spmat.FormatCSC, spmat.FormatDCSC, spmat.FormatAuto}

// TestFormatDifferential is the end-to-end storage-format proof: the same
// distributed multiplication under -format csc, dcsc, and auto must produce
// bit-identical assembled outputs across kernels, grids, batch counts, merge
// strategies, and both schedules (staged and fully pipelined). The serial
// reference pins the values.
func TestFormatDifferential(t *testing.T) {
	square := randomMat(t, 60, 60, 700, 171)
	hyperA := genmat.Hypersparse(48, 1024, 2, 172)
	hyperB := spmat.Transpose(hyperA)

	type workload struct {
		name string
		a, b *spmat.CSC
	}
	workloads := []workload{
		{"square", square, square},
		{"kmers-AAt", hyperA, hyperB},
	}
	type cfg struct {
		p, l, batches int
		kernel        localmm.Kernel
		merger        localmm.Merger
		incremental   bool
		pipeline      bool
		threads       int
	}
	cfgs := []cfg{
		{p: 4, l: 1, batches: 1, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHash},
		{p: 8, l: 2, batches: 3, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHash},
		{p: 8, l: 2, batches: 2, kernel: localmm.KernelHeap, merger: localmm.MergerHeap},
		{p: 8, l: 2, batches: 3, kernel: localmm.KernelHybrid, merger: localmm.MergerHash, incremental: true},
		{p: 16, l: 4, batches: 2, kernel: localmm.KernelHashSorted, merger: localmm.MergerHash, pipeline: true},
		{p: 16, l: 4, batches: 3, kernel: localmm.KernelHashUnsorted, merger: localmm.MergerHeap, pipeline: true, incremental: true, threads: 4},
	}
	for _, wl := range workloads {
		want := localmm.Multiply(wl.a, wl.b, semiring.PlusTimes())
		for ci, c := range cfgs {
			var ref *spmat.CSC
			for _, f := range allFormats {
				got, _, _ := runDistributed(t, c.p, c.l, wl.a, wl.b, Options{
					ForceBatches:     c.batches,
					Kernel:           c.kernel,
					Merger:           c.merger,
					IncrementalMerge: c.incremental,
					Pipeline:         c.pipeline,
					Threads:          c.threads,
					Format:           f,
				}, nil)
				if !spmat.Equal(got, want) {
					t.Errorf("%s cfg %d format %v: distributed result differs from serial reference", wl.name, ci, f)
				}
				if ref == nil {
					ref = got
				} else if !spmat.Equal(ref, got) {
					t.Errorf("%s cfg %d: format %v output differs from the other formats", wl.name, ci, f)
				}
			}
		}
	}
}

// TestFormatCommVolumeInvariant: the bytes every step moves must not depend
// on the format knob — the wire encoding is chosen by occupancy alone.
func TestFormatCommVolumeInvariant(t *testing.T) {
	a := genmat.Hypersparse(32, 512, 2, 55)
	b := spmat.Transpose(a)
	type vol map[string]int64
	volumes := make(map[spmat.Format]vol)
	for _, f := range allFormats {
		_, _, summary := runDistributed(t, 8, 2, a, b, Options{ForceBatches: 2, RunSymbolic: true, Format: f}, nil)
		v := make(vol)
		for _, step := range Steps {
			v[step] = summary.Step(step).Bytes
		}
		volumes[f] = v
	}
	for _, step := range Steps {
		if volumes[spmat.FormatCSC][step] != volumes[spmat.FormatDCSC][step] ||
			volumes[spmat.FormatCSC][step] != volumes[spmat.FormatAuto][step] {
			t.Errorf("%s: bytes differ across formats: csc=%d dcsc=%d auto=%d", step,
				volumes[spmat.FormatCSC][step], volumes[spmat.FormatDCSC][step], volumes[spmat.FormatAuto][step])
		}
	}
}

// TestHypersparseFewerBatches: with DCSC footprints accounted, the symbolic
// step must choose strictly fewer batches for a hypersparse input under the
// same MemBytes (the issue's acceptance criterion). The budget sits in the
// window where the flat r·nnz model still fits the inputs but leaves little
// headroom.
func TestHypersparseFewerBatches(t *testing.T) {
	const p, l = 16, 4
	a := genmat.Hypersparse(64, 2048, 2, 91)
	b := spmat.Transpose(a)

	// Locate the CSC infeasibility floor by probing the per-rank maxima the
	// same way Symbolic3D does, then place budgets slightly above it.
	maxIn := maxInputFootprint(t, p, l, a, b, spmat.FormatCSC)
	base := int64(p) * maxIn

	sawStrictlyFewer := false
	for _, mult := range []float64{1.2, 1.5, 2.0} {
		budget := int64(mult * float64(base))
		bs := make(map[spmat.Format]int)
		for _, f := range []spmat.Format{spmat.FormatCSC, spmat.FormatDCSC} {
			nb, err := SymbolicBatches(a, b, RunConfig{
				P: p, L: l, Cost: testCM,
				Opts: Options{MemBytes: budget, RunSymbolic: true, Format: f},
			})
			if err != nil {
				// Infeasible under this format's accounting: treat as +inf.
				nb = 1 << 20
			}
			bs[f] = nb
		}
		if bs[spmat.FormatDCSC] > bs[spmat.FormatCSC] {
			t.Errorf("budget %.1fx: DCSC footprints need MORE batches (%d) than CSC (%d)",
				mult, bs[spmat.FormatDCSC], bs[spmat.FormatCSC])
		}
		if bs[spmat.FormatDCSC] < bs[spmat.FormatCSC] {
			sawStrictlyFewer = true
		}
	}
	if !sawStrictlyFewer {
		t.Error("no budget in the window showed strictly fewer batches under DCSC footprints")
	}

	// And the same multiplications still agree on output values.
	want := localmm.Multiply(a, b, semiring.PlusTimes())
	for _, f := range []spmat.Format{spmat.FormatCSC, spmat.FormatDCSC} {
		got, _, _ := runDistributed(t, p, l, a, b, Options{
			MemBytes: 3 * base, RunSymbolic: true, Format: f,
		}, nil)
		if !spmat.Equal(got, want) {
			t.Errorf("format %v under memory constraint: wrong product", f)
		}
	}
}

// maxInputFootprint returns the max-over-ranks modeled input footprint
// (Ã + B̃) under the given format, mirroring Symbolic3D's reduction.
func maxInputFootprint(t *testing.T, p, l int, a, b *spmat.CSC, f spmat.Format) int64 {
	t.Helper()
	q, err := grid.SideFor(p, l)
	if err != nil {
		t.Fatal(err)
	}
	var maxIn int64
	da := distmat.NewADist(a.Rows, a.Cols, q, l)
	db := distmat.NewBDist(b.Rows, b.Cols, q, l)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			for k := 0; k < l; k++ {
				la := spmat.WithFormat(da.Local(a, i, j, k), f)
				lb := spmat.WithFormat(db.Local(b, i, j, k), f)
				in := spmat.BlockMemBytes(la, spmat.BytesPerNonzero) + spmat.BlockMemBytes(lb, spmat.BytesPerNonzero)
				if in > maxIn {
					maxIn = in
				}
			}
		}
	}
	return maxIn
}

// TestWorkUnitsDropWithDCSC: the modeled work units of the compute steps
// must strictly shrink when hypersparse blocks are stored doubly-compressed
// — the O(cols)-per-block column-scan term leaving the modeled critical
// path — while staying identical for CSC vs the pre-knob accounting.
func TestWorkUnitsDropWithDCSC(t *testing.T) {
	a := genmat.Hypersparse(48, 2048, 2, 77)
	b := spmat.Transpose(a)
	work := func(f spmat.Format) int64 {
		_, _, summary := runDistributed(t, 16, 4, a, b, Options{ForceBatches: 2, RunSymbolic: true, Format: f}, nil)
		var w int64
		for _, step := range Steps {
			w += summary.Step(step).WorkUnits
		}
		return w
	}
	wc, wd := work(spmat.FormatCSC), work(spmat.FormatDCSC)
	if wd >= wc {
		t.Errorf("DCSC work units %d not below CSC %d on a hypersparse workload", wd, wc)
	}
}

// TestDCSCPipelinedSUMMARace extends the pipelined race workout to the
// doubly-compressed path: forced-DCSC blocks under the fully-overlapped
// schedule with intra-rank worker threads and the parallel symbolic step.
func TestDCSCPipelinedSUMMARace(t *testing.T) {
	if testing.Short() {
		t.Skip("race workout skipped in -short mode")
	}
	a := genmat.Hypersparse(48, 768, 3, 83)
	b := spmat.Transpose(a)
	want := localmm.Multiply(a, b, semiring.PlusTimes())
	for _, f := range []spmat.Format{spmat.FormatDCSC, spmat.FormatAuto} {
		for _, cfg := range []struct {
			p, l, b, threads int
			incremental      bool
		}{
			{p: 8, l: 2, b: 2, threads: 4},
			{p: 16, l: 4, b: 3, threads: 4, incremental: true},
		} {
			got, _, _ := runDistributed(t, cfg.p, cfg.l, a, b, Options{
				ForceBatches: cfg.b, RunSymbolic: true,
				Threads: cfg.threads, Pipeline: true,
				IncrementalMerge: cfg.incremental,
				Format:           f,
			}, nil)
			if !spmat.Equal(got, want) {
				t.Errorf("format %v p=%d l=%d b=%d pipelined: result differs from serial",
					f, cfg.p, cfg.l, cfg.b)
			}
		}
	}
}

// randomHyperLike exercises quick shapes around the auto threshold so the
// mixed-format Merge-Fiber path (some received pieces compressed, some not)
// is hit: block occupancy hovers near 50%.
func TestAutoMixedFormatsNearThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for it := 0; it < 4; it++ {
		nnz := 400 + rng.Intn(500)
		a := randomMat(t, 48, 96, nnz, int64(300+it))
		b := randomMat(t, 96, 80, nnz, int64(400+it))
		want := localmm.Multiply(a, b, semiring.PlusTimes())
		got, _, _ := runDistributed(t, 8, 2, a, b, Options{ForceBatches: 2, Format: spmat.FormatAuto}, nil)
		if !spmat.Equal(got, want) {
			t.Errorf("it %d: auto format near threshold: wrong product", it)
		}
	}
}
