package core

import (
	"repro/internal/spmat"
)

// MultiplyRowBatched computes C = A·B with batching over the *rows* of C
// instead of its columns. Sec. IV-B notes that column-wise batching
// re-broadcasts A once per batch, which is expensive when nnz(A) ≫ nnz(B);
// the paper points out the same algorithm handles this case by batching
// row-by-row. The identity used here is Cᵀ = Bᵀ·Aᵀ: a column batch of Cᵀ is
// a row batch of C, so the operand that is re-broadcast per batch becomes
// Bᵀ (cheap when nnz(B) is small).
//
// The hook, when not nil, receives each finished batch of Cᵀ; globalCols of
// the transposed piece are global *rows* of C. The assembled result is
// returned in the original orientation.
//
// Row batching composes with every schedule knob, including the
// fully-overlapped one: with rc.Opts.Pipeline the transposed multiply
// prefetches its broadcasts within and across row batches and hides the
// fiber exchange behind Merge-Layer, exactly as the column-batched path does
// (it *is* that path, on Bᵀ·Aᵀ). Output is independent of the schedule.
func MultiplyRowBatched(a, b *spmat.CSC, rc RunConfig, hooks HookFactory) (*spmat.CSC, []*Result, error) {
	at := spmat.Transpose(a)
	bt := spmat.Transpose(b)
	ct, results, _, err := Multiply(bt, at, rc, hooks)
	if err != nil {
		return nil, nil, err
	}
	return spmat.Transpose(ct), results, nil
}

// RowBatchedCheaper reports whether row batching is expected to communicate
// less than column batching for C = A·B with the given batch count: column
// batching re-broadcasts nnz(A) per extra batch, row batching re-broadcasts
// nnz(B) (Table II's A-Broadcast row applied to the transposed product).
func RowBatchedCheaper(a, b *spmat.CSC) bool {
	return b.NNZ() < a.NNZ()
}
