package core

import (
	"sync"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// symbolicMaxima runs Alg 3's reductions once to learn the exact per-rank
// maxima (unmerged output, Ã, B̃ nonzeros) the batch decision is built on,
// so boundary tests can place memory budgets exactly at the b=1/b=2 flip.
func symbolicMaxima(t *testing.T, p, l int, a, b *spmat.CSC) (maxC, maxA, maxB int64) {
	t.Helper()
	var mu sync.Mutex
	mpi.Run(p, testCM, func(c *mpi.Comm) {
		g, err := grid.New(c, l)
		if err != nil {
			t.Error(err)
			return
		}
		proc, err := Setup(g, a, b, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		_, nnzC, err := proc.Symbolic3D()
		if err != nil {
			t.Error(err)
			return
		}
		la := g.World.AllreduceInt64(proc.LocalA.NNZ(), mpi.OpMax)
		lb := g.World.AllreduceInt64(proc.LocalB.NNZ(), mpi.OpMax)
		if c.Rank() == 0 {
			mu.Lock()
			maxC, maxA, maxB = nnzC, la, lb
			mu.Unlock()
		}
	})
	return maxC, maxA, maxB
}

// runSymbolicB executes Symbolic3D under the given options on every rank and
// returns the agreed batch estimate.
func runSymbolicB(t *testing.T, p, l int, a, b *spmat.CSC, opts Options) int {
	t.Helper()
	var mu sync.Mutex
	est := -1
	mpi.Run(p, testCM, func(c *mpi.Comm) {
		g, err := grid.New(c, l)
		if err != nil {
			t.Error(err)
			return
		}
		proc, err := Setup(g, a, b, opts)
		if err != nil {
			t.Error(err)
			return
		}
		sb, _, err := proc.Symbolic3D()
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		if est == -1 {
			est = sb
		} else if est != sb {
			t.Errorf("rank %d: symbolic b=%d disagrees with %d", c.Rank(), sb, est)
		}
		mu.Unlock()
	})
	return est
}

// TestSymbolicBatchBoundary pins memory budgets to either side of the exact
// b=1/b=2 boundary of Alg 3 line 12: b = ⌈r·maxC / (M/p − r·(maxA+maxB))⌉
// flips to 2 as soon as the per-process leftover share drops below r·maxC.
// The same
// flip must come out of the staged, pipelined, and thread-parallel symbolic
// paths — the decision drives collective schedules, so any divergence would
// deadlock a real run.
func TestSymbolicBatchBoundary(t *testing.T) {
	const p, l = 8, 2
	a := randomMat(t, 64, 64, 900, 81)
	maxC, maxA, maxB := symbolicMaxima(t, p, l, a, a)
	if maxC == 0 {
		t.Fatal("degenerate workload: symbolic found no output")
	}
	const r = 24 // default BytesPerNnz
	// b=1 iff M/p − r·(maxA+maxB) ≥ r·maxC.
	boundary := int64(p) * r * (maxC + maxA + maxB)

	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"staged", Options{}},
		{"pipelined", Options{Pipeline: true}},
		{"threads", Options{Threads: 4}},
		{"pipelined+threads", Options{Pipeline: true, Threads: 4}},
	} {
		atB := mode.opts
		atB.MemBytes = boundary
		if got := runSymbolicB(t, p, l, a, a, atB); got != 1 {
			t.Errorf("%s: M at boundary (%d): b=%d, want 1", mode.name, boundary, got)
		}
		below := mode.opts
		below.MemBytes = boundary - int64(p) // shaves 1 byte per process
		if got := runSymbolicB(t, p, l, a, a, below); got != 2 {
			t.Errorf("%s: M just below boundary (%d): b=%d, want 2", mode.name, below.MemBytes, got)
		}
	}
}

// TestBatchesForBoundary exercises the decision formula directly at the
// flip, including the cap and the inputs-don't-fit error. batchesFor takes
// the input terms as modeled bytes (per-format footprints); the CSC
// footprint is r·nnz, which is what this test feeds it.
func TestBatchesForBoundary(t *testing.T) {
	const r = 24
	opts := Options{BytesPerNnz: r}
	const maxC, maxA, maxB, p = 1000, 100, 100, 4
	memA, memB := int64(r*maxA), int64(r*maxB)
	boundary := int64(p) * r * (maxC + maxA + maxB)

	opts.MemBytes = boundary
	if b, err := batchesFor(maxC, memA, memB, opts, p); err != nil || b != 1 {
		t.Errorf("at boundary: b=%d err=%v, want 1", b, err)
	}
	opts.MemBytes = boundary - p
	if b, err := batchesFor(maxC, memA, memB, opts, p); err != nil || b != 2 {
		t.Errorf("just below boundary: b=%d err=%v, want 2", b, err)
	}
	opts.MemBytes = boundary - p
	opts.MaxBatches = 1
	if b, err := batchesFor(maxC, memA, memB, opts, p); err != nil || b != 1 {
		t.Errorf("capped: b=%d err=%v, want 1", b, err)
	}
	opts.MaxBatches = 0
	opts.MemBytes = int64(p) * (memA + memB) // inputs alone consume everything
	if _, err := batchesFor(maxC, memA, memB, opts, p); err == nil {
		t.Error("inputs exactly exhausting the budget: want error, got none")
	}
}
