package core

import (
	"fmt"
	"sync"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/spmat"
)

// RunConfig describes one distributed multiplication launched from the host:
// the process-grid shape, the α–β constants used to model communication, and
// the algorithm options.
type RunConfig struct {
	// P is the number of simulated processes; must be L times a perfect
	// square.
	P int
	// L is the number of layers (1 = plain 2D SUMMA).
	L int
	// Cost supplies the modeled latency and inverse bandwidth.
	Cost mpi.CostModel
	// Opts are the algorithm options shared by all ranks.
	Opts Options
	// Trace, when non-nil, records one obs span per metered interval of every
	// rank (batch/stage/channel labeled), exportable afterwards as a
	// Chrome/Perfetto trace via Trace.WriteTrace. Nil — the default — records
	// nothing and adds zero allocations to the metered hot paths.
	Trace *obs.Recorder
}

// Validate checks the grid shape.
func (rc RunConfig) Validate() error {
	if _, err := grid.SideFor(rc.P, rc.L); err != nil {
		return err
	}
	return nil
}

// HookFactory builds a per-rank batch hook; nil means no hook. The factory is
// called once per rank with the world rank.
type HookFactory func(rank int) BatchHook

// RowOffsetFor returns the global row index of local row 0 for the given
// world rank on a p-rank, l-layer grid over a matrix with the given row
// count. Hook factories use it to translate the local row indices their
// hooks receive into global rows.
func RowOffsetFor(rows int32, p, l, rank int) int32 {
	q, err := grid.SideFor(p, l)
	if err != nil {
		panic(err)
	}
	i := (rank % (q * q)) / q
	return spmat.PartBounds(rows, q)[i]
}

// Multiply runs BatchedSUMMA3D for C = A·B on a fresh simulated cluster and
// returns the assembled global product, the per-rank results, and the step
// metering summary.
func Multiply(a, b *spmat.CSC, rc RunConfig, hooks HookFactory) (*spmat.CSC, []*Result, *mpi.Summary, error) {
	if rc.Opts.AutoTune {
		var err error
		if rc, _, err = AutoTuneConfig(a, b, rc); err != nil {
			return nil, nil, nil, err
		}
	}
	if err := rc.Validate(); err != nil {
		return nil, nil, nil, err
	}
	results := make([]*Result, rc.P)
	errs := make([]error, rc.P)
	var mu sync.Mutex
	meters := mpi.RunTraced(rc.P, rc.Cost, rc.Trace, func(c *mpi.Comm) {
		g, err := grid.New(c, rc.L)
		if err != nil {
			mu.Lock()
			errs[c.Rank()] = err
			mu.Unlock()
			return
		}
		proc, err := Setup(g, a, b, rc.Opts)
		if err != nil {
			mu.Lock()
			errs[c.Rank()] = err
			mu.Unlock()
			return
		}
		var hook BatchHook
		if hooks != nil {
			hook = hooks(c.Rank())
		}
		res, err := proc.BatchedSUMMA3D(hook)
		mu.Lock()
		results[c.Rank()] = res
		errs[c.Rank()] = err
		mu.Unlock()
	})
	for r, err := range errs {
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: rank %d: %w", r, err)
		}
	}
	assembled, err := AssembleResults(results, a.Rows, b.Cols)
	if err != nil {
		return nil, nil, nil, err
	}
	return assembled, results, mpi.Summarize(meters), nil
}

// MultiplyDiscard is Multiply for workloads that consume batches through the
// hook and never need the assembled product (the memory-constrained usage
// the paper targets). It skips assembly and returns only results and metering.
func MultiplyDiscard(a, b *spmat.CSC, rc RunConfig, hooks HookFactory) ([]*Result, *mpi.Summary, error) {
	if rc.Opts.AutoTune {
		var err error
		if rc, _, err = AutoTuneConfig(a, b, rc); err != nil {
			return nil, nil, err
		}
	}
	if err := rc.Validate(); err != nil {
		return nil, nil, err
	}
	results := make([]*Result, rc.P)
	errs := make([]error, rc.P)
	var mu sync.Mutex
	discard := func(batch int, cols []int32, c *spmat.CSC) *spmat.CSC {
		return spmat.New(c.Rows, c.Cols)
	}
	meters := mpi.RunTraced(rc.P, rc.Cost, rc.Trace, func(c *mpi.Comm) {
		g, err := grid.New(c, rc.L)
		if err == nil {
			var proc *Proc
			proc, err = Setup(g, a, b, rc.Opts)
			if err == nil {
				var res *Result
				userHook := BatchHook(nil)
				if hooks != nil {
					userHook = hooks(c.Rank())
				}
				hook := func(batch int, cols []int32, m *spmat.CSC) *spmat.CSC {
					if userHook != nil {
						if pruned := userHook(batch, cols, m); pruned != nil {
							m = pruned
						}
					}
					return discard(batch, cols, m)
				}
				res, err = proc.BatchedSUMMA3D(hook)
				mu.Lock()
				results[c.Rank()] = res
				mu.Unlock()
			}
		}
		if err != nil {
			mu.Lock()
			errs[c.Rank()] = err
			mu.Unlock()
		}
	})
	for r, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("core: rank %d: %w", r, err)
		}
	}
	return results, mpi.Summarize(meters), nil
}
