package core

import (
	"testing"

	"repro/internal/localmm"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// TestBatchedSUMMA3DWithThreadsRace runs a small end-to-end BatchedSUMMA3D
// with multithreaded local kernels so `go test -race ./internal/core`
// exercises rank concurrency and intra-rank worker concurrency together —
// every combination of kernel parallelism inside the MeasureCompute token.
// Guarded by -short so the default suite stays fast.
func TestBatchedSUMMA3DWithThreadsRace(t *testing.T) {
	if testing.Short() {
		t.Skip("race workout skipped in -short mode")
	}
	a := randomMat(t, 64, 64, 600, 41)
	b := randomMat(t, 64, 64, 600, 42)
	want := localmm.Multiply(a, b, semiring.PlusTimes())
	for _, cfg := range []struct{ p, l, b, threads int }{
		{4, 1, 1, 4},
		{8, 2, 2, 4},
		{16, 4, 3, 8},
	} {
		got, _, _ := runDistributed(t, cfg.p, cfg.l, a, b,
			Options{ForceBatches: cfg.b, Threads: cfg.threads}, nil)
		if !spmat.Equal(got, want) {
			t.Errorf("p=%d l=%d b=%d threads=%d: distributed result differs from serial",
				cfg.p, cfg.l, cfg.b, cfg.threads)
		}
	}
	// The previous-generation kernel/merger pair under threads, too.
	got, _, _ := runDistributed(t, 4, 1, a, b, Options{
		ForceBatches: 2, Threads: 4,
		Kernel: localmm.KernelHeap, Merger: localmm.MergerHeap,
	}, nil)
	if !spmat.Equal(got, want) {
		t.Error("heap kernel/merger with threads: distributed result differs")
	}
}

// TestPipelinedSUMMARace layers the broadcast/compute pipeline on top of
// rank concurrency and intra-rank worker threads, with the symbolic step
// (and its parallel LOCALSYMBOLIC) in the loop — the full concurrency stack
// under the race detector. Guarded by -short like the other workout.
func TestPipelinedSUMMARace(t *testing.T) {
	if testing.Short() {
		t.Skip("race workout skipped in -short mode")
	}
	a := randomMat(t, 64, 64, 600, 43)
	b := randomMat(t, 64, 64, 600, 44)
	want := localmm.Multiply(a, b, semiring.PlusTimes())
	for _, cfg := range []struct {
		p, l, b, threads int
		incremental      bool
	}{
		{p: 4, l: 1, b: 2, threads: 1},
		{p: 8, l: 2, b: 2, threads: 4},
		{p: 8, l: 2, b: 3, threads: 4, incremental: true},
		{p: 16, l: 4, b: 3, threads: 8},
	} {
		got, _, _ := runDistributed(t, cfg.p, cfg.l, a, b, Options{
			ForceBatches: cfg.b, RunSymbolic: true,
			Threads: cfg.threads, Pipeline: true,
			IncrementalMerge: cfg.incremental,
		}, nil)
		if !spmat.Equal(got, want) {
			t.Errorf("p=%d l=%d b=%d threads=%d pipelined: result differs from serial",
				cfg.p, cfg.l, cfg.b, cfg.threads)
		}
	}
}
