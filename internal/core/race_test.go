package core

import (
	"testing"

	"repro/internal/localmm"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// TestBatchedSUMMA3DWithThreadsRace runs a small end-to-end BatchedSUMMA3D
// with multithreaded local kernels so `go test -race ./internal/core`
// exercises rank concurrency and intra-rank worker concurrency together —
// every combination of kernel parallelism inside the MeasureCompute token.
// Guarded by -short so the default suite stays fast.
func TestBatchedSUMMA3DWithThreadsRace(t *testing.T) {
	if testing.Short() {
		t.Skip("race workout skipped in -short mode")
	}
	a := randomMat(t, 64, 64, 600, 41)
	b := randomMat(t, 64, 64, 600, 42)
	want := localmm.Multiply(a, b, semiring.PlusTimes())
	for _, cfg := range []struct{ p, l, b, threads int }{
		{4, 1, 1, 4},
		{8, 2, 2, 4},
		{16, 4, 3, 8},
	} {
		got, _, _ := runDistributed(t, cfg.p, cfg.l, a, b,
			Options{ForceBatches: cfg.b, Threads: cfg.threads}, nil)
		if !spmat.Equal(got, want) {
			t.Errorf("p=%d l=%d b=%d threads=%d: distributed result differs from serial",
				cfg.p, cfg.l, cfg.b, cfg.threads)
		}
	}
	// The previous-generation kernel/merger pair under threads, too.
	got, _, _ := runDistributed(t, 4, 1, a, b, Options{
		ForceBatches: 2, Threads: 4,
		Kernel: localmm.KernelHeap, Merger: localmm.MergerHeap,
	}, nil)
	if !spmat.Equal(got, want) {
		t.Error("heap kernel/merger with threads: distributed result differs")
	}
}

// TestPipelinedSUMMARace layers the broadcast/compute pipeline on top of
// rank concurrency and intra-rank worker threads, with the symbolic step
// (and its parallel LOCALSYMBOLIC) in the loop — the full concurrency stack
// under the race detector. Guarded by -short like the other workout.
func TestPipelinedSUMMARace(t *testing.T) {
	if testing.Short() {
		t.Skip("race workout skipped in -short mode")
	}
	a := randomMat(t, 64, 64, 600, 43)
	b := randomMat(t, 64, 64, 600, 44)
	want := localmm.Multiply(a, b, semiring.PlusTimes())
	for _, cfg := range []struct {
		p, l, b, threads int
		incremental      bool
	}{
		{p: 4, l: 1, b: 2, threads: 1},
		{p: 8, l: 2, b: 2, threads: 4},
		{p: 8, l: 2, b: 3, threads: 4, incremental: true},
		{p: 16, l: 4, b: 3, threads: 8},
	} {
		got, _, _ := runDistributed(t, cfg.p, cfg.l, a, b, Options{
			ForceBatches: cfg.b, RunSymbolic: true,
			Threads: cfg.threads, Pipeline: true,
			IncrementalMerge: cfg.incremental,
		}, nil)
		if !spmat.Equal(got, want) {
			t.Errorf("p=%d l=%d b=%d threads=%d pipelined: result differs from serial",
				cfg.p, cfg.l, cfg.b, cfg.threads)
		}
	}
}

// TestDenseSchedulesWithThreadsRace runs the 1.5D ColA and InnerABC
// schedules with multithreaded SpMM kernels and the pipelined shift overlap,
// so `go test -race ./internal/core` exercises rank concurrency, the posted
// IshiftStart exchanges, and intra-rank column-partition workers together.
// Guarded by -short like the SUMMA race workout.
func TestDenseSchedulesWithThreadsRace(t *testing.T) {
	if testing.Short() {
		t.Skip("race workout skipped in -short mode")
	}
	a := randomMat(t, 96, 96, 900, 51)
	b := randomDense(t, 96, 16, 52)
	want := localmm.SpMMSerial(a, b)
	for _, algo := range []Algo{AlgoColA, AlgoInnerABC} {
		for _, cfg := range []struct {
			p, c, b, threads int
			pipeline         bool
		}{
			{p: 4, c: 2, b: 1, threads: 4},
			{p: 8, c: 2, b: 2, threads: 4, pipeline: true},
			{p: 16, c: 4, b: 3, threads: 8, pipeline: true},
		} {
			got, _ := runDense(t, a, b, RunConfig{P: cfg.p, Cost: testCM, Opts: Options{
				Algo: algo, Replication: cfg.c, ForceBatches: cfg.b,
				Threads: cfg.threads, Pipeline: cfg.pipeline,
			}})
			if !spmat.DenseEqual(got, want) {
				t.Errorf("%v p=%d c=%d b=%d threads=%d pipe=%v: differs from serial",
					algo, cfg.p, cfg.c, cfg.b, cfg.threads, cfg.pipeline)
			}
		}
	}
}
