package core

import (
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// stageBcasts is the pair of in-flight broadcasts feeding one SUMMA stage —
// the double buffer of the pipelined schedule. Posting stage s+1 while stage
// s computes keeps two stages' operands live at once; the serial schedule
// posts and waits in lockstep so only one pair is ever outstanding. post is
// the overlap-ledger clock at post time: the wait may hide the broadcast
// cost behind compute measured after it.
type stageBcasts struct {
	a, b *mpi.BcastRequest
	post float64
}

// postStageBcasts posts stage s's A-broadcast along the process row and its
// B-broadcast along the process column (Alg 1 lines 5–6) without charging
// the meter; cost attribution happens when the stage is consumed
// (waitStageBcasts). bOperand is this rank's B piece to contribute when it
// is the column root (the batch piece for SUMMA, the full local B for the
// symbolic pass). Payloads keep their in-memory format: the simulated wire
// size (CommBytes) depends only on occupancy, never on the format knob.
//
// With the sparse path armed (Options.SparseComm, activated by
// BatchedSUMMA3D once every stage's column subset is known) the A-broadcast
// goes through mpi.IbcastColsStart: each receiver declares the wire size of
// the A columns its stage-s multiplies can touch and the row communicator
// ships point-to-point subsets whenever they model cheaper than the tree
// broadcast (always, under mpi.SparseOn).
func (p *Proc) postStageBcasts(s int, bOperand spmat.Matrix) stageBcasts {
	g := p.G
	var aMsg mpi.Payload
	if g.J == s {
		aMsg = p.LocalA
	}
	var bMsg mpi.Payload
	if g.I == s {
		bMsg = bOperand
	}
	var aReq *mpi.BcastRequest
	if p.sc.active {
		p.sc.stage = s
		aReq = g.Row.IbcastColsStart(s, aMsg, p.sc.fn, p.sc.force)
	} else {
		aReq = g.Row.IbcastStart(s, aMsg)
	}
	return stageBcasts{
		a:    aReq,
		b:    g.Col.IbcastStart(s, bMsg),
		post: p.pipe.ledger.clock,
	}
}

// waitStageBcasts completes a stage's broadcasts and returns its operands.
// The overlap ledger supplies the credit — the unclaimed compute seconds
// measured since the stage was posted (zero in the serial schedule): the
// share of the modeled broadcast cost it covers is charged to the hidden
// categories, the exposed remainder to aCat/bCat. The two broadcasts drain
// the same window — a stage's compute can only hide that much communication,
// no matter how it is split between A and B.
func (p *Proc) waitStageBcasts(sb stageBcasts, aCat, aHidden, bCat, bHidden string) (aRecv, bRecv spmat.Matrix) {
	meter := p.G.World.Meter()
	led := &p.pipe.ledger
	meter.SetCategory(aCat)
	aPay, used := sb.a.WaitOverlap(led.creditSince(sb.post), aHidden)
	meter.Recorder().TagChannel(led.claim(sb.post, used))
	meter.SetCategory(bCat)
	bPay, used := sb.b.WaitOverlap(led.creditSince(sb.post), bHidden)
	meter.Recorder().TagChannel(led.claim(sb.post, used))
	return aPay.(spmat.Matrix), bPay.(spmat.Matrix)
}

// forEachStage runs the q broadcast+multiply stages of Alg 1 over bBatch,
// invoking consume with every stage's partial product. Merges inside consume
// run through Proc.measure, so their time joins the multiply time as overlap
// credit in the ledger.
//
// With Opts.Pipeline the loop prefetches in two directions. Within the
// batch, stage s+1's broadcasts are posted before stage s's multiply starts,
// so their modeled cost can hide behind the measured compute of stage s.
// Across batches, the last stage posts the NEXT batch's stage-0 broadcasts
// (operand bNextBatch, extracted ahead of time by BatchedSUMMA3D) before its
// own multiply, so even the batch boundary drains nothing: batch t+1's first
// broadcasts hide behind batch t's final multiply, its merges, and its fiber
// exchange. Without Pipeline, each stage posts and immediately waits,
// metering exactly the paper's staged schedule (an IbcastStart + Wait pair
// charges identically to the blocking Bcast).
func (p *Proc) forEachStage(bBatch, bNextBatch spmat.Matrix, res *Result, consume func(prod spmat.Matrix)) {
	g := p.G
	meter := g.World.Meter()
	stages := g.Q
	pipe := p.Opts.Pipeline

	var next stageBcasts
	if pipe {
		if p.pipe.hasNext {
			// Stage 0 was prefetched by the previous batch's last stage.
			next = p.pipe.next
			p.pipe.hasNext = false
		} else {
			next = p.postStageBcasts(0, bBatch)
		}
	}
	tr := meter.Recorder()
	for s := 0; s < stages; s++ {
		tr.SetStage(s)
		cur := next
		if !pipe {
			cur = p.postStageBcasts(s, bBatch)
		}
		aRecv, bRecv := p.waitStageBcasts(cur, StepABcast, StepABcastHidden, StepBBcast, StepBBcastHidden)
		if pipe {
			if s+1 < stages {
				next = p.postStageBcasts(s+1, bBatch)
			} else if bNextBatch != nil {
				// Cross-batch prefetch: post the next batch's stage-0
				// broadcasts before this batch's final multiply.
				p.pipe.next = p.postStageBcasts(0, bNextBatch)
				p.pipe.hasNext = true
			}
		}

		stageFlops := localmm.MatFlops(aRecv, bRecv)
		res.LocalFlops += stageFlops

		// Local multiply (Alg 1 line 7). The kernel is chosen per stage from
		// the exact flops and scanned columns of this block pair when
		// Opts.AutoKernel is set (stageKernel), and the measured seconds feed
		// the recalibration table either way. Work units = flops plus the
		// operand traversal cost, so empty products still carry their
		// column-scan work — the dense column count for CSC operands, only
		// the stored columns for DCSC (the O(n)-per-block term the compressed
		// format removes from the modeled critical path); the unit accounting
		// is deliberately kernel-independent so the modeled critical path
		// never moves with the kernel knob. With Opts.Threads > 1 the
		// kernel's workers all run inside this rank's MeasureCompute token:
		// the single-token gate still serializes ranks, so intra-rank
		// parallelism appears as shorter measured compute, exactly the
		// paper's 16-threads-per-process configuration.
		meter.SetCategory(StepLocalMult)
		scanCols := colScanWork(bRecv)
		kern := p.stageKernel(stageFlops, scanCols)
		var prod spmat.Matrix
		sec := p.measure(func() {
			prod = p.kernelAs(kern)(aRecv, bRecv)
		})
		p.Opts.Kernels.Observe(kern.String(), stageFlops, scanCols, sec)
		meter.AddComputeWork(sec, stageFlops+bRecv.NNZ()+scanCols+1)
		consume(prod)
	}
	tr.SetStage(-1)
}

// stageProducts runs the stage loop and collects every stage's partial
// product (the non-incremental merge strategy's input).
func (p *Proc) stageProducts(bBatch, bNextBatch spmat.Matrix, res *Result) (partial []spmat.Matrix, unmerged int64) {
	partial = make([]spmat.Matrix, 0, p.G.Q)
	p.forEachStage(bBatch, bNextBatch, res, func(prod spmat.Matrix) {
		partial = append(partial, prod)
		unmerged += prod.NNZ()
	})
	res.UnmergedNNZ += unmerged
	// Peak: inputs plus all unmerged stage products live simultaneously.
	p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+unmerged)
	return partial, unmerged
}

// emptyLike returns an empty rows×cols matrix in m's concrete format.
func emptyLike(m spmat.Matrix, rows, cols int32) spmat.Matrix {
	if m.Format() == spmat.FormatDCSC {
		return spmat.NewDCSC(rows, cols)
	}
	return spmat.New(rows, cols)
}

// summa2D executes Alg 1 on this rank's layer for one batch piece of B:
// q stages of broadcasts and local multiplies, then a single Merge-Layer
// (the paper merges once after all stages; see Sec. III-A). With
// Options.IncrementalMerge the stage products are folded into a running
// accumulator instead — lower peak memory, more merge work.
func (p *Proc) summa2D(bBatch, bNextBatch spmat.Matrix, res *Result) spmat.Matrix {
	if p.Opts.IncrementalMerge {
		return p.summa2DIncremental(bBatch, bNextBatch, res)
	}
	partial, unmerged := p.stageProducts(bBatch, bNextBatch, res)

	// Merge-Layer (Alg 1 line 8). Output may stay unsorted: only the final
	// Merge-Fiber output must be sorted (Sec. IV-D). The strategy is chosen
	// per merge from the entry and scanned-column counts when Opts.AutoMerger
	// is set, and the measured seconds recalibrate the table.
	meter := p.G.World.Meter()
	meter.SetCategory(StepMergeLayer)
	mg := p.pickMerger(unmerged, colScanWork(bBatch))
	var d spmat.Matrix
	mergeSec := p.measure(func() {
		d = p.mergeAs(mg)(partial, false)
	})
	p.Opts.Kernels.Observe(mg.String(), unmerged, colScanWork(bBatch), mergeSec)
	meter.AddComputeWork(mergeSec, unmerged+colScanWork(bBatch)+1)
	res.MergedLayerNNZ += d.NNZ()
	p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+unmerged+d.NNZ())
	return d
}

// summa2DIncremental is the merge-per-stage variant: after each stage the
// product is merged into the accumulator, so at most one stage product and
// the accumulator are live simultaneously. The per-stage merge time joins
// the overlap credit through the ledger: in pipelined mode the next stage's
// broadcasts hide behind multiply and merge alike.
func (p *Proc) summa2DIncremental(bBatch, bNextBatch spmat.Matrix, res *Result) spmat.Matrix {
	g := p.G
	meter := g.World.Meter()
	var acc spmat.Matrix
	p.forEachStage(bBatch, bNextBatch, res, func(prod spmat.Matrix) {
		res.UnmergedNNZ += prod.NNZ()
		if acc == nil {
			acc = prod
			p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+acc.NNZ())
			return
		}
		meter.SetCategory(StepMergeLayer)
		work := acc.NNZ() + prod.NNZ()
		p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+work)
		pair := []spmat.Matrix{acc, prod}
		mg := p.pickMerger(work, colScanWork(acc))
		var merged spmat.Matrix
		sec := p.measure(func() {
			merged = p.mergeAs(mg)(pair, false)
		})
		p.Opts.Kernels.Observe(mg.String(), work, colScanWork(acc), sec)
		meter.AddComputeWork(sec, work+1)
		acc = merged
	})
	if acc == nil {
		ar, _ := p.LocalA.Dims()
		_, bc := bBatch.Dims()
		acc = emptyLike(bBatch, ar, bc)
	}
	res.MergedLayerNNZ += acc.NNZ()
	p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+acc.NNZ())
	return acc
}

// summa3DBatch executes one batch of Alg 2: per-layer 2D SUMMA, the fiber
// AllToAll, and the fiber merge. bBatch is this batch's piece of the local B
// (extracted by BatchedSUMMA3D); bNextBatch is the next batch's piece, or nil
// on the last batch, used by the pipelined schedule's cross-batch prefetch.
// Returns the local batch output (sorted) and the local column offsets
// (within this rank's block column) it covers.
func (p *Proc) summa3DBatch(t int, bBatch, bNextBatch spmat.Matrix, res *Result) (spmat.Matrix, []int32) {
	if p.Opts.Pipeline {
		return p.summa3DBatchOverlapped(t, bBatch, bNextBatch, res)
	}
	g := p.G
	meter := g.World.Meter()

	// Per-layer 2D multiply (Alg 2 line 3).
	d := p.summa2D(bBatch, nil, res)

	// ColSplit packing (Alg 2 line 4) is local merge-side work, so it is
	// metered as Merge-Layer compute; the category switches to the exchange's
	// step only at the collective itself, keeping packing time out of the
	// communication attribution.
	meter.SetCategory(StepMergeLayer)
	var pieces []spmat.Matrix
	packSec := p.measure(func() {
		pieces, _ = p.bt.SplitByLayerMat(d, t)
	})
	meter.AddComputeWork(packSec, d.NNZ()+int64(g.L)+1)
	send := make([]mpi.Payload, g.L)
	for m := 0; m < g.L; m++ {
		send[m] = pieces[m]
	}

	// AllToAll along the fiber (Alg 2 line 5).
	meter.SetCategory(StepAllToAll)
	recv := g.Fiber.AllToAllv(send)
	dRows, _ := d.Dims()
	return p.mergeFiber(t, dRows, recv, res)
}

// summa3DBatchOverlapped is summa3DBatch on the fully-overlapped schedule
// (Opts.Pipeline). Merge-Layer is partitioned by destination layer —
// per-column identical to merge-then-split, so the output does not change —
// which lets the fiber exchange (split into IalltoallvStart + WaitOverlap)
// be posted as soon as the remote destinations' shares are merged and
// complete while the own-layer share still runs: that merge time becomes
// overlap credit and the hidden share of the AllToAll cost is charged to
// StepAllToAllHidden.
func (p *Proc) summa3DBatchOverlapped(t int, bBatch, bNextBatch spmat.Matrix, res *Result) (spmat.Matrix, []int32) {
	g := p.G
	meter := g.World.Meter()
	led := &p.pipe.ledger

	if p.Opts.IncrementalMerge {
		// The accumulator is already fully merged, so no Merge-Layer work is
		// left to hide the exchange behind; the split exchange still runs so
		// any unclaimed compute since the post (none, in this schedule) could
		// be credited, and the cross-batch broadcast prefetch applies as in
		// the non-incremental variant.
		acc := p.summa2DIncremental(bBatch, bNextBatch, res)
		meter.SetCategory(StepMergeLayer)
		var pieces []spmat.Matrix
		packSec := p.measure(func() {
			pieces, _ = p.bt.SplitByLayerMat(acc, t)
		})
		meter.AddComputeWork(packSec, acc.NNZ()+int64(g.L)+1)
		send := make([]mpi.Payload, g.L)
		for m := 0; m < g.L; m++ {
			if m != g.K {
				send[m] = pieces[m]
			}
		}
		post := led.clock
		req := g.Fiber.IalltoallvStart(send)
		meter.SetCategory(StepAllToAll)
		recv, used := req.WaitOverlap(led.creditSince(post), StepAllToAllHidden)
		meter.Recorder().TagChannel(led.claim(post, used))
		recv[g.K] = pieces[g.K] // the own piece never travels
		accRows, _ := acc.Dims()
		return p.mergeFiber(t, accRows, recv, res)
	}

	partial, unmerged := p.stageProducts(bBatch, bNextBatch, res)

	// Destination-partitioned Merge-Layer: split every stage product by
	// owning layer first (the ColSplit packing of Alg 2 line 4, charged as
	// Merge-Layer compute like in the staged schedule), then merge each
	// destination's stage pieces separately. Merging is column-independent,
	// so each merged piece is bit-identical to the corresponding column
	// selection of the staged schedule's single Merge-Layer output.
	meter.SetCategory(StepMergeLayer)
	perDest := make([][]spmat.Matrix, g.L)
	packSec := p.measure(func() {
		for _, prod := range partial {
			pieces, _ := p.bt.SplitByLayerMat(prod, t)
			for m := 0; m < g.L; m++ {
				perDest[m] = append(perDest[m], pieces[m])
			}
		}
	})
	meter.AddComputeWork(packSec, unmerged+int64(g.L)+1)

	mergeDest := func(m int) spmat.Matrix {
		var in int64
		for _, piece := range perDest[m] {
			in += piece.NNZ()
		}
		mg := p.pickMerger(in, colScanWork(perDest[m][0]))
		var out spmat.Matrix
		sec := p.measure(func() {
			out = p.mergeAs(mg)(perDest[m], false)
		})
		p.Opts.Kernels.Observe(mg.String(), in, colScanWork(out), sec)
		meter.AddComputeWork(sec, in+colScanWork(out)+1)
		return out
	}

	// Remote destinations first, so the exchange posts as early as possible.
	send := make([]mpi.Payload, g.L)
	var mergedNNZ int64
	for m := 0; m < g.L; m++ {
		if m == g.K {
			continue
		}
		piece := mergeDest(m)
		send[m] = piece
		mergedNNZ += piece.NNZ()
	}
	post := led.clock
	req := g.Fiber.IalltoallvStart(send)

	// The own-layer share of Merge-Layer overlaps the in-flight exchange.
	own := mergeDest(g.K)
	mergedNNZ += own.NNZ()
	res.MergedLayerNNZ += mergedNNZ
	p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+unmerged+mergedNNZ)

	meter.SetCategory(StepAllToAll)
	recv, used := req.WaitOverlap(led.creditSince(post), StepAllToAllHidden)
	meter.Recorder().TagChannel(led.claim(post, used))
	recv[g.K] = own // the own piece never travels
	ownRows, _ := own.Dims()
	return p.mergeFiber(t, ownRows, recv, res)
}

// mergeFiber is Merge-Fiber (Alg 2 line 6), shared by the staged and
// overlapped schedules: the final output is sorted here and only here
// (Sec. IV-D). recv is indexed by source layer; nil entries carry nothing.
// Received pieces keep whatever format their source rank stored them in —
// under the auto heuristic the operands can mix formats — and the batch
// output keeps the merged format too: when every fiber payload is
// doubly-compressed the merge emits DCSC (localmm.MergeMat), so hypersparse
// batches never inflate to dense column pointers here — this was the last
// O(cols) scan on the DCSC path, and the work accounting now carries the
// same colScanWork term as every other merge (the dense column count for a
// CSC output, only the stored columns for DCSC). Conversion to the
// user-facing CSC happens once, at hook boundaries and final assembly
// (BatchedSUMMA3D).
func (p *Proc) mergeFiber(t int, rows int32, recv []mpi.Payload, res *Result) (spmat.Matrix, []int32) {
	g := p.G
	meter := g.World.Meter()
	meter.SetCategory(StepMergeFiber)
	mats := make([]spmat.Matrix, 0, g.L)
	var recvNNZ int64
	for _, r := range recv {
		if r == nil {
			continue
		}
		m := r.(spmat.Matrix)
		mats = append(mats, m)
		recvNNZ += m.NNZ()
	}
	mg := p.Opts.Merger
	if len(mats) > 0 {
		var scan int64
		for _, m := range mats {
			scan += colScanWork(m)
		}
		mg = p.pickMerger(recvNNZ, scan)
	}
	var c spmat.Matrix
	fiberSec := p.measure(func() {
		if len(mats) == 0 {
			c = spmat.New(rows, 0)
		} else {
			c = p.mergeAs(mg)(mats, true)
		}
	})
	if len(mats) > 0 {
		p.Opts.Kernels.Observe(mg.String(), recvNNZ, colScanWork(c), fiberSec)
	}
	meter.AddComputeWork(fiberSec, recvNNZ+colScanWork(c)+1)
	p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+recvNNZ+c.NNZ())
	return c, p.bt.BatchLayerCols(t, g.K)
}

// trackPeak records a modeled memory checkpoint of live nonzeros.
func (p *Proc) trackPeak(res *Result, liveNNZ int64) {
	if mem := liveNNZ * p.Opts.BytesPerNnz; mem > res.PeakMemBytes {
		res.PeakMemBytes = mem
	}
}
