package core

import (
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// stageBcasts is the pair of in-flight broadcasts feeding one SUMMA stage —
// the double buffer of the pipelined schedule. Posting stage s+1 while stage
// s computes keeps two stages' operands live at once; the serial schedule
// posts and waits in lockstep so only one pair is ever outstanding.
type stageBcasts struct {
	a, b *mpi.BcastRequest
}

// postStageBcasts posts stage s's A-broadcast along the process row and its
// B-broadcast along the process column (Alg 1 lines 5–6) without charging
// the meter; cost attribution happens when the stage is consumed
// (waitStageBcasts). bOperand is this rank's B piece to contribute when it
// is the column root (the batch piece for SUMMA, the full local B for the
// symbolic pass).
func (p *Proc) postStageBcasts(s int, bOperand *spmat.CSC) stageBcasts {
	g := p.G
	var aMsg mpi.Payload
	if g.J == s {
		aMsg = p.LocalA
	}
	var bMsg mpi.Payload
	if g.I == s {
		bMsg = bOperand
	}
	return stageBcasts{a: g.Row.IbcastStart(s, aMsg), b: g.Col.IbcastStart(s, bMsg)}
}

// waitStageBcasts completes a stage's broadcasts and returns its operands.
// credit is the measured compute seconds that ran since the stage was
// posted (zero in the serial schedule): the share of the modeled broadcast
// cost it covers is charged to the hidden categories, the exposed remainder
// to aCat/bCat. The two broadcasts drain one shared credit pool — a stage's
// compute window can only hide that much communication, no matter how it is
// split between A and B.
func (p *Proc) waitStageBcasts(sb stageBcasts, credit float64, aCat, aHidden, bCat, bHidden string) (aRecv, bRecv *spmat.CSC) {
	meter := p.G.World.Meter()
	meter.SetCategory(aCat)
	aPay, used := sb.a.WaitOverlap(credit, aHidden)
	meter.SetCategory(bCat)
	bPay, _ := sb.b.WaitOverlap(credit-used, bHidden)
	return aPay.(*spmat.CSC), bPay.(*spmat.CSC)
}

// forEachStage runs the q broadcast+multiply stages of Alg 1 over bBatch,
// invoking consume with every stage's partial product. consume returns any
// additional measured compute seconds it spent (e.g. an incremental merge),
// which join the multiply time as overlap credit for the next stage's
// broadcasts.
//
// With Opts.Pipeline the loop prefetches: stage s+1's broadcasts are posted
// before stage s's multiply starts, so their modeled cost can hide behind
// the measured compute of stage s. Without it, each stage posts and
// immediately waits, metering exactly the paper's staged schedule (an
// IbcastStart + Wait pair charges identically to the blocking Bcast).
func (p *Proc) forEachStage(bBatch *spmat.CSC, res *Result, consume func(prod *spmat.CSC) float64) {
	g := p.G
	meter := g.World.Meter()
	stages := g.Q
	pipe := p.Opts.Pipeline

	var next stageBcasts
	if pipe {
		next = p.postStageBcasts(0, bBatch)
	}
	var credit float64
	for s := 0; s < stages; s++ {
		cur := next
		if !pipe {
			cur = p.postStageBcasts(s, bBatch)
		}
		aRecv, bRecv := p.waitStageBcasts(cur, credit, StepABcast, StepABcastHidden, StepBBcast, StepBBcastHidden)
		if pipe && s+1 < stages {
			next = p.postStageBcasts(s+1, bBatch)
		}

		stageFlops := localmm.Flops(aRecv, bRecv)
		res.LocalFlops += stageFlops

		// Local multiply (Alg 1 line 7). Work units = flops plus the operand
		// traversal cost, so empty products still carry their column-scan
		// work. With Opts.Threads > 1 the kernel's workers all run inside
		// this rank's MeasureCompute token: the single-token gate still
		// serializes ranks, so intra-rank parallelism appears as shorter
		// measured compute, exactly the paper's 16-threads-per-process
		// configuration.
		meter.SetCategory(StepLocalMult)
		var prod *spmat.CSC
		sec := mpi.MeasureCompute(func() {
			prod = p.kernelFn()(aRecv, bRecv)
		})
		meter.AddComputeWork(sec, stageFlops+bRecv.NNZ()+int64(bRecv.Cols)+1)
		extra := consume(prod)
		if pipe {
			// Only the pipelined schedule earns overlap credit: in the
			// serial schedule no compute runs between a stage's post and
			// wait, so the next stage's broadcasts are fully exposed.
			credit = sec + extra
		}
	}
}

// summa2D executes Alg 1 on this rank's layer for one batch piece of B:
// q stages of broadcasts and local multiplies, then a single Merge-Layer
// (the paper merges once after all stages; see Sec. III-A). With
// Options.IncrementalMerge the stage products are folded into a running
// accumulator instead — lower peak memory, more merge work.
func (p *Proc) summa2D(bBatch *spmat.CSC, res *Result) *spmat.CSC {
	if p.Opts.IncrementalMerge {
		return p.summa2DIncremental(bBatch, res)
	}
	g := p.G
	meter := g.World.Meter()
	partial := make([]*spmat.CSC, 0, g.Q)
	var unmerged int64
	p.forEachStage(bBatch, res, func(prod *spmat.CSC) float64 {
		partial = append(partial, prod)
		unmerged += prod.NNZ()
		return 0
	})
	res.UnmergedNNZ += unmerged
	// Peak: inputs plus all unmerged stage products live simultaneously.
	p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+unmerged)

	// Merge-Layer (Alg 1 line 8). Output may stay unsorted: only the final
	// Merge-Fiber output must be sorted (Sec. IV-D).
	meter.SetCategory(StepMergeLayer)
	var d *spmat.CSC
	mergeSec := mpi.MeasureCompute(func() {
		d = p.mergeFn()(partial, false)
	})
	meter.AddComputeWork(mergeSec, unmerged+int64(bBatch.Cols)+1)
	res.MergedLayerNNZ += d.NNZ()
	p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+unmerged+d.NNZ())
	return d
}

// summa2DIncremental is the merge-per-stage variant: after each stage the
// product is merged into the accumulator, so at most one stage product and
// the accumulator are live simultaneously. The per-stage merge time joins
// the overlap credit: in pipelined mode the next stage's broadcasts hide
// behind multiply and merge alike.
func (p *Proc) summa2DIncremental(bBatch *spmat.CSC, res *Result) *spmat.CSC {
	g := p.G
	meter := g.World.Meter()
	var acc *spmat.CSC
	p.forEachStage(bBatch, res, func(prod *spmat.CSC) float64 {
		res.UnmergedNNZ += prod.NNZ()
		if acc == nil {
			acc = prod
			p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+acc.NNZ())
			return 0
		}
		meter.SetCategory(StepMergeLayer)
		work := acc.NNZ() + prod.NNZ()
		p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+work)
		pair := []*spmat.CSC{acc, prod}
		var merged *spmat.CSC
		sec := mpi.MeasureCompute(func() {
			merged = p.mergeFn()(pair, false)
		})
		meter.AddComputeWork(sec, work+1)
		acc = merged
		return sec
	})
	if acc == nil {
		acc = spmat.New(p.LocalA.Rows, bBatch.Cols)
	}
	res.MergedLayerNNZ += acc.NNZ()
	p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+acc.NNZ())
	return acc
}

// summa3DBatch executes one batch of Alg 2: per-layer 2D SUMMA, the fiber
// AllToAll, and the fiber merge. Returns the local batch output (sorted) and
// the local column offsets (within this rank's block column) it covers.
func (p *Proc) summa3DBatch(t int, res *Result) (*spmat.CSC, []int32) {
	g := p.G
	meter := g.World.Meter()

	// Extract this batch's piece of the local B (block-cyclic, Fig 1(i)).
	batchCols := p.bt.BatchCols(t)
	bBatch := spmat.ColSelect(p.LocalB, batchCols)

	// Per-layer 2D multiply (Alg 2 line 3).
	d := p.summa2D(bBatch, res)

	// ColSplit + AllToAll along the fiber (Alg 2 lines 4–5).
	meter.SetCategory(StepAllToAll)
	pieces, _ := p.bt.SplitByLayer(d, t)
	send := make([]mpi.Payload, g.L)
	for m := 0; m < g.L; m++ {
		send[m] = pieces[m]
	}
	recv := g.Fiber.AllToAllv(send)

	// Merge-Fiber (Alg 2 line 6): the final output is sorted here and only
	// here (Sec. IV-D).
	meter.SetCategory(StepMergeFiber)
	mats := make([]*spmat.CSC, 0, g.L)
	var recvNNZ int64
	for _, r := range recv {
		if r == nil {
			continue
		}
		m := r.(*spmat.CSC)
		mats = append(mats, m)
		recvNNZ += m.NNZ()
	}
	var c *spmat.CSC
	fiberSec := mpi.MeasureCompute(func() {
		if len(mats) == 0 {
			c = spmat.New(d.Rows, 0)
		} else {
			c = p.mergeFn()(mats, true)
		}
	})
	meter.AddComputeWork(fiberSec, recvNNZ+1)
	p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+recvNNZ+c.NNZ())
	return c, p.bt.BatchLayerCols(t, g.K)
}

// trackPeak records a modeled memory checkpoint of live nonzeros.
func (p *Proc) trackPeak(res *Result, liveNNZ int64) {
	if mem := liveNNZ * p.Opts.BytesPerNnz; mem > res.PeakMemBytes {
		res.PeakMemBytes = mem
	}
}
