package core

import (
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// summa2DStage runs the two broadcasts and the local multiply of one SUMMA
// stage (Alg 1 lines 5–7) for the given batch piece of B, returning the
// stage's partial product and charging flop counts to res.
func (p *Proc) summa2DStage(s int, bBatch *spmat.CSC, res *Result) *spmat.CSC {
	g := p.G
	meter := g.World.Meter()

	// A-Broadcast along the process row: root is the rank at column s.
	meter.SetCategory(StepABcast)
	var aMsg mpi.Payload
	if g.J == s {
		aMsg = p.LocalA
	}
	aRecv := g.Row.Bcast(s, aMsg).(*spmat.CSC)

	// B-Broadcast along the process column: root is the rank at row s.
	meter.SetCategory(StepBBcast)
	var bMsg mpi.Payload
	if g.I == s {
		bMsg = bBatch
	}
	bRecv := g.Col.Bcast(s, bMsg).(*spmat.CSC)

	stageFlops := localmm.Flops(aRecv, bRecv)
	res.LocalFlops += stageFlops

	// Local multiply (Alg 1 line 7). Work units = flops plus the operand
	// traversal cost, so empty products still carry their column-scan work.
	// With Opts.Threads > 1 the kernel's workers all run inside this rank's
	// MeasureCompute token: the single-token gate still serializes ranks, so
	// intra-rank parallelism appears as shorter measured compute, exactly the
	// paper's 16-threads-per-process configuration.
	meter.SetCategory(StepLocalMult)
	var prod *spmat.CSC
	sec := mpi.MeasureCompute(func() {
		prod = p.kernelFn()(aRecv, bRecv)
	})
	meter.AddComputeWork(sec, stageFlops+bRecv.NNZ()+int64(bRecv.Cols)+1)
	return prod
}

// summa2D executes Alg 1 on this rank's layer for one batch piece of B:
// q stages of broadcasts and local multiplies, then a single Merge-Layer
// (the paper merges once after all stages; see Sec. III-A). With
// Options.IncrementalMerge the stage products are folded into a running
// accumulator instead — lower peak memory, more merge work.
func (p *Proc) summa2D(bBatch *spmat.CSC, res *Result) *spmat.CSC {
	if p.Opts.IncrementalMerge {
		return p.summa2DIncremental(bBatch, res)
	}
	g := p.G
	meter := g.World.Meter()
	stages := g.Q
	partial := make([]*spmat.CSC, 0, stages)
	var unmerged int64
	for s := 0; s < stages; s++ {
		prod := p.summa2DStage(s, bBatch, res)
		partial = append(partial, prod)
		unmerged += prod.NNZ()
	}
	res.UnmergedNNZ += unmerged
	// Peak: inputs plus all unmerged stage products live simultaneously.
	p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+unmerged)

	// Merge-Layer (Alg 1 line 8). Output may stay unsorted: only the final
	// Merge-Fiber output must be sorted (Sec. IV-D).
	meter.SetCategory(StepMergeLayer)
	var d *spmat.CSC
	mergeSec := mpi.MeasureCompute(func() {
		d = p.mergeFn()(partial, false)
	})
	meter.AddComputeWork(mergeSec, unmerged+int64(bBatch.Cols)+1)
	res.MergedLayerNNZ += d.NNZ()
	p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+unmerged+d.NNZ())
	return d
}

// summa2DIncremental is the merge-per-stage variant: after each stage the
// product is merged into the accumulator, so at most one stage product and
// the accumulator are live simultaneously.
func (p *Proc) summa2DIncremental(bBatch *spmat.CSC, res *Result) *spmat.CSC {
	g := p.G
	meter := g.World.Meter()
	stages := g.Q
	var acc *spmat.CSC
	for s := 0; s < stages; s++ {
		prod := p.summa2DStage(s, bBatch, res)
		res.UnmergedNNZ += prod.NNZ()
		if acc == nil {
			acc = prod
			p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+acc.NNZ())
			continue
		}
		meter.SetCategory(StepMergeLayer)
		work := acc.NNZ() + prod.NNZ()
		p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+work)
		pair := []*spmat.CSC{acc, prod}
		var merged *spmat.CSC
		sec := mpi.MeasureCompute(func() {
			merged = p.mergeFn()(pair, false)
		})
		meter.AddComputeWork(sec, work+1)
		acc = merged
	}
	if acc == nil {
		acc = spmat.New(p.LocalA.Rows, bBatch.Cols)
	}
	res.MergedLayerNNZ += acc.NNZ()
	p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+acc.NNZ())
	return acc
}

// summa3DBatch executes one batch of Alg 2: per-layer 2D SUMMA, the fiber
// AllToAll, and the fiber merge. Returns the local batch output (sorted) and
// the local column offsets (within this rank's block column) it covers.
func (p *Proc) summa3DBatch(t int, res *Result) (*spmat.CSC, []int32) {
	g := p.G
	meter := g.World.Meter()

	// Extract this batch's piece of the local B (block-cyclic, Fig 1(i)).
	batchCols := p.bt.BatchCols(t)
	bBatch := spmat.ColSelect(p.LocalB, batchCols)

	// Per-layer 2D multiply (Alg 2 line 3).
	d := p.summa2D(bBatch, res)

	// ColSplit + AllToAll along the fiber (Alg 2 lines 4–5).
	meter.SetCategory(StepAllToAll)
	pieces, _ := p.bt.SplitByLayer(d, t)
	send := make([]mpi.Payload, g.L)
	for m := 0; m < g.L; m++ {
		send[m] = pieces[m]
	}
	recv := g.Fiber.AllToAllv(send)

	// Merge-Fiber (Alg 2 line 6): the final output is sorted here and only
	// here (Sec. IV-D).
	meter.SetCategory(StepMergeFiber)
	mats := make([]*spmat.CSC, 0, g.L)
	var recvNNZ int64
	for _, r := range recv {
		if r == nil {
			continue
		}
		m := r.(*spmat.CSC)
		mats = append(mats, m)
		recvNNZ += m.NNZ()
	}
	var c *spmat.CSC
	fiberSec := mpi.MeasureCompute(func() {
		if len(mats) == 0 {
			c = spmat.New(d.Rows, 0)
		} else {
			c = p.mergeFn()(mats, true)
		}
	})
	meter.AddComputeWork(fiberSec, recvNNZ+1)
	p.trackPeak(res, p.LocalA.NNZ()+p.LocalB.NNZ()+recvNNZ+c.NNZ())
	return c, p.bt.BatchLayerCols(t, g.K)
}

// trackPeak records a modeled memory checkpoint of live nonzeros.
func (p *Proc) trackPeak(res *Result, liveNNZ int64) {
	if mem := liveNNZ * p.Opts.BytesPerNnz; mem > res.PeakMemBytes {
		res.PeakMemBytes = mem
	}
}
