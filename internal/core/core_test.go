package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/distmat"
	"repro/internal/grid"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

var testCM = mpi.CostModel{AlphaSec: 1e-6, BetaSecPerByte: 1e-9}

func randomMat(t testing.TB, rows, cols int32, nnz int, seed int64) *spmat.CSC {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := make([]spmat.Triple, 0, nnz)
	for i := 0; i < nnz; i++ {
		ts = append(ts, spmat.Triple{
			Row: int32(rng.Intn(int(rows))),
			Col: int32(rng.Intn(int(cols))),
			Val: float64(rng.Intn(9) + 1),
		})
	}
	m, err := spmat.FromTriples(rows, cols, ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runDistributed multiplies A·B on p ranks in l layers and returns the
// assembled global result, per-rank results, and the metering summary.
func runDistributed(t testing.TB, p, l int, a, b *spmat.CSC, opts Options, hook BatchHook) (*spmat.CSC, []*Result, *mpi.Summary) {
	t.Helper()
	results := make([]*Result, p)
	var mu sync.Mutex
	var firstErr error
	meters := mpi.Run(p, testCM, func(c *mpi.Comm) {
		g, err := grid.New(c, l)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		proc, err := Setup(g, a, b, opts)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		res, err := proc.BatchedSUMMA3D(hook)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		results[c.Rank()] = res
	})
	if firstErr != nil {
		t.Fatalf("distributed run failed: %v", firstErr)
	}
	assembled, err := AssembleResults(results, a.Rows, b.Cols)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return assembled, results, mpi.Summarize(meters)
}

func TestBatched3DMatchesSerialAcrossShapes(t *testing.T) {
	a := randomMat(t, 48, 48, 400, 1)
	b := randomMat(t, 48, 48, 400, 2)
	want := localmm.Multiply(a, b, semiring.PlusTimes())
	for _, cfg := range []struct{ p, l, b int }{
		{1, 1, 1},
		{4, 1, 1},
		{4, 4, 1}, // 1x1 layers
		{8, 2, 1},
		{16, 4, 1},
		{16, 1, 1},
		{4, 1, 2},
		{8, 2, 3},
		{16, 4, 4},
		{16, 4, 7},
	} {
		got, results, _ := runDistributed(t, cfg.p, cfg.l, a, b,
			Options{ForceBatches: cfg.b}, nil)
		if !spmat.Equal(got, want) {
			t.Errorf("p=%d l=%d b=%d: distributed result differs from serial", cfg.p, cfg.l, cfg.b)
		}
		for r, res := range results {
			if res.Batches < 1 {
				t.Errorf("p=%d l=%d b=%d rank %d: batches=%d", cfg.p, cfg.l, cfg.b, r, res.Batches)
			}
		}
	}
}

func TestBatched3DRaggedShapes(t *testing.T) {
	// Dimensions deliberately not divisible by q or l.
	a := randomMat(t, 53, 47, 350, 3)
	b := randomMat(t, 47, 59, 350, 4)
	want := localmm.Multiply(a, b, semiring.PlusTimes())
	for _, cfg := range []struct{ p, l, b int }{
		{4, 1, 1}, {8, 2, 2}, {16, 4, 3}, {9, 1, 2}, {18, 2, 5},
	} {
		got, _, _ := runDistributed(t, cfg.p, cfg.l, a, b, Options{ForceBatches: cfg.b}, nil)
		if !spmat.Equal(got, want) {
			t.Errorf("p=%d l=%d b=%d: ragged distributed result differs", cfg.p, cfg.l, cfg.b)
		}
	}
}

func TestBatched3DAATRectangular(t *testing.T) {
	// The BELLA/PASTIS pattern: A is reads×kmers (hypersparse, rectangular),
	// multiply A·Aᵀ.
	a := randomMat(t, 40, 120, 240, 5)
	at := spmat.Transpose(a)
	want := localmm.Multiply(a, at, semiring.PlusTimes())
	got, _, _ := runDistributed(t, 8, 2, a, at, Options{ForceBatches: 2}, nil)
	if !spmat.Equal(got, want) {
		t.Error("AAT distributed result differs")
	}
}

func TestAllKernelMergerCombinations(t *testing.T) {
	a := randomMat(t, 36, 36, 250, 6)
	b := randomMat(t, 36, 36, 250, 7)
	want := localmm.Multiply(a, b, semiring.PlusTimes())
	for _, k := range []localmm.Kernel{localmm.KernelHashUnsorted, localmm.KernelHashSorted, localmm.KernelHeap, localmm.KernelHybrid} {
		for _, mg := range []localmm.Merger{localmm.MergerHash, localmm.MergerHeap} {
			got, _, _ := runDistributed(t, 8, 2, a, b,
				Options{ForceBatches: 2, Kernel: k, Merger: mg}, nil)
			if !spmat.Equal(got, want) {
				t.Errorf("kernel=%v merger=%v: wrong result", k, mg)
			}
		}
	}
}

func TestOutputAlwaysSorted(t *testing.T) {
	a := randomMat(t, 32, 32, 200, 8)
	b := randomMat(t, 32, 32, 200, 9)
	_, results, _ := runDistributed(t, 4, 1, a, b, Options{ForceBatches: 2}, nil)
	for r, res := range results {
		if !res.C.SortedCols {
			t.Errorf("rank %d: final output not sorted", r)
		}
		if err := res.C.Validate(); err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

func TestSemiringsDistributed(t *testing.T) {
	a := randomMat(t, 30, 30, 150, 10)
	for _, sr := range []*semiring.Semiring{semiring.MinPlus(), semiring.BoolOrAnd(), semiring.PlusPairs()} {
		want := localmm.HashSpGEMMSorted(a, a, sr)
		got, _, _ := runDistributed(t, 4, 1, a, a, Options{Semiring: sr, ForceBatches: 2}, nil)
		if !spmat.Equal(got, want) {
			t.Errorf("semiring %s: distributed result differs", sr.Name)
		}
	}
}

func TestSymbolicChoosesBatches(t *testing.T) {
	a := randomMat(t, 64, 64, 800, 11)
	want := localmm.Multiply(a, a, semiring.PlusTimes())
	// Budget chosen so inputs fit but intermediates need several batches.
	inputBytes := int64(24) * (2 * a.NNZ())
	got, results, _ := runDistributed(t, 4, 1, a, a,
		Options{MemBytes: inputBytes*4 + 4096}, nil)
	if !spmat.Equal(got, want) {
		t.Error("memory-constrained result differs")
	}
	b := results[0].Batches
	if b < 2 {
		t.Errorf("expected multiple batches under a tight budget, got %d", b)
	}
	for r, res := range results {
		if res.SymbolicB != results[0].SymbolicB {
			t.Errorf("rank %d: symbolic b=%d differs from rank 0's %d", r, res.SymbolicB, results[0].SymbolicB)
		}
	}
}

func TestUnlimitedMemorySingleBatch(t *testing.T) {
	a := randomMat(t, 32, 32, 300, 12)
	_, results, _ := runDistributed(t, 4, 1, a, a, Options{}, nil)
	if results[0].Batches != 1 {
		t.Errorf("unconstrained run used %d batches", results[0].Batches)
	}
	if results[0].SymbolicB != 1 {
		t.Errorf("symbolic chose %d", results[0].SymbolicB)
	}
}

func TestSymbolicErrorWhenInputsDontFit(t *testing.T) {
	a := randomMat(t, 32, 32, 300, 13)
	p := 4
	results := make([]error, p)
	mpi.Run(p, testCM, func(c *mpi.Comm) {
		g, _ := grid.New(c, 1)
		proc, err := Setup(g, a, a, Options{MemBytes: 100}) // absurdly small
		if err != nil {
			t.Error(err)
			return
		}
		_, err = proc.BatchedSUMMA3D(nil)
		results[c.Rank()] = err
	})
	for r, err := range results {
		if err == nil {
			t.Errorf("rank %d: expected memory error", r)
		}
	}
}

func TestBatchingReducesPeakMemory(t *testing.T) {
	a := randomMat(t, 64, 64, 900, 14)
	_, res1, _ := runDistributed(t, 4, 1, a, a, Options{ForceBatches: 1}, nil)
	_, res8, _ := runDistributed(t, 4, 1, a, a, Options{ForceBatches: 8}, nil)
	peak := func(rs []*Result) int64 {
		var mx int64
		for _, r := range rs {
			if r.PeakMemBytes > mx {
				mx = r.PeakMemBytes
			}
		}
		return mx
	}
	p1, p8 := peak(res1), peak(res8)
	if !(p8 < p1) {
		t.Errorf("batching did not reduce peak memory: b=1 %d bytes, b=8 %d bytes", p1, p8)
	}
}

func TestBatchHookPruning(t *testing.T) {
	a := randomMat(t, 40, 40, 400, 15)
	// Hook keeps only values > 20 (column-wise pruning as HipMCL does).
	hook := func(batch int, cols []int32, c *spmat.CSC) *spmat.CSC {
		pruned := c.Clone()
		pruned.Filter(func(_, _ int32, v float64) bool { return v > 20 })
		return pruned
	}
	got, _, _ := runDistributed(t, 4, 1, a, a, Options{ForceBatches: 4}, hook)
	want := localmm.Multiply(a, a, semiring.PlusTimes())
	want.Filter(func(_, _ int32, v float64) bool { return v > 20 })
	if !spmat.Equal(got, want) {
		t.Error("hook-pruned result differs from pruned serial result")
	}
}

func TestBatchHookSeesEveryBatchOnce(t *testing.T) {
	a := randomMat(t, 32, 32, 250, 16)
	const p, b = 4, 3
	counts := make([][]int, p)
	var mu sync.Mutex
	colsSeen := make([]map[int32]bool, p)
	mpi.Run(p, testCM, func(c *mpi.Comm) {
		g, _ := grid.New(c, 1)
		proc, _ := Setup(g, a, a, Options{ForceBatches: b})
		counts[c.Rank()] = make([]int, b)
		colsSeen[c.Rank()] = map[int32]bool{}
		_, err := proc.BatchedSUMMA3D(func(batch int, cols []int32, m *spmat.CSC) *spmat.CSC {
			mu.Lock()
			counts[c.Rank()][batch]++
			for _, col := range cols {
				colsSeen[c.Rank()][col] = true
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	})
	for r := 0; r < p; r++ {
		for t2 := 0; t2 < b; t2++ {
			if counts[r][t2] != 1 {
				t.Errorf("rank %d batch %d seen %d times", r, t2, counts[r][t2])
			}
		}
	}
	// Union of columns across ranks in one process column covers the block.
	all := map[int32]bool{}
	for r := 0; r < p; r++ {
		for c := range colsSeen[r] {
			all[c] = true
		}
	}
	if len(all) != 32 {
		t.Errorf("hooks saw %d distinct columns, want 32", len(all))
	}
}

func TestHookColumnCountMismatchRejected(t *testing.T) {
	a := randomMat(t, 16, 16, 80, 17)
	errs := make([]error, 4)
	mpi.Run(4, testCM, func(c *mpi.Comm) {
		g, _ := grid.New(c, 1)
		proc, _ := Setup(g, a, a, Options{ForceBatches: 2})
		_, err := proc.BatchedSUMMA3D(func(_ int, _ []int32, m *spmat.CSC) *spmat.CSC {
			return spmat.New(m.Rows, m.Cols+1)
		})
		errs[c.Rank()] = err
	})
	for r, err := range errs {
		if err == nil {
			t.Errorf("rank %d: hook with wrong shape accepted", r)
		}
	}
}

func TestSetupRejectsIncompatibleShapes(t *testing.T) {
	mpi.Run(4, testCM, func(c *mpi.Comm) {
		g, _ := grid.New(c, 1)
		if _, err := Setup(g, spmat.New(8, 9), spmat.New(10, 8), Options{}); err == nil {
			t.Error("shape mismatch accepted")
		}
	})
}

func TestSUMMA3DSingleBatch(t *testing.T) {
	a := randomMat(t, 32, 32, 250, 18)
	want := localmm.Multiply(a, a, semiring.PlusTimes())
	results := make([]*Result, 8)
	mpi.Run(8, testCM, func(c *mpi.Comm) {
		g, _ := grid.New(c, 2)
		proc, _ := Setup(g, a, a, Options{})
		res, err := proc.SUMMA3D()
		if err != nil {
			t.Error(err)
			return
		}
		results[c.Rank()] = res
	})
	got, err := AssembleResults(results, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !spmat.Equal(got, want) {
		t.Error("SUMMA3D result differs")
	}
	if results[0].Batches != 1 {
		t.Errorf("SUMMA3D used %d batches", results[0].Batches)
	}
}

func TestIncrementalMergeMatchesDeferred(t *testing.T) {
	a := randomMat(t, 40, 40, 350, 90)
	want := localmm.Multiply(a, a, semiring.PlusTimes())
	for _, cfg := range []struct{ p, l, b int }{{4, 1, 1}, {16, 4, 2}, {9, 1, 3}} {
		got, _, _ := runDistributed(t, cfg.p, cfg.l, a, a,
			Options{ForceBatches: cfg.b, IncrementalMerge: true}, nil)
		if !spmat.Equal(got, want) {
			t.Errorf("p=%d l=%d b=%d: incremental merge changed the result", cfg.p, cfg.l, cfg.b)
		}
	}
}

func TestIncrementalMergeLowersPeakMemory(t *testing.T) {
	// Incremental merging keeps at most accumulator+product live, so the
	// modeled peak must not exceed the deferred strategy's.
	a := randomMat(t, 64, 64, 800, 91)
	_, deferredRes, _ := runDistributed(t, 16, 1, a, a, Options{ForceBatches: 1}, nil)
	_, incRes, _ := runDistributed(t, 16, 1, a, a, Options{ForceBatches: 1, IncrementalMerge: true}, nil)
	peak := func(rs []*Result) int64 {
		var mx int64
		for _, r := range rs {
			if r.PeakMemBytes > mx {
				mx = r.PeakMemBytes
			}
		}
		return mx
	}
	if p1, p2 := peak(deferredRes), peak(incRes); p2 > p1 {
		t.Errorf("incremental peak %d exceeds deferred peak %d", p2, p1)
	}
}

func TestGlobalColsPartitionOutput(t *testing.T) {
	// Across all ranks of one process-column/layer set, GlobalCols must
	// cover every output column exactly once per row block.
	a := randomMat(t, 48, 48, 400, 92)
	_, results, _ := runDistributed(t, 16, 4, a, a, Options{ForceBatches: 3}, nil)
	// Count (rowBlock, col) coverage: each global column must appear in
	// exactly q row blocks (every rank of a process column holds it).
	cover := map[int32]int{}
	for _, r := range results {
		for _, c := range r.GlobalCols {
			cover[c]++
		}
	}
	if len(cover) != 48 {
		t.Fatalf("covered %d distinct columns, want 48", len(cover))
	}
	for c, n := range cover {
		if n != 2 { // q = sqrt(16/4) = 2 row blocks
			t.Errorf("column %d covered %d times, want 2", c, n)
		}
	}
}

func TestSetupLocalPath(t *testing.T) {
	// SetupLocal must produce the same result as Setup when handed the same
	// local pieces.
	a := randomMat(t, 32, 32, 250, 93)
	want := localmm.Multiply(a, a, semiring.PlusTimes())
	results := make([]*Result, 4)
	mpi.Run(4, testCM, func(c *mpi.Comm) {
		g, _ := grid.New(c, 1)
		da := distmat.NewADist(32, 32, g.Q, g.L)
		db := distmat.NewBDist(32, 32, g.Q, g.L)
		proc := SetupLocal(g, da, db, da.Local(a, g.I, g.J, g.K), db.Local(a, g.I, g.J, g.K),
			Options{ForceBatches: 2})
		res, err := proc.BatchedSUMMA3D(nil)
		if err != nil {
			t.Error(err)
			return
		}
		results[c.Rank()] = res
	})
	got, err := AssembleResults(results, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !spmat.Equal(got, want) {
		t.Error("SetupLocal result differs")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// Same inputs and configuration → byte-identical outputs and batch
	// decisions (modeled times are deterministic too, but compute is not).
	a := randomMat(t, 40, 40, 300, 94)
	mem := int64(24)*(8*a.NNZ()) + 24*localmm.Flops(a, a)/2
	r1, res1, _ := runDistributed(t, 4, 1, a, a, Options{MemBytes: mem}, nil)
	r2, res2, _ := runDistributed(t, 4, 1, a, a, Options{MemBytes: mem}, nil)
	if !spmat.Equal(r1, r2) {
		t.Error("results differ across identical runs")
	}
	if res1[0].Batches != res2[0].Batches || res1[0].SymbolicB != res2[0].SymbolicB {
		t.Error("batch decisions differ across identical runs")
	}
}

func TestMaxBatchesCap(t *testing.T) {
	a := randomMat(t, 48, 48, 600, 95)
	// Tiny budget would ask for many batches; the cap clamps it.
	mem := int64(24)*(8*a.NNZ()) + 24*localmm.Flops(a, a)/16
	_, results, _ := runDistributed(t, 4, 1, a, a, Options{MemBytes: mem, MaxBatches: 2}, nil)
	if results[0].Batches > 2 {
		t.Errorf("batches=%d exceeds MaxBatches=2", results[0].Batches)
	}
}

// TestDistributedEqualsSerialProperty is the repository's central invariant
// as a property test: for random shapes, grids, layer counts, and batch
// counts, BatchedSUMMA3D equals the serial product.
func TestDistributedEqualsSerialProperty(t *testing.T) {
	grids := []struct{ p, l int }{{1, 1}, {4, 1}, {4, 4}, {8, 2}, {16, 4}, {9, 1}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int32(rng.Intn(40) + 8)
		inner := int32(rng.Intn(40) + 8)
		cols := int32(rng.Intn(40) + 8)
		a := randomMat(t, rows, inner, rng.Intn(300), seed+1)
		b := randomMat(t, inner, cols, rng.Intn(300), seed+2)
		g := grids[rng.Intn(len(grids))]
		batches := rng.Intn(4) + 1
		want := localmm.Multiply(a, b, semiring.PlusTimes())
		got, _, _ := runDistributed(t, g.p, g.l, a, b, Options{ForceBatches: batches}, nil)
		return spmat.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
