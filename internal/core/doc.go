// Package core implements the paper's algorithms: 2D sparse SUMMA (Alg 1),
// 3D sparse SUMMA (Alg 2), the distributed symbolic batch-count estimator
// (Alg 3), and the integrated communication-avoiding, memory-constrained
// BATCHEDSUMMA3D (Alg 4) with a per-batch application hook.
//
// Every rank executes inside the simulated MPI runtime; the seven step
// categories the paper reports (Symbolic, A-Broadcast, B-Broadcast,
// Local-Multiply, Merge-Layer, AllToAll-Fiber, Merge-Fiber) are metered per
// rank: measured wall time for computation, α–β modeled time and exact byte
// counts for communication.
//
// # Execution structure
//
// A distributed multiply is launched from the host by Multiply (or
// MultiplyDiscard) with a RunConfig; each simulated rank builds its grid
// coordinates (grid.New), extracts its operand pieces (Setup), and calls
// BatchedSUMMA3D collectively. Inside, Symbolic3D picks the batch count b
// from the memory budget, and each batch runs the per-layer stage loop
// (forEachStage → summa2D), the fiber AllToAll, and the fiber merge
// (summa3DBatch).
//
// # Schedules
//
// The stage loop supports two schedules, selected by Options.Pipeline:
//
//   - Staged (default): stage s's A- and B-broadcasts complete before its
//     local multiply starts, and the fiber AllToAll runs fully exposed — the
//     paper's schedule, metered byte-identically to the published figures.
//   - Fully overlapped: stage s+1's broadcasts are posted (mpi.IbcastStart)
//     before stage s's multiply; the last stage of batch t posts batch t+1's
//     stage-0 broadcasts (the batch piece is extracted one batch ahead by
//     BatchedSUMMA3D) so the pipeline never drains at a batch boundary; and
//     Merge-Layer is partitioned by destination layer so the fiber exchange
//     (mpi.IalltoallvStart) completes while the own-layer share still runs.
//     An overlap ledger (pipeline.go) converts measured compute between a
//     collective's post and wait into hiding credit — each compute second
//     hides at most one collective — and the hidden share is charged to the
//     *-Hidden categories (StepABcastHidden, StepBBcastHidden,
//     StepSymbolicHidden, StepAllToAllHidden), the exposed remainder to the
//     paper's steps. Outputs are bit-identical in both schedules; only the
//     accounting differs.
//
// Options.Threads additionally parallelizes each rank's local multiply,
// merge, and symbolic kernels (localmm's two-phase plan) inside the rank's
// compute-measurement token, mirroring the paper's 16-threads-per-process
// configuration.
//
// # Sparse×dense: the 1.5D schedules
//
// MultiplyDense runs C = A·B for a dense panel B under Options.Algo:
// AlgoSUMMA densifies the panel's pattern and reuses the full sparse
// pipeline above, while AlgoColA and AlgoInnerABC execute the 1.5D
// schedules of Koanantakool et al. (IPDPS 2016) — the ranks form a ring of
// s = p/c positions × c = Options.Replication layers (grid.Grid15), the
// stationary operand is replicated across layers once, the moving operand
// shifts R = s/c rounds, and dense partials reduce over the fiber in layer
// order (deterministic, so outputs are bit-identical to localmm.SpMMSerial
// on integer-valued operands). The schedules reuse the mpi collectives,
// the paper's meter categories, and — pipelined — the same overlap ledger,
// posting the next ring shift behind the current round's multiply.
// AutoTuneDenseOnMachine spans the algorithm axis analytically through
// planner.NewDense.
package core
