package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/localmm"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// randomDense builds a dense panel of small positive integers, so every
// product in the differential tests is exact in float64 and bit-identity is a
// meaningful assertion (same discipline as the sparse differential suite).
func randomDense(t testing.TB, rows, cols int32, seed int64) *spmat.DenseMat {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := spmat.NewDense(rows, cols)
	for i := range d.Val {
		d.Val[i] = float64(rng.Intn(9) + 1)
	}
	return d
}

func runDense(t testing.TB, a *spmat.CSC, b *spmat.DenseMat, rc RunConfig) (*spmat.DenseMat, []*DenseResult) {
	t.Helper()
	got, results, _, err := MultiplyDense(a, b, rc)
	if err != nil {
		t.Fatal(err)
	}
	return got, results
}

// TestDenseAlgosBitIdentical is the 1.5D differential suite, the dense
// mirror of TestSparseCommModesBitIdentical: ColA and InnerABC must produce
// results bit-identical to the naive serial dense reference across grids,
// replication factors, batch counts, schedules, thread counts, and storage
// formats — and the fiber replicas of every panel must agree byte for byte.
func TestDenseAlgosBitIdentical(t *testing.T) {
	type workload struct {
		name string
		a    *spmat.CSC
		b    *spmat.DenseMat
	}
	workloads := []workload{
		{"square", randomMat(t, 60, 48, 500, 71), randomDense(t, 48, 10, 72)},
		{"hypersparse", randomMat(t, 40, 300, 150, 73), randomDense(t, 300, 7, 74)},
		{"tallskinny", randomMat(t, 120, 120, 700, 75), randomDense(t, 120, 4, 76)},
	}
	type cfg struct {
		p, c, b  int
		pipeline bool
		threads  int
		format   spmat.Format
	}
	cfgs := []cfg{
		{p: 1, c: 1, b: 1, threads: 1, format: spmat.FormatAuto},
		{p: 4, c: 1, b: 1, threads: 1, format: spmat.FormatAuto},
		{p: 4, c: 2, b: 1, threads: 1, format: spmat.FormatAuto},
		{p: 4, c: 2, b: 2, threads: 1, format: spmat.FormatCSC},
		{p: 8, c: 2, b: 1, threads: 4, format: spmat.FormatAuto},
		{p: 8, c: 2, b: 3, pipeline: true, threads: 1, format: spmat.FormatDCSC},
		{p: 9, c: 3, b: 2, threads: 1, format: spmat.FormatAuto},
		{p: 16, c: 2, b: 2, pipeline: true, threads: 2, format: spmat.FormatAuto},
		{p: 16, c: 4, b: 1, threads: 1, format: spmat.FormatAuto},
		{p: 16, c: 4, b: 2, pipeline: true, threads: 4, format: spmat.FormatDCSC},
		{p: 16, c: 1, b: 2, pipeline: true, threads: 1, format: spmat.FormatAuto},
	}
	for _, w := range workloads {
		want := localmm.SpMMSerial(w.a, w.b)
		for _, algo := range []Algo{AlgoColA, AlgoInnerABC} {
			for _, c := range cfgs {
				rc := RunConfig{P: c.p, Cost: testCM, Opts: Options{
					Algo: algo, Replication: c.c, ForceBatches: c.b,
					Pipeline: c.pipeline, Threads: c.threads, Format: c.format,
				}}
				got, results := runDense(t, w.a, w.b, rc)
				if !spmat.DenseEqual(got, want) {
					t.Errorf("%s %v p=%d c=%d b=%d pipe=%v threads=%d fmt=%v: result differs from serial reference",
						w.name, algo, c.p, c.c, c.b, c.pipeline, c.threads, c.format)
					continue
				}
				// Fiber replicas must agree bit for bit with layer 0.
				s := c.p / c.c
				for k := 1; k < c.c; k++ {
					for j := 0; j < s; j++ {
						if !spmat.DenseEqual(results[k*s+j].C, results[j].C) {
							t.Errorf("%s %v p=%d c=%d: layer-%d panel %d differs from layer 0",
								w.name, algo, c.p, c.c, k, j)
						}
					}
				}
			}
		}
	}
}

// TestMultiplyDenseSUMMA: the densified SUMMA arm must agree with the serial
// dense reference exactly (integer-valued inputs make the sparse pipeline's
// different merge order immaterial).
func TestMultiplyDenseSUMMA(t *testing.T) {
	a := randomMat(t, 40, 32, 300, 81)
	b := randomDense(t, 32, 6, 82)
	want := localmm.SpMMSerial(a, b)
	got, results, sum, err := MultiplyDense(a, b, RunConfig{P: 4, L: 1, Cost: testCM})
	if err != nil {
		t.Fatal(err)
	}
	if results != nil {
		t.Error("SUMMA arm must return nil per-rank dense panels")
	}
	if sum == nil {
		t.Error("SUMMA arm must return a metering summary")
	}
	if !spmat.DenseEqual(got, want) {
		t.Error("SUMMA arm differs from serial reference")
	}
}

// TestMultiplyDenseBatchInvariance: with everything else fixed, the batch
// count and the pipeline knob must never change a single output bit.
func TestMultiplyDenseBatchInvariance(t *testing.T) {
	a := randomMat(t, 50, 64, 400, 91)
	b := randomDense(t, 64, 12, 92)
	for _, algo := range []Algo{AlgoColA, AlgoInnerABC} {
		var ref *spmat.DenseMat
		for _, nb := range []int{1, 2, 3, 5} {
			for _, pipe := range []bool{false, true} {
				rc := RunConfig{P: 8, Cost: testCM, Opts: Options{
					Algo: algo, Replication: 2, ForceBatches: nb, Pipeline: pipe,
				}}
				got, _ := runDense(t, a, b, rc)
				if ref == nil {
					ref = got
					continue
				}
				if !spmat.DenseEqual(got, ref) {
					t.Errorf("%v b=%d pipe=%v: output changed", algo, nb, pipe)
				}
			}
		}
	}
}

// TestMultiplyDenseFlopsAndPeak: the per-rank LocalFlops must sum to exactly
// nnz(A)·d for either schedule (every nonzero meets every dense column once),
// and every rank must report a positive modeled peak.
func TestMultiplyDenseFlopsAndPeak(t *testing.T) {
	a := randomMat(t, 60, 48, 500, 71)
	b := randomDense(t, 48, 10, 72)
	want := a.NNZ() * int64(b.Cols)
	for _, algo := range []Algo{AlgoColA, AlgoInnerABC} {
		_, results := runDense(t, a, b, RunConfig{P: 8, Cost: testCM, Opts: Options{
			Algo: algo, Replication: 2, ForceBatches: 2,
		}})
		var flops int64
		for r, res := range results {
			flops += res.LocalFlops
			if res.PeakMemBytes <= 0 {
				t.Errorf("%v rank %d: peak %d", algo, r, res.PeakMemBytes)
			}
			if res.Batches != 2 {
				t.Errorf("%v rank %d: batches %d, want 2", algo, r, res.Batches)
			}
		}
		if flops != want {
			t.Errorf("%v: total flops %d, want %d", algo, flops, want)
		}
	}
}

// TestMultiplyDenseValidation: shape mismatches, non-plus-times semirings,
// and invalid replication factors must be rejected before any rank runs.
func TestMultiplyDenseValidation(t *testing.T) {
	a := randomMat(t, 10, 8, 20, 5)
	good := randomDense(t, 8, 3, 6)
	base := RunConfig{P: 4, Cost: testCM, Opts: Options{Algo: AlgoColA, Replication: 2}}

	if _, _, _, err := MultiplyDense(a, randomDense(t, 9, 3, 7), base); err == nil {
		t.Error("dimension mismatch accepted")
	}

	rc := base
	rc.Opts.Semiring = semiring.MinPlus()
	if _, _, _, err := MultiplyDense(a, good, rc); err == nil || !strings.Contains(err.Error(), "plus-times") {
		t.Errorf("min-plus semiring accepted: %v", err)
	}

	rc = base
	rc.Opts.Replication = 3 // 3² ∤ 4
	if _, _, _, err := MultiplyDense(a, good, rc); err == nil {
		t.Error("invalid replication accepted")
	}
}
