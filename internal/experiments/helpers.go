package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// coresPerProc mirrors the paper's configuration: 16 threads per MPI process
// on Cori-KNL, so "cores" on figure axes equal 16·p.
const coresPerProc = 16

// coresLabel formats a process count as the paper's core-count axis label.
func coresLabel(p int) string { return fmt.Sprintf("%d", p*coresPerProc) }

// coreOpts applies the run-wide knobs of RunOpts (the intra-rank thread
// count and the broadcast/compute pipeline) to a per-experiment core.Options
// literal; explicit settings in the literal win.
func (o RunOpts) coreOpts(c core.Options) core.Options {
	if c.Threads == 0 {
		c.Threads = o.Threads
	}
	if o.Pipeline {
		c.Pipeline = true
	}
	if c.Format == spmat.FormatAuto {
		c.Format = o.Format
	}
	if c.SparseComm == mpi.SparseOff {
		c.SparseComm = o.SparseComm
	}
	if c.Kernel == localmm.KernelHashUnsorted {
		c.Kernel = o.Kernel
	}
	if c.Merger == localmm.MergerHash {
		c.Merger = o.Merger
	}
	if o.AutoKernel {
		c.AutoKernel = true
	}
	if o.AutoMerger {
		c.AutoMerger = true
	}
	if c.Channels == 0 {
		c.Channels = o.Channels
	}
	return c
}

// runResult bundles what one distributed multiplication yields for plotting.
type runResult struct {
	P, L, B int
	Summary *mpi.Summary
	Results []*core.Result
	Err     error
}

// runMul executes C = A·B on p ranks with l layers under the machine model,
// applying the machine's compute/comm scaling to the metered times. When
// memBytes > 0 the symbolic step chooses b; otherwise forceB is used.
func runMul(a, b *spmat.CSC, p, l int, machine costmodel.Machine, memBytes int64, forceB int, opts core.Options) runResult {
	opts.MemBytes = memBytes
	opts.ForceBatches = forceB
	if memBytes > 0 {
		opts.RunSymbolic = true
		opts.ForceBatches = 0
	}
	rc := core.RunConfig{P: p, L: l, Cost: machine.Cost(), Opts: opts}
	_, results, summary, err := core.Multiply(a, b, rc, nil)
	if err != nil {
		return runResult{P: p, L: l, Err: err}
	}
	applyMachine(summary, machine)
	return runResult{P: p, L: l, B: results[0].Batches, Summary: summary, Results: results}
}

// runMulDiscard is runMul for AAᵀ-style workloads whose output is consumed
// batch-wise and discarded (Figs 10–11).
func runMulDiscard(a, b *spmat.CSC, p, l int, machine costmodel.Machine, memBytes int64, forceB int, opts core.Options) runResult {
	opts.MemBytes = memBytes
	opts.ForceBatches = forceB
	if memBytes > 0 {
		opts.RunSymbolic = true
		opts.ForceBatches = 0
	}
	rc := core.RunConfig{P: p, L: l, Cost: machine.Cost(), Opts: opts}
	results, summary, err := core.MultiplyDiscard(a, b, rc, nil)
	if err != nil {
		return runResult{P: p, L: l, Err: err}
	}
	applyMachine(summary, machine)
	return runResult{P: p, L: l, B: results[0].Batches, Summary: summary, Results: results}
}

// spmmResult bundles what one distributed sparse×dense multiplication yields.
type spmmResult struct {
	Out     *spmat.DenseMat
	Results []*core.DenseResult
	Summary *mpi.Summary
	Err     error
}

// runSpMM executes C = A·B for a dense panel B on p ranks under the machine
// model: the 1.5D schedules with replication c, or SUMMA with l layers when
// algo is core.AlgoSUMMA. Machine scaling is applied to the metered times as
// in runMul.
func runSpMM(a *spmat.CSC, b *spmat.DenseMat, p, l int, machine costmodel.Machine, algo core.Algo, c, forceB int, opts core.Options) spmmResult {
	opts.Algo = algo
	opts.Replication = c
	opts.ForceBatches = forceB
	rc := core.RunConfig{P: p, L: l, Cost: machine.Cost(), Opts: opts}
	out, results, summary, err := core.MultiplyDense(a, b, rc)
	if err != nil {
		return spmmResult{Err: err}
	}
	applyMachine(summary, machine)
	return spmmResult{Out: out, Results: results, Summary: summary}
}

// applyMachine scales a summary's times by the machine's compute and comm
// factors (the per-rank meters were already consumed, so scale the summary).
func applyMachine(s *mpi.Summary, m costmodel.Machine) {
	for _, st := range s.Steps {
		st.ComputeSeconds *= m.ComputeScale
		st.CommSeconds *= m.CommScale
		st.HiddenSeconds *= m.CommScale
	}
}

// stepSeconds returns the stacked-bar heights for the seven steps: total
// (comm+compute) seconds per step.
func stepSeconds(s *mpi.Summary) map[string]float64 {
	out := make(map[string]float64, len(core.Steps))
	for _, step := range core.Steps {
		st := s.Step(step)
		out[step] = st.CommSeconds + st.ComputeSeconds
	}
	return out
}

// totalSeconds sums the per-step heights (the figure bar total).
func totalSeconds(s *mpi.Summary) float64 {
	var t float64
	for _, step := range core.Steps {
		st := s.Step(step)
		t += st.CommSeconds + st.ComputeSeconds
	}
	return t
}

// commSeconds sums modeled communication across steps.
func commSeconds(s *mpi.Summary) float64 {
	var t float64
	for _, step := range core.Steps {
		t += s.Step(step).CommSeconds
	}
	return t
}

// computeSeconds sums measured computation across steps.
func computeSeconds(s *mpi.Summary) float64 {
	var t float64
	for _, step := range core.Steps {
		t += s.Step(step).ComputeSeconds
	}
	return t
}

// fmtS formats seconds with adaptive precision.
func fmtS(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.4f", s)
	default:
		return fmt.Sprintf("%.2e", s)
	}
}

// fmtX formats a speedup ratio.
func fmtX(r float64) string { return fmt.Sprintf("%.1fx", r) }

// memoryForBatches returns an aggregate memory budget that makes the
// symbolic step pick roughly the requested number of batches for the given
// operands on p ranks: it estimates the per-rank maxima (inputs with an
// imbalance margin, intermediates from the exact flop count) and inverts
// Alg 3 line 12.
func memoryForBatches(a, b *spmat.CSC, p, l, wantB int, r int64) int64 {
	maxA := 4 * a.NNZ() / int64(p)
	maxB := 4 * b.NNZ() / int64(p)
	// Unmerged intermediate size is bounded by flops (Eq 1); per-rank share
	// with an imbalance margin.
	estC := 2 * localmm.Flops(a, b) / int64(p)
	perProc := float64(r*estC)/float64(wantB) + float64(r*(maxA+maxB))
	return int64(perProc * float64(p))
}

// mclMemoryBudget is memoryForBatches specialized for Markov clustering: the
// stochastic matrix grows across the first expansions before pruning shrinks
// it, so the input term carries extra headroom while the intermediate term
// stays tight enough to force wantB-ish batches in iteration one.
func mclMemoryBudget(m1 *spmat.CSC, p, wantB int) int64 {
	const r = 24
	inputs := 24 * m1.NNZ() / int64(p) // ~12x headroom over the mean 2·nnz/p
	estC := 2 * localmm.Flops(m1, m1) / int64(p)
	perProc := float64(r)*float64(estC)/float64(wantB) + float64(r*inputs)
	return int64(perProc * float64(p))
}
