package experiments

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/genmat"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// Scale selects the workload size. The paper's matrices are billions of
// nonzeros; these analogues keep the distinguishing ratios (nnz(C)≫nnz(A),
// compression factor, aspect ratio) at laptop scale.
type Scale int

// Workload scales.
const (
	// ScaleTiny is for unit tests and testing.B benchmarks.
	ScaleTiny Scale = iota
	// ScaleSmall is the default for interactive runs (seconds per experiment).
	ScaleSmall
	// ScaleLarge is for the full regeneration pass (minutes).
	ScaleLarge
)

// ParseScale maps a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return ScaleTiny, nil
	case "small", "":
		return ScaleSmall, nil
	case "large":
		return ScaleLarge, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q (tiny|small|large)", s)
}

// RunOpts configures an experiment run.
type RunOpts struct {
	// Scale selects workload sizes.
	Scale Scale
	// Machine supplies the α–β constants and compute scaling; zero value
	// defaults to Cori-KNL.
	Machine costmodel.Machine
	// Threads is the intra-rank worker count for the local multiply and merge
	// kernels (core.Options.Threads). 0 or 1 keeps the kernels serial, the
	// configuration all published figure shapes use.
	Threads int
	// Pipeline overlaps stage broadcasts with local compute
	// (core.Options.Pipeline). Off keeps the published figure shapes — the
	// strictly staged schedule — byte-identical.
	Pipeline bool
	// Format selects the in-memory block storage (core.Options.Format):
	// csc, dcsc, or the per-block auto heuristic. The zero value is auto,
	// the default; output values and communication volume are identical
	// for all three.
	Format spmat.Format
	// SparseComm selects the column-subset A-broadcast path
	// (core.Options.SparseComm): off, auto, or on. Off — the zero value —
	// keeps the published figure shapes byte-identical.
	SparseComm mpi.SparseMode
	// Kernel pins the local-multiply kernel (core.Options.Kernel). The zero
	// value is the unsorted-hash default; AutoKernel overrides it with the
	// plan-time table pick. Output values are identical for every kernel.
	Kernel localmm.Kernel
	// Merger pins the layer/fiber merge strategy (core.Options.Merger).
	Merger localmm.Merger
	// AutoKernel / AutoMerger let each rank consult the kernel cost table
	// per block instead of a fixed kernel (core.Options.AutoKernel /
	// AutoMerger); measured times feed back into the table.
	AutoKernel bool
	AutoMerger bool
	// Channels is the number of outstanding overlap channels the pipelined
	// schedule may hide behind (core.Options.Channels); 0 means 1.
	Channels int
	// Algo restricts the spmm experiment's algorithm sweep to one family
	// ("summa" | "cola" | "innerabc"; empty sweeps all three).
	Algo string
	// Replication restricts the spmm experiment's 1.5D replication sweep to
	// one factor (0 sweeps every c with c² | p).
	Replication int
	// Verbose experiments may add extra tables.
	Verbose bool
}

// commAmplification restores the paper's communication-to-computation
// balance on the scaled-down simulation: Cori-KNL processes compute SpGEMM
// an order of magnitude faster relative to their network than the Go
// kernels on this host do relative to the unmodified α–β constants.
// Multiplying β by this factor puts the bandwidth share of the total back
// into the paper's regime so the layer/batch tradeoffs the figures study
// are visible. Latency (α) stays physical. See EXPERIMENTS.md,
// "Calibration".
func commAmplification(sc Scale) float64 {
	switch sc {
	case ScaleTiny:
		return 32
	case ScaleLarge:
		return 8
	default:
		return 16
	}
}

func (o RunOpts) withDefaults() RunOpts {
	if o.Machine.Name == "" {
		o.Machine = costmodel.CoriKNL()
	}
	o.Machine = o.Machine.ScaledBeta(commAmplification(o.Scale))
	return o
}

// scaleUp returns the next larger workload scale; the strong-scaling
// experiments use it so per-rank kernels at the biggest process counts are
// still microseconds-to-milliseconds and timing noise (goroutine
// preemption, GC) stays small relative to the signal.
func scaleUp(sc Scale) Scale {
	switch sc {
	case ScaleTiny:
		return ScaleSmall
	default:
		return ScaleLarge
	}
}

// Workload names match Table V; each is a deterministic scaled analogue.
const (
	WLEukarya       = "Eukarya"
	WLFriendster    = "Friendster"
	WLIsolatesSmall = "Isolates-small"
	WLIsolates      = "Isolates"
	WLMetaclust50   = "Metaclust50"
	WLRiceKmers     = "Rice-kmers"
	WLMetaclust20m  = "Metaclust20m"
)

// WorkloadNames lists the Table V analogues in the paper's order.
var WorkloadNames = []string{
	WLEukarya, WLRiceKmers, WLMetaclust20m, WLIsolatesSmall,
	WLFriendster, WLIsolates, WLMetaclust50,
}

// Workload builds the named matrix at the given scale. Square matrices are
// studied as A·A, rectangular ones as A·Aᵀ, exactly as in Table V. Square
// workloads are randomly symmetrically permuted so that R-MAT hub vertices
// spread across process blocks, matching the random-permutation load
// balancing CombBLAS and HipMCL apply to their inputs.
func Workload(name string, sc Scale) (*spmat.CSC, error) {
	// bump raises the R-MAT scale (matrix side) per workload scale.
	bump := map[Scale]int{ScaleTiny: 0, ScaleSmall: 2, ScaleLarge: 4}[sc]
	switch name {
	case WLEukarya:
		// Smallest protein network: dense-ish square with strong expansion.
		return genmat.SymmetricPermute(genmat.ProteinSimilarity(7+bump, 8, 101), 201), nil
	case WLFriendster:
		// Social network: unweighted, symmetric, heavy-tailed.
		return genmat.SymmetricPermute(genmat.RMAT(genmat.RMATConfig{
			Scale: 8 + bump, EdgeFactor: 10, Symmetrize: true, Seed: 102,
		}), 202), nil
	case WLIsolatesSmall:
		return genmat.SymmetricPermute(genmat.ProteinSimilarity(8+bump, 12, 103), 203), nil
	case WLIsolates:
		// The densest big protein network (cf highest in Table V).
		return genmat.SymmetricPermute(genmat.ProteinSimilarity(9+bump, 14, 104), 204), nil
	case WLMetaclust50:
		// Bigger but sparser than Isolates → communication-bound sooner
		// (the paper's efficiency discussion, Fig 9).
		return genmat.SymmetricPermute(genmat.ProteinSimilarity(9+bump, 5, 105), 205), nil
	case WLRiceKmers:
		// Hypersparse reads×k-mers with ≈2 nnz per k-mer column and
		// nnz(AAᵀ) ≈ nnz(A) → b=1, communication dominated (Fig 11).
		reads := int32(1) << (7 + bump)
		return genmat.Kmer(genmat.KmerConfig{
			Reads: reads, Kmers: reads * 64, KmersPerRead: 24, Overlap: 0.08, Seed: 106,
		}), nil
	case WLMetaclust20m:
		// Denser overlap structure: AAᵀ expands strongly (Fig 10 needs
		// batching at low concurrency).
		reads := int32(1) << (8 + bump)
		return genmat.Kmer(genmat.KmerConfig{
			Reads: reads, Kmers: reads * 8, KmersPerRead: 28, Overlap: 0.45, Seed: 107,
		}), nil
	}
	return nil, fmt.Errorf("experiments: unknown workload %q", name)
}

// PairFor returns the (A, B) operands studied for a workload: (A, A) for
// square matrices and (A, Aᵀ) for rectangular ones.
func PairFor(a *spmat.CSC) (*spmat.CSC, *spmat.CSC) {
	if a.Rows == a.Cols {
		return a, a
	}
	return a, spmat.Transpose(a)
}
