// Package experiments regenerates every table and figure of the paper's
// evaluation section on the simulated cluster, and hosts the deterministic
// gates CI enforces on top of them.
//
// Each experiment is registered under the paper's identifier (fig3 … fig15,
// table2 … table7) or an ablation name (pipeline, hypersparse, sparsecomm,
// spmm, planner, service) and produces a textual Report with the same
// rows/series the paper plots, plus an expected qualitative shape so
// EXPERIMENTS.md can record paper-vs-measured. Workloads are deterministic
// scaled-down analogues of Table V's matrices (see genmat); communication
// is charged by the α–β machine models (see costmodel), so every number an
// experiment prints is identical on every host.
//
// Three gates live here because they share the experiments' workloads and
// metering:
//
//   - RunGate/CompareGate (make perfgate): replays pinned fig-6/8,
//     hypersparse, and sparse×dense shapes and fails on modeled
//     critical-path regressions vs the checked-in baseline.
//   - PlanGate (make plan): scores the analytical planner's pick against
//     an exhaustive oracle sweep on every gate shape, and routes each pick
//     through the service plan cache — the replan must hit with the
//     identical decision.
//   - the service experiment / DriveService (make soak): duty-cycles a
//     spgemmd server with concurrent clients over mixed resident matrices,
//     failing on non-bit-identical outputs, probe work after warmup, or
//     admission deadlock. DriveService is shared with `spgemm-bench
//     -server URL`, which runs the same cycle against a remote daemon.
package experiments
