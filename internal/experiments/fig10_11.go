package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

func init() {
	register(&Experiment{
		ID:          "fig10",
		Title:       "AAᵀ with Metaclust20m-like (overlap candidates, batching needed)",
		Description: "Layer/batch combinations across three process counts for the denser k-mer matrix.",
		Run:         runFig10,
	})
	register(&Experiment{
		ID:          "fig11",
		Title:       "AAᵀ with Rice-kmers-like (hypersparse, b=1)",
		Description: "Communication-dominated AAᵀ where layers help even without batching.",
		Run:         runFig11,
	})
}

// aatPs returns the process counts used by the AAᵀ scalability figures.
func aatPs(sc Scale) []int {
	switch sc {
	case ScaleTiny:
		return []int{16}
	case ScaleLarge:
		return []int{16, 64, 256}
	default:
		return []int{16, 64}
	}
}

func runFig10(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "fig10",
		Title: "AAᵀ on the Metaclust20m analogue",
		PaperClaim: "At low concurrency more layers need more batches, so communication " +
			"avoidance is partly offset; at high concurrency 16 layers is ~2x faster " +
			"than 1 layer even though the 1-layer case needs no batching.",
	}
	a, err := Workload(WLMetaclust20m, opts.Scale)
	if err != nil {
		return nil, err
	}
	aT := spmat.Transpose(a)
	mem := memoryForBatches(a, aT, aatPs(opts.Scale)[0], 1, 4, 24)
	for _, p := range aatPs(opts.Scale) {
		tb := r.NewTable(fmt.Sprintf("p=%d (modeled %s cores)", p, coresLabel(p)),
			"l", "b", "Symbolic", "A-Bcast", "B-Bcast", "LocalMult", "MergeLayer",
			"AllToAll", "MergeFiber", "total")
		var t1, t16 float64
		for _, l := range []int{1, 4, 16} {
			rr := runMulDiscard(a, aT, p, l, opts.Machine, mem, 0,
				opts.coreOpts(core.Options{Semiring: semiring.PlusPairs(), RunSymbolic: true}))
			if rr.Err != nil {
				return nil, rr.Err
			}
			ss := stepSeconds(rr.Summary)
			total := totalSeconds(rr.Summary)
			tb.AddRow(fmt.Sprint(l), fmt.Sprint(rr.B),
				fmtS(ss[core.StepSymbolic]), fmtS(ss[core.StepABcast]), fmtS(ss[core.StepBBcast]),
				fmtS(ss[core.StepLocalMult]), fmtS(ss[core.StepMergeLayer]),
				fmtS(ss[core.StepAllToAll]), fmtS(ss[core.StepMergeFiber]), fmtS(total))
			switch l {
			case 1:
				t1 = total
			case 16:
				t16 = total
			}
		}
		if t16 > 0 {
			r.Finding("p=%d: l=16 vs l=1 total ratio %.2f (paper: layers win as concurrency grows)", p, t1/t16)
		}
	}
	return r, nil
}

func runFig11(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "fig11",
		Title: "AAᵀ on the Rice-kmers analogue",
		PaperClaim: "nnz(AAᵀ) ≈ nnz(A), so b=1 everywhere; the run is dominated by " +
			"communication (~2 nnz per k-mer column) and 16 layers give up to 6x.",
	}
	a, err := Workload(WLRiceKmers, opts.Scale)
	if err != nil {
		return nil, err
	}
	aT := spmat.Transpose(a)
	for _, p := range aatPs(opts.Scale) {
		tb := r.NewTable(fmt.Sprintf("p=%d (modeled %s cores)", p, coresLabel(p)),
			"l", "b", "comm s", "comp s", "total", "comm share")
		var t1, t16 float64
		for _, l := range []int{1, 4, 16} {
			rr := runMulDiscard(a, aT, p, l, opts.Machine, 0, 1,
				opts.coreOpts(core.Options{Semiring: semiring.PlusPairs(), RunSymbolic: true}))
			if rr.Err != nil {
				return nil, rr.Err
			}
			comm := commSeconds(rr.Summary)
			comp := computeSeconds(rr.Summary)
			total := comm + comp
			share := 0.0
			if total > 0 {
				share = comm / total
			}
			tb.AddRow(fmt.Sprint(l), fmt.Sprint(rr.B), fmtS(comm), fmtS(comp),
				fmtS(total), fmt.Sprintf("%.0f%%", share*100))
			switch l {
			case 1:
				t1 = total
			case 16:
				t16 = total
			}
		}
		if t16 > 0 {
			r.Finding("p=%d: 16 layers improved the b=1 AAᵀ by %.1fx (paper: up to 6x at 65K cores)", p, t1/t16)
		}
	}
	r.Finding("batching was never triggered (b=1 in every cell), matching nnz(AAT) ≈ nnz(A)")
	return r, nil
}
