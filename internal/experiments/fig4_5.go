package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
)

func init() {
	register(&Experiment{
		ID:          "fig4",
		Title:       "Impact of layers (l) and batches (b) on each step",
		Description: "Step-time breakdown sweeping l and b for Friendster-like and Isolates-small-like squaring.",
		Run:         runFig4,
	})
	register(&Experiment{
		ID:          "fig5",
		Title:       "A-Broadcast time vs number of layers (observed vs ideal √l)",
		Description: "With fixed b, A-Broadcast should shrink ∝ √l as layers grow.",
		Run:         runFig5,
	})
}

// fig4Layers and fig4Batches are the sweep axes (scaled down from the
// paper's l ∈ {1,4,16,64}, b ∈ {2..64} to keep the run short).
func fig4Axes(sc Scale) (layers, batches []int, p int) {
	switch sc {
	case ScaleTiny:
		return []int{1, 4}, []int{2, 4}, 16
	case ScaleLarge:
		return []int{1, 4, 16}, []int{2, 8, 16, 32}, 1024
	default:
		return []int{1, 4, 16}, []int{2, 4, 8}, 256
	}
}

func runFig4(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "fig4",
		Title: "Step breakdown across l × b",
		PaperClaim: "A-Bcast grows ~linearly with b and shrinks ~√l with layers; B-Bcast is " +
			"b-independent; Local-Multiply shrinks with l; AllToAll-Fiber and Merge-Fiber " +
			"grow with l; the best total sits at intermediate l (16 in the paper).",
	}
	layers, batches, p := fig4Axes(opts.Scale)
	for _, wl := range []string{WLFriendster, WLIsolatesSmall} {
		a, err := Workload(wl, opts.Scale)
		if err != nil {
			return nil, err
		}
		tb := r.NewTable(fmt.Sprintf("%s (A², p=%d, modeled %s cores)", wl, p, coresLabel(p)),
			"l", "b", "A-Bcast", "B-Bcast", "LocalMult", "MergeLayer", "AllToAll", "MergeFiber", "total")
		best := math.Inf(1)
		bestL := 0
		for _, l := range layers {
			for _, b := range batches {
				rr := runMul(a, a, p, l, opts.Machine, 0, b, opts.coreOpts(core.Options{}))
				if rr.Err != nil {
					return nil, rr.Err
				}
				ss := stepSeconds(rr.Summary)
				total := totalSeconds(rr.Summary) - ss[core.StepSymbolic]
				tb.AddRow(fmt.Sprint(l), fmt.Sprint(rr.B),
					fmtS(ss[core.StepABcast]), fmtS(ss[core.StepBBcast]),
					fmtS(ss[core.StepLocalMult]), fmtS(ss[core.StepMergeLayer]),
					fmtS(ss[core.StepAllToAll]), fmtS(ss[core.StepMergeFiber]), fmtS(total))
				if total < best {
					best, bestL = total, l
				}
			}
		}
		r.Finding("%s: best total at l=%d for p=%d (paper: intermediate layer counts win once communication matters)", wl, bestL, p)
	}
	return r, nil
}

func runFig5(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "fig5",
		Title: "A-Broadcast time vs l at fixed b",
		PaperClaim: "Observed A-Broadcast time closely follows the ideal √l decrease " +
			"(factor 2 per 4x layers).",
	}
	a, err := Workload(WLFriendster, opts.Scale)
	if err != nil {
		return nil, err
	}
	p := 64
	if opts.Scale == ScaleLarge {
		p = 256
	}
	layers := []int{1, 4, 16}
	for _, b := range []int{2, 8} {
		tb := r.NewTable(fmt.Sprintf("b=%d (p=%d)", b, p),
			"l", "A-Bcast modeled s", "ideal (t1/√l)", "observed/ideal")
		var t1 float64
		worst := 0.0
		for _, l := range layers {
			rr := runMul(a, a, p, l, opts.Machine, 0, b, opts.coreOpts(core.Options{}))
			if rr.Err != nil {
				return nil, rr.Err
			}
			obs := rr.Summary.Step(core.StepABcast).CommSeconds
			if l == 1 {
				t1 = obs
			}
			ideal := t1 / math.Sqrt(float64(l))
			ratio := 0.0
			if ideal > 0 {
				ratio = obs / ideal
			}
			if d := math.Abs(ratio - 1); d > worst {
				worst = d
			}
			tb.AddRow(fmt.Sprint(l), fmtS(obs), fmtS(ideal), fmt.Sprintf("%.2f", ratio))
		}
		r.Finding("b=%d: observed A-Bcast stays within %.0f%% of the ideal √l curve", b, worst*100)
	}
	return r, nil
}
