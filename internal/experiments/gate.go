package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/planner"
	"repro/internal/spmat"
)

// This file implements the CI performance-regression gate: a set of pinned
// fig-6/fig-8 shapes whose *modeled* critical-path seconds are fully
// deterministic — modeled α–β communication from seeded workloads plus
// work units converted at a pinned rate — so a >tolerance change between two
// runs is a real regression (more bytes moved, more work performed, worse
// attribution), never machine noise. Measured wall times are deliberately
// excluded: the gate must produce the same numbers on a laptop and a CI
// runner. Overlapped (Pipeline=true) shapes depend on measured compute for
// their hidden share, so they are reported for visibility but never gated.

// GateSecPerWorkUnit is the pinned conversion from abstract work units
// (flops, merged nonzeros) to modeled seconds. It is stored in the report so
// baselines self-describe; comparing reports with different rates is
// refused. Defined as the planner's default rate so the autotuner's ranking
// objective and the gate's regression metric can never drift apart.
const GateSecPerWorkUnit = planner.DefaultSecPerWork

// GateTolerance is the default relative regression threshold.
const GateTolerance = 0.05

// gateShape pins one benchmark point.
type gateShape struct {
	name     string
	wl       string
	p, l, b  int
	symbolic bool
	pipeline bool
	format   spmat.Format
	sparse   mpi.SparseMode
	// algo, c, d select the sparse×dense path: a non-empty algo runs
	// MultiplyDense on the SpMMGraph workload with a d-wide feature panel
	// and replication factor c instead of the sparse pipeline (wl ignored).
	algo string
	c, d int
	// machine overrides the gate's default comm-amplified Cori-KNL model:
	// "local" pins costmodel.LocalHost(), the work-dominated regime where
	// compute savings (not wire bytes) decide the modeled critical path.
	machine string
}

// gateShapes are the pinned fig-6/fig-8 shapes the nightly gate runs, plus
// the hypersparse (Rice-kmers AAᵀ) shape in both storage formats so the
// doubly-compressed path is guarded: neither shape may regress against its
// baseline, and CompareGate additionally enforces the cross-shape invariant
// that the DCSC shape's modeled work units stay at or below the CSC
// shape's (the O(cols) column-scan savings must never silently invert).
// The staged shapes are gated; the overlapped shape documents the
// hidden-seconds ablation and is informational. The legacy shapes pin
// FormatCSC — their baselines predate the format knob and must stay
// byte-identical to it.
var gateShapes = []gateShape{
	{name: "fig6-friendster-staged", wl: WLFriendster, p: 64, l: 16, b: 4, symbolic: true, format: spmat.FormatCSC},
	{name: "fig6-isolates-small-staged", wl: WLIsolatesSmall, p: 64, l: 16, b: 4, symbolic: true, format: spmat.FormatCSC},
	{name: "fig8-symbolic-staged", wl: WLIsolatesSmall, p: 64, l: 16, b: 1, symbolic: true, format: spmat.FormatCSC},
	{name: "fig6-friendster-overlapped", wl: WLFriendster, p: 64, l: 16, b: 4, symbolic: true, pipeline: true, format: spmat.FormatCSC},
	{name: "hyper-kmers-csc-staged", wl: WLRiceKmers, p: 64, l: 16, b: 2, symbolic: true, format: spmat.FormatCSC},
	{name: "hyper-kmers-dcsc-staged", wl: WLRiceKmers, p: 64, l: 16, b: 2, symbolic: true, format: spmat.FormatDCSC},
	{name: "hyper-kmers-sparse-staged", wl: WLRiceKmers, p: 64, l: 16, b: 2, symbolic: true, format: spmat.FormatDCSC, sparse: mpi.SparseAuto},
	// Fiber-merge twins: the hypersparse kmers workload on the unamplified
	// local-host machine, where modeled work — not wire bytes — dominates
	// the critical path. This is the regime the DCSC-preserving Merge-Fiber
	// targets: the CSC twin pays the dense q·cols column scan in the fiber
	// merge, the DCSC twin scans only occupied columns. CompareGate enforces
	// that the DCSC twin's modeled critical path undercuts the CSC twin's by
	// more than 5%, so the doubly-compressed merge's win is a gated number,
	// not a narrative.
	{name: "fibermerge-kmers-csc", wl: WLRiceKmers, p: 64, l: 16, b: 2, symbolic: true, format: spmat.FormatCSC, machine: "local"},
	{name: "fibermerge-kmers-dcsc", wl: WLRiceKmers, p: 64, l: 16, b: 2, symbolic: true, format: spmat.FormatDCSC, machine: "local"},
	// Sparse×dense shapes: the 1.5D schedules on the spmm workload (dense
	// unweighted R-MAT · tall-skinny feature panel). The staged shapes are
	// gated; the pipelined twin documents the dense overlap ablation.
	{name: "spmm-cola-staged", wl: "rmat-dense", p: 16, b: 2, algo: "cola", c: 2, d: 8},
	{name: "spmm-innerabc-staged", wl: "rmat-dense", p: 16, b: 2, algo: "innerabc", c: 2, d: 8},
	{name: "spmm-cola-overlapped", wl: "rmat-dense", p: 16, b: 2, pipeline: true, algo: "cola", c: 2, d: 8},
}

// GateResult is one shape's outcome.
type GateResult struct {
	Name     string `json:"name"`
	Workload string `json:"workload"`
	P        int    `json:"p"`
	L        int    `json:"l"`
	B        int    `json:"b"`
	Pipeline bool   `json:"pipeline"`
	Format   string `json:"format"`
	// SparseComm is the column-subset A-broadcast mode ("off" unless the
	// shape opts in).
	SparseComm string `json:"sparse_comm"`
	// Algo, C, and D describe the sparse×dense shapes: the algorithm family,
	// the 1.5D replication factor, and the panel width (empty/zero for the
	// sparse×sparse shapes).
	Algo string `json:"algo,omitempty"`
	C    int    `json:"c,omitempty"`
	D    int    `json:"d,omitempty"`
	// Gated marks shapes whose ModelSeconds are compared against the
	// baseline; overlapped shapes are informational (their exposed share
	// depends on measured compute).
	Gated bool `json:"gated"`
	// CommSeconds is the exposed modeled communication (sum over steps of the
	// max-over-ranks α–β time). Deterministic for staged shapes.
	CommSeconds float64 `json:"comm_seconds"`
	// WorkUnits is the total abstract local work across ranks and steps.
	WorkUnits int64 `json:"work_units"`
	// Bytes is the total payload volume across ranks and steps.
	Bytes int64 `json:"bytes"`
	// HiddenCommSeconds is the overlap ablation's hidden share
	// (informational; zero for staged shapes).
	HiddenCommSeconds float64 `json:"hidden_comm_seconds"`
	// ModelSeconds is the gate metric: CommSeconds + WorkUnits·SecPerWorkUnit.
	ModelSeconds float64 `json:"model_seconds"`
}

// GateReport is the JSON document `spgemm-bench -gate -json` emits and the
// checked-in baseline stores.
type GateReport struct {
	SecPerWorkUnit float64      `json:"sec_per_work_unit"`
	Shapes         []GateResult `json:"shapes"`
}

// Shape returns the named result, or nil.
func (g *GateReport) Shape(name string) *GateResult {
	for i := range g.Shapes {
		if g.Shapes[i].Name == name {
			return &g.Shapes[i]
		}
	}
	return nil
}

// RunGate executes the pinned shapes and assembles the report. Everything is
// pinned here — tiny workload scale, Cori-KNL α–β with the tiny-scale comm
// amplification, forced batch counts — so two runs of the same code produce
// identical gated numbers.
func RunGate() (*GateReport, error) {
	defaultMachine := costmodel.CoriKNL().ScaledBeta(commAmplification(ScaleTiny))
	rep := &GateReport{SecPerWorkUnit: GateSecPerWorkUnit}
	for _, sh := range gateShapes {
		machine := defaultMachine
		if sh.machine == "local" {
			machine = costmodel.LocalHost()
		}
		var summary *mpi.Summary
		if sh.algo != "" {
			algo, err := core.ParseAlgo(sh.algo)
			if err != nil {
				return nil, fmt.Errorf("gate shape %s: %w", sh.name, err)
			}
			a := SpMMGraph(ScaleTiny)
			panel := PanelFor(a, int32(sh.d))
			rr := runSpMM(a, panel, sh.p, 1, machine, algo, sh.c, sh.b, core.Options{Pipeline: sh.pipeline})
			if rr.Err != nil {
				return nil, fmt.Errorf("gate shape %s: %w", sh.name, rr.Err)
			}
			// The gate doubles as the bit-identity contract for the dense
			// schedules: the workload is integer-valued precisely so the
			// distributed output must equal the serial reference exactly.
			if !spmat.DenseEqual(rr.Out, localmm.SpMMSerial(a, panel)) {
				return nil, fmt.Errorf("gate shape %s: output differs from the serial SpMM reference", sh.name)
			}
			summary = rr.Summary
		} else {
			wl, err := Workload(sh.wl, ScaleTiny)
			if err != nil {
				return nil, err
			}
			a, b := PairFor(wl)
			opts := core.Options{RunSymbolic: sh.symbolic, Pipeline: sh.pipeline, Format: sh.format, SparseComm: sh.sparse}
			rr := runMul(a, b, sh.p, sh.l, machine, 0, sh.b, opts)
			if rr.Err != nil {
				return nil, fmt.Errorf("gate shape %s: %w", sh.name, rr.Err)
			}
			summary = rr.Summary
		}
		var work, bytes int64
		for _, step := range core.Steps {
			st := summary.Step(step)
			work += st.WorkUnits
			bytes += st.Bytes
		}
		comm := commSeconds(summary)
		rep.Shapes = append(rep.Shapes, GateResult{
			Name:              sh.name,
			Workload:          sh.wl,
			P:                 sh.p,
			L:                 sh.l,
			B:                 sh.b,
			Pipeline:          sh.pipeline,
			Format:            sh.format.String(),
			SparseComm:        sh.sparse.String(),
			Algo:              sh.algo,
			C:                 sh.c,
			D:                 sh.d,
			Gated:             !sh.pipeline,
			CommSeconds:       comm,
			WorkUnits:         work,
			Bytes:             bytes,
			HiddenCommSeconds: hiddenSeconds(summary),
			ModelSeconds:      comm + float64(work)*GateSecPerWorkUnit,
		})
	}
	return rep, nil
}

// CompareGate checks cur against base and returns one message per violation
// (empty slice = gate passes). A gated shape regresses when its ModelSeconds
// exceed the baseline's by more than tol (relative); disappeared shapes and
// mismatched work-unit rates are violations too, so the gate cannot pass
// vacuously.
func CompareGate(cur, base *GateReport, tol float64) []string {
	var bad []string
	if cur.SecPerWorkUnit != base.SecPerWorkUnit {
		return []string{fmt.Sprintf("sec_per_work_unit differs (current %g, baseline %g): regenerate the baseline",
			cur.SecPerWorkUnit, base.SecPerWorkUnit)}
	}
	for _, b := range base.Shapes {
		if !b.Gated {
			continue
		}
		c := cur.Shape(b.Name)
		if c == nil {
			bad = append(bad, fmt.Sprintf("%s: missing from current run", b.Name))
			continue
		}
		if limit := b.ModelSeconds * (1 + tol); c.ModelSeconds > limit {
			bad = append(bad, fmt.Sprintf("%s: modeled critical path %.6g s exceeds baseline %.6g s by more than %.0f%%",
				b.Name, c.ModelSeconds, b.ModelSeconds, tol*100))
		}
	}
	// Cross-shape invariant: doubly-compressed storage must never do more
	// modeled work than dense-pointer storage on the hypersparse shape —
	// the per-shape comparisons alone would let an inversion slip through a
	// baseline refresh.
	if csc, dcsc := cur.Shape("hyper-kmers-csc-staged"), cur.Shape("hyper-kmers-dcsc-staged"); csc != nil && dcsc != nil {
		if dcsc.WorkUnits > csc.WorkUnits {
			bad = append(bad, fmt.Sprintf("hyper-kmers: DCSC work units %d exceed CSC's %d — the O(cols) column-scan savings inverted",
				dcsc.WorkUnits, csc.WorkUnits))
		}
	}
	// Cross-shape invariant: the column-subset path must never move more
	// bytes than its full-broadcast twin on the hypersparse shape (it is
	// gated by the same α–β model that prices the volume).
	if full, sp := cur.Shape("hyper-kmers-dcsc-staged"), cur.Shape("hyper-kmers-sparse-staged"); full != nil && sp != nil {
		if sp.Bytes > full.Bytes {
			bad = append(bad, fmt.Sprintf("hyper-kmers: sparse-comm bytes %d exceed full-broadcast bytes %d — the subset decision inverted",
				sp.Bytes, full.Bytes))
		}
	}
	// Cross-shape invariant: on the work-dominated fiber-merge twins the
	// doubly-compressed path must beat the dense-pointer path by more than
	// 5% of modeled critical path — the DCSC Merge-Fiber's O(cols)→O(nnz)
	// column-scan saving, held as a gated number.
	if csc, dcsc := cur.Shape("fibermerge-kmers-csc"), cur.Shape("fibermerge-kmers-dcsc"); csc != nil && dcsc != nil {
		if dcsc.ModelSeconds > 0.95*csc.ModelSeconds {
			bad = append(bad, fmt.Sprintf("fibermerge-kmers: DCSC modeled critical path %.6g s is not >5%% under CSC's %.6g s — the doubly-compressed fiber-merge win regressed",
				dcsc.ModelSeconds, csc.ModelSeconds))
		}
	}
	return bad
}
