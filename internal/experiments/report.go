package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one rectangular block of results.
type Table struct {
	// Name captions the table.
	Name string
	// Header labels the columns.
	Header []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes carries caveats (scaling substitutions, seeds, …).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Report is an experiment's full output.
type Report struct {
	// ID is the registry key (e.g. "fig6").
	ID string
	// Title restates what the paper's artifact shows.
	Title string
	// PaperClaim summarizes the shape the paper reports.
	PaperClaim string
	// Tables hold the measured series.
	Tables []*Table
	// Findings states the measured shape for EXPERIMENTS.md.
	Findings []string
}

// NewTable appends and returns a fresh table.
func (r *Report) NewTable(name string, header ...string) *Table {
	t := &Table{Name: name, Header: header}
	r.Tables = append(r.Tables, t)
	return t
}

// Finding records one measured-shape statement.
func (r *Report) Finding(format string, args ...any) {
	r.Findings = append(r.Findings, fmt.Sprintf(format, args...))
}

// Render writes the report as aligned text.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	if r.PaperClaim != "" {
		if _, err := fmt.Fprintf(w, "paper: %s\n", r.PaperClaim); err != nil {
			return err
		}
	}
	for _, t := range r.Tables {
		if _, err := fmt.Fprintf(w, "\n-- %s --\n", t.Name); err != nil {
			return err
		}
		if err := renderTable(w, t); err != nil {
			return err
		}
		for _, n := range t.Notes {
			if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
				return err
			}
		}
	}
	if len(r.Findings) > 0 {
		if _, err := fmt.Fprintln(w, "\nmeasured:"); err != nil {
			return err
		}
		for _, f := range r.Findings {
			if _, err := fmt.Fprintf(w, "  - %s\n", f); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// renderTable aligns columns to their widest cell.
func renderTable(w io.Writer, t *Table) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", max(0, pad)))
		}
		return strings.TrimRight(sb.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	var total int
	for _, x := range widths {
		total += x + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", max(0, total-2))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// Experiment couples an identifier with a runner.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(opts RunOpts) (*Report, error)
}

var registry = map[string]*Experiment{}

// register adds an experiment at init time.
func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (*Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (run 'list')", id)
	}
	return e, nil
}

// List returns all experiments ordered by id.
func List() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return idOrder(out[a].ID) < idOrder(out[b].ID) })
	return out
}

// idOrder sorts table2 < table3 < … < fig3 < fig4 … numerically; ids that are
// neither tables nor figures (ablations like "pipeline") sort after them,
// alphabetically.
func idOrder(id string) string {
	var n int
	switch {
	case strings.HasPrefix(id, "table"):
		fmt.Sscanf(id, "table%d", &n)
		return fmt.Sprintf("0table%04d", n)
	case strings.HasPrefix(id, "fig"):
		fmt.Sscanf(id, "fig%d", &n)
		return fmt.Sprintf("1fig%04d", n)
	}
	return "2" + id
}
