package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// This file backs `spgemm-bench -trace`: it re-runs one pinned gate shape
// with a span recorder attached, so the exact configuration the perf gate
// argues from can also be *looked at* — per rank, per stage, hidden vs
// exposed — in chrome://tracing or Perfetto.

// TraceShapeNames lists the pinned gate shapes -trace accepts, in gate order.
func TraceShapeNames() []string {
	names := make([]string, len(gateShapes))
	for i, sh := range gateShapes {
		names[i] = sh.name
	}
	return names
}

// RunTraceShape executes the named pinned gate shape with tracing on and
// returns the recorder plus the machine-scaled metering summary. The run is
// the same configuration RunGate executes (tiny workload scale, pinned batch
// counts, comm-amplified Cori-KNL unless the shape pins local), so the trace
// renders exactly the schedule the gate numbers come from. Machine scaling
// applies to the returned summary only (as in the gate); the trace keeps the
// meters' raw durations, preserving the span↔meter identity.
func RunTraceShape(name string) (*obs.Recorder, *mpi.Summary, error) {
	var shape *gateShape
	for i := range gateShapes {
		if gateShapes[i].name == name {
			shape = &gateShapes[i]
			break
		}
	}
	if shape == nil {
		names := TraceShapeNames()
		sort.Strings(names)
		return nil, nil, fmt.Errorf("unknown trace shape %q (one of: %v)", name, names)
	}
	sh := *shape
	machine := costmodel.CoriKNL().ScaledBeta(commAmplification(ScaleTiny))
	if sh.machine == "local" {
		machine = costmodel.LocalHost()
	}
	rec := obs.NewRecorder(sh.p)
	if sh.algo != "" {
		algo, err := core.ParseAlgo(sh.algo)
		if err != nil {
			return nil, nil, err
		}
		a := SpMMGraph(ScaleTiny)
		panel := PanelFor(a, int32(sh.d))
		opts := core.Options{Pipeline: sh.pipeline, Algo: algo, Replication: sh.c, ForceBatches: sh.b}
		rc := core.RunConfig{P: sh.p, L: 1, Cost: machine.Cost(), Opts: opts, Trace: rec}
		_, _, summary, err := core.MultiplyDense(a, panel, rc)
		if err != nil {
			return nil, nil, err
		}
		applyMachine(summary, machine)
		return rec, summary, nil
	}
	wl, err := Workload(sh.wl, ScaleTiny)
	if err != nil {
		return nil, nil, err
	}
	a, b := PairFor(wl)
	opts := core.Options{
		RunSymbolic: sh.symbolic, Pipeline: sh.pipeline,
		Format: sh.format, SparseComm: sh.sparse, ForceBatches: sh.b,
	}
	rc := core.RunConfig{P: sh.p, L: sh.l, Cost: machine.Cost(), Opts: opts, Trace: rec}
	_, _, summary, err := core.Multiply(a, b, rc, nil)
	if err != nil {
		return nil, nil, err
	}
	applyMachine(summary, machine)
	return rec, summary, nil
}
