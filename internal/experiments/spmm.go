package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/genmat"
	"repro/internal/localmm"
	"repro/internal/planner"
	"repro/internal/spmat"
)

func init() {
	register(&Experiment{
		ID:    "spmm",
		Title: "sparse×dense SpMM: SUMMA vs 1.5D ColA vs 1.5D InnerABC",
		Description: "Multiplies a gate workload by a tall-skinny dense feature panel with every " +
			"algorithm family — the densified 2D/3D SUMMA arm and the 1.5D schedules across " +
			"replication factors c — and compares modeled communication, work units, and bytes " +
			"moved under the gate's deterministic objective. Also shows the analytical planner's " +
			"pick for the shape and verifies every configuration is bit-identical to the serial " +
			"SpMM reference. Restrict the sweep with -algo and -replication.",
		Run: runSpMMExperiment,
	})
}

// SpMMGraph is the sparse operand of the spmm experiment and gate shapes: a
// dense-ish unweighted R-MAT graph (the GNN-adjacency regime, nnz(A) ≫ n·d).
// Unweighted matters twice — integer values keep every distributed product
// exact in float64 so bit-identity against the serial reference is
// assertable, and the Table V analogues are either weighted (the protein
// networks) or too sparse relative to a feature panel for the 1.5D-vs-SUMMA
// tradeoff the experiment studies to be visible at laptop scale.
func SpMMGraph(sc Scale) *spmat.CSC {
	bump := map[Scale]int{ScaleTiny: 0, ScaleSmall: 2, ScaleLarge: 4}[sc]
	return genmat.SymmetricPermute(genmat.RMAT(genmat.RMATConfig{
		Scale: 8 + bump, EdgeFactor: 28, Symmetrize: true, Seed: 108,
	}), 208)
}

// spmmPanelWidth is the feature panel width per workload scale — narrow
// enough that the panel stays tall-skinny (the iterated-SpMM regime the 1.5D
// algorithms target) at every scale.
func spmmPanelWidth(sc Scale) int32 {
	switch sc {
	case ScaleTiny:
		return 8
	case ScaleLarge:
		return 32
	default:
		return 16
	}
}

// PanelFor builds the deterministic tall-skinny dense feature panel paired
// with a sparse operand: a ~90%-filled small-integer panel (exact in float64,
// so distributed products over it are bit-identical to the serial reference).
func PanelFor(a *spmat.CSC, d int32) *spmat.DenseMat {
	return spmat.DenseFromCSC(genmat.TallSkinny(a.Cols, d, 0.9, 901))
}

// runSpMMExperiment renders the algorithm-family comparison.
func runSpMMExperiment(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "spmm",
		Title: "sparse×dense SpMM: SUMMA vs 1.5D ColA vs 1.5D InnerABC",
		PaperClaim: "Koanantakool et al. (IPDPS 2016) show sparse×dense wants a different family " +
			"than sparse×sparse: 1.5D schedules with c-fold replication move the sparse matrix " +
			"(ColA) or the panel (InnerABC) around a ring of p/c positions, beating SUMMA — " +
			"which must densify the panel and re-broadcast everything — once the panel is " +
			"tall-skinny.",
	}

	const p = 16
	const summaL = 4
	a := SpMMGraph(opts.Scale)
	d := spmmPanelWidth(opts.Scale)
	panel := PanelFor(a, d)
	want := localmm.SpMMSerial(a, panel)

	type arm struct {
		algo core.Algo
		c    int
	}
	var arms []arm
	reps := planner.ReplicationsFor(p)
	for _, name := range planner.DenseAlgos {
		if opts.Algo != "" && name != opts.Algo {
			continue
		}
		algo, err := core.ParseAlgo(name)
		if err != nil {
			return nil, err
		}
		if algo == core.AlgoSUMMA {
			arms = append(arms, arm{algo: algo, c: 1})
			continue
		}
		for _, c := range reps {
			if opts.Replication != 0 && c != opts.Replication {
				continue
			}
			arms = append(arms, arm{algo: algo, c: c})
		}
	}
	if len(arms) == 0 {
		return nil, fmt.Errorf("spmm: no algorithm arms left after -algo/-replication restriction")
	}

	tb := r.NewTable(fmt.Sprintf("rmat-dense · %dx%d panel (p=%d, staged, b=1)", a.Cols, d, p),
		"algo", "c", "comm s", "work units", "bytes moved", "model s")
	models := make(map[string]float64)
	bitIdentical := true
	for _, ar := range arms {
		rr := runSpMM(a, panel, p, summaL, opts.Machine, ar.algo, ar.c, 1, core.Options{Threads: opts.Threads})
		if rr.Err != nil {
			return nil, fmt.Errorf("spmm %v c=%d: %w", ar.algo, ar.c, rr.Err)
		}
		if !spmat.DenseEqual(rr.Out, want) {
			bitIdentical = false
			r.Finding("UNEXPECTED: %v c=%d differs from the serial SpMM reference", ar.algo, ar.c)
		}
		var work, bytes int64
		for _, step := range core.Steps {
			st := rr.Summary.Step(step)
			work += st.WorkUnits
			bytes += st.Bytes
		}
		comm := commSeconds(rr.Summary)
		model := comm + float64(work)*GateSecPerWorkUnit
		key := fmt.Sprintf("%v/c=%d", ar.algo, ar.c)
		models[key] = model
		cCell := fmt.Sprintf("%d", ar.c)
		if ar.algo == core.AlgoSUMMA {
			cCell = fmt.Sprintf("l=%d", summaL)
		}
		tb.AddRow(ar.algo.String(), cCell, fmtS(comm), fmt.Sprintf("%d", work),
			fmt.Sprintf("%d", bytes), fmtS(model))
	}
	if bitIdentical {
		r.Finding("every algorithm family and replication factor is bit-identical to the serial SpMM reference")
	}
	if summa, ok := models["summa/c=1"]; ok {
		best, bestKey := summa, "summa"
		for k, v := range models {
			if v < best {
				best, bestKey = v, k
			}
		}
		if bestKey != "summa" {
			r.Finding("best 1.5D configuration (%s) models %.3gx faster than densified SUMMA on the tall-skinny panel",
				bestKey, summa/best)
		} else {
			r.Finding("UNEXPECTED: densified SUMMA beat every 1.5D configuration on a tall-skinny panel")
		}
	}

	// The planner's view of the same shape, under the gate objective.
	pl, err := planner.NewDense(a, d, planner.DenseInput{
		P: p, Machine: opts.Machine, SecPerWork: GateSecPerWorkUnit,
		Pipelines: []bool{false},
	})
	if err != nil {
		return nil, err
	}
	if pick := pl.Best(); pick != nil {
		pt := r.NewTable("planner ranking (staged, top 5)",
			"rank", "config", "model s", "one-time s", "per-iter s")
		show := len(pl.Candidates)
		if show > 5 {
			show = 5
		}
		for i := 0; i < show; i++ {
			c := pl.Candidates[i]
			pt.AddRow(fmt.Sprintf("%d", i+1), c.DenseConfig.String(), fmtS(c.ModelSeconds),
				fmtS(c.OneTimeSeconds), fmtS(c.PerIterSeconds))
		}
		r.Finding("planner pick for the tall-skinny shape: %s", pick.DenseConfig)
	}
	return r, nil
}
