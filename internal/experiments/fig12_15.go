package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/localmm"
)

func init() {
	register(&Experiment{
		ID:          "fig12",
		Title:       "Hyper-threading at extreme scale",
		Description: "4 hardware threads per core speed computation but slow communication; worthwhile while compute dominates.",
		Run:         runFig12,
	})
	register(&Experiment{
		ID:          "fig13",
		Title:       "KNL vs Haswell on the same network",
		Description: "Faster cores shift the bottleneck to communication, increasing the value of communication avoidance.",
		Run:         runFig13,
	})
	register(&Experiment{
		ID:          "fig14",
		Title:       "Small matrices at low concurrency (Eukarya-like)",
		Description: "Layers only help once communication matters; at 16 nodes SUMMA3D gains little.",
		Run:         runFig14,
	})
	register(&Experiment{
		ID:          "fig15",
		Title:       "BatchedSUMMA3D vs previous SUMMA3D (kernel ablation)",
		Description: "New sort-free hash kernels vs the previous sorted heap pipeline on the Eukarya-like matrix with 4 layers.",
		Run:         runFig15,
	})
}

func runFig12(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "fig12",
		Title: "Hyper-threading impact (Metaclust50-like squaring)",
		PaperClaim: "HT cuts computation (231→81 s at l=16) but inflates communication " +
			"(147→209 s); the total still improves, and the benefit is larger when " +
			"compute dominates (l=64).",
	}
	a, err := Workload(WLMetaclust50, opts.Scale)
	if err != nil {
		return nil, err
	}
	const p = 64
	tb := r.NewTable("computation vs communication (seconds)",
		"l", "machine", "computation", "communication", "total")
	type cell struct{ comp, comm, tot float64 }
	get := func(l int, m costmodel.Machine) (cell, error) {
		rr := runMul(a, a, p, l, m, 0, 2, opts.coreOpts(core.Options{}))
		if rr.Err != nil {
			return cell{}, rr.Err
		}
		return cell{
			comp: computeSeconds(rr.Summary),
			comm: commSeconds(rr.Summary),
			tot:  totalSeconds(rr.Summary),
		}, nil
	}
	knl := costmodel.CoriKNL()
	ht := costmodel.CoriKNLHyperThreads()
	for _, l := range []int{16, 64} {
		if l == 64 && opts.Scale == ScaleTiny {
			continue // 64 layers needs p ≥ 64 with square layers
		}
		base, err := get(l, knl)
		if err != nil {
			return nil, err
		}
		hyper, err := get(l, ht)
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmt.Sprint(l), knl.Name, fmtS(base.comp), fmtS(base.comm), fmtS(base.tot))
		tb.AddRow(fmt.Sprint(l), ht.Name, fmtS(hyper.comp), fmtS(hyper.comm), fmtS(hyper.tot))
		r.Finding("l=%d: HT computation %.1fx faster, communication %.1fx slower, total %s",
			l, base.comp/maxf(hyper.comp, 1e-12), hyper.comm/maxf(base.comm, 1e-12),
			map[bool]string{true: "improves", false: "regresses"}[hyper.tot < base.tot])
	}
	return r, nil
}

func runFig13(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "fig13",
		Title: "Isolates-small-like squaring on KNL vs Haswell",
		PaperClaim: "Computation 2.1x faster and communication 1.4x faster on Haswell; " +
			"communication takes a larger share of the total than on KNL.",
	}
	a, err := Workload(WLIsolatesSmall, opts.Scale)
	if err != nil {
		return nil, err
	}
	const p, l = 64, 16
	tb := r.NewTable("same grid, two machines", "machine", "computation", "communication", "comm share")
	var knlComp, knlComm, hswComp, hswComm float64
	for _, m := range []costmodel.Machine{costmodel.CoriKNL(), costmodel.CoriHaswell()} {
		rr := runMul(a, a, p, l, m, 0, 2, opts.coreOpts(core.Options{}))
		if rr.Err != nil {
			return nil, rr.Err
		}
		comp, comm := computeSeconds(rr.Summary), commSeconds(rr.Summary)
		share := comm / maxf(comp+comm, 1e-12)
		tb.AddRow(m.Name, fmtS(comp), fmtS(comm), fmt.Sprintf("%.0f%%", share*100))
		if m.Name == "Cori-KNL" {
			knlComp, knlComm = comp, comm
		} else {
			hswComp, hswComm = comp, comm
		}
	}
	r.Finding("computation %.1fx faster on Haswell (paper: 2.1x); communication %.1fx (paper: 1.4x)",
		knlComp/maxf(hswComp, 1e-12), knlComm/maxf(hswComm, 1e-12))
	knlShare := knlComm / maxf(knlComp+knlComm, 1e-12)
	hswShare := hswComm / maxf(hswComp+hswComm, 1e-12)
	r.Finding("communication share rose from %.0f%% (KNL) to %.0f%% (Haswell): faster cores make CA more valuable",
		knlShare*100, hswShare*100)
	return r, nil
}

func runFig14(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "fig14",
		Title: "Eukarya-like squaring at low concurrency",
		PaperClaim: "On 16 nodes, extra layers buy little (communication is insignificant); " +
			"on 256 nodes, l=4 already helps while l=16 overshoots as AllToAll-Fiber " +
			"becomes the bottleneck.",
	}
	a, err := Workload(WLEukarya, opts.Scale)
	if err != nil {
		return nil, err
	}
	for _, p := range []int{16, 256} {
		tb := r.NewTable(fmt.Sprintf("p=%d (modeled %s cores)", p, coresLabel(p)),
			"l", "b", "comm s", "comp s", "total")
		var totals []float64
		var ls []int
		for _, l := range []int{1, 4, 16} {
			rr := runMul(a, a, p, l, opts.Machine, 0, 1, opts.coreOpts(core.Options{RunSymbolic: true}))
			if rr.Err != nil {
				return nil, rr.Err
			}
			total := totalSeconds(rr.Summary)
			tb.AddRow(fmt.Sprint(l), fmt.Sprint(rr.B), fmtS(commSeconds(rr.Summary)),
				fmtS(computeSeconds(rr.Summary)), fmtS(total))
			totals = append(totals, total)
			ls = append(ls, l)
		}
		best := 0
		for i := range totals {
			if totals[i] < totals[best] {
				best = i
			}
		}
		r.Finding("p=%d: best layer count l=%d", p, ls[best])
	}
	return r, nil
}

func runFig15(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "fig15",
		Title: "BatchedSUMMA3D (new kernels) vs previous SUMMA3D (heap kernels)",
		PaperClaim: "Computation >8x faster with hash-based multiply and merge; " +
			"communication slightly faster too.",
	}
	// One workload scale up: the kernel-generation gap grows with block
	// size, and the paper's Fig 15 blocks are orders of magnitude larger.
	a, err := Workload(WLEukarya, scaleUp(opts.Scale))
	if err != nil {
		return nil, err
	}
	const l = 4
	tb := r.NewTable("Eukarya-like A², 4 layers, no batching",
		"procs", "pipeline", "computation", "communication")
	// Low process counts keep per-rank blocks big enough that kernel choice
	// dominates (the paper's Fig 15 uses 16 and 256 nodes on a matrix ~1000x
	// larger; at our scale p=64 would shrink blocks to a few columns).
	ps := []int{4, 16}
	if opts.Scale == ScaleLarge {
		ps = []int{16, 64}
	}
	for _, p := range ps {
		prev := runMul(a, a, p, l, opts.Machine, 0, 1, opts.coreOpts(core.Options{
			Kernel: localmm.KernelHeap, Merger: localmm.MergerHeap,
		}))
		now := runMul(a, a, p, l, opts.Machine, 0, 1, opts.coreOpts(core.Options{
			Kernel: localmm.KernelHashUnsorted, Merger: localmm.MergerHash,
		}))
		if prev.Err != nil {
			return nil, prev.Err
		}
		if now.Err != nil {
			return nil, now.Err
		}
		pc, nc := computeSeconds(prev.Summary), computeSeconds(now.Summary)
		tb.AddRow(fmt.Sprint(p), "SUMMA3D (prev: heap, sorted)", fmtS(pc), fmtS(commSeconds(prev.Summary)))
		tb.AddRow(fmt.Sprint(p), "BatchedSUMMA3D (new: hash, unsorted)", fmtS(nc), fmtS(commSeconds(now.Summary)))
		r.Finding("p=%d: computation %.1fx faster with the sort-free hash pipeline (paper: >8x at scale)",
			p, pc/maxf(nc, 1e-12))
	}
	return r, nil
}
