package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/distmat"
	"repro/internal/grid"
	"repro/internal/spmat"
)

func init() {
	register(&Experiment{
		ID:    "hypersparse",
		Title: "CSC vs DCSC block storage (fig 6 shape + Rice-kmers shape)",
		Description: "Ablation of the in-memory storage format: dense column pointers (csc) vs " +
			"doubly-compressed (dcsc) vs the per-block auto heuristic, on a fig-6 strong-scaling " +
			"shape (dense-ish blocks, auto stays CSC) and the Rice-kmers AAᵀ shape whose local " +
			"blocks are hypersparse (~2 nnz per occupied column). Outputs and communication " +
			"volume are identical across formats; modeled work units drop with the O(cols) " +
			"per-block metadata, and the memory-constrained batch decision needs fewer batches " +
			"once DCSC footprints are accounted.",
		Run: runHypersparse,
	})
}

// runHypersparse compares the three storage settings at fixed shapes.
func runHypersparse(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "hypersparse",
		Title: "CSC vs DCSC block storage",
		PaperClaim: "At scale the local blocks SUMMA moves are hypersparse (Rice-kmers: ~2 nnz " +
			"per column), so dense per-column metadata costs O(cols) per block where " +
			"doubly-compressed storage (Buluç & Gilbert's DCSC) costs O(nnz); smaller block " +
			"footprints also mean the symbolic step fits the same multiply in fewer batches.",
	}

	formats := []spmat.Format{spmat.FormatCSC, spmat.FormatDCSC, spmat.FormatAuto}

	type shape struct {
		name    string
		wl      string
		p, l, b int
		// budgetSweep additionally tables the symbolic batch decision at
		// memory budgets anchored on the CSC input-footprint boundary.
		budgetSweep bool
	}
	shapes := []shape{
		{name: "fig6 shape", wl: WLFriendster, p: 64, l: 16, b: 4},
		{name: "kmers shape", wl: WLRiceKmers, p: 64, l: 16, b: 1, budgetSweep: true},
	}
	for _, sh := range shapes {
		wl, err := Workload(sh.wl, opts.Scale)
		if err != nil {
			return nil, err
		}
		a, b := PairFor(wl)

		tb := r.NewTable(fmt.Sprintf("%s: %s (p=%d, l=%d)", sh.name, sh.wl, sh.p, sh.l),
			"format", "batches", "work units", "comm s", "bytes moved", "peak mem MB")
		results := make(map[spmat.Format]runResult)
		for _, f := range formats {
			o := opts.coreOpts(core.Options{RunSymbolic: true})
			o.Format = f
			rr := runMul(a, b, sh.p, sh.l, opts.Machine, 0, sh.b, o)
			if rr.Err != nil {
				return nil, fmt.Errorf("%s format %v: %w", sh.name, f, rr.Err)
			}
			results[f] = rr
			var work, bytes int64
			for _, step := range core.Steps {
				st := rr.Summary.Step(step)
				work += st.WorkUnits
				bytes += st.Bytes
			}
			var peak int64
			for _, res := range rr.Results {
				if res.PeakMemBytes > peak {
					peak = res.PeakMemBytes
				}
			}
			tb.AddRow(f.String(), fmt.Sprintf("%d", rr.B), fmt.Sprintf("%d", work),
				fmtS(commSeconds(rr.Summary)), fmt.Sprintf("%d", bytes),
				fmt.Sprintf("%.2f", float64(peak)/1e6))
		}

		workOf := func(f spmat.Format) int64 {
			var w int64
			for _, step := range core.Steps {
				w += results[f].Summary.Step(step).WorkUnits
			}
			return w
		}
		bytesOf := func(f spmat.Format) int64 {
			var n int64
			for _, step := range core.Steps {
				n += results[f].Summary.Step(step).Bytes
			}
			return n
		}
		if bytesOf(spmat.FormatCSC) == bytesOf(spmat.FormatDCSC) {
			r.Finding("%s: communication volume is format-independent (%d bytes) — the wire "+
				"encoding depends on occupancy alone", sh.name, bytesOf(spmat.FormatCSC))
		} else {
			r.Finding("%s: UNEXPECTED: bytes moved differ between formats (%d vs %d)",
				sh.name, bytesOf(spmat.FormatCSC), bytesOf(spmat.FormatDCSC))
		}
		if wc, wd := workOf(spmat.FormatCSC), workOf(spmat.FormatDCSC); wd < wc {
			r.Finding("%s: DCSC removes %.1f%% of modeled work units (%d → %d) — the O(cols) "+
				"per-block column scans", sh.name, 100*float64(wc-wd)/float64(wc), wc, wd)
		}
		if sh.budgetSweep {
			// The symbolic batch decision at budgets anchored on the exact
			// CSC input-footprint boundary (below ×1 even the inputs don't
			// fit under flat r·nnz accounting). DCSC footprints leave more
			// per-process headroom, so the same budget needs fewer batches.
			floor := inputFootprintCSC(a, b, sh.p, sh.l)
			bt := r.NewTable(fmt.Sprintf("%s: symbolic batch decision vs memory budget (r·nnz CSC floor = %d B)",
				sh.name, floor), "budget / floor", "b (csc)", "b (dcsc)", "b (auto)")
			var sawFewer bool
			for _, mult := range []float64{1.15, 1.4, 1.9} {
				budget := int64(mult * float64(floor))
				row := []string{fmt.Sprintf("%.2f", mult)}
				bs := make(map[spmat.Format]int)
				for _, f := range formats {
					o := opts.coreOpts(core.Options{MemBytes: budget, RunSymbolic: true})
					o.Format = f
					nb, err := core.SymbolicBatches(a, b, core.RunConfig{
						P: sh.p, L: sh.l, Cost: opts.Machine.Cost(), Opts: o,
					})
					if err != nil {
						row = append(row, "infeasible")
						bs[f] = -1
						continue
					}
					row = append(row, fmt.Sprintf("%d", nb))
					bs[f] = nb
				}
				bt.AddRow(row...)
				if bs[spmat.FormatDCSC] > 0 && (bs[spmat.FormatCSC] == -1 || bs[spmat.FormatDCSC] < bs[spmat.FormatCSC]) {
					sawFewer = true
				}
			}
			if sawFewer {
				r.Finding("%s: under the same MemBytes the symbolic step picks strictly fewer "+
					"batches with DCSC footprints — less per-batch A re-broadcast volume", sh.name)
			}
		}
	}
	return r, nil
}

// inputFootprintCSC returns the aggregate memory floor p · max over ranks of
// the flat r·nnz input footprint (Ã plus B̃) — the budget below which the
// CSC-accounted symbolic step declares the inputs alone don't fit. Computed
// host-side from the deterministic distributions.
func inputFootprintCSC(a, b *spmat.CSC, p, l int) int64 {
	q, err := grid.SideFor(p, l)
	if err != nil {
		panic(err)
	}
	da := distmat.NewADist(a.Rows, a.Cols, q, l)
	db := distmat.NewBDist(b.Rows, b.Cols, q, l)
	var maxIn int64
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			for k := 0; k < l; k++ {
				in := spmat.BytesPerNonzero * (da.Local(a, i, j, k).NNZ() + db.Local(b, i, j, k).NNZ())
				if in > maxIn {
					maxIn = in
				}
			}
		}
	}
	return int64(p) * maxIn
}
