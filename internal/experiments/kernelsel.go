package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/grid"
	"repro/internal/localmm"
	"repro/internal/planner"
	"repro/internal/spmat"
)

// This file audits the planner's kernel/merger pick against an exhaustive
// kernel×merger oracle priced on *measured* aggregates. The planner decides
// from probe estimates; the oracle re-prices every option with the kernel
// cost table over the exact flop and scanned-column counts a real staged run
// metered, recovered by inverting the runtime's work-unit identities:
//
//	Local-Multiply work = flops + q·nnz(B) + scannedCols + p·q·b
//	Merge-Layer   work = unmergedQL + mergedL + scannedCols + p·b·(l+2)
//	Merge-Fiber   work = mergedL + scannedCols + p·b
//
// (flops, unmergedQL, mergedL come from the per-rank Results; the remainder
// of each identity is the aggregate the kernel models price per column). A
// negative remainder means the identities drifted from the runtime meters
// and fails the gate loudly. A differential run then executes the pick
// for real and demands bit-identical per-rank output against the defaults.

// KernelSelTolerance is how far (relative) the planner's kernel or merger
// pick may price above the oracle's best option before the gate fails.
const KernelSelTolerance = 0.10

// kernAgg carries the meter-derived pricing aggregates of one staged run.
type kernAgg struct {
	// Flops and MulCols price the multiply kernels: exact multiplications
	// and total scanned columns across every (rank, stage, batch).
	Flops, MulCols int64
	// MergeEntries and MergeCols price the merge strategies: entries fed to
	// Merge-Layer plus Merge-Fiber, and both sites' scanned columns.
	MergeEntries, MergeCols int64
	// The components, kept for reporting.
	UnmergedQL, MergedL, LayerCols, FiberCols int64
}

// measuredKernelAggregates inverts the work-unit identities of a staged run.
func measuredKernelAggregates(rr runResult, opB *spmat.CSC) (kernAgg, error) {
	q, err := grid.SideFor(rr.P, rr.L)
	if err != nil {
		return kernAgg{}, err
	}
	var ag kernAgg
	for _, res := range rr.Results {
		ag.Flops += res.LocalFlops
		ag.UnmergedQL += res.UnmergedNNZ
		ag.MergedL += res.MergedLayerNNZ
	}
	p64, q64, b64, l64 := int64(rr.P), int64(q), int64(rr.B), int64(rr.L)
	ag.MulCols = rr.Summary.Step(core.StepLocalMult).WorkUnits -
		ag.Flops - q64*opB.NNZ() - p64*q64*b64
	ag.LayerCols = rr.Summary.Step(core.StepMergeLayer).WorkUnits -
		ag.UnmergedQL - ag.MergedL - p64*b64*(l64+2)
	ag.FiberCols = rr.Summary.Step(core.StepMergeFiber).WorkUnits -
		ag.MergedL - p64*b64
	if ag.MulCols < 0 || ag.LayerCols < 0 || ag.FiberCols < 0 {
		return ag, fmt.Errorf(
			"meter inversion went negative (mul cols %d, layer cols %d, fiber cols %d): the work-unit identities drifted from the runtime meters",
			ag.MulCols, ag.LayerCols, ag.FiberCols)
	}
	ag.MergeEntries = ag.UnmergedQL + ag.MergedL
	ag.MergeCols = ag.LayerCols + ag.FiberCols
	return ag, nil
}

// kernelSelKernels and kernelSelMergers fix the oracle's option order —
// exactly the space the planner sweeps (sorted-hash is strictly dominated by
// unsorted hash under every table, so it never joins).
var kernelSelKernels = []string{
	costmodel.KernelNameHash, costmodel.KernelNameHeap, costmodel.KernelNameHybrid,
}
var kernelSelMergers = []string{costmodel.MergerNameHash, costmodel.MergerNameHeap}

// kernelOraclePrices prices every multiply-kernel option on the measured
// aggregates. The hybrid option carries its block-level value — the better
// fixed regime plus the per-column dispatch probe — because a finished run
// only yields aggregates, not the per-column flop distribution the planner's
// sampled estimate uses; the dispatch term keeps it honest as an option, not
// a free minimum.
func kernelOraclePrices(kt *costmodel.KernelTable, ag kernAgg) map[string]float64 {
	hash := kt.Predict(costmodel.KernelNameHash, ag.Flops, ag.MulCols)
	heap := kt.Predict(costmodel.KernelNameHeap, ag.Flops, ag.MulCols)
	return map[string]float64{
		costmodel.KernelNameHash: hash,
		costmodel.KernelNameHeap: heap,
		costmodel.KernelNameHybrid: math.Min(hash, heap) +
			costmodel.HybridDispatchSecPerCol*float64(ag.MulCols),
	}
}

// mergerOraclePrices prices both merge strategies on the measured aggregates.
func mergerOraclePrices(kt *costmodel.KernelTable, ag kernAgg) map[string]float64 {
	return map[string]float64{
		costmodel.MergerNameHash: kt.Predict(costmodel.MergerNameHash, ag.MergeEntries, ag.MergeCols),
		costmodel.MergerNameHeap: kt.Predict(costmodel.MergerNameHeap, ag.MergeEntries, ag.MergeCols),
	}
}

// kernelSelPoint bundles one planner-gate shape's kernel-selection audit.
type kernelSelPoint struct {
	shape planShape
	pick  *planner.Candidate
	agg   kernAgg
	// invErr is the meter-inversion failure, nil when the identities held.
	invErr error
	// kernels and mergers are the oracle prices per option.
	kernels, mergers map[string]float64
	// diffRanks ranks compared in the differential run; diffBad counts
	// ranks whose output differed between the pick and the defaults.
	diffRanks, diffBad int
}

// kernelSelPointFor plans one shape, runs its staged twin for real, derives
// the measured aggregates, prices the oracle sweep, and runs the pick-vs-
// defaults differential. Hard failures (workload, planner, run errors)
// return an error; a meter-inversion failure is recorded on the point so the
// gate can report it as a violation with the rest of the shape's context.
func kernelSelPointFor(sh planShape, sc Scale) (*kernelSelPoint, error) {
	a, b, machine, mem, err := planShapeInputs(sh, sc)
	if err != nil {
		return nil, err
	}
	pl, err := planFor(a, b, sh.p, machine, mem)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", sh.name, err)
	}
	pick := pl.Best()
	if pick == nil {
		return nil, fmt.Errorf("%s: planner found no feasible configuration", sh.name)
	}
	pt := &kernelSelPoint{shape: sh, pick: pick}

	// The staged twin under the defaults: the measurement the oracle prices,
	// and one side of the differential. b is pinned to the pick's induced
	// count so the aggregates describe the configuration being audited.
	base := runMul(a, b, sh.p, pick.L, machine, 0, pick.B,
		core.Options{RunSymbolic: true, Format: pick.Format, SparseComm: pick.SparseComm})
	if base.Err != nil {
		return nil, fmt.Errorf("%s: %w", sh.name, base.Err)
	}
	pt.agg, pt.invErr = measuredKernelAggregates(base, b)
	if pt.invErr == nil {
		pt.kernels = kernelOraclePrices(pl.In.Kernels, pt.agg)
		pt.mergers = mergerOraclePrices(pl.In.Kernels, pt.agg)
	}

	// Differential: the same staged twin under the pick's kernel and merger
	// must be bit-identical per rank — the speed knob must never touch
	// values.
	kern, err := localmm.ParseKernel(pick.Kernel)
	if err != nil {
		return nil, fmt.Errorf("%s: pick kernel: %w", sh.name, err)
	}
	merger, err := localmm.ParseMerger(pick.Merger)
	if err != nil {
		return nil, fmt.Errorf("%s: pick merger: %w", sh.name, err)
	}
	picked := runMul(a, b, sh.p, pick.L, machine, 0, pick.B,
		core.Options{RunSymbolic: true, Format: pick.Format, SparseComm: pick.SparseComm,
			Kernel: kern, Merger: merger})
	if picked.Err != nil {
		return nil, fmt.Errorf("%s: %w", sh.name, picked.Err)
	}
	pt.diffRanks = len(base.Results)
	for i := range base.Results {
		if i >= len(picked.Results) || !spmat.Equal(base.Results[i].C, picked.Results[i].C) ||
			!sameInt32s(base.Results[i].GlobalCols, picked.Results[i].GlobalCols) {
			pt.diffBad++
		}
	}
	return pt, nil
}

// sameInt32s reports element-wise equality.
func sameInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sweepBounds returns the cheapest and dearest price in a sweep.
func sweepBounds(prices map[string]float64) (best, worst float64) {
	first := true
	for _, v := range prices {
		if first || v < best {
			best = v
		}
		if first || v > worst {
			worst = v
		}
		first = false
	}
	return best, worst
}

// KernelSelGate audits the planner's kernel/merger pick on every planner-gate
// shape and returns one message per violation (empty = gate passes): a pick
// pricing more than tol above the oracle's best option on the measured
// aggregates, a meter-inversion failure, a differential mismatch, or — the
// anti-vacuity check — a sweep so flat everywhere that the tolerance bound
// could never fail.
func KernelSelGate(sc Scale, tol float64) ([]string, error) {
	var bad []string
	maxSpread := 1.0
	for _, sh := range planShapes {
		pt, err := kernelSelPointFor(sh, sc)
		if err != nil {
			return nil, err
		}
		if pt.invErr != nil {
			bad = append(bad, fmt.Sprintf("%s: %v", sh.name, pt.invErr))
			continue
		}
		for _, sweep := range []struct {
			label, pick string
			prices      map[string]float64
		}{
			{"kernel", pt.pick.Kernel, pt.kernels},
			{"merger", pt.pick.Merger, pt.mergers},
		} {
			best, worst := sweepBounds(sweep.prices)
			if best > 0 && worst/best > maxSpread {
				maxSpread = worst / best
			}
			got, ok := sweep.prices[sweep.pick]
			if !ok {
				bad = append(bad, fmt.Sprintf("%s: planner picked unknown %s %q", sh.name, sweep.label, sweep.pick))
				continue
			}
			if got > best*(1+tol) {
				bad = append(bad, fmt.Sprintf(
					"%s: %s pick %q prices %.4g s on the measured aggregates, oracle best %.4g s — %.1f%% above (tolerance %.0f%%)",
					sh.name, sweep.label, sweep.pick, got, best, 100*(got/best-1), 100*tol))
			}
		}
		if pt.diffBad > 0 {
			bad = append(bad, fmt.Sprintf(
				"%s: differential run: %d/%d ranks differ between kernel=%s merger=%s and the defaults — the speed knob changed output values",
				sh.name, pt.diffBad, pt.diffRanks, pt.pick.Kernel, pt.pick.Merger))
		}
	}
	if len(planShapes) > 0 && maxSpread <= 1+tol {
		bad = append(bad, fmt.Sprintf(
			"kernel/merger sweep is flat on every shape (max option spread %.3gx ≤ %.3gx): the %.0f%% oracle bound is vacuous",
			maxSpread, 1+tol, 100*tol))
	}
	return bad, nil
}

func init() {
	register(&Experiment{
		ID:    "kernelsel",
		Title: "plan-time kernel/merger pick vs measured-aggregate oracle",
		Description: "Audits the planner's Local-Multiply kernel and merge-strategy picks: each " +
			"planner-gate shape's staged twin runs for real, the metered work units are inverted " +
			"back into exact flop and scanned-column aggregates, and every kernel×merger option " +
			"is priced on them with the cost table. The pick must sit within the gate tolerance " +
			"of the oracle's best option, and a differential run (pick vs defaults) must be " +
			"bit-identical per rank.",
		Run: runKernelSelExperiment,
	})
}

// runKernelSelExperiment renders the kernel-selection audit.
func runKernelSelExperiment(opts RunOpts) (*Report, error) {
	r := &Report{
		ID:    "kernelsel",
		Title: "plan-time kernel/merger pick vs measured-aggregate oracle",
		PaperClaim: "The paper fixes one sort-free hash kernel for Local-Multiply and the merges " +
			"(Sec. IV-D); a cost table over flops and scanned columns should pick between hash, " +
			"heap, and a per-column hybrid at plan time — and the pick should hold up when the " +
			"options are re-priced on the measured aggregates of a real run.",
	}
	for _, sh := range planShapes {
		pt, err := kernelSelPointFor(sh, opts.Scale)
		if err != nil {
			return nil, err
		}
		if pt.invErr != nil {
			return nil, fmt.Errorf("%s: %w", sh.name, pt.invErr)
		}
		tb := r.NewTable(fmt.Sprintf("%s (p=%d, %s): options priced on measured aggregates", sh.name, sh.p, pt.pick.Config),
			"option", "kind", "predicted s", "planner pick")
		add := func(names []string, prices map[string]float64, kind, pick string) {
			for _, name := range names {
				mark := ""
				if name == pick {
					mark = "◀ pick"
				}
				tb.AddRow(name, kind, fmtS(prices[name]), mark)
			}
		}
		add(kernelSelKernels, pt.kernels, "kernel", pt.pick.Kernel)
		add(kernelSelMergers, pt.mergers, "merger", pt.pick.Merger)
		tb.Notes = append(tb.Notes, fmt.Sprintf(
			"measured aggregates: flops=%d, multiply scanned cols=%d, merge entries=%d, merge scanned cols=%d (layer %d + fiber %d)",
			pt.agg.Flops, pt.agg.MulCols, pt.agg.MergeEntries, pt.agg.MergeCols, pt.agg.LayerCols, pt.agg.FiberCols))

		kBest, _ := sweepBounds(pt.kernels)
		mBest, _ := sweepBounds(pt.mergers)
		kGap := 100 * (pt.kernels[pt.pick.Kernel]/kBest - 1)
		mGap := 100 * (pt.mergers[pt.pick.Merger]/mBest - 1)
		diff := "bit-identical"
		if pt.diffBad > 0 {
			diff = fmt.Sprintf("%d/%d ranks DIFFER", pt.diffBad, pt.diffRanks)
		}
		r.Finding("%s: kernel pick %s is %.2f%% above the oracle best, merger pick %s %.2f%% above; pick-vs-defaults output %s across %d ranks",
			sh.name, pt.pick.Kernel, kGap, pt.pick.Merger, mGap, diff, pt.diffRanks)
	}
	return r, nil
}
