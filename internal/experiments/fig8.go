package experiments

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(&Experiment{
		ID:          "fig8",
		Title:       "Symbolic step: communication vs computation across layers",
		Description: "The symbolic estimator is communication-dominated, so layers speed it up even more than the numeric multiply.",
		Run:         runFig8,
	})
}

func runFig8(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "fig8",
		Title: "Symbolic step breakdown for l ∈ {1, 4, 16}",
		PaperClaim: "Symbolic communication shrinks >4x from 1 to 16 layers, giving >2x total " +
			"symbolic speedup, because LOCALSYMBOLIC is much cheaper than LOCALMULTIPLY " +
			"while the broadcasts are identical.",
	}
	a, err := Workload(WLIsolatesSmall, opts.Scale)
	if err != nil {
		return nil, err
	}
	p := 64
	if opts.Scale == ScaleLarge {
		p = 256
	}
	tb := r.NewTable(fmt.Sprintf("symbolic step on %s (p=%d)", WLIsolatesSmall, p),
		"l", "comm s (modeled)", "comp s (measured)", "total", "comm share")
	var comm1, tot1, comm16, tot16 float64
	for _, l := range []int{1, 4, 16} {
		rr := runMul(a, a, p, l, opts.Machine, 0, 1, opts.coreOpts(core.Options{RunSymbolic: true}))
		if rr.Err != nil {
			return nil, rr.Err
		}
		st := rr.Summary.Step(core.StepSymbolic)
		total := st.CommSeconds + st.ComputeSeconds
		share := 0.0
		if total > 0 {
			share = st.CommSeconds / total
		}
		tb.AddRow(fmt.Sprint(l), fmtS(st.CommSeconds), fmtS(st.ComputeSeconds),
			fmtS(total), fmt.Sprintf("%.0f%%", share*100))
		switch l {
		case 1:
			comm1, tot1 = st.CommSeconds, total
		case 16:
			comm16, tot16 = st.CommSeconds, total
		}
	}
	if comm16 > 0 {
		r.Finding("symbolic communication shrank %.1fx from l=1 to l=16 (paper: >4x)", comm1/comm16)
	}
	if tot16 > 0 {
		r.Finding("total symbolic time improved %.1fx (paper: >2x)", tot1/tot16)
	}
	// Compare against the numeric multiply: the symbolic step must be
	// comm-dominated relative to it.
	rr := runMul(a, a, p, 1, opts.Machine, 0, 1, opts.coreOpts(core.Options{}))
	if rr.Err != nil {
		return nil, rr.Err
	}
	mult := rr.Summary.Step(core.StepLocalMult).ComputeSeconds
	sym := tot1 - comm1
	if mult > 0 {
		r.Finding("LOCALSYMBOLIC compute is %.1fx cheaper than LOCALMULTIPLY at l=1", mult/maxf(sym, 1e-12))
	}
	return r, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
