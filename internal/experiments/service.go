package experiments

import (
	"fmt"
	"net/http/httptest"
	"sync"

	"repro/internal/costmodel"
	"repro/internal/localmm"
	"repro/internal/service"
)

func init() {
	register(&Experiment{
		ID:          "service",
		Title:       "Multiply-as-a-service soak: resident matrices, plan-cache amortization, budgeted admission",
		Description: "Duty-cycle a spgemmd server (in-process) with concurrent clients over mixed resident pairs; verify bit-identical outputs, zero probe work after warmup, and deadlock-free admission under the shared budget.",
		Run:         runServiceExperiment,
	})
}

// servicePairs is the soak's traffic mix over the three resident workloads.
var servicePairs = [][2]string{
	{"rmat", "rmat"},
	{"er", "er"},
	{"hyper", "hyper"},
	{"rmat", "er"},
}

// serviceShape scales the soak: workload sizes and client pressure.
func serviceShape(sc Scale) (rmatScale int, erN int32, hyperN int32, clients, rounds int) {
	switch sc {
	case ScaleTiny:
		return 6, 64, 256, 4, 2
	case ScaleLarge:
		return 9, 512, 2048, 8, 6
	default:
		return 7, 128, 512, 6, 3
	}
}

// runServiceExperiment starts an in-process server (the full HTTP path, so
// the soak covers the wire contract too) and drives it.
func runServiceExperiment(o RunOpts) (*Report, error) {
	rmatScale, _, _, _, _ := serviceShape(o.Scale)
	machine := o.Machine
	if machine.Name == "" {
		machine = costmodel.CoriKNL()
	}
	// The budget: tight enough that the biggest self-product batches and
	// concurrent reservations contend, the same recipe the service tests use.
	probe := service.GeneratorSpec{Kind: "rmat", Scale: rmatScale, EdgeFactor: 8, Seed: 7}
	big, err := probe.Generate()
	if err != nil {
		return nil, err
	}
	mem := 24 * localmm.Flops(big, big)

	svc, err := service.New(service.Config{P: 16, Machine: machine, MemBytes: mem, Threads: o.Threads})
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(service.Handler(svc))
	defer srv.Close()
	return DriveService(&service.Client{Base: srv.URL, HTTP: srv.Client()}, o.Scale)
}

// DriveService runs the soak duty cycle against any server — the in-process
// one above, or a remote spgemmd via `spgemm-bench -server URL -exp service`.
// It loads the workloads (idempotent on a warm server), pays the warmup
// pass, fires the concurrent mix, and fails if any output deviates from the
// sequential pass or any post-warmup request performs probe work.
func DriveService(cl *service.Client, sc Scale) (*Report, error) {
	rmatScale, erN, hyperN, clients, rounds := serviceShape(sc)
	specs := map[string]service.GeneratorSpec{
		"rmat":  {Kind: "rmat", Scale: rmatScale, EdgeFactor: 8, Seed: 7},
		"er":    {Kind: "er", N: erN, EdgeFactor: 6, Seed: 11},
		"hyper": {Kind: "hypersparse", N: hyperN, Cols: hyperN, NnzPerCol: 2, Seed: 13},
	}

	rep := &Report{
		ID:    "service",
		Title: "multiply-as-a-service soak",
		PaperClaim: "iterated workloads amortize load/probe/plan cost across repeated " +
			"multiplies on resident matrices (ROADMAP north star; cf. arXiv 2203.07673 on resident-operand reuse)",
	}

	// Load phase: server-side generation, once per workload.
	for name, spec := range specs {
		if _, err := cl.LoadGenerated(name, spec); err != nil {
			return nil, fmt.Errorf("load %s: %w", name, err)
		}
	}

	// Warmup: one sequential pass over the mix pays every probe exactly once
	// and records the golden outputs.
	golden := map[[2]string][]byte{}
	warmT := rep.NewTable("warmup (sequential, cache-cold)",
		"pair", "plan", "cache", "batches", "model s", "peak B/rank")
	for _, pr := range servicePairs {
		resp, c, err := cl.Multiply(service.MultiplyRequest{A: pr[0], B: pr[1], ReturnResult: true})
		if err != nil {
			return nil, fmt.Errorf("warmup %v: %w", pr, err)
		}
		golden[pr] = c.Serialize()
		cache := "MISS"
		if resp.Plan.CacheHit {
			cache = "hit"
		}
		warmT.AddRow(pr[0]+"x"+pr[1], resp.Plan.Choice.String(), cache,
			fmt.Sprintf("%d", resp.Batches), fmtS(resp.ModelSeconds),
			fmt.Sprintf("%d", resp.PeakMemBytesPerRank))
	}
	warm, err := cl.Stats()
	if err != nil {
		return nil, err
	}

	// Soak: concurrent clients over the mix; every output must match its
	// golden bytes and no request may add probe work.
	type jobErr struct{ err error }
	var wg sync.WaitGroup
	errc := make(chan jobErr, clients*rounds)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				pr := servicePairs[(c+i)%len(servicePairs)]
				resp, out, err := cl.Multiply(service.MultiplyRequest{A: pr[0], B: pr[1], ReturnResult: true})
				if err != nil {
					errc <- jobErr{fmt.Errorf("client %d round %d %v: %w", c, i, pr, err)}
					return
				}
				if !resp.Plan.CacheHit {
					errc <- jobErr{fmt.Errorf("client %d round %d %v: plan-cache miss after warmup", c, i, pr)}
					return
				}
				if string(out.Serialize()) != string(golden[pr]) {
					errc <- jobErr{fmt.Errorf("client %d round %d %v: output differs from sequential run", c, i, pr)}
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for je := range errc {
		return nil, je.err
	}

	st, err := cl.Stats()
	if err != nil {
		return nil, err
	}
	if st.Probes != warm.Probes {
		return nil, fmt.Errorf("service: soak performed probe work: %d -> %d probes", warm.Probes, st.Probes)
	}

	sumT := rep.NewTable("soak summary",
		"metric", "warmup", "after soak")
	sumT.AddRow("multiplies", fmt.Sprintf("%d", warm.Multiplies), fmt.Sprintf("%d", st.Multiplies))
	sumT.AddRow("plan probes", fmt.Sprintf("%d", warm.Probes), fmt.Sprintf("%d", st.Probes))
	sumT.AddRow("plan hits", fmt.Sprintf("%d", warm.PlanHits), fmt.Sprintf("%d", st.PlanHits))
	sumT.AddRow("plan misses", fmt.Sprintf("%d", warm.PlanMisses), fmt.Sprintf("%d", st.PlanMisses))
	sumT.AddRow("queued jobs", fmt.Sprintf("%d", warm.QueuedJobs), fmt.Sprintf("%d", st.QueuedJobs))
	sumT.AddRow("peak queue depth", fmt.Sprintf("%d", warm.PeakQueued), fmt.Sprintf("%d", st.PeakQueued))
	sumT.Notes = append(sumT.Notes,
		fmt.Sprintf("%d concurrent clients x %d rounds over %d resident pairs, shared budget %d bytes, p=%d on %s",
			clients, rounds, len(servicePairs), st.MemBytes, st.P, st.Machine))

	rep.Finding("%d soak jobs returned bit-identical outputs to the sequential pass", clients*rounds)
	rep.Finding("probe work stayed at %d after warmup: every repeat plan was a cache hit", st.Probes)
	rep.Finding("admission queued %d job(s) (peak depth %d) under the shared budget with no deadlock",
		st.QueuedJobs, st.PeakQueued)
	return rep, nil
}
