package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/planner"
)

// TestPlannerStepNamesMatchCore pins the cross-package contract: the
// planner's step names are the core meter categories, byte for byte.
func TestPlannerStepNamesMatchCore(t *testing.T) {
	if len(planner.Steps) != len(core.Steps) {
		t.Fatalf("planner has %d steps, core has %d", len(planner.Steps), len(core.Steps))
	}
	for i := range core.Steps {
		if planner.Steps[i] != core.Steps[i] {
			t.Errorf("step %d: planner %q, core %q", i, planner.Steps[i], core.Steps[i])
		}
	}
}

// TestPlannerWithinOracle is the planner-vs-oracle property test: on every
// planner-gate shape (the fig-6/fig-8 and hyper-kmers gate workloads, plus
// the sparse×dense tall-skinny shape whose sweep spans the algorithm axis —
// SUMMA vs the 1.5D schedules over every replication factor), the planner's
// top pick must be feasible and within PlanGateTolerance of the exhaustive
// sweep's best modeled critical path.
func TestPlannerWithinOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep is slow in -short mode")
	}
	bad, err := PlanGate(ScaleTiny, PlanGateTolerance)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range bad {
		t.Error(msg)
	}
}

// TestPlanGateCatchesBadPick sanity-checks the gate's teeth: with a
// negative tolerance even the oracle's own best "regresses", so an empty
// violation list cannot be vacuous.
func TestPlanGateCatchesBadPick(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep is slow in -short mode")
	}
	bad, err := PlanGate(ScaleTiny, -0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) == 0 {
		t.Error("a -50% tolerance reported no violations — the gate cannot fail")
	}
}
