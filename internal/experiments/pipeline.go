package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
)

func init() {
	register(&Experiment{
		ID:    "pipeline",
		Title: "Staged vs fully-overlapped schedule (fig 6/8 shapes)",
		Description: "Per-step exposed and hidden communication for the paper's staged schedule " +
			"vs the fully-overlapped one (broadcast prefetch within and across batches, fiber " +
			"AllToAll hidden behind Merge-Layer) on a fig-6 strong-scaling shape and the fig-8 " +
			"symbolic shape.",
		Run: runPipeline,
	})
}

// overlapSteps are the communication steps the overlapped schedule can hide,
// in presentation order.
var overlapSteps = []string{core.StepSymbolic, core.StepABcast, core.StepBBcast, core.StepAllToAll}

// runPipeline compares the two schedules at fixed shapes. The overlapped
// schedule is an ablation of this reproduction (the paper's schedule is
// strictly staged), so the claim restates what the model predicts: outputs
// identical, bytes identical, exposed communication strictly smaller, the
// difference accounted for in the *-Hidden categories.
func runPipeline(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "pipeline",
		Title: "Staged vs fully-overlapped schedule",
		PaperClaim: "The paper's schedule is staged; SpComm3D-style overlap predicts the " +
			"broadcasts and the fiber AllToAll largely hide behind local multiply and merge, " +
			"shrinking exposed communication without changing volume or output.",
	}

	type shape struct {
		name     string
		wl       string
		p, l, b  int
		symbolic bool
	}
	// The fig-6 strong-scaling shape (l=16, multi-batch, symbolic metered)
	// exercises every overlap: within-batch and cross-batch broadcast
	// prefetch plus the fiber exchange. The fig-8 shape isolates the
	// symbolic pass, whose broadcasts dominate.
	shapes := []shape{
		{name: "fig6 shape", wl: WLFriendster, p: 64, l: 16, b: 4, symbolic: true},
		{name: "fig8 shape", wl: WLIsolatesSmall, p: 64, l: 16, b: 1, symbolic: true},
	}
	for _, sh := range shapes {
		a, err := Workload(sh.wl, opts.Scale)
		if err != nil {
			return nil, err
		}
		run := func(pipeline bool) runResult {
			o := opts.coreOpts(core.Options{RunSymbolic: sh.symbolic})
			o.Pipeline = pipeline
			return runMul(a, a, sh.p, sh.l, opts.Machine, 0, sh.b, o)
		}
		staged := run(false)
		if staged.Err != nil {
			return nil, staged.Err
		}
		overlapped := run(true)
		if overlapped.Err != nil {
			return nil, overlapped.Err
		}

		tb := r.NewTable(fmt.Sprintf("%s: %s (A², p=%d, l=%d, b=%d)", sh.name, sh.wl, sh.p, sh.l, sh.b),
			"step", "staged comm s", "overlapped comm s", "hidden s", "hidden share")
		var hidTotal, hidBcast, hidFiber float64
		for _, step := range overlapSteps {
			ss := staged.Summary.Step(step).CommSeconds
			os := overlapped.Summary.Step(step).CommSeconds
			hid := overlapped.Summary.Step(core.HiddenFor(step)).HiddenSeconds
			share := 0.0
			if os+hid > 0 {
				share = hid / (os + hid)
			}
			tb.AddRow(step, fmtS(ss), fmtS(os), fmtS(hid), fmt.Sprintf("%.0f%%", share*100))
			hidTotal += hid
			switch step {
			case core.StepABcast, core.StepBBcast:
				hidBcast += hid
			case core.StepAllToAll:
				hidFiber += hid
			}
		}
		sTot, oTot := commSeconds(staged.Summary), commSeconds(overlapped.Summary)
		tb.AddRow("total", fmtS(sTot), fmtS(oTot), fmtS(hidTotal), "")
		tb.Notes = append(tb.Notes,
			"hidden s ran concurrently with measured compute and is excluded from critical-path totals")

		if oTot < sTot {
			r.Finding("%s (%s): exposed communication fell %.1fx under the overlapped schedule (%s → %s s)",
				sh.name, sh.wl, sTot/maxf(oTot, 1e-12), fmtS(sTot), fmtS(oTot))
		}
		r.Finding("%s (%s): hidden seconds — broadcasts %s, fiber AllToAll %s (both must be nonzero for full overlap)",
			sh.name, sh.wl, fmtS(hidBcast), fmtS(hidFiber))
	}
	return r, nil
}

// hiddenSeconds sums the hidden categories of a summary (used by tests).
func hiddenSeconds(s *mpi.Summary) float64 {
	var t float64
	for _, cat := range core.HiddenSteps {
		t += s.Step(cat).HiddenSeconds
	}
	return t
}
