package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/localmm"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

func init() {
	register(&Experiment{
		ID:          "table2",
		Title:       "Communication complexity of BatchedSUMMA3D steps (metered vs predicted)",
		Description: "Validates Table II: per-step message counts and volumes against the α–β formulas.",
		Run:         runTable2,
	})
	register(&Experiment{
		ID:          "table3",
		Title:       "Computational complexity of BatchedSUMMA3D steps",
		Description: "Validates Table III: flops per process and merge work against the formulas.",
		Run:         runTable3,
	})
	register(&Experiment{
		ID:          "table5",
		Title:       "Statistics of the scaled test matrices",
		Description: "Regenerates Table V for the synthetic analogues (rows, nnz(A), nnz(C), flops).",
		Run:         runTable5,
	})
	register(&Experiment{
		ID:          "table6",
		Title:       "Qualitative impact of l and b on each step",
		Description: "Regenerates Table VI's ↔/↑/↓ matrix from a measured sweep.",
		Run:         runTable6,
	})
	register(&Experiment{
		ID:          "table7",
		Title:       "Local computation: previous (sorted heap/hybrid) vs new (unsorted hash)",
		Description: "Regenerates Table VII: Local-Multiply, Merge-Layer, Merge-Fiber times by kernel generation.",
		Run:         runTable7,
	})
}

func runTable2(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "table2",
		Title: "Communication volumes vs Table II predictions",
		PaperClaim: "A-Bcast volume ∝ b·nnz(A)/√(pl); B-Bcast volume independent of b; " +
			"AllToAll-Fiber volume ≤ β·flops/p per process and independent of b.",
	}
	a, err := Workload(WLEukarya, opts.Scale)
	if err != nil {
		return nil, err
	}
	flops := localmm.Flops(a, a)
	tb := r.NewTable("metered vs predicted (bytes are payload totals across ranks)",
		"p", "l", "b", "step", "messages", "bytes", "pred.bytes", "ratio")
	type cfg struct{ p, l, b int }
	var prevABytes int64
	for _, c := range []cfg{{16, 1, 1}, {16, 1, 4}, {16, 4, 1}, {16, 4, 4}, {64, 4, 2}} {
		rr := runMul(a, a, c.p, c.l, opts.Machine, 0, c.b, opts.coreOpts(core.Options{}))
		if rr.Err != nil {
			return nil, rr.Err
		}
		in := costmodel.TableIIInput{
			P: c.p, L: c.l, B: c.b,
			NnzA: a.NNZ(), NnzB: a.NNZ(), Flops: flops,
			Alpha: 1, Beta: 1, BytesPerNnz: 12, // 12 wire bytes per nnz (4B row + 8B val)
		}
		pred := costmodel.TableII(in)
		for _, row := range pred {
			st := rr.Summary.Step(row.Step)
			// The prediction's "bandwidth seconds" with β=1 and r=12 is the
			// predicted per-process byte count; multiply by participants to
			// compare against summed meter bytes.
			var predBytes float64
			switch row.Step {
			case core.StepABcast, core.StepBBcast:
				predBytes = row.BandwidthSec * float64(c.p)
			case core.StepAllToAll:
				predBytes = row.BandwidthSec * float64(c.p)
			}
			ratio := 0.0
			if predBytes > 0 {
				ratio = float64(st.Bytes) / predBytes
			}
			tb.AddRow(fmt.Sprint(c.p), fmt.Sprint(c.l), fmt.Sprint(c.b), row.Step,
				fmt.Sprint(st.Messages), fmt.Sprint(st.Bytes),
				fmt.Sprintf("%.0f", predBytes), fmt.Sprintf("%.2f", ratio))
		}
		if c.p == 16 && c.l == 1 {
			ab := rr.Summary.Step(core.StepABcast).Bytes
			if c.b == 1 {
				prevABytes = ab
			} else if prevABytes > 0 {
				r.Finding("A-Bcast bytes grew %.1fx when b went 1→4 at p=16,l=1 (Table II predicts 4x)",
					float64(ab)/float64(prevABytes))
			}
		}
	}
	tb.Notes = append(tb.Notes,
		"predictions use nnz-only payloads; metered bytes include CSC headers and column pointers, so ratios modestly exceed 1",
		"AllToAll-Fiber prediction is the paper's loose flops/p bound; measured is smaller (compression), as Sec. IV-C notes")
	return r, nil
}

func runTable3(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "table3",
		Title: "Computation per process vs Table III",
		PaperClaim: "Local-Multiply does flops/p work in total regardless of l and b; " +
			"merge work grows with lg(p/l) (layer) and lg(l) (fiber).",
	}
	a, err := Workload(WLEukarya, opts.Scale)
	if err != nil {
		return nil, err
	}
	flops := localmm.Flops(a, a)
	tb := r.NewTable("flops accounting", "p", "l", "b", "Σ rank flops", "flops (exact)", "max rank flops", "flops/p", "imbalance")
	for _, c := range []struct{ p, l, b int }{{16, 1, 1}, {16, 4, 2}, {64, 4, 1}, {64, 16, 4}} {
		rr := runMul(a, a, c.p, c.l, opts.Machine, 0, c.b, opts.coreOpts(core.Options{}))
		if rr.Err != nil {
			return nil, rr.Err
		}
		var sum, max int64
		for _, res := range rr.Results {
			sum += res.LocalFlops
			if res.LocalFlops > max {
				max = res.LocalFlops
			}
		}
		perP := float64(flops) / float64(c.p)
		tb.AddRow(fmt.Sprint(c.p), fmt.Sprint(c.l), fmt.Sprint(c.b),
			fmt.Sprint(sum), fmt.Sprint(flops), fmt.Sprint(max),
			fmt.Sprintf("%.0f", perP), fmt.Sprintf("%.2f", float64(max)/perP))
		if sum != flops {
			r.Finding("WARNING: flop conservation violated at p=%d l=%d b=%d", c.p, c.l, c.b)
		}
	}
	r.Finding("Σ over ranks of local flops equals the exact serial flop count in every configuration (Table III row 1)")
	mt := r.NewTable("merge work (nonzeros processed)", "p", "l", "b", "unmerged Σnnz", "after Merge-Layer", "nnz(C)")
	for _, c := range []struct{ p, l, b int }{{16, 1, 1}, {16, 4, 2}, {64, 16, 4}} {
		rr := runMul(a, a, c.p, c.l, opts.Machine, 0, c.b, opts.coreOpts(core.Options{}))
		if rr.Err != nil {
			return nil, rr.Err
		}
		var un, ml int64
		for _, res := range rr.Results {
			un += res.UnmergedNNZ
			ml += res.MergedLayerNNZ
		}
		nnzC := localmm.SymbolicSpGEMM(a, a)
		mt.AddRow(fmt.Sprint(c.p), fmt.Sprint(c.l), fmt.Sprint(c.b),
			fmt.Sprint(un), fmt.Sprint(ml), fmt.Sprint(nnzC))
	}
	r.Finding("flops ≥ Σ nnz(D(k)) ≥ nnz(C) (Eq 1) holds in every configuration")
	return r, nil
}

func runTable5(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "table5",
		Title: "Scaled analogues of the paper's test matrices",
		PaperClaim: "All inputs satisfy nnz(C) > nnz(A)+nnz(B) except Rice-kmers, " +
			"whose AAᵀ stays ≈ nnz(A) (so it never needs batching).",
	}
	tb := r.NewTable("Table V analogues", "Matrix", "product", "rows", "cols", "nnz(A)", "nnz(C)", "flops", "cf", "nnz(C)/nnz(A)")
	var riceRatio, protRatio float64
	for _, name := range WorkloadNames {
		a, err := Workload(name, opts.Scale)
		if err != nil {
			return nil, err
		}
		b := a
		prod := "AA"
		if a.Rows != a.Cols {
			b = spmat.Transpose(a)
			prod = "AAT"
		}
		nnzC := localmm.SymbolicSpGEMM(a, b)
		fl := localmm.Flops(a, b)
		cf := 0.0
		if nnzC > 0 {
			cf = float64(fl) / float64(nnzC)
		}
		growth := float64(nnzC) / float64(a.NNZ())
		tb.AddRow(name, prod, fmt.Sprint(a.Rows), fmt.Sprint(a.Cols),
			fmt.Sprint(a.NNZ()), fmt.Sprint(nnzC), fmt.Sprint(fl),
			fmt.Sprintf("%.2f", cf), fmt.Sprintf("%.1f", growth))
		switch name {
		case WLRiceKmers:
			riceRatio = growth
		case WLIsolatesSmall:
			protRatio = growth
		}
	}
	r.Finding("protein networks expand strongly under squaring (Isolates-small nnz(C)/nnz(A) = %.1f)", protRatio)
	r.Finding("Rice-kmers stays lean (nnz(AAT)/nnz(A) = %.2f), matching the paper's b=1 regime", riceRatio)
	return r, nil
}

func runTable6(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "table6",
		Title: "Qualitative impact of increasing l (fixed b) and b (fixed l)",
		PaperClaim: "b↑: A-Bcast ↑, B-Bcast ↔, Local-Multiply ↔, Merge-Layer ↔, " +
			"Merge-Fiber ↔, AllToAll ↔. l↑: A-Bcast ↓, B-Bcast ↓, Local-Multiply ↓, " +
			"Merge-Layer ↔, Merge-Fiber ↑, AllToAll ↑.",
	}
	a, err := Workload(WLFriendster, opts.Scale)
	if err != nil {
		return nil, err
	}
	const p = 64
	machine := opts.Machine
	base := runMul(a, a, p, 4, machine, 0, 2, opts.coreOpts(core.Options{}))
	moreB := runMul(a, a, p, 4, machine, 0, 8, opts.coreOpts(core.Options{}))
	moreL := runMul(a, a, p, 16, machine, 0, 2, opts.coreOpts(core.Options{}))
	for _, rr := range []runResult{base, moreB, moreL} {
		if rr.Err != nil {
			return nil, rr.Err
		}
	}
	// Communication steps compare modeled volume (bytes are deterministic);
	// computation steps compare measured time with a noise band.
	arrowBytes := func(x, y int64) string { return arrow(float64(x), float64(y), 0.15) }
	arrowTime := func(x, y float64) string { return arrow(x, y, 0.35) }
	tb := r.NewTable("measured directions (base p=64, l=4, b=2)",
		"step", "b 2→8 (fixed l)", "paper", "l 4→16 (fixed b)", "paper")
	paperB := map[string]string{
		core.StepABcast: "↑", core.StepBBcast: "↔", core.StepLocalMult: "↔",
		core.StepMergeLayer: "↔", core.StepMergeFiber: "↔", core.StepAllToAll: "↔",
	}
	paperL := map[string]string{
		core.StepABcast: "↓", core.StepBBcast: "↓", core.StepLocalMult: "↓",
		core.StepMergeLayer: "↔", core.StepMergeFiber: "↑", core.StepAllToAll: "↑",
	}
	match := 0
	total := 0
	for _, step := range []string{core.StepABcast, core.StepBBcast, core.StepLocalMult,
		core.StepMergeLayer, core.StepMergeFiber, core.StepAllToAll} {
		var dB, dL string
		switch step {
		case core.StepABcast, core.StepBBcast, core.StepAllToAll:
			dB = arrowBytes(base.Summary.Step(step).Bytes, moreB.Summary.Step(step).Bytes)
			dL = arrowBytes(base.Summary.Step(step).Bytes, moreL.Summary.Step(step).Bytes)
		default:
			dB = arrowTime(base.Summary.Step(step).ComputeSeconds, moreB.Summary.Step(step).ComputeSeconds)
			dL = arrowTime(base.Summary.Step(step).ComputeSeconds, moreL.Summary.Step(step).ComputeSeconds)
		}
		tb.AddRow(step, dB, paperB[step], dL, paperL[step])
		if dB == paperB[step] {
			match++
		}
		if dL == paperL[step] {
			match++
		}
		total += 2
	}
	r.Finding("%d of %d measured directions match Table VI (timing-based cells carry noise at this scale)", match, total)
	return r, nil
}

// arrow classifies y relative to x with a relative tolerance band.
func arrow(x, y, tol float64) string {
	if x == 0 && y == 0 {
		return "↔"
	}
	if x == 0 {
		return "↑"
	}
	rel := (y - x) / x
	switch {
	case rel > tol:
		return "↑"
	case rel < -tol:
		return "↓"
	default:
		return "↔"
	}
}

func runTable7(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "table7",
		Title: "Local computation improvements (previous vs new kernels)",
		PaperClaim: "Merge-Layer and Merge-Fiber improve by an order of magnitude with " +
			"unsorted hash merging; Local-Multiply improves up to ~30% with more layers.",
	}
	a, err := Workload(WLIsolatesSmall, opts.Scale)
	if err != nil {
		return nil, err
	}
	const p = 16
	tb := r.NewTable("seconds (max over ranks, measured)",
		"layers", "LocalMult prev", "LocalMult now", "MergeLayer prev", "MergeLayer now",
		"MergeFiber prev", "MergeFiber now")
	var speedups []float64
	for _, l := range []int{1, 4, 16} {
		prev := runMul(a, a, p, l, opts.Machine, 0, 1, opts.coreOpts(core.Options{
			Kernel: localmm.KernelHybrid, Merger: localmm.MergerHeap,
			Semiring: semiring.PlusTimes(),
		}))
		now := runMul(a, a, p, l, opts.Machine, 0, 1, opts.coreOpts(core.Options{
			Kernel: localmm.KernelHashUnsorted, Merger: localmm.MergerHash,
			Semiring: semiring.PlusTimes(),
		}))
		if prev.Err != nil {
			return nil, prev.Err
		}
		if now.Err != nil {
			return nil, now.Err
		}
		pm := prev.Summary.Step(core.StepLocalMult).ComputeSeconds
		nm := now.Summary.Step(core.StepLocalMult).ComputeSeconds
		pl := prev.Summary.Step(core.StepMergeLayer).ComputeSeconds
		nl := now.Summary.Step(core.StepMergeLayer).ComputeSeconds
		pf := prev.Summary.Step(core.StepMergeFiber).ComputeSeconds
		nf := now.Summary.Step(core.StepMergeFiber).ComputeSeconds
		tb.AddRow(fmt.Sprint(l), fmtS(pm), fmtS(nm), fmtS(pl), fmtS(nl), fmtS(pf), fmtS(nf))
		if nl > 0 {
			speedups = append(speedups, pl/nl)
		}
	}
	if len(speedups) > 0 {
		mx := speedups[0]
		for _, s := range speedups {
			if s > mx {
				mx = s
			}
		}
		r.Finding("Merge-Layer speedup from sort-free hash merging reaches %.1fx (paper: ~10x at scale)", mx)
	}
	tb.Notes = append(tb.Notes, "'prev' = hybrid kernel + heap merge (all sorted); 'now' = unsorted hash kernel + hash merge")
	return r, nil
}
