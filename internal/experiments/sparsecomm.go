package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
)

func init() {
	register(&Experiment{
		ID:    "sparsecomm",
		Title: "Column-subset A-broadcast vs full-block broadcast (fig 6 + Rice-kmers shapes)",
		Description: "Ablation of the sparse-communication knob: the SUMMA A-broadcast either " +
			"ships every receiver the full local block (off, the published-figure default) or " +
			"a column-subset payload restricted to the columns that receiver's multiply " +
			"actually touches (on), with auto deciding per stage from the α–β model. Outputs " +
			"are bit-identical in all three modes; modeled A-Broadcast bytes and comm seconds " +
			"drop on the hypersparse Rice-kmers shape where most broadcast columns go unused.",
		Run: runSparseComm,
	})
}

// runSparseComm compares the three sparse-communication settings at fixed
// shapes: one dense-ish fig-6 shape where subsets rarely pay for the extra
// latency, and the hypersparse Rice-kmers AAᵀ shape where they do.
func runSparseComm(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "sparsecomm",
		Title: "Column-subset A-broadcast",
		PaperClaim: "At scale most of a broadcast A-block's columns are dead weight for any " +
			"single receiver: only the columns matching the nonzero rows of that receiver's " +
			"B block contribute flops. Restricting the A payload to that column subset trades " +
			"one broadcast for q−1 point-to-point sends, which wins exactly when the α–β " +
			"model says the volume saved outweighs the extra latency — hypersparse inputs, " +
			"never the dense shapes.",
	}

	modes := []mpi.SparseMode{mpi.SparseOff, mpi.SparseAuto, mpi.SparseOn}

	type shape struct {
		name    string
		wl      string
		p, l, b int
	}
	shapes := []shape{
		{name: "fig6 shape", wl: WLFriendster, p: 64, l: 16, b: 4},
		{name: "kmers shape", wl: WLRiceKmers, p: 64, l: 16, b: 2},
	}
	for _, sh := range shapes {
		wl, err := Workload(sh.wl, opts.Scale)
		if err != nil {
			return nil, err
		}
		a, b := PairFor(wl)

		tb := r.NewTable(fmt.Sprintf("%s: %s (p=%d, l=%d, b=%d)", sh.name, sh.wl, sh.p, sh.l, sh.b),
			"sparse-comm", "A-bcast bytes", "A-bcast msgs", "A-bcast comm s", "total bytes", "total comm s")
		results := make(map[mpi.SparseMode]runResult)
		for _, m := range modes {
			o := opts.coreOpts(core.Options{RunSymbolic: true})
			o.SparseComm = m
			rr := runMul(a, b, sh.p, sh.l, opts.Machine, 0, sh.b, o)
			if rr.Err != nil {
				return nil, fmt.Errorf("%s sparse-comm %v: %w", sh.name, m, rr.Err)
			}
			results[m] = rr
			ab := rr.Summary.Step(core.StepABcast)
			var bytes int64
			for _, step := range core.Steps {
				bytes += rr.Summary.Step(step).Bytes
			}
			tb.AddRow(m.String(), fmt.Sprintf("%d", ab.Bytes), fmt.Sprintf("%d", ab.Messages),
				fmtS(ab.CommSeconds), fmt.Sprintf("%d", bytes), fmtS(commSeconds(rr.Summary)))
		}

		abOf := func(m mpi.SparseMode) mpi.StepStats {
			return results[m].Summary.Step(core.StepABcast)
		}
		off, auto := abOf(mpi.SparseOff), abOf(mpi.SparseAuto)
		switch {
		case auto.Bytes < off.Bytes:
			r.Finding("%s: auto cuts A-Broadcast volume %.1f%% (%d → %d bytes) and comm time "+
				"%.1f%% — the subset payloads win under the α–β model", sh.name,
				100*float64(off.Bytes-auto.Bytes)/float64(off.Bytes), off.Bytes, auto.Bytes,
				100*(off.CommSeconds-auto.CommSeconds)/off.CommSeconds)
		case auto.Bytes == off.Bytes:
			r.Finding("%s: auto keeps the full-block broadcast everywhere — subset sends never "+
				"beat the tree broadcast at this density", sh.name)
		default:
			r.Finding("%s: UNEXPECTED: auto moved more A-Broadcast bytes than off (%d vs %d)",
				sh.name, auto.Bytes, off.Bytes)
		}
		if on := abOf(mpi.SparseOn); on.CommSeconds > auto.CommSeconds*(1+1e-12) {
			r.Finding("%s: forcing subsets everywhere (on) costs %.1f%% more A-Broadcast comm "+
				"time than auto — the per-stage α–β decision matters", sh.name,
				100*(on.CommSeconds-auto.CommSeconds)/auto.CommSeconds)
		}
	}
	return r, nil
}
