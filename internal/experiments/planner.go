package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/grid"
	"repro/internal/localmm"
	"repro/internal/mpi"
	"repro/internal/planner"
	"repro/internal/service"
	"repro/internal/spmat"
)

// This file scores the analytical planner against ground truth: an
// exhaustive oracle sweep over l × b × format × pipeline × sparse-comm on
// the perf-gate workloads — plus, for the sparse×dense shape, the algorithm
// axis (densified SUMMA vs the 1.5D ColA/InnerABC schedules over every
// replication factor) — under the same deterministic objective the CI
// gate uses
// (per-step max-over-ranks α–β communication plus total work units at the
// pinned rate). Pipelined points are scored by applying the shared
// overlap-ledger model (planner.Overlap) to the staged run's deterministic
// step costs — the measured hidden share depends on wall-clock compute and
// would make the comparison machine-dependent.

// PlanGateTolerance is how far (relative) the planner's pick may sit above
// the oracle sweep's best modeled critical path before the planner gate
// fails.
const PlanGateTolerance = 0.10

// planShape pins one planner-gate point: a gate workload and the batch
// count whose memory regime the budget reproduces (wantB = 1 means
// unconstrained).
type planShape struct {
	name  string
	wl    string
	p     int
	wantB int
}

// planShapes are the fig-6/fig-8 and hyper-kmers gate workloads.
var planShapes = []planShape{
	{name: "fig6-friendster", wl: WLFriendster, p: 64, wantB: 4},
	{name: "fig8-symbolic", wl: WLIsolatesSmall, p: 64, wantB: 1},
	{name: "hyper-kmers", wl: WLRiceKmers, p: 64, wantB: 2},
}

// densePlanShapes extend the planner gate along the sparse×dense algorithm
// axis: the spmm gate workload multiplied by a tall-skinny feature panel,
// where the planner must choose the algorithm family (densified SUMMA vs the
// 1.5D schedules) on top of its parameters. Staged-only on both sides — the
// oracle scores real runs under the deterministic gate objective, which
// pipelined schedules would make machine-dependent.
type densePlanShape struct {
	name string
	p    int
	d    int32
}

var densePlanShapes = []densePlanShape{
	{name: "spmm-tallskinny", p: 16, d: 8},
}

// oracleEntry is one swept configuration's deterministic modeled outcome.
type oracleEntry struct {
	Cfg          planner.Config
	CommSeconds  float64
	WorkUnits    int64
	ModelSeconds float64
	// Feasible is false when the configuration's batch count is below what
	// the real distributed symbolic decision (Alg 3) requires under the
	// budget.
	Feasible bool
	// Steps carries the per-step (comm seconds, work units) of the staged
	// run this entry derives from, keyed by step name.
	Steps map[string]stepPair
}

// stepPair bundles one step's deterministic cost pair.
type stepPair struct {
	Comm float64
	Work int64
}

// planOracle exhaustively sweeps l × b × format × sparse-comm with real
// staged runs and derives each point's pipelined twin through the shared
// overlap model.
// Feasibility under mem comes from the real symbolic decision per
// (l, format), and that decision's own b joins the sweep — the smallest
// feasible batch count is also the best feasible one (batches only add
// A-broadcast volume), so the true optimum is always a swept point.
func planOracle(a, b *spmat.CSC, p int, machine costmodel.Machine, mem int64, bSet []int) ([]oracleEntry, error) {
	allreduce := 4 * machine.CommScale * machine.Cost().AllreduceCost(p, 8)
	var out []oracleEntry
	for _, l := range planner.LayersFor(p) {
		q, err := grid.SideFor(p, l)
		if err != nil {
			return nil, err
		}
		for _, f := range []spmat.Format{spmat.FormatCSC, spmat.FormatDCSC, spmat.FormatAuto} {
			// The real batch decision under the budget: the floor every
			// feasible b must meet.
			minB := 1
			feasibleAtAll := true
			if mem > 0 {
				nb, err := core.SymbolicBatches(a, b, core.RunConfig{
					P: p, L: l, Cost: machine.Cost(),
					Opts: core.Options{MemBytes: mem, RunSymbolic: true, Format: f},
				})
				if err != nil {
					feasibleAtAll = false
				} else {
					minB = nb
				}
			}
			localBSet := bSet
			if feasibleAtAll && minB > 1 && !containsInt(bSet, minB) {
				localBSet = append(append([]int(nil), bSet...), minB)
				sort.Ints(localBSet)
			}
			for _, bv := range localBSet {
				for _, sm := range []mpi.SparseMode{mpi.SparseOff, mpi.SparseAuto} {
					rr := runMul(a, b, p, l, machine, 0, bv,
						core.Options{RunSymbolic: true, Format: f, SparseComm: sm})
					if rr.Err != nil {
						return nil, fmt.Errorf("oracle l=%d b=%d %v %v: %w", l, bv, f, sm, rr.Err)
					}
					steps := make(map[string]stepPair, len(core.Steps))
					var work int64
					var comm float64
					for _, step := range core.Steps {
						st := rr.Summary.Step(step)
						steps[step] = stepPair{Comm: st.CommSeconds, Work: st.WorkUnits}
						work += st.WorkUnits
						comm += st.CommSeconds
					}
					feasible := feasibleAtAll && bv >= minB
					staged := oracleEntry{
						Cfg:          planner.Config{L: l, B: bv, Format: f, SparseComm: sm},
						CommSeconds:  comm,
						WorkUnits:    work,
						ModelSeconds: comm + float64(work)*GateSecPerWorkUnit,
						Feasible:     feasible,
						Steps:        steps,
					}
					out = append(out, staged,
						pipelinedEntry(staged, p, q, allreduce, 1),
						pipelinedEntry(staged, p, q, allreduce, 2))
				}
			}
		}
	}
	return out, nil
}

// denseOracleEntry is one swept sparse×dense configuration's outcome.
type denseOracleEntry struct {
	Cfg          planner.DenseConfig
	CommSeconds  float64
	WorkUnits    int64
	ModelSeconds float64
}

// denseOracle exhaustively sweeps the sparse×dense configuration space with
// real staged runs — SUMMA over l × b plus both 1.5D schedules over c × b —
// scored under the gate objective. Every point is feasible (the dense shape
// runs unconstrained, the b = 1 memory regime).
func denseOracle(a *spmat.CSC, panel *spmat.DenseMat, p int, machine costmodel.Machine, bSet []int) ([]denseOracleEntry, error) {
	type armPoint struct {
		algo core.Algo
		name string
		l, c int
	}
	var points []armPoint
	for _, l := range planner.LayersFor(p) {
		points = append(points, armPoint{algo: core.AlgoSUMMA, name: planner.DenseAlgoSUMMA, l: l})
	}
	for _, c := range planner.ReplicationsFor(p) {
		points = append(points,
			armPoint{algo: core.AlgoColA, name: planner.DenseAlgoColA, l: 1, c: c},
			armPoint{algo: core.AlgoInnerABC, name: planner.DenseAlgoInnerABC, l: 1, c: c})
	}
	var out []denseOracleEntry
	for _, pt := range points {
		for _, bv := range bSet {
			rr := runSpMM(a, panel, p, pt.l, machine, pt.algo, pt.c, bv, core.Options{})
			if rr.Err != nil {
				return nil, fmt.Errorf("dense oracle %s l=%d c=%d b=%d: %w", pt.name, pt.l, pt.c, bv, rr.Err)
			}
			var work int64
			var comm float64
			for _, step := range core.Steps {
				st := rr.Summary.Step(step)
				work += st.WorkUnits
				comm += st.CommSeconds
			}
			cfg := planner.DenseConfig{Algo: pt.name, B: bv}
			if pt.algo == core.AlgoSUMMA {
				cfg.L = pt.l
			} else {
				cfg.C = pt.c
			}
			out = append(out, denseOracleEntry{
				Cfg:          cfg,
				CommSeconds:  comm,
				WorkUnits:    work,
				ModelSeconds: comm + float64(work)*GateSecPerWorkUnit,
			})
		}
	}
	return out, nil
}

// denseOracleBest returns the lowest-scoring entry, or nil.
func denseOracleBest(entries []denseOracleEntry) *denseOracleEntry {
	var best *denseOracleEntry
	for i := range entries {
		if best == nil || entries[i].ModelSeconds < best.ModelSeconds {
			best = &entries[i]
		}
	}
	return best
}

// denseOracleFind returns the entry matching cfg, or nil.
func denseOracleFind(entries []denseOracleEntry, cfg planner.DenseConfig) *denseOracleEntry {
	for i := range entries {
		if entries[i].Cfg == cfg {
			return &entries[i]
		}
	}
	return nil
}

// densePlanFor runs the sparse×dense planner on a prepared dense shape,
// staged-only under the gate's pinned work-unit rate, mirroring planFor.
func densePlanFor(a *spmat.CSC, d int32, p int, machine costmodel.Machine) (*planner.DensePlan, error) {
	return planner.NewDense(a, d, planner.DenseInput{
		P: p, Machine: machine, SecPerWork: GateSecPerWorkUnit,
		Pipelines: []bool{false},
	})
}

// containsInt reports whether xs contains v.
func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// pipelinedEntry derives the pipelined twin of a staged oracle point under k
// overlap channels by applying the shared overlap-ledger model to its
// deterministic step costs, with per-rank compute valued at the pinned work
// rate. allreduce is the symbolic step's blocking-Allreduce share, excluded
// from the hideable broadcast cost exactly as the planner's own transform
// excludes it. k ≤ 1 keeps Config.Channels at the zero value so the swept
// space matches the planner's spellings exactly.
func pipelinedEntry(staged oracleEntry, p, q int, allreduce float64, k int) oracleEntry {
	perRank := func(step string) float64 {
		return float64(staged.Steps[step].Work) * GateSecPerWorkUnit / float64(p)
	}
	symBcast := staged.Steps[core.StepSymbolic].Comm - allreduce
	if symBcast < 0 {
		symBcast = 0
	}
	o := planner.Overlap{
		Q: q, B: staged.Cfg.B, L: staged.Cfg.L, K: k,
		Symbolic:          true,
		CommSymbolicBcast: symBcast,
		CommABcast:        staged.Steps[core.StepABcast].Comm,
		CommBBcast:        staged.Steps[core.StepBBcast].Comm,
		CommFiber:         staged.Steps[core.StepAllToAll].Comm,
		CompSymbolic:      perRank(core.StepSymbolic),
		CompMultiply:      perRank(core.StepLocalMult),
		CompMergeLayer:    perRank(core.StepMergeLayer),
	}
	hSym, hA, hB, hFiber := o.Hidden()
	hidden := hSym + hA + hB + hFiber
	out := staged
	out.Cfg.Pipeline = true
	if k >= 2 {
		out.Cfg.Channels = k
	}
	out.CommSeconds = staged.CommSeconds - hidden
	out.ModelSeconds = out.CommSeconds + float64(out.WorkUnits)*GateSecPerWorkUnit
	return out
}

// oracleBest returns the best feasible entry, or nil.
func oracleBest(entries []oracleEntry) *oracleEntry {
	var best *oracleEntry
	for i := range entries {
		e := &entries[i]
		if !e.Feasible {
			continue
		}
		if best == nil || e.ModelSeconds < best.ModelSeconds {
			best = e
		}
	}
	return best
}

// oracleFind returns the entry matching cfg, or nil.
func oracleFind(entries []oracleEntry, cfg planner.Config) *oracleEntry {
	for i := range entries {
		if entries[i].Cfg == cfg {
			return &entries[i]
		}
	}
	return nil
}

// planShapeInputs prepares one planner-gate shape: operands, machine, and
// the memory budget reproducing the shape's batch regime.
func planShapeInputs(sh planShape, sc Scale) (a, b *spmat.CSC, machine costmodel.Machine, mem int64, err error) {
	wl, err := Workload(sh.wl, sc)
	if err != nil {
		return nil, nil, costmodel.Machine{}, 0, err
	}
	a, b = PairFor(wl)
	machine = costmodel.CoriKNL().ScaledBeta(commAmplification(sc))
	if sh.wantB > 1 {
		mem = memoryForBatches(a, b, sh.p, 16, sh.wantB, 24)
	}
	return a, b, machine, mem, nil
}

// planFor runs the planner on a prepared shape, with the gate's pinned
// work-unit rate so planner scores and oracle scores share the objective.
func planFor(a, b *spmat.CSC, p int, machine costmodel.Machine, mem int64) (*planner.Plan, error) {
	return planner.New(a, b, planGateInput(p, machine, mem))
}

// planGateInput is the planner input the gate shapes use — shared with the
// cached-plan pass so its cache keys describe the same decision.
func planGateInput(p int, machine costmodel.Machine, mem int64) planner.Input {
	return planner.Input{
		P:           p,
		MemBytes:    mem,
		Machine:     machine,
		Symbolic:    true,
		SecPerWork:  GateSecPerWorkUnit,
		SparseComms: []mpi.SparseMode{mpi.SparseOff, mpi.SparseAuto},
		// Sweep the overlap channel axis like the runtime autotune does;
		// the oracle derives a k=2 twin for every pipelined point so the
		// pick stays covered.
		Channels: []int{1, 2},
	}
}

// oracleBSet is the batch sweep of the oracle, always including the
// planner's induced pick so the pick can be scored.
func oracleBSet(pick int) []int {
	set := map[int]bool{1: true, 2: true, 4: true, 8: true}
	if pick > 0 {
		set[pick] = true
	}
	var out []int
	for b := range set {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// PlanGate scores the planner's pick against the exhaustive oracle on every
// planner-gate shape and returns one message per violation (empty = gate
// passes): a missing or infeasible pick, or a pick whose modeled critical
// path exceeds the oracle's best by more than tol.
func PlanGate(sc Scale, tol float64) ([]string, error) {
	var bad []string
	planCache := service.NewPlanCache()
	for _, sh := range planShapes {
		a, b, machine, mem, err := planShapeInputs(sh, sc)
		if err != nil {
			return nil, err
		}
		pl, err := planFor(a, b, sh.p, machine, mem)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.name, err)
		}
		pick := pl.Best()
		if pick == nil {
			bad = append(bad, fmt.Sprintf("%s: planner found no feasible configuration", sh.name))
			continue
		}
		entries, err := planOracle(a, b, sh.p, machine, mem, oracleBSet(pick.B))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.name, err)
		}
		best := oracleBest(entries)
		if best == nil {
			bad = append(bad, fmt.Sprintf("%s: oracle found no feasible configuration", sh.name))
			continue
		}
		got := oracleFind(entries, pick.Config)
		if got == nil {
			bad = append(bad, fmt.Sprintf("%s: pick %s not covered by the oracle sweep", sh.name, pick.Config))
			continue
		}
		if !got.Feasible {
			bad = append(bad, fmt.Sprintf("%s: pick %s is infeasible under the budget (real symbolic decision needs more batches)",
				sh.name, pick.Config))
			continue
		}
		if limit := best.ModelSeconds * (1 + tol); got.ModelSeconds > limit {
			bad = append(bad, fmt.Sprintf("%s: pick %s models %.6g s, oracle best %s models %.6g s — %.1f%% above (tolerance %.0f%%)",
				sh.name, pick.Config, got.ModelSeconds, best.Cfg, best.ModelSeconds,
				100*(got.ModelSeconds/best.ModelSeconds-1), 100*tol))
		}

		// Cached-plan pass: the same decision served through the service's
		// plan cache must miss exactly once, hit on the replan, and return
		// the identical pick — so the cached path inherits the oracle bound
		// just established for the fresh one.
		key := planner.CacheKey(spmat.FingerprintOf(a).Key(), spmat.FingerprintOf(b).Key(),
			planGateInput(sh.p, machine, mem))
		fresh := pick.Choice()
		for pass, wantHit := range []bool{false, true} {
			cached, hit, err := planCache.PlanThrough(key, func() (planner.Choice, error) { return fresh, nil })
			if err != nil {
				return nil, err
			}
			if hit != wantHit {
				bad = append(bad, fmt.Sprintf("%s: cached-plan pass %d: cache hit=%v, want %v", sh.name, pass+1, hit, wantHit))
			}
			if cached != fresh {
				bad = append(bad, fmt.Sprintf("%s: cached plan %s differs from fresh pick %s", sh.name, cached, fresh))
			}
		}
	}
	for _, sh := range densePlanShapes {
		a := SpMMGraph(sc)
		panel := PanelFor(a, sh.d)
		machine := costmodel.CoriKNL().ScaledBeta(commAmplification(sc))
		pl, err := densePlanFor(a, sh.d, sh.p, machine)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.name, err)
		}
		pick := pl.Best()
		if pick == nil {
			bad = append(bad, fmt.Sprintf("%s: planner found no feasible configuration", sh.name))
			continue
		}
		entries, err := denseOracle(a, panel, sh.p, machine, oracleBSet(pick.B))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.name, err)
		}
		best := denseOracleBest(entries)
		got := denseOracleFind(entries, pick.DenseConfig)
		if got == nil {
			bad = append(bad, fmt.Sprintf("%s: pick %s not covered by the oracle sweep", sh.name, pick.DenseConfig))
			continue
		}
		if limit := best.ModelSeconds * (1 + tol); got.ModelSeconds > limit {
			bad = append(bad, fmt.Sprintf("%s: pick %s models %.6g s, oracle best %s models %.6g s — %.1f%% above (tolerance %.0f%%)",
				sh.name, pick.DenseConfig, got.ModelSeconds, best.Cfg, best.ModelSeconds,
				100*(got.ModelSeconds/best.ModelSeconds-1), 100*tol))
		}
	}
	return bad, nil
}

func init() {
	register(&Experiment{
		ID:    "planner",
		Title: "analytical autotuner vs exhaustive oracle sweep",
		Description: "Scores the planner's analytically chosen configuration (layers, batches, " +
			"format, pipeline, sparse-comm) against an exhaustive " +
			"l × b × format × pipeline × sparse-comm sweep on the perf-gate workloads, under " +
			"the gate's deterministic modeled objective. The sparse×dense tall-skinny shape " +
			"adds the algorithm axis: SUMMA vs the 1.5D schedules across replication factors. " +
			"Also shows the pick's predicted per-step breakdown next to the measured one.",
		Run: runPlannerExperiment,
	})
}

// runPlannerExperiment renders the planner-vs-oracle comparison.
func runPlannerExperiment(opts RunOpts) (*Report, error) {
	r := &Report{
		ID:    "planner",
		Title: "analytical autotuner vs exhaustive oracle sweep",
		PaperClaim: "The paper picks l and b by sweeping (Figs 4, 6, 8); an α–β cost model over " +
			"cheap input statistics should be able to pick them analytically (cf. Azad et al.'s " +
			"multi-level 3D SpGEMM model), within a few percent of the swept optimum.",
	}
	for _, sh := range planShapes {
		a, b, machine, mem, err := planShapeInputs(sh, opts.Scale)
		if err != nil {
			return nil, err
		}
		pl, err := planFor(a, b, sh.p, machine, mem)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.name, err)
		}
		pick := pl.Best()
		if pick == nil {
			return nil, fmt.Errorf("%s: planner found no feasible configuration", sh.name)
		}
		entries, err := planOracle(a, b, sh.p, machine, mem, oracleBSet(pick.B))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.name, err)
		}
		best := oracleBest(entries)
		got := oracleFind(entries, pick.Config)
		if best == nil || got == nil {
			return nil, fmt.Errorf("%s: oracle sweep cannot score the pick", sh.name)
		}

		// Leaderboard: the oracle's feasible points, best first.
		feasible := make([]oracleEntry, 0, len(entries))
		for _, e := range entries {
			if e.Feasible {
				feasible = append(feasible, e)
			}
		}
		sort.Slice(feasible, func(x, y int) bool { return feasible[x].ModelSeconds < feasible[y].ModelSeconds })
		tb := r.NewTable(fmt.Sprintf("%s (p=%d, M=%s): oracle top 5 vs planner pick", sh.name, sh.p, fmtMem(mem)),
			"rank", "config", "model s", "comm s", "work units", "planner pick")
		show := len(feasible)
		if show > 5 {
			show = 5
		}
		for i := 0; i < show; i++ {
			e := feasible[i]
			mark := ""
			if e.Cfg == pick.Config {
				mark = "◀ pick"
			}
			tb.AddRow(fmt.Sprintf("%d", i+1), e.Cfg.String(), fmtS(e.ModelSeconds),
				fmtS(e.CommSeconds), fmt.Sprintf("%d", e.WorkUnits), mark)
		}
		gap := 100 * (got.ModelSeconds/best.ModelSeconds - 1)
		tb.Notes = append(tb.Notes, fmt.Sprintf(
			"planner pick %s: modeled %.6g s, %.2f%% above oracle best %s (%d configurations swept)",
			pick.Config, got.ModelSeconds, gap, best.Cfg, len(entries)))

		// Predicted vs measured per-step breakdown of the pick's staged
		// twin: the oracle's per-step measurements come from the staged run
		// (the pipelined exposure split depends on wall-clock compute), so
		// the predictor-quality audit compares staged against staged.
		stagedCfg := pick.Config
		stagedCfg.Pipeline = false
		pred, err := pl.Evaluate(stagedCfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.name, err)
		}
		pb := r.NewTable(fmt.Sprintf("%s: pick %s (staged twin) — predicted vs measured per step", sh.name, pick.Config),
			"step", "comm s (pred)", "comm s (meas)", "work (pred)", "work (meas)")
		for _, step := range core.Steps {
			ps := pred.Step(step)
			ms := got.Steps[step]
			pb.AddRow(step, fmtS(ps.CommSeconds), fmtS(ms.Comm),
				fmt.Sprintf("%d", ps.WorkUnits), fmt.Sprintf("%d", ms.Work))
		}

		r.Finding("%s: planner pick %s is %.2f%% above the oracle best %s on the modeled critical path",
			sh.name, pick.Config, gap, best.Cfg)
	}

	// The sparse×dense shape: the pick must also choose the algorithm family.
	for _, sh := range densePlanShapes {
		a := SpMMGraph(opts.Scale)
		panel := PanelFor(a, sh.d)
		machine := costmodel.CoriKNL().ScaledBeta(commAmplification(opts.Scale))
		pl, err := densePlanFor(a, sh.d, sh.p, machine)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.name, err)
		}
		pick := pl.Best()
		if pick == nil {
			return nil, fmt.Errorf("%s: planner found no feasible configuration", sh.name)
		}
		entries, err := denseOracle(a, panel, sh.p, machine, oracleBSet(pick.B))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.name, err)
		}
		best := denseOracleBest(entries)
		got := denseOracleFind(entries, pick.DenseConfig)
		if best == nil || got == nil {
			return nil, fmt.Errorf("%s: oracle sweep cannot score the pick", sh.name)
		}
		sorted := append([]denseOracleEntry(nil), entries...)
		sort.Slice(sorted, func(x, y int) bool { return sorted[x].ModelSeconds < sorted[y].ModelSeconds })
		tb := r.NewTable(fmt.Sprintf("%s (p=%d, d=%d): oracle top 5 vs planner pick", sh.name, sh.p, sh.d),
			"rank", "config", "model s", "comm s", "work units", "planner pick")
		show := len(sorted)
		if show > 5 {
			show = 5
		}
		for i := 0; i < show; i++ {
			e := sorted[i]
			mark := ""
			if e.Cfg == pick.DenseConfig {
				mark = "◀ pick"
			}
			tb.AddRow(fmt.Sprintf("%d", i+1), e.Cfg.String(), fmtS(e.ModelSeconds),
				fmtS(e.CommSeconds), fmt.Sprintf("%d", e.WorkUnits), mark)
		}
		gap := 100 * (got.ModelSeconds/best.ModelSeconds - 1)
		r.Finding("%s: planner pick %s is %.2f%% above the oracle best %s across the full algorithm axis (%d configurations swept)",
			sh.name, pick.DenseConfig, gap, best.Cfg, len(entries))
	}
	return r, nil
}

// fmtMem renders a byte budget compactly.
func fmtMem(mem int64) string {
	if mem <= 0 {
		return "∞"
	}
	return fmt.Sprintf("%.3g MB", float64(mem)/1e6)
}

// RunAutotune is `spgemm-bench -autotune`: for each planner-gate shape it
// prints the ranked plan with its "why" report, executes the chosen
// configuration for real, and prints the predicted per-step breakdown next
// to the measured one (including the measured hidden share when the pick is
// pipelined).
func RunAutotune(opts RunOpts, w io.Writer) error {
	for _, sh := range planShapes {
		a, b, machine, mem, err := planShapeInputs(sh, opts.Scale)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== autotune: %s (p=%d, M=%s) ==\n\n", sh.name, sh.p, fmtMem(mem))
		pl, err := planFor(a, b, sh.p, machine, mem)
		if err != nil {
			return fmt.Errorf("%s: %w", sh.name, err)
		}
		fmt.Fprint(w, pl.Report())
		pick := pl.Best()
		if pick == nil {
			return fmt.Errorf("%s: no feasible configuration to run", sh.name)
		}

		fmt.Fprintf(w, "\nrunning the chosen configuration (%s, kernel=%s merger=%s)…\n",
			pick.Config, pick.Kernel, pick.Merger)
		kern, err := localmm.ParseKernel(pick.Kernel)
		if err != nil {
			return fmt.Errorf("%s: %w", sh.name, err)
		}
		merger, err := localmm.ParseMerger(pick.Merger)
		if err != nil {
			return fmt.Errorf("%s: %w", sh.name, err)
		}
		rr := runMul(a, b, sh.p, pick.L, machine, 0, pick.B,
			core.Options{RunSymbolic: true, Format: pick.Format, Pipeline: pick.Pipeline,
				SparseComm: pick.SparseComm, Channels: pick.Channels, Kernel: kern, Merger: merger})
		if rr.Err != nil {
			return fmt.Errorf("%s: %w", sh.name, rr.Err)
		}
		fmt.Fprintf(w, "  %-16s %14s %14s %12s %12s\n", "step", "comm s (pred)", "comm s (meas)", "work (pred)", "work (meas)")
		for _, step := range core.Steps {
			ps := pick.Step(step)
			ms := rr.Summary.Step(step)
			fmt.Fprintf(w, "  %-16s %14.6g %14.6g %12d %12d\n",
				step, ps.CommSeconds, ms.CommSeconds, ps.WorkUnits, ms.WorkUnits)
		}
		var work int64
		for _, step := range core.Steps {
			work += rr.Summary.Step(step).WorkUnits
		}
		measured := commSeconds(rr.Summary) + float64(work)*GateSecPerWorkUnit
		fmt.Fprintf(w, "  modeled critical path: predicted %.6g s, measured %.6g s\n",
			pick.ModelSeconds, measured)
		if pick.Pipeline {
			fmt.Fprintf(w, "  hidden communication: predicted %.6g s, measured %.6g s\n",
				pick.HiddenSeconds, hiddenSeconds(rr.Summary))
		}
		fmt.Fprintln(w)
	}
	return nil
}
