package experiments

import (
	"strings"
	"testing"
)

// TestKernelSelGate is the kernel-selection property test: on every
// planner-gate shape, the planner's kernel and merger picks must price
// within KernelSelTolerance of the exhaustive option sweep over the
// *measured* aggregates of a real staged run, the meter inversion behind
// those aggregates must stay non-negative, and a pick-vs-defaults
// differential run must be bit-identical per rank.
func TestKernelSelGate(t *testing.T) {
	if testing.Short() {
		t.Skip("kernelsel runs every gate shape twice in -short mode")
	}
	bad, err := KernelSelGate(ScaleTiny, KernelSelTolerance)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range bad {
		t.Error(msg)
	}
}

// TestKernelSelGateCatchesBadPick sanity-checks the gate's teeth: with a
// negative tolerance even the oracle's own best option "regresses", so an
// empty violation list cannot be vacuous.
func TestKernelSelGateCatchesBadPick(t *testing.T) {
	if testing.Short() {
		t.Skip("kernelsel runs every gate shape twice in -short mode")
	}
	bad, err := KernelSelGate(ScaleTiny, -0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) == 0 {
		t.Error("a -50% tolerance reported no violations — the gate cannot fail")
	}
	found := false
	for _, msg := range bad {
		if strings.Contains(msg, "pick") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations carry no pick-vs-oracle message: %q", bad)
	}
}
