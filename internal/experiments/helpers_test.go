package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/localmm"
)

func TestMemoryForBatchesIsFeasible(t *testing.T) {
	a, err := Workload(WLEukarya, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, wantB := range []int{2, 4, 8} {
		mem := memoryForBatches(a, a, 16, 1, wantB, 24)
		if mem <= 0 {
			t.Fatalf("wantB=%d: nonpositive budget", wantB)
		}
		// The budget must at least hold the inputs with the margin used by
		// the symbolic step.
		if mem < 24*2*a.NNZ() {
			t.Errorf("wantB=%d: budget %d cannot hold inputs", wantB, mem)
		}
		// And the symbolic step must accept it (no infeasibility error).
		rr := runMul(a, a, 16, 1, costmodel.CoriKNL(), mem, 0, core.Options{})
		if rr.Err != nil {
			t.Errorf("wantB=%d: budget rejected: %v", wantB, rr.Err)
		}
		if rr.B < 1 {
			t.Errorf("wantB=%d: got b=%d", wantB, rr.B)
		}
	}
}

func TestMCLMemoryBudgetFeasible(t *testing.T) {
	a, _ := Workload(WLIsolatesSmall, ScaleTiny)
	mem := mclMemoryBudget(a, 16, 3)
	if mem <= 0 {
		t.Fatal("nonpositive MCL budget")
	}
	rr := runMul(a, a, 16, 1, costmodel.CoriKNL(), mem, 0, core.Options{})
	if rr.Err != nil {
		t.Fatalf("MCL budget rejected: %v", rr.Err)
	}
}

func TestFmtSPrecision(t *testing.T) {
	cases := map[float64]string{
		123.4:   "123",
		12.345:  "12.35",
		0.01234: "0.0123",
	}
	for in, want := range cases {
		if got := fmtS(in); got != want {
			t.Errorf("fmtS(%v)=%q, want %q", in, got, want)
		}
	}
	if got := fmtS(1e-6); !strings.Contains(got, "e-") {
		t.Errorf("tiny values should use scientific notation, got %q", got)
	}
}

func TestCoresLabel(t *testing.T) {
	if coresLabel(256) != "4096" {
		t.Errorf("coresLabel(256)=%s", coresLabel(256))
	}
}

func TestRunMulErrorPropagates(t *testing.T) {
	a, _ := Workload(WLEukarya, ScaleTiny)
	rr := runMul(a, a, 6, 1, costmodel.CoriKNL(), 0, 1, core.Options{}) // 6 not a square
	if rr.Err == nil {
		t.Error("invalid grid accepted")
	}
}

func TestStepSecondsCoversAllSteps(t *testing.T) {
	a, _ := Workload(WLEukarya, ScaleTiny)
	rr := runMul(a, a, 4, 1, costmodel.CoriKNL(), 0, 2, core.Options{RunSymbolic: true})
	if rr.Err != nil {
		t.Fatal(rr.Err)
	}
	ss := stepSeconds(rr.Summary)
	for _, step := range core.Steps {
		if _, ok := ss[step]; !ok {
			t.Errorf("missing step %s", step)
		}
	}
	if totalSeconds(rr.Summary) <= 0 {
		t.Error("no total time")
	}
	if commSeconds(rr.Summary)+computeSeconds(rr.Summary) <= 0 {
		t.Error("no split time")
	}
}

func TestCommAmplificationMonotone(t *testing.T) {
	// Bigger workloads need less amplification.
	if !(commAmplification(ScaleTiny) > commAmplification(ScaleSmall)) ||
		!(commAmplification(ScaleSmall) > commAmplification(ScaleLarge)) {
		t.Error("amplification should shrink as workloads grow")
	}
}

func TestScaleUp(t *testing.T) {
	if scaleUp(ScaleTiny) != ScaleSmall || scaleUp(ScaleSmall) != ScaleLarge || scaleUp(ScaleLarge) != ScaleLarge {
		t.Error("scaleUp mapping wrong")
	}
}

func TestWorkloadFlopsRegime(t *testing.T) {
	// The protein workloads must be in the paper's regime where
	// squaring expands: flops ≫ nnz(A).
	for _, wl := range []string{WLEukarya, WLIsolatesSmall, WLIsolates, WLMetaclust50} {
		a, err := Workload(wl, ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		if fl := localmm.Flops(a, a); fl < 4*a.NNZ() {
			t.Errorf("%s: flops %d not ≫ nnz %d", wl, fl, a.NNZ())
		}
	}
}
