package experiments

import (
	"fmt"

	"repro/internal/apps/mcl"
	"repro/internal/core"
)

func init() {
	register(&Experiment{
		ID:          "fig3",
		Title:       "HipMCL iterations with BatchedSUMMA3D: 1 layer vs 16 layers",
		Description: "Per-iteration runtime split (Symbolic / Communication / Computation) with the batch count annotated, for the first iterations of Markov clustering.",
		Run:         runFig3,
	})
}

func runFig3(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "fig3",
		Title: "Markov clustering iteration times, 1-layer vs 16-layer expansion",
		PaperClaim: "Early iterations are the expensive multi-batch squarings; the 16-layer " +
			"setting needs more batches yet is ~2x faster per iteration thanks to " +
			"communication avoidance (1.88x overall on Isolates-small).",
	}
	a, err := Workload(WLIsolatesSmall, opts.Scale)
	if err != nil {
		return nil, err
	}
	iters := 6
	if opts.Scale == ScaleLarge {
		iters = 10
	}
	// 256 processes (modeled 4096 cores): enough concurrency that broadcasts
	// matter, as in the paper's 65,536-core Fig 3 runs.
	p := 256
	if opts.Scale == ScaleTiny {
		p = 64
	}
	// A fixed aggregate memory budget forces batching in the early, dense
	// iterations; later iterations sparsify and need fewer batches, as in
	// Fig 3's annotations. The budget is computed from the first stochastic
	// matrix: generous headroom on the input side (the matrix grows before
	// pruning tames it) and tight on the intermediate side (to trigger
	// batching).
	m1 := mcl.AddSelfLoops(a)
	mcl.NormalizeColumns(m1)
	mem := mclMemoryBudget(m1, p, 6)

	runMCL := func(layers int) ([]mcl.IterStats, error) {
		cfg := mcl.Config{
			MaxIter: iters,
			Dist: &core.RunConfig{
				P: p, L: layers, Cost: opts.Machine.Cost(),
				Opts: opts.coreOpts(core.Options{MemBytes: mem, RunSymbolic: true}),
			},
		}
		res, err := mcl.Cluster(a, cfg)
		if err != nil {
			return nil, err
		}
		return res.Iters, nil
	}
	iters1, err := runMCL(1)
	if err != nil {
		return nil, err
	}
	iters16, err := runMCL(16)
	if err != nil {
		return nil, err
	}

	tb := r.NewTable("per-iteration time (seconds; modeled comm + measured compute)",
		"iter", "l=1 b", "l=1 symbolic", "l=1 comm", "l=1 comp", "l=1 total",
		"l=16 b", "l=16 symbolic", "l=16 comm", "l=16 comp", "l=16 total")
	var tot1, tot16 float64
	n := len(iters1)
	if len(iters16) < n {
		n = len(iters16)
	}
	for i := 0; i < n; i++ {
		s1, s16 := iters1[i], iters16[i]
		sym1 := s1.Summary.Step(core.StepSymbolic)
		sym16 := s16.Summary.Step(core.StepSymbolic)
		comm1 := commSeconds(s1.Summary) - sym1.CommSeconds
		comm16 := commSeconds(s16.Summary) - sym16.CommSeconds
		comp1 := computeSeconds(s1.Summary) - sym1.ComputeSeconds
		comp16 := computeSeconds(s16.Summary) - sym16.ComputeSeconds
		t1 := totalSeconds(s1.Summary)
		t16 := totalSeconds(s16.Summary)
		tot1 += t1
		tot16 += t16
		tb.AddRow(fmt.Sprint(i+1),
			fmt.Sprint(s1.Batches), fmtS(sym1.Total()), fmtS(comm1), fmtS(comp1), fmtS(t1),
			fmt.Sprint(s16.Batches), fmtS(sym16.Total()), fmtS(comm16), fmtS(comp16), fmtS(t16))
	}
	if tot16 > 0 {
		r.Finding("16-layer MCL ran %.2fx vs 1-layer over the first %d iterations (paper: 1.88x overall)",
			tot1/tot16, n)
	}
	var maxB1, maxB16 int
	for i := 0; i < n; i++ {
		if iters1[i].Batches > maxB1 {
			maxB1 = iters1[i].Batches
		}
		if iters16[i].Batches > maxB16 {
			maxB16 = iters16[i].Batches
		}
	}
	r.Finding("batching is heaviest in early iterations (max b: l=1 → %d, l=16 → %d) and decays as pruning sparsifies the matrix", maxB1, maxB16)
	tb.Notes = append(tb.Notes, "iteration time = max-over-ranks modeled comm + measured compute of the expansion SpGEMM")
	return r, nil
}
