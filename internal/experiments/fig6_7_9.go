package experiments

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(&Experiment{
		ID:          "fig6",
		Title:       "Strong scaling: Friendster-like and Isolates-small-like",
		Description: "Total and per-step times across a 16x increase in processes with a fixed per-process memory budget; batch counts fall as aggregate memory grows.",
		Run: func(o RunOpts) (*Report, error) {
			return runScaling(o, "fig6", []string{WLFriendster, WLIsolatesSmall}, false)
		},
	})
	register(&Experiment{
		ID:          "fig7",
		Title:       "Strong scaling: Isolates-like and Metaclust50-like",
		Description: "Same experiment on the two biggest matrices.",
		Run: func(o RunOpts) (*Report, error) {
			return runScaling(o, "fig7", []string{WLIsolates, WLMetaclust50}, true)
		},
	})
	register(&Experiment{
		ID:          "fig9",
		Title:       "Parallel efficiency of BatchedSUMMA3D",
		Description: "Efficiency P1·T1/(P2·T2) relative to the smallest run for the four large matrices.",
		Run:         runFig9,
	})
}

// scalingPs returns the process counts for strong-scaling runs. They start
// at p=64 so that even l=16 grids have non-degenerate layers (p=16 with 16
// layers would make every process row a single rank and the broadcasts
// free). l=16 needs p/16 to be a perfect square.
func scalingPs(sc Scale, big bool) []int {
	switch sc {
	case ScaleTiny:
		return []int{64, 256}
	case ScaleLarge:
		if big {
			return []int{256, 1024, 4096}
		}
		return []int{64, 256, 1024}
	default:
		return []int{64, 256, 1024}
	}
}

// scalingRun is one point of a strong-scaling curve.
type scalingRun struct {
	p     int
	b     int
	steps map[string]float64
	total float64
	comm  float64
	comp  float64
}

// runScalingCurve sweeps p with a fixed per-process memory budget (aggregate
// memory grows with p, so b falls — the super-linear speedup mechanism of
// Sec. V-E).
func runScalingCurve(opts RunOpts, wl string, big bool) ([]scalingRun, error) {
	// One workload scale up: strong scaling divides the work by up to 1024
	// ranks, and per-rank kernels must stay large enough to time reliably.
	a, err := Workload(wl, scaleUp(opts.Scale))
	if err != nil {
		return nil, err
	}
	ps := scalingPs(opts.Scale, big)
	l := 16
	// Fix the per-process budget so the smallest run needs several batches
	// (the paper's smallest configurations run b ≈ 8–125).
	perProc := memoryForBatches(a, a, ps[0], l, 10, 24) / int64(ps[0])
	var out []scalingRun
	for _, p := range ps {
		rr := runMul(a, a, p, l, opts.Machine, perProc*int64(p), 0, opts.coreOpts(core.Options{}))
		if rr.Err != nil {
			return nil, rr.Err
		}
		out = append(out, scalingRun{
			p: p, b: rr.B,
			steps: stepSeconds(rr.Summary),
			total: totalSeconds(rr.Summary),
			comm:  commSeconds(rr.Summary),
			comp:  computeSeconds(rr.Summary),
		})
	}
	return out, nil
}

func runScaling(opts RunOpts, id string, workloads []string, big bool) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    id,
		Title: "Strong scaling with l=16 and symbolic batch selection",
		PaperClaim: "10-17x total speedup across a 16x core increase; b at least halves per " +
			"4x nodes; A-Broadcast can scale super-linearly because fewer batches " +
			"re-broadcast A fewer times.",
	}
	for _, wl := range workloads {
		runs, err := runScalingCurve(opts, wl, big)
		if err != nil {
			return nil, err
		}
		tb := r.NewTable(fmt.Sprintf("%s (A², l=16)", wl),
			"procs", "modeled cores", "b", "Symbolic", "A-Bcast", "B-Bcast", "LocalMult",
			"MergeLayer", "AllToAll", "MergeFiber", "total", "speedup vs first")
		first := runs[0]
		for _, run := range runs {
			sp := "1.0x"
			if run.p != first.p && run.total > 0 {
				sp = fmtX(first.total / run.total)
			}
			tb.AddRow(fmt.Sprint(run.p), coresLabel(run.p), fmt.Sprint(run.b),
				fmtS(run.steps[core.StepSymbolic]), fmtS(run.steps[core.StepABcast]),
				fmtS(run.steps[core.StepBBcast]), fmtS(run.steps[core.StepLocalMult]),
				fmtS(run.steps[core.StepMergeLayer]), fmtS(run.steps[core.StepAllToAll]),
				fmtS(run.steps[core.StepMergeFiber]), fmtS(run.total), sp)
		}
		last := runs[len(runs)-1]
		factor := float64(last.p) / float64(first.p)
		if last.total > 0 {
			r.Finding("%s: %.1fx total speedup over a %.0fx process increase; b fell %d → %d",
				wl, first.total/last.total, factor, first.b, last.b)
		}
		if ab := last.steps[core.StepABcast]; ab > 0 {
			r.Finding("%s: A-Broadcast improved %.1fx (super-linear when > %.0fx, thanks to fewer batches)",
				wl, first.steps[core.StepABcast]/ab, factor)
		}
	}
	return r, nil
}

func runFig9(opts RunOpts) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		ID:    "fig9",
		Title: "Parallel efficiency",
		PaperClaim: "Efficiency stays near (or above) 1 for three of the four matrices; the " +
			"sparser Metaclust drops earliest because communication dominates sooner.",
	}
	tb := r.NewTable("efficiency relative to the smallest run",
		"matrix", "procs", "total s", "efficiency", "comm share")
	type eff struct {
		wl   string
		last float64
	}
	var effs []eff
	for _, wl := range []string{WLFriendster, WLIsolatesSmall, WLIsolates, WLMetaclust50} {
		big := wl == WLIsolates || wl == WLMetaclust50
		runs, err := runScalingCurve(opts, wl, big)
		if err != nil {
			return nil, err
		}
		first := runs[0]
		var lastE float64
		for _, run := range runs {
			e := 1.0
			if run.p != first.p && run.total > 0 {
				e = (float64(first.p) * first.total) / (float64(run.p) * run.total)
			}
			lastE = e
			share := 0.0
			if run.total > 0 {
				share = run.comm / run.total
			}
			tb.AddRow(wl, fmt.Sprint(run.p), fmtS(run.total),
				fmt.Sprintf("%.2f", e), fmt.Sprintf("%.0f%%", share*100))
		}
		effs = append(effs, eff{wl: wl, last: lastE})
	}
	// The sparsest matrix (Metaclust50-like) should have the lowest final
	// efficiency.
	lowest := effs[0]
	for _, e := range effs {
		if e.last < lowest.last {
			lowest = e
		}
	}
	r.Finding("lowest final efficiency: %s at %.2f (paper: Metaclust drops to 0.4 at 262K cores because it is the sparsest)",
		lowest.wl, lowest.last)
	return r, nil
}
