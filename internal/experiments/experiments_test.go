package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/costmodel"
)

func tinyOpts() RunOpts {
	return RunOpts{Scale: ScaleTiny, Machine: costmodel.CoriKNL()}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation section must be registered.
	want := []string{
		"table2", "table3", "table5", "table6", "table7",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
	}
	for _, id := range want {
		if _, err := Get(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
	if len(List()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(List()), len(want))
	}
	if _, err := Get("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestListOrdered(t *testing.T) {
	ids := List()
	// tables first, then figures in numeric order.
	if ids[0].ID != "table2" {
		t.Errorf("first is %s", ids[0].ID)
	}
	last := ids[len(ids)-1]
	if last.ID != "fig15" {
		t.Errorf("last is %s", last.ID)
	}
}

// TestAllExperimentsRunTiny executes every experiment end to end at tiny
// scale: the complete reproduction pipeline must work.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(tinyOpts())
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Errorf("report id %q", rep.ID)
			}
			if len(rep.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range rep.Tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %q empty", tb.Name)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Errorf("table %q: row width %d, header %d", tb.Name, len(row), len(tb.Header))
					}
				}
			}
			var buf bytes.Buffer
			if err := rep.Render(&buf); err != nil {
				t.Fatalf("render: %v", err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Error("render missing id")
			}
			if len(rep.Findings) == 0 {
				t.Errorf("%s produced no findings", e.ID)
			}
		})
	}
}

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"tiny": ScaleTiny, "small": ScaleSmall, "large": ScaleLarge, "": ScaleSmall} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q)=%v,%v", s, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestWorkloadsAll(t *testing.T) {
	for _, name := range WorkloadNames {
		a, err := Workload(name, ScaleTiny)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.NNZ() == 0 {
			t.Errorf("%s: empty matrix", name)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Determinism.
		b, _ := Workload(name, ScaleTiny)
		if a.NNZ() != b.NNZ() {
			t.Errorf("%s: non-deterministic", name)
		}
	}
	if _, err := Workload("nope", ScaleTiny); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestWorkloadScalesGrow(t *testing.T) {
	small, _ := Workload(WLEukarya, ScaleTiny)
	big, _ := Workload(WLEukarya, ScaleSmall)
	if big.NNZ() <= small.NNZ() {
		t.Errorf("small scale (%d nnz) not larger than tiny (%d nnz)", big.NNZ(), small.NNZ())
	}
}

func TestPairFor(t *testing.T) {
	sq, _ := Workload(WLEukarya, ScaleTiny)
	a, b := PairFor(sq)
	if a != b {
		t.Error("square workload should pair with itself")
	}
	rect, _ := Workload(WLRiceKmers, ScaleTiny)
	a, b = PairFor(rect)
	if a == b || b.Rows != rect.Cols || b.Cols != rect.Rows {
		t.Error("rectangular workload should pair with its transpose")
	}
}

func TestArrowClassifier(t *testing.T) {
	if arrow(10, 20, 0.15) != "↑" || arrow(20, 10, 0.15) != "↓" || arrow(10, 10.5, 0.15) != "↔" {
		t.Error("arrow misclassifies")
	}
	if arrow(0, 0, 0.1) != "↔" || arrow(0, 5, 0.1) != "↑" {
		t.Error("arrow zero handling wrong")
	}
}

func TestRenderAlignment(t *testing.T) {
	r := &Report{ID: "x", Title: "t"}
	tb := r.NewTable("demo", "a", "bbbb")
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	var header string
	for _, l := range lines {
		if strings.HasPrefix(l, "a") {
			header = l
			break
		}
	}
	if !strings.Contains(header, "bbbb") {
		t.Errorf("header misrendered: %q", header)
	}
}

// TestExperimentsRunPipelined exercises the RunOpts.Pipeline wiring end to
// end: a broadcast-bound figure and a symbolic-step figure must run under
// the pipelined schedule and still produce their tables — the schedule
// changes metering attribution, never results.
func TestExperimentsRunPipelined(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	for _, id := range []string{"fig5", "fig8"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		opts := tinyOpts()
		opts.Pipeline = true
		opts.Threads = 2
		rep, err := e.Run(opts)
		if err != nil {
			t.Fatalf("%s pipelined: %v", id, err)
		}
		if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) == 0 {
			t.Fatalf("%s pipelined: no output", id)
		}
	}
}
