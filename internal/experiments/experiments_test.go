package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/costmodel"
)

func tinyOpts() RunOpts {
	return RunOpts{Scale: ScaleTiny, Machine: costmodel.CoriKNL()}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation section must be registered.
	want := []string{
		"table2", "table3", "table5", "table6", "table7",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"hypersparse", "kernelsel", "pipeline", "planner", "service", "sparsecomm", "spmm",
	}
	for _, id := range want {
		if _, err := Get(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
	if len(List()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(List()), len(want))
	}
	if _, err := Get("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestListOrdered(t *testing.T) {
	ids := List()
	// tables first, then figures in numeric order, then named ablations.
	if ids[0].ID != "table2" {
		t.Errorf("first is %s", ids[0].ID)
	}
	last := ids[len(ids)-1]
	if last.ID != "spmm" {
		t.Errorf("last is %s", last.ID)
	}
	if ids[len(ids)-2].ID != "sparsecomm" {
		t.Errorf("second to last is %s", ids[len(ids)-2].ID)
	}
	if ids[len(ids)-3].ID != "service" {
		t.Errorf("third to last is %s", ids[len(ids)-3].ID)
	}
	if ids[len(ids)-4].ID != "planner" {
		t.Errorf("fourth to last is %s", ids[len(ids)-4].ID)
	}
	if ids[len(ids)-5].ID != "pipeline" {
		t.Errorf("fifth to last is %s", ids[len(ids)-5].ID)
	}
}

// TestAllExperimentsRunTiny executes every experiment end to end at tiny
// scale: the complete reproduction pipeline must work.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(tinyOpts())
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Errorf("report id %q", rep.ID)
			}
			if len(rep.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range rep.Tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %q empty", tb.Name)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Errorf("table %q: row width %d, header %d", tb.Name, len(row), len(tb.Header))
					}
				}
			}
			var buf bytes.Buffer
			if err := rep.Render(&buf); err != nil {
				t.Fatalf("render: %v", err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Error("render missing id")
			}
			if len(rep.Findings) == 0 {
				t.Errorf("%s produced no findings", e.ID)
			}
		})
	}
}

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"tiny": ScaleTiny, "small": ScaleSmall, "large": ScaleLarge, "": ScaleSmall} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q)=%v,%v", s, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestWorkloadsAll(t *testing.T) {
	for _, name := range WorkloadNames {
		a, err := Workload(name, ScaleTiny)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.NNZ() == 0 {
			t.Errorf("%s: empty matrix", name)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Determinism.
		b, _ := Workload(name, ScaleTiny)
		if a.NNZ() != b.NNZ() {
			t.Errorf("%s: non-deterministic", name)
		}
	}
	if _, err := Workload("nope", ScaleTiny); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestWorkloadScalesGrow(t *testing.T) {
	small, _ := Workload(WLEukarya, ScaleTiny)
	big, _ := Workload(WLEukarya, ScaleSmall)
	if big.NNZ() <= small.NNZ() {
		t.Errorf("small scale (%d nnz) not larger than tiny (%d nnz)", big.NNZ(), small.NNZ())
	}
}

func TestPairFor(t *testing.T) {
	sq, _ := Workload(WLEukarya, ScaleTiny)
	a, b := PairFor(sq)
	if a != b {
		t.Error("square workload should pair with itself")
	}
	rect, _ := Workload(WLRiceKmers, ScaleTiny)
	a, b = PairFor(rect)
	if a == b || b.Rows != rect.Cols || b.Cols != rect.Rows {
		t.Error("rectangular workload should pair with its transpose")
	}
}

func TestArrowClassifier(t *testing.T) {
	if arrow(10, 20, 0.15) != "↑" || arrow(20, 10, 0.15) != "↓" || arrow(10, 10.5, 0.15) != "↔" {
		t.Error("arrow misclassifies")
	}
	if arrow(0, 0, 0.1) != "↔" || arrow(0, 5, 0.1) != "↑" {
		t.Error("arrow zero handling wrong")
	}
}

func TestRenderAlignment(t *testing.T) {
	r := &Report{ID: "x", Title: "t"}
	tb := r.NewTable("demo", "a", "bbbb")
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	var header string
	for _, l := range lines {
		if strings.HasPrefix(l, "a") {
			header = l
			break
		}
	}
	if !strings.Contains(header, "bbbb") {
		t.Errorf("header misrendered: %q", header)
	}
}

// TestPipelineExperimentReportsHiddenComm pins the PR's acceptance criterion:
// on the fig-6 shape the staged-vs-overlapped ablation must report nonzero
// hidden seconds for the broadcast categories AND the fiber AllToAll.
func TestPipelineExperimentReportsHiddenComm(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	e, err := Get("pipeline")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) < 2 {
		t.Fatalf("want fig6 and fig8 tables, got %d", len(rep.Tables))
	}
	fig6 := rep.Tables[0]
	if !strings.Contains(fig6.Name, "fig6") {
		t.Fatalf("first table is %q, want the fig6 shape", fig6.Name)
	}
	hiddenOf := func(tb *Table, step string) float64 {
		for _, row := range tb.Rows {
			if row[0] == step {
				v, err := strconv.ParseFloat(row[3], 64)
				if err != nil {
					t.Fatalf("%s hidden cell %q: %v", step, row[3], err)
				}
				return v
			}
		}
		t.Fatalf("step %s missing from table %q", step, tb.Name)
		return 0
	}
	for _, step := range []string{"A-Broadcast", "B-Broadcast", "AllToAll-Fiber"} {
		if h := hiddenOf(fig6, step); h <= 0 {
			t.Errorf("fig6 shape: %s hidden seconds = %v, want > 0", step, h)
		}
	}
}

// TestGateDeterministicAndComparable: the perf gate's gated metrics must be
// identical across runs (they are modeled, not measured — that is what makes
// a 5%% CI threshold trustworthy), self-comparison must pass, and inflated or
// missing shapes must be flagged.
func TestGateDeterministicAndComparable(t *testing.T) {
	if testing.Short() {
		t.Skip("gate runs full shapes; slow in -short mode")
	}
	r1, err := RunGate()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunGate()
	if err != nil {
		t.Fatal(err)
	}
	var gated int
	for _, s1 := range r1.Shapes {
		s2 := r2.Shape(s1.Name)
		if s2 == nil {
			t.Fatalf("shape %s missing from second run", s1.Name)
		}
		if !s1.Gated {
			continue
		}
		gated++
		if s1.ModelSeconds != s2.ModelSeconds || s1.CommSeconds != s2.CommSeconds ||
			s1.WorkUnits != s2.WorkUnits || s1.Bytes != s2.Bytes {
			t.Errorf("%s: gated metrics not deterministic:\n  run1 %+v\n  run2 %+v", s1.Name, s1, *s2)
		}
		if s1.ModelSeconds <= 0 {
			t.Errorf("%s: degenerate model seconds %v", s1.Name, s1.ModelSeconds)
		}
	}
	if gated == 0 {
		t.Fatal("no gated shapes")
	}
	if over := r1.Shape("fig6-friendster-overlapped"); over == nil {
		t.Error("overlapped ablation shape missing")
	} else if over.Gated {
		t.Error("overlapped shape must not be gated (its exposed share is measured, not modeled)")
	} else if over.HiddenCommSeconds <= 0 {
		t.Errorf("overlapped shape hid no communication: %+v", *over)
	}

	if bad := CompareGate(r1, r2, GateTolerance); len(bad) != 0 {
		t.Errorf("self-comparison flagged regressions: %v", bad)
	}
	// A 20% inflation of one gated shape must be flagged.
	inflated := &GateReport{SecPerWorkUnit: r1.SecPerWorkUnit}
	inflated.Shapes = append([]GateResult(nil), r1.Shapes...)
	inflated.Shapes[0].ModelSeconds *= 1.2
	if bad := CompareGate(inflated, r1, GateTolerance); len(bad) != 1 {
		t.Errorf("inflated run: want 1 violation, got %v", bad)
	}
	// A shape missing from the current run must be flagged.
	partial := &GateReport{SecPerWorkUnit: r1.SecPerWorkUnit, Shapes: r1.Shapes[1:]}
	if bad := CompareGate(partial, r1, GateTolerance); len(bad) == 0 {
		t.Error("missing shape not flagged")
	}
	// Mismatched work-unit rates make reports incomparable.
	if bad := CompareGate(&GateReport{SecPerWorkUnit: 2e-9, Shapes: r1.Shapes}, r1, GateTolerance); len(bad) == 0 {
		t.Error("mismatched sec_per_work_unit not flagged")
	}
}

// TestExperimentsRunPipelined exercises the RunOpts.Pipeline wiring end to
// end: a broadcast-bound figure and a symbolic-step figure must run under
// the pipelined schedule and still produce their tables — the schedule
// changes metering attribution, never results.
func TestExperimentsRunPipelined(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	for _, id := range []string{"fig5", "fig8"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		opts := tinyOpts()
		opts.Pipeline = true
		opts.Threads = 2
		rep, err := e.Run(opts)
		if err != nil {
			t.Fatalf("%s pipelined: %v", id, err)
		}
		if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) == 0 {
			t.Fatalf("%s pipelined: no output", id)
		}
	}
}
