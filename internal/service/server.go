package service

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/genmat"
	"repro/internal/spmat"
)

// The JSON-over-HTTP surface. SERVICE.md is the wire-contract reference;
// handlers here stay thin: decode, call the Service method, encode.
//
// Every error response is the envelope {"error": {"code", "message"}} with
// the matching HTTP status:
//
//	bad_request   400  malformed JSON, missing fields, bad knob spellings
//	not_found     404  operand name not resident
//	conflict      409  name already loaded with different content
//	unprocessable 422  loadable request that can't run (dimension mismatch,
//	                   no feasible plan under the budget)
//	internal      500  engine failure

// errorBody is the JSON error envelope.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, code string, err error) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = err.Error()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(&body)
}

// classify maps a Service error onto (status, code) by its content; the
// Service layer returns fmt.Errorf errors, so classification is textual but
// exercised by tests.
func classify(err error) (int, string) {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "no matrix loaded"):
		return http.StatusNotFound, "not_found"
	case strings.Contains(msg, "already loaded with different content"):
		return http.StatusConflict, "conflict"
	case strings.Contains(msg, "dimension mismatch"), strings.Contains(msg, "no feasible configuration"):
		return http.StatusUnprocessableEntity, "unprocessable"
	case strings.Contains(msg, "unknown"), strings.Contains(msg, "must not be empty"):
		return http.StatusBadRequest, "bad_request"
	}
	return http.StatusInternalServerError, "internal"
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// GeneratorSpec asks the server to synthesize a workload instead of
// uploading one — the deterministic generators the experiments use, so a
// client can get paper-shaped traffic with a few JSON fields.
type GeneratorSpec struct {
	// Kind is rmat | er | hypersparse | tallskinny.
	Kind string `json:"kind"`
	// Scale gives n = 2^Scale vertices (rmat); N is the explicit dimension
	// (er, hypersparse, tallskinny rows).
	Scale int   `json:"scale,omitempty"`
	N     int32 `json:"n,omitempty"`
	// EdgeFactor is edges per vertex (rmat, er); NnzPerCol the per-column
	// count (hypersparse); Cols the column count (hypersparse, tallskinny);
	// Fill the dense fraction (tallskinny).
	EdgeFactor int     `json:"edge_factor,omitempty"`
	NnzPerCol  int     `json:"nnz_per_col,omitempty"`
	Cols       int32   `json:"cols,omitempty"`
	Fill       float64 `json:"fill,omitempty"`
	// Seed drives the deterministic stream.
	Seed int64 `json:"seed,omitempty"`
}

// Generate runs the named generator.
func (g GeneratorSpec) Generate() (*spmat.CSC, error) {
	switch g.Kind {
	case "rmat":
		if g.Scale <= 0 {
			return nil, fmt.Errorf("service: rmat generator needs scale > 0")
		}
		ef := g.EdgeFactor
		if ef <= 0 {
			ef = 8
		}
		return genmat.RMAT(genmat.RMATConfig{Scale: g.Scale, EdgeFactor: ef, Seed: g.Seed, Weighted: true}), nil
	case "er":
		if g.N <= 0 {
			return nil, fmt.Errorf("service: er generator needs n > 0")
		}
		ef := g.EdgeFactor
		if ef <= 0 {
			ef = 8
		}
		return genmat.ER(g.N, ef, g.Seed), nil
	case "hypersparse":
		if g.N <= 0 || g.Cols <= 0 {
			return nil, fmt.Errorf("service: hypersparse generator needs n and cols > 0")
		}
		npc := g.NnzPerCol
		if npc <= 0 {
			npc = 2
		}
		return genmat.Hypersparse(g.N, g.Cols, npc, g.Seed), nil
	case "tallskinny":
		if g.N <= 0 || g.Cols <= 0 {
			return nil, fmt.Errorf("service: tallskinny generator needs n and cols > 0")
		}
		fill := g.Fill
		if fill <= 0 {
			fill = 0.05
		}
		return genmat.TallSkinny(g.N, g.Cols, fill, g.Seed), nil
	}
	return nil, fmt.Errorf("service: unknown generator %q (want rmat, er, hypersparse, or tallskinny)", g.Kind)
}

// LoadRequest carries a matrix into the registry by exactly one of three
// routes: Wire (base64 of the engine's exact binary format — what Client
// sends), Mtx (Matrix Market text), or Generator.
type LoadRequest struct {
	Name      string         `json:"name"`
	Wire      string         `json:"wire,omitempty"`
	Mtx       string         `json:"mtx,omitempty"`
	Generator *GeneratorSpec `json:"generator,omitempty"`
}

// LoadResponse reports the resident matrix's identity.
type LoadResponse struct {
	Name          string            `json:"name"`
	Fingerprint   spmat.Fingerprint `json:"fingerprint"`
	AlreadyLoaded bool              `json:"already_loaded"`
}

// PlanRequest names the operand pair to plan.
type PlanRequest struct {
	A string `json:"a"`
	B string `json:"b"`
}

// MultiplyResponse is MultiplyResult on the wire; the output matrix, when
// requested, rides along base64-encoded in the engine's exact binary format
// so values survive bit-for-bit.
type MultiplyResponse struct {
	Rows                int32      `json:"rows"`
	Cols                int32      `json:"cols"`
	NNZ                 int64      `json:"nnz"`
	Plan                PlanResult `json:"plan"`
	Batches             int        `json:"batches"`
	PeakMemBytesPerRank int64      `json:"peak_mem_bytes_per_rank"`
	ModelSeconds        float64    `json:"model_seconds"`
	CommSeconds         float64    `json:"comm_seconds"`
	ComputeSeconds      float64    `json:"compute_seconds"`
	Queued              bool       `json:"queued"`
	QueueSeconds        float64    `json:"queue_seconds"`
	JobID               int64      `json:"job_id"`
	Result              string     `json:"result,omitempty"`
	// Trace is the job's Chrome trace-event document, present when the
	// request asked for it (body field or ?trace=1).
	Trace json.RawMessage `json:"trace,omitempty"`
}

// Handler returns the service's HTTP mux:
//
//	POST /load      LoadRequest      → LoadResponse
//	POST /plan      PlanRequest      → PlanResult
//	POST /multiply  MultiplyRequest  → MultiplyResponse (?trace=1 adds the trace)
//	GET  /stats                      → Stats
//	GET  /matrices                   → []MatrixInfo
//	GET  /metrics                    → Prometheus text exposition
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /load", func(w http.ResponseWriter, r *http.Request) {
		s.requests[epLoad].Add(1)
		var req LoadRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", err)
			return
		}
		m, err := decodeLoad(req)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", err)
			return
		}
		fp, already, err := s.Load(req.Name, m)
		if err != nil {
			st, code := classify(err)
			writeErr(w, st, code, err)
			return
		}
		writeJSON(w, LoadResponse{Name: req.Name, Fingerprint: fp, AlreadyLoaded: already})
	})
	mux.HandleFunc("POST /plan", func(w http.ResponseWriter, r *http.Request) {
		s.requests[epPlan].Add(1)
		var req PlanRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", err)
			return
		}
		res, err := s.Plan(req.A, req.B)
		if err != nil {
			st, code := classify(err)
			writeErr(w, st, code, err)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("POST /multiply", func(w http.ResponseWriter, r *http.Request) {
		s.requests[epMultiply].Add(1)
		var req MultiplyRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", err)
			return
		}
		if v := r.URL.Query().Get("trace"); v == "1" || v == "true" {
			req.Trace = true
		}
		res, err := s.Multiply(req)
		if err != nil {
			st, code := classify(err)
			writeErr(w, st, code, err)
			return
		}
		resp := MultiplyResponse{
			Rows: res.Rows, Cols: res.Cols, NNZ: res.NNZ,
			Plan: res.Plan, Batches: res.Batches,
			PeakMemBytesPerRank: res.PeakMemBytesPerRank,
			ModelSeconds:        res.ModelSeconds,
			CommSeconds:         res.CommSeconds,
			ComputeSeconds:      res.ComputeSeconds,
			Queued:              res.Queued,
			QueueSeconds:        res.QueueSeconds,
			JobID:               res.JobID,
		}
		if res.C != nil {
			resp.Result = base64.StdEncoding.EncodeToString(res.C.Serialize())
		}
		if req.Trace && res.Trace != nil {
			if buf, err := res.Trace.TraceJSON(); err == nil {
				resp.Trace = buf
			}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		s.requests[epStats].Add(1)
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("GET /matrices", func(w http.ResponseWriter, r *http.Request) {
		s.requests[epMatrices].Add(1)
		writeJSON(w, s.reg.List())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.requests[epMetrics].Add(1)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteMetrics(w)
	})
	return mux
}

// decodeLoad materializes the request's matrix from whichever route it used.
func decodeLoad(req LoadRequest) (*spmat.CSC, error) {
	n := 0
	if req.Wire != "" {
		n++
	}
	if req.Mtx != "" {
		n++
	}
	if req.Generator != nil {
		n++
	}
	if n != 1 {
		return nil, fmt.Errorf("service: /load needs exactly one of wire, mtx, or generator")
	}
	switch {
	case req.Wire != "":
		buf, err := base64.StdEncoding.DecodeString(req.Wire)
		if err != nil {
			return nil, fmt.Errorf("service: wire payload: %w", err)
		}
		return spmat.Deserialize(buf)
	case req.Mtx != "":
		return spmat.ReadMatrixMarket(strings.NewReader(req.Mtx))
	default:
		return req.Generator.Generate()
	}
}
