package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/genmat"
	"repro/internal/spmat"
)

// startServer runs a service behind httptest and returns a client on it.
func startServer(t *testing.T, cfg Config) (*Client, *Service) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s))
	t.Cleanup(srv.Close)
	return &Client{Base: srv.URL, HTTP: srv.Client()}, s
}

// The full client/server loop: load (wire, generator, mtx), plan, multiply
// with an exact result, stats, matrices.
func TestServerEndToEnd(t *testing.T) {
	a := genmat.RMAT(genmat.RMATConfig{Scale: 6, EdgeFactor: 8, Seed: 21, Weighted: true})
	cl, s := startServer(t, testConfig(t, a))

	// Wire-format load round-trips the fingerprint and is idempotent.
	lr, err := cl.Load("a", a)
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Fingerprint.ContentEqual(spmat.FingerprintOf(a)) {
		t.Fatalf("fingerprint mismatch over the wire")
	}
	if lr.AlreadyLoaded {
		t.Fatalf("first load reported already_loaded")
	}
	if lr, err = cl.Load("a", a); err != nil || !lr.AlreadyLoaded {
		t.Fatalf("idempotent reload: already=%v err=%v", lr.AlreadyLoaded, err)
	}

	// Server-side generation with identical parameters lands on the same
	// fingerprint as local generation.
	gen, err := cl.LoadGenerated("gen", GeneratorSpec{Kind: "rmat", Scale: 6, EdgeFactor: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	local := genmat.RMAT(genmat.RMATConfig{Scale: 6, EdgeFactor: 8, Seed: 21, Weighted: true})
	if gen.Fingerprint.Hash != spmat.FingerprintOf(local).Hash {
		t.Fatalf("server-side generator is not deterministic vs local")
	}

	// Matrix Market text load.
	var mm bytes.Buffer
	if err := spmat.WriteMatrixMarket(&mm, genmat.ER(16, 3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := cl.do("POST", "/load", LoadRequest{Name: "mtx", Mtx: mm.String()}, new(LoadResponse)); err != nil {
		t.Fatal(err)
	}

	// Plan, then multiply: the multiply reuses the plan (cache hit).
	pr, err := cl.Plan("a", "a")
	if err != nil {
		t.Fatal(err)
	}
	if pr.CacheHit {
		t.Fatalf("first plan must miss")
	}
	resp, c, err := cl.Multiply(MultiplyRequest{A: "a", B: "a", ReturnResult: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Plan.CacheHit {
		t.Fatalf("multiply after plan must hit the cache")
	}
	want := oneShot(t, a, a, s.cfg)
	if !bytes.Equal(c.Serialize(), want.Serialize()) {
		t.Fatalf("HTTP result is not bit-identical to the one-shot run")
	}
	if resp.NNZ != want.NNZ() {
		t.Fatalf("response nnz %d, want %d", resp.NNZ, want.NNZ())
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Probes != 1 || st.Multiplies != 1 {
		t.Fatalf("stats: probes=%d multiplies=%d", st.Probes, st.Multiplies)
	}
	mats, err := cl.Matrices()
	if err != nil {
		t.Fatal(err)
	}
	if len(mats) != 3 {
		t.Fatalf("want 3 resident matrices, got %d", len(mats))
	}
}

// MultiplyMatrices (the apps' client path) must reuse resident slots across
// calls: the second identical product adds no probe work.
func TestClientMultiplyMatrices(t *testing.T) {
	a := genmat.ER(64, 6, 9)
	cl, s := startServer(t, testConfig(t, a))
	c1, err := cl.MultiplyMatrices(a, a, "plus-times")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cl.MultiplyMatrices(a, a, "plus-times")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Serialize(), c2.Serialize()) {
		t.Fatalf("repeat product differs")
	}
	if st := s.Stats(); st.Probes != 1 || st.Matrices != 1 {
		t.Fatalf("stats after repeat: probes=%d matrices=%d", st.Probes, st.Matrices)
	}
}

// Error paths map to the documented status codes.
func TestServerErrorCodes(t *testing.T) {
	a := genmat.ER(32, 4, 4)
	cl, _ := startServer(t, testConfig(t, a))
	if _, err := cl.Load("a", a); err != nil {
		t.Fatal(err)
	}

	check := func(err error, status int, code string) {
		t.Helper()
		ae, ok := err.(*apiError)
		if !ok {
			t.Fatalf("want *apiError, got %v", err)
		}
		if ae.Status != status || ae.Code != code {
			t.Fatalf("want %d/%s, got %d/%s (%s)", status, code, ae.Status, ae.Code, ae.Message)
		}
	}

	// 404: operand not resident.
	_, err := cl.Plan("a", "missing")
	check(err, http.StatusNotFound, "not_found")

	// 409: name taken by different content.
	_, err = cl.Load("a", genmat.ER(32, 4, 5))
	check(err, http.StatusConflict, "conflict")

	// 422: dimension mismatch.
	if _, err := cl.Load("wide", genmat.Hypersparse(32, 64, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Load("tall", genmat.Hypersparse(16, 8, 2, 1)); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Plan("wide", "tall")
	check(err, http.StatusUnprocessableEntity, "unprocessable")

	// 400: bad semiring, bad generator, bad JSON, bad load routes.
	_, _, err = cl.Multiply(MultiplyRequest{A: "a", B: "a", Semiring: "nope"})
	check(err, http.StatusBadRequest, "bad_request")
	_, err = cl.LoadGenerated("g", GeneratorSpec{Kind: "nope"})
	check(err, http.StatusBadRequest, "bad_request")
	err = cl.do("POST", "/load", LoadRequest{Name: "two", Mtx: "x", Wire: "x"}, new(LoadResponse))
	check(err, http.StatusBadRequest, "bad_request")

	resp, err := cl.http().Post(cl.Base+"/multiply", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated JSON: want 400, got %d", resp.StatusCode)
	}
}
