package service

import (
	"sync"
	"sync/atomic"

	"repro/internal/planner"
)

// PlanCache memoizes planner decisions by cache key (planner.CacheKey). It
// gives single-flight semantics: when several requests race on a cold key,
// exactly one runs the planning function and the rest block until its
// result is published — so the probe and candidate sweep run at most once
// per key no matter the concurrency, and "zero misses after warmup" holds
// even under racing clients. A failed plan is not cached; the next request
// retries.
type PlanCache struct {
	mu      sync.Mutex
	entries map[string]*planEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

type planEntry struct {
	done   chan struct{}
	choice planner.Choice
	err    error
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: make(map[string]*planEntry)}
}

// PlanThrough returns the cached decision for key, or runs plan exactly once
// to produce it. hit reports whether the caller skipped the planning work
// (either the entry existed, or another in-flight caller was already
// computing it — both paid zero probe cost).
func (pc *PlanCache) PlanThrough(key string, plan func() (planner.Choice, error)) (choice planner.Choice, hit bool, err error) {
	pc.mu.Lock()
	if e, ok := pc.entries[key]; ok {
		pc.mu.Unlock()
		<-e.done
		if e.err != nil {
			// The flight that owned the entry failed and removed it; retry as
			// a fresh miss rather than surfacing a stale error.
			return pc.PlanThrough(key, plan)
		}
		pc.hits.Add(1)
		return e.choice, true, nil
	}
	e := &planEntry{done: make(chan struct{})}
	pc.entries[key] = e
	pc.mu.Unlock()

	e.choice, e.err = plan()
	if e.err != nil {
		pc.mu.Lock()
		delete(pc.entries, key)
		pc.mu.Unlock()
	}
	close(e.done)
	pc.misses.Add(1)
	return e.choice, false, e.err
}

// Get returns the cached decision without planning on a miss.
func (pc *PlanCache) Get(key string) (planner.Choice, bool) {
	pc.mu.Lock()
	e, ok := pc.entries[key]
	pc.mu.Unlock()
	if !ok {
		return planner.Choice{}, false
	}
	<-e.done
	if e.err != nil {
		return planner.Choice{}, false
	}
	return e.choice, true
}

// Hits returns the number of PlanThrough calls that skipped planning.
func (pc *PlanCache) Hits() int64 { return pc.hits.Load() }

// Misses returns the number of PlanThrough calls that ran the planner.
func (pc *PlanCache) Misses() int64 { return pc.misses.Load() }

// Len returns the number of cached decisions.
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}
