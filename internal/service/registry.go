package service

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/spmat"
)

// MatrixInfo describes one resident matrix.
type MatrixInfo struct {
	Name        string            `json:"name"`
	Fingerprint spmat.Fingerprint `json:"fingerprint"`
}

// resident is one registry slot: the matrix itself plus the fingerprint
// computed once at load time (the O(nnz) hash never runs again for this
// content).
type resident struct {
	name string
	mat  *spmat.CSC
	fp   spmat.Fingerprint
}

// Registry holds matrices resident by name. It is safe for concurrent use;
// matrices handed out by get are shared read-only with every job that
// multiplies them (the engine never mutates its operands).
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*resident
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*resident)}
}

// Load makes m resident under name and returns its fingerprint. Loading
// identical content under an existing name is an idempotent no-op
// (alreadyLoaded = true); different content under an existing name is a
// conflict — callers must pick a new name, which keeps every cached plan
// that mentions the old fingerprint valid.
func (r *Registry) Load(name string, m *spmat.CSC) (fp spmat.Fingerprint, alreadyLoaded bool, err error) {
	if name == "" {
		return spmat.Fingerprint{}, false, fmt.Errorf("service: matrix name must not be empty")
	}
	fp = spmat.FingerprintOf(m)
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[name]; ok {
		if old.fp.ContentEqual(fp) {
			return old.fp, true, nil
		}
		return spmat.Fingerprint{}, false, fmt.Errorf("service: matrix %q is already loaded with different content (%s vs %s)", name, old.fp.Key(), fp.Key())
	}
	r.byName[name] = &resident{name: name, mat: m, fp: fp}
	return fp, false, nil
}

// get returns the named resident matrix.
func (r *Registry) get(name string) (*resident, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	res, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("service: no matrix loaded as %q", name)
	}
	return res, nil
}

// List returns the resident matrices, sorted by name.
func (r *Registry) List() []MatrixInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]MatrixInfo, 0, len(r.byName))
	for _, res := range r.byName {
		out = append(out, MatrixInfo{Name: res.name, Fingerprint: res.fp})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of resident matrices.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}
