package service

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/bfs"
	"repro/internal/apps/mcl"
	"repro/internal/apps/tricount"
	"repro/internal/genmat"
	"repro/internal/spmat"
)

// The apps-as-clients port: MCL, BFS, and triangle counting run their
// products through the HTTP client and must match the serial engines; a
// repeat run of the same app must add zero probe work because every
// iteration's (deterministic) operand pair replans from cache.
func startAppsServer(t *testing.T) (*Client, *Service) {
	t.Helper()
	// Unconstrained budget: the apps test exercises the client path and
	// plan-cache amortization, not admission.
	cl, s := startServer(t, Config{P: 4})
	return cl, s
}

func TestTricountViaService(t *testing.T) {
	adj := genmat.RMAT(genmat.RMATConfig{Scale: 5, EdgeFactor: 6, Symmetrize: true, Seed: 3})
	cl, s := startAppsServer(t)

	want, err := tricount.CountSerial(adj)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tricount.CountVia(adj, cl.MultiplyMatrices)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("service count %d, want %d", got, want)
	}
	probes := s.Stats().Probes
	if again, err := tricount.CountVia(adj, cl.MultiplyMatrices); err != nil || again != want {
		t.Fatalf("repeat count: got %d err %v", again, err)
	}
	if st := s.Stats(); st.Probes != probes {
		t.Fatalf("repeat count added probe work: %d -> %d", probes, st.Probes)
	}
}

func TestBFSViaService(t *testing.T) {
	adj := genmat.RMAT(genmat.RMATConfig{Scale: 5, EdgeFactor: 4, Symmetrize: true, Seed: 9})
	// bool-or-and needs a 0/1 adjacency.
	adj.Filter(func(_, _ int32, _ float64) bool { return true })
	for i := range adj.Val {
		adj.Val[i] = 1
	}
	sources := []int32{0, 3, 17}
	cl, s := startAppsServer(t)

	want, err := bfs.MultiSourceSerial(adj, sources)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bfs.MultiSourceVia(adj, sources, cl.MultiplyMatrices)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < adj.Rows; v++ {
		for si := range sources {
			if got.At(v, int32(si)) != want.At(v, int32(si)) {
				t.Fatalf("level(%d, %d) = %d, want %d", v, si, got.At(v, int32(si)), want.At(v, int32(si)))
			}
		}
	}
	// Same search again: every depth's (adj, frontier) pair is already
	// planned, so no probes are added.
	probes := s.Stats().Probes
	if _, err := bfs.MultiSourceVia(adj, sources, cl.MultiplyMatrices); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Probes != probes {
		t.Fatalf("repeat BFS added probe work: %d -> %d", probes, st.Probes)
	}
}

func TestMCLViaService(t *testing.T) {
	// Two cliques joined by one weak edge — the canonical two-cluster case.
	var ts []spmat.Triple
	clique := func(lo, hi int32) {
		for i := lo; i < hi; i++ {
			for j := lo; j < hi; j++ {
				if i != j {
					ts = append(ts, spmat.Triple{Row: i, Col: j, Val: 1})
				}
			}
		}
	}
	clique(0, 5)
	clique(5, 10)
	ts = append(ts, spmat.Triple{Row: 0, Col: 5, Val: 0.1}, spmat.Triple{Row: 5, Col: 0, Val: 0.1})
	a, err := spmat.FromTriples(10, 10, ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	cl, s := startAppsServer(t)

	cfg := mcl.Config{}
	got, err := mcl.ClusterVia(a, cfg, cl.MultiplyMatrices)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClusters != 2 || !got.Converged {
		t.Fatalf("clusters=%d converged=%v, want 2/true", got.NumClusters, got.Converged)
	}
	if got.Labels[0] == got.Labels[9] {
		t.Fatalf("the two cliques landed in one cluster")
	}

	// The iteration is deterministic, so a second clustering replays the
	// same expansion operands: all plans hit, zero probes added.
	probes := s.Stats().Probes
	again, err := mcl.ClusterVia(a, cfg, cl.MultiplyMatrices)
	if err != nil {
		t.Fatal(err)
	}
	if again.NumClusters != got.NumClusters || len(again.Iters) != len(got.Iters) {
		t.Fatalf("repeat clustering diverged")
	}
	if st := s.Stats(); st.Probes != probes {
		t.Fatalf("repeat clustering added probe work: %d -> %d", probes, st.Probes)
	}
}

// The serial MultiplyFunc adapter agrees with the service path, so the Via
// variants are engine-agnostic.
func TestSerialAdapterMatchesService(t *testing.T) {
	adj := genmat.RMAT(genmat.RMATConfig{Scale: 5, EdgeFactor: 6, Symmetrize: true, Seed: 12})
	cl, _ := startAppsServer(t)
	nSerial, err := tricount.CountVia(adj, apps.Serial())
	if err != nil {
		t.Fatal(err)
	}
	nService, err := tricount.CountVia(adj, cl.MultiplyMatrices)
	if err != nil {
		t.Fatal(err)
	}
	if nSerial != nService {
		t.Fatalf("serial adapter %d vs service %d", nSerial, nService)
	}
}
