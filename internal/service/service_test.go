package service

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/genmat"
	"repro/internal/localmm"
	"repro/internal/planner"
	"repro/internal/spmat"
)

// testConfig is a small cluster with a budget tight enough to force multi-
// batch execution on the test workloads, so the admission scheduler and the
// symbolic step both do real work.
func testConfig(t *testing.T, mats ...*spmat.CSC) Config {
	t.Helper()
	// Budget: half the largest pair's unconstrained intermediate, so the
	// symbolic step picks b ≥ 2 for at least the big self-products.
	var maxFlops int64
	for _, m := range mats {
		if f := localmm.Flops(m, m); f > maxFlops {
			maxFlops = f
		}
	}
	mem := 24 * maxFlops // r=24 bytes per nnz, intermediate ≈ flops/2 entries
	return Config{P: 16, Machine: costmodel.CoriKNL(), MemBytes: mem}
}

// oneShot runs the same multiply the service would, as a standalone
// autotuned call with no cache, no registry, no scheduler.
func oneShot(t *testing.T, a, b *spmat.CSC, cfg Config) *spmat.CSC {
	t.Helper()
	rc := core.RunConfig{P: cfg.P, L: 1, Cost: cfg.Machine.Cost(),
		Opts: core.Options{MemBytes: cfg.MemBytes, Threads: cfg.Threads}}
	rc, _, err := core.AutoTuneOnMachine(a, b, rc, cfg.Machine)
	if err != nil {
		t.Fatal(err)
	}
	c, _, _, err := core.Multiply(a, b, rc, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// A repeated multiply on resident matrices must perform zero probe work
// after the first request: the second request is a pure plan-cache hit.
func TestRepeatMultiplyZeroProbeWork(t *testing.T) {
	a := genmat.RMAT(genmat.RMATConfig{Scale: 6, EdgeFactor: 8, Seed: 1, Weighted: true})
	cfg := testConfig(t, a)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load("a", a); err != nil {
		t.Fatal(err)
	}

	first, err := s.Multiply(MultiplyRequest{A: "a", B: "a", ReturnResult: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.Plan.CacheHit {
		t.Fatalf("first request must be a plan-cache miss")
	}
	if got := s.Stats().Probes; got != 1 {
		t.Fatalf("first request should probe exactly once, got %d", got)
	}

	for i := 0; i < 3; i++ {
		rep, err := s.Multiply(MultiplyRequest{A: "a", B: "a", ReturnResult: true})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Plan.CacheHit {
			t.Fatalf("repeat %d must be a plan-cache hit", i)
		}
		if !bytes.Equal(rep.C.Serialize(), first.C.Serialize()) {
			t.Fatalf("repeat %d output differs from first", i)
		}
	}
	st := s.Stats()
	if st.Probes != 1 {
		t.Fatalf("repeats performed probe work: %d probes for 4 requests", st.Probes)
	}
	if st.PlanHits != 3 || st.PlanMisses != 1 {
		t.Fatalf("want 3 hits / 1 miss, got %d / %d", st.PlanHits, st.PlanMisses)
	}

	// And the cached plan must execute exactly what a one-shot autotuned
	// multiply would.
	want := oneShot(t, a, a, cfg)
	if !bytes.Equal(first.C.Serialize(), want.Serialize()) {
		t.Fatalf("service output differs from one-shot autotuned Multiply")
	}
}

// The concurrency workout: N clients fire mixed jobs over a shared set of
// resident matrices under a tight budget. Every output must be bit-identical
// to the sequential one-shot run, the test must not deadlock (admission is
// FIFO with an oversized-alone escape), and after a sequential warmup pass
// the storm must add zero plan-cache misses.
func TestConcurrentJobsBitIdenticalAndZeroMissesAfterWarmup(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	mats := map[string]*spmat.CSC{
		"rmat":  genmat.RMAT(genmat.RMATConfig{Scale: 6, EdgeFactor: 8, Seed: 7, Weighted: true}),
		"er":    genmat.ER(64, 6, 11),
		"hyper": genmat.Hypersparse(256, 256, 2, 13),
	}
	pairs := [][2]string{
		{"rmat", "rmat"},
		{"er", "er"},
		{"hyper", "hyper"},
		{"rmat", "er"},
	}
	cfg := testConfig(t, mats["rmat"], mats["er"], mats["hyper"])
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range mats {
		if _, _, err := s.Load(name, m); err != nil {
			t.Fatal(err)
		}
	}

	// Sequential warmup + golden outputs.
	want := make(map[[2]string][]byte)
	for _, pr := range pairs {
		res, err := s.Multiply(MultiplyRequest{A: pr[0], B: pr[1], ReturnResult: true})
		if err != nil {
			t.Fatal(err)
		}
		want[pr] = res.C.Serialize()
		// The goldens really are the one-shot results.
		one := oneShot(t, mats[pr[0]], mats[pr[1]], cfg)
		if !bytes.Equal(want[pr], one.Serialize()) {
			t.Fatalf("%v: warmup output differs from one-shot Multiply", pr)
		}
	}
	warm := s.Stats()

	const clients = 8
	const perClient = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				pr := pairs[(c+i)%len(pairs)]
				res, err := s.Multiply(MultiplyRequest{A: pr[0], B: pr[1], ReturnResult: true})
				if err != nil {
					errs <- fmt.Errorf("client %d job %d %v: %w", c, i, pr, err)
					return
				}
				if !res.Plan.CacheHit {
					errs <- fmt.Errorf("client %d job %d %v: plan-cache miss after warmup", c, i, pr)
					return
				}
				if !bytes.Equal(res.C.Serialize(), want[pr]) {
					errs <- fmt.Errorf("client %d job %d %v: output differs from sequential one-shot", c, i, pr)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats()
	if st.PlanMisses != warm.PlanMisses {
		t.Errorf("storm added plan-cache misses: %d -> %d", warm.PlanMisses, st.PlanMisses)
	}
	if st.Probes != warm.Probes {
		t.Errorf("storm performed probe work: %d -> %d probes", warm.Probes, st.Probes)
	}
	if got := st.Multiplies; got != int64(len(pairs)+clients*perClient) {
		t.Errorf("want %d completed jobs, got %d", len(pairs)+clients*perClient, got)
	}

	// Goroutine-leak check: the soak spun up thousands of simulated ranks;
	// every one of them must have exited. Poll with slack — rank goroutines
	// unwind asynchronously after Run returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak after concurrent soak: %d before, %d after\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Racing cold-start clients on one pair must plan once (single flight), not
// once per client.
func TestPlanCacheSingleFlight(t *testing.T) {
	a := genmat.ER(64, 6, 3)
	cfg := testConfig(t, a)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load("a", a); err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Plan("a", "a"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := s.Stats().Probes; got != 1 {
		t.Fatalf("%d cold clients should share one probe, got %d", clients, got)
	}
}

// The registry must be idempotent on identical content and refuse different
// content under a taken name.
func TestRegistrySemantics(t *testing.T) {
	r := NewRegistry()
	a := genmat.ER(32, 4, 1)
	fp, already, err := r.Load("a", a)
	if err != nil || already {
		t.Fatalf("first load: already=%v err=%v", already, err)
	}
	fp2, already, err := r.Load("a", a.CloneMat().ToCSC())
	if err != nil || !already {
		t.Fatalf("idempotent reload: already=%v err=%v", already, err)
	}
	if !fp.ContentEqual(fp2) {
		t.Fatalf("reload changed the fingerprint")
	}
	if _, _, err := r.Load("a", genmat.ER(32, 4, 2)); err == nil {
		t.Fatalf("different content under a taken name must conflict")
	}
	if _, _, err := r.Load("", a); err == nil {
		t.Fatalf("empty name must be rejected")
	}
}

// CacheKey must separate operands, budgets, and machines, and be insensitive
// to defaulted-vs-explicit inputs.
func TestCacheKeyDiscriminates(t *testing.T) {
	a := genmat.ER(32, 4, 1)
	b := genmat.ER(32, 4, 2)
	fa, fb := spmat.FingerprintOf(a).Key(), spmat.FingerprintOf(b).Key()
	base := planner.Input{P: 16, MemBytes: 1 << 20, Machine: costmodel.CoriKNL()}
	k1 := planner.CacheKey(fa, fa, base)
	if k2 := planner.CacheKey(fa, fb, base); k1 == k2 {
		t.Fatalf("different operands must key differently")
	}
	other := base
	other.MemBytes = 1 << 21
	if k2 := planner.CacheKey(fa, fa, other); k1 == k2 {
		t.Fatalf("different budgets must key differently")
	}
	hw := base
	hw.Machine = costmodel.CoriHaswell()
	if k2 := planner.CacheKey(fa, fa, hw); k1 == k2 {
		t.Fatalf("different machines must key differently")
	}
	explicit := base
	explicit.BytesPerNnz = spmat.BytesPerNonzero
	explicit.SecPerWork = planner.DefaultSecPerWork
	if k2 := planner.CacheKey(fa, fa, explicit); k1 != k2 {
		t.Fatalf("explicit defaults must key identically to omitted fields")
	}
}

// waitQueued spins until n jobs are parked in the scheduler's wait queue.
func waitQueued(s *Scheduler, n int) {
	for {
		s.mu.Lock()
		q := s.queued
		s.mu.Unlock()
		if q >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// The scheduler must admit FIFO under the budget, queue what doesn't fit,
// and admit an over-budget job only alone.
func TestSchedulerAdmission(t *testing.T) {
	s := NewScheduler(100)

	// Two 40s fit together; a third waits until one releases.
	rel1, q1 := s.Acquire(40)
	rel2, q2 := s.Acquire(40)
	if q1 || q2 {
		t.Fatalf("jobs within budget must not queue")
	}
	done3 := make(chan bool, 1)
	go func() {
		rel3, q3 := s.Acquire(40)
		done3 <- q3
		rel3()
	}()
	// Wait until the third job is really parked in the queue before checking
	// it was not admitted.
	waitQueued(s, 1)
	select {
	case <-done3:
		t.Fatalf("third 40 admitted while 80/100 used")
	default:
	}
	rel1()
	if q3 := <-done3; !q3 {
		t.Fatalf("third job should have reported queuing")
	}
	rel2()

	// An oversized job (reservation > whole budget) runs alone.
	relBig, _ := s.Acquire(1000)
	doneSmall := make(chan struct{})
	go func() {
		relS, _ := s.Acquire(10)
		relS()
		close(doneSmall)
	}()
	waitQueued(s, 1)
	select {
	case <-doneSmall:
		t.Fatalf("small job admitted while oversized job holds the machine")
	default:
	}
	relBig()
	<-doneSmall

	if s.PeakQueued() == 0 {
		t.Fatalf("queue depth should have been recorded")
	}

	// Budget 0 = unconstrained.
	u := NewScheduler(0)
	rel, q := u.Acquire(1 << 40)
	if q {
		t.Fatalf("unconstrained scheduler must never queue")
	}
	rel()
}

// Semiring names flow through to the engine.
func TestMultiplySemiring(t *testing.T) {
	a := genmat.ER(64, 6, 5)
	cfg := testConfig(t, a)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load("a", a); err != nil {
		t.Fatal(err)
	}
	res, err := s.Multiply(MultiplyRequest{A: "a", B: "a", Semiring: "bool-or-and", ReturnResult: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.C.Val {
		if v != 0 && v != 1 {
			t.Fatalf("bool-or-and output must be 0/1-valued, got %g", v)
		}
	}
	if _, err := s.Multiply(MultiplyRequest{A: "a", B: "a", Semiring: "nope"}); err == nil {
		t.Fatalf("unknown semiring must error")
	}
}

// TestSharedKernelTableRecalibratesWithoutKeyChurn is the daemon-level race
// workout for the shared cost table: concurrent jobs all observe their
// measured kernel times into one table (run under -race) while planning
// prices against the boot-time snapshot — so recalibration accumulates, the
// /stats counters move, and yet repeat plans stay pure cache hits with a
// stable fingerprint.
func TestSharedKernelTableRecalibratesWithoutKeyChurn(t *testing.T) {
	a := genmat.RMAT(genmat.RMATConfig{Scale: 6, EdgeFactor: 8, Seed: 5, Weighted: true})
	table := costmodel.DefaultKernelTable()
	cfg := testConfig(t, a)
	cfg.Kernels = table
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load("a", a); err != nil {
		t.Fatal(err)
	}
	fpBoot := s.planKT.Fingerprint()
	if _, err := s.Multiply(MultiplyRequest{A: "a", B: "a"}); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				res, err := s.Multiply(MultiplyRequest{A: "a", B: "a"})
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				if !res.Plan.CacheHit {
					errs <- fmt.Errorf("client %d: plan-cache miss while the live table recalibrated", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats()
	if st.KernelObservations == 0 {
		t.Error("concurrent jobs fed no observations into the shared table")
	}
	if st.KernelObservations != table.Observations() {
		t.Errorf("stats report %d observations, table holds %d", st.KernelObservations, table.Observations())
	}
	if st.Probes != 1 {
		t.Errorf("probe work after warmup: %d probes", st.Probes)
	}
	// The live table's fingerprint may move with recalibration; the plan
	// snapshot's must not, and it is what keys the cache.
	if got := s.planKT.Fingerprint(); got != fpBoot {
		t.Errorf("plan snapshot fingerprint moved: %s -> %s", fpBoot, got)
	}
}
