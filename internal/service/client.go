package service

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/spmat"
)

// Client speaks the server's JSON API from Go. The zero HTTP client is
// http.DefaultClient; Base is the server root (e.g. "http://127.0.0.1:8347").
type Client struct {
	Base string
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is the decoded error envelope, surfaced as an error with the
// server's code and message.
type apiError struct {
	Status  int
	Code    string
	Message string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("service: %s (%d %s)", e.Message, e.Status, e.Code)
}

// do posts (or gets, when in is nil and method is GET) JSON and decodes the
// response into out.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error.Message == "" {
			return fmt.Errorf("service: %s %s: HTTP %d", method, path, resp.StatusCode)
		}
		return &apiError{Status: resp.StatusCode, Code: eb.Error.Code, Message: eb.Error.Message}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Load ships m to the server in the exact binary wire format and makes it
// resident under name. Loading identical content twice is a no-op.
func (c *Client) Load(name string, m *spmat.CSC) (LoadResponse, error) {
	var out LoadResponse
	err := c.do("POST", "/load", LoadRequest{
		Name: name,
		Wire: base64.StdEncoding.EncodeToString(m.Serialize()),
	}, &out)
	return out, err
}

// LoadGenerated asks the server to synthesize and load a workload.
func (c *Client) LoadGenerated(name string, g GeneratorSpec) (LoadResponse, error) {
	var out LoadResponse
	err := c.do("POST", "/load", LoadRequest{Name: name, Generator: &g}, &out)
	return out, err
}

// Plan returns the (cached or fresh) planner decision for a resident pair.
func (c *Client) Plan(a, b string) (PlanResult, error) {
	var out PlanResult
	err := c.do("POST", "/plan", PlanRequest{A: a, B: b}, &out)
	return out, err
}

// Multiply runs one job. When req.ReturnResult is set, the decoded output
// matrix is returned alongside the response (bit-identical to the engine's
// assembled output — the wire format is exact).
func (c *Client) Multiply(req MultiplyRequest) (MultiplyResponse, *spmat.CSC, error) {
	var out MultiplyResponse
	if err := c.do("POST", "/multiply", req, &out); err != nil {
		return out, nil, err
	}
	if out.Result == "" {
		return out, nil, nil
	}
	buf, err := base64.StdEncoding.DecodeString(out.Result)
	if err != nil {
		return out, nil, fmt.Errorf("service: result payload: %w", err)
	}
	m, err := spmat.Deserialize(buf)
	return out, m, err
}

// Stats fetches the server's counters.
func (c *Client) Stats() (Stats, error) {
	var out Stats
	err := c.do("GET", "/stats", nil, &out)
	return out, err
}

// Matrices lists the resident matrices.
func (c *Client) Matrices() ([]MatrixInfo, error) {
	var out []MatrixInfo
	err := c.do("GET", "/matrices", nil, &out)
	return out, err
}

// MultiplyMatrices is the client side of the apps' MultiplyFunc contract: it
// makes both operands resident under content-derived names (idempotent —
// repeated operands, like a BFS adjacency or a triangle-count input, load
// once and stay resident) and multiplies them under the named semiring,
// returning the exact output. Iterated apps pointed at one server therefore
// get resident-matrix reuse and plan-cache hits with no bookkeeping.
func (c *Client) MultiplyMatrices(a, b *spmat.CSC, semiringName string) (*spmat.CSC, error) {
	an, err := c.ensureLoaded(a)
	if err != nil {
		return nil, err
	}
	bn, err := c.ensureLoaded(b)
	if err != nil {
		return nil, err
	}
	_, out, err := c.Multiply(MultiplyRequest{A: an, B: bn, Semiring: semiringName, ReturnResult: true})
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("service: server returned no result matrix")
	}
	return out, nil
}

// ensureLoaded loads m under a name derived from its content hash, so the
// same matrix maps to the same resident slot across calls and clients.
func (c *Client) ensureLoaded(m *spmat.CSC) (string, error) {
	fp := spmat.FingerprintOf(m)
	name := "m-" + fp.Hash[:16]
	if _, err := c.Load(name, m); err != nil {
		return "", err
	}
	return name, nil
}
