package service

import (
	"sync"
)

// Scheduler admits jobs under a shared aggregate memory budget. Each job
// arrives with a reservation — its predicted peak footprint, the planner's
// per-rank high-water mark times the rank count — and runs only while the
// sum of admitted reservations stays within the budget. Jobs that don't fit
// wait in strict FIFO order (a ticket queue), so a stream of small jobs can
// never starve a large one: the large job becomes head-of-line, the jobs
// ahead of it drain, and it is admitted as soon as the budget frees up.
//
// A job whose reservation exceeds the whole budget can never "fit"; it is
// admitted alone — when nothing else is running — and relies on the
// engine's own memory-constrained batching to stay within real limits.
// That rule keeps the scheduler deadlock-free: the head ticket always
// eventually runs.
//
// A budget of 0 means unconstrained: every job is admitted immediately.
type Scheduler struct {
	budget int64

	mu      sync.Mutex
	cond    *sync.Cond
	used    int64  // sum of admitted reservations
	running int    // admitted, not yet released
	next    uint64 // next ticket to hand out
	serving uint64 // ticket currently at the head of the queue
	// peakQueued tracks the deepest the wait queue has been (stats).
	queued     int
	peakQueued int
}

// NewScheduler returns a scheduler enforcing the given aggregate budget in
// bytes (0 = unconstrained).
func NewScheduler(budget int64) *Scheduler {
	s := &Scheduler{budget: budget}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Acquire blocks until the job's reservation is admitted, then returns the
// release function the job must call (once) when it finishes. queued
// reports whether the job had to wait.
func (s *Scheduler) Acquire(reserve int64) (release func(), queued bool) {
	if reserve < 0 {
		reserve = 0
	}
	if s.budget <= 0 {
		return func() {}, false
	}
	s.mu.Lock()
	ticket := s.next
	s.next++
	for !s.admissible(ticket, reserve) {
		if !queued {
			queued = true
			s.queued++
			if s.queued > s.peakQueued {
				s.peakQueued = s.queued
			}
		}
		s.cond.Wait()
	}
	if queued {
		s.queued--
	}
	s.serving++
	s.used += reserve
	s.running++
	// Waking everyone keeps the logic simple; the new head re-checks and the
	// rest go back to sleep. Queue depths here are request counts, not ranks.
	s.cond.Broadcast()
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		s.used -= reserve
		s.running--
		s.cond.Broadcast()
		s.mu.Unlock()
	}, queued
}

// admissible reports whether the ticket may run now: it must be the head of
// the FIFO queue and either fit in the remaining budget or — for a
// reservation larger than the whole budget — have the machine to itself.
func (s *Scheduler) admissible(ticket uint64, reserve int64) bool {
	if ticket != s.serving {
		return false
	}
	if s.used+reserve <= s.budget {
		return true
	}
	return reserve > s.budget && s.running == 0
}

// PeakQueued returns the deepest the wait queue has been.
func (s *Scheduler) PeakQueued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peakQueued
}

// Queued returns the current wait-queue depth (jobs blocked in Acquire).
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// UsedBytes returns the sum of currently admitted reservations.
func (s *Scheduler) UsedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}
