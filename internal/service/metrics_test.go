package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/genmat"
)

// scrapeMetrics GETs /metrics and parses the Prometheus text exposition into
// name{labels} → value, validating the line grammar as it goes.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	out := map[string]float64{}
	typed := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 4 || (f[1] != "HELP" && f[1] != "TYPE") {
				t.Fatalf("malformed comment line %q", line)
			}
			if f[1] == "TYPE" {
				typed[f[2]] = true
			}
			continue
		}
		// Sample line: name{labels} value — value is the last field.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		out[key] = v
		// Every sample must be preceded by a TYPE for its metric family.
		fam := key
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(fam, suf); ok && typed[base] {
				fam = base
				break
			}
		}
		if !typed[fam] {
			t.Fatalf("sample %q has no preceding # TYPE", key)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndpointMatchesStats: /metrics must parse as Prometheus text
// and agree with the Stats snapshot — they render the same counters, so any
// drift is a bug.
func TestMetricsEndpointMatchesStats(t *testing.T) {
	a := genmat.RMAT(genmat.RMATConfig{Scale: 5, EdgeFactor: 8, Seed: 31, Weighted: true})
	cl, s := startServer(t, testConfig(t, a))
	if _, err := cl.Load("a", a); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := cl.Multiply(MultiplyRequest{A: "a", B: "a"}); err != nil {
			t.Fatal(err)
		}
	}

	m := scrapeMetrics(t, cl.Base)
	st := s.Stats()

	checks := []struct {
		metric string
		want   float64
	}{
		{"spgemmd_jobs_total", float64(st.Multiplies)},
		{"spgemmd_jobs_failed_total", float64(st.JobFailures)},
		{"spgemmd_jobs_queued_total", float64(st.QueuedJobs)},
		{"spgemmd_queue_wait_seconds_total", st.QueueWaitSeconds},
		{"spgemmd_queue_wait_max_seconds", st.QueueWaitMaxSeconds},
		{"spgemmd_plan_cache_entries", float64(st.Plans)},
		{"spgemmd_plan_cache_hits_total", float64(st.PlanHits)},
		{"spgemmd_plan_cache_misses_total", float64(st.PlanMisses)},
		{"spgemmd_probes_total", float64(st.Probes)},
		{"spgemmd_resident_matrices", float64(st.Matrices)},
		{"spgemmd_traces_captured_total", float64(st.TracesCaptured)},
		{"spgemmd_ranks", float64(st.P)},
		{`spgemmd_requests_total{endpoint="load"}`, float64(st.Requests["load"])},
		{`spgemmd_requests_total{endpoint="multiply"}`, float64(st.Requests["multiply"])},
		{`spgemmd_requests_total{endpoint="metrics"}`, float64(st.Requests["metrics"])},
		{"spgemmd_job_duration_seconds_count", float64(st.Multiplies)},
		{"spgemmd_job_queue_wait_seconds_count", float64(st.Multiplies)},
	}
	for _, c := range checks {
		got, ok := m[c.metric]
		if !ok {
			t.Errorf("metric %s missing from /metrics", c.metric)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %g, /stats says %g", c.metric, got, c.want)
		}
	}
	if m["spgemmd_jobs_total"] != 3 {
		t.Errorf("jobs_total %g after 3 multiplies", m["spgemmd_jobs_total"])
	}
	if m[`spgemmd_requests_total{endpoint="multiply"}`] != 3 {
		t.Errorf("multiply request counter %g, want 3", m[`spgemmd_requests_total{endpoint="multiply"}`])
	}

	// The histogram's +Inf bucket is the count, and buckets are cumulative.
	if m[`spgemmd_job_duration_seconds_bucket{le="+Inf"}`] != float64(st.Multiplies) {
		t.Errorf("+Inf bucket %g, want %d",
			m[`spgemmd_job_duration_seconds_bucket{le="+Inf"}`], st.Multiplies)
	}
	var prev float64
	for _, b := range jobBuckets {
		key := fmt.Sprintf("spgemmd_job_duration_seconds_bucket{le=%q}", formatBound(b))
		v, ok := m[key]
		if !ok {
			t.Fatalf("bucket %s missing", key)
		}
		if v < prev {
			t.Fatalf("bucket %s not cumulative: %g < %g", key, v, prev)
		}
		prev = v
	}
}

// TestTraceCaptureOverHTTP: ?trace=1 returns the job's Chrome trace-event
// document inline, and a configured TraceDir writes job-<id>.json.
func TestTraceCaptureOverHTTP(t *testing.T) {
	dir := t.TempDir()
	a := genmat.ER(64, 6, 17)
	cfg := testConfig(t, a)
	cfg.TraceDir = dir
	cl, _ := startServer(t, cfg)
	if _, err := cl.Load("a", a); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(MultiplyRequest{A: "a", B: "a"})
	resp, err := http.Post(cl.Base+"/multiply?trace=1", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var mr MultiplyResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.JobID == 0 {
		t.Error("response carries no job id")
	}
	if len(mr.Trace) == 0 {
		t.Fatal("?trace=1 returned no trace")
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(mr.Trace, &doc); err != nil {
		t.Fatalf("inline trace is not a trace-event document: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("inline trace has no events")
	}

	// The daemon also captured the trace to disk, named by job id.
	path := filepath.Join(dir, fmt.Sprintf("job-%d.json", mr.JobID))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("TraceDir capture: %v", err)
	}
	if !json.Valid(data) {
		t.Errorf("%s is not valid JSON", path)
	}

	// Without the query flag the response stays trace-free (and the default
	// path allocates no recorder beyond the TraceDir capture).
	res2, _, err := cl.Multiply(MultiplyRequest{A: "a", B: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Plan.CacheHit != true {
		t.Error("second multiply missed the plan cache")
	}
}
