package service

import (
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// Config sizes the service's simulated cluster and its shared budget. Every
// multiply job runs on the same cluster shape, so plans cached for one
// request apply to every repeat.
type Config struct {
	// P is the rank count each job runs on. Required.
	P int
	// Machine is the cost model jobs are charged under (zero value: Cori-KNL).
	Machine costmodel.Machine
	// MemBytes is the aggregate memory budget. It plays both of its engine
	// roles: each job's symbolic step batches its own execution under it, and
	// the admission scheduler holds the sum of concurrent jobs' predicted
	// peak footprints within it. 0 = unconstrained (single-batch jobs,
	// unlimited admission).
	MemBytes int64
	// Threads is the intra-rank worker count for local kernels (0 = 1).
	Threads int
	// Kernels is the shared kernel/merger cost table every job feeds its
	// measured multiply and merge times back into (online recalibration).
	// nil = a fresh default table. Planning prices against a boot-time
	// snapshot of this table — the table's fingerprint is part of every
	// plan-cache key, so a live, continuously-refitting table would churn
	// the keys and re-probe pairs the daemon promises are cache hits.
	// Recalibration instead takes effect at the next boot, via spgemmd's
	// -kernels persistence.
	Kernels *costmodel.KernelTable
	// Logger receives the structured job logs (one line per completed or
	// failed job, carrying job ID, operand fingerprints, plan-cache outcome,
	// queue wait, and duration). nil discards them — the embedder's choice,
	// not a crash; spgemmd passes its process logger.
	Logger *slog.Logger
	// TraceDir, when non-empty, captures a per-rank span trace of every
	// multiply job and writes it to TraceDir/job-<id>.json in Chrome
	// trace-event format. The directory must exist.
	TraceDir string
}

// Service is the multiply-as-a-service engine: resident matrices, cached
// plans, budgeted admission, and the simulated cluster underneath.
type Service struct {
	cfg   Config
	reg   *Registry
	plans *PlanCache
	sched *Scheduler
	// planKT is the boot-time snapshot of cfg.Kernels that planning and
	// cache keys use; cfg.Kernels is the live table jobs observe into.
	planKT *costmodel.KernelTable

	probes     atomic.Int64 // planner probe+sweep executions (cache misses)
	multiplies atomic.Int64 // completed multiply jobs
	queuedJobs atomic.Int64 // jobs that waited for admission

	jobSeq atomic.Int64 // job-ID source: jobs number from 1 in arrival order
	traces atomic.Int64 // per-job traces captured (TraceDir and/or request)
	met    *jobMetrics  // job latency / queue-wait telemetry (/metrics)
	// requests counts served HTTP requests per endpoint, indexed like
	// endpointNames; Handler increments, Stats and /metrics read.
	requests [len(endpointNames)]atomic.Int64

	log *slog.Logger
}

// New returns a service for the given cluster shape.
func New(cfg Config) (*Service, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("service: rank count %d", cfg.P)
	}
	if cfg.Machine.Name == "" {
		cfg.Machine = costmodel.CoriKNL()
	}
	if cfg.Kernels == nil {
		cfg.Kernels = costmodel.DefaultKernelTable()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Service{
		cfg:    cfg,
		reg:    NewRegistry(),
		plans:  NewPlanCache(),
		sched:  NewScheduler(cfg.MemBytes),
		planKT: cfg.Kernels.Clone(),
		met:    newJobMetrics(),
		log:    logger,
	}, nil
}

// Registry exposes the resident-matrix registry.
func (s *Service) Registry() *Registry { return s.reg }

// Load makes m resident under name (idempotent for identical content).
func (s *Service) Load(name string, m *spmat.CSC) (fp spmat.Fingerprint, alreadyLoaded bool, err error) {
	return s.reg.Load(name, m)
}

// runConfig is the per-job baseline before the planner's choice is applied.
func (s *Service) runConfig() core.RunConfig {
	return core.RunConfig{
		P:    s.cfg.P,
		L:    1,
		Cost: s.cfg.Machine.Cost(),
		Opts: core.Options{
			MemBytes: s.cfg.MemBytes,
			Threads:  s.cfg.Threads,
			Kernels:  s.cfg.Kernels,
		},
	}
}

// Kernels exposes the shared cost table (for persistence: the daemon saves
// it on shutdown and reloads it at boot, so recalibration survives restarts).
func (s *Service) Kernels() *costmodel.KernelTable { return s.cfg.Kernels }

// PlanResult is a planning decision plus its cache provenance.
type PlanResult struct {
	// A and B are the operand names; Key the plan-cache key.
	A, B string `json:"-"`
	Key  string `json:"key"`
	// Choice is the planner's pick.
	Choice planner.Choice `json:"choice"`
	// CacheHit reports whether the decision came from the cache (no probe
	// work was performed by this request).
	CacheHit bool `json:"cache_hit"`
}

// Plan returns the planner decision for multiplying the named resident
// matrices, consulting the cache first. The first call for a pair pays
// planner.New's probe and sweep; repeats are pure lookups.
func (s *Service) Plan(aName, bName string) (PlanResult, error) {
	ra, err := s.reg.get(aName)
	if err != nil {
		return PlanResult{}, err
	}
	rb, err := s.reg.get(bName)
	if err != nil {
		return PlanResult{}, err
	}
	ar, ac := ra.mat.Dims()
	br, bc := rb.mat.Dims()
	if ac != br {
		return PlanResult{}, fmt.Errorf("service: dimension mismatch: %q is %dx%d, %q is %dx%d", aName, ar, ac, bName, br, bc)
	}
	rc := s.runConfig()
	in := core.PlanInput(rc, s.cfg.Machine)
	// Price (and key) against the boot-time snapshot: stable coefficients
	// keep repeat pairs pure cache hits while the live table recalibrates.
	in.Kernels = s.planKT
	key := planner.CacheKey(ra.fp.Key(), rb.fp.Key(), in)
	choice, hit, err := s.plans.PlanThrough(key, func() (planner.Choice, error) {
		s.probes.Add(1)
		pl, err := planner.New(ra.mat, rb.mat, in)
		if err != nil {
			return planner.Choice{}, err
		}
		best := pl.Best()
		if best == nil {
			return planner.Choice{}, fmt.Errorf("service: no feasible configuration for %q x %q under the %d-byte budget", aName, bName, s.cfg.MemBytes)
		}
		return best.Choice(), nil
	})
	if err != nil {
		return PlanResult{}, err
	}
	return PlanResult{A: aName, B: bName, Key: key, Choice: choice, CacheHit: hit}, nil
}

// MultiplyRequest names the operands and algebra of one job.
type MultiplyRequest struct {
	// A and B are resident matrix names.
	A string `json:"a"`
	B string `json:"b"`
	// Semiring is the algebra name ("" = plus-times; see semiring.ByName).
	Semiring string `json:"semiring,omitempty"`
	// ReturnResult asks for the assembled output matrix in the response.
	ReturnResult bool `json:"return_result,omitempty"`
	// Trace asks for this job's per-rank span trace in the result (the HTTP
	// layer also sets it for /multiply?trace=1).
	Trace bool `json:"trace,omitempty"`
}

// MultiplyResult is one completed job.
type MultiplyResult struct {
	// C is the assembled output (nil unless ReturnResult was set).
	C *spmat.CSC `json:"-"`
	// Rows, Cols, NNZ describe the output.
	Rows int32 `json:"rows"`
	Cols int32 `json:"cols"`
	NNZ  int64 `json:"nnz"`
	// Plan is the decision the job ran under, including cache provenance.
	Plan PlanResult `json:"plan"`
	// Batches is the executed batch count (the symbolic step's real decision
	// under a budget; the planner's B was only the prediction).
	Batches int
	// PeakMemBytesPerRank is the measured per-rank high-water mark.
	PeakMemBytesPerRank int64
	// ModelSeconds, CommSeconds, ComputeSeconds summarize the metered run
	// (machine-scaled: comm by CommScale, compute by ComputeScale).
	ModelSeconds   float64
	CommSeconds    float64
	ComputeSeconds float64
	// Queued reports whether the job waited for admission; QueueSeconds how
	// long (wall time of this process, not modeled time).
	Queued       bool
	QueueSeconds float64
	// JobID identifies this job in the daemon's structured logs and trace
	// filenames (jobs number from 1 in arrival order).
	JobID int64
	// Trace is the job's per-rank span recorder — non-nil only when the
	// request asked for it or the service captures to a TraceDir.
	Trace *obs.Recorder `json:"-"`
}

// Multiply plans (through the cache), admits, and executes one job.
func (s *Service) Multiply(req MultiplyRequest) (*MultiplyResult, error) {
	jobID := s.jobSeq.Add(1)
	jobStart := time.Now()
	sr, err := semiring.ByName(req.Semiring)
	if err != nil {
		return nil, s.jobFailed(jobID, req, err)
	}
	plan, err := s.Plan(req.A, req.B)
	if err != nil {
		return nil, s.jobFailed(jobID, req, err)
	}
	ra, err := s.reg.get(req.A)
	if err != nil {
		return nil, s.jobFailed(jobID, req, err)
	}
	rb, err := s.reg.get(req.B)
	if err != nil {
		return nil, s.jobFailed(jobID, req, err)
	}

	rc := s.runConfig()
	rc.Opts.Semiring = sr
	rc, err = core.ApplyChoice(rc, plan.Choice)
	if err != nil {
		return nil, s.jobFailed(jobID, req, err)
	}
	if req.Trace || s.cfg.TraceDir != "" {
		rc.Trace = obs.NewRecorder(rc.P)
	}

	// The reservation is the planner's symbolic footprint decision: the
	// predicted per-rank peak times the rank count. The engine's own batching
	// keeps the real footprint near this prediction, so admitted jobs'
	// reservations sum to (about) the real aggregate high-water mark.
	reserve := plan.Choice.PeakMemBytesPerRank * int64(s.cfg.P)
	t0 := time.Now()
	release, queued := s.sched.Acquire(reserve)
	wait := time.Since(t0).Seconds()
	defer release()
	if queued {
		s.queuedJobs.Add(1)
	}

	c, results, summary, err := core.Multiply(ra.mat, rb.mat, rc, nil)
	if err != nil {
		return nil, s.jobFailed(jobID, req, err)
	}
	s.multiplies.Add(1)

	res := &MultiplyResult{
		Plan:         plan,
		Batches:      results[0].Batches,
		Queued:       queued,
		QueueSeconds: wait,
		JobID:        jobID,
		Trace:        rc.Trace,
	}
	for _, r := range results {
		if r.PeakMemBytes > res.PeakMemBytesPerRank {
			res.PeakMemBytesPerRank = r.PeakMemBytes
		}
	}
	m := s.cfg.Machine
	for _, st := range summary.Steps {
		res.CommSeconds += st.CommSeconds * m.CommScale
		res.ComputeSeconds += st.ComputeSeconds * m.ComputeScale
	}
	res.ModelSeconds = res.CommSeconds + res.ComputeSeconds
	res.Rows, res.Cols = c.Dims()
	res.NNZ = c.NNZ()
	if req.ReturnResult {
		res.C = c
	}

	duration := time.Since(jobStart).Seconds()
	s.met.observeJob(duration, wait)
	tracePath := ""
	if rc.Trace != nil {
		s.traces.Add(1)
		if s.cfg.TraceDir != "" {
			tracePath = filepath.Join(s.cfg.TraceDir, fmt.Sprintf("job-%d.json", jobID))
			if werr := rc.Trace.WriteTraceFile(tracePath); werr != nil {
				// The multiply succeeded; a failed trace write is log-worthy,
				// not job-fatal.
				s.log.Error("trace write failed", "job_id", jobID, "path", tracePath, "error", werr)
				tracePath = ""
			}
		}
	}
	attrs := []any{
		"job_id", jobID,
		"a", req.A, "b", req.B,
		"fp_a", ra.fp.Key(), "fp_b", rb.fp.Key(),
		"cache_hit", plan.CacheHit,
		"queued", queued, "queue_s", wait,
		"duration_s", duration,
		"batches", res.Batches,
		"nnz", res.NNZ,
		"model_s", res.ModelSeconds,
	}
	if tracePath != "" {
		attrs = append(attrs, "trace", tracePath)
	}
	s.log.Info("job done", attrs...)
	return res, nil
}

// jobFailed records and logs a failed job, passing the error through.
func (s *Service) jobFailed(jobID int64, req MultiplyRequest, err error) error {
	s.met.observeFailure()
	s.log.Error("job failed", "job_id", jobID, "a", req.A, "b", req.B, "error", err)
	return err
}

// Stats is a snapshot of the service's counters.
type Stats struct {
	// Matrices is the resident-matrix count.
	Matrices int `json:"matrices"`
	// Plans is the number of cached decisions; PlanHits/PlanMisses count
	// cache outcomes (misses ran the probe+sweep).
	Plans      int   `json:"plans"`
	PlanHits   int64 `json:"plan_hits"`
	PlanMisses int64 `json:"plan_misses"`
	// Probes counts planner probe+sweep executions — flat Probes across a
	// window of requests means every plan came from the cache.
	Probes int64 `json:"probes"`
	// Multiplies counts completed jobs; QueuedJobs those that waited for
	// admission; PeakQueued the deepest the admission queue has been.
	Multiplies int64 `json:"multiplies"`
	QueuedJobs int64 `json:"queued_jobs"`
	PeakQueued int   `json:"peak_queued"`
	// JobFailures counts multiply jobs that errored.
	JobFailures int64 `json:"job_failures"`
	// QueueWaitSeconds totals every job's admission wait; QueueWaitMaxSeconds
	// is the longest single wait; QueueDepth the jobs waiting right now;
	// ReservedBytes the sum of admitted jobs' reservations.
	QueueWaitSeconds    float64 `json:"queue_wait_seconds"`
	QueueWaitMaxSeconds float64 `json:"queue_wait_max_seconds"`
	QueueDepth          int     `json:"queue_depth"`
	ReservedBytes       int64   `json:"reserved_bytes"`
	// Requests counts served HTTP requests per endpoint — the same counters
	// /metrics renders, so the two views cannot drift.
	Requests map[string]int64 `json:"requests"`
	// TracesCaptured counts per-job span traces captured.
	TracesCaptured int64 `json:"traces_captured"`
	// KernelObservations counts measured multiply/merge times fed into the
	// shared cost table; KernelFingerprint identifies its current
	// coefficients (it moves when recalibration refits them).
	KernelObservations int64  `json:"kernel_observations"`
	KernelFingerprint  string `json:"kernel_fingerprint"`
	// MemBytes echoes the shared budget; P and Machine the cluster shape.
	MemBytes int64  `json:"mem_bytes"`
	P        int    `json:"p"`
	Machine  string `json:"machine"`
}

// Stats returns a consistent-enough snapshot for monitoring (counters are
// read individually, not under one lock).
func (s *Service) Stats() Stats {
	waitTotal, waitMax, failures := s.met.snapshot()
	reqs := make(map[string]int64, len(endpointNames))
	for i, name := range endpointNames {
		reqs[name] = s.requests[i].Load()
	}
	return Stats{
		Matrices:   s.reg.Len(),
		Plans:      s.plans.Len(),
		PlanHits:   s.plans.Hits(),
		PlanMisses: s.plans.Misses(),
		Probes:     s.probes.Load(),
		Multiplies: s.multiplies.Load(),
		QueuedJobs: s.queuedJobs.Load(),
		PeakQueued: s.sched.PeakQueued(),

		JobFailures:         failures,
		QueueWaitSeconds:    waitTotal,
		QueueWaitMaxSeconds: waitMax,
		QueueDepth:          s.sched.Queued(),
		ReservedBytes:       s.sched.UsedBytes(),
		Requests:            reqs,
		TracesCaptured:      s.traces.Load(),

		KernelObservations: s.cfg.Kernels.Observations(),
		KernelFingerprint:  s.cfg.Kernels.Fingerprint(),

		MemBytes: s.cfg.MemBytes,
		P:        s.cfg.P,
		Machine:  s.cfg.Machine.Name,
	}
}
