// Package service is the serving layer: a long-running multiply-as-a-service
// engine that holds distributed matrices resident across requests, caches
// planner decisions, and admits concurrent multiply jobs under a shared
// memory budget.
//
// Three pieces compose, in request order:
//
//   - Registry keeps loaded matrices resident by name, each with its
//     content fingerprint (spmat.Fingerprint). Loading the same content
//     under the same name is a no-op, so iterated clients (an MCL loop, a
//     BFS frontier sweep) re-"load" freely.
//
//   - PlanCache memoizes planner decisions keyed by
//     planner.CacheKey(fingerprintA, fingerprintB, machine, knobs). The
//     first multiply of a pair pays the probe and the full candidate sweep;
//     every repeat skips straight to execution with the cached
//     planner.Choice. Single-flight semantics: concurrent requests for one
//     key plan once, the rest wait for the result.
//
//   - Scheduler admits jobs FIFO under the service's aggregate MemBytes
//     budget, reserving each job's predicted peak footprint (the planner's
//     per-rank high-water mark × ranks — the same symbolic batch-footprint
//     decision that sizes a run's batches). Jobs that don't fit queue
//     instead of OOMing; a job too large for the whole budget runs alone.
//
// Service ties them together and executes admitted jobs on the simulated
// cluster via core.Multiply. Every job runs a fresh mpi.Run world with its
// own compute-measurement gate, so concurrent jobs never share mutable
// engine state and outputs are bit-identical to one-shot runs.
//
// Server exposes the whole thing over JSON HTTP (/load, /plan, /multiply,
// /stats, /matrices; see SERVICE.md for the wire contract), and Client is
// the matching Go client whose MultiplyFunc adapter lets the example apps
// (MCL, BFS, triangle counting) run their inner products against a server.
package service
