package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Operational telemetry for the daemon, hand-rolled in the Prometheus text
// exposition format (no client library — stdlib only). /stats and /metrics
// render the same underlying counters: Stats() snapshots everything here, so
// the two endpoints can never drift apart.

// histogram is a fixed-bucket cumulative histogram in the Prometheus style:
// counts[i] counts observations ≤ bounds[i], with an implicit +Inf bucket at
// the end. It is not thread-safe; jobMetrics holds the lock.
type histogram struct {
	bounds []float64 // ascending upper bounds (le)
	counts []int64   // len(bounds)+1, last = +Inf overflow
	sum    float64
	n      int64
}

func newHistogram(bounds []float64) histogram {
	return histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// write emits the histogram in exposition format: cumulative _bucket lines,
// then _sum and _count.
func (h *histogram) write(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.n)
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}

// jobBuckets covers the wall-clock range multiply jobs span on a developer
// host: sub-millisecond cache-hit tiny jobs up to multi-second soaks.
var jobBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// jobMetrics aggregates per-job wall timings: end-to-end duration (plan +
// admission wait + run) and admission queue wait, as histograms plus the
// total/max the Stats snapshot reports.
type jobMetrics struct {
	mu             sync.Mutex
	duration       histogram
	queueWait      histogram
	queueWaitTotal float64
	queueWaitMax   float64
	failures       int64
}

func newJobMetrics() *jobMetrics {
	return &jobMetrics{
		duration:  newHistogram(jobBuckets),
		queueWait: newHistogram(jobBuckets),
	}
}

// observeJob records one completed job's end-to-end duration and queue wait.
func (jm *jobMetrics) observeJob(duration, wait float64) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.duration.observe(duration)
	jm.queueWait.observe(wait)
	jm.queueWaitTotal += wait
	if wait > jm.queueWaitMax {
		jm.queueWaitMax = wait
	}
}

// observeFailure counts a job that errored after admission accounting began.
func (jm *jobMetrics) observeFailure() {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.failures++
}

// snapshot returns the scalar aggregates Stats() reports.
func (jm *jobMetrics) snapshot() (waitTotal, waitMax float64, failures int64) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.queueWaitTotal, jm.queueWaitMax, jm.failures
}

// endpointNames fixes the counter set (and its /metrics label order); the
// epLoad... indices address Service.requests.
var endpointNames = [...]string{"load", "plan", "multiply", "stats", "matrices", "metrics"}

const (
	epLoad = iota
	epPlan
	epMultiply
	epStats
	epMatrices
	epMetrics
)

// WriteMetrics renders the service's telemetry in the Prometheus text
// exposition format (version 0.0.4). Every scalar comes from the same
// Stats() snapshot /stats serves.
func (s *Service) WriteMetrics(w io.Writer) {
	st := s.Stats()

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}

	fmt.Fprintf(w, "# HELP spgemmd_requests_total HTTP requests served, by endpoint.\n# TYPE spgemmd_requests_total counter\n")
	for _, ep := range endpointNames {
		fmt.Fprintf(w, "spgemmd_requests_total{endpoint=%q} %d\n", ep, st.Requests[ep])
	}

	counter("spgemmd_jobs_total", "Completed multiply jobs.", float64(st.Multiplies))
	counter("spgemmd_jobs_failed_total", "Multiply jobs that errored.", float64(st.JobFailures))
	counter("spgemmd_jobs_queued_total", "Jobs that waited for admission.", float64(st.QueuedJobs))
	counter("spgemmd_queue_wait_seconds_total", "Total admission queue wait.", st.QueueWaitSeconds)
	gauge("spgemmd_queue_wait_max_seconds", "Longest single admission wait.", st.QueueWaitMaxSeconds)
	gauge("spgemmd_admission_queue_depth", "Jobs currently waiting for admission.", float64(st.QueueDepth))
	gauge("spgemmd_admission_queue_peak", "Deepest the admission queue has been.", float64(st.PeakQueued))
	gauge("spgemmd_admission_reserved_bytes", "Sum of admitted jobs' reservations.", float64(st.ReservedBytes))
	gauge("spgemmd_mem_budget_bytes", "Aggregate memory budget (0 = unconstrained).", float64(st.MemBytes))

	gauge("spgemmd_plan_cache_entries", "Cached planning decisions.", float64(st.Plans))
	counter("spgemmd_plan_cache_hits_total", "Plan-cache hits.", float64(st.PlanHits))
	counter("spgemmd_plan_cache_misses_total", "Plan-cache misses (ran the probe+sweep).", float64(st.PlanMisses))
	counter("spgemmd_probes_total", "Planner probe+sweep executions.", float64(st.Probes))

	gauge("spgemmd_resident_matrices", "Matrices in the registry.", float64(st.Matrices))
	counter("spgemmd_kernel_observations_total", "Measured kernel timings fed to the cost table.", float64(st.KernelObservations))
	counter("spgemmd_traces_captured_total", "Per-job span traces captured.", float64(st.TracesCaptured))
	gauge("spgemmd_ranks", "Simulated rank count per job.", float64(st.P))

	s.met.mu.Lock()
	fmt.Fprintf(w, "# HELP spgemmd_job_duration_seconds End-to-end multiply job wall time (plan + queue + run).\n")
	s.met.duration.write(w, "spgemmd_job_duration_seconds")
	fmt.Fprintf(w, "# HELP spgemmd_job_queue_wait_seconds Admission queue wait per job.\n")
	s.met.queueWait.write(w, "spgemmd_job_queue_wait_seconds")
	s.met.mu.Unlock()
}
