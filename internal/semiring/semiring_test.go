package semiring

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPlusTimesIdentities(t *testing.T) {
	s := PlusTimes()
	if !s.IsPlusTimes() {
		t.Fatal("PlusTimes must report IsPlusTimes")
	}
	if got := s.Add(3, 4); got != 7 {
		t.Errorf("Add(3,4)=%v, want 7", got)
	}
	if got := s.Mul(3, 4); got != 12 {
		t.Errorf("Mul(3,4)=%v, want 12", got)
	}
	if s.Zero != 0 || s.One != 1 {
		t.Errorf("identities: zero=%v one=%v", s.Zero, s.One)
	}
}

func TestMinPlusIdentities(t *testing.T) {
	s := MinPlus()
	if got := s.Add(3, 4); got != 3 {
		t.Errorf("Add(3,4)=%v, want 3", got)
	}
	if got := s.Mul(3, 4); got != 7 {
		t.Errorf("Mul(3,4)=%v, want 7", got)
	}
	if !math.IsInf(s.Zero, 1) {
		t.Errorf("zero should be +inf, got %v", s.Zero)
	}
	if s.Mul(s.One, 5) != 5 {
		t.Errorf("one is not a multiplicative identity")
	}
}

func TestMaxMinIdentities(t *testing.T) {
	s := MaxMin()
	if got := s.Add(3, 4); got != 4 {
		t.Errorf("Add(3,4)=%v, want 4", got)
	}
	if got := s.Mul(3, 4); got != 3 {
		t.Errorf("Mul(3,4)=%v, want 3", got)
	}
	if s.Mul(s.One, 5) != 5 {
		t.Errorf("one is not a multiplicative identity")
	}
}

func TestBoolOrAnd(t *testing.T) {
	s := BoolOrAnd()
	cases := []struct{ a, b, add, mul float64 }{
		{0, 0, 0, 0},
		{1, 0, 1, 0},
		{0, 1, 1, 0},
		{1, 1, 1, 1},
		{2.5, -1, 1, 1}, // any nonzero is truthy
	}
	for _, c := range cases {
		if got := s.Add(c.a, c.b); got != c.add {
			t.Errorf("Add(%v,%v)=%v, want %v", c.a, c.b, got, c.add)
		}
		if got := s.Mul(c.a, c.b); got != c.mul {
			t.Errorf("Mul(%v,%v)=%v, want %v", c.a, c.b, got, c.mul)
		}
	}
}

func TestPlusPairsCountsMatches(t *testing.T) {
	s := PlusPairs()
	if got := s.Mul(3.5, -2); got != 1 {
		t.Errorf("Mul of two nonzeros should be 1, got %v", got)
	}
	if got := s.Mul(0, 5); got != 0 {
		t.Errorf("Mul with a structural zero should be 0, got %v", got)
	}
	// Accumulating k matches yields k.
	acc := s.Zero
	for i := 0; i < 5; i++ {
		acc = s.Add(acc, s.Mul(1, 1))
	}
	if acc != 5 {
		t.Errorf("accumulated 5 matches, got %v", acc)
	}
}

// Semiring laws checked with property-based tests. Floating point addition is
// not exactly associative, so the plus-times law tests use small integers.
func smallInts(v float64) float64 { return float64(int64(v) % 1000) }

func TestPlusTimesDistributesProperty(t *testing.T) {
	s := PlusTimes()
	f := func(a, b, c float64) bool {
		a, b, c = smallInts(a), smallInts(b), smallInts(c)
		return s.Mul(a, s.Add(b, c)) == s.Add(s.Mul(a, b), s.Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCommutativeProperty(t *testing.T) {
	for _, s := range []*Semiring{PlusTimes(), MinPlus(), MaxMin(), BoolOrAnd(), PlusPairs()} {
		s := s
		f := func(a, b float64) bool {
			a, b = smallInts(a), smallInts(b)
			return s.Add(a, b) == s.Add(b, a)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestZeroIsAdditiveIdentityProperty(t *testing.T) {
	for _, s := range []*Semiring{PlusTimes(), MinPlus(), MaxMin(), BoolOrAnd()} {
		s := s
		canonicalize := s.Name == "bool-or-and"
		f := func(a float64) bool {
			a = smallInts(a)
			if canonicalize {
				// The Boolean semiring normalizes to {0,1}; the identity law
				// only holds on canonical elements.
				if a != 0 {
					a = 1
				}
			}
			return s.Add(a, s.Zero) == a
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestZeroAnnihilatesProperty(t *testing.T) {
	for _, s := range []*Semiring{PlusTimes(), BoolOrAnd(), PlusPairs()} {
		s := s
		f := func(a float64) bool {
			a = smallInts(a)
			return s.Mul(a, s.Zero) == s.Zero && s.Mul(s.Zero, a) == s.Zero
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestMinPlusAssociativeProperty(t *testing.T) {
	s := MinPlus()
	f := func(a, b, c float64) bool {
		a, b, c = smallInts(a), smallInts(b), smallInts(c)
		return s.Add(s.Add(a, b), c) == s.Add(a, s.Add(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
