// Package semiring defines the algebraic structures over which SpGEMM
// operates. The paper notes that the batched SUMMA algorithms apply to any
// semiring because no Strassen-like identities are used; all local kernels in
// this repository therefore take a *Semiring rather than hard-coding (+, ×).
package semiring

import (
	"fmt"
	"math"
)

// Semiring is a commutative monoid (Add, Zero) paired with a multiplicative
// operation (Mul, One). Zero must be the additive identity and an annihilator
// for Mul in the intended algebra; kernels rely on Zero to initialize
// accumulators.
type Semiring struct {
	// Name identifies the semiring in reports and error messages.
	Name string
	// Add combines two partial products destined for the same output entry.
	Add func(a, b float64) float64
	// Mul combines A(i,k) with B(k,j).
	Mul func(a, b float64) float64
	// Zero is the additive identity.
	Zero float64
	// One is the multiplicative identity.
	One float64
	// plusTimes marks the arithmetic semiring so kernels can use an inlined
	// fast path instead of calling through function pointers.
	plusTimes bool
}

// IsPlusTimes reports whether this is the ordinary arithmetic semiring,
// letting kernels take the inlined fast path.
func (s *Semiring) IsPlusTimes() bool { return s.plusTimes }

// PlusTimes returns the ordinary arithmetic semiring (ℝ, +, ×).
func PlusTimes() *Semiring {
	return &Semiring{
		Name:      "plus-times",
		Add:       func(a, b float64) float64 { return a + b },
		Mul:       func(a, b float64) float64 { return a * b },
		Zero:      0,
		One:       1,
		plusTimes: true,
	}
}

// MinPlus returns the tropical semiring (ℝ∪{+∞}, min, +), used for shortest
// path style computations.
func MinPlus() *Semiring {
	return &Semiring{
		Name: "min-plus",
		Add:  math.Min,
		Mul:  func(a, b float64) float64 { return a + b },
		Zero: math.Inf(1),
		One:  0,
	}
}

// MaxMin returns the bottleneck semiring (ℝ∪{-∞}, max, min), used for
// widest-path / reliability computations.
func MaxMin() *Semiring {
	return &Semiring{
		Name: "max-min",
		Add:  math.Max,
		Mul:  math.Min,
		Zero: math.Inf(-1),
		One:  math.Inf(1),
	}
}

// BoolOrAnd returns the Boolean semiring ({0,1}, ∨, ∧) encoded in float64,
// used for reachability and structural products such as shared k-mer
// detection.
func BoolOrAnd() *Semiring {
	toBool := func(a float64) bool { return a != 0 }
	return &Semiring{
		Name: "bool-or-and",
		Add: func(a, b float64) float64 {
			if toBool(a) || toBool(b) {
				return 1
			}
			return 0
		},
		Mul: func(a, b float64) float64 {
			if toBool(a) && toBool(b) {
				return 1
			}
			return 0
		},
		Zero: 0,
		One:  1,
	}
}

// PlusPairs returns the counting semiring where every multiplication yields 1
// and addition counts: the (i,j) output equals the number of k with
// A(i,k)≠0 and B(k,j)≠0. BELLA-style overlap detection uses it to count
// shared k-mers between sequence pairs.
func PlusPairs() *Semiring {
	return &Semiring{
		Name: "plus-pairs",
		Add:  func(a, b float64) float64 { return a + b },
		Mul: func(a, b float64) float64 {
			if a != 0 && b != 0 {
				return 1
			}
			return 0
		},
		Zero: 0,
		One:  1,
	}
}

// ByName returns the named semiring, accepting the Name spellings of the
// constructors above. Callers that accept semiring names over an API (the
// serving layer) resolve them here so error messages list the known algebras.
func ByName(name string) (*Semiring, error) {
	switch name {
	case "", "plus-times":
		return PlusTimes(), nil
	case "min-plus":
		return MinPlus(), nil
	case "max-min":
		return MaxMin(), nil
	case "bool-or-and":
		return BoolOrAnd(), nil
	case "plus-pairs":
		return PlusPairs(), nil
	}
	return nil, fmt.Errorf("semiring: unknown %q (want plus-times, min-plus, max-min, bool-or-and, or plus-pairs)", name)
}
