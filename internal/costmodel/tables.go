package costmodel

// This file encodes the closed-form complexity rows of the paper's Table II
// (communication) and Table III (computation) for BATCHEDSUMMA3D on a
// √(p/l) × √(p/l) × l grid with b batches. The experiment harness compares
// these predictions against metered volumes, which is the repository's
// executable check of the paper's analysis.

import "math"

// TableIIInput collects the problem parameters the formulas need.
type TableIIInput struct {
	P     int     // total processes
	L     int     // layers
	B     int     // batches
	NnzA  int64   // nonzeros of A
	NnzB  int64   // nonzeros of B
	Flops int64   // multiplications to form A·B
	Alpha float64 // latency (seconds)
	Beta  float64 // inverse bandwidth (seconds per byte)
	// BytesPerNnz converts nonzero counts to wire bytes.
	BytesPerNnz float64
}

// lgf is log2 clamped at zero (lg of ≤1 is 0 in the latency formulas).
func lgf(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// TableIIRow is one communication step's predicted totals.
type TableIIRow struct {
	Step string
	// Times is how many times the collective runs over the whole SpGEMM.
	Times float64
	// LatencySec and BandwidthSec are the paper's "Total latency" and
	// "Total bandwidth" rows in seconds.
	LatencySec   float64
	BandwidthSec float64
}

// Total returns latency plus bandwidth seconds.
func (r TableIIRow) Total() float64 { return r.LatencySec + r.BandwidthSec }

// TableII returns the three communication rows of Table II.
//
//	A-Bcast:  performed b·√(p/l) times; total latency α·b·√(p/l)·lg(p/l);
//	          total bandwidth β·b·nnz(A)/√(pl).
//	B-Bcast:  same count; total bandwidth β·nnz(B)/√(pl) (no b: each batch
//	          moves 1/b of B).
//	AllToAll-Fiber: performed b times among l ranks; latency α·b·l;
//	          bandwidth β·flops/p (loose upper bound, see Sec. IV-C).
func TableII(in TableIIInput) []TableIIRow {
	pl := float64(in.P) / float64(in.L)
	sqrtPL := math.Sqrt(pl)
	sqrtPtimesL := math.Sqrt(float64(in.P) * float64(in.L))
	b := float64(in.B)
	rows := []TableIIRow{
		{
			Step:         "A-Broadcast",
			Times:        b * sqrtPL,
			LatencySec:   in.Alpha * b * sqrtPL * lgf(pl),
			BandwidthSec: in.Beta * in.BytesPerNnz * b * float64(in.NnzA) / sqrtPtimesL,
		},
		{
			Step:         "B-Broadcast",
			Times:        b * sqrtPL,
			LatencySec:   in.Alpha * b * sqrtPL * lgf(pl),
			BandwidthSec: in.Beta * in.BytesPerNnz * float64(in.NnzB) / sqrtPtimesL,
		},
		{
			Step:         "AllToAll-Fiber",
			Times:        b,
			LatencySec:   in.Alpha * b * float64(in.L),
			BandwidthSec: in.Beta * in.BytesPerNnz * float64(in.Flops) / float64(in.P),
		},
	}
	return rows
}

// TableIIIRow is one computation step's predicted total work (in flops or
// flop-equivalent merge operations) per process.
type TableIIIRow struct {
	Step string
	// TotalOps is the "Total" row: the per-process operation count summed
	// over all invocations.
	TotalOps float64
}

// TableIII returns the three computation rows of Table III:
//
//	Local-Multiply: flops/p total.
//	Merge-Layer:    flops/p · lg(p/l) total (heap form; the hash merge the
//	                paper introduces removes the lg factor in practice).
//	Merge-Fiber:    flops/p · lg(l) total.
func TableIII(p, l int, flops int64) []TableIIIRow {
	fp := float64(flops) / float64(p)
	return []TableIIIRow{
		{Step: "Local-Multiply", TotalOps: fp},
		{Step: "Merge-Layer", TotalOps: fp * lgf(float64(p)/float64(l))},
		{Step: "Merge-Fiber", TotalOps: fp * lgf(float64(l))},
	}
}
