package costmodel

import (
	"math"
	"testing"

	"repro/internal/mpi"
)

func TestMachinesDefined(t *testing.T) {
	for _, name := range []string{"knl", "haswell", "knl-ht", "local"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.AlphaSec <= 0 || m.BetaSecPerByte <= 0 {
			t.Errorf("%s: nonpositive constants", m.Name)
		}
		if m.ComputeScale <= 0 || m.CommScale <= 0 {
			t.Errorf("%s: nonpositive scales", m.Name)
		}
	}
	if _, err := ByName("cray-1"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestHaswellFasterThanKNL(t *testing.T) {
	knl, hsw := CoriKNL(), CoriHaswell()
	if !(hsw.ComputeScale < knl.ComputeScale) {
		t.Error("Haswell compute should be faster than KNL")
	}
	if !(hsw.BetaSecPerByte < knl.BetaSecPerByte) {
		t.Error("paper measures Haswell communication 1.4x faster")
	}
	// The paper's ratios: compute 2.1x, comm 1.4x.
	if r := knl.ComputeScale / hsw.ComputeScale; math.Abs(r-2.1) > 0.01 {
		t.Errorf("compute ratio %v, want 2.1", r)
	}
	if r := knl.BetaSecPerByte / hsw.BetaSecPerByte; math.Abs(r-1.4) > 0.01 {
		t.Errorf("beta ratio %v, want 1.4", r)
	}
}

func TestHyperThreadTradeoff(t *testing.T) {
	ht := CoriKNLHyperThreads()
	if !(ht.ComputeScale < 1) {
		t.Error("hyper-threading should speed computation")
	}
	if !(ht.CommScale > 1) {
		t.Error("hyper-threading should slow communication")
	}
}

func TestApplyScales(t *testing.T) {
	m := Machine{Name: "x", AlphaSec: 1, BetaSecPerByte: 1, ComputeScale: 0.5, CommScale: 2}
	mt := mpi.NewMeter()
	mt.SetCategory("s")
	mt.AddCompute(4)
	mt.AddCommSeconds(3)
	m.ApplyScales([]*mpi.Meter{mt})
	if got := mt.Step("s").ComputeSeconds; got != 2 {
		t.Errorf("compute=%v, want 2", got)
	}
	if got := mt.Step("s").CommSeconds; got != 6 {
		t.Errorf("comm=%v, want 6", got)
	}
}

func TestTableIIShapes(t *testing.T) {
	in := TableIIInput{
		P: 1024, L: 16, B: 8,
		NnzA: 1 << 30, NnzB: 1 << 30, Flops: 1 << 40,
		Alpha: 4e-6, Beta: 1e-9, BytesPerNnz: 24,
	}
	rows := TableII(in)
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	byStep := map[string]TableIIRow{}
	for _, r := range rows {
		byStep[r.Step] = r
		if r.Total() <= 0 {
			t.Errorf("%s: nonpositive total", r.Step)
		}
	}
	// A-Bcast bandwidth grows with b; B-Bcast bandwidth does not.
	in2 := in
	in2.B = 16
	rows2 := TableII(in2)
	byStep2 := map[string]TableIIRow{}
	for _, r := range rows2 {
		byStep2[r.Step] = r
	}
	if !(byStep2["A-Broadcast"].BandwidthSec > byStep["A-Broadcast"].BandwidthSec*1.9) {
		t.Error("A-Broadcast bandwidth should scale with b")
	}
	if byStep2["B-Broadcast"].BandwidthSec != byStep["B-Broadcast"].BandwidthSec {
		t.Error("B-Broadcast bandwidth should be independent of b")
	}
	if byStep2["AllToAll-Fiber"].BandwidthSec != byStep["AllToAll-Fiber"].BandwidthSec {
		t.Error("AllToAll-Fiber bandwidth should be independent of b")
	}
	// Latency terms all scale with b.
	if !(byStep2["AllToAll-Fiber"].LatencySec > byStep["AllToAll-Fiber"].LatencySec) {
		t.Error("AllToAll latency should scale with b")
	}
}

func TestTableIIMoreLayersCheaperBcast(t *testing.T) {
	in := TableIIInput{
		P: 4096, L: 1, B: 4,
		NnzA: 1 << 28, NnzB: 1 << 28, Flops: 1 << 36,
		Alpha: 4e-6, Beta: 1e-9, BytesPerNnz: 24,
	}
	in16 := in
	in16.L = 16
	get := func(rows []TableIIRow, step string) TableIIRow {
		for _, r := range rows {
			if r.Step == step {
				return r
			}
		}
		t.Fatalf("missing %s", step)
		return TableIIRow{}
	}
	a1 := get(TableII(in), "A-Broadcast")
	a16 := get(TableII(in16), "A-Broadcast")
	// Bandwidth drops by √l = 4.
	if r := a1.BandwidthSec / a16.BandwidthSec; math.Abs(r-4) > 1e-9 {
		t.Errorf("A-Bcast bandwidth ratio %v, want 4", r)
	}
	f1 := get(TableII(in), "AllToAll-Fiber")
	f16 := get(TableII(in16), "AllToAll-Fiber")
	if !(f16.LatencySec > f1.LatencySec) {
		t.Error("fiber latency should grow with l")
	}
}

func TestTableIII(t *testing.T) {
	rows := TableIII(1024, 16, 1<<30)
	if len(rows) != 3 {
		t.Fatalf("want 3 rows")
	}
	fp := float64(int64(1<<30)) / 1024
	if rows[0].TotalOps != fp {
		t.Errorf("Local-Multiply=%v, want %v", rows[0].TotalOps, fp)
	}
	if rows[1].TotalOps != fp*6 { // lg(1024/16)=lg(64)=6
		t.Errorf("Merge-Layer=%v, want %v", rows[1].TotalOps, fp*6)
	}
	if rows[2].TotalOps != fp*4 { // lg(16)=4
		t.Errorf("Merge-Fiber=%v, want %v", rows[2].TotalOps, fp*4)
	}
	// Single layer: no fiber merge work.
	rows1 := TableIII(1024, 1, 1<<30)
	if rows1[2].TotalOps != 0 {
		t.Errorf("Merge-Fiber with l=1 should be 0, got %v", rows1[2].TotalOps)
	}
}

func TestScaledMultipliesBothConstants(t *testing.T) {
	m := CoriKNL().Scaled(10)
	base := CoriKNL()
	if m.AlphaSec != base.AlphaSec*10 || m.BetaSecPerByte != base.BetaSecPerByte*10 {
		t.Error("Scaled should multiply both α and β")
	}
}

func TestScaledBetaLeavesAlpha(t *testing.T) {
	m := CoriKNL().ScaledBeta(16)
	base := CoriKNL()
	if m.AlphaSec != base.AlphaSec {
		t.Error("ScaledBeta must not change α")
	}
	if m.BetaSecPerByte != base.BetaSecPerByte*16 {
		t.Error("ScaledBeta must multiply β")
	}
}
