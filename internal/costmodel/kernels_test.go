package costmodel

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestKernelTableNilSafe: every method must work on a nil table — predictions
// fall back to the defaults, observations are dropped.
func TestKernelTableNilSafe(t *testing.T) {
	var nilT *KernelTable
	want := defaultKernelCoeffs[KernelNameHash]
	if got := nilT.Predict(KernelNameHash, 1000, 10); got != want.SecPerUnit*1000+want.SecPerCol*10 {
		t.Errorf("nil Predict = %v", got)
	}
	nilT.Observe(KernelNameHash, 1000, 10, 1e-6)
	if n := nilT.Observations(); n != 0 {
		t.Errorf("nil table recorded %d observations", n)
	}
	if c := nilT.Coeffs(KernelNameHeap); c != defaultKernelCoeffs[KernelNameHeap] {
		t.Errorf("nil Coeffs = %+v", c)
	}
	if nilT.Fingerprint() != DefaultKernelTable().Fingerprint() {
		t.Error("nil fingerprint differs from default table's")
	}
	if name, _ := nilT.PickKernel(100, 1000); name != KernelNameHeap {
		t.Errorf("sparse columns picked %s, want heap", name)
	}
}

// TestKernelCrossover pins the default regime boundary: the heap and hash
// models meet at (200−8)/(4−1) = 64 flops per column, the same constant as
// the hybrid kernel's per-column threshold.
func TestKernelCrossover(t *testing.T) {
	var kt *KernelTable
	const cols = 1000
	if name, _ := kt.PickKernel(63*cols, cols); name != KernelNameHeap {
		t.Errorf("below crossover picked %s, want heap", name)
	}
	if name, _ := kt.PickKernel(65*cols, cols); name != KernelNameHash {
		t.Errorf("above crossover picked %s, want hash", name)
	}
	// The hybrid can never beat both pure kernels on an aggregate: it carries
	// the better one's price plus the dispatch overhead.
	units, c := int64(64*cols), int64(cols)
	hy := kt.Predict(KernelNameHybrid, units, c)
	best := math.Min(kt.Predict(KernelNameHash, units, c), kt.Predict(KernelNameHeap, units, c))
	if hy <= best {
		t.Errorf("hybrid %v undercut the best pure kernel %v", hy, best)
	}
}

// TestKernelTableConverges: feeding varied observations drawn from a
// synthetic linear ground truth must refit the coefficients to it within a
// few percent — the online recalibration a long-running daemon relies on.
func TestKernelTableConverges(t *testing.T) {
	const wantUnit, wantCol = 2.5e-9, 80e-9
	kt := DefaultKernelTable()
	// Varied (units, cols) mixes so the normal equations are well-conditioned.
	for i := 1; i <= 32; i++ {
		units := int64(1000 * i)
		cols := int64(10 * ((i % 7) + 1) * i)
		sec := wantUnit*float64(units) + wantCol*float64(cols)
		kt.Observe(KernelNameHash, units, cols, sec)
	}
	got := kt.Coeffs(KernelNameHash)
	if math.Abs(got.SecPerUnit-wantUnit) > 0.05*wantUnit {
		t.Errorf("SecPerUnit = %v, want ≈%v", got.SecPerUnit, wantUnit)
	}
	if math.Abs(got.SecPerCol-wantCol) > 0.05*wantCol {
		t.Errorf("SecPerCol = %v, want ≈%v", got.SecPerCol, wantCol)
	}
	// Other names keep their defaults.
	if c := kt.Coeffs(KernelNameHeap); c != defaultKernelCoeffs[KernelNameHeap] {
		t.Errorf("heap coefficients moved: %+v", c)
	}
}

// TestKernelTableDegenerateFallback: when every observation shares one
// units:cols ratio the normal equations are singular; the refit must fall
// back to uniformly rescaling the defaults so the predicted total matches
// the measured total, never emit wild coefficients.
func TestKernelTableDegenerateFallback(t *testing.T) {
	kt := DefaultKernelTable()
	d := defaultKernelCoeffs[KernelNameHeap]
	// All observations at cols = units/10, measured 3× the default model.
	for i := 1; i <= 20; i++ {
		units := int64(1000 * i)
		cols := units / 10
		sec := 3 * (d.SecPerUnit*float64(units) + d.SecPerCol*float64(cols))
		kt.Observe(KernelNameHeap, units, cols, sec)
	}
	got := kt.Coeffs(KernelNameHeap)
	if got.SecPerUnit <= 0 || got.SecPerCol <= 0 {
		t.Fatalf("degenerate refit produced non-positive coefficients: %+v", got)
	}
	if r := got.SecPerUnit / d.SecPerUnit; math.Abs(r-3) > 0.5 {
		t.Errorf("uniform rescale factor %v, want ≈3", r)
	}
	if ru, rc := got.SecPerUnit/d.SecPerUnit, got.SecPerCol/d.SecPerCol; math.Abs(ru-rc) > 1e-9 {
		t.Errorf("fallback did not rescale uniformly: %v vs %v", ru, rc)
	}
}

// TestKernelTableJSONRoundTrip: persistence must survive a marshal/unmarshal
// cycle — coefficients, moments, and the observation count — and reject
// corrupt coefficient entries while keeping defaults for missing names.
func TestKernelTableJSONRoundTrip(t *testing.T) {
	kt := DefaultKernelTable()
	for i := 1; i <= 20; i++ {
		kt.Observe(MergerNameHash, int64(500*i), int64(20*((i%5)+1)*i), float64(i)*1e-6)
	}
	data, err := json.Marshal(kt)
	if err != nil {
		t.Fatal(err)
	}
	back := DefaultKernelTable()
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if back.Observations() != kt.Observations() {
		t.Errorf("observations %d, want %d", back.Observations(), kt.Observations())
	}
	if back.Coeffs(MergerNameHash) != kt.Coeffs(MergerNameHash) {
		t.Errorf("coefficients did not round-trip: %+v vs %+v",
			back.Coeffs(MergerNameHash), kt.Coeffs(MergerNameHash))
	}
	if back.Fingerprint() != kt.Fingerprint() {
		t.Error("fingerprint did not round-trip")
	}
	// A hostile entry (non-positive coefficient, unknown name) is dropped.
	bad := []byte(`{"coeffs":{"unsorted-hash":{"sec_per_unit":-1,"sec_per_col":0},"no-such":{"sec_per_unit":1,"sec_per_col":1}},"observations":0}`)
	fresh := DefaultKernelTable()
	if err := json.Unmarshal(bad, fresh); err != nil {
		t.Fatal(err)
	}
	if c := fresh.Coeffs(KernelNameHash); c != defaultKernelCoeffs[KernelNameHash] {
		t.Errorf("corrupt coefficients accepted: %+v", c)
	}
}

// TestKernelTableFingerprintTracksRecalibration: the fingerprint keys cached
// plans, so it must move when recalibration moves the coefficients.
func TestKernelTableFingerprintTracksRecalibration(t *testing.T) {
	kt := DefaultKernelTable()
	before := kt.Fingerprint()
	for i := 1; i <= 20; i++ {
		units := int64(1000 * i)
		cols := int64(10 * ((i % 7) + 1) * i)
		kt.Observe(KernelNameHash, units, cols, 10e-9*float64(units))
	}
	if kt.Fingerprint() == before {
		t.Error("fingerprint unchanged after recalibration moved the coefficients")
	}
}

// TestKernelTableConcurrentObserve is the recalibration race workout: many
// goroutines observing, predicting, picking, and marshaling one shared table
// concurrently — the daemon's steady state — must neither race (run under
// -race) nor corrupt the observation count.
func TestKernelTableConcurrentObserve(t *testing.T) {
	kt := DefaultKernelTable()
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= each; i++ {
				name := KernelNameHash
				switch (w + i) % 3 {
				case 1:
					name = KernelNameHeap
				case 2:
					name = MergerNameHash
				}
				units := int64(100 * i)
				cols := int64(7 * ((i % 5) + 1))
				kt.Observe(name, units, cols, 5e-9*float64(units)+100e-9*float64(cols))
				kt.Predict(name, units, cols)
				kt.PickKernel(units, cols)
				if i%50 == 0 {
					if _, err := json.Marshal(kt); err != nil {
						t.Error(err)
					}
					kt.Fingerprint()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := kt.Observations(); got != workers*each {
		t.Errorf("observations %d, want %d", got, workers*each)
	}
}
