// Package costmodel describes the machines the paper evaluates on (Table IV:
// Cori-KNL and Cori-Haswell, Cray Aries interconnect) as α–β communication
// constants plus compute-speed factors. The simulated runs execute real local
// kernels on the host and charge modeled communication; the machine model
// additionally translates host compute time into target-machine compute time
// so experiments like Fig 12 (hyper-threading) and Fig 13 (KNL vs Haswell)
// can compare parameterizations.
package costmodel

import (
	"fmt"

	"repro/internal/mpi"
)

// Machine bundles the communication and computation characteristics of one
// evaluation platform.
type Machine struct {
	// Name identifies the machine in reports.
	Name string
	// AlphaSec is the per-message latency.
	AlphaSec float64
	// BetaSecPerByte is the inverse of per-process injection bandwidth.
	BetaSecPerByte float64
	// ComputeScale multiplies host-measured compute time to approximate the
	// target machine's per-process multithreaded compute speed relative to
	// the host (1.0 = same speed; <1 = target is faster).
	ComputeScale float64
	// CommScale multiplies modeled communication time (e.g. hyper-threading
	// enlarges process grids and slows collectives; Fig 12).
	CommScale float64
}

// Cost returns the α–β constants for the MPI layer.
func (m Machine) Cost() mpi.CostModel {
	return mpi.CostModel{AlphaSec: m.AlphaSec, BetaSecPerByte: m.BetaSecPerByte}
}

// String returns the machine name.
func (m Machine) String() string { return m.Name }

// The machine constants below are calibrated to reproduce the paper's
// regime, not measured on real hardware: Cray Aries MPI latency is a few
// microseconds, and per-process effective bandwidth on KNL is on the order
// of a GB/s once 16-thread processes share a NIC. What matters for the
// figures is the *ratio* of communication to computation and between
// machines, which these constants preserve.

// CoriKNL models a Cori Intel Xeon Phi 7250 node (68 cores, 16 threads per
// MPI process, 1 thread making MPI calls).
func CoriKNL() Machine {
	return Machine{
		Name:           "Cori-KNL",
		AlphaSec:       4e-6,
		BetaSecPerByte: 1.0 / (1.2e9),
		ComputeScale:   1.0,
		CommScale:      1.0,
	}
}

// CoriHaswell models a Cori Intel Xeon E5-2698 node (32 faster cores, 6
// threads per process). The paper (Fig 13) measures computation 2.1× faster
// and communication 1.4× faster than KNL on the same network.
func CoriHaswell() Machine {
	return Machine{
		Name:           "Cori-Haswell",
		AlphaSec:       4e-6 / 1.4,
		BetaSecPerByte: 1.0 / (1.2e9 * 1.4),
		ComputeScale:   1.0 / 2.1,
		CommScale:      1.0,
	}
}

// CoriKNLHyperThreads models KNL with all 4 hardware threads per core in use
// (Fig 12): computation gets faster (more threads per process), while
// communication gets slower because four times as many hardware threads
// contend for the same NIC. The factors follow the paper's measurement
// (computation 231→81 s, communication 147→209 s at l=16).
func CoriKNLHyperThreads() Machine {
	m := CoriKNL()
	m.Name = "Cori-KNL-HT4"
	m.ComputeScale = 81.0 / 231.0
	m.CommScale = 209.0 / 147.0
	return m
}

// LocalHost runs with zero modeled scaling: comm charged by α–β of a fast
// shared-memory machine, compute as measured. Used by quick examples.
func LocalHost() Machine {
	return Machine{
		Name:           "local",
		AlphaSec:       1e-7,
		BetaSecPerByte: 1.0 / 8e9,
		ComputeScale:   1.0,
		CommScale:      1.0,
	}
}

// Scaled returns a copy of the machine with latency and inverse bandwidth
// multiplied by factor.
func (m Machine) Scaled(factor float64) Machine {
	m.AlphaSec *= factor
	m.BetaSecPerByte *= factor
	return m
}

// ScaledBeta returns a copy with only the inverse bandwidth multiplied by
// factor; latency stays physical. The experiment harness uses it to restore
// the paper's communication-to-computation balance: a Cori-KNL process
// computes SpGEMM at roughly 0.6 ns/flop against a 1.2 GB/s injection
// bandwidth, while the Go kernels on a laptop run nearer 10 ns/flop against
// the same modeled constants — an order of magnitude shift in machine
// balance that would otherwise make communication invisible. Scaling β (not
// α) keeps the bandwidth-driven effects the paper studies in proportion
// without letting latency terms, which the paper reports as ~1% of runtime,
// dominate. The per-scale factors live in the experiments package and are
// documented in EXPERIMENTS.md ("Calibration").
func (m Machine) ScaledBeta(factor float64) Machine {
	m.BetaSecPerByte *= factor
	return m
}

// ByName returns a predefined machine.
func ByName(name string) (Machine, error) {
	switch name {
	case "knl", "cori-knl", "Cori-KNL":
		return CoriKNL(), nil
	case "haswell", "cori-haswell", "Cori-Haswell":
		return CoriHaswell(), nil
	case "knl-ht", "Cori-KNL-HT4":
		return CoriKNLHyperThreads(), nil
	case "local":
		return LocalHost(), nil
	}
	return Machine{}, fmt.Errorf("costmodel: unknown machine %q", name)
}

// ApplyScales rewrites a set of per-rank meters so that measured compute and
// modeled comm reflect the machine's scaling factors.
func (m Machine) ApplyScales(meters []*mpi.Meter) {
	for _, mt := range meters {
		mt.ScaleCompute(m.ComputeScale)
		mt.ScaleComm(m.CommScale)
	}
}
