package costmodel

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Kernel and merger cost table: the per-(block, stage) selection model of the
// plan-time kernel chooser. Each local-multiply kernel and merge strategy is
// priced as a linear model over the two quantities the planner's symbolic
// probe knows exactly — useful work (flops for kernels, merged entries for
// mergers) and scanned columns (the per-column setup each algorithm pays):
//
//	T(kernel) = SecPerUnit·units + SecPerCol·cols
//
// The default constants encode the regimes of Azad et al. (arXiv 1510.00844):
// hash kernels pay a large per-column setup (table init/reset) but stream
// flops near memory speed, heap kernels pay almost nothing per column but
// log-factor work per flop. Their ratio puts the heap↔hash crossover at
// (200−8)/(4−1) = 64 flops per column — deliberately the same constant as the
// hybrid kernel's per-column threshold (localmm.hybridHeapThreshold), so the
// table and the kernel agree on where the regimes meet.
//
// The constants are only a prior: Observe feeds measured seconds from real
// runs into per-name normal-equation moments and refits the two coefficients
// once enough observations accumulate, so a long-running daemon converges the
// table to its actual machine. All methods are safe on a nil *KernelTable
// (predictions fall back to the defaults, observations are dropped), so call
// sites need no nil plumbing.

// Kernel and merger names priced by the table. They match the localmm
// String() spellings so measured observations and predictions key identically.
const (
	KernelNameHash       = "unsorted-hash"
	KernelNameHashSorted = "sorted-hash"
	KernelNameHeap       = "heap"
	KernelNameHybrid     = "hybrid"
	MergerNameHash       = "hash-merge"
	MergerNameHeap       = "heap-merge"
)

// KernelCoeffs is the linear cost model of one kernel or merger.
type KernelCoeffs struct {
	// SecPerUnit is the marginal cost of one unit of useful work: a flop
	// for multiply kernels, a merged entry for mergers.
	SecPerUnit float64 `json:"sec_per_unit"`
	// SecPerCol is the per-scanned-column setup cost.
	SecPerCol float64 `json:"sec_per_col"`
}

// HybridDispatchSecPerCol is the per-column regime-dispatch overhead added to
// the hybrid kernel's prediction on top of the per-column best of heap and
// hash. It keeps the hybrid from dominating trivially: on a block whose
// columns all sit in one regime, the single-regime kernel wins by exactly
// this margin.
const HybridDispatchSecPerCol = 0.2e-9

// defaultKernelCoeffs is the prior the table starts from (and the model used
// when no table is configured).
var defaultKernelCoeffs = map[string]KernelCoeffs{
	KernelNameHash:       {SecPerUnit: 1.0e-9, SecPerCol: 200e-9},
	KernelNameHashSorted: {SecPerUnit: 1.6e-9, SecPerCol: 200e-9},
	KernelNameHeap:       {SecPerUnit: 4.0e-9, SecPerCol: 8e-9},
	MergerNameHash:       {SecPerUnit: 1.2e-9, SecPerCol: 150e-9},
	MergerNameHeap:       {SecPerUnit: 3.0e-9, SecPerCol: 10e-9},
}

// kernelMoments accumulates the normal-equation moments of observed
// (units, cols, seconds) triples for one kernel name.
type kernelMoments struct {
	N   int64   `json:"n"`
	Suu float64 `json:"suu"` // Σ units²
	Suc float64 `json:"suc"` // Σ units·cols
	Scc float64 `json:"scc"` // Σ cols²
	Sut float64 `json:"sut"` // Σ units·sec
	Sct float64 `json:"sct"` // Σ cols·sec
}

// refitAfter is the observation count at which a name's coefficients are
// refit from its accumulated moments.
const refitAfter = 16

// KernelTable is the thread-safe kernel/merger cost table with online
// recalibration. The zero value is NOT ready; use DefaultKernelTable. A nil
// table predicts from the default coefficients and ignores observations.
type KernelTable struct {
	mu      sync.Mutex
	coeffs  map[string]KernelCoeffs
	moments map[string]*kernelMoments
	total   int64
}

// DefaultKernelTable returns a fresh table seeded with the default
// coefficients.
func DefaultKernelTable() *KernelTable {
	t := &KernelTable{
		coeffs:  make(map[string]KernelCoeffs, len(defaultKernelCoeffs)),
		moments: make(map[string]*kernelMoments),
	}
	for name, c := range defaultKernelCoeffs {
		t.coeffs[name] = c
	}
	return t
}

// coeffsOf returns the current coefficients for name (defaults when the table
// is nil or the name unknown). Callers must hold t.mu when t is non-nil.
func (t *KernelTable) coeffsOf(name string) KernelCoeffs {
	if t != nil {
		if c, ok := t.coeffs[name]; ok {
			return c
		}
	}
	return defaultKernelCoeffs[name]
}

// predictLocked prices name without taking the lock. The hybrid kernel is
// derived: the better of heap and hash plus the dispatch overhead — its
// true advantage (per-column regime mixing) is only visible to the planner's
// sampled per-column estimate, never to block-level aggregates.
func (t *KernelTable) predictLocked(name string, units, cols int64) float64 {
	if name == KernelNameHybrid {
		heap := t.predictLocked(KernelNameHeap, units, cols)
		hash := t.predictLocked(KernelNameHash, units, cols)
		best := heap
		if hash < best {
			best = hash
		}
		return best + HybridDispatchSecPerCol*float64(cols)
	}
	c := t.coeffsOf(name)
	return c.SecPerUnit*float64(units) + c.SecPerCol*float64(cols)
}

// Predict returns the modeled seconds for running name over units of work
// and cols scanned columns.
func (t *KernelTable) Predict(name string, units, cols int64) float64 {
	if t == nil {
		return (*KernelTable)(nil).predictLocked(name, units, cols)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.predictLocked(name, units, cols)
}

// Clone returns an independent snapshot: same coefficients, moments, and
// observation count, sharing no state with the original. A nil table clones
// to a fresh default table. The service plans against a boot-time clone so
// plan-cache keys stay stable while the live table keeps recalibrating.
func (t *KernelTable) Clone() *KernelTable {
	out := DefaultKernelTable()
	if t == nil {
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for name, c := range t.coeffs {
		out.coeffs[name] = c
	}
	for name, m := range t.moments {
		mc := *m
		out.moments[name] = &mc
	}
	out.total = t.total
	return out
}

// Coeffs returns the current coefficients for name.
func (t *KernelTable) Coeffs(name string) KernelCoeffs {
	if t == nil {
		return defaultKernelCoeffs[name]
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.coeffsOf(name)
}

// Observations returns the total number of measurements fed to Observe.
func (t *KernelTable) Observations() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Observe records one measured execution of name (units of work, cols
// scanned columns, sec wall seconds) and refits name's coefficients from the
// accumulated moments once refitAfter observations exist. Observations for
// unknown names (including the derived hybrid) and degenerate measurements
// are dropped.
func (t *KernelTable) Observe(name string, units, cols int64, sec float64) {
	if t == nil || sec <= 0 || units < 0 || cols < 0 || units+cols == 0 {
		return
	}
	if _, ok := defaultKernelCoeffs[name]; !ok {
		return
	}
	u, c := float64(units), float64(cols)
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.moments[name]
	if m == nil {
		m = &kernelMoments{}
		t.moments[name] = m
	}
	m.N++
	m.Suu += u * u
	m.Suc += u * c
	m.Scc += c * c
	m.Sut += u * sec
	m.Sct += c * sec
	t.total++
	if m.N >= refitAfter {
		t.refitLocked(name, m)
	}
}

// refitLocked solves the 2×2 normal equations for name's coefficients. When
// the moment matrix is near-singular (all observations share one units:cols
// ratio) it falls back to uniformly rescaling the default coefficients so the
// predicted total over the observed mix matches the measured total.
func (t *KernelTable) refitLocked(name string, m *kernelMoments) {
	det := m.Suu*m.Scc - m.Suc*m.Suc
	if det > 1e-6*m.Suu*m.Scc {
		a := (m.Sut*m.Scc - m.Sct*m.Suc) / det
		b := (m.Sct*m.Suu - m.Sut*m.Suc) / det
		if a > 0 && b > 0 {
			t.coeffs[name] = KernelCoeffs{SecPerUnit: a, SecPerCol: b}
			return
		}
	}
	d := defaultKernelCoeffs[name]
	predicted := d.SecPerUnit*m.Suu + d.SecPerCol*m.Suc
	measured := m.Sut
	if predicted <= 0 {
		predicted = d.SecPerUnit*m.Suc + d.SecPerCol*m.Scc
		measured = m.Sct
	}
	if predicted > 0 && measured > 0 {
		s := measured / predicted
		t.coeffs[name] = KernelCoeffs{SecPerUnit: d.SecPerUnit * s, SecPerCol: d.SecPerCol * s}
	}
}

// PickKernel returns the cheapest multiply kernel for a block-stage with the
// given flops and scanned columns, with its predicted seconds. Only the two
// pure-regime kernels compete at block level: the hybrid's dispatch overhead
// means it can never beat both on an aggregate (its win — mixed per-column
// regimes — is the planner's sampled decision, not a runtime one).
func (t *KernelTable) PickKernel(flops, cols int64) (string, float64) {
	hash := t.Predict(KernelNameHash, flops, cols)
	heap := t.Predict(KernelNameHeap, flops, cols)
	if heap < hash {
		return KernelNameHeap, heap
	}
	return KernelNameHash, hash
}

// PickMerger returns the cheapest merge strategy for entries merged entries
// over cols scanned columns, with its predicted seconds.
func (t *KernelTable) PickMerger(entries, cols int64) (string, float64) {
	hash := t.Predict(MergerNameHash, entries, cols)
	heap := t.Predict(MergerNameHeap, entries, cols)
	if heap < hash {
		return MergerNameHeap, heap
	}
	return MergerNameHash, hash
}

// kernelTableJSON is the serialized form (spgemmd persists it alongside the
// plan cache so recalibration survives restarts).
type kernelTableJSON struct {
	Coeffs  map[string]KernelCoeffs   `json:"coeffs"`
	Moments map[string]*kernelMoments `json:"moments,omitempty"`
	Total   int64                     `json:"observations"`
}

// MarshalJSON serializes the coefficients and recalibration moments.
func (t *KernelTable) MarshalJSON() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return json.Marshal(kernelTableJSON{Coeffs: t.coeffs, Moments: t.moments, Total: t.total})
}

// UnmarshalJSON restores a serialized table. Missing names keep their
// defaults, so tables saved by older builds stay loadable.
func (t *KernelTable) UnmarshalJSON(data []byte) error {
	var j kernelTableJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.coeffs == nil {
		t.coeffs = make(map[string]KernelCoeffs, len(defaultKernelCoeffs))
		for name, c := range defaultKernelCoeffs {
			t.coeffs[name] = c
		}
	}
	for name, c := range j.Coeffs {
		if _, ok := defaultKernelCoeffs[name]; ok && c.SecPerUnit > 0 && c.SecPerCol > 0 {
			t.coeffs[name] = c
		}
	}
	if t.moments == nil {
		t.moments = make(map[string]*kernelMoments)
	}
	for name, m := range j.Moments {
		if _, ok := defaultKernelCoeffs[name]; ok && m != nil {
			t.moments[name] = m
		}
	}
	t.total = j.Total
	return nil
}

// Fingerprint returns a short stable hash of the current coefficients, used
// to key cached plans: a recalibrated table must not serve picks cached under
// the old constants.
func (t *KernelTable) Fingerprint() string {
	names := make([]string, 0, len(defaultKernelCoeffs))
	for name := range defaultKernelCoeffs {
		names = append(names, name)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, name := range names {
		c := t.Coeffs(name)
		fmt.Fprintf(h, "%s=%.6g,%.6g;", name, c.SecPerUnit, c.SecPerCol)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
