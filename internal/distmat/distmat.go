// Package distmat implements the paper's 3D matrix distributions (Fig 1) and
// the block-cyclic batch decomposition (Fig 1(i), Sec. IV-B).
//
// On a √(p/l) × √(p/l) × l grid with per-layer side q:
//
//   - A (and C) style: rows are split into q blocks; columns are split into q
//     block-columns, and each block-column is sliced into l contiguous pieces,
//     one per layer, so that layers respect the 2D process boundaries
//     (Fig 1(c)). The local Ã at (i,j,k) is (rows/q) × (cols/(q·l)).
//
//   - B style: transposed arrangement — columns form q blocks, rows form q
//     block-rows each sliced into l pieces (Fig 1(f)). The local B̃ is
//     (rows/(q·l)) × (cols/q).
//
// Batching splits the columns of B (and C) block-cyclically: within a block
// column of width w, chunks of blk = ⌈w/(b·l)⌉ consecutive columns are dealt
// out so chunk g belongs to batch (g mod b) and, within its batch, to layer
// (g div b) mod l. With b = 1 this degenerates to the contiguous layer slices
// of the A distribution, which is what keeps C "distributed similar to A"
// when no batching is needed.
package distmat

import (
	"fmt"

	"repro/internal/spmat"
)

// ADist describes the A-style distribution of a rows×cols matrix on a q×q×l
// grid.
type ADist struct {
	Rows, Cols int32
	Q, L       int
	// RowB are the q+1 row block bounds; ColB the q+1 column block bounds.
	RowB, ColB []int32
}

// NewADist builds the A-style descriptor.
func NewADist(rows, cols int32, q, l int) *ADist {
	return &ADist{
		Rows: rows, Cols: cols, Q: q, L: l,
		RowB: spmat.PartBounds(rows, q),
		ColB: spmat.PartBounds(cols, q),
	}
}

// RowRangeOf returns the global row range [lo, hi) owned by process row i.
func (d *ADist) RowRangeOf(i int) (int32, int32) { return d.RowB[i], d.RowB[i+1] }

// ColSliceOf returns the global column range [lo, hi) owned by (·, j, k):
// slice k of block-column j.
func (d *ADist) ColSliceOf(j, k int) (int32, int32) {
	c0, c1 := d.ColB[j], d.ColB[j+1]
	sb := spmat.PartBounds(c1-c0, d.L)
	return c0 + sb[k], c0 + sb[k+1]
}

// Local extracts the piece of the global matrix owned by (i, j, k), with
// local (0-based) indices.
func (d *ADist) Local(global *spmat.CSC, i, j, k int) *spmat.CSC {
	d.check(global)
	r0, r1 := d.RowRangeOf(i)
	c0, c1 := d.ColSliceOf(j, k)
	return spmat.RowRange(spmat.ColRange(global, c0, c1), r0, r1)
}

// LocalMat extracts the piece owned by (i, j, k) and stores it per f —
// a doubly-compressed block when the auto heuristic fires (the q·l-way
// column split is exactly what drives local blocks hypersparse at scale).
func (d *ADist) LocalMat(global *spmat.CSC, i, j, k int, f spmat.Format) spmat.Matrix {
	return spmat.WithFormat(d.Local(global, i, j, k), f)
}

func (d *ADist) check(global *spmat.CSC) {
	if global.Rows != d.Rows || global.Cols != d.Cols {
		panic(fmt.Sprintf("distmat: matrix %v does not match layout %dx%d", global, d.Rows, d.Cols))
	}
}

// Assemble reconstructs the global matrix from the per-coordinate local
// pieces (inverse of Local); used to validate distributions and gather
// results.
func (d *ADist) Assemble(pieces map[[3]int]*spmat.CSC) *spmat.CSC {
	var ts []spmat.Triple
	for coord, m := range pieces {
		i, j, k := coord[0], coord[1], coord[2]
		r0, _ := d.RowRangeOf(i)
		c0, _ := d.ColSliceOf(j, k)
		for _, t := range m.Triples() {
			ts = append(ts, spmat.Triple{Row: t.Row + r0, Col: t.Col + c0, Val: t.Val})
		}
	}
	out, err := spmat.FromTriples(d.Rows, d.Cols, ts, nil)
	if err != nil {
		panic(err)
	}
	return out
}

// BDist describes the B-style distribution of a rows×cols matrix on a q×q×l
// grid: rows sliced across layers, columns blocked.
type BDist struct {
	Rows, Cols int32
	Q, L       int
	RowB, ColB []int32
}

// NewBDist builds the B-style descriptor.
func NewBDist(rows, cols int32, q, l int) *BDist {
	return &BDist{
		Rows: rows, Cols: cols, Q: q, L: l,
		RowB: spmat.PartBounds(rows, q),
		ColB: spmat.PartBounds(cols, q),
	}
}

// RowSliceOf returns the global row range [lo, hi) owned by (i, ·, k): slice
// k of block-row i. It mirrors ADist.ColSliceOf so that A's inner-dimension
// slices align with B's (the SUMMA stages depend on this).
func (d *BDist) RowSliceOf(i, k int) (int32, int32) {
	r0, r1 := d.RowB[i], d.RowB[i+1]
	sb := spmat.PartBounds(r1-r0, d.L)
	return r0 + sb[k], r0 + sb[k+1]
}

// ColRangeOf returns the global column range [lo, hi) owned by process
// column j.
func (d *BDist) ColRangeOf(j int) (int32, int32) { return d.ColB[j], d.ColB[j+1] }

// Local extracts the piece of the global matrix owned by (i, j, k).
func (d *BDist) Local(global *spmat.CSC, i, j, k int) *spmat.CSC {
	if global.Rows != d.Rows || global.Cols != d.Cols {
		panic(fmt.Sprintf("distmat: matrix %v does not match layout %dx%d", global, d.Rows, d.Cols))
	}
	r0, r1 := d.RowSliceOf(i, k)
	c0, c1 := d.ColRangeOf(j)
	return spmat.RowRange(spmat.ColRange(global, c0, c1), r0, r1)
}

// LocalMat extracts the piece owned by (i, j, k) and stores it per f (see
// ADist.LocalMat).
func (d *BDist) LocalMat(global *spmat.CSC, i, j, k int, f spmat.Format) spmat.Matrix {
	return spmat.WithFormat(d.Local(global, i, j, k), f)
}

// Assemble reconstructs the global matrix from per-coordinate local pieces.
func (d *BDist) Assemble(pieces map[[3]int]*spmat.CSC) *spmat.CSC {
	var ts []spmat.Triple
	for coord, m := range pieces {
		i, j, k := coord[0], coord[1], coord[2]
		r0, _ := d.RowSliceOf(i, k)
		c0, _ := d.ColRangeOf(j)
		for _, t := range m.Triples() {
			ts = append(ts, spmat.Triple{Row: t.Row + r0, Col: t.Col + c0, Val: t.Val})
		}
	}
	out, err := spmat.FromTriples(d.Rows, d.Cols, ts, nil)
	if err != nil {
		panic(err)
	}
	return out
}

// Batching is the block-cyclic batch/layer assignment for the columns of one
// block-column of B (equivalently C), per Sec. IV-B.
type Batching struct {
	// Width is the block-column width in columns.
	Width int32
	// B and L are the batch and layer counts.
	B, L int
	// Blk is the cyclic chunk width ⌈Width/(B·L)⌉ (minimum 1).
	Blk int32
}

// NewBatching computes the chunk width for a block column of the given width.
func NewBatching(width int32, b, l int) Batching {
	per := int64(b) * int64(l)
	blk := (int64(width) + per - 1) / per
	if blk < 1 {
		blk = 1
	}
	return Batching{Width: width, B: b, L: l, Blk: int32(blk)}
}

// BatchOf returns the batch owning local column offset o.
func (bt Batching) BatchOf(o int32) int { return int(o/bt.Blk) % bt.B }

// LayerOf returns the layer owning local column offset o (within its batch).
func (bt Batching) LayerOf(o int32) int { return int(o/bt.Blk) / bt.B % bt.L }

// BatchCols returns the local column offsets of batch t, ascending.
func (bt Batching) BatchCols(t int) []int32 {
	var out []int32
	for o := int32(0); o < bt.Width; o++ {
		if bt.BatchOf(o) == t {
			out = append(out, o)
		}
	}
	return out
}

// BatchLayerCols returns the local column offsets owned by (batch t, layer k),
// ascending.
func (bt Batching) BatchLayerCols(t, k int) []int32 {
	var out []int32
	for o := int32(0); o < bt.Width; o++ {
		if bt.BatchOf(o) == t && bt.LayerOf(o) == k {
			out = append(out, o)
		}
	}
	return out
}

// SplitByLayer partitions the columns of a batch-local CSC matrix into l
// pieces by owning layer; a convenience wrapper over SplitByLayerMat for
// callers that work in concrete CSC.
func (bt Batching) SplitByLayer(m *spmat.CSC, t int) ([]*spmat.CSC, [][]int32) {
	mats, offsets := bt.SplitByLayerMat(m, t)
	pieces := make([]*spmat.CSC, len(mats))
	for k, p := range mats {
		pieces[k] = p.ToCSC()
	}
	return pieces, offsets
}

// SplitByLayerMat partitions the columns of a batch-local matrix (whose
// column x corresponds to BatchCols(t)[x]) into l pieces by owning layer,
// returning the pieces and, for bookkeeping, the local offsets each piece
// covers. Each piece keeps m's concrete format, so a doubly-compressed
// Merge-Layer output is split for the fiber AllToAll without inflating
// dense column metadata.
func (bt Batching) SplitByLayerMat(m spmat.Matrix, t int) ([]spmat.Matrix, [][]int32) {
	cols := bt.BatchCols(t)
	_, mc := m.Dims()
	if int32(len(cols)) != mc {
		panic(fmt.Sprintf("distmat: batch matrix has %d cols, batching expects %d", mc, len(cols)))
	}
	lists := make([][]int32, bt.L)   // indices into m's columns
	offsets := make([][]int32, bt.L) // block-column offsets
	for x, o := range cols {
		k := bt.LayerOf(o)
		lists[k] = append(lists[k], int32(x))
		offsets[k] = append(offsets[k], o)
	}
	pieces := make([]spmat.Matrix, bt.L)
	for k := 0; k < bt.L; k++ {
		pieces[k] = spmat.MatColSelect(m, lists[k])
	}
	return pieces, offsets
}
