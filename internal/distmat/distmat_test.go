package distmat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/spmat"
)

func randomMat(t testing.TB, rows, cols int32, nnz int, seed int64) *spmat.CSC {
	if t != nil {
		t.Helper()
	}
	rng := rand.New(rand.NewSource(seed))
	ts := make([]spmat.Triple, 0, nnz)
	for i := 0; i < nnz; i++ {
		ts = append(ts, spmat.Triple{
			Row: int32(rng.Intn(int(rows))),
			Col: int32(rng.Intn(int(cols))),
			Val: float64(rng.Intn(9) + 1),
		})
	}
	m, err := spmat.FromTriples(rows, cols, ts, nil)
	if err != nil {
		panic(err)
	}
	return m
}

func TestADistributeAssembleRoundTrip(t *testing.T) {
	for _, shape := range []struct {
		rows, cols int32
		q, l       int
	}{
		{64, 64, 2, 2},
		{64, 64, 4, 1},
		{63, 61, 2, 2}, // ragged
		{50, 40, 2, 4},
		{17, 90, 3, 2},
	} {
		m := randomMat(t, shape.rows, shape.cols, int(shape.rows)*3, int64(shape.rows))
		d := NewADist(shape.rows, shape.cols, shape.q, shape.l)
		pieces := map[[3]int]*spmat.CSC{}
		var totalNNZ int64
		for i := 0; i < shape.q; i++ {
			for j := 0; j < shape.q; j++ {
				for k := 0; k < shape.l; k++ {
					p := d.Local(m, i, j, k)
					pieces[[3]int{i, j, k}] = p
					totalNNZ += p.NNZ()
				}
			}
		}
		if totalNNZ != m.NNZ() {
			t.Errorf("%+v: pieces have %d nnz, matrix has %d", shape, totalNNZ, m.NNZ())
		}
		if !spmat.Equal(d.Assemble(pieces), m) {
			t.Errorf("%+v: A-distribution round trip failed", shape)
		}
	}
}

func TestBDistributeAssembleRoundTrip(t *testing.T) {
	for _, shape := range []struct {
		rows, cols int32
		q, l       int
	}{
		{64, 64, 2, 2},
		{63, 61, 2, 2},
		{40, 50, 2, 4},
		{90, 17, 3, 2},
	} {
		m := randomMat(t, shape.rows, shape.cols, int(shape.rows)*3, int64(shape.cols))
		d := NewBDist(shape.rows, shape.cols, shape.q, shape.l)
		pieces := map[[3]int]*spmat.CSC{}
		var totalNNZ int64
		for i := 0; i < shape.q; i++ {
			for j := 0; j < shape.q; j++ {
				for k := 0; k < shape.l; k++ {
					p := d.Local(m, i, j, k)
					pieces[[3]int{i, j, k}] = p
					totalNNZ += p.NNZ()
				}
			}
		}
		if totalNNZ != m.NNZ() {
			t.Errorf("%+v: pieces have %d nnz, matrix has %d", shape, totalNNZ, m.NNZ())
		}
		if !spmat.Equal(d.Assemble(pieces), m) {
			t.Errorf("%+v: B-distribution round trip failed", shape)
		}
	}
}

func TestInnerDimensionSlicesAlign(t *testing.T) {
	// A's column slices must equal B's row slices for every (block, layer):
	// SUMMA stage s at layer k multiplies Ã from column block s (slice k)
	// with B̃ from row block s (slice k).
	const n = 57
	for _, ql := range [][2]int{{2, 2}, {3, 4}, {4, 1}} {
		q, l := ql[0], ql[1]
		a := NewADist(100, n, q, l)
		b := NewBDist(n, 80, q, l)
		for s := 0; s < q; s++ {
			for k := 0; k < l; k++ {
				alo, ahi := a.ColSliceOf(s, k)
				blo, bhi := b.RowSliceOf(s, k)
				if alo != blo || ahi != bhi {
					t.Errorf("q=%d l=%d block %d layer %d: A cols [%d,%d) vs B rows [%d,%d)",
						q, l, s, k, alo, ahi, blo, bhi)
				}
			}
		}
	}
}

func TestLocalShapes(t *testing.T) {
	// Divisible case: Ã is (n/q)×(n/(q·l)), B̃ is (n/(q·l))×(n/q) (Fig 1).
	const n = 48
	q, l := 2, 3
	m := randomMat(t, n, n, 200, 99)
	da := NewADist(n, n, q, l)
	db := NewBDist(n, n, q, l)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			for k := 0; k < l; k++ {
				la := da.Local(m, i, j, k)
				if la.Rows != n/int32(q) || la.Cols != n/int32(q*l) {
					t.Errorf("Ã(%d,%d,%d) is %dx%d, want %dx%d", i, j, k, la.Rows, la.Cols, n/q, n/(q*l))
				}
				lb := db.Local(m, i, j, k)
				if lb.Rows != n/int32(q*l) || lb.Cols != n/int32(q) {
					t.Errorf("B̃(%d,%d,%d) is %dx%d, want %dx%d", i, j, k, lb.Rows, lb.Cols, n/(q*l), n/q)
				}
			}
		}
	}
}

func TestBatchingPartitionsAllColumns(t *testing.T) {
	for _, c := range []struct {
		width int32
		b, l  int
	}{
		{16, 2, 2}, {16, 4, 2}, {17, 2, 2}, {5, 4, 4}, {1, 2, 2}, {60, 3, 5},
	} {
		bt := NewBatching(c.width, c.b, c.l)
		seen := make([]bool, c.width)
		var n int
		for t2 := 0; t2 < c.b; t2++ {
			for _, o := range bt.BatchCols(t2) {
				if seen[o] {
					t.Errorf("%+v: column %d in two batches", c, o)
				}
				seen[o] = true
				n++
			}
		}
		if n != int(c.width) {
			t.Errorf("%+v: covered %d of %d columns", c, n, c.width)
		}
		// Batch+layer refines batch.
		for t2 := 0; t2 < c.b; t2++ {
			var m int
			for k := 0; k < c.l; k++ {
				m += len(bt.BatchLayerCols(t2, k))
			}
			if m != len(bt.BatchCols(t2)) {
				t.Errorf("%+v batch %d: layers cover %d of %d", c, t2, m, len(bt.BatchCols(t2)))
			}
		}
	}
}

func TestBatchingDegeneratesToSlices(t *testing.T) {
	// With b=1 and width divisible by l, the layer assignment is the
	// contiguous slicing of the A distribution.
	bt := NewBatching(12, 1, 3)
	for k := 0; k < 3; k++ {
		cols := bt.BatchLayerCols(0, k)
		if len(cols) != 4 {
			t.Fatalf("layer %d: %d cols", k, len(cols))
		}
		for x, o := range cols {
			if o != int32(k*4+x) {
				t.Errorf("layer %d not contiguous: %v", k, cols)
			}
		}
	}
}

func TestBatchingFig1iExample(t *testing.T) {
	// Fig 1(i): width 4 per process block (n=8, q=2), b=2, l=2 → blk=1.
	// Chunks 0..3 → batch (g mod 2), layer (g/2 mod 2):
	//  col 0: batch 0 layer 0; col 1: batch 1 layer 0;
	//  col 2: batch 0 layer 1; col 3: batch 1 layer 1.
	bt := NewBatching(4, 2, 2)
	if bt.Blk != 1 {
		t.Fatalf("blk=%d, want 1", bt.Blk)
	}
	if got := bt.BatchCols(0); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("batch 0 cols=%v, want [0 2]", got)
	}
	if got := bt.BatchCols(1); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("batch 1 cols=%v, want [1 3]", got)
	}
	if bt.LayerOf(0) != 0 || bt.LayerOf(2) != 1 {
		t.Error("layer assignment wrong")
	}
}

func TestSplitByLayer(t *testing.T) {
	m := randomMat(t, 10, 8, 40, 7)
	bt := NewBatching(m.Cols*2, 2, 2) // width 16, b=2, l=2, blk=4
	// Batch 0 columns: offsets {0..3, 8..11}; take the matching 8 columns.
	batchCols := bt.BatchCols(0)
	if int32(len(batchCols)) != m.Cols {
		t.Fatalf("batch has %d cols, fixture expects %d", len(batchCols), m.Cols)
	}
	pieces, offsets := bt.SplitByLayer(m, 0)
	if len(pieces) != 2 {
		t.Fatalf("pieces=%d", len(pieces))
	}
	var total int64
	for k, p := range pieces {
		total += p.NNZ()
		for x := range offsets[k] {
			if bt.LayerOf(offsets[k][x]) != k {
				t.Errorf("piece %d contains offset %d of layer %d", k, offsets[k][x], bt.LayerOf(offsets[k][x]))
			}
			_ = x
		}
	}
	if total != m.NNZ() {
		t.Errorf("pieces lost entries: %d vs %d", total, m.NNZ())
	}
}

func TestBatchingLoadBalance(t *testing.T) {
	// Block-cyclic batching keeps per-(batch,layer) column counts within one
	// chunk of each other — the Merge-Fiber balance motivation of Sec. IV-B.
	bt := NewBatching(64, 4, 4)
	min, max := int32(1<<30), int32(0)
	for t2 := 0; t2 < 4; t2++ {
		for k := 0; k < 4; k++ {
			n := int32(len(bt.BatchLayerCols(t2, k)))
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
	}
	if max-min > bt.Blk {
		t.Errorf("imbalance %d exceeds one chunk (%d)", max-min, bt.Blk)
	}
}

func TestBatchingPartitionProperty(t *testing.T) {
	// For random (width, b, l), the batch/layer assignment partitions the
	// columns, and piece sizes differ by at most one chunk.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := int32(rng.Intn(200) + 1)
		b := rng.Intn(8) + 1
		l := rng.Intn(8) + 1
		bt := NewBatching(width, b, l)
		seen := make([]bool, width)
		for t2 := 0; t2 < b; t2++ {
			for k := 0; k < l; k++ {
				for _, o := range bt.BatchLayerCols(t2, k) {
					if o < 0 || o >= width || seen[o] {
						return false
					}
					seen[o] = true
				}
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDistributionRoundTripProperty(t *testing.T) {
	// Random shapes and grids: Local + Assemble is the identity for both
	// distributions.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int32(rng.Intn(60) + 1)
		cols := int32(rng.Intn(60) + 1)
		q := rng.Intn(3) + 1
		l := rng.Intn(3) + 1
		m := randomMat(nil, rows, cols, rng.Intn(150), seed)
		da := NewADist(rows, cols, q, l)
		db := NewBDist(rows, cols, q, l)
		piecesA := map[[3]int]*spmat.CSC{}
		piecesB := map[[3]int]*spmat.CSC{}
		for i := 0; i < q; i++ {
			for j := 0; j < q; j++ {
				for k := 0; k < l; k++ {
					piecesA[[3]int{i, j, k}] = da.Local(m, i, j, k)
					piecesB[[3]int{i, j, k}] = db.Local(m, i, j, k)
				}
			}
		}
		return spmat.Equal(da.Assemble(piecesA), m) && spmat.Equal(db.Assemble(piecesB), m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
