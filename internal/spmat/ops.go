package spmat

import "fmt"

// Transpose returns the transpose of m using a counting sort over rows. The
// result always has sorted columns, regardless of the input ordering, which
// makes Transpose a convenient canonicalizer.
func Transpose(m *CSC) *CSC {
	nnz := m.NNZ()
	t := &CSC{
		Rows:       m.Cols,
		Cols:       m.Rows,
		ColPtr:     make([]int64, m.Rows+1),
		RowIdx:     make([]int32, nnz),
		Val:        make([]float64, nnz),
		SortedCols: true,
	}
	for _, r := range m.RowIdx {
		t.ColPtr[r+1]++
	}
	for i := int32(0); i < m.Rows; i++ {
		t.ColPtr[i+1] += t.ColPtr[i]
	}
	next := append([]int64(nil), t.ColPtr[:m.Rows]...)
	if !m.SortedCols {
		// The counting sort preserves the input traversal order inside each
		// output column; traversing columns in order keeps output sorted by
		// column index (= original row-major order per output column), which
		// is ascending because we scan j in increasing order.
	}
	for j := int32(0); j < m.Cols; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			r := m.RowIdx[p]
			q := next[r]
			t.RowIdx[q] = j
			t.Val[q] = m.Val[p]
			next[r]++
		}
	}
	return t
}

// ColRange returns the submatrix consisting of columns [j0, j1). Row indices
// are unchanged; column j of the result is column j0+j of m.
func ColRange(m *CSC, j0, j1 int32) *CSC {
	if j0 < 0 || j1 < j0 || j1 > m.Cols {
		panic(fmt.Sprintf("spmat: ColRange [%d,%d) out of range for %d columns", j0, j1, m.Cols))
	}
	lo, hi := m.ColPtr[j0], m.ColPtr[j1]
	out := &CSC{
		Rows:       m.Rows,
		Cols:       j1 - j0,
		ColPtr:     make([]int64, j1-j0+1),
		RowIdx:     append([]int32(nil), m.RowIdx[lo:hi]...),
		Val:        append([]float64(nil), m.Val[lo:hi]...),
		SortedCols: m.SortedCols,
	}
	for j := j0; j <= j1; j++ {
		out.ColPtr[j-j0] = m.ColPtr[j] - lo
	}
	return out
}

// ColSelect gathers the listed columns (in the given order) into a new
// matrix. It implements the block-cyclic batch extraction of Fig 1(i).
func ColSelect(m *CSC, cols []int32) *CSC {
	var nnz int64
	for _, j := range cols {
		nnz += m.ColNNZ(j)
	}
	out := &CSC{
		Rows:       m.Rows,
		Cols:       int32(len(cols)),
		ColPtr:     make([]int64, len(cols)+1),
		RowIdx:     make([]int32, 0, nnz),
		Val:        make([]float64, 0, nnz),
		SortedCols: m.SortedCols,
	}
	for k, j := range cols {
		rows, vals := m.Column(j)
		out.RowIdx = append(out.RowIdx, rows...)
		out.Val = append(out.Val, vals...)
		out.ColPtr[k+1] = int64(len(out.RowIdx))
	}
	return out
}

// RowRange returns the submatrix of rows [i0, i1) with row indices shifted to
// start at zero. Columns are preserved.
func RowRange(m *CSC, i0, i1 int32) *CSC {
	if i0 < 0 || i1 < i0 || i1 > m.Rows {
		panic(fmt.Sprintf("spmat: RowRange [%d,%d) out of range for %d rows", i0, i1, m.Rows))
	}
	out := &CSC{
		Rows:       i1 - i0,
		Cols:       m.Cols,
		ColPtr:     make([]int64, m.Cols+1),
		SortedCols: m.SortedCols,
	}
	for j := int32(0); j < m.Cols; j++ {
		rows, vals := m.Column(j)
		for p := range rows {
			if rows[p] >= i0 && rows[p] < i1 {
				out.RowIdx = append(out.RowIdx, rows[p]-i0)
				out.Val = append(out.Val, vals[p])
			}
		}
		out.ColPtr[j+1] = int64(len(out.RowIdx))
	}
	return out
}

// HCat concatenates matrices side by side: all operands must have the same
// number of rows. Column k of parts[i] becomes column (Σ_{<i} cols)+k.
func HCat(parts []*CSC) *CSC {
	if len(parts) == 0 {
		panic("spmat: HCat of zero matrices")
	}
	rows := parts[0].Rows
	var cols int32
	var nnz int64
	sorted := true
	for _, p := range parts {
		if p.Rows != rows {
			panic(fmt.Sprintf("spmat: HCat row mismatch %d vs %d", p.Rows, rows))
		}
		cols += p.Cols
		nnz += p.NNZ()
		sorted = sorted && p.SortedCols
	}
	out := &CSC{
		Rows:       rows,
		Cols:       cols,
		ColPtr:     make([]int64, cols+1),
		RowIdx:     make([]int32, 0, nnz),
		Val:        make([]float64, 0, nnz),
		SortedCols: sorted,
	}
	c := int32(0)
	for _, p := range parts {
		for j := int32(0); j < p.Cols; j++ {
			rws, vls := p.Column(j)
			out.RowIdx = append(out.RowIdx, rws...)
			out.Val = append(out.Val, vls...)
			c++
			out.ColPtr[c] = int64(len(out.RowIdx))
		}
	}
	return out
}

// HCatMat is the format-generic HCat: all-CSC parts take the CSC fast path,
// all-DCSC parts concatenate in doubly-compressed form — O(nnz + stored
// columns), never touching the dense column count, which is what keeps the
// hypersparse batch-assembly path free of O(cols) scans — and mixed parts
// fall back to CSC. The result's format follows the parts, so callers that
// need the dense-pointer form convert once at the end.
func HCatMat(parts []Matrix) Matrix {
	if len(parts) == 0 {
		panic("spmat: HCatMat of zero matrices")
	}
	allDCSC := true
	for _, p := range parts {
		if p.Format() != FormatDCSC {
			allDCSC = false
			break
		}
	}
	if allDCSC {
		return hcatDCSC(parts)
	}
	// ToCSC is the identity on CSC parts, so one path serves all-CSC and
	// mixed inputs alike.
	cscs := make([]*CSC, len(parts))
	for i, p := range parts {
		cscs[i] = p.ToCSC()
	}
	return HCat(cscs)
}

// hcatDCSC concatenates doubly-compressed parts without inflating: stored
// columns are re-indexed by the cumulative column offset and the entry
// arrays are appended wholesale.
func hcatDCSC(parts []Matrix) *DCSC {
	rows, _ := parts[0].Dims()
	var cols int32
	var nnz, ne int64
	sorted := true
	for _, p := range parts {
		r, c := p.Dims()
		if r != rows {
			panic(fmt.Sprintf("spmat: HCatMat row mismatch %d vs %d", r, rows))
		}
		cols += c
		nnz += p.NNZ()
		ne += p.NonEmptyCols()
		sorted = sorted && p.Sorted()
	}
	out := &DCSC{
		Rows:       rows,
		Cols:       cols,
		JC:         make([]int32, 0, ne),
		CP:         make([]int64, 1, ne+1),
		IR:         make([]int32, 0, nnz),
		Num:        make([]float64, 0, nnz),
		SortedCols: sorted,
	}
	colOff := int32(0)
	for _, p := range parts {
		d := p.ToDCSC()
		base := int64(len(out.IR))
		for i, j := range d.JC {
			out.JC = append(out.JC, j+colOff)
			out.CP = append(out.CP, base+d.CP[i+1])
		}
		out.IR = append(out.IR, d.IR...)
		out.Num = append(out.Num, d.Num...)
		colOff += d.Cols
	}
	return out
}

// VCat stacks matrices vertically: all operands must have the same number of
// columns; row indices of parts[i] are offset by the cumulative row count.
func VCat(parts []*CSC) *CSC {
	if len(parts) == 0 {
		panic("spmat: VCat of zero matrices")
	}
	cols := parts[0].Cols
	var rows int32
	var nnz int64
	for _, p := range parts {
		if p.Cols != cols {
			panic(fmt.Sprintf("spmat: VCat column mismatch %d vs %d", p.Cols, cols))
		}
		rows += p.Rows
		nnz += p.NNZ()
	}
	out := &CSC{
		Rows:       rows,
		Cols:       cols,
		ColPtr:     make([]int64, cols+1),
		RowIdx:     make([]int32, 0, nnz),
		Val:        make([]float64, 0, nnz),
		SortedCols: false,
	}
	// Concatenating per column keeps within-column order sorted if each part
	// is sorted, because parts contribute disjoint ascending row ranges.
	sorted := true
	for _, p := range parts {
		sorted = sorted && p.SortedCols
	}
	for j := int32(0); j < cols; j++ {
		off := int32(0)
		for _, p := range parts {
			rws, vls := p.Column(j)
			for q := range rws {
				out.RowIdx = append(out.RowIdx, rws[q]+off)
				out.Val = append(out.Val, vls[q])
			}
			off += p.Rows
		}
		out.ColPtr[j+1] = int64(len(out.RowIdx))
	}
	out.SortedCols = sorted
	return out
}

// Scale multiplies every stored value by s, in place.
func (m *CSC) Scale(s float64) {
	for i := range m.Val {
		m.Val[i] *= s
	}
}

// Map applies f to every stored value, in place.
func (m *CSC) Map(f func(v float64) float64) {
	for i := range m.Val {
		m.Val[i] = f(m.Val[i])
	}
}

// Add returns a+b computed entry-wise with add (nil means ordinary +). The
// result has sorted, compacted columns.
func Add(a, b *CSC, add func(x, y float64) float64) *CSC {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("spmat: Add shape mismatch %v vs %v", a, b))
	}
	ts := a.Triples()
	ts = append(ts, b.Triples()...)
	out, err := FromTriples(a.Rows, a.Cols, ts, add)
	if err != nil {
		panic(err)
	}
	return out
}

// Mask returns the entries of m whose positions are also stored in mask
// (structural intersection, values taken from m). Both operands may be
// unsorted; the result has sorted columns. Used by triangle counting
// (C = (L·U) .* A).
func Mask(m, mask *CSC) *CSC {
	if m.Rows != mask.Rows || m.Cols != mask.Cols {
		panic(fmt.Sprintf("spmat: Mask shape mismatch %v vs %v", m, mask))
	}
	var ts []Triple
	marker := make(map[int32]struct{})
	for j := int32(0); j < m.Cols; j++ {
		rowsM, _ := mask.Column(j)
		if len(rowsM) == 0 {
			continue
		}
		clear(marker)
		for _, r := range rowsM {
			marker[r] = struct{}{}
		}
		rows, vals := m.Column(j)
		for p := range rows {
			if _, ok := marker[rows[p]]; ok {
				ts = append(ts, Triple{Row: rows[p], Col: j, Val: vals[p]})
			}
		}
	}
	out, err := FromTriples(m.Rows, m.Cols, ts, nil)
	if err != nil {
		panic(err)
	}
	return out
}

// Sum returns the sum of all stored values.
func (m *CSC) Sum() float64 {
	var s float64
	for _, v := range m.Val {
		s += v
	}
	return s
}

// Filter removes entries for which keep returns false, in place, preserving
// within-column order (and thus the SortedCols flag).
func (m *CSC) Filter(keep func(row, col int32, v float64) bool) {
	w := int64(0)
	newPtr := make([]int64, m.Cols+1)
	for j := int32(0); j < m.Cols; j++ {
		newPtr[j] = w
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			if keep(m.RowIdx[p], j, m.Val[p]) {
				m.RowIdx[w] = m.RowIdx[p]
				m.Val[w] = m.Val[p]
				w++
			}
		}
	}
	newPtr[m.Cols] = w
	m.ColPtr = newPtr
	m.RowIdx = m.RowIdx[:w]
	m.Val = m.Val[:w]
	m.InvalidateNonEmptyCols() // filtering can empty columns
}

// DropZeros removes entries whose stored value is exactly zero.
func (m *CSC) DropZeros() {
	m.Filter(func(_, _ int32, v float64) bool { return v != 0 })
}
