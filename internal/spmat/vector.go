package spmat

import "fmt"

// ColSums returns the sum of stored values per column.
func (m *CSC) ColSums() []float64 {
	out := make([]float64, m.Cols)
	for j := int32(0); j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		var s float64
		for p := lo; p < hi; p++ {
			s += m.Val[p]
		}
		out[j] = s
	}
	return out
}

// RowSums returns the sum of stored values per row.
func (m *CSC) RowSums() []float64 {
	out := make([]float64, m.Rows)
	for p, r := range m.RowIdx {
		out[r] += m.Val[p]
	}
	return out
}

// ColCounts returns the number of stored entries per column.
func (m *CSC) ColCounts() []int64 {
	out := make([]int64, m.Cols)
	for j := int32(0); j < m.Cols; j++ {
		out[j] = m.ColNNZ(j)
	}
	return out
}

// RowCounts returns the number of stored entries per row.
func (m *CSC) RowCounts() []int64 {
	out := make([]int64, m.Rows)
	for _, r := range m.RowIdx {
		out[r]++
	}
	return out
}

// Diag returns the main-diagonal values as a dense vector.
func (m *CSC) Diag() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	out := make([]float64, n)
	for j := int32(0); j < n; j++ {
		rows, vals := m.Column(j)
		for p, r := range rows {
			if r == j {
				out[j] += vals[p]
			}
		}
	}
	return out
}

// ScaleColumns multiplies column j by s[j], in place.
func (m *CSC) ScaleColumns(s []float64) {
	if int32(len(s)) != m.Cols {
		panic(fmt.Sprintf("spmat: ScaleColumns got %d factors for %d columns", len(s), m.Cols))
	}
	for j := int32(0); j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		f := s[j]
		for p := lo; p < hi; p++ {
			m.Val[p] *= f
		}
	}
}

// ScaleRows multiplies row i by s[i], in place.
func (m *CSC) ScaleRows(s []float64) {
	if int32(len(s)) != m.Rows {
		panic(fmt.Sprintf("spmat: ScaleRows got %d factors for %d rows", len(s), m.Rows))
	}
	for p, r := range m.RowIdx {
		m.Val[p] *= s[r]
	}
}

// MatVec computes y = m·x for a dense vector x.
func (m *CSC) MatVec(x []float64) []float64 {
	if int32(len(x)) != m.Cols {
		panic(fmt.Sprintf("spmat: MatVec got %d-vector for %d columns", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for j := int32(0); j < m.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		rows, vals := m.Column(j)
		for p := range rows {
			y[rows[p]] += vals[p] * xj
		}
	}
	return y
}

// PermuteRows relabels rows: entry at row r moves to row perm[r]. perm must
// be a permutation of [0, rows).
func PermuteRows(m *CSC, perm []int32) *CSC {
	if int32(len(perm)) != m.Rows {
		panic(fmt.Sprintf("spmat: PermuteRows got %d-permutation for %d rows", len(perm), m.Rows))
	}
	out := m.Clone()
	for p, r := range out.RowIdx {
		out.RowIdx[p] = perm[r]
	}
	out.SortedCols = false
	out.SortColumns()
	return out
}

// PermuteCols relabels columns: column c moves to column perm[c].
func PermuteCols(m *CSC, perm []int32) *CSC {
	if int32(len(perm)) != m.Cols {
		panic(fmt.Sprintf("spmat: PermuteCols got %d-permutation for %d columns", len(perm), m.Cols))
	}
	inverse := make([]int32, m.Cols)
	for c, d := range perm {
		inverse[d] = int32(c)
	}
	// Column d of the output is column inverse[d] of the input.
	return ColSelect(m, inverse)
}

// Kron returns the Kronecker product a ⊗ b: a (ra·rb)×(ca·cb) matrix where
// block (i,j) is a(i,j)·b. Kronecker powers of a small seed matrix generate
// the deterministic scale-free graphs of the Graph500 family.
func Kron(a, b *CSC) *CSC {
	rows := int64(a.Rows) * int64(b.Rows)
	cols := int64(a.Cols) * int64(b.Cols)
	if rows > 1<<31-1 || cols > 1<<31-1 {
		panic("spmat: Kron result exceeds int32 index space")
	}
	nnz := a.NNZ() * b.NNZ()
	out := &CSC{
		Rows:       int32(rows),
		Cols:       int32(cols),
		ColPtr:     make([]int64, cols+1),
		RowIdx:     make([]int32, 0, nnz),
		Val:        make([]float64, 0, nnz),
		SortedCols: a.SortedCols && b.SortedCols,
	}
	c := int64(0)
	for ja := int32(0); ja < a.Cols; ja++ {
		rowsA, valsA := a.Column(ja)
		for jb := int32(0); jb < b.Cols; jb++ {
			rowsB, valsB := b.Column(jb)
			for pa := range rowsA {
				base := int64(rowsA[pa]) * int64(b.Rows)
				va := valsA[pa]
				for pb := range rowsB {
					out.RowIdx = append(out.RowIdx, int32(base+int64(rowsB[pb])))
					out.Val = append(out.Val, va*valsB[pb])
				}
			}
			c++
			out.ColPtr[c] = int64(len(out.RowIdx))
		}
	}
	return out
}
