package spmat

import "fmt"

// PartBounds partitions n items into parts nearly-equal contiguous ranges and
// returns the parts+1 boundaries. The first (n mod parts) ranges get one extra
// item, matching the block distribution used for process grids.
func PartBounds(n int32, parts int) []int32 {
	if parts <= 0 {
		panic(fmt.Sprintf("spmat: PartBounds with %d parts", parts))
	}
	bounds := make([]int32, parts+1)
	base := n / int32(parts)
	extra := n % int32(parts)
	for i := 0; i < parts; i++ {
		bounds[i+1] = bounds[i] + base
		if int32(i) < extra {
			bounds[i+1]++
		}
	}
	return bounds
}

// PartOf returns the index of the range in bounds (as produced by PartBounds)
// that contains item i.
func PartOf(bounds []int32, i int32) int {
	lo, hi := 0, len(bounds)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if bounds[mid] <= i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// ColSplit splits m into parts matrices of contiguous column ranges
// (Alg 2 line 4 uses this to split D̃ for the fiber AllToAll).
func ColSplit(m *CSC, parts int) []*CSC {
	bounds := PartBounds(m.Cols, parts)
	out := make([]*CSC, parts)
	for i := 0; i < parts; i++ {
		out[i] = ColRange(m, bounds[i], bounds[i+1])
	}
	return out
}

// CyclicCols returns, for each of parts pieces, the list of columns assigned
// to that piece under a block-cyclic distribution with the given block width:
// column c belongs to piece (c/block) mod parts. The paper (Sec. IV-B) uses
// this to split B̃ into batches so that each batch contains l aligned blocks,
// balancing Merge-Fiber load.
func CyclicCols(cols int32, parts int, block int32) [][]int32 {
	if block <= 0 {
		block = 1
	}
	out := make([][]int32, parts)
	for c := int32(0); c < cols; c++ {
		p := int((c / block)) % parts
		out[p] = append(out[p], c)
	}
	return out
}

// ColSplitCyclic splits m into parts pieces block-cyclically with the given
// block width. Piece p holds the columns CyclicCols assigns to p, in order.
func ColSplitCyclic(m *CSC, parts int, block int32) []*CSC {
	lists := CyclicCols(m.Cols, parts, block)
	out := make([]*CSC, parts)
	for p := range lists {
		out[p] = ColSelect(m, lists[p])
	}
	return out
}

// ConcatCyclic inverts ColSplitCyclic: given the pieces and the original
// total column count and block width, it reassembles the original column
// order. It is the ColConcat of Alg 4 line 7 generalized to the block-cyclic
// layout.
func ConcatCyclic(pieces []*CSC, cols int32, block int32) *CSC {
	parts := len(pieces)
	lists := CyclicCols(cols, parts, block)
	rows := pieces[0].Rows
	var nnz int64
	sorted := true
	for _, p := range pieces {
		nnz += p.NNZ()
		sorted = sorted && p.SortedCols
		if p.Rows != rows {
			panic("spmat: ConcatCyclic row mismatch")
		}
	}
	out := &CSC{
		Rows:       rows,
		Cols:       cols,
		ColPtr:     make([]int64, cols+1),
		RowIdx:     make([]int32, nnz),
		Val:        make([]float64, nnz),
		SortedCols: sorted,
	}
	// First pass: column sizes.
	for p := range pieces {
		for k, c := range lists[p] {
			out.ColPtr[c+1] = pieces[p].ColNNZ(int32(k))
		}
	}
	for j := int32(0); j < cols; j++ {
		out.ColPtr[j+1] += out.ColPtr[j]
	}
	for p := range pieces {
		for k, c := range lists[p] {
			rws, vls := pieces[p].Column(int32(k))
			off := out.ColPtr[c]
			copy(out.RowIdx[off:], rws)
			copy(out.Val[off:], vls)
		}
	}
	return out
}
