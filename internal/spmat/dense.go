package spmat

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DenseMat is a row-major dense matrix, the tall-skinny operand of the
// sparse×dense (SpMM) engine: B and C in C = A·B where A is sparse and B has
// few columns (GNN feature blocks, embedding panels). Row-major is the layout
// SpMM wants — the kernel's inner loop walks one row of B for every stored
// entry of A, so the row must be contiguous.
type DenseMat struct {
	Rows, Cols int32
	// Val holds Rows*Cols values; entry (i, j) lives at Val[i*Cols+j].
	Val []float64
}

// NewDense returns a zeroed rows×cols dense matrix.
func NewDense(rows, cols int32) *DenseMat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("spmat: NewDense(%d, %d)", rows, cols))
	}
	return &DenseMat{Rows: rows, Cols: cols, Val: make([]float64, int64(rows)*int64(cols))}
}

// Dims returns (rows, cols).
func (d *DenseMat) Dims() (int32, int32) { return d.Rows, d.Cols }

// At returns entry (i, j).
func (d *DenseMat) At(i, j int32) float64 { return d.Val[int64(i)*int64(d.Cols)+int64(j)] }

// Set assigns entry (i, j).
func (d *DenseMat) Set(i, j int32, v float64) { d.Val[int64(i)*int64(d.Cols)+int64(j)] = v }

// RowSlice returns row i as a contiguous slice (aliasing d.Val).
func (d *DenseMat) RowSlice(i int32) []float64 {
	off := int64(i) * int64(d.Cols)
	return d.Val[off : off+int64(d.Cols)]
}

// Clone deep-copies the matrix.
func (d *DenseMat) Clone() *DenseMat {
	out := &DenseMat{Rows: d.Rows, Cols: d.Cols, Val: make([]float64, len(d.Val))}
	copy(out.Val, d.Val)
	return out
}

// DenseEqual reports bitwise equality: same shape and every value identical
// at the Float64bits level, the comparison the differential SpMM tests use
// (it distinguishes -0 from +0 and compares NaNs by payload, like
// spmat.Equal's role on the sparse side).
func DenseEqual(a, b *DenseMat) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Val {
		if math.Float64bits(v) != math.Float64bits(b.Val[i]) {
			return false
		}
	}
	return true
}

// DenseApproxEqual reports shape equality and per-entry agreement within tol.
func DenseApproxEqual(a, b *DenseMat, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Val {
		if math.Abs(v-b.Val[i]) > tol {
			return false
		}
	}
	return true
}

// String describes the matrix, e.g. "1024x32 dense".
func (d *DenseMat) String() string { return fmt.Sprintf("%dx%d dense", d.Rows, d.Cols) }

// DenseMemBytes is the modeled in-memory footprint of a rows×cols dense
// block: 8 bytes per value. It is the dense counterpart of MemBytesModel and
// what the 1.5D planner charges for resident B panels and C accumulators.
func DenseMemBytes(rows, cols int32) int64 { return 8 * int64(rows) * int64(cols) }

// MemBytes returns the in-memory footprint.
func (d *DenseMat) MemBytes() int64 { return DenseMemBytes(d.Rows, d.Cols) }

// The dense wire format is deliberately separate from (and simpler than) the
// sparse one:
//
//	[0:4)  rows  (int32 LE)
//	[4:8)  cols  (int32 LE)
//	[8]    flags (must be zero; reserved)
//
// followed by rows·cols float64 values, row-major. There is no nnz field and
// no index payload — a dense panel's size is fully determined by its shape.
const denseHeader = 9

// DenseWireBytesFor returns the wire size of a rows×cols dense block — the
// sizing the planner uses so modeled 1.5D communication volume is
// byte-identical to what the meters charge.
func DenseWireBytesFor(rows, cols int32) int64 {
	return denseHeader + 8*int64(rows)*int64(cols)
}

// CommBytes returns the wire size; DenseMat implements mpi.Payload with it.
func (d *DenseMat) CommBytes() int64 { return DenseWireBytesFor(d.Rows, d.Cols) }

// Serialize encodes the matrix into the dense wire format above.
func (d *DenseMat) Serialize() []byte {
	buf := make([]byte, DenseWireBytesFor(d.Rows, d.Cols))
	binary.LittleEndian.PutUint32(buf[0:], uint32(d.Rows))
	binary.LittleEndian.PutUint32(buf[4:], uint32(d.Cols))
	off := denseHeader
	for _, v := range d.Val {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	return buf
}

// DeserializeDense decodes a matrix from the dense wire format. Like the
// sparse decoder it validates the header before trusting any size arithmetic
// derived from it: rows·cols on a hostile header would overflow int64 and
// could otherwise alias a small buffer's length.
func DeserializeDense(buf []byte) (*DenseMat, error) {
	if len(buf) < denseHeader {
		return nil, fmt.Errorf("spmat: serialized dense matrix truncated (%d bytes)", len(buf))
	}
	rows := int32(binary.LittleEndian.Uint32(buf[0:]))
	cols := int32(binary.LittleEndian.Uint32(buf[4:]))
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("spmat: serialized dense matrix has negative shape %dx%d", rows, cols)
	}
	if buf[8] != 0 {
		return nil, fmt.Errorf("spmat: serialized dense matrix has unknown flags 0x%02x", buf[8])
	}
	// Bound each dimension by the payload size before multiplying them: the
	// product of two hostile int32s can exceed int64(len(buf)) while wrapping
	// any int32 arithmetic, so the comparison must happen in int64 on the
	// unmultiplied factors first.
	avail := int64(len(buf)-denseHeader) / 8
	if rows > 0 && int64(cols) > avail/int64(rows) {
		return nil, fmt.Errorf("spmat: serialized dense shape %dx%d exceeds buffer capacity (%d bytes)", rows, cols, len(buf))
	}
	n := int64(rows) * int64(cols)
	want := denseHeader + 8*n
	if int64(len(buf)) != want {
		return nil, fmt.Errorf("spmat: serialized dense matrix has %d bytes, want %d", len(buf), want)
	}
	d := &DenseMat{Rows: rows, Cols: cols, Val: make([]float64, n)}
	off := denseHeader
	for i := range d.Val {
		d.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return d, nil
}

// DenseRowRange returns rows [lo, hi) as a new matrix.
func DenseRowRange(d *DenseMat, lo, hi int32) *DenseMat {
	if lo < 0 || hi < lo || hi > d.Rows {
		panic(fmt.Sprintf("spmat: DenseRowRange [%d,%d) of %d rows", lo, hi, d.Rows))
	}
	out := &DenseMat{Rows: hi - lo, Cols: d.Cols}
	a := int64(lo) * int64(d.Cols)
	b := int64(hi) * int64(d.Cols)
	out.Val = make([]float64, b-a)
	copy(out.Val, d.Val[a:b])
	return out
}

// DenseRowView returns rows [lo, hi) as a zero-copy view aliasing d.Val —
// row-major storage makes a row range contiguous. Mutating the view mutates
// d; the SpMM inner loops use it to address the operand rows one ring block
// covers without copying the panel.
func DenseRowView(d *DenseMat, lo, hi int32) *DenseMat {
	if lo < 0 || hi < lo || hi > d.Rows {
		panic(fmt.Sprintf("spmat: DenseRowView [%d,%d) of %d rows", lo, hi, d.Rows))
	}
	return &DenseMat{
		Rows: hi - lo, Cols: d.Cols,
		Val: d.Val[int64(lo)*int64(d.Cols) : int64(hi)*int64(d.Cols)],
	}
}

// DenseColRange returns columns [lo, hi) as a new matrix.
func DenseColRange(d *DenseMat, lo, hi int32) *DenseMat {
	if lo < 0 || hi < lo || hi > d.Cols {
		panic(fmt.Sprintf("spmat: DenseColRange [%d,%d) of %d cols", lo, hi, d.Cols))
	}
	out := NewDense(d.Rows, hi-lo)
	for i := int32(0); i < d.Rows; i++ {
		copy(out.RowSlice(i), d.RowSlice(i)[lo:hi])
	}
	return out
}

// DenseHCat concatenates equally-tall parts left to right, the dense
// counterpart of HCat used to assemble batched SpMM outputs.
func DenseHCat(parts []*DenseMat) *DenseMat {
	if len(parts) == 0 {
		return NewDense(0, 0)
	}
	rows := parts[0].Rows
	var cols int32
	for _, p := range parts {
		if p.Rows != rows {
			panic(fmt.Sprintf("spmat: DenseHCat row mismatch %d vs %d", p.Rows, rows))
		}
		cols += p.Cols
	}
	out := NewDense(rows, cols)
	for i := int32(0); i < rows; i++ {
		dst := out.RowSlice(i)
		off := int32(0)
		for _, p := range parts {
			copy(dst[off:off+p.Cols], p.RowSlice(i))
			off += p.Cols
		}
	}
	return out
}

// CopyInto writes d into dst with its (0,0) entry at (r0, c0). The 1.5D
// drivers use it to assemble the global product from per-rank panels.
func (d *DenseMat) CopyInto(dst *DenseMat, r0, c0 int32) {
	if r0 < 0 || c0 < 0 || r0+d.Rows > dst.Rows || c0+d.Cols > dst.Cols {
		panic(fmt.Sprintf("spmat: CopyInto %dx%d at (%d,%d) of %dx%d", d.Rows, d.Cols, r0, c0, dst.Rows, dst.Cols))
	}
	for i := int32(0); i < d.Rows; i++ {
		copy(dst.RowSlice(r0 + i)[c0:c0+d.Cols], d.RowSlice(i))
	}
}

// AddInto accumulates d into dst at (r0, c0) entry-wise.
func (d *DenseMat) AddInto(dst *DenseMat, r0, c0 int32) {
	if r0 < 0 || c0 < 0 || r0+d.Rows > dst.Rows || c0+d.Cols > dst.Cols {
		panic(fmt.Sprintf("spmat: AddInto %dx%d at (%d,%d) of %dx%d", d.Rows, d.Cols, r0, c0, dst.Rows, dst.Cols))
	}
	for i := int32(0); i < d.Rows; i++ {
		src := d.RowSlice(i)
		row := dst.RowSlice(r0 + i)[c0:]
		for j := range src {
			row[j] += src[j]
		}
	}
}

// DenseFromCSC expands a sparse matrix into a dense one.
func DenseFromCSC(m *CSC) *DenseMat {
	out := NewDense(m.Rows, m.Cols)
	for j := int32(0); j < m.Cols; j++ {
		rows, vals := m.Column(j)
		for k, i := range rows {
			out.Val[int64(i)*int64(m.Cols)+int64(j)] += vals[k]
		}
	}
	return out
}

// ToCSC converts the dense matrix to CSC, keeping explicit nonzeros only.
// The SUMMA arm of the sparse×dense engine uses it to run a dense operand
// through the sparse pipeline.
func (d *DenseMat) ToCSC() *CSC {
	counts := make([]int64, d.Cols)
	for i := int32(0); i < d.Rows; i++ {
		row := d.RowSlice(i)
		for j, v := range row {
			if v != 0 {
				counts[j]++
			}
		}
	}
	m := &CSC{Rows: d.Rows, Cols: d.Cols, ColPtr: make([]int64, d.Cols+1), SortedCols: true}
	var nnz int64
	for j, c := range counts {
		m.ColPtr[j] = nnz
		nnz += c
	}
	m.ColPtr[d.Cols] = nnz
	m.RowIdx = make([]int32, nnz)
	m.Val = make([]float64, nnz)
	next := make([]int64, d.Cols)
	copy(next, m.ColPtr[:d.Cols])
	for i := int32(0); i < d.Rows; i++ {
		row := d.RowSlice(i)
		for j, v := range row {
			if v != 0 {
				p := next[j]
				m.RowIdx[p] = i
				m.Val[p] = v
				next[j] = p + 1
			}
		}
	}
	return m
}
