package spmat

import "fmt"

// Format selects the in-memory storage of a sparse matrix block.
//
// The distributed algorithm never sees a whole matrix: it sees the local
// blocks a 3D grid deals out, and at the paper's scale (tens of thousands of
// processes, many layers) those blocks are *hypersparse* — far more columns
// than nonzeros, e.g. the Rice-kmers regime of ~2 nnz per column spread over
// a q·l-way column split. A dense per-column pointer array (CSC) then costs
// O(cols) per block in memory and in every scan, dwarfing the O(nnz) payload.
// DCSC (doubly-compressed sparse columns, Buluç & Gilbert) stores only the
// non-empty columns, making every per-block quantity O(nnz).
type Format int

const (
	// FormatAuto picks per block: DCSC when fewer than half the columns are
	// occupied (the same 2× threshold as the hypersparse wire encoding),
	// CSC otherwise. This is the zero value and the default everywhere.
	FormatAuto Format = iota
	// FormatCSC forces the dense-column-pointer representation for every
	// block (the behavior of releases before the format knob existed).
	FormatCSC
	// FormatDCSC forces the doubly-compressed representation for every block.
	FormatDCSC
)

// String names the format for reports and flags.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatCSC:
		return "csc"
	case FormatDCSC:
		return "dcsc"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat maps a CLI string to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "auto", "":
		return FormatAuto, nil
	case "csc":
		return FormatCSC, nil
	case "dcsc":
		return FormatDCSC, nil
	}
	return 0, fmt.Errorf("spmat: unknown format %q (csc|dcsc|auto)", s)
}

// Matrix is the pluggable storage interface the local kernels and the
// distributed core operate on. Two implementations exist: *CSC (dense column
// pointers, O(cols) metadata) and *DCSC (doubly compressed, O(non-empty
// columns) metadata). Everything a kernel, a split, a footprint model, or
// the wire layer needs is expressible without assuming dense column
// metadata:
//
//   - EnumCols iterates only the non-empty columns, in ascending order, so
//     symbolic and numeric passes do work proportional to nnz/flops;
//   - Column/ColNNZ look one column up (O(1) for CSC, O(log nzc) for DCSC;
//     DCSC.Cursor gives the amortized-O(1) positional form the generic
//     kernels use for the A-side accesses of SpGEMM);
//   - MemBytes is the per-format modeled footprint driving the
//     memory-constrained batch decision;
//   - CommBytes/Serialize speak the shared wire format, which chooses its
//     own (hypersparse or dense) encoding independent of the in-memory form,
//     so communication volume never depends on the format knob.
type Matrix interface {
	// Dims returns the logical (rows, cols) shape.
	Dims() (rows, cols int32)
	// NNZ returns the number of stored entries.
	NNZ() int64
	// NonEmptyCols returns the number of columns with at least one entry.
	NonEmptyCols() int64
	// ColNNZ returns the entry count of column j (0 for absent columns).
	ColNNZ(j int32) int64
	// Column returns views of column j's row indices and values (empty for
	// absent columns). Callers must not mutate them unless they own the
	// matrix.
	Column(j int32) ([]int32, []float64)
	// EnumCols calls fn for every non-empty column in ascending column
	// order, passing views of its row indices and values.
	EnumCols(fn func(j int32, rows []int32, vals []float64))
	// Sorted reports whether every column stores its rows in ascending
	// order.
	Sorted() bool
	// SortColumns sorts every column's rows (and values) ascending in place.
	SortColumns()
	// Format identifies the concrete representation (FormatCSC or
	// FormatDCSC, never FormatAuto).
	Format() Format
	// MemBytes is the modeled memory footprint under the paper's accounting
	// (per-format; see BytesPerNonzero and DCSC.MemBytes).
	MemBytes() int64
	// CommBytes is the wire size; identical for both formats of the same
	// logical matrix.
	CommBytes() int64
	// Serialize encodes the shared wire format (see serialize.go).
	Serialize() []byte
	// ToCSC returns the matrix in CSC form (itself when already CSC).
	ToCSC() *CSC
	// ToDCSC returns the matrix in DCSC form (itself when already DCSC).
	ToDCSC() *DCSC
	// CloneMat returns a deep copy with the same concrete format.
	CloneMat() Matrix
	// String returns a compact shape summary.
	String() string
}

// Hypersparse reports whether a block with the given shape qualifies for
// doubly-compressed storage: fewer than half the columns occupied. The same
// threshold drives the wire encoding (hypersparseWire) and FormatAuto, so a
// block that compresses in memory also compresses on the wire.
func Hypersparse(nonEmpty int64, cols int32) bool {
	return 2*nonEmpty < int64(cols)
}

// WithFormat converts m to the requested format, returning m itself when it
// already matches. FormatAuto applies the Hypersparse heuristic per block.
func WithFormat(m Matrix, f Format) Matrix {
	switch f {
	case FormatCSC:
		return m.ToCSC()
	case FormatDCSC:
		return m.ToDCSC()
	default:
		return AutoFormat(m)
	}
}

// AutoFormat applies the hypersparse heuristic: DCSC when fewer than half
// the columns are occupied, CSC otherwise. The 2× threshold keeps dense-ish
// blocks on the O(1)-column-lookup path and mirrors the wire encoding's
// break-even point.
func AutoFormat(m Matrix) Matrix {
	_, cols := m.Dims()
	if Hypersparse(m.NonEmptyCols(), cols) {
		return m.ToDCSC()
	}
	return m.ToCSC()
}
