// Package spmat provides the sparse matrix representations and operations
// used by every layer of the batched SUMMA3D stack: compressed sparse column
// (CSC) storage with an explicit sorted/unsorted flag, coordinate triples,
// splitting and concatenation primitives that implement the paper's layer and
// batch decompositions (Fig 1), and Matrix Market I/O.
//
// The column orientation mirrors the paper: local multiplies, merges, and
// batching all operate column-by-column, and the "sort-free" optimization of
// Sec. IV-D is expressed here as CSC matrices whose columns are allowed to
// hold row indices in arbitrary order (SortedCols == false).
//
// # Construction and comparison
//
// Matrices are built from coordinate Triples (FromTriples, accumulating
// duplicates through a semiring's add), generated (Identity), or parsed from
// Matrix Market streams (ReadMatrixMarket, hardened against hostile size
// lines, with a fuzz harness and checked-in corpus under testdata/fuzz). Equal compares structurally independent of
// within-column entry order — the comparison the sort-free kernels need —
// while ApproxEqual tolerates the summation-order differences distributed
// floating-point multiplies legitimately produce.
//
// # Distribution primitives
//
// PartBounds, ColRange/RowRange, ColSelect, HCat/VCat, and the cyclic
// split helpers carve matrices into the block rows, block columns, layer
// slices, and block-cyclic batches of Fig 1, and reassemble piece outputs;
// CommBytes
// makes *CSC an mpi.Payload so pieces can ride the simulated collectives
// with exact wire-size accounting.
package spmat
