// Package spmat provides the sparse matrix representations and operations
// used by every layer of the batched SUMMA3D stack: pluggable column-major
// storage (the Matrix interface) with two implementations — CSC and the
// doubly-compressed DCSC — an explicit sorted/unsorted flag, coordinate
// triples, splitting and concatenation primitives that implement the paper's
// layer and batch decompositions (Fig 1), and Matrix Market I/O.
//
// The column orientation mirrors the paper: local multiplies, merges, and
// batching all operate column-by-column, and the "sort-free" optimization of
// Sec. IV-D is expressed here as matrices whose columns are allowed to
// hold row indices in arbitrary order (SortedCols == false).
//
// # Storage formats
//
// CSC keeps a dense (cols+1)-entry column-pointer array — O(1) column
// lookup, O(cols) metadata. DCSC (Buluç & Gilbert) keeps metadata only for
// the non-empty columns (JC/CP index arrays over shared IR/Num entry
// arrays) — O(log nzc) lookup, O(nzc) metadata — which is what hypersparse
// blocks need: a 3D grid's q·l-way column split leaves far more columns
// than nonzeros per block at scale (the paper's Rice-kmers regime, ~2 nnz
// per column). The Matrix interface (EnumCols, Column, MemBytes, the wire
// methods) lets kernels and the distributed core treat both uniformly;
// Format/WithFormat/AutoFormat select per block, compressing exactly when
// fewer than half the columns are occupied — the same threshold the wire
// encoding uses, so in-memory and on-wire compression agree. The wire
// format itself is chosen by occupancy alone: both in-memory formats of a
// logical matrix serialize to identical bytes, and DeserializeMatrix
// decodes a hypersparse buffer straight into DCSC without materializing
// dense column pointers.
//
// # Construction and comparison
//
// Matrices are built from coordinate Triples (FromTriples, accumulating
// duplicates through a semiring's add), generated (Identity), or parsed from
// Matrix Market streams (ReadMatrixMarket, hardened against hostile size
// lines, with a fuzz harness and checked-in corpus under testdata/fuzz). Equal compares structurally independent of
// within-column entry order — the comparison the sort-free kernels need —
// while ApproxEqual tolerates the summation-order differences distributed
// floating-point multiplies legitimately produce.
//
// # Distribution primitives
//
// PartBounds, ColRange/RowRange, ColSelect (and its format-preserving
// MatColSelect), HCat/VCat, and the cyclic split helpers carve matrices into
// the block rows, block columns, layer slices, and block-cyclic batches of
// Fig 1, and reassemble piece outputs; CommBytes makes both formats
// mpi.Payloads so pieces can ride the simulated collectives with exact
// wire-size accounting (memoized per block, so the batched schedule's
// repeated broadcasts never rescan columns).
//
// # Dense panels
//
// DenseMat is the row-major dense matrix the sparse×dense (SpMM) engine
// multiplies sparse operands against — the tall-skinny feature panels of
// iterated solvers and GNN layers. It carries the same machinery the sparse
// types do: an mpi.Payload wire encoding (Serialize/DeserializeDense, with
// its own fuzz harness), exact wire and memory sizing, row/column slicing
// for the 1.5D distributions, and exact (DenseEqual) plus
// tolerance-admitting (DenseApproxEqual) comparison. DenseFromCSC and
// ToCSC bridge the two worlds for densified-SUMMA execution and tests.
package spmat
