package spmat

import (
	"math/rand"
	"testing"
)

// randomCSC builds a deterministic random matrix with roughly density d.
func randomCSC(t testing.TB, rows, cols int32, d float64, seed int64) *CSC {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := int(float64(rows) * float64(cols) * d)
	ts := make([]Triple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, Triple{
			Row: int32(rng.Intn(int(rows))),
			Col: int32(rng.Intn(int(cols))),
			Val: rng.Float64()*2 - 1,
		})
	}
	m, err := FromTriples(rows, cols, ts, nil)
	if err != nil {
		t.Fatalf("FromTriples: %v", err)
	}
	return m
}

func TestNewEmpty(t *testing.T) {
	m := New(5, 7)
	if m.Rows != 5 || m.Cols != 7 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.NNZ() != 0 {
		t.Fatalf("nnz = %d, want 0", m.NNZ())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromTriplesAccumulates(t *testing.T) {
	ts := []Triple{{0, 0, 1}, {0, 0, 2}, {1, 1, 3}, {0, 1, 4}}
	m, err := FromTriples(2, 2, ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 0); got != 3 {
		t.Errorf("At(0,0)=%v, want 3", got)
	}
	if got := m.At(1, 1); got != 3 {
		t.Errorf("At(1,1)=%v, want 3", got)
	}
	if got := m.At(0, 1); got != 4 {
		t.Errorf("At(0,1)=%v, want 4", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Errorf("At(1,0)=%v, want 0", got)
	}
	if m.NNZ() != 3 {
		t.Errorf("nnz=%d, want 3", m.NNZ())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromTriplesOutOfRange(t *testing.T) {
	if _, err := FromTriples(2, 2, []Triple{{2, 0, 1}}, nil); err == nil {
		t.Error("row out of range not rejected")
	}
	if _, err := FromTriples(2, 2, []Triple{{0, -1, 1}}, nil); err == nil {
		t.Error("negative column not rejected")
	}
}

func TestTriplesRoundTrip(t *testing.T) {
	m := randomCSC(t, 40, 30, 0.1, 1)
	ts := m.Triples()
	m2, err := FromTriples(m.Rows, m.Cols, ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(m, m2) {
		t.Error("triples round trip changed matrix")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := randomCSC(t, 10, 10, 0.3, 2)
	bad := m.Clone()
	bad.RowIdx[0] = 99
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range row index not caught")
	}
	bad2 := m.Clone()
	bad2.ColPtr[1] = bad2.ColPtr[m.Cols] + 5
	if err := bad2.Validate(); err == nil {
		t.Error("non-monotone ColPtr not caught")
	}
}

func TestSortColumns(t *testing.T) {
	m := &CSC{
		Rows: 5, Cols: 2,
		ColPtr:     []int64{0, 3, 5},
		RowIdx:     []int32{4, 0, 2, 3, 1},
		Val:        []float64{40, 0, 20, 30, 10},
		SortedCols: false,
	}
	m.SortColumns()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.RowIdx[0] != 0 || m.Val[0] != 0 {
		t.Errorf("first entry after sort: row %d val %v", m.RowIdx[0], m.Val[0])
	}
	if m.At(4, 0) != 40 || m.At(2, 0) != 20 || m.At(1, 1) != 10 {
		t.Error("values not carried with rows during sort")
	}
}

func TestCompactMergesDuplicates(t *testing.T) {
	m := &CSC{
		Rows: 4, Cols: 1,
		ColPtr:     []int64{0, 5},
		RowIdx:     []int32{2, 0, 2, 1, 0},
		Val:        []float64{1, 2, 3, 4, 5},
		SortedCols: false,
	}
	m.Compact(nil)
	if m.NNZ() != 3 {
		t.Fatalf("nnz=%d, want 3", m.NNZ())
	}
	if m.At(0, 0) != 7 || m.At(1, 0) != 4 || m.At(2, 0) != 4 {
		t.Errorf("wrong merged values: %v %v %v", m.At(0, 0), m.At(1, 0), m.At(2, 0))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEqualIgnoresColumnOrder(t *testing.T) {
	a := Dense(3, 3, []float64{1, 0, 2, 0, 3, 0, 4, 0, 5})
	b := a.Clone()
	// Shuffle one column's order.
	b.RowIdx[0], b.RowIdx[1] = b.RowIdx[1], b.RowIdx[0]
	b.Val[0], b.Val[1] = b.Val[1], b.Val[0]
	b.SortedCols = false
	if !Equal(a, b) {
		t.Error("Equal should ignore within-column ordering")
	}
	c := a.Clone()
	c.Val[0] += 1e-12
	if Equal(a, c) {
		t.Error("Equal should detect value differences")
	}
	if !ApproxEqual(a, c, 1e-9) {
		t.Error("ApproxEqual should allow tolerance")
	}
}

func TestEqualDuplicateAware(t *testing.T) {
	// a stores 5 at (0,0); b stores it as 2+3 duplicates.
	a, _ := FromTriples(2, 2, []Triple{{0, 0, 5}}, nil)
	b := &CSC{
		Rows: 2, Cols: 2,
		ColPtr:     []int64{0, 2, 2},
		RowIdx:     []int32{0, 0},
		Val:        []float64{2, 3},
		SortedCols: false,
	}
	if !Equal(a, b) {
		t.Error("Equal should merge duplicates before comparing")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(6)
	if err := id.Validate(); err != nil {
		t.Fatal(err)
	}
	if id.NNZ() != 6 {
		t.Fatalf("nnz=%d", id.NNZ())
	}
	for i := int32(0); i < 6; i++ {
		if id.At(i, i) != 1 {
			t.Errorf("diag(%d) = %v", i, id.At(i, i))
		}
	}
}

func TestDenseRoundTrip(t *testing.T) {
	data := []float64{1, 0, 2, 0, 0, 3, 4, 5, 0, 0, 0, 6}
	m := Dense(3, 4, data)
	got := m.ToDense()
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("ToDense[%d]=%v, want %v", i, got[i], data[i])
		}
	}
}

func TestMaxColNNZAndDensity(t *testing.T) {
	m := Dense(2, 3, []float64{1, 1, 0, 1, 0, 0})
	if m.MaxColNNZ() != 2 {
		t.Errorf("MaxColNNZ=%d, want 2", m.MaxColNNZ())
	}
	if d := m.Density(); d != 0.5 {
		t.Errorf("Density=%v, want 0.5", d)
	}
}

func TestMemBytes(t *testing.T) {
	m := Identity(10)
	if m.MemBytes() != 240 {
		t.Errorf("MemBytes=%d, want 240", m.MemBytes())
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := randomCSC(t, 10, 10, 0.2, 3)
	c := m.Clone()
	if len(c.Val) > 0 {
		c.Val[0] = 999
		if m.Val[0] == 999 {
			t.Error("Clone shares value storage")
		}
	}
}
