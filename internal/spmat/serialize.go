package spmat

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary wire format used when a matrix crosses the simulated network:
//
//	[0:4)   rows   (int32 LE)
//	[4:8)   cols   (int32 LE)
//	[8:16)  nnz    (int64 LE)
//	[16]    flags  (bit 0: SortedCols; bit 1: hypersparse encoding)
//
// Dense-column encoding (flag bit 1 clear): (cols+1) int64 column pointers,
// then nnz int32 row indices and nnz float64 values.
//
// Hypersparse encoding (flag bit 1 set): an int32 count of non-empty
// columns, then for each non-empty column its int32 index and int32 entry
// count, then the row indices and values. This is the DCSC idea of CombBLAS:
// the matrices SUMMA moves at high layer counts have far more columns than
// nonzeros, and shipping a full column-pointer array would multiply the wire
// volume several-fold (the paper's Rice-kmers matrix has ~2 nonzeros per
// column precisely in this regime).
//
// The wire encoding is chosen by the Hypersparse threshold alone — never by
// the in-memory format — so both representations of the same logical matrix
// serialize to identical bytes and communication metering is independent of
// the format knob. DeserializeMatrix is the other half of that symmetry: a
// hypersparse-encoded buffer decodes straight into DCSC without ever
// materializing O(cols) column pointers.
const serialHeader = 17

// hypersparseWire reports whether the hypersparse encoding is used: fewer
// than half the columns occupied. (At full occupancy the two encodings are
// within a few bytes of each other; the 2x threshold keeps the common dense
// case on the simple path.) The non-empty count is memoized per block, so
// the batched schedule's repeated broadcasts of one block don't rescan its
// columns on every send.
func (m *CSC) hypersparseWire() (bool, int64) {
	ne := m.NonEmptyCols()
	return Hypersparse(ne, m.Cols), ne
}

// wireBytes is the shared size formula for both encodings. The dense term
// widens cols to int64 *before* adding one: cols+1 in int32 wraps negative at
// cols == math.MaxInt32 and used to corrupt the size of the largest legal
// blocks.
func wireBytes(hyper bool, cols int32, ne, nnz int64) int64 {
	if hyper {
		return serialHeader + 4 + 8*ne + 12*nnz
	}
	return serialHeader + 8*(int64(cols)+1) + 12*nnz
}

// WireBytesFor returns the wire size of a block with cols columns, ne of
// them occupied, and nnz entries — the same encoding choice and size formula
// the serializer uses, evaluable from block statistics alone. Cost
// predictors (the planner) use it so their modeled communication volume is
// byte-identical to what the metered run will charge for a block with the
// same occupancy.
func WireBytesFor(cols int32, ne, nnz int64) int64 {
	return wireBytes(Hypersparse(ne, cols), cols, ne, nnz)
}

// CommBytes returns the number of bytes the matrix occupies on the wire. The
// simulated MPI layer uses it to meter communication volume; it equals
// len(Serialize(m)) without allocating.
func (m *CSC) CommBytes() int64 {
	hyper, ne := m.hypersparseWire()
	return wireBytes(hyper, m.Cols, ne, m.NNZ())
}

// CommBytes returns the wire size; identical to the CSC form of the same
// logical matrix.
func (d *DCSC) CommBytes() int64 {
	ne := d.NonEmptyCols()
	return wireBytes(Hypersparse(ne, d.Cols), d.Cols, ne, d.NNZ())
}

// putHeader writes the 17-byte header shared by both encodings.
func putHeader(buf []byte, rows, cols int32, nnz int64, sorted, hyper bool) {
	binary.LittleEndian.PutUint32(buf[0:], uint32(rows))
	binary.LittleEndian.PutUint32(buf[4:], uint32(cols))
	binary.LittleEndian.PutUint64(buf[8:], uint64(nnz))
	if sorted {
		buf[16] |= 1
	}
	if hyper {
		buf[16] |= 2
	}
}

// putEntries appends the row indices and values shared by both encodings.
func putEntries(buf []byte, off int, rowIdx []int32, vals []float64) {
	for _, r := range rowIdx {
		binary.LittleEndian.PutUint32(buf[off:], uint32(r))
		off += 4
	}
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
}

// Serialize encodes the matrix into the wire format above.
func (m *CSC) Serialize() []byte {
	nnz := m.NNZ()
	hyper, ne := m.hypersparseWire()
	buf := make([]byte, wireBytes(hyper, m.Cols, ne, nnz))
	putHeader(buf, m.Rows, m.Cols, nnz, m.SortedCols, hyper)
	off := serialHeader
	if hyper {
		binary.LittleEndian.PutUint32(buf[off:], uint32(ne))
		off += 4
		for j := int32(0); j < m.Cols; j++ {
			cnt := m.ColPtr[j+1] - m.ColPtr[j]
			if cnt == 0 {
				continue
			}
			binary.LittleEndian.PutUint32(buf[off:], uint32(j))
			binary.LittleEndian.PutUint32(buf[off+4:], uint32(cnt))
			off += 8
		}
	} else {
		for _, p := range m.ColPtr {
			binary.LittleEndian.PutUint64(buf[off:], uint64(p))
			off += 8
		}
	}
	putEntries(buf, off, m.RowIdx, m.Val)
	return buf
}

// Serialize encodes the matrix into the shared wire format, byte-identical
// to serializing its CSC form. The hypersparse encoding is a direct dump of
// the doubly-compressed arrays; the dense encoding (a non-hypersparse block
// held in DCSC, rare) inflates the column pointers on the way out.
func (d *DCSC) Serialize() []byte {
	nnz := d.NNZ()
	ne := d.NonEmptyCols()
	hyper := Hypersparse(ne, d.Cols)
	buf := make([]byte, wireBytes(hyper, d.Cols, ne, nnz))
	putHeader(buf, d.Rows, d.Cols, nnz, d.SortedCols, hyper)
	off := serialHeader
	if hyper {
		binary.LittleEndian.PutUint32(buf[off:], uint32(ne))
		off += 4
		for p := range d.JC {
			binary.LittleEndian.PutUint32(buf[off:], uint32(d.JC[p]))
			binary.LittleEndian.PutUint32(buf[off+4:], uint32(d.CP[p+1]-d.CP[p]))
			off += 8
		}
	} else {
		p := 0
		var acc int64
		for j := int32(0); j <= d.Cols; j++ {
			binary.LittleEndian.PutUint64(buf[off:], uint64(acc))
			off += 8
			if p < len(d.JC) && d.JC[p] == j {
				acc = d.CP[p+1]
				p++
			}
		}
	}
	putEntries(buf, off, d.IR, d.Num)
	return buf
}

// Deserialize decodes a matrix from the wire format into CSC, whatever the
// wire encoding (the historical entry point; DeserializeMatrix avoids the
// O(cols) inflation for hypersparse buffers).
func Deserialize(buf []byte) (*CSC, error) {
	m, err := DeserializeFormat(buf, FormatCSC)
	if err != nil {
		return nil, err
	}
	return m.(*CSC), nil
}

// DeserializeMatrix decodes a matrix from the wire format, following the
// wire's own encoding flag: a hypersparse-encoded buffer becomes a DCSC —
// its column list and counts map one-to-one onto JC/CP, so the decode is
// O(nnz) with no dense column-pointer array ever allocated — and a
// dense-encoded buffer becomes a CSC.
func DeserializeMatrix(buf []byte) (Matrix, error) {
	return DeserializeFormat(buf, FormatAuto)
}

// Arena owns the backing arrays for in-place wire decoding. A decode through
// DeserializeMatrixInto reuses the arena's capacity from the previous decode,
// so a steady-state loop that keeps receiving blocks of similar size performs
// zero heap allocations once the arena has warmed up. The arena also embeds
// the matrix headers themselves: the Matrix returned by a decode aliases the
// arena and is valid only until the next decode into the same arena. An
// arena is single-goroutine state; concurrent receivers each own one.
type Arena struct {
	i32a, i32b []int32
	i64a       []int64
	f64a       []float64
	csc        CSC
	dcsc       DCSC
}

func arenaI32(s *[]int32, n int64) []int32 {
	if int64(cap(*s)) < n {
		*s = make([]int32, n)
	}
	*s = (*s)[:n]
	return *s
}

func arenaI64(s *[]int64, n int64) []int64 {
	if int64(cap(*s)) < n {
		*s = make([]int64, n)
	}
	*s = (*s)[:n]
	return *s
}

func arenaF64(s *[]float64, n int64) []float64 {
	if int64(cap(*s)) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

// DeserializeMatrixInto decodes like DeserializeMatrix — following the wire's
// own encoding flag — but draws every array from the caller-owned arena
// instead of the heap. See Arena for the aliasing and reuse rules.
func DeserializeMatrixInto(buf []byte, a *Arena) (Matrix, error) {
	return deserializeArena(buf, FormatAuto, a)
}

// DeserializeFormat decodes a matrix from the wire format into the requested
// in-memory format. FormatAuto follows the wire's encoding flag (the
// zero-conversion path); forcing a format converts after decoding when the
// wire encoding disagrees.
func DeserializeFormat(buf []byte, f Format) (Matrix, error) {
	return deserializeArena(buf, f, nil)
}

func deserializeArena(buf []byte, f Format, a *Arena) (Matrix, error) {
	if len(buf) < serialHeader {
		return nil, fmt.Errorf("spmat: serialized matrix truncated (%d bytes)", len(buf))
	}
	rows := int32(binary.LittleEndian.Uint32(buf[0:]))
	cols := int32(binary.LittleEndian.Uint32(buf[4:]))
	nnz := int64(binary.LittleEndian.Uint64(buf[8:]))
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("spmat: serialized matrix has negative shape %dx%d nnz=%d", rows, cols, nnz)
	}
	sorted := buf[16]&1 != 0
	hyper := buf[16]&2 != 0
	off := int64(serialHeader)

	// Reject headers whose implied size cannot fit in the buffer before doing
	// any size arithmetic with them: nnz and ne come straight off the wire,
	// and 12*nnz (or 8*ne) on a hostile header would overflow int64 and could
	// otherwise alias a small buffer's length.
	if nnz > int64(len(buf))/12 {
		return nil, fmt.Errorf("spmat: serialized nnz %d exceeds buffer capacity (%d bytes)", nnz, len(buf))
	}

	var out Matrix
	if hyper {
		if int64(len(buf)) < off+4 {
			return nil, fmt.Errorf("spmat: hypersparse header truncated")
		}
		ne := int64(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if ne > int64(cols) || ne > int64(len(buf))/8 {
			return nil, fmt.Errorf("spmat: hypersparse column count %d out of range (cols=%d, %d bytes)", ne, cols, len(buf))
		}
		want := off + 8*ne + 12*nnz
		if int64(len(buf)) != want {
			return nil, fmt.Errorf("spmat: serialized matrix has %d bytes, want %d", len(buf), want)
		}
		var d *DCSC
		if a != nil {
			d = &a.dcsc
			*d = DCSC{
				Rows: rows, Cols: cols,
				JC:         arenaI32(&a.i32a, ne),
				CP:         arenaI64(&a.i64a, ne+1),
				IR:         arenaI32(&a.i32b, nnz),
				Num:        arenaF64(&a.f64a, nnz),
				SortedCols: sorted,
			}
			d.CP[0] = 0 // arena memory is not zeroed
		} else {
			d = &DCSC{
				Rows: rows, Cols: cols,
				JC:         make([]int32, ne),
				CP:         make([]int64, ne+1),
				IR:         make([]int32, nnz),
				Num:        make([]float64, nnz),
				SortedCols: sorted,
			}
		}
		prev := int32(-1)
		for i := int64(0); i < ne; i++ {
			j := int32(binary.LittleEndian.Uint32(buf[off:]))
			cnt := int64(binary.LittleEndian.Uint32(buf[off+4:]))
			if j < 0 || j >= cols {
				return nil, fmt.Errorf("spmat: hypersparse column %d out of range", j)
			}
			if j <= prev {
				return nil, fmt.Errorf("spmat: hypersparse columns not ascending at %d", j)
			}
			if cnt <= 0 {
				return nil, fmt.Errorf("spmat: hypersparse column %d has count %d", j, cnt)
			}
			prev = j
			d.JC[i] = j
			d.CP[i+1] = d.CP[i] + cnt
			off += 8
		}
		if d.CP[ne] != nnz {
			return nil, fmt.Errorf("spmat: hypersparse counts sum to %d, want %d", d.CP[ne], nnz)
		}
		if err := readEntries(buf, off, rows, d.IR, d.Num); err != nil {
			return nil, err
		}
		out = d
	} else {
		want := off + 8*(int64(cols)+1) + 12*nnz
		if int64(len(buf)) != want {
			return nil, fmt.Errorf("spmat: serialized matrix has %d bytes, want %d", len(buf), want)
		}
		var m *CSC
		if a != nil {
			m = &a.csc
			*m = CSC{
				Rows: rows, Cols: cols,
				ColPtr:     arenaI64(&a.i64a, int64(cols)+1),
				RowIdx:     arenaI32(&a.i32b, nnz),
				Val:        arenaF64(&a.f64a, nnz),
				SortedCols: sorted,
			}
		} else {
			m = &CSC{
				Rows: rows, Cols: cols,
				ColPtr:     make([]int64, cols+1),
				RowIdx:     make([]int32, nnz),
				Val:        make([]float64, nnz),
				SortedCols: sorted,
			}
		}
		for i := range m.ColPtr {
			m.ColPtr[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		if m.ColPtr[0] != 0 {
			return nil, fmt.Errorf("spmat: serialized column pointers start at %d, want 0", m.ColPtr[0])
		}
		for j := int32(0); j < cols; j++ {
			if m.ColPtr[j] > m.ColPtr[j+1] {
				return nil, fmt.Errorf("spmat: serialized column pointers not monotone at column %d", j)
			}
		}
		if m.ColPtr[cols] != nnz {
			return nil, fmt.Errorf("spmat: serialized column pointers sum to %d, want %d", m.ColPtr[cols], nnz)
		}
		if err := readEntries(buf, off, rows, m.RowIdx, m.Val); err != nil {
			return nil, err
		}
		out = m
	}
	if f == FormatAuto {
		return out, nil
	}
	return WithFormat(out, f), nil
}

// readEntries decodes the row indices and values shared by both encodings.
// Row-index validation is fused with the read: a hostile buffer carrying
// indices outside [0, rows) must error here, not panic later when a kernel
// scatters into an accumulator sized by rows.
func readEntries(buf []byte, off int64, rows int32, rowIdx []int32, vals []float64) error {
	for i := range rowIdx {
		r := int32(binary.LittleEndian.Uint32(buf[off:]))
		if r < 0 || r >= rows {
			return fmt.Errorf("spmat: serialized row index %d out of range [0,%d)", r, rows)
		}
		rowIdx[i] = r
		off += 4
	}
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return nil
}
