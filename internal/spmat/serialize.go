package spmat

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary wire format used when a CSC crosses the simulated network:
//
//	[0:4)   rows   (int32 LE)
//	[4:8)   cols   (int32 LE)
//	[8:16)  nnz    (int64 LE)
//	[16]    flags  (bit 0: SortedCols; bit 1: hypersparse encoding)
//
// Dense-column encoding (flag bit 1 clear): (cols+1) int64 column pointers,
// then nnz int32 row indices and nnz float64 values.
//
// Hypersparse encoding (flag bit 1 set): an int32 count of non-empty
// columns, then for each non-empty column its int32 index and int32 entry
// count, then the row indices and values. This is the DCSC idea of CombBLAS:
// the matrices SUMMA moves at high layer counts have far more columns than
// nonzeros, and shipping a full column-pointer array would multiply the wire
// volume several-fold (the paper's Rice-kmers matrix has ~2 nonzeros per
// column precisely in this regime).
const serialHeader = 17

// nonEmptyCols counts columns with at least one entry.
func (m *CSC) nonEmptyCols() int64 {
	var n int64
	for j := int32(0); j < m.Cols; j++ {
		if m.ColPtr[j+1] > m.ColPtr[j] {
			n++
		}
	}
	return n
}

// hypersparseWire reports whether the hypersparse encoding is used: fewer
// than half the columns occupied. (At full occupancy the two encodings are
// within a few bytes of each other; the 2x threshold keeps the common dense
// case on the simple path.)
func (m *CSC) hypersparseWire() (bool, int64) {
	ne := m.nonEmptyCols()
	if 2*ne < int64(m.Cols) {
		return true, ne
	}
	return false, ne
}

// CommBytes returns the number of bytes the matrix occupies on the wire. The
// simulated MPI layer uses it to meter communication volume; it equals
// len(Serialize(m)) without allocating.
func (m *CSC) CommBytes() int64 {
	if hyper, ne := m.hypersparseWire(); hyper {
		return serialHeader + 4 + 8*ne + 12*m.NNZ()
	}
	return serialHeader + 8*int64(m.Cols+1) + 12*m.NNZ()
}

// Serialize encodes the matrix into the wire format above.
func (m *CSC) Serialize() []byte {
	nnz := m.NNZ()
	buf := make([]byte, m.CommBytes())
	binary.LittleEndian.PutUint32(buf[0:], uint32(m.Rows))
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.Cols))
	binary.LittleEndian.PutUint64(buf[8:], uint64(nnz))
	hyper, ne := m.hypersparseWire()
	if m.SortedCols {
		buf[16] |= 1
	}
	if hyper {
		buf[16] |= 2
	}
	off := serialHeader
	if hyper {
		binary.LittleEndian.PutUint32(buf[off:], uint32(ne))
		off += 4
		for j := int32(0); j < m.Cols; j++ {
			cnt := m.ColPtr[j+1] - m.ColPtr[j]
			if cnt == 0 {
				continue
			}
			binary.LittleEndian.PutUint32(buf[off:], uint32(j))
			binary.LittleEndian.PutUint32(buf[off+4:], uint32(cnt))
			off += 8
		}
	} else {
		for _, p := range m.ColPtr {
			binary.LittleEndian.PutUint64(buf[off:], uint64(p))
			off += 8
		}
	}
	for _, r := range m.RowIdx {
		binary.LittleEndian.PutUint32(buf[off:], uint32(r))
		off += 4
	}
	for _, v := range m.Val {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	return buf
}

// Deserialize decodes a matrix from the wire format produced by Serialize.
func Deserialize(buf []byte) (*CSC, error) {
	if len(buf) < serialHeader {
		return nil, fmt.Errorf("spmat: serialized matrix truncated (%d bytes)", len(buf))
	}
	rows := int32(binary.LittleEndian.Uint32(buf[0:]))
	cols := int32(binary.LittleEndian.Uint32(buf[4:]))
	nnz := int64(binary.LittleEndian.Uint64(buf[8:]))
	sorted := buf[16]&1 != 0
	hyper := buf[16]&2 != 0
	m := &CSC{
		Rows:       rows,
		Cols:       cols,
		ColPtr:     make([]int64, cols+1),
		RowIdx:     make([]int32, nnz),
		Val:        make([]float64, nnz),
		SortedCols: sorted,
	}
	off := int64(serialHeader)
	if hyper {
		if int64(len(buf)) < off+4 {
			return nil, fmt.Errorf("spmat: hypersparse header truncated")
		}
		ne := int64(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		want := off + 8*ne + 12*nnz
		if int64(len(buf)) != want {
			return nil, fmt.Errorf("spmat: serialized matrix has %d bytes, want %d", len(buf), want)
		}
		counts := make([]int64, cols)
		for i := int64(0); i < ne; i++ {
			j := int32(binary.LittleEndian.Uint32(buf[off:]))
			cnt := int64(binary.LittleEndian.Uint32(buf[off+4:]))
			if j < 0 || j >= cols {
				return nil, fmt.Errorf("spmat: hypersparse column %d out of range", j)
			}
			counts[j] = cnt
			off += 8
		}
		for j := int32(0); j < cols; j++ {
			m.ColPtr[j+1] = m.ColPtr[j] + counts[j]
		}
		if m.ColPtr[cols] != nnz {
			return nil, fmt.Errorf("spmat: hypersparse counts sum to %d, want %d", m.ColPtr[cols], nnz)
		}
	} else {
		want := off + 8*int64(cols+1) + 12*nnz
		if int64(len(buf)) != want {
			return nil, fmt.Errorf("spmat: serialized matrix has %d bytes, want %d", len(buf), want)
		}
		for i := range m.ColPtr {
			m.ColPtr[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	for i := range m.RowIdx {
		m.RowIdx[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	for i := range m.Val {
		m.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return m, nil
}
