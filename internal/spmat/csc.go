package spmat

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// CSC is a sparse matrix in compressed sparse column format.
//
// Column j occupies RowIdx[ColPtr[j]:ColPtr[j+1]] and the parallel slice of
// Val. SortedCols records whether every column stores its row indices in
// strictly ascending order; the sort-free kernels of the paper produce
// unsorted columns and only the final Merge-Fiber output is sorted.
type CSC struct {
	Rows, Cols int32
	ColPtr     []int64
	RowIdx     []int32
	Val        []float64
	SortedCols bool

	// neCache memoizes NonEmptyCols as count+1 (0 = not yet computed). The
	// batched schedule broadcasts the same blocks once per batch, and both
	// the wire-encoding decision and the auto-format heuristic need the
	// count — computing the O(cols) scan once per block instead of once per
	// send is what keeps repeated broadcasts O(1) in the column dimension.
	// Mutating methods that can empty a column (Filter) reset it. Accessed
	// atomically: broadcast payloads are shared read-only across simulated
	// ranks, so concurrent receivers may fill the cache simultaneously (the
	// computation is idempotent; last write wins with the same value).
	neCache int64
}

// New returns an empty rows×cols matrix with no nonzeros. The result has
// sorted columns (vacuously).
func New(rows, cols int32) *CSC {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("spmat: negative dimension %dx%d", rows, cols))
	}
	return &CSC{
		Rows:       rows,
		Cols:       cols,
		ColPtr:     make([]int64, cols+1),
		RowIdx:     nil,
		Val:        nil,
		SortedCols: true,
	}
}

// Dims returns the logical shape.
func (m *CSC) Dims() (int32, int32) { return m.Rows, m.Cols }

// Sorted reports whether every column stores its rows in ascending order.
func (m *CSC) Sorted() bool { return m.SortedCols }

// Format identifies the concrete representation.
func (m *CSC) Format() Format { return FormatCSC }

// ToCSC returns the matrix itself.
func (m *CSC) ToCSC() *CSC { return m }

// CloneMat returns a deep copy in CSC form.
func (m *CSC) CloneMat() Matrix { return m.Clone() }

// EnumCols calls fn for every non-empty column in ascending order.
func (m *CSC) EnumCols(fn func(j int32, rows []int32, vals []float64)) {
	for j := int32(0); j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		if lo < hi {
			fn(j, m.RowIdx[lo:hi], m.Val[lo:hi])
		}
	}
}

// NonEmptyCols returns the number of columns with at least one entry,
// computed once per matrix and memoized (see neCache).
func (m *CSC) NonEmptyCols() int64 {
	if c := atomic.LoadInt64(&m.neCache); c > 0 {
		return c - 1
	}
	var n int64
	for j := int32(0); j < m.Cols; j++ {
		if m.ColPtr[j+1] > m.ColPtr[j] {
			n++
		}
	}
	atomic.StoreInt64(&m.neCache, n+1)
	return n
}

// InvalidateNonEmptyCols drops the memoized non-empty-column count. Every
// in-place mutation that can change column occupancy after the count was
// first computed (Filter does, and any future mutator must) has to call this,
// or CommBytes/AutoFormat will keep using the stale count and the wire
// metering under/over-charges. Validate cross-checks the memo so a missed
// invalidation fails loudly in tests instead of silently mis-metering.
func (m *CSC) InvalidateNonEmptyCols() { atomic.StoreInt64(&m.neCache, 0) }

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int64 {
	if len(m.ColPtr) == 0 {
		return 0
	}
	return m.ColPtr[m.Cols]
}

// ColNNZ returns the number of stored entries in column j.
func (m *CSC) ColNNZ(j int32) int64 { return m.ColPtr[j+1] - m.ColPtr[j] }

// Column returns the row indices and values of column j as sub-slices of the
// matrix storage. Callers must not mutate them unless they own the matrix.
func (m *CSC) Column(j int32) ([]int32, []float64) {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	return m.RowIdx[lo:hi], m.Val[lo:hi]
}

// Clone returns a deep copy.
func (m *CSC) Clone() *CSC {
	c := &CSC{
		Rows:       m.Rows,
		Cols:       m.Cols,
		ColPtr:     append([]int64(nil), m.ColPtr...),
		RowIdx:     append([]int32(nil), m.RowIdx...),
		Val:        append([]float64(nil), m.Val...),
		SortedCols: m.SortedCols,
		neCache:    atomic.LoadInt64(&m.neCache),
	}
	return c
}

// Validate checks structural invariants: monotone ColPtr, in-range row
// indices, slice length agreement, and — when SortedCols is set — ascending
// row order with no duplicates inside each column.
func (m *CSC) Validate() error {
	if int32(len(m.ColPtr))-1 != m.Cols {
		return fmt.Errorf("spmat: ColPtr length %d does not match Cols %d", len(m.ColPtr), m.Cols)
	}
	if m.ColPtr[0] != 0 {
		return fmt.Errorf("spmat: ColPtr[0] = %d, want 0", m.ColPtr[0])
	}
	nnz := m.ColPtr[m.Cols]
	if int64(len(m.RowIdx)) != nnz || int64(len(m.Val)) != nnz {
		return fmt.Errorf("spmat: nnz %d disagrees with slices (%d rows, %d vals)", nnz, len(m.RowIdx), len(m.Val))
	}
	if c := atomic.LoadInt64(&m.neCache); c > 0 {
		var n int64
		for j := int32(0); j < m.Cols; j++ {
			if m.ColPtr[j+1] > m.ColPtr[j] {
				n++
			}
		}
		if c-1 != n {
			return fmt.Errorf("spmat: stale NonEmptyCols memo %d, actual %d (missing InvalidateNonEmptyCols after mutation?)", c-1, n)
		}
	}
	for j := int32(0); j < m.Cols; j++ {
		if m.ColPtr[j] > m.ColPtr[j+1] {
			return fmt.Errorf("spmat: ColPtr not monotone at column %d", j)
		}
		prev := int32(-1)
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			r := m.RowIdx[p]
			if r < 0 || r >= m.Rows {
				return fmt.Errorf("spmat: row index %d out of range [0,%d) in column %d", r, m.Rows, j)
			}
			if m.SortedCols {
				if r <= prev {
					return fmt.Errorf("spmat: column %d not strictly sorted (row %d after %d)", j, r, prev)
				}
				prev = r
			}
		}
	}
	return nil
}

// SortColumns sorts the row indices (and values) inside every column in
// ascending order, in place, and sets SortedCols. Duplicate row indices are
// preserved (use Compact to merge them).
func (m *CSC) SortColumns() {
	if m.SortedCols {
		return
	}
	for j := int32(0); j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		sortColumn(m.RowIdx[lo:hi], m.Val[lo:hi])
	}
	m.SortedCols = true
}

// sortColumn sorts parallel (rows, vals) by row index.
func sortColumn(rows []int32, vals []float64) {
	if len(rows) < 2 {
		return
	}
	if sort.SliceIsSorted(rows, func(a, b int) bool { return rows[a] < rows[b] }) {
		return
	}
	s := &colSorter{rows: rows, vals: vals}
	sort.Sort(s)
}

type colSorter struct {
	rows []int32
	vals []float64
}

func (s *colSorter) Len() int           { return len(s.rows) }
func (s *colSorter) Less(i, j int) bool { return s.rows[i] < s.rows[j] }
func (s *colSorter) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// Compact merges duplicate row indices within each column by summing their
// values with add (nil means ordinary +), dropping entries that become exactly
// zero is NOT done (structural zeros are kept out only if never stored). The
// matrix is sorted as a side effect.
func (m *CSC) Compact(add func(a, b float64) float64) {
	if add == nil {
		add = func(a, b float64) float64 { return a + b }
	}
	m.SortColumns()
	newPtr := make([]int64, m.Cols+1)
	w := int64(0)
	for j := int32(0); j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		newPtr[j] = w
		for p := lo; p < hi; {
			r := m.RowIdx[p]
			v := m.Val[p]
			p++
			for p < hi && m.RowIdx[p] == r {
				v = add(v, m.Val[p])
				p++
			}
			m.RowIdx[w] = r
			m.Val[w] = v
			w++
		}
	}
	newPtr[m.Cols] = w
	m.ColPtr = newPtr
	m.RowIdx = m.RowIdx[:w]
	m.Val = m.Val[:w]
}

// At returns the stored value at (i, j), or 0 if no entry is stored. It is a
// debugging/testing helper and runs in O(nnz(column j)) for unsorted columns.
func (m *CSC) At(i, j int32) float64 {
	rows, vals := m.Column(j)
	if m.SortedCols {
		k := sort.Search(len(rows), func(p int) bool { return rows[p] >= i })
		if k < len(rows) && rows[k] == i {
			return vals[k]
		}
		return 0
	}
	for p, r := range rows {
		if r == i {
			return vals[p]
		}
	}
	return 0
}

// Equal reports whether two matrices represent the same values, independent
// of within-column ordering. Both operands are canonicalized on copies.
func Equal(a, b *CSC) bool {
	return approxEqual(a, b, 0)
}

// ApproxEqual reports whether a and b agree entry-wise within tol, again
// independent of within-column ordering.
func ApproxEqual(a, b *CSC, tol float64) bool {
	return approxEqual(a, b, tol)
}

func approxEqual(a, b *CSC, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	ca, cb := a, b
	if !ca.SortedCols || hasDuplicates(ca) {
		ca = ca.Clone()
		ca.Compact(nil)
	}
	if !cb.SortedCols || hasDuplicates(cb) {
		cb = cb.Clone()
		cb.Compact(nil)
	}
	if ca.NNZ() != cb.NNZ() {
		return false
	}
	for j := int32(0); j < ca.Cols; j++ {
		ra, va := ca.Column(j)
		rb, vb := cb.Column(j)
		if len(ra) != len(rb) {
			return false
		}
		for p := range ra {
			if ra[p] != rb[p] {
				return false
			}
			d := va[p] - vb[p]
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}

func hasDuplicates(m *CSC) bool {
	for j := int32(0); j < m.Cols; j++ {
		rows, _ := m.Column(j)
		for p := 1; p < len(rows); p++ {
			if rows[p] == rows[p-1] {
				return true
			}
		}
	}
	return false
}

// MaxColNNZ returns the largest number of stored entries in any column.
func (m *CSC) MaxColNNZ() int64 {
	var mx int64
	for j := int32(0); j < m.Cols; j++ {
		if c := m.ColNNZ(j); c > mx {
			mx = c
		}
	}
	return mx
}

// Density returns nnz / (rows*cols), or 0 for an empty shape.
func (m *CSC) Density() float64 {
	cells := int64(m.Rows) * int64(m.Cols)
	if cells == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(cells)
}

// String returns a compact shape summary, e.g. "4096x4096, nnz=32768 (sorted)".
func (m *CSC) String() string {
	s := "unsorted"
	if m.SortedCols {
		s = "sorted"
	}
	return fmt.Sprintf("%dx%d, nnz=%d (%s)", m.Rows, m.Cols, m.NNZ(), s)
}

// BytesPerNonzero is the storage cost r used throughout the paper's memory
// accounting: a row index, a column index, and a float64 value (Sec. IV-A
// uses r = 24 with 16 bytes of indices; our indices are 4 bytes each, but we
// keep the paper's constant so the batch-count arithmetic matches).
const BytesPerNonzero = 24

// MemBytes returns the modeled memory footprint of the matrix under the
// paper's r-bytes-per-nonzero accounting.
func (m *CSC) MemBytes() int64 { return m.NNZ() * BytesPerNonzero }
