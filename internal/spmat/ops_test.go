package spmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransposeSmall(t *testing.T) {
	m := Dense(2, 3, []float64{1, 2, 0, 0, 3, 4})
	tr := Transpose(m)
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("shape %dx%d", tr.Rows, tr.Cols)
	}
	want := Dense(3, 2, []float64{1, 0, 2, 3, 0, 4})
	if !Equal(tr, want) {
		t.Error("transpose values wrong")
	}
	if !tr.SortedCols {
		t.Error("transpose should produce sorted columns")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := randomCSC(t, 50, 37, 0.08, 11)
	tt := Transpose(Transpose(m))
	if !Equal(m, tt) {
		t.Error("transpose twice is not identity")
	}
}

func TestTransposeOfUnsorted(t *testing.T) {
	m := randomCSC(t, 30, 30, 0.1, 12)
	un := m.Clone()
	// Reverse each column to make it unsorted.
	for j := int32(0); j < un.Cols; j++ {
		lo, hi := un.ColPtr[j], un.ColPtr[j+1]
		for a, b := lo, hi-1; a < b; a, b = a+1, b-1 {
			un.RowIdx[a], un.RowIdx[b] = un.RowIdx[b], un.RowIdx[a]
			un.Val[a], un.Val[b] = un.Val[b], un.Val[a]
		}
	}
	un.SortedCols = false
	tr := Transpose(un)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !Equal(tr, Transpose(m)) {
		t.Error("transpose of unsorted matrix differs")
	}
}

func TestColRange(t *testing.T) {
	m := randomCSC(t, 20, 10, 0.3, 4)
	sub := ColRange(m, 3, 7)
	if sub.Cols != 4 || sub.Rows != 20 {
		t.Fatalf("shape %v", sub)
	}
	for j := int32(0); j < 4; j++ {
		for i := int32(0); i < 20; i++ {
			if sub.At(i, j) != m.At(i, j+3) {
				t.Fatalf("mismatch at (%d,%d)", i, j)
			}
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestColSelect(t *testing.T) {
	m := randomCSC(t, 15, 8, 0.4, 5)
	sel := ColSelect(m, []int32{7, 0, 3})
	if sel.Cols != 3 {
		t.Fatalf("cols=%d", sel.Cols)
	}
	for i := int32(0); i < 15; i++ {
		if sel.At(i, 0) != m.At(i, 7) || sel.At(i, 1) != m.At(i, 0) || sel.At(i, 2) != m.At(i, 3) {
			t.Fatalf("gather mismatch at row %d", i)
		}
	}
}

func TestRowRange(t *testing.T) {
	m := randomCSC(t, 20, 10, 0.3, 6)
	sub := RowRange(m, 5, 12)
	if sub.Rows != 7 {
		t.Fatalf("rows=%d", sub.Rows)
	}
	for i := int32(0); i < 7; i++ {
		for j := int32(0); j < 10; j++ {
			if sub.At(i, j) != m.At(i+5, j) {
				t.Fatalf("mismatch at (%d,%d)", i, j)
			}
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHCatInvertsColSplit(t *testing.T) {
	m := randomCSC(t, 25, 13, 0.2, 7)
	parts := ColSplit(m, 4)
	back := HCat(parts)
	if !Equal(m, back) {
		t.Error("HCat(ColSplit) is not identity")
	}
}

func TestVCatStacks(t *testing.T) {
	a := Dense(2, 2, []float64{1, 2, 3, 4})
	b := Dense(1, 2, []float64{5, 6})
	v := VCat([]*CSC{a, b})
	want := Dense(3, 2, []float64{1, 2, 3, 4, 5, 6})
	if !Equal(v, want) {
		t.Error("VCat wrong")
	}
	if !v.SortedCols {
		t.Error("VCat of sorted parts should stay sorted")
	}
}

func TestVCatInvertsRowSplit(t *testing.T) {
	m := randomCSC(t, 23, 9, 0.25, 8)
	bounds := PartBounds(m.Rows, 3)
	parts := make([]*CSC, 3)
	for i := range parts {
		parts[i] = RowRange(m, bounds[i], bounds[i+1])
	}
	if !Equal(m, VCat(parts)) {
		t.Error("VCat(RowRange parts) is not identity")
	}
}

func TestAddElementwise(t *testing.T) {
	a := Dense(2, 2, []float64{1, 0, 2, 3})
	b := Dense(2, 2, []float64{4, 5, 0, -3})
	s := Add(a, b, nil)
	want := Dense(2, 2, []float64{5, 5, 2, 0})
	// Add keeps the explicit zero at (1,1): compare values pointwise.
	for i := int32(0); i < 2; i++ {
		for j := int32(0); j < 2; j++ {
			if s.At(i, j) != want.At(i, j) {
				t.Errorf("(%d,%d)=%v want %v", i, j, s.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMask(t *testing.T) {
	m := Dense(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	mask := Dense(3, 3, []float64{1, 0, 0, 0, 1, 0, 0, 0, 1})
	got := Mask(m, mask)
	if got.NNZ() != 3 {
		t.Fatalf("nnz=%d, want 3", got.NNZ())
	}
	if got.At(0, 0) != 1 || got.At(1, 1) != 5 || got.At(2, 2) != 9 {
		t.Error("mask kept wrong values")
	}
	if got.Sum() != 15 {
		t.Errorf("Sum=%v, want 15", got.Sum())
	}
}

func TestScaleMapFilter(t *testing.T) {
	m := Dense(2, 2, []float64{1, 2, 3, 4})
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Errorf("Scale: got %v", m.At(1, 1))
	}
	m.Map(func(v float64) float64 { return v - 2 })
	if m.At(0, 0) != 0 {
		t.Errorf("Map: got %v", m.At(0, 0))
	}
	m.DropZeros()
	if m.NNZ() != 3 {
		t.Errorf("DropZeros: nnz=%d, want 3", m.NNZ())
	}
	m.Filter(func(r, c int32, v float64) bool { return r == c })
	if m.NNZ() != 1 || m.At(1, 1) != 6 {
		t.Errorf("Filter: %v", m)
	}
}

func TestPartBounds(t *testing.T) {
	b := PartBounds(10, 3)
	want := []int32{0, 4, 7, 10}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds=%v, want %v", b, want)
		}
	}
	// All items covered exactly once for a variety of shapes.
	for _, n := range []int32{0, 1, 7, 64, 100} {
		for _, p := range []int{1, 2, 3, 7, 16} {
			bb := PartBounds(n, p)
			if bb[0] != 0 || bb[p] != n {
				t.Fatalf("PartBounds(%d,%d)=%v", n, p, bb)
			}
			for i := 0; i < p; i++ {
				if bb[i+1] < bb[i] {
					t.Fatalf("PartBounds(%d,%d) not monotone: %v", n, p, bb)
				}
				if d := (bb[i+1] - bb[i]) - n/int32(p); d < 0 || d > 1 {
					t.Fatalf("PartBounds(%d,%d) unbalanced: %v", n, p, bb)
				}
			}
		}
	}
}

func TestPartOf(t *testing.T) {
	b := PartBounds(100, 7)
	for i := int32(0); i < 100; i++ {
		p := PartOf(b, i)
		if i < b[p] || i >= b[p+1] {
			t.Fatalf("PartOf(%d)=%d but range is [%d,%d)", i, p, b[p], b[p+1])
		}
	}
}

func TestCyclicColsPartition(t *testing.T) {
	lists := CyclicCols(20, 3, 2)
	seen := make(map[int32]int)
	for p, l := range lists {
		for _, c := range l {
			seen[c]++
			if want := (int(c) / 2) % 3; want != p {
				t.Fatalf("column %d assigned to %d, want %d", c, p, want)
			}
		}
	}
	if len(seen) != 20 {
		t.Fatalf("only %d columns covered", len(seen))
	}
}

func TestConcatCyclicInvertsSplit(t *testing.T) {
	for _, cols := range []int32{16, 17, 31} {
		for _, parts := range []int{1, 2, 4} {
			for _, block := range []int32{1, 2, 3} {
				m := randomCSC(t, 12, cols, 0.3, int64(cols)*100+int64(parts)*10+int64(block))
				pieces := ColSplitCyclic(m, parts, block)
				back := ConcatCyclic(pieces, cols, block)
				if !Equal(m, back) {
					t.Fatalf("ConcatCyclic(ColSplitCyclic) not identity for cols=%d parts=%d block=%d", cols, parts, block)
				}
			}
		}
	}
}

// Property: ColSplit then HCat is identity for random shapes.
func TestSplitConcatProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int32(rng.Intn(30) + 1)
		cols := int32(rng.Intn(30) + 1)
		parts := rng.Intn(5) + 1
		m := randomCSC(t, rows, cols, 0.2, seed)
		return Equal(m, HCat(ColSplit(m, parts)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: transpose distributes over column selection of disjoint ranges.
func TestTransposePreservesNNZProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := randomCSC(t, 40, 40, 0.1, seed)
		return Transpose(m).NNZ() == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
