package spmat

import (
	"math/rand"
	"testing"
)

// randomNNZCSC builds a random rows×cols matrix with about nnz entries.
func randomNNZCSC(t testing.TB, rows, cols int32, nnz int, seed int64) *CSC {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := make([]Triple, 0, nnz)
	for i := 0; i < nnz; i++ {
		ts = append(ts, Triple{
			Row: int32(rng.Intn(int(rows))),
			Col: int32(rng.Intn(int(cols))),
			Val: rng.Float64()*10 - 5,
		})
	}
	m, err := FromTriples(rows, cols, ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDCSCRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		rows, cols int32
		nnz        int
	}{
		{1, 1, 0},      // empty
		{5, 7, 0},      // empty rectangular
		{16, 16, 40},   // dense-ish
		{8, 1024, 60},  // hypersparse
		{64, 4096, 90}, // very hypersparse
	} {
		m := randomNNZCSC(t, tc.rows, tc.cols, tc.nnz, int64(tc.nnz)+3)
		d := m.ToDCSC()
		if err := d.Validate(); err != nil {
			t.Fatalf("%dx%d: invalid DCSC: %v", tc.rows, tc.cols, err)
		}
		if d.NNZ() != m.NNZ() || d.NonEmptyCols() != m.NonEmptyCols() {
			t.Fatalf("%dx%d: nnz/nzc mismatch after conversion", tc.rows, tc.cols)
		}
		back := d.ToCSC()
		if err := back.Validate(); err != nil {
			t.Fatalf("%dx%d: invalid CSC after round trip: %v", tc.rows, tc.cols, err)
		}
		if !Equal(m, back) {
			t.Fatalf("%dx%d: round trip changed the matrix", tc.rows, tc.cols)
		}
		if back.NonEmptyCols() != m.NonEmptyCols() {
			t.Fatalf("%dx%d: ToCSC mis-seeded the non-empty-column cache", tc.rows, tc.cols)
		}
	}
}

func TestDCSCColumnLookup(t *testing.T) {
	m := randomNNZCSC(t, 32, 512, 80, 5)
	d := m.ToDCSC()
	for j := int32(0); j < m.Cols; j++ {
		wr, wv := m.Column(j)
		gr, gv := d.Column(j)
		if len(wr) != len(gr) || d.ColNNZ(j) != m.ColNNZ(j) {
			t.Fatalf("column %d: size mismatch", j)
		}
		for p := range wr {
			if wr[p] != gr[p] || wv[p] != gv[p] {
				t.Fatalf("column %d entry %d differs", j, p)
			}
		}
	}
}

func TestEnumColsMatchesAcrossFormats(t *testing.T) {
	m := randomNNZCSC(t, 16, 300, 50, 9)
	d := m.ToDCSC()
	type col struct {
		j    int32
		rows []int32
	}
	collect := func(x Matrix) []col {
		var out []col
		x.EnumCols(func(j int32, rows []int32, _ []float64) {
			out = append(out, col{j, rows})
		})
		return out
	}
	cs, ds := collect(m), collect(d)
	if len(cs) != len(ds) || int64(len(cs)) != m.NonEmptyCols() {
		t.Fatalf("stored column counts differ: csc %d, dcsc %d, want %d", len(cs), len(ds), m.NonEmptyCols())
	}
	prev := int32(-1)
	for i := range cs {
		if cs[i].j != ds[i].j || len(cs[i].rows) != len(ds[i].rows) {
			t.Fatalf("stored column %d differs between formats", i)
		}
		if cs[i].j <= prev {
			t.Fatalf("EnumCols not ascending at %d", cs[i].j)
		}
		prev = cs[i].j
	}
}

func TestAutoFormatThreshold(t *testing.T) {
	// Exactly half the columns occupied: 2·ne == cols is NOT hypersparse
	// (strict inequality), one fewer occupied column is.
	build := func(cols, occupied int32) *CSC {
		ts := make([]Triple, 0, occupied)
		for j := int32(0); j < occupied; j++ {
			ts = append(ts, Triple{Row: 0, Col: j * 2, Val: 1})
		}
		m, err := FromTriples(4, cols, ts, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	half := build(64, 32)
	if got := AutoFormat(half); got.Format() != FormatCSC {
		t.Errorf("half occupancy: auto picked %v, want csc", got.Format())
	}
	under := build(64, 31)
	if got := AutoFormat(under); got.Format() != FormatDCSC {
		t.Errorf("under-half occupancy: auto picked %v, want dcsc", got.Format())
	}
	// WithFormat forces either way and auto matches AutoFormat.
	if WithFormat(half, FormatDCSC).Format() != FormatDCSC {
		t.Error("WithFormat(dcsc) did not compress")
	}
	if WithFormat(under, FormatCSC).Format() != FormatCSC {
		t.Error("WithFormat(csc) did not inflate")
	}
}

func TestMatColSelectMatchesColSelect(t *testing.T) {
	m := randomNNZCSC(t, 24, 400, 70, 13)
	d := m.ToDCSC()
	cols := []int32{3, 17, 40, 41, 42, 100, 399}
	want := ColSelect(m, cols)
	got := MatColSelect(d, cols)
	if got.Format() != FormatDCSC {
		t.Fatalf("MatColSelect changed format: %v", got.Format())
	}
	if !Equal(want, got.ToCSC()) {
		t.Fatal("MatColSelect(dcsc) differs from ColSelect(csc)")
	}
	if gotCSC := MatColSelect(m, cols); !Equal(want, gotCSC.ToCSC()) {
		t.Fatal("MatColSelect(csc) differs from ColSelect")
	}
	// Unordered selections fall back to per-column lookups.
	shuffled := []int32{42, 3, 399, 17}
	if !Equal(ColSelect(m, shuffled), MatColSelect(d, shuffled).ToCSC()) {
		t.Fatal("unordered MatColSelect differs from ColSelect")
	}
}

func TestNonEmptyColsCache(t *testing.T) {
	m := randomNNZCSC(t, 10, 100, 40, 21)
	want := m.NonEmptyCols()
	var slow int64
	for j := int32(0); j < m.Cols; j++ {
		if m.ColNNZ(j) > 0 {
			slow++
		}
	}
	if want != slow {
		t.Fatalf("NonEmptyCols = %d, scan says %d", want, slow)
	}
	if again := m.NonEmptyCols(); again != want {
		t.Fatalf("cached NonEmptyCols = %d, want %d", again, want)
	}
	// Filtering can empty columns and must invalidate the cache.
	m.Filter(func(_, col int32, _ float64) bool { return col%2 == 0 })
	var after int64
	for j := int32(0); j < m.Cols; j++ {
		if m.ColNNZ(j) > 0 {
			after++
		}
	}
	if got := m.NonEmptyCols(); got != after {
		t.Fatalf("after Filter: NonEmptyCols = %d, scan says %d (stale cache?)", got, after)
	}
}

func TestDCSCSortColumns(t *testing.T) {
	// Build an unsorted CSC, compress, sort in DCSC form.
	m := &CSC{
		Rows: 8, Cols: 16,
		ColPtr:     []int64{0, 0, 3, 3, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5},
		RowIdx:     []int32{5, 1, 3, 7, 2},
		Val:        []float64{1, 2, 3, 4, 5},
		SortedCols: false,
	}
	d := m.ToDCSC()
	if d.Sorted() {
		t.Fatal("conversion invented sortedness")
	}
	d.SortColumns()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	sorted := m.Clone()
	sorted.SortColumns()
	if !Equal(sorted, d.ToCSC()) {
		t.Fatal("DCSC SortColumns differs from CSC SortColumns")
	}
}

func TestDCSCMemBytesSmallerWhenHypersparse(t *testing.T) {
	// ~2 nnz per occupied column, most columns empty: the explicit DCSC
	// accounting must beat the flat r·nnz model.
	m := randomNNZCSC(t, 64, 4096, 600, 31)
	c, d := m.MemBytes(), m.ToDCSC().MemBytes()
	if d >= c {
		t.Fatalf("hypersparse DCSC footprint %d not below CSC %d", d, c)
	}
}

// TestDCSCCursorMatchesFind drives a cursor through ascending, backward, and
// random access patterns and checks every lookup against the stateless
// binary-search accessors.
func TestDCSCCursorMatchesFind(t *testing.T) {
	d := randomNNZCSC(t, 32, 2048, 300, 77).ToDCSC()
	check := func(cur *DCSCCursor, j int32) {
		t.Helper()
		wantRows, wantVals := d.Column(j)
		gotRows, gotVals := cur.Column(j)
		if len(gotRows) != len(wantRows) || len(gotVals) != len(wantVals) {
			t.Fatalf("column %d: cursor returned %d entries, want %d", j, len(gotRows), len(wantRows))
		}
		for p := range wantRows {
			if gotRows[p] != wantRows[p] || gotVals[p] != wantVals[p] {
				t.Fatalf("column %d entry %d differs", j, p)
			}
		}
		if got, want := cur.ColNNZ(j), d.ColNNZ(j); got != want {
			t.Fatalf("column %d: cursor ColNNZ %d, want %d", j, got, want)
		}
	}

	// Ascending full scan (the access pattern the cursor optimizes): every
	// column, stored or absent.
	cur := d.Cursor()
	for j := int32(0); j < d.Cols; j++ {
		check(&cur, j)
	}
	// Descending scan (worst case for a positional cursor — must still be
	// correct via the binary-search fallback).
	cur = d.Cursor()
	for j := d.Cols - 1; j >= 0; j-- {
		check(&cur, j)
	}
	// Random jumps, including repeats and out-of-range-ish extremes.
	rng := rand.New(rand.NewSource(99))
	cur = d.Cursor()
	for i := 0; i < 2000; i++ {
		check(&cur, int32(rng.Intn(int(d.Cols))))
	}
	check(&cur, 0)
	check(&cur, d.Cols-1)
}

// TestDCSCCursorEmpty pins the degenerate cases.
func TestDCSCCursorEmpty(t *testing.T) {
	d := NewDCSC(4, 4)
	cur := d.Cursor()
	if n := cur.ColNNZ(2); n != 0 {
		t.Fatalf("empty matrix ColNNZ = %d", n)
	}
	if rows, vals := cur.Column(0); len(rows) != 0 || len(vals) != 0 {
		t.Fatal("empty matrix returned entries")
	}
}

// TestMemBytesModelMatchesBlockMemBytes keeps the statistics-only footprint
// model (used by the planner) in lockstep with the Matrix-based accounting.
func TestMemBytesModelMatchesBlockMemBytes(t *testing.T) {
	m := randomNNZCSC(t, 64, 512, 400, 5)
	d := m.ToDCSC()
	const r = 24
	if got, want := MemBytesModel(FormatCSC, m.NNZ(), m.NonEmptyCols(), r), BlockMemBytes(m, r); got != want {
		t.Fatalf("CSC model %d, BlockMemBytes %d", got, want)
	}
	if got, want := MemBytesModel(FormatDCSC, d.NNZ(), d.NonEmptyCols(), r), BlockMemBytes(d, r); got != want {
		t.Fatalf("DCSC model %d, BlockMemBytes %d", got, want)
	}
}

// TestWireBytesForMatchesCommBytes keeps the statistics-only wire-size model
// in lockstep with the serializer for both encodings.
func TestWireBytesForMatchesCommBytes(t *testing.T) {
	hyper := randomNNZCSC(t, 64, 4096, 500, 6) // hypersparse: wire compresses
	dense := randomNNZCSC(t, 64, 32, 500, 7)   // dense-ish: wire stays flat
	for _, m := range []*CSC{hyper, dense} {
		if got, want := WireBytesFor(m.Cols, m.NonEmptyCols(), m.NNZ()), m.CommBytes(); got != want {
			t.Fatalf("%v: WireBytesFor %d, CommBytes %d", m, got, want)
		}
		if got, want := WireBytesFor(m.Cols, m.NonEmptyCols(), m.NNZ()), int64(len(m.Serialize())); got != want {
			t.Fatalf("%v: WireBytesFor %d, len(Serialize) %d", m, got, want)
		}
	}
}
